// Explores the hybrid (Type A / Type B) device of Table 1: how utilization
// and access pattern move the two wear indicators, and when the firmware's
// pool-merge heuristic engages.
//
//   $ ./build/examples/hybrid_wear_explorer

#include <cstdio>

#include "src/device/catalog.h"
#include "src/ftl/hybrid_ftl.h"
#include "src/simcore/units.h"
#include "src/wearlab/wearout_experiment.h"

using namespace flashsim;

namespace {

constexpr SimScale kScale{32, 32};

void Report(const char* stage, FlashDevice& device) {
  const auto* hybrid = dynamic_cast<const HybridFtl*>(&device.ftl());
  const HealthReport h = device.QueryHealth();
  std::printf("%-44s A: pe=%7.1f (level %2u)   B: pe=%6.1f (level %2u)   "
              "merged=%s  WA=%.2f\n",
              stage, h.avg_pe_a, h.life_time_est_a, h.avg_pe_b, h.life_time_est_b,
              hybrid->InMergedMode() ? "YES" : "no ",
              device.ftl().Stats().WriteAmplification());
}

}  // namespace

int main() {
  auto device = MakeEmmc16(kScale, /*seed=*/11);
  std::printf("eMMC 16GB hybrid explorer (scale %ux/%ux). Type A = 1 GiB "
              "SLC-mode cache, Type B = MLC pool.\n\n",
              kScale.capacity_div, kScale.endurance_div);

  WearWorkloadConfig w;
  w.footprint_bytes = (400 * kMiB) / kScale.capacity_div;
  WearOutExperiment exp(*device, w);
  Report("fresh device", *device);

  // Stage 1: the paper's default workload at an empty device.
  (void)exp.Run(1, 4 * kGiB);
  Report("after 4 TiB-equiv of 4 KiB rand @ 0% util", *device);

  // Stage 2: large sequential writes — same Type B slope.
  WearWorkloadConfig seq = w;
  seq.pattern = AccessPattern::kSequential;
  seq.request_bytes = 128 * 1024;
  exp.SetWorkload(seq);
  (void)exp.Run(1, 4 * kGiB);
  Report("after 4 TiB-equiv of 128 KiB seq", *device);

  // Stage 3: fill to 90% — utilization alone does NOT merge the pools.
  exp.SetWorkload(w);
  (void)exp.SetUtilization(0.90);
  (void)exp.Run(1, 2 * kGiB);
  Report("at 90% util, writes to FREE space", *device);

  // Stage 4: rewrite the utilized space — pressure + utilization = merge,
  // and Type A wear takes off (the Table 1 collapse).
  WearWorkloadConfig rewrite = w;
  rewrite.rewrite_utilized = true;
  exp.SetWorkload(rewrite);
  (void)exp.Run(1, 2 * kGiB);
  Report("at 90% util, REWRITING utilized space", *device);

  (void)exp.Run(2, 4 * kGiB);
  Report("...continuing the rewrite workload", *device);

  std::printf("\nWatch the A column: flat for the first stages (tiny cache wear\n"
              "against a 120K rating), then the merged-mode draft cycles it in\n"
              "MLC mode and its level climbs ~27x faster — Table 1's story.\n");
  return 0;
}
