// Capture a workload's I/O trace on one device and replay it on others —
// the methodology for asking "how long would MY phone survive this app?",
// and the data a §4.5 defense would use to model expected app behaviour.
//
// The replay side is a TraceWorkload driven through the ordinary workload
// driver, so the captured stream goes down the same bulk submission path as
// any synthetic generator (and could be listed in a campaign spec).
//
//   $ ./build/examples/trace_replay

#include <cstdio>

#include "src/blockdev/iotrace.h"
#include "src/device/catalog.h"
#include "src/simcore/units.h"
#include "src/wearlab/phone.h"
#include "src/workload/driver.h"
#include "src/workload/trace_workload.h"

using namespace flashsim;

int main() {
  const SimScale scale{32, 1};

  // 1. Record two minutes of the attack app running on a Moto E.
  Phone phone(MakeMotoE8(scale, /*seed=*/3), PhoneFsType::kExtFs);
  TraceRecorder trace;
  phone.device().SetTraceRecorder(&trace);
  AttackAppConfig attack;
  attack.file_count = 2;
  attack.file_bytes = (100 * kMiB) / scale.capacity_div;
  WearAttackApp app(phone.system(), attack);
  if (!app.Install().ok()) {
    std::printf("install failed\n");
    return 1;
  }
  (void)app.RunUntil(phone.system().Now() + SimDuration::Minutes(2));
  phone.device().SetTraceRecorder(nullptr);
  std::printf("Recorded the wear-attack app on Moto E 8GB (Ext4):\n  %s\n\n",
              trace.Summary().c_str());

  // 2. Replay the captured stream on other catalog devices.
  TraceWorkload replay = TraceWorkload::FromRecorder(trace, "moto-attack");
  const double recorded_io = replay.RecordedIoTime().ToSecondsF();
  std::printf("Replaying the identical request stream elsewhere:\n");
  struct Target {
    const char* name;
    std::unique_ptr<FlashDevice> device;
  };
  Target targets[] = {
      {"Samsung S6 32GB (UFS)", MakeSamsungS6(scale, 9)},
      {"eMMC 16GB (hybrid)", MakeEmmc16(scale, 9)},
      {"uSD 16GB (block-mapped)", MakeUsd16(scale, 9)},
      {"BLU 512MB (budget)", MakeBlu512(SimScale{8, 1}, 9)},
  };
  WorkloadDriveOptions opts;
  for (Target& t : targets) {
    const WorkloadRunResult r = RunWorkloadOnDevice(replay, *t.device, opts);
    const double io = r.io_time.ToSecondsF();
    std::printf("  %-26s io time %7.2f s (%.2fx vs source)%s\n", t.name, io,
                recorded_io > 0 ? io / recorded_io : 0.0,
                r.bricked ? "  ** DEVICE DIED MID-REPLAY **" : "");
  }
  std::printf(
      "\nReading: the same byte stream finishes fastest on UFS — which is why\n"
      "the fastest phone is also the fastest to destroy — and the budget\n"
      "phone may not even survive the recording.\n");
  return 0;
}
