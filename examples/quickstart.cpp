// Quickstart: build a simulated eMMC device, probe its bandwidth, wear it
// down one indicator level, and compare against the back-of-the-envelope
// lifetime estimate — the paper's core finding in ~60 lines.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "src/device/catalog.h"
#include "src/simcore/units.h"
#include "src/wearlab/bandwidth_probe.h"
#include "src/wearlab/lifetime_estimator.h"
#include "src/wearlab/wearout_experiment.h"

using namespace flashsim;

int main() {
  // Scale capacity/endurance down 32x/16x so this demo runs in seconds;
  // reported volumes are re-scaled to full-device equivalents.
  const SimScale scale{32, 16};
  auto device = MakeEmmc8(scale);
  std::printf("Device: %s (simulated, %.2f GiB logical at scale %ux/%ux)\n",
              device->name().c_str(), BytesToGiB(device->CapacityBytes()),
              scale.capacity_div, scale.endurance_div);

  // 1. Write bandwidth at two request sizes (cf. Figure 1).
  for (uint64_t req : {uint64_t{4096}, uint64_t{2 * kMiB}}) {
    BandwidthProbeConfig probe;
    probe.request_bytes = req;
    probe.pattern = AccessPattern::kRandom;
    probe.total_bytes = 16 * kMiB;
    probe.region_bytes = device->CapacityBytes() / 4;
    const BandwidthResult bw = RunBandwidthProbe(*device, probe);
    std::printf("  random write @ %-9s -> %7.2f MiB/s\n", FormatBytes(req).c_str(),
                bw.mib_per_sec);
  }

  // 2. What the back-of-the-envelope says (§2.3): 3K rewrites, years of life.
  const uint64_t full_capacity = 8ull * kGiB;
  LifetimeEstimator envelope(full_capacity, 3000);
  std::printf("\nBack-of-envelope: %.0f full rewrites, %.1f years at 16 GiB/day\n",
              envelope.Estimate(16.0 * kGiB).full_rewrites,
              envelope.Estimate(16.0 * kGiB).years_at_workload);

  // 3. What actually happens: rewrite small random regions until the JEDEC
  //    wear indicator ticks (cf. Figure 2).
  WearWorkloadConfig workload;
  workload.footprint_bytes = device->CapacityBytes() / 20;  // <3% of capacity
  WearOutExperiment experiment(*device, workload);
  const WearRunOutcome outcome = experiment.Run(1, /*max_host_bytes=*/64 * kGiB);
  if (outcome.transitions.empty()) {
    std::printf("no transition observed (volume cap hit)\n");
    return 1;
  }
  const WearTransition& t = outcome.transitions.front();
  const double full_gib =
      static_cast<double>(t.host_bytes) * scale.VolumeFactor() / kGiB;
  std::printf(
      "Measured: indicator %u->%u after %.1f GiB (full-device equivalent), WA=%.2f\n",
      t.from_level, t.to_level, full_gib, t.write_amplification);
  std::printf("=> full wear-out at ~%.0f GiB vs envelope's %.0f GiB — the lifespan\n"
              "   problem the paper demonstrates.\n",
              full_gib * 10.0,
              BytesToGiB(static_cast<uint64_t>(
                  envelope.Estimate(0).total_write_bytes)));
  return 0;
}
