// End-to-end reproduction of the paper's headline experiment: a trivial,
// unprivileged app rewrites 100 MB files in its private directory until the
// phone's flash is gone (§4.4). Prints the wear timeline the way a user
// (with a S.M.A.R.T.-style wear service, §4.5) would have seen it.
//
//   $ ./build/examples/brick_a_phone

#include <cstdio>

#include "src/device/catalog.h"
#include "src/simcore/units.h"
#include "src/wearlab/phone.h"

using namespace flashsim;

int main() {
  // Moto E 8GB, Ext4, scaled 32x capacity / 16x endurance for a fast demo;
  // times and volumes below are re-scaled to full-device equivalents.
  const SimScale scale{32, 16};
  Phone phone(MakeMotoE8(scale, /*seed=*/7), PhoneFsType::kExtFs);
  if (Status fill = phone.FillStaticData(0.55); !fill.ok()) {
    std::printf("setup failed: %s\n", fill.ToString().c_str());
    return 1;
  }
  std::printf("Phone: Moto E 8GB (Ext4), 55%% full of system+user data\n");
  std::printf("Installing a 963-LoC-equivalent app: four 100 MB files in its "
              "private dir,\nno permissions requested...\n\n");

  AttackAppConfig attack;
  attack.file_count = 4;
  attack.file_bytes = (100 * kMiB) / scale.capacity_div;
  attack.write_bytes = 4096;
  WearAttackApp app(phone.system(), attack);
  if (Status installed = app.Install(); !installed.ok()) {
    std::printf("install failed: %s\n", installed.ToString().c_str());
    return 1;
  }

  const double factor = scale.VolumeFactor();
  uint32_t last_level = 1;
  std::printf("  day  level  PRE_EOL  app GiB written   (full-device equivalent)\n");
  for (;;) {
    AttackProgress progress = app.RunSlice(
        phone.device().CapacityBytes() / 32,
        phone.system().Now() + SimDuration::Hours(24));
    const HealthReport h = phone.device().QueryHealth();
    const double days = phone.system().Now().ToHoursF() * factor / 24.0;
    if (h.life_time_est_a != last_level || progress.device_bricked) {
      std::printf("  %4.1f  %4u   %-7s  %8.0f\n", days, h.life_time_est_a,
                  PreEolInfoName(h.pre_eol),
                  static_cast<double>(app.total_bytes_written()) * factor / kGiB);
      last_level = h.life_time_est_a;
    }
    if (progress.device_bricked) {
      std::printf("\n*** Day %.1f: write failed — flash is read-only. The phone "
                  "no longer boots. ***\n", days);
      break;
    }
    if (!progress.last_error.ok()) {
      std::printf("unexpected error: %s\n", progress.last_error.ToString().c_str());
      return 1;
    }
  }
  std::printf("\nTotal app I/O: %.2f TiB, using %.1f%% of the drive's space, "
              "zero permissions.\n",
              static_cast<double>(app.total_bytes_written()) * factor / kTiB,
              400.0 / (8.0 * 1024.0) * 100.0);
  std::printf("The back-of-the-envelope said this drive should absorb %.0f TiB.\n",
              8.0 * 3000 / 1024.0);
  return 0;
}
