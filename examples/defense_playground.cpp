// The §4.5 defense stack in action: per-app I/O accounting pinpointing the
// abuser, wear-indicator alerts, and the selective rate limiter protecting
// the flash without hurting benign apps.
//
//   $ ./build/examples/defense_playground

#include <cstdio>

#include "src/android/benign_apps.h"
#include "src/device/catalog.h"
#include "src/simcore/units.h"
#include "src/wearlab/phone.h"

using namespace flashsim;

namespace {

void RunScenario(bool defended) {
  std::printf("=== %s ===\n", defended ? "WITH selective rate limiter (§4.5)"
                                       : "Stock Android (no defenses)");
  AndroidSystemConfig sys;
  sys.enable_rate_limiter = defended;
  sys.rate_limiter.selective = true;
  sys.rate_limiter.burst_bytes = 64 * kMiB;  // bursts this size stay fast

  const SimScale scale{32, 1};
  Phone phone(MakeMotoE8(scale, /*seed=*/3), PhoneFsType::kExtFs, sys);
  (void)phone.FillStaticData(0.40);

  // Cast: a camera (benign bursts), a messaging app (benign trickle), the
  // Spotify cache bug (pathological but not malicious), and the wear attack.
  CameraAppConfig cam_cfg;
  cam_cfg.burst_bytes = (300 * kMiB) / scale.capacity_div;
  CameraApp camera(phone.system(), cam_cfg);
  MessagingApp messaging(phone.system(), MessagingAppConfig{});
  SpotifyBugAppConfig bug_cfg;
  bug_cfg.cache_bytes = (128 * kMiB) / scale.capacity_div;
  SpotifyBugApp spotify(phone.system(), bug_cfg);
  AttackAppConfig attack_cfg;
  attack_cfg.file_count = 2;
  attack_cfg.file_bytes = (100 * kMiB) / scale.capacity_div;
  attack_cfg.write_bytes = 256 * 1024;
  WearAttackApp attacker(phone.system(), attack_cfg);
  (void)attacker.Install();

  // Interleave six hours of phone life in 30-minute slices.
  for (int slice = 0; slice < 12; ++slice) {
    const SimTime until = phone.system().Now() + SimDuration::Minutes(6);
    (void)attacker.RunUntil(until);
    (void)spotify.RunUntil(until + SimDuration::Minutes(2));
    (void)messaging.RunUntil(until + SimDuration::Minutes(3));
    (void)camera.RunUntil(until + SimDuration::Minutes(4));
    phone.system().AdvanceIdle(SimDuration::Minutes(15));
    phone.system().PollWearIndicator();
  }

  std::printf("Per-app I/O accounting (the 'storage usage' view a user would "
              "check):\n");
  for (const auto& [app, usage] : phone.system().accountant().TopWriters()) {
    const char* who = app == attack_cfg.app_id      ? "wear-attack app"
                      : app == bug_cfg.app_id        ? "spotify (cache bug)"
                      : app == cam_cfg.app_id        ? "camera"
                      : app == MessagingAppConfig{}.app_id ? "messaging"
                                                           : "system";
    std::printf("  app %3u (%-19s)  wrote %9.2f GiB in %llu ops\n", app, who,
                BytesToGiB(usage.bytes_written),
                static_cast<unsigned long long>(usage.write_ops));
  }
  std::printf("Camera burst latency: %.2f s for a %s clip\n",
              camera.last_burst_seconds(), FormatBytes(cam_cfg.burst_bytes).c_str());
  const HealthReport h = phone.device().QueryHealth();
  std::printf("Wear after 6h: level %u/11 (alerts fired: %zu)\n\n",
              h.life_time_est_a, phone.system().wear_service().alerts().size());
}

}  // namespace

int main() {
  RunScenario(/*defended=*/false);
  RunScenario(/*defended=*/true);
  std::printf("Takeaway: accounting makes the abuser obvious; the selective\n"
              "limiter freezes the attacker's throughput while the camera's\n"
              "bursts stay fast — the design the paper argues for.\n");
  return 0;
}
