#!/usr/bin/env bash
# CI entry point: builds Release and ASan/UBSan trees and runs the tier-1
# test suite in both. Long-running benches are registered under the "bench"
# ctest configuration/label and are NOT run here — opt in locally with:
#   cmake --preset release && cmake --build --preset release -j
#   ctest --preset bench
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

for preset in release sanitize; do
  echo "=== ${preset}: configure + build ==="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  echo "=== ${preset}: ctest ==="
  ctest --preset "${preset}" -j "${jobs}"
done

echo "CI OK"
