#!/usr/bin/env bash
# CI entry point: builds Release and ASan/UBSan trees, runs the tier-1 test
# suite in both, then runs two fast per-PR performance checks against the
# Release tree:
#   * micro_ops --ci      — hot-path layout smoke (ns/op table, see
#                           BENCH_micro_ops.json)
#   * throughput --gate   — fails if batch-64 sim_pages_per_sec drops more
#                           than 15% below the committed BENCH_throughput.json
#                           baseline. Skipped with FLASHSIM_SKIP_PERF_GATE=1
#                           (e.g. on a runner class the baseline was not
#                           measured on).
# Long-running benches are registered under the "bench" ctest configuration/
# label and are NOT run here — opt in locally with:
#   cmake --preset release && cmake --build --preset release -j
#   ctest --preset bench
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

for preset in release sanitize; do
  echo "=== ${preset}: configure + build ==="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  echo "=== ${preset}: ctest ==="
  ctest --preset "${preset}" -j "${jobs}"
done

echo "=== perf smoke: micro_ops --ci ==="
(cd build-release && ./bench/micro_ops --ci)

if [[ "${FLASHSIM_SKIP_PERF_GATE:-0}" != "1" ]]; then
  echo "=== perf gate: throughput batch=64 vs committed baseline ==="
  baseline=$(awk -F'"sim_pages_per_sec": ' \
    '/"batch_requests": 64,/ {split($2, a, ","); print a[1]; exit}' \
    BENCH_throughput.json)
  if [[ -z "${baseline}" ]]; then
    echo "perf gate: no batch-64 baseline in BENCH_throughput.json" >&2
    exit 1
  fi
  gate_line=$(./build-release/bench/throughput --gate)
  echo "${gate_line} (baseline ${baseline})"
  measured=$(awk '/GATE_PAGES_PER_SEC/ {print $2}' <<<"${gate_line}")
  awk -v m="${measured}" -v b="${baseline}" 'BEGIN {
    if (m + 0 < 0.85 * b) {
      printf "perf gate FAIL: %.0f < 85%% of baseline %.0f\n", m, b
      exit 1
    }
    printf "perf gate ok: %.0f >= 85%% of baseline %.0f\n", m, b
  }'
fi

echo "=== fleet-smoke: 1k devices, --threads 1 vs 4 must be byte-identical ==="
mkdir -p build-release/fleet_out
./build-release/bench/fleet --spec examples/specs/fleet_smoke.spec --threads 1 \
  --out build-release/fleet_out/smoke_t1.json --quiet
(cd build-release && ./bench/fleet --spec ../examples/specs/fleet_smoke.spec --threads 4 \
  --out fleet_out/smoke_t4.json --ci --quiet)
if ! diff build-release/fleet_out/smoke_t1.json build-release/fleet_out/smoke_t4.json; then
  echo "fleet-smoke FAIL: report differs between --threads 1 and --threads 4" >&2
  exit 1
fi
echo "fleet-smoke ok: reports byte-identical ($(wc -c < build-release/fleet_out/smoke_t1.json) bytes)"

echo "CI OK"
