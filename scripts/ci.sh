#!/usr/bin/env bash
# CI entry point: builds Release and ASan/UBSan trees, runs the tier-1 test
# suite in both, then runs two fast per-PR performance checks against the
# Release tree:
#   * micro_ops --ci      — hot-path layout smoke (ns/op table, see
#                           BENCH_micro_ops.json)
#   * throughput --gate   — fails if batch-64 sim_pages_per_sec drops more
#                           than 15% below the committed BENCH_throughput.json
#                           baseline. Skipped with FLASHSIM_SKIP_PERF_GATE=1
#                           (e.g. on a runner class the baseline was not
#                           measured on).
#   * fleet-smoke         — threads-1/delta-park vs threads-4/full-park runs
#                           must produce byte-identical reports; the delta
#                           run's metrics feed a deterministic >=3x parked
#                           stored/raw gate and (unless skipped, same env
#                           var) an 85% devices/sec gate vs BENCH_fleet.json.
#   * latency --ci        — event-engine gates: degenerate C=1/D=1 must be
#                           bit-exact with the flat model, random-write p99
#                           must stay >= 2x sequential p99 (uFLIP envelope),
#                           and the emitted BENCH_latency.json (simulated
#                           metrics only) must byte-match the committed
#                           baseline.
#   * latency-campaign    — the latency_smoke campaign's latency digests must
#                           be byte-identical at --threads 1 and --threads 4.
#   * cowfs crash gate    — crash_soak --ci under the sanitize tree; any
#                           cowfs config reporting fsck_repairs/orphans > 0
#                           fails (the zero-repair contract, DESIGN.md §16).
#   * cowfs-campaign      — the cowfs_smoke three-filesystem campaign must be
#                           byte-identical at --threads 1 and --threads 4.
# Long-running benches are registered under the "bench" ctest configuration/
# label and are NOT run here — opt in locally with:
#   cmake --preset release && cmake --build --preset release -j
#   ctest --preset bench
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

for preset in release sanitize; do
  echo "=== ${preset}: configure + build ==="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  echo "=== ${preset}: ctest ==="
  ctest --preset "${preset}" -j "${jobs}"
done

echo "=== perf smoke: micro_ops --ci ==="
(cd build-release && ./bench/micro_ops --ci)

if [[ "${FLASHSIM_SKIP_PERF_GATE:-0}" != "1" ]]; then
  echo "=== perf gate: throughput batch=64 vs committed baseline ==="
  baseline=$(awk -F'"sim_pages_per_sec": ' \
    '/"batch_requests": 64,/ {split($2, a, ","); print a[1]; exit}' \
    BENCH_throughput.json)
  if [[ -z "${baseline}" ]]; then
    echo "perf gate: no batch-64 baseline in BENCH_throughput.json" >&2
    exit 1
  fi
  gate_line=$(./build-release/bench/throughput --gate)
  echo "${gate_line} (baseline ${baseline})"
  measured=$(awk '/GATE_PAGES_PER_SEC/ {print $2}' <<<"${gate_line}")
  awk -v m="${measured}" -v b="${baseline}" 'BEGIN {
    if (m + 0 < 0.85 * b) {
      printf "perf gate FAIL: %.0f < 85%% of baseline %.0f\n", m, b
      exit 1
    }
    printf "perf gate ok: %.0f >= 85%% of baseline %.0f\n", m, b
  }'
fi

echo "=== fleet-smoke: threads 1/delta vs threads 4/full must be byte-identical ==="
mkdir -p build-release/fleet_out
(cd build-release && ./bench/fleet --spec ../examples/specs/fleet_smoke.spec --threads 1 \
  --park delta --out fleet_out/smoke_t1.json --ci --quiet)
./build-release/bench/fleet --spec examples/specs/fleet_smoke.spec --threads 4 \
  --park full --out build-release/fleet_out/smoke_t4.json --quiet
if ! diff build-release/fleet_out/smoke_t1.json build-release/fleet_out/smoke_t4.json; then
  echo "fleet-smoke FAIL: report differs across thread count / park mode" >&2
  exit 1
fi
echo "fleet-smoke ok: reports byte-identical ($(wc -c < build-release/fleet_out/smoke_t1.json) bytes)"

# Deterministic parked-bytes gate: stored/raw ratio is a pure function of the
# spec (no timing involved), so it gates unconditionally at the ISSUE target.
raw_mean=$(awk -F': ' '/"parked_raw_mean_bytes"/ {gsub(/,/, "", $2); print $2}' \
  build-release/BENCH_fleet.json)
stored_mean=$(awk -F': ' '/"park_stored_mean_bytes"/ {gsub(/,/, "", $2); print $2}' \
  build-release/BENCH_fleet.json)
awk -v r="${raw_mean}" -v s="${stored_mean}" 'BEGIN {
  if (s + 0 <= 0 || r + 0 < 3.0 * s) {
    printf "fleet park gate FAIL: raw %.0f / stored %.0f < 3.0x\n", r, s
    exit 1
  }
  printf "fleet park gate ok: %.0f -> %.0f bytes/device (%.2fx >= 3.0x)\n", r, s, r / s
}'

if [[ "${FLASHSIM_SKIP_PERF_GATE:-0}" != "1" ]]; then
  echo "=== perf gate: fleet devices/sec vs committed baseline ==="
  fleet_baseline=$(awk -F': ' '/"devices_per_sec"/ {gsub(/,/, "", $2); print $2}' \
    BENCH_fleet.json)
  fleet_measured=$(awk -F': ' '/"devices_per_sec"/ {gsub(/,/, "", $2); print $2}' \
    build-release/BENCH_fleet.json)
  if [[ -z "${fleet_baseline}" || -z "${fleet_measured}" ]]; then
    echo "fleet perf gate: missing devices_per_sec in BENCH_fleet.json" >&2
    exit 1
  fi
  awk -v m="${fleet_measured}" -v b="${fleet_baseline}" 'BEGIN {
    if (m + 0 < 0.85 * b) {
      printf "fleet perf gate FAIL: %.1f dev/s < 85%% of baseline %.1f\n", m, b
      exit 1
    }
    printf "fleet perf gate ok: %.1f dev/s >= 85%% of baseline %.1f\n", m, b
  }'
fi

echo "=== latency smoke: event-engine equivalence + p99 envelope gates ==="
(cd build-release && ./bench/latency --ci)
if ! diff BENCH_latency.json build-release/BENCH_latency.json; then
  echo "latency gate FAIL: BENCH_latency.json drifted from committed baseline" >&2
  echo "(simulated metrics only — if the drift is intentional, recommit it)" >&2
  exit 1
fi
echo "latency baseline ok: BENCH_latency.json matches committed baseline"

echo "=== latency campaign: digests byte-identical across thread counts ==="
mkdir -p build-release/latency_out
./build-release/bench/campaign --spec examples/specs/latency_smoke.spec \
  --threads 1 --out build-release/latency_out/t1 --quiet
./build-release/bench/campaign --spec examples/specs/latency_smoke.spec \
  --threads 4 --out build-release/latency_out/t4 --quiet
if ! diff build-release/latency_out/t1/latency_smoke.json \
          build-release/latency_out/t4/latency_smoke.json ||
   ! diff build-release/latency_out/t1/latency_smoke.csv \
          build-release/latency_out/t4/latency_smoke.csv; then
  echo "latency campaign FAIL: latency digests differ across thread count" >&2
  exit 1
fi
echo "latency campaign ok: reports byte-identical across threads 1 and 4"

echo "=== cowfs crash gate: sanitize soak must report zero repairs ==="
(cd build-sanitize && ./bench/crash_soak --ci)
cowfs_configs=$(grep -c '"config": "[^"]*cowfs' build-sanitize/BENCH_crash_soak.json)
if [[ "${cowfs_configs}" -lt 6 ]]; then
  echo "cowfs crash gate FAIL: only ${cowfs_configs} cowfs configs in sweep (want 6)" >&2
  exit 1
fi
if grep '"config": "[^"]*cowfs' build-sanitize/BENCH_crash_soak.json |
   grep -E '"(fsck_repairs|orphan_files|orphan_blocks)": [1-9]'; then
  echo "cowfs crash gate FAIL: a cowfs mount reported repairs (above)" >&2
  exit 1
fi
echo "cowfs crash gate ok: ${cowfs_configs} configs, zero repairs everywhere"

echo "=== cowfs campaign: three-way reports byte-identical across thread counts ==="
mkdir -p build-release/cowfs_out
./build-release/bench/campaign --spec examples/specs/cowfs_smoke.spec \
  --threads 1 --out build-release/cowfs_out/t1 --quiet
./build-release/bench/campaign --spec examples/specs/cowfs_smoke.spec \
  --threads 4 --out build-release/cowfs_out/t4 --quiet
if ! diff build-release/cowfs_out/t1/cowfs_smoke.json \
          build-release/cowfs_out/t4/cowfs_smoke.json ||
   ! diff build-release/cowfs_out/t1/cowfs_smoke.csv \
          build-release/cowfs_out/t4/cowfs_smoke.csv; then
  echo "cowfs campaign FAIL: reports differ across thread count" >&2
  exit 1
fi
echo "cowfs campaign ok: reports byte-identical across threads 1 and 4"

echo "CI OK"
