// CSV serialization for experiment results, so bench output can be piped
// into plotting tools to regenerate the paper's figures graphically.

#ifndef SRC_WEARLAB_CSV_H_
#define SRC_WEARLAB_CSV_H_

#include <ostream>
#include <string>
#include <vector>

#include "src/wearlab/phone.h"
#include "src/wearlab/wearout_experiment.h"

namespace flashsim {

// Escapes a value for CSV (quotes fields containing commas/quotes/newlines).
std::string CsvEscape(const std::string& value);

// Writes one CSV row from raw cells.
void WriteCsvRow(std::ostream& os, const std::vector<std::string>& cells);

// Wear transitions (Figure 2 / Table 1 rows):
//   device,type,from_level,to_level,host_bytes,hours,wa,pattern,utilization
void WriteTransitionsCsv(std::ostream& os, const std::string& device_name,
                         const std::vector<WearTransition>& transitions,
                         double volume_factor);

// Phone wear rows (Figure 3/4):
//   device,fs,from_level,to_level,app_bytes,hours
void WritePhoneRowsCsv(std::ostream& os, const std::string& device_name,
                       const std::string& fs_name,
                       const std::vector<PhoneWearRow>& rows, double volume_factor);

// Bandwidth series (Figure 1): size_bytes,mib_per_sec per row.
void WriteBandwidthCsv(std::ostream& os, const std::string& device_name,
                       const std::string& pattern,
                       const std::vector<std::pair<uint64_t, double>>& series);

}  // namespace flashsim

#endif  // SRC_WEARLAB_CSV_H_
