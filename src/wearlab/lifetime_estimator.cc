#include "src/wearlab/lifetime_estimator.h"

namespace flashsim {

LifetimeEstimate LifetimeEstimator::Estimate(double daily_write_bytes) const {
  LifetimeEstimate est;
  est.total_write_bytes =
      static_cast<double>(capacity_bytes_) * static_cast<double>(rated_pe_cycles_);
  est.full_rewrites = static_cast<double>(rated_pe_cycles_);
  if (daily_write_bytes > 0) {
    est.days_at_workload = est.total_write_bytes / daily_write_bytes;
    est.years_at_workload = est.days_at_workload / 365.0;
  }
  return est;
}

double LifetimeEstimator::HoursToExhaust(double mib_per_sec) const {
  if (mib_per_sec <= 0) {
    return 0.0;
  }
  const double budget =
      static_cast<double>(capacity_bytes_) * static_cast<double>(rated_pe_cycles_);
  const double bytes_per_hour = mib_per_sec * 1024.0 * 1024.0 * 3600.0;
  return budget / bytes_per_hour;
}

double LifetimeEstimator::OptimismFactor(double observed_total_write_bytes) const {
  if (observed_total_write_bytes <= 0) {
    return 0.0;
  }
  const double budget =
      static_cast<double>(capacity_bytes_) * static_cast<double>(rated_pe_cycles_);
  return budget / observed_total_write_bytes;
}

}  // namespace flashsim
