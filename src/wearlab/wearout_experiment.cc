#include "src/wearlab/wearout_experiment.h"

#include <algorithm>

#include "src/simcore/units.h"

namespace flashsim {

namespace {
// Health registers are polled every this many bytes of workload writes.
constexpr uint64_t kPollIntervalBytes = 2 * kMiB;
// Prefill chunk size.
constexpr uint64_t kPrefillChunk = 4 * kMiB;
}  // namespace

const char* WearTypeName(WearType type) {
  switch (type) {
    case WearType::kTypeA:
      return "Type A";
    case WearType::kTypeB:
      return "Type B";
    case WearType::kSinglePool:
      return "device";
  }
  return "unknown";
}

WearOutExperiment::WearOutExperiment(FlashDevice& device, WearWorkloadConfig config)
    : device_(device), config_(config), rng_(config.seed) {}

void WearOutExperiment::SetWorkload(WearWorkloadConfig config) {
  const uint64_t seed = config_.seed;
  config_ = config;
  config_.seed = seed;  // keep the RNG stream continuous across stages
  seq_cursor_ = 0;
}

std::string WearOutExperiment::PatternLabel() const {
  std::string label = FormatBytes(config_.request_bytes) + " " +
                      (config_.pattern == AccessPattern::kRandom ? "rand" : "seq");
  if (config_.rewrite_utilized) {
    label += " rewrite";
  }
  return label;
}

Status WearOutExperiment::SetUtilization(double utilization) {
  utilization = std::clamp(utilization, 0.0, 0.97);
  const uint64_t capacity = device_.CapacityBytes();
  const uint64_t target =
      RoundDown(static_cast<uint64_t>(utilization * static_cast<double>(capacity)),
                device_.PageSizeBytes());
  if (target > static_bytes_) {
    for (uint64_t off = static_bytes_; off < target; off += kPrefillChunk) {
      IoRequest req{IoKind::kWrite, off, std::min(kPrefillChunk, target - off)};
      Result<IoCompletion> done = device_.Submit(req);
      if (!done.ok()) {
        return done.status();
      }
    }
  } else if (target < static_bytes_) {
    IoRequest req{IoKind::kDiscard, target, static_bytes_ - target};
    Result<IoCompletion> done = device_.Submit(req);
    if (!done.ok()) {
      return done.status();
    }
  }
  static_bytes_ = target;
  return Status::Ok();
}

void WearOutExperiment::ComputeTargetRegion(uint64_t* start, uint64_t* length) const {
  const uint64_t capacity = device_.CapacityBytes();
  if (config_.rewrite_utilized && static_bytes_ >= config_.request_bytes) {
    *start = 0;
    *length = static_bytes_;
    return;
  }
  *start = static_bytes_;
  *length = std::min(config_.footprint_bytes, capacity - static_bytes_);
}

Status WearOutExperiment::IssueOneWrite() {
  uint64_t start = 0;
  uint64_t length = 0;
  ComputeTargetRegion(&start, &length);
  if (length < config_.request_bytes) {
    return FailedPreconditionError("workload region smaller than one request");
  }
  const uint64_t slots = length / config_.request_bytes;
  const uint64_t slot = config_.pattern == AccessPattern::kRandom
                            ? rng_.UniformU64(slots)
                            : seq_cursor_++ % slots;
  IoRequest req{IoKind::kWrite, start + slot * config_.request_bytes,
                config_.request_bytes};
  Result<IoCompletion> done = device_.Submit(req);
  if (!done.ok()) {
    return done.status();
  }
  workload_bytes_ += req.length;
  workload_time_ += done.value().service_time;
  return Status::Ok();
}

Status WearOutExperiment::IssueWriteBatch(uint64_t n) {
  uint64_t start = 0;
  uint64_t length = 0;
  ComputeTargetRegion(&start, &length);
  if (length < config_.request_bytes) {
    return FailedPreconditionError("workload region smaller than one request");
  }
  const uint64_t slots = length / config_.request_bytes;
  const Rng rng_before = rng_;
  const uint64_t seq_before = seq_cursor_;
  batch_scratch_.clear();
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t slot = config_.pattern == AccessPattern::kRandom
                              ? rng_.UniformU64(slots)
                              : seq_cursor_++ % slots;
    batch_scratch_.push_back(IoRequest{IoKind::kWrite,
                                       start + slot * config_.request_bytes,
                                       config_.request_bytes});
  }
  BatchCompletion done = device_.SubmitBatch(batch_scratch_.data(), batch_scratch_.size());
  workload_bytes_ += done.bytes_transferred;
  workload_time_ += done.service_time;
  if (!done.status.ok()) {
    // Rewind the generator to where the one-by-one loop would have stopped:
    // one draw per completed request plus one for the request that failed.
    rng_ = rng_before;
    seq_cursor_ = seq_before;
    for (uint64_t i = 0; i < done.requests_completed + 1; ++i) {
      if (config_.pattern == AccessPattern::kRandom) {
        rng_.UniformU64(slots);
      } else {
        ++seq_cursor_;
      }
    }
    return done.status;
  }
  return Status::Ok();
}

std::pair<uint32_t, uint32_t> WearOutExperiment::Levels() const {
  const HealthReport health = device_.QueryHealth();
  if (!health.supported) {
    return {0, 0};
  }
  return {health.life_time_est_a, health.life_time_est_b};
}

void WearOutExperiment::ResetTracker(LevelTracker& tracker) {
  tracker.start_bytes = workload_bytes_;
  tracker.start_time = SimTime(workload_time_.nanos());
  tracker.start_nand_pages = device_.ftl().Stats().nand_pages_written;
  tracker.start_host_pages = device_.ftl().Stats().host_pages_written;
}

WearTransition WearOutExperiment::MakeTransition(const LevelTracker& tracker) const {
  WearTransition t;
  t.host_bytes = workload_bytes_ - tracker.start_bytes;
  t.hours = (SimTime(workload_time_.nanos()) - tracker.start_time).ToHoursF();
  const FtlStats stats = device_.ftl().Stats();
  const uint64_t nand_delta = stats.nand_pages_written - tracker.start_nand_pages;
  const uint64_t host_delta = stats.host_pages_written - tracker.start_host_pages;
  t.write_amplification =
      host_delta == 0 ? 0.0
                      : static_cast<double>(nand_delta) / static_cast<double>(host_delta);
  t.pattern_label = PatternLabel();
  t.utilization =
      static_cast<double>(static_bytes_) / static_cast<double>(device_.CapacityBytes());
  t.rewrite_utilized = config_.rewrite_utilized;
  return t;
}

WearRunOutcome WearOutExperiment::Run(uint32_t transitions, uint64_t max_host_bytes) {
  WearRunOutcome outcome;
  const uint64_t run_start_bytes = device_.HostBytesWritten();
  const SimTime run_start_time = device_.clock().Now();

  if (!tracking_initialized_) {
    auto [a, b] = Levels();
    last_level_a_ = a;
    last_level_b_ = b;
    ResetTracker(tracker_a_);
    ResetTracker(tracker_b_);
    tracking_initialized_ = true;
  }

  const uint64_t poll_every =
      std::max<uint64_t>(1, kPollIntervalBytes / config_.request_bytes);
  uint64_t writes_since_poll = 0;
  uint32_t remaining = transitions;

  while (remaining > 0) {
    const uint64_t spent = device_.HostBytesWritten() - run_start_bytes;
    if (spent >= max_host_bytes) {
      outcome.volume_cap_hit = true;
      break;
    }
    // Batches stop at the next health-poll point and at the volume cap, so
    // polls and the cap land after exactly the same write counts as the
    // one-request-at-a-time loop.
    uint64_t n = std::min<uint64_t>(config_.batch_requests,
                                    poll_every - writes_since_poll);
    n = std::min(n, CeilDiv(max_host_bytes - spent, config_.request_bytes));
    Status st = n <= 1 ? IssueOneWrite() : IssueWriteBatch(n);
    if (!st.ok()) {
      outcome.status = st;
      outcome.bricked = st.code() == StatusCode::kUnavailable;
      break;
    }
    writes_since_poll += std::max<uint64_t>(n, 1);
    if (writes_since_poll < poll_every) {
      continue;
    }
    writes_since_poll = 0;
    auto [a, b] = Levels();
    if (a != last_level_a_ && remaining > 0) {
      WearTransition t = MakeTransition(tracker_a_);
      t.type = last_level_b_ == 0 ? WearType::kSinglePool : WearType::kTypeA;
      t.from_level = last_level_a_;
      t.to_level = a;
      outcome.transitions.push_back(std::move(t));
      last_level_a_ = a;
      ResetTracker(tracker_a_);
      --remaining;
    }
    if (b != last_level_b_ && remaining > 0) {
      WearTransition t = MakeTransition(tracker_b_);
      t.type = WearType::kTypeB;
      t.from_level = last_level_b_;
      t.to_level = b;
      outcome.transitions.push_back(std::move(t));
      last_level_b_ = b;
      ResetTracker(tracker_b_);
      --remaining;
    }
  }

  outcome.total_host_bytes = device_.HostBytesWritten() - run_start_bytes;
  outcome.total_hours = (device_.clock().Now() - run_start_time).ToHoursF();
  return outcome;
}

WearRunOutcome WearOutExperiment::RunUntilLevel(WearType type, uint32_t level,
                                                uint64_t max_host_bytes) {
  WearRunOutcome combined;
  const uint64_t start_bytes = device_.HostBytesWritten();
  const SimTime start_time = device_.clock().Now();
  for (;;) {
    auto [a, b] = Levels();
    const uint32_t current = type == WearType::kTypeB ? b : a;
    if (current >= level) {
      break;
    }
    const uint64_t spent = device_.HostBytesWritten() - start_bytes;
    if (spent >= max_host_bytes) {
      combined.volume_cap_hit = true;
      break;
    }
    WearRunOutcome step = Run(1, max_host_bytes - spent);
    combined.transitions.insert(combined.transitions.end(), step.transitions.begin(),
                                step.transitions.end());
    combined.bricked = step.bricked;
    combined.volume_cap_hit = step.volume_cap_hit;
    combined.status = step.status;
    if (step.bricked || !step.status.ok() || step.volume_cap_hit ||
        step.transitions.empty()) {
      break;
    }
  }
  combined.total_host_bytes = device_.HostBytesWritten() - start_bytes;
  combined.total_hours = (device_.clock().Now() - start_time).ToHoursF();
  return combined;
}

}  // namespace flashsim
