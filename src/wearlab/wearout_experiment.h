// WearOutExperiment: the harness behind Figure 2, Table 1, and the raw-device
// halves of Figures 3/4.
//
// Drives a configurable rewrite workload against a raw FlashDevice (the
// paper's "repeatedly rewrote small, randomly-selected regions of four 100 MB
// files"), polls the JEDEC wear indicators, and records one row per
// indicator transition: host I/O volume, simulated hours, pattern,
// utilization, and the FTL's write amplification during that level.

#ifndef SRC_WEARLAB_WEAROUT_EXPERIMENT_H_
#define SRC_WEARLAB_WEAROUT_EXPERIMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/device/flash_device.h"
#include "src/simcore/rng.h"
#include "src/wearlab/bandwidth_probe.h"

namespace flashsim {

// Which wear indicator a transition belongs to.
enum class WearType { kTypeA, kTypeB, kSinglePool };

const char* WearTypeName(WearType type);

struct WearWorkloadConfig {
  AccessPattern pattern = AccessPattern::kRandom;
  uint64_t request_bytes = 4096;
  // Size of the rewrite footprint (e.g. four 100 MB files = 400 MB). Scaled
  // down alongside device capacity by benches.
  uint64_t footprint_bytes = 400ull * 1024 * 1024;
  // Aim rewrites at the utilized (static) data instead of the free footprint
  // — the Table 1 "rand rewrite" rows.
  bool rewrite_utilized = false;
  // How many workload requests to submit per device call. Values > 1 use the
  // BlockDevice::SubmitBatch bulk path; results (wear, health transitions,
  // simulated time) are identical for any value — only wall-clock changes.
  // Batches never cross a health-poll point or the volume cap.
  uint64_t batch_requests = 1;
  uint64_t seed = 11;
};

// One indicator transition (a row of Table 1 / a bar of Figures 2-4).
struct WearTransition {
  WearType type = WearType::kSinglePool;
  uint32_t from_level = 0;
  uint32_t to_level = 0;
  uint64_t host_bytes = 0;       // host I/O issued during the level
  double hours = 0.0;            // simulated time spent in the level
  double write_amplification = 0.0;
  std::string pattern_label;     // e.g. "4 KiB rand", "128 KiB seq"
  double utilization = 0.0;      // device utilization during the level
  bool rewrite_utilized = false;
};

// Outcome of a run segment.
struct WearRunOutcome {
  std::vector<WearTransition> transitions;
  bool bricked = false;
  bool volume_cap_hit = false;
  uint64_t total_host_bytes = 0;
  double total_hours = 0.0;
  Status status;
};

class WearOutExperiment {
 public:
  WearOutExperiment(FlashDevice& device, WearWorkloadConfig config);

  // Fills the device with static data up to `utilization` of its logical
  // space (sequential bulk writes), or trims static data back down when the
  // target is below the current level.
  Status SetUtilization(double utilization);

  // Applies a new workload pattern for subsequent runs.
  void SetWorkload(WearWorkloadConfig config);

  // Runs until `transitions` additional indicator transitions (of any type)
  // occur, the device bricks, or `max_host_bytes` have been written.
  WearRunOutcome Run(uint32_t transitions, uint64_t max_host_bytes);

  // Convenience: runs until the given indicator reaches `level` (or brick /
  // volume cap). Collects every transition of both types along the way.
  WearRunOutcome RunUntilLevel(WearType type, uint32_t level, uint64_t max_host_bytes);

  const WearWorkloadConfig& workload() const { return config_; }
  FlashDevice& device() { return device_; }

  // Human label for the current workload, e.g. "4 KiB rand rewrite".
  std::string PatternLabel() const;

 private:
  // Issues one workload write; returns false on brick.
  Status IssueOneWrite();
  // Issues `n` workload writes through SubmitBatch. Draws target slots in the
  // same order as n IssueOneWrite calls; on failure the generator is rewound
  // to exactly where the one-by-one loop would have stopped.
  Status IssueWriteBatch(uint64_t n);
  // Current indicator levels (B == 0 for single-pool devices).
  std::pair<uint32_t, uint32_t> Levels() const;
  // Region the rewrites target, given utilization and rewrite_utilized.
  void ComputeTargetRegion(uint64_t* start, uint64_t* length) const;

  FlashDevice& device_;
  WearWorkloadConfig config_;
  Rng rng_;
  uint64_t static_bytes_ = 0;  // current prefilled utilization, in bytes
  uint64_t seq_cursor_ = 0;
  std::vector<IoRequest> batch_scratch_;

  // Workload-only accounting (excludes SetUtilization prefill/trim traffic),
  // so per-level rows report what the paper reports: experiment I/O volume
  // and experiment wall-clock.
  uint64_t workload_bytes_ = 0;
  SimDuration workload_time_;

  // Per-type, per-level accounting carried across Run calls (Type A and
  // Type B advance independently; each row measures from its own last
  // transition).
  struct LevelTracker {
    uint64_t start_bytes = 0;
    SimTime start_time;
    uint64_t start_nand_pages = 0;
    uint64_t start_host_pages = 0;
  };
  void ResetTracker(LevelTracker& tracker);
  WearTransition MakeTransition(const LevelTracker& tracker) const;

  LevelTracker tracker_a_;
  LevelTracker tracker_b_;
  bool tracking_initialized_ = false;
  uint32_t last_level_a_ = 1;
  uint32_t last_level_b_ = 0;
};

}  // namespace flashsim

#endif  // SRC_WEARLAB_WEAROUT_EXPERIMENT_H_
