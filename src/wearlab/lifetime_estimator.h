// Back-of-the-envelope SSD lifetime estimation (§2.3) — the calculation the
// paper shows to be dangerously optimistic for mobile flash.
//
// The folk formula: a device of capacity C rated for E P/E cycles absorbs
// about C*E bytes of writes (assuming the firmware balances ill-behaved
// workloads), so at W bytes/day it lasts C*E/W days. The estimator also
// computes the attacker's view: at sustained throughput T, how long until
// the quota is gone.

#ifndef SRC_WEARLAB_LIFETIME_ESTIMATOR_H_
#define SRC_WEARLAB_LIFETIME_ESTIMATOR_H_

#include <cstdint>
#include <string>

namespace flashsim {

struct LifetimeEstimate {
  double total_write_bytes = 0.0;   // lifetime write budget
  double full_rewrites = 0.0;       // budget / capacity
  double days_at_workload = 0.0;    // under the assumed daily volume
  double years_at_workload = 0.0;
};

class LifetimeEstimator {
 public:
  // `capacity_bytes` and the datasheet `rated_pe_cycles` drive the estimate.
  LifetimeEstimator(uint64_t capacity_bytes, uint32_t rated_pe_cycles)
      : capacity_bytes_(capacity_bytes), rated_pe_cycles_(rated_pe_cycles) {}

  // The folk estimate at `daily_write_bytes` of host writes per day.
  LifetimeEstimate Estimate(double daily_write_bytes) const;

  // Time for a malicious writer at `mib_per_sec` to exhaust the quota — the
  // "how fast can an app brick this phone" inverse.
  double HoursToExhaust(double mib_per_sec) const;

  // Ratio between this estimate's write budget and an observed budget; > 1
  // means the envelope was optimistic (the paper measures ~3x).
  double OptimismFactor(double observed_total_write_bytes) const;

  uint64_t capacity_bytes() const { return capacity_bytes_; }
  uint32_t rated_pe_cycles() const { return rated_pe_cycles_; }

 private:
  uint64_t capacity_bytes_;
  uint32_t rated_pe_cycles_;
};

}  // namespace flashsim

#endif  // SRC_WEARLAB_LIFETIME_ESTIMATOR_H_
