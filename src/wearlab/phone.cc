#include "src/wearlab/phone.h"

#include <algorithm>

#include "src/simcore/units.h"

namespace flashsim {

namespace {
constexpr uint64_t kStaticChunk = 4 * kMiB;
// Health polling cadence for phone experiments, in simulated time.
constexpr int64_t kPollMinutes = 10;
}  // namespace

const char* PhoneFsTypeName(PhoneFsType type) {
  switch (type) {
    case PhoneFsType::kExtFs: return "Ext4";
    case PhoneFsType::kCowFs: return "CowFs";
    case PhoneFsType::kLogFs:
    default: return "F2FS";
  }
}

Phone::Phone(std::unique_ptr<FlashDevice> device, PhoneFsType fs_type,
             AndroidSystemConfig system_config)
    : device_(std::move(device)), fs_type_(fs_type) {
  if (fs_type_ == PhoneFsType::kExtFs) {
    fs_ = std::make_unique<ExtFs>(*device_);
  } else if (fs_type_ == PhoneFsType::kCowFs) {
    fs_ = std::make_unique<CowFs>(*device_);
  } else {
    fs_ = std::make_unique<LogFs>(*device_);
  }
  system_ = std::make_unique<AndroidSystem>(*fs_, system_config);
}

Status Phone::FillStaticData(double utilization) {
  utilization = std::clamp(utilization, 0.0, 0.95);
  const uint64_t target = std::min(
      static_cast<uint64_t>(utilization * static_cast<double>(device_->CapacityBytes())),
      fs_->FreeBytes() > kStaticChunk ? fs_->FreeBytes() - kStaticChunk : 0);
  if (target == 0) {
    return Status::Ok();
  }
  FLASHSIM_RETURN_IF_ERROR(fs_->Create("system/os.img"));
  for (uint64_t off = 0; off < target; off += kStaticChunk) {
    const uint64_t len = std::min(kStaticChunk, target - off);
    Result<SimDuration> w = fs_->Write("system/os.img", off, len, /*sync=*/false);
    if (!w.ok()) {
      return w.status();
    }
  }
  Result<SimDuration> sync = fs_->Fsync("system/os.img");
  return sync.ok() ? Status::Ok() : sync.status();
}

PhoneWearOutcome RunPhoneWearExperiment(Phone& phone, AttackAppConfig attack_config,
                                        uint32_t target_level, SimDuration max_sim) {
  PhoneWearOutcome outcome;
  WearAttackApp app(phone.system(), attack_config);
  Status installed = app.Install();
  if (!installed.ok()) {
    outcome.status = installed;
    return outcome;
  }

  const SimTime start = phone.system().Now();
  const SimTime deadline = start + max_sim;

  auto current_level = [&]() -> uint32_t {
    const HealthReport h = phone.device().QueryHealth();
    if (!h.supported) {
      return 0;
    }
    return std::max(h.life_time_est_a, h.life_time_est_b);
  };

  uint32_t last_level = current_level();
  uint64_t level_start_bytes = app.total_bytes_written();
  SimTime level_start_time = phone.system().Now();

  // Poll the indicator often enough to resolve levels even on heavily scaled
  // devices: a level is ~a tenth of rated life, so 1/64 of capacity per slice
  // gives dozens of polls per level at any scale.
  const uint64_t slice_bytes =
      std::max<uint64_t>(64 * 1024, phone.device().CapacityBytes() / 64);

  while (phone.system().Now() < deadline) {
    const uint32_t level_now = current_level();
    if (phone.device().QueryHealth().supported && level_now >= target_level) {
      break;
    }
    const SimTime slice_end = std::min(
        deadline, phone.system().Now() + SimDuration::Minutes(kPollMinutes));
    AttackProgress progress = app.RunSlice(slice_bytes, slice_end);
    outcome.app_bytes_total += progress.bytes_written;
    if (progress.device_bricked) {
      outcome.bricked = true;
      outcome.hours_to_brick = (phone.system().Now() - start).ToHoursF();
      break;
    }
    if (!progress.last_error.ok()) {
      outcome.status = progress.last_error;
      break;
    }
    const uint32_t level_after = current_level();
    if (level_after != last_level && last_level != 0) {
      PhoneWearRow row;
      row.from_level = last_level;
      row.to_level = level_after;
      row.app_bytes = app.total_bytes_written() - level_start_bytes;
      row.hours = (phone.system().Now() - level_start_time).ToHoursF();
      outcome.rows.push_back(row);
      level_start_bytes = app.total_bytes_written();
      level_start_time = phone.system().Now();
      last_level = level_after;
    }
  }
  return outcome;
}

DetectionOutcome RunDetectionExperiment(Phone& phone, AttackPolicy policy,
                                        SimDuration duration) {
  DetectionOutcome outcome;
  outcome.policy = policy;
  outcome.stealth_window_fraction = phone.system().schedule().StealthWindowFraction();

  AttackAppConfig config;
  config.policy = policy;
  // Bigger chunks keep the detection run fast; the monitors only care about
  // *when* the I/O happens, not its granularity.
  config.write_bytes = 256 * 1024;
  // Size the working files to the (possibly scaled) phone: the paper's four
  // 100 MB files, shrunk when the simulated device is smaller.
  config.file_bytes = std::min<uint64_t>(
      config.file_bytes, phone.fs().FreeBytes() / (config.file_count * 2));
  config.file_bytes = RoundDown(config.file_bytes, config.write_bytes);
  WearAttackApp app(phone.system(), config);
  Status installed = app.Install();
  if (!installed.ok()) {
    return outcome;
  }
  const SimTime start = phone.system().Now();
  AttackProgress progress = app.RunUntil(start + duration);
  outcome.bytes_written = progress.bytes_written;
  outcome.hours = (phone.system().Now() - start).ToHoursF();
  outcome.effective_mib_per_sec =
      outcome.hours > 0
          ? BytesToMiB(progress.bytes_written) / (outcome.hours * 3600.0)
          : 0.0;
  outcome.detection = phone.system().Detection(config.app_id);
  return outcome;
}

}  // namespace flashsim
