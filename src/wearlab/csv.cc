#include "src/wearlab/csv.h"

#include <cstdio>

namespace flashsim {

std::string CsvEscape(const std::string& value) {
  if (value.find_first_of(",\"\n") == std::string::npos) {
    return value;
  }
  std::string out = "\"";
  for (char c : value) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

void WriteCsvRow(std::ostream& os, const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) {
      os << ',';
    }
    os << CsvEscape(cells[i]);
  }
  os << '\n';
}

namespace {
std::string FmtF(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}
}  // namespace

void WriteTransitionsCsv(std::ostream& os, const std::string& device_name,
                         const std::vector<WearTransition>& transitions,
                         double volume_factor) {
  WriteCsvRow(os, {"device", "type", "from_level", "to_level", "host_bytes",
                   "hours", "write_amplification", "pattern", "utilization",
                   "rewrite_utilized"});
  for (const WearTransition& t : transitions) {
    WriteCsvRow(os, {device_name, WearTypeName(t.type), std::to_string(t.from_level),
                     std::to_string(t.to_level),
                     FmtF(static_cast<double>(t.host_bytes) * volume_factor),
                     FmtF(t.hours * volume_factor), FmtF(t.write_amplification),
                     t.pattern_label, FmtF(t.utilization),
                     t.rewrite_utilized ? "1" : "0"});
  }
}

void WritePhoneRowsCsv(std::ostream& os, const std::string& device_name,
                       const std::string& fs_name,
                       const std::vector<PhoneWearRow>& rows, double volume_factor) {
  WriteCsvRow(os, {"device", "fs", "from_level", "to_level", "app_bytes", "hours"});
  for (const PhoneWearRow& row : rows) {
    WriteCsvRow(os, {device_name, fs_name, std::to_string(row.from_level),
                     std::to_string(row.to_level),
                     FmtF(static_cast<double>(row.app_bytes) * volume_factor),
                     FmtF(row.hours * volume_factor)});
  }
}

void WriteBandwidthCsv(std::ostream& os, const std::string& device_name,
                       const std::string& pattern,
                       const std::vector<std::pair<uint64_t, double>>& series) {
  WriteCsvRow(os, {"device", "pattern", "request_bytes", "mib_per_sec"});
  for (const auto& [size, bw] : series) {
    WriteCsvRow(os, {device_name, pattern, std::to_string(size), FmtF(bw)});
  }
}

}  // namespace flashsim
