// Plain-text table/series reporting for benches and examples, so every
// reproduced table and figure prints in a paper-comparable layout.

#ifndef SRC_WEARLAB_REPORT_H_
#define SRC_WEARLAB_REPORT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace flashsim {

// Fixed-width text table.
class TableReporter {
 public:
  explicit TableReporter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  void Print(std::ostream& os) const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Number formatting helpers for report cells.
std::string Fmt(double value, int precision = 2);
std::string FmtGiB(uint64_t bytes, int precision = 2);
std::string FmtGiB(double bytes, int precision = 2);
std::string FmtPercent(double fraction, int precision = 0);

}  // namespace flashsim

#endif  // SRC_WEARLAB_REPORT_H_
