// The paper's reported numbers, as machine-checkable constants.
//
// These are the calibration targets of DESIGN.md §5 in code form, used by
// the golden reproduction test (tests/paper_targets_test.cc) to pin the
// simulator to the published results: if a refactor drifts a headline
// figure, a test fails rather than a bench silently printing the wrong
// story.

#ifndef SRC_WEARLAB_PAPER_TARGETS_H_
#define SRC_WEARLAB_PAPER_TARGETS_H_

#include <cstdint>

#include "src/simcore/units.h"

namespace flashsim {

struct PaperTargets {
  // §4.3 / Figure 2.
  // "it takes a maximum of 992GiB to increment the wear-out level by 10%
  //  in the 8GB eMMC chip"
  static constexpr double kEmmc8MaxGiBPerLevel = 992.0;
  // "roughly three times lower than the back-of-the-envelope three thousand
  //  or more complete rewrites"
  static constexpr double kEnvelopeOptimismMin = 2.0;
  static constexpr double kEnvelopeOptimismMax = 4.0;
  // "For the 16GB eMMC chip, 23 TiB of writes are required to reach
  //  end-of-life"
  static constexpr double kEmmc16TiBToEol = 23.0;

  // Table 1 (eMMC 16GB hybrid).
  static constexpr double kTypeALevel12GiB = 11936.0;   // A 1-2 at low util
  static constexpr double kTypeACollapseGiB = 439.0;    // A per level, merged
  static constexpr double kTypeBLevelGiBLow = 2151.0;   // B per level, min
  static constexpr double kTypeBLevelGiBHigh = 2304.0;  // B per level, max

  // Figure 4: "wearing out the phone's storage requires about half of the
  // I/O volume" on F2FS.
  static constexpr double kF2fsOverExt4RatioMax = 0.75;
  static constexpr double kF2fsOverExt4RatioMin = 0.30;

  // §4.4: both budget phones "were bricked within two weeks".
  static constexpr double kBudgetPhoneBrickDaysMax = 14.0;

  // §1: the attack uses "less than 3% of the system's storage capacity"
  // (four 100 MB files on a 16 GB device).
  static constexpr double kAttackFootprintFraction = 0.03;

  // §2.1: endurance by cell technology.
  static constexpr uint32_t kSlcRatedPe = 100000;
  static constexpr uint32_t kMlcRatedPeLow = 3000;
  static constexpr uint32_t kTlcRatedPe = 1000;
};

// Loose two-sided check helper: is `measured` within `rel_tol` of `target`?
constexpr bool WithinRel(double measured, double target, double rel_tol) {
  const double lo = target * (1.0 - rel_tol);
  const double hi = target * (1.0 + rel_tol);
  return measured >= lo && measured <= hi;
}

}  // namespace flashsim

#endif  // SRC_WEARLAB_PAPER_TARGETS_H_
