// Phone: a complete simulated smartphone storage stack — flash device, file
// system (Ext4-like, F2FS-like, or littlefs-like CowFs), Android layer —
// plus drivers for the
// paper's phone experiments (Figures 3 and 4, the §4.4 detection study, and
// the BLU bricking runs).

#ifndef SRC_WEARLAB_PHONE_H_
#define SRC_WEARLAB_PHONE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/android/android_system.h"
#include "src/android/attack_app.h"
#include "src/device/flash_device.h"
#include "src/fs/cowfs.h"
#include "src/fs/extfs.h"
#include "src/fs/logfs.h"

namespace flashsim {

enum class PhoneFsType { kExtFs, kLogFs, kCowFs };

const char* PhoneFsTypeName(PhoneFsType type);

class Phone {
 public:
  // Takes ownership of `device`; mounts the requested file system on it and
  // boots the Android layer.
  Phone(std::unique_ptr<FlashDevice> device, PhoneFsType fs_type,
        AndroidSystemConfig system_config = {});

  // Writes the OS image + preinstalled data as a static file so the device
  // starts at a realistic utilization (phones are never empty).
  Status FillStaticData(double utilization);

  FlashDevice& device() { return *device_; }
  Filesystem& fs() { return *fs_; }
  AndroidSystem& system() { return *system_; }
  PhoneFsType fs_type() const { return fs_type_; }

 private:
  std::unique_ptr<FlashDevice> device_;
  std::unique_ptr<Filesystem> fs_;
  std::unique_ptr<AndroidSystem> system_;
  PhoneFsType fs_type_;
};

// One wear-indicator transition observed from inside the phone (app-side I/O
// volume, unlike the raw-device WearTransition).
struct PhoneWearRow {
  uint32_t from_level = 0;
  uint32_t to_level = 0;
  uint64_t app_bytes = 0;
  double hours = 0.0;
};

struct PhoneWearOutcome {
  std::vector<PhoneWearRow> rows;
  bool bricked = false;
  double hours_to_brick = 0.0;
  uint64_t app_bytes_total = 0;
  Status status;
};

// Runs the wear attack on the phone until the indicator reaches
// `target_level` (or the device bricks / `max_sim` elapses), recording one
// row per indicator transition. Devices without health reporting (the BLU
// phones) produce no rows — only the brick outcome.
PhoneWearOutcome RunPhoneWearExperiment(Phone& phone, AttackAppConfig attack_config,
                                        uint32_t target_level, SimDuration max_sim);

// Detection study (§4.4): runs the attack for `duration` under the given
// policy and reports what the monitors saw and how much I/O got through.
struct DetectionOutcome {
  AttackPolicy policy = AttackPolicy::kAggressive;
  uint64_t bytes_written = 0;
  double hours = 0.0;
  double effective_mib_per_sec = 0.0;
  DetectionSummary detection;
  double stealth_window_fraction = 0.0;
};

DetectionOutcome RunDetectionExperiment(Phone& phone, AttackPolicy policy,
                                        SimDuration duration);

}  // namespace flashsim

#endif  // SRC_WEARLAB_PHONE_H_
