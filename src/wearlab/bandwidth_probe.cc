#include "src/wearlab/bandwidth_probe.h"

#include <algorithm>

#include "src/simcore/units.h"

namespace flashsim {

std::vector<uint64_t> Figure1RequestSizes() {
  // 0.5 KiB to 16 MiB, powers of two — the x-axis of Figure 1.
  std::vector<uint64_t> sizes;
  for (uint64_t s = 512; s <= 16 * kMiB; s *= 2) {
    sizes.push_back(s);
  }
  return sizes;
}

BandwidthResult RunBandwidthProbe(BlockDevice& device, const BandwidthProbeConfig& cfg) {
  BandwidthResult result;
  const uint64_t region =
      std::min(cfg.region_bytes, RoundDown(device.CapacityBytes(), cfg.request_bytes));
  if (region < cfg.request_bytes) {
    result.status = InvalidArgumentError("probe region smaller than one request");
    return result;
  }
  Rng rng(cfg.seed);
  const uint64_t slots = region / cfg.request_bytes;

  // For read probes, populate the region first (off the clock budget: we
  // measure from after the prefill).
  if (cfg.kind == IoKind::kRead) {
    for (uint64_t off = 0; off < region; off += 16 * kMiB) {
      IoRequest fill{IoKind::kWrite, off, std::min<uint64_t>(16 * kMiB, region - off)};
      Result<IoCompletion> done = device.Submit(fill);
      if (!done.ok()) {
        result.status = done.status();
        return result;
      }
    }
  }

  const SimTime start = device.clock().Now();
  uint64_t issued = 0;
  uint64_t seq_cursor = 0;
  std::vector<IoRequest> batch;
  while (issued < cfg.total_bytes) {
    const uint64_t remaining =
        CeilDiv(cfg.total_bytes - issued, cfg.request_bytes);
    const uint64_t n =
        std::max<uint64_t>(1, std::min(cfg.batch_requests, remaining));
    batch.clear();
    for (uint64_t i = 0; i < n; ++i) {
      uint64_t slot;
      if (cfg.pattern == AccessPattern::kSequential) {
        slot = seq_cursor++ % slots;
      } else {
        slot = rng.UniformU64(slots);
      }
      batch.push_back(IoRequest{cfg.kind, slot * cfg.request_bytes, cfg.request_bytes});
    }
    BatchCompletion done = device.SubmitBatch(batch.data(), batch.size());
    issued += done.bytes_transferred;
    if (!done.status.ok()) {
      result.status = done.status;
      return result;
    }
  }
  const SimDuration elapsed = device.clock().Now() - start;
  result.bytes_moved = issued;
  result.elapsed = elapsed;
  result.mib_per_sec =
      elapsed.ToSecondsF() > 0
          ? static_cast<double>(issued) / (1024.0 * 1024.0) / elapsed.ToSecondsF()
          : 0.0;
  return result;
}

}  // namespace flashsim
