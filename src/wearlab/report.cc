#include "src/wearlab/report.h"

#include <algorithm>
#include <cstdio>

#include "src/simcore/units.h"

namespace flashsim {

TableReporter::TableReporter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TableReporter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TableReporter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << "  " << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) {
        os << ' ';
      }
    }
    os << '\n';
  };
  print_row(headers_);
  size_t total = 2;
  for (size_t w : widths) {
    total += w + 2;
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FmtGiB(uint64_t bytes, int precision) {
  return Fmt(BytesToGiB(bytes), precision);
}

std::string FmtGiB(double bytes, int precision) {
  return Fmt(bytes / static_cast<double>(kGiB), precision);
}

std::string FmtPercent(double fraction, int precision) {
  return Fmt(fraction * 100.0, precision) + "%";
}

}  // namespace flashsim
