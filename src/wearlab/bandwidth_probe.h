// BandwidthProbe: the Figure 1 micro-benchmark harness.
//
// Measures sustained synchronous write (or read) bandwidth of a device for a
// given request size and access pattern, by issuing enough requests over a
// bounded region to reach steady state and dividing bytes by simulated time.

#ifndef SRC_WEARLAB_BANDWIDTH_PROBE_H_
#define SRC_WEARLAB_BANDWIDTH_PROBE_H_

#include <cstdint>
#include <vector>

#include "src/blockdev/block_device.h"
#include "src/simcore/rng.h"
// AccessPattern/AccessPatternName historically lived here; they moved to the
// workload library so probes and workload generators share one vocabulary.
// Re-exported via this include for source compatibility.
#include "src/workload/access_pattern.h"

namespace flashsim {

struct BandwidthProbeConfig {
  IoKind kind = IoKind::kWrite;
  AccessPattern pattern = AccessPattern::kSequential;
  uint64_t request_bytes = 4096;
  // Bounded working region (like the paper's test files).
  uint64_t region_bytes = 256ull * 1024 * 1024;
  // Total volume to push through before measuring stops.
  uint64_t total_bytes = 64ull * 1024 * 1024;
  // Requests per SubmitBatch call; 1 issues them one by one. Simulated
  // results are identical either way — batching only reduces wall-clock.
  uint64_t batch_requests = 1;
  uint64_t seed = 42;
};

struct BandwidthResult {
  double mib_per_sec = 0.0;
  uint64_t bytes_moved = 0;
  SimDuration elapsed;
  Status status;  // non-OK if the device failed mid-probe
};

// Runs one probe. The region is clamped to the device capacity; for reads
// the region is written once first so reads hit mapped pages.
BandwidthResult RunBandwidthProbe(BlockDevice& device, const BandwidthProbeConfig& cfg);

// The request-size sweep of Figure 1 (0.5 KiB ... 16 MiB by default).
std::vector<uint64_t> Figure1RequestSizes();

}  // namespace flashsim

#endif  // SRC_WEARLAB_BANDWIDTH_PROBE_H_
