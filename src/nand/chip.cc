#include "src/nand/chip.h"

#include <cassert>

namespace flashsim {

namespace {
// Read disturb adds ~1% RBER inflation per 10K reads of a block between
// erases — a secondary effect, modelled coarsely.
constexpr double kReadDisturbPerRead = 1e-6;
// Program failures are rarer than erase failures on worn blocks.
constexpr double kProgramFailureScale = 0.25;
}  // namespace

NandChip::NandChip(NandChipConfig config, uint64_t seed)
    : config_(std::move(config)),
      rber_model_(config_.rber, config_.rated_pe_cycles),
      ecc_(config_.ecc, config_.page_size_bytes),
      rng_(seed) {
  assert(config_.Validate().ok());
  blocks_.reserve(config_.total_blocks());
  for (uint32_t i = 0; i < config_.total_blocks(); ++i) {
    blocks_.emplace_back(config_.pages_per_block);
  }
  reads_since_erase_.assign(config_.total_blocks(), 0);
}

double NandChip::WearFailureProbability(uint32_t pe_cycles, double scale) const {
  const double rated = static_cast<double>(config_.rated_pe_cycles);
  const double onset = config_.failure_onset * rated;
  const double pe = static_cast<double>(pe_cycles);
  if (pe <= onset) {
    return 0.0;
  }
  // Linear ramp from onset to 1.5x rated, then keep climbing to a 0.5 cap so a
  // device pushed far past EOL fails fast.
  const double ramp_end = 1.5 * rated;
  double p;
  if (pe < ramp_end) {
    p = config_.failure_ceiling * (pe - onset) / (ramp_end - onset);
  } else {
    p = config_.failure_ceiling + (pe - ramp_end) / rated * config_.failure_ceiling;
  }
  p *= scale;
  return p > 0.5 ? 0.5 : p;
}

Status NandChip::CheckAddr(PhysPageAddr addr) const {
  if (addr.block >= blocks_.size()) {
    return OutOfRangeError("block index out of range");
  }
  if (addr.page >= config_.pages_per_block) {
    return OutOfRangeError("page index out of range");
  }
  return Status::Ok();
}

Status NandChip::CheckPowered() const {
  if (rail_ != nullptr && !rail_->powered()) {
    return PowerLossError("power is off");
  }
  return Status::Ok();
}

Result<SimDuration> NandChip::EraseBlock(BlockId id, uint32_t wear_weight) {
  if (id >= blocks_.size()) {
    return OutOfRangeError("block index out of range");
  }
  NandBlock& blk = blocks_[id];
  if (blk.is_bad()) {
    return UnavailableError("erase of bad block");
  }
  FLASHSIM_RETURN_IF_ERROR(CheckPowered());
  if (rail_ != nullptr && rail_->OnDestructiveOp()) {
    blk.TornErase();
    counters_.Increment("nand.torn_erases");
    return PowerLossError("power lost mid-erase; block torn");
  }
  counters_.Increment("nand.erases");
  ++wear_version_;
  // The erase itself always consumes the cycle; failure is detected by the
  // erase-verify step afterwards.
  FLASHSIM_RETURN_IF_ERROR(blk.Erase(wear_weight));
  reads_since_erase_[id] = 0;
  if (rng_.Bernoulli(WearFailureProbability(blk.pe_cycles(), /*scale=*/1.0))) {
    blk.MarkBad();
    counters_.Increment("nand.erase_failures");
    return UnavailableError("erase-verify failed; block retired");
  }
  return config_.timings.erase_block;
}

Result<SimDuration> NandChip::ProgramPage(PhysPageAddr addr, uint64_t tag) {
  FLASHSIM_RETURN_IF_ERROR(CheckAddr(addr));
  NandBlock& blk = blocks_[addr.block];
  FLASHSIM_RETURN_IF_ERROR(blk.CheckProgrammable(addr.page));
  FLASHSIM_RETURN_IF_ERROR(CheckPowered());
  if (rail_ != nullptr && rail_->OnDestructiveOp()) {
    (void)blk.ProgramTorn(addr.page);
    counters_.Increment("nand.torn_programs");
    return PowerLossError("power lost mid-program; page torn");
  }
  (void)blk.ProgramPage(addr.page, tag, NextSeq());
  counters_.Increment("nand.programs");
  if (rng_.Bernoulli(
          WearFailureProbability(blk.pe_cycles(), kProgramFailureScale))) {
    blk.MarkBad();
    ++wear_version_;
    counters_.Increment("nand.program_failures");
    return DataLossError("program-verify failed; block retired");
  }
  return config_.timings.program_page;
}

Result<NandProgramRunOutcome> NandChip::ProgramRun(BlockId block,
                                                   const uint64_t* tags,
                                                   uint32_t count) {
  if (block >= blocks_.size()) {
    return OutOfRangeError("block index out of range");
  }
  NandBlock& blk = blocks_[block];
  if (blk.write_pointer() + count > config_.pages_per_block) {
    return OutOfRangeError("program run beyond end of block");
  }
  NandProgramRunOutcome out;
  if (count == 0) {
    return out;
  }
  // One probability evaluation for the whole run; Bernoulli(p <= 0) draws
  // nothing, so below the wear onset the run consumes no randomness at all.
  const double p_fail =
      WearFailureProbability(blk.pe_cycles(), kProgramFailureScale);
  for (uint32_t i = 0; i < count; ++i) {
    const uint32_t wp = blk.write_pointer();
    FLASHSIM_RETURN_IF_ERROR(blk.CheckProgrammable(wp));
    FLASHSIM_RETURN_IF_ERROR(CheckPowered());
    if (rail_ != nullptr && rail_->OnDestructiveOp()) {
      (void)blk.ProgramTorn(wp);
      counters_.Increment("nand.programs", i);
      counters_.Increment("nand.torn_programs");
      out.power_lost = true;
      return out;
    }
    (void)blk.ProgramPage(wp, tags[i], NextSeq());
    if (p_fail > 0.0 && rng_.UniformDouble() < p_fail) {
      blk.MarkBad();
      ++wear_version_;
      counters_.Increment("nand.programs", i + 1);  // the failed program counts
      counters_.Increment("nand.program_failures");
      out.block_failed = true;
      return out;
    }
    ++out.pages_done;
    out.latency += config_.timings.program_page;
  }
  counters_.Increment("nand.programs", count);
  return out;
}

double NandChip::BlockRber(BlockId id) const {
  const double base = rber_model_.RberAt(blocks_[id].pe_cycles());
  const double disturb =
      1.0 + kReadDisturbPerRead * static_cast<double>(reads_since_erase_[id]);
  const double rber = base * disturb;
  return rber > 1.0 ? 1.0 : rber;
}

Result<NandReadOutcome> NandChip::ReadPage(PhysPageAddr addr) {
  FLASHSIM_RETURN_IF_ERROR(CheckAddr(addr));
  FLASHSIM_RETURN_IF_ERROR(CheckPowered());
  const NandBlock& blk = blocks_[addr.block];
  if (blk.IsTorn(addr.page)) {
    counters_.Increment("nand.torn_reads");
    return DataLossError("read of torn page");
  }
  Result<uint64_t> tag = blk.ReadTag(addr.page);
  if (!tag.ok()) {
    return tag.status();
  }
  counters_.Increment("nand.reads");
  ++reads_since_erase_[addr.block];
  const EccOutcome ecc = ecc_.DecodePage(BlockRber(addr.block), rng_);
  if (!ecc.correctable) {
    counters_.Increment("nand.uncorrectable_reads");
    return DataLossError("uncorrectable ECC error");
  }
  NandReadOutcome out;
  out.tag = tag.value();
  out.latency = config_.timings.read_page;
  out.corrected_bits = ecc.corrected_bits;
  return out;
}

SimDuration NandChip::AnnealAll(double recovery_fraction, SimDuration per_block_cost) {
  SimDuration total;
  for (NandBlock& blk : blocks_) {
    if (blk.is_bad()) {
      continue;
    }
    blk.Heal(recovery_fraction);
    total += per_block_cost;
  }
  ++wear_version_;
  counters_.Increment("nand.anneals");
  return total;
}

WearSummary NandChip::ComputeWearSummary() const {
  if (wear_summary_version_ == wear_version_) {
    return wear_summary_cache_;
  }
  WearSummary s;
  s.total_blocks = static_cast<uint32_t>(blocks_.size());
  bool first = true;
  for (const NandBlock& blk : blocks_) {
    if (blk.is_bad()) {
      ++s.bad_blocks;
    }
    const uint32_t pe = blk.pe_cycles();
    s.total_pe += pe;
    if (first) {
      s.min_pe = pe;
      s.max_pe = pe;
      first = false;
    } else {
      if (pe < s.min_pe) {
        s.min_pe = pe;
      }
      if (pe > s.max_pe) {
        s.max_pe = pe;
      }
    }
  }
  s.avg_pe = s.total_blocks == 0
                 ? 0.0
                 : static_cast<double>(s.total_pe) / static_cast<double>(s.total_blocks);
  wear_summary_cache_ = s;
  wear_summary_version_ = wear_version_;
  return s;
}

}  // namespace flashsim
