#include "src/nand/chip.h"

#include <algorithm>
#include <array>
#include <cassert>

#include "src/simcore/snapshot.h"

namespace flashsim {

namespace {
// Read disturb adds ~1% RBER inflation per 10K reads of a block between
// erases — a secondary effect, modelled coarsely.
constexpr double kReadDisturbPerRead = 1e-6;
// Program failures are rarer than erase failures on worn blocks.
constexpr double kProgramFailureScale = 0.25;
}  // namespace

NandChip::NandChip(NandChipConfig config, uint64_t seed)
    : config_(std::move(config)),
      rber_model_(config_.rber, config_.rated_pe_cycles),
      ecc_(config_.ecc, config_.page_size_bytes),
      rng_(seed) {
  assert(config_.Validate().ok());
  planes_.Init(config_.total_pages());
  const uint32_t ppb = config_.pages_per_block;
  blocks_.reserve(config_.total_blocks());
  for (uint32_t i = 0; i < config_.total_blocks(); ++i) {
    blocks_.emplace_back(planes_, static_cast<uint64_t>(i) * ppb, ppb);
  }
  reads_since_erase_.assign(config_.total_blocks(), 0);
  plane_programs_.assign(config_.planes(), 0);
  plane_reads_.assign(config_.planes(), 0);
  plane_erases_.assign(config_.planes(), 0);
  plane_busy_ns_.assign(config_.planes(), 0);
  programs_counter_ = counters_.Slot("nand.programs");
  erases_counter_ = counters_.Slot("nand.erases");
  reads_counter_ = counters_.Slot("nand.reads");
  RebuildWearAggregates();
}

double NandChip::WearFailureProbability(uint32_t pe_cycles, double scale) const {
  const double rated = static_cast<double>(config_.rated_pe_cycles);
  const double onset = config_.failure_onset * rated;
  const double pe = static_cast<double>(pe_cycles);
  if (pe <= onset) {
    return 0.0;
  }
  // Linear ramp from onset to 1.5x rated, then keep climbing to a 0.5 cap so a
  // device pushed far past EOL fails fast.
  const double ramp_end = 1.5 * rated;
  double p;
  if (pe < ramp_end) {
    p = config_.failure_ceiling * (pe - onset) / (ramp_end - onset);
  } else {
    p = config_.failure_ceiling + (pe - ramp_end) / rated * config_.failure_ceiling;
  }
  p *= scale;
  return p > 0.5 ? 0.5 : p;
}

Status NandChip::CheckAddr(PhysPageAddr addr) const {
  if (addr.block >= blocks_.size()) {
    return OutOfRangeError("block index out of range");
  }
  if (addr.page >= config_.pages_per_block) {
    return OutOfRangeError("page index out of range");
  }
  return Status::Ok();
}

Status NandChip::CheckPowered() const {
  if (rail_ != nullptr && !rail_->powered()) {
    return PowerLossError("power is off");
  }
  return Status::Ok();
}

void NandChip::NotePlaneOp(BlockId block, std::vector<uint64_t>& counter,
                           SimDuration per_op, uint64_t ops) {
  const uint32_t plane = PlaneOfBlock(block);
  counter[plane] += ops;
  plane_busy_ns_[plane] +=
      static_cast<uint64_t>(per_op.nanos()) * ops;
}

void NandChip::NoteWear(uint32_t pe_after, uint32_t wear_weight) {
  if (wear_weight == 0) {
    return;
  }
  --pe_hist_[pe_after - wear_weight];
  if (pe_after >= pe_hist_.size()) {
    pe_hist_.resize(pe_after + 1, 0);
  }
  ++pe_hist_[pe_after];
  total_pe_ += wear_weight;
  if (pe_after > pe_max_) {
    pe_max_ = pe_after;
  }
}

void NandChip::RebuildWearAggregates() {
  pe_hist_.assign(1, 0);
  total_pe_ = 0;
  bad_blocks_count_ = 0;
  pe_min_ = 0;
  pe_max_ = 0;
  for (const NandBlock& blk : blocks_) {
    const uint32_t pe = blk.pe_cycles();
    if (pe >= pe_hist_.size()) {
      pe_hist_.resize(pe + 1, 0);
    }
    ++pe_hist_[pe];
    total_pe_ += pe;
    if (pe > pe_max_) {
      pe_max_ = pe;
    }
    if (blk.is_bad()) {
      ++bad_blocks_count_;
    }
  }
}

Result<SimDuration> NandChip::EraseBlock(BlockId id, uint32_t wear_weight) {
  if (id >= blocks_.size()) {
    return OutOfRangeError("block index out of range");
  }
  NandBlock& blk = blocks_[id];
  if (blk.is_bad()) {
    return UnavailableError("erase of bad block");
  }
  FLASHSIM_RETURN_IF_ERROR(CheckPowered());
  if (rail_ != nullptr && rail_->OnDestructiveOp()) {
    blk.TornErase();
    counters_.Increment("nand.torn_erases");
    return PowerLossError("power lost mid-erase; block torn");
  }
  ++*erases_counter_;
  NotePlaneOp(id, plane_erases_, config_.timings.erase_block);
  ++wear_version_;
  // The erase itself always consumes the cycle; failure is detected by the
  // erase-verify step afterwards.
  FLASHSIM_RETURN_IF_ERROR(blk.Erase(wear_weight));
  reads_since_erase_[id] = 0;
  NoteWear(blk.pe_cycles(), wear_weight);
  if (rng_.Bernoulli(WearFailureProbability(blk.pe_cycles(), /*scale=*/1.0))) {
    blk.MarkBad();
    ++bad_blocks_count_;
    counters_.Increment("nand.erase_failures");
    return UnavailableError("erase-verify failed; block retired");
  }
  return config_.timings.erase_block;
}

Result<SimDuration> NandChip::ProgramPage(PhysPageAddr addr, uint64_t tag) {
  FLASHSIM_RETURN_IF_ERROR(CheckAddr(addr));
  NandBlock& blk = blocks_[addr.block];
  FLASHSIM_RETURN_IF_ERROR(blk.CheckProgrammable(addr.page));
  FLASHSIM_RETURN_IF_ERROR(CheckPowered());
  if (rail_ != nullptr && rail_->OnDestructiveOp()) {
    (void)blk.ProgramTorn(addr.page);
    counters_.Increment("nand.torn_programs");
    return PowerLossError("power lost mid-program; page torn");
  }
  (void)blk.ProgramPage(addr.page, tag, NextSeq());
  ++*programs_counter_;
  NotePlaneOp(addr.block, plane_programs_, config_.timings.program_page);
  if (rng_.Bernoulli(
          WearFailureProbability(blk.pe_cycles(), kProgramFailureScale))) {
    blk.MarkBad();
    ++bad_blocks_count_;
    ++wear_version_;
    counters_.Increment("nand.program_failures");
    return DataLossError("program-verify failed; block retired");
  }
  return config_.timings.program_page;
}

Result<NandProgramRunOutcome> NandChip::ProgramRun(BlockId block,
                                                   const uint64_t* tags,
                                                   uint32_t count) {
  if (block >= blocks_.size()) {
    return OutOfRangeError("block index out of range");
  }
  NandBlock& blk = blocks_[block];
  if (blk.write_pointer() + count > config_.pages_per_block) {
    return OutOfRangeError("program run beyond end of block");
  }
  NandProgramRunOutcome out;
  if (count == 0) {
    return out;
  }
  // The remaining per-page preconditions (bad, erase-torn, in-order) cannot
  // change mid-run — a mid-run MarkBad returns immediately — so they are
  // checked once for the whole run instead of per page.
  FLASHSIM_RETURN_IF_ERROR(blk.CheckProgrammable(blk.write_pointer()));
  // One probability evaluation for the whole run; Bernoulli(p <= 0) draws
  // nothing, so below the wear onset the run consumes no randomness at all.
  const double p_fail =
      WearFailureProbability(blk.pe_cycles(), kProgramFailureScale);
  if (rail_ == nullptr && p_fail <= 0.0) {
    // Fast path: no power rail attached and below the failure onset. The
    // per-page loop would draw no randomness and could not be interrupted,
    // so a straight metadata-plane fill is bit-exact with it.
    uint64_t* seq = shared_seq_ != nullptr ? shared_seq_ : &next_seq_;
    blk.ProgramRunFast(tags, count, seq);
    out.pages_done = count;
    out.latency = config_.timings.program_page * static_cast<int64_t>(count);
    *programs_counter_ += count;
    NotePlaneOp(block, plane_programs_, config_.timings.program_page, count);
    return out;
  }
  for (uint32_t i = 0; i < count; ++i) {
    const uint32_t wp = blk.write_pointer();
    FLASHSIM_RETURN_IF_ERROR(CheckPowered());
    if (rail_ != nullptr && rail_->OnDestructiveOp()) {
      (void)blk.ProgramTorn(wp);
      *programs_counter_ += i;
      NotePlaneOp(block, plane_programs_, config_.timings.program_page, i);
      counters_.Increment("nand.torn_programs");
      out.power_lost = true;
      return out;
    }
    (void)blk.ProgramPage(wp, tags[i], NextSeq());
    if (p_fail > 0.0 && rng_.UniformDouble() < p_fail) {
      blk.MarkBad();
      ++bad_blocks_count_;
      ++wear_version_;
      *programs_counter_ += i + 1;  // the failed program counts
      NotePlaneOp(block, plane_programs_, config_.timings.program_page, i + 1);
      counters_.Increment("nand.program_failures");
      out.block_failed = true;
      return out;
    }
    ++out.pages_done;
    out.latency += config_.timings.program_page;
  }
  *programs_counter_ += count;
  NotePlaneOp(block, plane_programs_, config_.timings.program_page, count);
  return out;
}

bool NandChip::BlockHasTornPages(BlockId id) const {
  const NandBlock& blk = blocks_[id];
  const uint64_t first = blk.base_;
  const uint64_t last = first + blk.write_pointer();  // exclusive
  for (uint64_t bit = first; bit < last;) {
    const uint64_t word = bit >> 6;
    const uint64_t word_end = (word + 1) << 6;
    const uint64_t upto = last < word_end ? last : word_end;
    uint64_t mask = ~0ull << (bit & 63);
    if ((upto & 63) != 0) {
      mask &= (1ull << (upto & 63)) - 1;
    }
    if ((planes_.torn[word] & mask) != 0) {
      return true;
    }
    bit = upto;
  }
  return false;
}

double NandChip::BlockRber(BlockId id) const {
  const double base = rber_model_.RberAt(blocks_[id].pe_cycles());
  const double disturb =
      1.0 + kReadDisturbPerRead * static_cast<double>(reads_since_erase_[id]);
  const double rber = base * disturb;
  return rber > 1.0 ? 1.0 : rber;
}

Result<NandReadOutcome> NandChip::ReadPage(PhysPageAddr addr) {
  FLASHSIM_RETURN_IF_ERROR(CheckAddr(addr));
  FLASHSIM_RETURN_IF_ERROR(CheckPowered());
  const NandBlock& blk = blocks_[addr.block];
  if (blk.IsTorn(addr.page)) {
    counters_.Increment("nand.torn_reads");
    return DataLossError("read of torn page");
  }
  Result<uint64_t> tag = blk.ReadTag(addr.page);
  if (!tag.ok()) {
    return tag.status();
  }
  ++*reads_counter_;
  NotePlaneOp(addr.block, plane_reads_, config_.timings.read_page);
  ++reads_since_erase_[addr.block];
  const EccOutcome ecc = ecc_.DecodePage(BlockRber(addr.block), rng_);
  if (!ecc.correctable) {
    counters_.Increment("nand.uncorrectable_reads");
    return DataLossError("uncorrectable ECC error");
  }
  NandReadOutcome out;
  out.tag = tag.value();
  out.latency = config_.timings.read_page;
  out.corrected_bits = ecc.corrected_bits;
  return out;
}

SimDuration NandChip::AnnealAll(double recovery_fraction, SimDuration per_block_cost) {
  SimDuration total;
  for (NandBlock& blk : blocks_) {
    if (blk.is_bad()) {
      continue;
    }
    blk.Heal(recovery_fraction);
    total += per_block_cost;
  }
  ++wear_version_;
  counters_.Increment("nand.anneals");
  RebuildWearAggregates();
  return total;
}

WearSummary NandChip::ComputeWearSummary() const {
  WearSummary s;
  s.total_blocks = static_cast<uint32_t>(blocks_.size());
  if (s.total_blocks == 0) {
    return s;
  }
  while (pe_min_ < pe_max_ && pe_hist_[pe_min_] == 0) {
    ++pe_min_;
  }
  s.min_pe = pe_min_;
  s.max_pe = pe_max_;
  s.total_pe = total_pe_;
  s.bad_blocks = bad_blocks_count_;
  s.avg_pe = static_cast<double>(total_pe_) / static_cast<double>(s.total_blocks);
  return s;
}

void NandChip::SaveState(SnapshotWriter& w) const {
  w.BeginSection(SnapshotTag("CHIP"));
  // Geometry fingerprint, validated on load.
  w.U32(static_cast<uint32_t>(blocks_.size()));
  w.U32(config_.pages_per_block);
  w.U32(config_.page_size_bytes);
  w.U32(config_.rated_pe_cycles);
  for (uint64_t word : rng_.state()) {
    w.U64(word);
  }
  w.VecU64(planes_.tags);
  w.VecU64(planes_.seqs);
  w.VecU64(planes_.torn);
  std::vector<uint32_t> wps(blocks_.size());
  std::vector<uint32_t> pes(blocks_.size());
  std::vector<uint8_t> flags(blocks_.size());
  for (size_t i = 0; i < blocks_.size(); ++i) {
    wps[i] = blocks_[i].write_pointer();
    pes[i] = blocks_[i].pe_cycles();
    flags[i] = static_cast<uint8_t>((blocks_[i].is_bad() ? 1 : 0) |
                                    (blocks_[i].erase_torn() ? 2 : 0));
  }
  w.VecU32(wps);
  w.VecU32(pes);
  w.VecU8(flags);
  w.VecU32(reads_since_erase_);
  w.U64(wear_version_);
  w.U64(next_seq_);
  counters_.SaveState(w);
  w.VecU64(plane_programs_);
  w.VecU64(plane_reads_);
  w.VecU64(plane_erases_);
  w.VecU64(plane_busy_ns_);
  w.EndSection();
}

Status NandChip::LoadState(SnapshotReader& r) {
  FLASHSIM_RETURN_IF_ERROR(r.EnterSection(SnapshotTag("CHIP")));
  if (r.U32() != blocks_.size() || r.U32() != config_.pages_per_block ||
      r.U32() != config_.page_size_bytes || r.U32() != config_.rated_pe_cycles) {
    return FailedPreconditionError(
        "snapshot chip geometry does not match the constructed device");
  }
  std::array<uint64_t, 4> rng_state;
  for (uint64_t& word : rng_state) {
    word = r.U64();
  }
  std::vector<uint64_t> tags, seqs, torn;
  r.VecU64(&tags);
  r.VecU64(&seqs);
  r.VecU64(&torn);
  std::vector<uint32_t> wps, pes, reads;
  std::vector<uint8_t> flags;
  r.VecU32(&wps);
  r.VecU32(&pes);
  r.VecU8(&flags);
  r.VecU32(&reads);
  const uint64_t wear_version = r.U64();
  const uint64_t next_seq = r.U64();
  FLASHSIM_RETURN_IF_ERROR(counters_.LoadState(r));
  std::vector<uint64_t> pprog, pread, perase, pbusy;
  r.VecU64(&pprog);
  r.VecU64(&pread);
  r.VecU64(&perase);
  r.VecU64(&pbusy);
  r.LeaveSection();
  FLASHSIM_RETURN_IF_ERROR(r.status());
  if (tags.size() != planes_.tags.size() || seqs.size() != planes_.seqs.size() ||
      torn.size() != planes_.torn.size() || wps.size() != blocks_.size() ||
      pes.size() != blocks_.size() || flags.size() != blocks_.size() ||
      reads.size() != blocks_.size() || pprog.size() != plane_programs_.size() ||
      pread.size() != plane_reads_.size() || perase.size() != plane_erases_.size() ||
      pbusy.size() != plane_busy_ns_.size()) {
    return DataLossError("snapshot chip state has inconsistent sizes");
  }
  rng_.set_state(rng_state);
  // Plane CONTENTS are copied into the existing buffers: the NandBlock views
  // hold raw pointers into them, so the buffers themselves must not move.
  std::copy(tags.begin(), tags.end(), planes_.tags.begin());
  std::copy(seqs.begin(), seqs.end(), planes_.seqs.begin());
  std::copy(torn.begin(), torn.end(), planes_.torn.begin());
  for (size_t i = 0; i < blocks_.size(); ++i) {
    NandBlock& blk = blocks_[i];
    blk.write_pointer_ = wps[i];
    blk.pe_cycles_ = pes[i];
    blk.bad_ = (flags[i] & 1) != 0;
    blk.erase_torn_ = (flags[i] & 2) != 0;
  }
  reads_since_erase_ = std::move(reads);
  plane_programs_ = std::move(pprog);
  plane_reads_ = std::move(pread);
  plane_erases_ = std::move(perase);
  plane_busy_ns_ = std::move(pbusy);
  wear_version_ = wear_version;
  next_seq_ = next_seq;
  RebuildWearAggregates();
  return Status::Ok();
}

}  // namespace flashsim
