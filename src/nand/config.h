// NAND flash chip configuration: cell technology, geometry, timing, and the
// parameters of the wear/error model.
//
// The model follows the standard structure of mobile NAND (cf. §2.1 of the
// paper): a chip is a set of dies on channels; dies contain blocks; blocks
// contain pages that must be programmed in order and erased as a unit. Cell
// technology (SLC/MLC/TLC) sets rated endurance and raw-bit-error behaviour.

#ifndef SRC_NAND_CONFIG_H_
#define SRC_NAND_CONFIG_H_

#include <cstdint>
#include <string>

#include "src/simcore/sim_time.h"
#include "src/simcore/status.h"
#include "src/simcore/units.h"

namespace flashsim {

// Bits stored per cell. Denser cells are slower and endure fewer P/E cycles.
enum class CellType { kSlc = 1, kMlc = 2, kTlc = 3 };

const char* CellTypeName(CellType type);

// Per-operation NAND array timings. read_page/program_page/erase_block are
// the array-side tR/tProg/tBERS; bus_transfer_page is the per-page channel
// transfer time consumed by the device-level event engine's channel model
// (src/blockdev/io_queue.h). It defaults to zero, which folds per-page
// transfer into the device's aggregate bus bandwidth — the calibrated flat
// behaviour — while letting uFLIP-style experiments charge an explicit
// per-page bus hold.
struct NandTimings {
  SimDuration read_page = SimDuration::Micros(50);       // tR
  SimDuration program_page = SimDuration::Micros(800);   // tProg
  SimDuration erase_block = SimDuration::Millis(3);      // tBERS
  SimDuration bus_transfer_page = SimDuration::Nanos(0);
};

// Returns typical array timings for a cell technology.
NandTimings DefaultTimingsFor(CellType type);

// Raw bit error rate model:
//   rber(pe) = base + growth * (pe / rated_endurance)^exponent
// This captures the empirical shape of NAND wear curves: near-flat while
// young, polynomial blow-up approaching and past rated endurance.
struct RberModelParams {
  double base_rber = 1e-7;
  double growth_rber = 4e-4;
  double exponent = 3.0;
};

// ECC configuration: a BCH-like code protecting `codeword_bytes` chunks and
// correcting up to `correctable_bits` errors per codeword.
struct EccConfig {
  uint32_t codeword_bytes = 1024;
  uint32_t correctable_bits = 40;
};

// Full chip configuration.
struct NandChipConfig {
  std::string name = "generic-mlc";
  CellType cell_type = CellType::kMlc;

  // Geometry. Total capacity = channels * dies_per_channel * blocks_per_die *
  // pages_per_block * page_size_bytes. Each die is further divided into
  // planes_per_die planes; blocks stripe across planes within a die, and the
  // chip tracks per-plane occupancy so the device-level event engine and
  // benches can observe how array work spreads (planes do not change
  // capacity: blocks_per_die counts all of a die's blocks).
  uint32_t channels = 2;
  uint32_t dies_per_channel = 2;
  uint32_t planes_per_die = 1;
  uint32_t blocks_per_die = 512;
  uint32_t pages_per_block = 128;
  uint32_t page_size_bytes = 4096;

  // Rated program/erase cycles before the block is expected to become
  // unreliable. 100K for SLC, 3K for typical mobile MLC, ~1K for TLC (§2.1).
  uint32_t rated_pe_cycles = 3000;

  // Erase/program failures ramp from zero at `failure_onset` * rated cycles to
  // `failure_ceiling` probability at 1.5x rated cycles.
  double failure_onset = 1.0;
  double failure_ceiling = 0.05;

  NandTimings timings = DefaultTimingsFor(CellType::kMlc);
  RberModelParams rber;
  EccConfig ecc;

  uint32_t dies() const { return channels * dies_per_channel; }
  uint32_t planes() const { return dies() * planes_per_die; }
  uint32_t total_blocks() const { return dies() * blocks_per_die; }
  uint64_t block_size_bytes() const {
    return static_cast<uint64_t>(pages_per_block) * page_size_bytes;
  }
  uint64_t total_bytes() const { return total_blocks() * block_size_bytes(); }
  uint64_t total_pages() const {
    return static_cast<uint64_t>(total_blocks()) * pages_per_block;
  }

  // Checks geometry and model parameters for consistency.
  Status Validate() const;
};

// Convenience constructors for the three cell technologies, with endurance and
// timings set to representative values.
NandChipConfig MakeSlcConfig();
NandChipConfig MakeMlcConfig();
NandChipConfig MakeTlcConfig();

}  // namespace flashsim

#endif  // SRC_NAND_CONFIG_H_
