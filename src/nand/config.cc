#include "src/nand/config.h"

namespace flashsim {

const char* CellTypeName(CellType type) {
  switch (type) {
    case CellType::kSlc:
      return "SLC";
    case CellType::kMlc:
      return "MLC";
    case CellType::kTlc:
      return "TLC";
  }
  return "UNKNOWN";
}

NandTimings DefaultTimingsFor(CellType type) {
  NandTimings t;
  switch (type) {
    case CellType::kSlc:
      t.read_page = SimDuration::Micros(25);
      t.program_page = SimDuration::Micros(220);
      t.erase_block = SimDuration::Micros(1500);
      break;
    case CellType::kMlc:
      t.read_page = SimDuration::Micros(50);
      t.program_page = SimDuration::Micros(800);
      t.erase_block = SimDuration::Millis(3);
      break;
    case CellType::kTlc:
      t.read_page = SimDuration::Micros(75);
      t.program_page = SimDuration::Micros(1500);
      t.erase_block = SimDuration::Millis(4);
      break;
  }
  return t;
}

Status NandChipConfig::Validate() const {
  if (channels == 0 || dies_per_channel == 0 || planes_per_die == 0 ||
      blocks_per_die == 0 || pages_per_block == 0 || page_size_bytes == 0) {
    return InvalidArgumentError("NAND geometry fields must all be nonzero");
  }
  if (timings.bus_transfer_page.nanos() < 0) {
    return InvalidArgumentError("bus_transfer_page must be non-negative");
  }
  if (!IsPowerOfTwo(page_size_bytes)) {
    return InvalidArgumentError("page_size_bytes must be a power of two");
  }
  if (rated_pe_cycles == 0) {
    return InvalidArgumentError("rated_pe_cycles must be nonzero");
  }
  if (ecc.codeword_bytes == 0 || ecc.codeword_bytes > page_size_bytes) {
    return InvalidArgumentError("ECC codeword must be nonzero and fit in a page");
  }
  if (rber.base_rber < 0 || rber.growth_rber < 0 || rber.exponent <= 0) {
    return InvalidArgumentError("RBER model parameters out of range");
  }
  if (failure_ceiling < 0 || failure_ceiling > 1 || failure_onset < 0) {
    return InvalidArgumentError("failure model parameters out of range");
  }
  return Status::Ok();
}

NandChipConfig MakeSlcConfig() {
  NandChipConfig c;
  c.name = "generic-slc";
  c.cell_type = CellType::kSlc;
  c.rated_pe_cycles = 100000;
  c.timings = DefaultTimingsFor(CellType::kSlc);
  c.rber.base_rber = 1e-8;
  c.rber.growth_rber = 1e-4;
  return c;
}

NandChipConfig MakeMlcConfig() {
  NandChipConfig c;
  c.name = "generic-mlc";
  c.cell_type = CellType::kMlc;
  c.rated_pe_cycles = 3000;
  c.timings = DefaultTimingsFor(CellType::kMlc);
  return c;
}

NandChipConfig MakeTlcConfig() {
  NandChipConfig c;
  c.name = "generic-tlc";
  c.cell_type = CellType::kTlc;
  c.rated_pe_cycles = 1000;
  c.timings = DefaultTimingsFor(CellType::kTlc);
  c.rber.growth_rber = 8e-4;
  return c;
}

}  // namespace flashsim
