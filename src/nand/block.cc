#include "src/nand/block.h"

#include <cmath>

namespace flashsim {

void NandBlock::Heal(double recovery_fraction) {
  if (bad_ || recovery_fraction <= 0.0) {
    return;
  }
  if (recovery_fraction > 1.0) {
    recovery_fraction = 1.0;
  }
  pe_cycles_ -= static_cast<uint32_t>(
      std::floor(static_cast<double>(pe_cycles_) * recovery_fraction));
}

Status NandBlock::CheckProgrammable(uint32_t page) const {
  if (bad_) {
    return UnavailableError("program to bad block");
  }
  if (erase_torn_) {
    return FailedPreconditionError("program to block torn by interrupted erase");
  }
  if (page >= pages_per_block()) {
    return OutOfRangeError("page index out of range");
  }
  if (page != write_pointer_) {
    return FailedPreconditionError("NAND pages must be programmed in order");
  }
  return Status::Ok();
}

Status NandBlock::ProgramPage(uint32_t page, uint64_t tag, uint64_t seq) {
  FLASHSIM_RETURN_IF_ERROR(CheckProgrammable(page));
  tags_[page] = tag;
  seqs_[page] = seq;
  torn_[page] = 0;
  ++write_pointer_;
  return Status::Ok();
}

Status NandBlock::ProgramTorn(uint32_t page) {
  FLASHSIM_RETURN_IF_ERROR(CheckProgrammable(page));
  tags_[page] = kUnwrittenTag;
  seqs_[page] = 0;
  torn_[page] = 1;
  ++write_pointer_;
  return Status::Ok();
}

void NandBlock::TornErase() {
  if (bad_) {
    return;
  }
  for (uint32_t i = 0; i < write_pointer_; ++i) {
    torn_[i] = 1;
    seqs_[i] = 0;
  }
  erase_torn_ = true;
}

Result<uint64_t> NandBlock::ReadTag(uint32_t page) const {
  if (page >= pages_per_block()) {
    return OutOfRangeError("page index out of range");
  }
  if (page >= write_pointer_) {
    return FailedPreconditionError("read of unprogrammed page");
  }
  if (torn_[page] != 0) {
    return DataLossError("read of torn page");
  }
  return tags_[page];
}

bool NandBlock::IsProgrammed(uint32_t page) const {
  return page < write_pointer_;
}

Status NandBlock::Erase(uint32_t wear_weight) {
  if (bad_) {
    return UnavailableError("erase of bad block");
  }
  for (uint32_t i = 0; i < write_pointer_; ++i) {
    tags_[i] = kUnwrittenTag;
    seqs_[i] = 0;
    torn_[i] = 0;
  }
  write_pointer_ = 0;
  erase_torn_ = false;
  pe_cycles_ += wear_weight;
  return Status::Ok();
}

}  // namespace flashsim
