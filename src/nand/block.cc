#include "src/nand/block.h"

#include <cmath>

namespace flashsim {

void NandBlock::Heal(double recovery_fraction) {
  if (bad_ || recovery_fraction <= 0.0) {
    return;
  }
  if (recovery_fraction > 1.0) {
    recovery_fraction = 1.0;
  }
  pe_cycles_ -= static_cast<uint32_t>(
      std::floor(static_cast<double>(pe_cycles_) * recovery_fraction));
}

Status NandBlock::CheckProgrammable(uint32_t page) const {
  if (bad_) {
    return UnavailableError("program to bad block");
  }
  if (erase_torn_) {
    return FailedPreconditionError("program to block torn by interrupted erase");
  }
  if (page >= pages_per_block_) {
    return OutOfRangeError("page index out of range");
  }
  if (page != write_pointer_) {
    return FailedPreconditionError("NAND pages must be programmed in order");
  }
  return Status::Ok();
}

Status NandBlock::ProgramTorn(uint32_t page) {
  FLASHSIM_RETURN_IF_ERROR(CheckProgrammable(page));
  tags_[page] = kUnwrittenTag;
  seqs_[page] = 0;
  SetTornBit(page);
  ++write_pointer_;
  return Status::Ok();
}

void NandBlock::TornErase() {
  if (bad_) {
    return;
  }
  for (uint32_t i = 0; i < write_pointer_; ++i) {
    SetTornBit(i);
    seqs_[i] = 0;
  }
  erase_torn_ = true;
}

void NandBlock::ClearTornBits() {
  const uint64_t first = base_;
  const uint64_t last = base_ + write_pointer_;  // exclusive
  for (uint64_t bit = first; bit < last;) {
    const uint64_t word = bit >> 6;
    const uint64_t word_end = (word + 1) << 6;
    const uint64_t upto = last < word_end ? last : word_end;
    uint64_t mask = ~0ull << (bit & 63);
    if ((upto & 63) != 0) {
      mask &= (1ull << (upto & 63)) - 1;
    }
    torn_words_[word] &= ~mask;
    bit = upto;
  }
}

Status NandBlock::Erase(uint32_t wear_weight) {
  if (bad_) {
    return UnavailableError("erase of bad block");
  }
  for (uint32_t i = 0; i < write_pointer_; ++i) {
    tags_[i] = kUnwrittenTag;
    seqs_[i] = 0;
  }
  ClearTornBits();
  write_pointer_ = 0;
  erase_torn_ = false;
  pe_cycles_ += wear_weight;
  return Status::Ok();
}

}  // namespace flashsim
