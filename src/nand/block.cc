#include "src/nand/block.h"

#include <cmath>

namespace flashsim {

void NandBlock::Heal(double recovery_fraction) {
  if (bad_ || recovery_fraction <= 0.0) {
    return;
  }
  if (recovery_fraction > 1.0) {
    recovery_fraction = 1.0;
  }
  pe_cycles_ -= static_cast<uint32_t>(
      std::floor(static_cast<double>(pe_cycles_) * recovery_fraction));
}

Status NandBlock::ProgramPage(uint32_t page, uint64_t tag) {
  if (bad_) {
    return UnavailableError("program to bad block");
  }
  if (page >= pages_per_block()) {
    return OutOfRangeError("page index out of range");
  }
  if (page != write_pointer_) {
    return FailedPreconditionError("NAND pages must be programmed in order");
  }
  tags_[page] = tag;
  ++write_pointer_;
  return Status::Ok();
}

Result<uint64_t> NandBlock::ReadTag(uint32_t page) const {
  if (page >= pages_per_block()) {
    return OutOfRangeError("page index out of range");
  }
  if (page >= write_pointer_) {
    return FailedPreconditionError("read of unprogrammed page");
  }
  return tags_[page];
}

bool NandBlock::IsProgrammed(uint32_t page) const {
  return page < write_pointer_;
}

Status NandBlock::Erase(uint32_t wear_weight) {
  if (bad_) {
    return UnavailableError("erase of bad block");
  }
  for (uint32_t i = 0; i < write_pointer_; ++i) {
    tags_[i] = kUnwrittenTag;
  }
  write_pointer_ = 0;
  pe_cycles_ += wear_weight;
  return Status::Ok();
}

}  // namespace flashsim
