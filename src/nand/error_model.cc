#include "src/nand/error_model.h"

#include <cmath>

#include "src/simcore/units.h"

namespace flashsim {

double RberModel::RberAt(uint32_t pe_cycles) const {
  const double wear_ratio =
      static_cast<double>(pe_cycles) / static_cast<double>(rated_pe_cycles_);
  const double rber = params_.base_rber +
                      params_.growth_rber * std::pow(wear_ratio, params_.exponent);
  return rber > 1.0 ? 1.0 : rber;
}

EccEngine::EccEngine(EccConfig config, uint32_t page_size_bytes)
    : config_(config),
      codewords_per_page_(static_cast<uint32_t>(
          CeilDiv(page_size_bytes, config.codeword_bytes))),
      bits_per_codeword_(static_cast<uint64_t>(config.codeword_bytes) * 8) {}

EccOutcome EccEngine::DecodePage(double rber, Rng& rng) const {
  EccOutcome outcome;
  for (uint32_t cw = 0; cw < codewords_per_page_; ++cw) {
    const uint64_t errors = rng.Binomial(bits_per_codeword_, rber);
    outcome.raw_bit_errors += static_cast<uint32_t>(errors);
    if (errors > config_.correctable_bits) {
      outcome.correctable = false;
    } else {
      outcome.corrected_bits += static_cast<uint32_t>(errors);
    }
  }
  return outcome;
}

double EccEngine::SaturationRber() const {
  return static_cast<double>(config_.correctable_bits) /
         static_cast<double>(bits_per_codeword_);
}

}  // namespace flashsim
