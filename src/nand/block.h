// A single NAND erase block, as a thin view over the chip's metadata planes.
//
// Pages within a block must be programmed strictly in order (the in-order
// program rule of real NAND) and can only be reset by erasing the whole
// block, which costs one P/E cycle. A block stores no user data in this
// simulator — only per-page 64-bit out-of-band metadata (a tag the FTL uses
// for its reverse map, plus a write sequence number used by mount-time
// recovery) — keeping memory per simulated terabyte small.
//
// Layout: the OOB metadata lives in flat, chip-wide struct-of-arrays planes
// (PageMetaPlanes) indexed by `block * pages_per_block + page`. NandBlock is
// a view — raw pointers into the planes plus the per-block write pointer,
// P/E count and flags — so batch scans (GC migration, mount recovery) walk
// contiguous arrays instead of chasing per-block vectors. The plane vectors
// never resize after Init, so the views stay valid even if the owning
// structure is moved.
//
// Torn-state invariant: the packed torn bitmap has a set bit only for pages
// BELOW the write pointer (Erase and Init clear the block's bit range), so
// the program hot path never touches the torn plane.
//
// Power loss adds two torn states: a program interrupted mid-operation
// consumes its page but leaves it torn (reads fail with kDataLoss until the
// block is erased), and an interrupted erase leaves the whole block torn
// (erase_torn) — it holds no trustworthy data and must be erased again
// before reuse.

#ifndef SRC_NAND_BLOCK_H_
#define SRC_NAND_BLOCK_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "src/simcore/status.h"

namespace flashsim {

inline constexpr uint64_t kUnwrittenTag = 0xffffffffffffffffull;

// Chip-wide struct-of-arrays OOB metadata, one element (or bit) per physical
// page. Owned by NandChip; NandBlock views point into it.
struct PageMetaPlanes {
  std::vector<uint64_t> tags;
  std::vector<uint64_t> seqs;
  std::vector<uint64_t> torn;  // packed bitmap, one bit per page

  void Init(uint64_t total_pages) {
    tags.assign(total_pages, kUnwrittenTag);
    seqs.assign(total_pages, 0);
    torn.assign((total_pages + 63) / 64, 0);
  }
};

class NandBlock {
 public:
  // Views pages [base, base + pages_per_block) of `planes`, which must
  // already be Init()ed large enough and must outlive the block.
  NandBlock(PageMetaPlanes& planes, uint64_t base, uint32_t pages_per_block)
      : tags_(planes.tags.data() + base),
        seqs_(planes.seqs.data() + base),
        torn_words_(planes.torn.data()),
        base_(base),
        pages_per_block_(pages_per_block) {}

  // Number of P/E cycles this block has absorbed.
  uint32_t pe_cycles() const { return pe_cycles_; }

  // Next page index to be programmed; == pages_per_block() when full.
  uint32_t write_pointer() const { return write_pointer_; }
  uint32_t pages_per_block() const { return pages_per_block_; }
  bool IsFull() const { return write_pointer_ == pages_per_block_; }
  bool IsErased() const { return write_pointer_ == 0 && !erase_torn_; }

  bool is_bad() const { return bad_; }
  void MarkBad() { bad_ = true; }

  // Programs the next page with `tag` and write-sequence `seq`. Fails if the
  // block is bad, full, torn by an interrupted erase, or `page` is not the
  // current write pointer (in-order rule).
  Status ProgramPage(uint32_t page, uint64_t tag, uint64_t seq = 0) {
    FLASHSIM_RETURN_IF_ERROR(CheckProgrammable(page));
    tags_[page] = tag;
    seqs_[page] = seq;
    // Torn bits at/above the write pointer are clear by invariant.
    ++write_pointer_;
    return Status::Ok();
  }

  // A program interrupted by power loss: the page is consumed (the write
  // pointer advances) but holds no trustworthy data — it reads as torn until
  // the block is erased. Same preconditions as ProgramPage.
  Status ProgramTorn(uint32_t page);

  // An erase interrupted by power loss: every programmed page becomes torn
  // and the block needs a (completed) erase before it can be programmed
  // again. Charges no P/E cycle — the completing erase does.
  void TornErase();

  // Reads the tag of a programmed page. Torn pages fail with kDataLoss.
  Result<uint64_t> ReadTag(uint32_t page) const {
    if (page >= pages_per_block_) {
      return OutOfRangeError("page index out of range");
    }
    if (page >= write_pointer_) {
      return FailedPreconditionError("read of unprogrammed page");
    }
    if (TornBit(page)) {
      return DataLossError("read of torn page");
    }
    return tags_[page];
  }

  // True if `page` has been programmed since the last erase.
  bool IsProgrammed(uint32_t page) const { return page < write_pointer_; }

  // True if `page` was consumed by an interrupted program or erase.
  bool IsTorn(uint32_t page) const {
    return page < write_pointer_ && TornBit(page);
  }
  bool erase_torn() const { return erase_torn_; }

  // Write sequence number stamped when the page was programmed (0 for
  // unprogrammed or torn pages). OOB metadata: mount-time recovery orders
  // copies of the same logical page by it.
  uint64_t PageSeq(uint32_t page) const {
    return page < write_pointer_ ? seqs_[page] : 0;
  }

  // Batch-OOB accessors for hot scan loops: the caller iterates pages below
  // write_pointer() and owns the bounds guard (assert-only in release, so
  // the per-call `page < write_pointer_` comparison is hoisted out).
  uint64_t TagAt(uint32_t page) const {
    assert(page < write_pointer_);
    return tags_[page];
  }
  uint64_t SeqAt(uint32_t page) const {
    assert(page < write_pointer_);
    return seqs_[page];
  }
  bool TornAt(uint32_t page) const {
    assert(page < write_pointer_);
    return TornBit(page);
  }
  const uint64_t* TagsRaw() const { return tags_; }
  const uint64_t* SeqsRaw() const { return seqs_; }

  // Erases the block: clears all pages and charges `wear_weight` P/E cycles.
  // A weight > 1 models cells being cycled in a more stressful mode (e.g. an
  // SLC-rated block programmed in MLC mode during hybrid pool merging).
  Status Erase(uint32_t wear_weight = 1);

  // Heat-accelerated self-healing (§2.2 of the paper, after Wu et al. /
  // Chen et al.): annealing frees trapped charge, recovering a fraction of
  // the accumulated wear. Does not revive bad blocks.
  void Heal(double recovery_fraction);

  // The preconditions ProgramPage/ProgramTorn would check, without
  // committing anything — lets the chip validate before deciding whether a
  // power cut consumes this operation.
  Status CheckProgrammable(uint32_t page) const;

 private:
  friend class NandChip;

  bool TornBit(uint32_t page) const {
    const uint64_t bit = base_ + page;
    return (torn_words_[bit >> 6] >> (bit & 63)) & 1u;
  }
  void SetTornBit(uint32_t page) {
    const uint64_t bit = base_ + page;
    torn_words_[bit >> 6] |= 1ull << (bit & 63);
  }
  // Clears torn bits for pages [0, write_pointer_) — by the invariant, the
  // only bits of this block that can be set.
  void ClearTornBits();

  // Program-run fast path used by NandChip::ProgramRun when no power rail is
  // attached and the wear-failure probability is zero: preconditions were
  // checked once for the run, so this is a straight plane fill. `*seq`
  // advances by one per page, exactly as per-page NextSeq() calls would.
  void ProgramRunFast(const uint64_t* tags, uint32_t count, uint64_t* seq) {
    assert(write_pointer_ + count <= pages_per_block_ && !bad_ && !erase_torn_);
    uint64_t* t = tags_ + write_pointer_;
    uint64_t* s = seqs_ + write_pointer_;
    uint64_t seq_value = *seq;
    for (uint32_t i = 0; i < count; ++i) {
      t[i] = tags[i];
      s[i] = seq_value++;
    }
    *seq = seq_value;
    write_pointer_ += count;
  }

  uint64_t* tags_;        // this block's slice of the tag plane
  uint64_t* seqs_;        // this block's slice of the seq plane
  uint64_t* torn_words_;  // the CHIP-wide torn bitmap (bit index base_ + page)
  uint64_t base_;
  uint32_t pages_per_block_;
  uint32_t write_pointer_ = 0;
  uint32_t pe_cycles_ = 0;
  bool bad_ = false;
  bool erase_torn_ = false;
};

}  // namespace flashsim

#endif  // SRC_NAND_BLOCK_H_
