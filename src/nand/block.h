// A single NAND erase block.
//
// Pages within a block must be programmed strictly in order (the in-order
// program rule of real NAND) and can only be reset by erasing the whole
// block, which costs one P/E cycle. A block stores no user data in this
// simulator — only a per-page 64-bit out-of-band tag, which the FTL uses for
// its reverse map — keeping memory per simulated terabyte small.

#ifndef SRC_NAND_BLOCK_H_
#define SRC_NAND_BLOCK_H_

#include <cstdint>
#include <vector>

#include "src/simcore/status.h"

namespace flashsim {

inline constexpr uint64_t kUnwrittenTag = 0xffffffffffffffffull;

class NandBlock {
 public:
  explicit NandBlock(uint32_t pages_per_block)
      : tags_(pages_per_block, kUnwrittenTag) {}

  // Number of P/E cycles this block has absorbed.
  uint32_t pe_cycles() const { return pe_cycles_; }

  // Next page index to be programmed; == pages_per_block() when full.
  uint32_t write_pointer() const { return write_pointer_; }
  uint32_t pages_per_block() const { return static_cast<uint32_t>(tags_.size()); }
  bool IsFull() const { return write_pointer_ == pages_per_block(); }
  bool IsErased() const { return write_pointer_ == 0; }

  bool is_bad() const { return bad_; }
  void MarkBad() { bad_ = true; }

  // Programs the next page with `tag`. Fails if the block is bad, full, or
  // `page` is not the current write pointer (in-order rule).
  Status ProgramPage(uint32_t page, uint64_t tag);

  // Reads the tag of a programmed page.
  Result<uint64_t> ReadTag(uint32_t page) const;

  // True if `page` has been programmed since the last erase.
  bool IsProgrammed(uint32_t page) const;

  // Erases the block: clears all pages and charges `wear_weight` P/E cycles.
  // A weight > 1 models cells being cycled in a more stressful mode (e.g. an
  // SLC-rated block programmed in MLC mode during hybrid pool merging).
  Status Erase(uint32_t wear_weight = 1);

  // Heat-accelerated self-healing (§2.2 of the paper, after Wu et al. /
  // Chen et al.): annealing frees trapped charge, recovering a fraction of
  // the accumulated wear. Does not revive bad blocks.
  void Heal(double recovery_fraction);

 private:
  std::vector<uint64_t> tags_;
  uint32_t write_pointer_ = 0;
  uint32_t pe_cycles_ = 0;
  bool bad_ = false;
};

}  // namespace flashsim

#endif  // SRC_NAND_BLOCK_H_
