// A single NAND erase block.
//
// Pages within a block must be programmed strictly in order (the in-order
// program rule of real NAND) and can only be reset by erasing the whole
// block, which costs one P/E cycle. A block stores no user data in this
// simulator — only per-page 64-bit out-of-band metadata (a tag the FTL uses
// for its reverse map, plus a write sequence number used by mount-time
// recovery) — keeping memory per simulated terabyte small.
//
// Power loss adds two torn states: a program interrupted mid-operation
// consumes its page but leaves it torn (reads fail with kDataLoss until the
// block is erased), and an interrupted erase leaves the whole block torn
// (erase_torn) — it holds no trustworthy data and must be erased again
// before reuse.

#ifndef SRC_NAND_BLOCK_H_
#define SRC_NAND_BLOCK_H_

#include <cstdint>
#include <vector>

#include "src/simcore/status.h"

namespace flashsim {

inline constexpr uint64_t kUnwrittenTag = 0xffffffffffffffffull;

class NandBlock {
 public:
  explicit NandBlock(uint32_t pages_per_block)
      : tags_(pages_per_block, kUnwrittenTag),
        seqs_(pages_per_block, 0),
        torn_(pages_per_block, 0) {}

  // Number of P/E cycles this block has absorbed.
  uint32_t pe_cycles() const { return pe_cycles_; }

  // Next page index to be programmed; == pages_per_block() when full.
  uint32_t write_pointer() const { return write_pointer_; }
  uint32_t pages_per_block() const { return static_cast<uint32_t>(tags_.size()); }
  bool IsFull() const { return write_pointer_ == pages_per_block(); }
  bool IsErased() const { return write_pointer_ == 0 && !erase_torn_; }

  bool is_bad() const { return bad_; }
  void MarkBad() { bad_ = true; }

  // Programs the next page with `tag` and write-sequence `seq`. Fails if the
  // block is bad, full, torn by an interrupted erase, or `page` is not the
  // current write pointer (in-order rule).
  Status ProgramPage(uint32_t page, uint64_t tag, uint64_t seq = 0);

  // A program interrupted by power loss: the page is consumed (the write
  // pointer advances) but holds no trustworthy data — it reads as torn until
  // the block is erased. Same preconditions as ProgramPage.
  Status ProgramTorn(uint32_t page);

  // An erase interrupted by power loss: every programmed page becomes torn
  // and the block needs a (completed) erase before it can be programmed
  // again. Charges no P/E cycle — the completing erase does.
  void TornErase();

  // Reads the tag of a programmed page. Torn pages fail with kDataLoss.
  Result<uint64_t> ReadTag(uint32_t page) const;

  // True if `page` has been programmed since the last erase.
  bool IsProgrammed(uint32_t page) const;

  // True if `page` was consumed by an interrupted program or erase.
  bool IsTorn(uint32_t page) const {
    return page < write_pointer_ && torn_[page] != 0;
  }
  bool erase_torn() const { return erase_torn_; }

  // Write sequence number stamped when the page was programmed (0 for
  // unprogrammed or torn pages). OOB metadata: mount-time recovery orders
  // copies of the same logical page by it.
  uint64_t PageSeq(uint32_t page) const {
    return page < write_pointer_ ? seqs_[page] : 0;
  }

  // Erases the block: clears all pages and charges `wear_weight` P/E cycles.
  // A weight > 1 models cells being cycled in a more stressful mode (e.g. an
  // SLC-rated block programmed in MLC mode during hybrid pool merging).
  Status Erase(uint32_t wear_weight = 1);

  // Heat-accelerated self-healing (§2.2 of the paper, after Wu et al. /
  // Chen et al.): annealing frees trapped charge, recovering a fraction of
  // the accumulated wear. Does not revive bad blocks.
  void Heal(double recovery_fraction);

  // The preconditions ProgramPage/ProgramTorn would check, without
  // committing anything — lets the chip validate before deciding whether a
  // power cut consumes this operation.
  Status CheckProgrammable(uint32_t page) const;

 private:
  std::vector<uint64_t> tags_;
  std::vector<uint64_t> seqs_;
  std::vector<uint8_t> torn_;
  uint32_t write_pointer_ = 0;
  uint32_t pe_cycles_ = 0;
  bool bad_ = false;
  bool erase_torn_ = false;
};

}  // namespace flashsim

#endif  // SRC_NAND_BLOCK_H_
