// Physical addressing within a NAND chip.
//
// Blocks are identified by a flat global index; a page address is a (block,
// page-in-block) pair. Die/channel coordinates are derived from the block
// index, matching how real FTLs stripe blocks across dies.

#ifndef SRC_NAND_ADDRESS_H_
#define SRC_NAND_ADDRESS_H_

#include <compare>
#include <cstdint>

namespace flashsim {

using BlockId = uint32_t;
inline constexpr BlockId kInvalidBlockId = 0xffffffffu;

// Physical page address: global block index + page offset within the block.
struct PhysPageAddr {
  BlockId block = kInvalidBlockId;
  uint32_t page = 0;

  constexpr bool IsValid() const { return block != kInvalidBlockId; }
  constexpr auto operator<=>(const PhysPageAddr&) const = default;
};

inline constexpr PhysPageAddr kInvalidPageAddr{};

// Flat physical page number for use as map keys / array indexes.
constexpr uint64_t LinearizePageAddr(PhysPageAddr addr, uint32_t pages_per_block) {
  return static_cast<uint64_t>(addr.block) * pages_per_block + addr.page;
}

constexpr PhysPageAddr DelinearizePageAddr(uint64_t ppn, uint32_t pages_per_block) {
  return PhysPageAddr{static_cast<BlockId>(ppn / pages_per_block),
                      static_cast<uint32_t>(ppn % pages_per_block)};
}

}  // namespace flashsim

#endif  // SRC_NAND_ADDRESS_H_
