// NandChip: the full NAND array of a storage device.
//
// The chip owns the flat OOB metadata planes (see PageMetaPlanes in
// block.h) plus a vector of NandBlock views over them (flat-indexed, striped
// across dies/channels), applies the wear-dependent failure and
// raw-bit-error models to every operation, and reports per-operation array
// latencies. It does NOT advance any clock — the device-level performance
// model composes these latencies with bus transfer and parallelism
// (src/blockdev/perf_model.h).

#ifndef SRC_NAND_CHIP_H_
#define SRC_NAND_CHIP_H_

#include <cstdint>
#include <vector>

#include "src/nand/address.h"
#include "src/nand/block.h"
#include "src/nand/config.h"
#include "src/nand/error_model.h"
#include "src/simcore/fault_plan.h"
#include "src/simcore/rng.h"
#include "src/simcore/sim_time.h"
#include "src/simcore/stats.h"
#include "src/simcore/status.h"

namespace flashsim {

class SnapshotReader;
class SnapshotWriter;

// Result of a page read: the OOB tag plus array latency and ECC statistics.
struct NandReadOutcome {
  uint64_t tag = kUnwrittenTag;
  SimDuration latency;
  uint32_t corrected_bits = 0;
};

// Outcome of a batched in-order program run within one block.
struct NandProgramRunOutcome {
  uint32_t pages_done = 0;   // pages successfully programmed
  SimDuration latency;       // total array time for the successful pages
  bool block_failed = false; // run stopped on a program-verify failure
  bool power_lost = false;   // run stopped on a power cut; next page is torn
};

// Cumulative array activity of one plane (see NandChip plane accessors):
// how many array ops executed there and how long the plane was busy in
// simulated array time. Mirrors the chip-wide nand.programs/reads/erases
// counters exactly — failed-verify ops count (the array was busy), torn ops
// do not (the op never completed).
struct PlaneOccupancy {
  uint64_t programs = 0;
  uint64_t reads = 0;
  uint64_t erases = 0;
  SimDuration busy;
};

// Aggregate wear state across the array.
struct WearSummary {
  uint32_t min_pe = 0;
  uint32_t max_pe = 0;
  double avg_pe = 0.0;
  uint64_t total_pe = 0;
  uint32_t bad_blocks = 0;
  uint32_t total_blocks = 0;
};

class NandChip {
 public:
  // `config` must be valid (see NandChipConfig::Validate); `seed` fixes the
  // error-injection stream.
  NandChip(NandChipConfig config, uint64_t seed);

  // Moving is safe (plane heap buffers and counter map nodes are stable);
  // copying would leave the new blocks_ views pointing into the source's
  // planes, so it is forbidden.
  NandChip(NandChip&&) = default;
  NandChip& operator=(NandChip&&) = default;
  NandChip(const NandChip&) = delete;
  NandChip& operator=(const NandChip&) = delete;

  const NandChipConfig& config() const { return config_; }

  // Erases `block`, charging `wear_weight` P/E cycles (see NandBlock::Erase).
  // Wear-dependent chance of failure; on failure the block is marked bad and
  // kUnavailable is returned.
  Result<SimDuration> EraseBlock(BlockId block, uint32_t wear_weight = 1);

  // Programs the page at `addr` with OOB tag `tag` (in-order within block).
  // Wear-dependent chance of program failure; on failure the block is marked
  // bad and kDataLoss is returned (content is lost, caller must re-issue).
  Result<SimDuration> ProgramPage(PhysPageAddr addr, uint64_t tag);

  // Bulk fast path: programs `count` pages in order into `block`, starting
  // at its write pointer, tagging page i with tags[i]. Simulation-equivalent
  // to `count` successive ProgramPage calls — the wear-dependent failure
  // probability is evaluated once for the run (P/E cycles cannot change
  // between programs) and the RNG stream is consumed identically: no draws
  // below the failure onset, one draw per page above it. A failure marks the
  // block bad and stops the run; `pages_done` reports the pages that
  // committed before it (the failed page's content is lost, as with
  // ProgramPage). The run must fit within the block.
  Result<NandProgramRunOutcome> ProgramRun(BlockId block, const uint64_t* tags,
                                           uint32_t count);

  // Reads the page at `addr`, running the ECC model. Returns kDataLoss when
  // raw bit errors exceed the correction budget.
  Result<NandReadOutcome> ReadPage(PhysPageAddr addr);

  // Accessors.
  const NandBlock& block(BlockId id) const { return blocks_[id]; }
  uint32_t DieOfBlock(BlockId id) const { return id % config_.dies(); }
  uint32_t ChannelOfBlock(BlockId id) const { return DieOfBlock(id) % config_.channels; }

  // Channel/die/plane topology: blocks stripe across dies (DieOfBlock) and,
  // within a die, across its planes. Chip-wide plane ids are die-major so
  // PlaneOfBlock(b) / planes_per_die recovers the die.
  uint32_t PlaneCount() const { return config_.planes(); }
  uint32_t PlaneOfBlock(BlockId id) const {
    return DieOfBlock(id) * config_.planes_per_die +
           (id / config_.dies()) % config_.planes_per_die;
  }
  // Per-plane occupancy: updated by every array op as it executes. This is
  // pure observability for the device-level event engine and benches — it
  // models no contention itself and never touches RNG or wear state.
  PlaneOccupancy PlaneUsage(uint32_t plane) const {
    return PlaneOccupancy{plane_programs_[plane], plane_reads_[plane],
                          plane_erases_[plane],
                          SimDuration::Nanos(plane_busy_ns_[plane])};
  }

  // Batch OOB view of one block's metadata planes: contiguous tag/seq arrays
  // for pages [0, block.write_pointer()). Pure metadata access — the FTL
  // owns the OOB, so these model no array latency, counters, ECC, or RNG
  // (exactly like the per-page ReadTag/PageSeq accessors they replace).
  // Callers must respect the write-pointer bound (assert-only in release).
  struct OobRunView {
    const uint64_t* tags;
    const uint64_t* seqs;
  };
  OobRunView ReadTagsRun(BlockId id) const {
    const uint64_t base = static_cast<uint64_t>(id) * config_.pages_per_block;
    return {planes_.tags.data() + base, planes_.seqs.data() + base};
  }
  // True if any programmed page of `id` is torn (word-scan of the packed
  // bitmap; by the torn invariant, bits above the write pointer are clear).
  bool BlockHasTornPages(BlockId id) const;

  // Current raw bit error rate of `block`, including read-disturb inflation.
  double BlockRber(BlockId id) const;

  // Monotone counter bumped whenever any block's P/E count or bad flag can
  // change (erase, program/erase failure, anneal). Lets callers cache
  // wear-distribution scans between wear events.
  uint64_t wear_version() const { return wear_version_; }

  // Anneals every good block, recovering `recovery_fraction` of accumulated
  // wear (heat-accelerated self-healing, §2.2). Returns the time the anneal
  // pass takes; the device is unavailable for I/O during it.
  SimDuration AnnealAll(double recovery_fraction, SimDuration per_block_cost);

  // O(1): the aggregates are maintained incrementally (per-P/E histogram,
  // running totals) instead of rescanning every block per health poll.
  WearSummary ComputeWearSummary() const;
  const CounterSet& counters() const { return counters_; }

  // Power-loss fault injection. With a rail attached, every destructive
  // operation (program/erase) consults it before committing: a fired cut
  // leaves the in-flight page/block torn and returns kPowerLoss, and every
  // subsequent operation fails with kPowerLoss until PowerRail::Restore().
  // Detaching (nullptr) restores the fault-free fast path.
  void AttachPowerRail(PowerRail* rail) { rail_ = rail; }
  const PowerRail* power_rail() const { return rail_; }

  // Every program stamps a monotonically increasing per-chip write sequence
  // number into the page's OOB (see NandBlock::PageSeq). Multi-chip FTLs
  // (the hybrid's SLC cache + MLC pool) share one counter so sequence
  // numbers order copies of a logical page across chips.
  void AttachSharedSeq(uint64_t* seq) { shared_seq_ = seq; }

  // Device snapshot support: serializes / restores the full array state
  // (planes, per-block wear and flags, RNG, counters, sequence numbers).
  // LoadState requires the chip to have been constructed with an identical
  // config; wear aggregates are rebuilt from the restored blocks.
  void SaveState(SnapshotWriter& w) const;
  Status LoadState(SnapshotReader& r);

 private:
  double WearFailureProbability(uint32_t pe_cycles, double scale) const;
  Status CheckAddr(PhysPageAddr addr) const;
  Status CheckPowered() const;
  uint64_t NextSeq() {
    uint64_t* s = shared_seq_ != nullptr ? shared_seq_ : &next_seq_;
    return (*s)++;
  }
  // Records `wear_weight` P/E cycles charged to a block now at `pe_after`.
  void NoteWear(uint32_t pe_after, uint32_t wear_weight);
  // Recomputes the wear aggregates from the per-block state (construction,
  // anneal, snapshot load).
  void RebuildWearAggregates();

  // Charges `ops` array ops of `per_op` each to `block`'s plane, bumping the
  // given per-plane op counter vector.
  void NotePlaneOp(BlockId block, std::vector<uint64_t>& counter,
                   SimDuration per_op, uint64_t ops = 1);

  NandChipConfig config_;
  RberModel rber_model_;
  EccEngine ecc_;
  Rng rng_;
  PageMetaPlanes planes_;
  std::vector<NandBlock> blocks_;
  std::vector<uint32_t> reads_since_erase_;
  // Per-plane occupancy (SoA, indexed by chip-wide plane id).
  std::vector<uint64_t> plane_programs_;
  std::vector<uint64_t> plane_reads_;
  std::vector<uint64_t> plane_erases_;
  std::vector<uint64_t> plane_busy_ns_;
  CounterSet counters_;
  // Hot-path counter slots (see CounterSet::Slot); cold counters keep using
  // Increment by name.
  uint64_t* programs_counter_;
  uint64_t* erases_counter_;
  uint64_t* reads_counter_;
  uint64_t wear_version_ = 0;
  PowerRail* rail_ = nullptr;
  uint64_t next_seq_ = 1;
  uint64_t* shared_seq_ = nullptr;

  // Incremental wear aggregates: count of blocks (bad ones included, as in
  // the scan these replace) per P/E value, plus running totals. pe_min_ is a
  // lazily-advanced cursor — erases only move blocks to higher P/E, and the
  // anneal path rebuilds outright.
  std::vector<uint32_t> pe_hist_;
  mutable uint32_t pe_min_ = 0;
  uint32_t pe_max_ = 0;
  uint64_t total_pe_ = 0;
  uint32_t bad_blocks_count_ = 0;
};

}  // namespace flashsim

#endif  // SRC_NAND_CHIP_H_
