// Raw-bit-error-rate model and ECC engine.
//
// RberModel maps a block's accumulated P/E cycles to a raw bit error rate.
// EccEngine samples the number of raw bit errors in a page read and decides
// whether the configured code can correct them. Together they provide the
// mechanism by which worn blocks start producing uncorrectable errors —
// exactly the failure mode §2.1 of the paper describes.

#ifndef SRC_NAND_ERROR_MODEL_H_
#define SRC_NAND_ERROR_MODEL_H_

#include <cstdint>

#include "src/nand/config.h"
#include "src/simcore/rng.h"

namespace flashsim {

// Deterministic RBER curve: rber(pe) = base + growth * (pe/rated)^exponent.
class RberModel {
 public:
  RberModel(RberModelParams params, uint32_t rated_pe_cycles)
      : params_(params), rated_pe_cycles_(rated_pe_cycles) {}

  // Raw bit error rate for a block that has seen `pe_cycles` program/erase
  // cycles. Monotonically nondecreasing in pe_cycles.
  double RberAt(uint32_t pe_cycles) const;

 private:
  RberModelParams params_;
  uint32_t rated_pe_cycles_;
};

// Outcome of running ECC decode over one page.
struct EccOutcome {
  bool correctable = true;
  uint32_t raw_bit_errors = 0;   // sampled raw errors across the page
  uint32_t corrected_bits = 0;   // bits fixed (== raw errors when correctable)
};

// Samples raw errors per codeword and applies the correction budget.
class EccEngine {
 public:
  EccEngine(EccConfig config, uint32_t page_size_bytes);

  // Decodes one page read at raw bit error rate `rber`. A page is
  // uncorrectable if any of its codewords exceeds the per-codeword budget.
  EccOutcome DecodePage(double rber, Rng& rng) const;

  // RBER at which the *expected* raw errors per codeword equal the correction
  // budget — a useful threshold for tests and health heuristics.
  double SaturationRber() const;

  uint32_t codewords_per_page() const { return codewords_per_page_; }

 private:
  EccConfig config_;
  uint32_t codewords_per_page_;
  uint64_t bits_per_codeword_;
};

}  // namespace flashsim

#endif  // SRC_NAND_ERROR_MODEL_H_
