#include "src/device/catalog.h"

#include <algorithm>

#include "src/ftl/block_map_ftl.h"
#include "src/ftl/hybrid_ftl.h"
#include "src/ftl/page_map_ftl.h"
#include "src/simcore/units.h"

namespace flashsim {

namespace {

// Shared mobile-NAND geometry: 4 KiB pages, 512 KiB blocks.
constexpr uint32_t kPageSize = 4096;
constexpr uint32_t kPagesPerBlock = 128;

uint32_t ScaledBlocks(uint32_t blocks, uint32_t divisor) {
  return std::max(16u, blocks / std::max(1u, divisor));
}

uint32_t ScaledEndurance(uint32_t cycles, uint32_t divisor) {
  return std::max(20u, cycles / std::max(1u, divisor));
}

// Builds the MLC NAND config for a device of `total_blocks` blocks.
NandChipConfig MlcArray(const std::string& name, uint32_t channels,
                        uint32_t dies_per_channel, uint32_t total_blocks,
                        uint32_t rated_pe, SimScale scale) {
  NandChipConfig nand = MakeMlcConfig();
  nand.name = name;
  nand.channels = channels;
  nand.dies_per_channel = dies_per_channel;
  const uint32_t dies = channels * dies_per_channel;
  nand.blocks_per_die = ScaledBlocks(total_blocks / dies, scale.capacity_div);
  nand.pages_per_block = kPagesPerBlock;
  nand.page_size_bytes = kPageSize;
  nand.rated_pe_cycles = ScaledEndurance(rated_pe, scale.endurance_div);
  return nand;
}

FtlConfig StandardFtl(uint32_t health_rated_pe, SimScale scale) {
  FtlConfig ftl;
  ftl.over_provisioning = 0.07;
  ftl.spare_blocks = 24;
  ftl.gc_free_block_watermark = 4;
  ftl.health_rated_pe = ScaledEndurance(health_rated_pe, scale.endurance_div);
  // Wear-leveling aggressiveness scales with the (possibly scaled) endurance
  // so the P/E spread stays a fixed ~2% of rated life at any sim scale.
  ftl.wear_level_threshold = std::max(2u, ftl.health_rated_pe / 50);
  ftl.wear_level_check_interval = 16;
  return ftl;
}

std::unique_ptr<FlashDevice> BuildSinglePool(FlashDeviceConfig dev,
                                             NandChipConfig nand, FtlConfig ftl,
                                             uint64_t seed) {
  auto ftl_impl = std::make_unique<PageMapFtl>(nand, ftl, seed);
  return std::make_unique<FlashDevice>(std::move(dev), std::move(ftl_impl));
}

}  // namespace

std::unique_ptr<FlashDevice> MakeUsd16(SimScale scale, uint64_t seed) {
  // Kingston SDC4/16GB. Simple controller with a block-mapped log-block FTL:
  // one channel, a handful of log blocks, and full-block merges on random
  // writes — which is mechanically where the order-of-magnitude random/
  // sequential gap of Figure 1 comes from. Health reporting is not part of
  // the SD interface.
  NandChipConfig nand = MlcArray("usd-16g-mlc", 1, 1, 32768, 1500, scale);
  BlockMapFtlConfig ftl;
  ftl.log_blocks = 6;
  ftl.spare_blocks = 16;
  ftl.health_rated_pe = ScaledEndurance(750, scale.endurance_div);
  FlashDeviceConfig dev;
  dev.name = "uSD 16GB";
  dev.health_supported = false;
  dev.perf.per_request_overhead = SimDuration::Micros(300);
  dev.perf.bus_mib_per_sec = 45.0;
  dev.perf.effective_parallelism = 3;
  auto ftl_impl = std::make_unique<BlockMapFtl>(nand, ftl, seed);
  return std::make_unique<FlashDevice>(std::move(dev), std::move(ftl_impl));
}

std::unique_ptr<FlashDevice> MakeEmmc8(SimScale scale, uint64_t seed) {
  // Toshiba 8 GB eMMC: single MLC pool. Calibration target: <= 992 GiB of
  // 4 KiB random rewrites per 10% wear level, ~20 MiB/s at 4 KiB.
  NandChipConfig nand = MlcArray("emmc8-mlc", 2, 2, 16384, 3000, scale);
  FtlConfig ftl = StandardFtl(1100, scale);
  FlashDeviceConfig dev;
  dev.name = "eMMC 8GB";
  dev.perf.per_request_overhead = SimDuration::Micros(100);
  dev.perf.bus_mib_per_sec = 100.0;
  dev.perf.effective_parallelism = 8;
  return BuildSinglePool(std::move(dev), nand, ftl, seed);
}

std::unique_ptr<FlashDevice> MakeEmmc16(SimScale scale, uint64_t seed) {
  // SanDisk iNAND 7030 16 GB: hybrid. Type B = 16 GiB MLC pool; Type A =
  // 1 GiB SLC-mode cache (so one Type A level needs cap_A x E_A / 10 ~ 12 TiB
  // of host writes at low utilization — the paper measured 11.9 TiB).
  NandChipConfig nand = MlcArray("emmc16-mlc-typeB", 2, 4, 32768, 3000, scale);
  FtlConfig ftl = StandardFtl(1500, scale);

  NandChipConfig slc = MakeSlcConfig();
  slc.name = "emmc16-slc-typeA";
  slc.channels = 1;
  slc.dies_per_channel = 1;
  slc.pages_per_block = kPagesPerBlock;
  slc.page_size_bytes = kPageSize;
  slc.blocks_per_die = ScaledBlocks(2048, scale.capacity_div);  // 1 GiB
  slc.rated_pe_cycles = ScaledEndurance(150000, scale.endurance_div);

  HybridConfig hybrid;
  hybrid.cache_blocks = slc.blocks_per_die;
  // The cache is a staging buffer, not a dedup cache: it drains to the MLC
  // pool almost as fast as it fills (real firmware flushes during idle), so
  // the Type B pool absorbs ~1x host traffic (Table 1 shape).
  hybrid.cache_free_watermark =
      hybrid.cache_blocks > 4 ? hybrid.cache_blocks - 2 : 2;
  hybrid.merge_utilization_threshold = 0.85;
  hybrid.mlc_mode_wear_weight = 8;
  hybrid.health_rated_pe_a = ScaledEndurance(120000, scale.endurance_div);

  FlashDeviceConfig dev;
  dev.name = "eMMC 16GB";
  dev.perf.per_request_overhead = SimDuration::Micros(100);
  dev.perf.bus_mib_per_sec = 150.0;
  dev.perf.effective_parallelism = 16;

  auto ftl_impl = std::make_unique<HybridFtl>(nand, ftl, slc, hybrid, seed);
  return std::make_unique<FlashDevice>(std::move(dev), std::move(ftl_impl));
}

std::unique_ptr<FlashDevice> MakeMotoE8(SimScale scale, uint64_t seed) {
  // Moto E 2nd Gen internal eMMC: same class of part as the external 8 GB
  // chip, slightly slower controller path, less over-provisioning.
  NandChipConfig nand = MlcArray("motoe-mlc", 2, 2, 16384, 3000, scale);
  FtlConfig ftl = StandardFtl(1100, scale);
  ftl.over_provisioning = 0.05;
  FlashDeviceConfig dev;
  dev.name = "Moto E 8GB";
  dev.perf.per_request_overhead = SimDuration::Micros(130);
  dev.perf.bus_mib_per_sec = 100.0;
  dev.perf.effective_parallelism = 8;
  return BuildSinglePool(std::move(dev), nand, ftl, seed);
}

std::unique_ptr<FlashDevice> MakeSamsungS6(SimScale scale, uint64_t seed) {
  // Samsung S6 32 GB UFS: deepest parallelism and fastest interface of the
  // set — which is exactly why it can be worn out *faster* (Figure 3).
  NandChipConfig nand = MlcArray("s6-ufs-mlc", 4, 2, 65536, 3000, scale);
  FtlConfig ftl = StandardFtl(1500, scale);
  FlashDeviceConfig dev;
  dev.name = "Samsung S6 32GB";
  dev.perf.per_request_overhead = SimDuration::Micros(80);
  dev.perf.bus_mib_per_sec = 350.0;
  dev.perf.effective_parallelism = 32;
  return BuildSinglePool(std::move(dev), nand, ftl, seed);
}

std::unique_ptr<FlashDevice> MakeBlu512(SimScale scale, uint64_t seed) {
  // BLU Dash 512 MB: bottom-of-market TLC with a handful of spares and no
  // health reporting; bricks quickly and silently.
  NandChipConfig nand = MlcArray("blu512-tlc", 1, 1, 1024, 1000, scale);
  nand.cell_type = CellType::kTlc;
  nand.timings = DefaultTimingsFor(CellType::kTlc);
  nand.rber.growth_rber = 8e-4;
  FtlConfig ftl = StandardFtl(500, scale);
  ftl.spare_blocks = 8;
  ftl.over_provisioning = 0.05;
  FlashDeviceConfig dev;
  dev.name = "BLU 512MB";
  dev.health_supported = false;
  dev.perf.per_request_overhead = SimDuration::Micros(500);
  dev.perf.bus_mib_per_sec = 25.0;
  dev.perf.effective_parallelism = 1;
  return BuildSinglePool(std::move(dev), nand, ftl, seed);
}

std::unique_ptr<FlashDevice> MakeBlu4(SimScale scale, uint64_t seed) {
  NandChipConfig nand = MlcArray("blu4-tlc", 1, 2, 8192, 1000, scale);
  nand.cell_type = CellType::kTlc;
  nand.timings = DefaultTimingsFor(CellType::kTlc);
  nand.rber.growth_rber = 8e-4;
  FtlConfig ftl = StandardFtl(500, scale);
  ftl.spare_blocks = 12;
  ftl.over_provisioning = 0.05;
  FlashDeviceConfig dev;
  dev.name = "BLU 4GB";
  dev.health_supported = false;
  dev.perf.per_request_overhead = SimDuration::Micros(400);
  dev.perf.bus_mib_per_sec = 50.0;
  dev.perf.effective_parallelism = 2;
  return BuildSinglePool(std::move(dev), nand, ftl, seed);
}

const std::vector<CatalogEntry>& DeviceCatalog() {
  static const std::vector<CatalogEntry>* entries = new std::vector<CatalogEntry>{
      {"uSD 16GB", MakeUsd16},       {"eMMC 8GB", MakeEmmc8},
      {"eMMC 16GB", MakeEmmc16},     {"Moto E 8GB", MakeMotoE8},
      {"Samsung S6 32GB", MakeSamsungS6}, {"BLU 512MB", MakeBlu512},
      {"BLU 4GB", MakeBlu4},
  };
  return *entries;
}

const std::vector<CatalogEntry>& Figure1Devices() {
  static const std::vector<CatalogEntry>* entries = new std::vector<CatalogEntry>{
      {"uSD 16GB", MakeUsd16},
      {"eMMC 8GB", MakeEmmc8},
      {"eMMC 16GB", MakeEmmc16},
      {"Moto E 8GB", MakeMotoE8},
      {"Samsung S6 32GB", MakeSamsungS6},
  };
  return *entries;
}

}  // namespace flashsim
