// FlashDevice: a complete simulated mobile storage device.
//
// Glues together an FTL (page-mapped or hybrid), a performance model, and a
// simulated clock behind the BlockDevice interface. Handles byte-addressed
// requests, including sub-page writes (read-modify-write) — which is how a
// 0.5 KiB synchronous write ends up costing a full page program, one of the
// effects visible at the left edge of Figure 1.

#ifndef SRC_DEVICE_FLASH_DEVICE_H_
#define SRC_DEVICE_FLASH_DEVICE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/blockdev/block_device.h"
#include "src/blockdev/io_queue.h"
#include "src/blockdev/iotrace.h"
#include "src/blockdev/perf_model.h"
#include "src/fleet/sketch.h"
#include "src/ftl/ftl_interface.h"
#include "src/simcore/clock.h"
#include "src/simcore/event_log.h"
#include "src/simcore/scratch.h"
#include "src/simcore/stats.h"

namespace flashsim {

struct FlashDeviceConfig {
  std::string name = "device";
  PerfModelConfig perf;
  // Budget devices (the paper's BLU phones) do not implement JEDEC health
  // reporting; their wear is only observable when they brick.
  bool health_supported = true;
};

class FlashDevice : public BlockDevice {
 public:
  FlashDevice(FlashDeviceConfig config, std::unique_ptr<FtlInterface> ftl);

  // BlockDevice:
  Result<IoCompletion> Submit(const IoRequest& request) override;
  // Bulk fast path: consecutive page-aligned writes are translated to one
  // FtlInterface::WriteBatch call, amortizing dispatch, clock-category and
  // counter bookkeeping across the batch. Per-request service times, meters,
  // and the simulated clock advance exactly as with one-by-one Submit calls;
  // reads, discards, and unaligned writes fall back to Submit.
  BatchCompletion SubmitBatch(const IoRequest* requests, size_t count) override;
  // Geometry is fixed at construction; both answers are cached so the
  // per-request range check costs two member loads, not two virtual calls
  // into the FTL.
  uint64_t CapacityBytes() const override { return capacity_bytes_; }
  uint32_t PageSizeBytes() const override { return page_size_; }
  HealthReport QueryHealth() const override;
  bool IsReadOnly() const override { return ftl_->IsReadOnly(); }
  SimClock& clock() override { return clock_; }

  const std::string& name() const { return config_.name; }
  const FtlInterface& ftl() const { return *ftl_; }
  FtlInterface& mutable_ftl() { return *ftl_; }

  // Power-loss fault injection: routes every destructive NAND operation
  // through `rail`, and remounts the FTL after a cut (restore power first
  // with PowerRail::Restore). The simulated clock keeps running across the
  // outage, so post-remount timestamps stay monotonic.
  void AttachPowerRail(PowerRail* rail) { ftl_->AttachPowerRail(rail); }
  Result<RecoveryReport> Remount() { return ftl_->Mount(); }
  const PerfModel& perf_model() const { return perf_; }
  EventLog& event_log() { return event_log_; }

  // Cumulative host-side transfer accounting.
  const RateMeter& write_meter() const { return write_meter_; }
  const RateMeter& read_meter() const { return read_meter_; }

  // True when requests route through the discrete-event queue
  // (src/blockdev/io_queue.h) instead of the synchronous flat path: a
  // multi-channel or deep-queue perf config, or force_event_engine (the
  // equivalence tests force the degenerate C=1/D=1 event model to prove it
  // is bit-exact with the flat path).
  bool UsesEventEngine() const {
    return perf_.config().channels > 1 || perf_.config().queue_depth > 1 ||
           perf_.config().force_event_engine;
  }

  // Per-request latency percentile sketches, off by default (they cost ~2KiB
  // each, which fleet park budgets care about). Enable before submitting;
  // the campaign runner turns them on for every run it executes. Latencies
  // are recorded in microseconds, in submission order (deterministic at any
  // thread count). On the flat path a request's latency is its service time;
  // under the event engine it is completion minus queue admission, so
  // channel conflicts and queue waits surface in the tails.
  void EnableLatencyDigests(uint32_t compression = 128);
  const WearDigest* write_latency_digest() const { return write_lat_.get(); }
  const WearDigest* read_latency_digest() const { return read_lat_.get(); }

  // Overrides the queued-submission topology after construction (campaign
  // grids carry depth/channels knobs the catalog factories do not know
  // about). Zero keeps the corresponding configured value. Call before
  // submitting any I/O; service-time calibration is unaffected.
  void ConfigureQueue(uint32_t channels, uint32_t depth, bool force_event_engine);

  // Host bytes written since construction (requested lengths, not page-
  // rounded) — the "I/O amount" axis of Figures 2 and 4.
  uint64_t HostBytesWritten() const { return write_meter_.total_bytes(); }

  // Reallocations of the batched-submission scratch buffers since
  // construction. Steady state means this stops moving: after a warm-up
  // batch, submitting more batches of no-larger size must not grow it
  // (DESIGN.md §12).
  uint64_t ScratchGrowCount() const {
    return batch_lpns_.grow_count() + batch_page_times_.grow_count();
  }

  // Attaches a trace recorder; every subsequent request is recorded. Pass
  // nullptr to detach. The recorder must outlive its attachment.
  void SetTraceRecorder(TraceRecorder* recorder) { trace_ = recorder; }

  // Device snapshot (DESIGN.md §12): serializes the full worn-device state
  // (FTL + NAND planes + RNG + clock + meters) so a long-aged device can be
  // saved once and restored into a freshly constructed, identically
  // configured FlashDevice, which then continues bit-exactly with the
  // original. Call between requests; the event log and any attached trace
  // recorder are not part of the state.
  void SaveState(SnapshotWriter& w) const;
  Status LoadState(SnapshotReader& r);
  Status SaveSnapshotFile(const std::string& path) const;
  Status LoadSnapshotFile(const std::string& path);

 private:
  Result<SimDuration> WritePages(const IoRequest& request);
  Result<SimDuration> ReadPages(const IoRequest& request);
  Result<SimDuration> DiscardPages(const IoRequest& request);
  Status CheckRange(const IoRequest& request) const;
  void RecordLatency(IoKind kind, SimDuration latency);

  FlashDeviceConfig config_;
  std::unique_ptr<FtlInterface> ftl_;
  PerfModel perf_;
  IoQueue queue_;
  SimClock clock_;
  EventLog event_log_;
  RateMeter write_meter_;
  RateMeter read_meter_;
  std::unique_ptr<WearDigest> write_lat_;
  std::unique_ptr<WearDigest> read_lat_;
  TraceRecorder* trace_ = nullptr;
  uint32_t page_size_ = 0;
  uint64_t capacity_bytes_ = 0;
  uint64_t last_write_end_ = 0;

  // Scratch buffers for the batched submission path, reused across calls.
  ScratchBuffer<uint64_t> batch_lpns_;
  ScratchBuffer<SimDuration> batch_page_times_;
  ScratchBuffer<QueuedOp> batch_ops_;
  ScratchBuffer<SimDuration> batch_latencies_;
};

}  // namespace flashsim

#endif  // SRC_DEVICE_FLASH_DEVICE_H_
