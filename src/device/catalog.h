// Calibrated device catalog: one factory per device the paper evaluates.
//
// Each factory assembles a FlashDevice whose NAND geometry, FTL policy, and
// performance model are calibrated so that the paper's headline numbers fall
// out of the simulation mechanically (see DESIGN.md §5 for targets):
//
//   uSD 16 GB       Kingston SDC4/16GB — simple controller, big random penalty
//   eMMC 8 GB       Toshiba THGBMBG6D1KBAIL — single-pool MLC
//   eMMC 16 GB      SanDisk iNAND 7030 — hybrid Type A (SLC cache) / Type B
//   Moto E 8 GB     phone-internal eMMC (like eMMC 8 GB, busier controller)
//   Samsung S6 32GB UFS — deep parallelism, fastest
//   BLU 512 MB/4 GB budget phones — TLC, tiny spares, no health reporting
//
// A SimScale shrinks capacity and rated endurance together so benches finish
// in seconds; ratios (utilization, OP, request/block size) are preserved, so
// write amplification — and thus every *shape* the paper reports — is scale-
// invariant (tested). Reported volumes/times must be multiplied back by
// SimScale::VolumeFactor().

#ifndef SRC_DEVICE_CATALOG_H_
#define SRC_DEVICE_CATALOG_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/device/flash_device.h"

namespace flashsim {

// Scaling applied to a catalog device. Capacity and endurance are divided by
// the respective factors; both reduce the I/O needed to wear the device out
// by the same multiplicative amount, so simulated volumes/times are re-scaled
// by VolumeFactor() when reporting full-device-equivalent numbers.
struct SimScale {
  uint32_t capacity_div = 1;
  uint32_t endurance_div = 1;

  double VolumeFactor() const {
    return static_cast<double>(capacity_div) * static_cast<double>(endurance_div);
  }
};

std::unique_ptr<FlashDevice> MakeUsd16(SimScale scale = {}, uint64_t seed = 1);
std::unique_ptr<FlashDevice> MakeEmmc8(SimScale scale = {}, uint64_t seed = 1);
std::unique_ptr<FlashDevice> MakeEmmc16(SimScale scale = {}, uint64_t seed = 1);
std::unique_ptr<FlashDevice> MakeMotoE8(SimScale scale = {}, uint64_t seed = 1);
std::unique_ptr<FlashDevice> MakeSamsungS6(SimScale scale = {}, uint64_t seed = 1);
std::unique_ptr<FlashDevice> MakeBlu512(SimScale scale = {}, uint64_t seed = 1);
std::unique_ptr<FlashDevice> MakeBlu4(SimScale scale = {}, uint64_t seed = 1);

// A named factory, for sweeping benches/tests over the whole catalog.
struct CatalogEntry {
  std::string name;
  std::function<std::unique_ptr<FlashDevice>(SimScale, uint64_t)> make;
};

// All seven devices, in the order the paper introduces them.
const std::vector<CatalogEntry>& DeviceCatalog();

// The five devices of Figure 1 (both external chips, the uSD card, and the
// two phones' internal storage).
const std::vector<CatalogEntry>& Figure1Devices();

}  // namespace flashsim

#endif  // SRC_DEVICE_CATALOG_H_
