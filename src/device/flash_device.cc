#include "src/device/flash_device.h"

#include <cassert>

#include "src/simcore/units.h"

namespace flashsim {

FlashDevice::FlashDevice(FlashDeviceConfig config, std::unique_ptr<FtlInterface> ftl)
    : config_(std::move(config)),
      ftl_(std::move(ftl)),
      perf_(config_.perf),
      queue_(config_.perf.channels, config_.perf.queue_depth) {
  assert(ftl_ != nullptr);
  page_size_ = ftl_->PageSizeBytes();
  capacity_bytes_ = ftl_->LogicalPageCount() * page_size_;
}

void FlashDevice::ConfigureQueue(uint32_t channels, uint32_t depth,
                                 bool force_event_engine) {
  PerfModelConfig cfg = perf_.config();
  if (channels != 0) {
    cfg.channels = channels;
  }
  if (depth != 0) {
    cfg.queue_depth = depth;
  }
  cfg.force_event_engine = force_event_engine || cfg.force_event_engine;
  config_.perf = cfg;
  perf_ = PerfModel(cfg);
  queue_ = IoQueue(cfg.channels, cfg.queue_depth);
}

void FlashDevice::EnableLatencyDigests(uint32_t compression) {
  if (write_lat_ == nullptr) {
    write_lat_ = std::make_unique<WearDigest>(compression);
    read_lat_ = std::make_unique<WearDigest>(compression);
  }
}

void FlashDevice::RecordLatency(IoKind kind, SimDuration latency) {
  if (write_lat_ == nullptr) {
    return;
  }
  const double micros = static_cast<double>(latency.nanos()) / 1000.0;
  if (kind == IoKind::kWrite) {
    write_lat_->Add(micros);
  } else if (kind == IoKind::kRead) {
    read_lat_->Add(micros);
  }
}

Status FlashDevice::CheckRange(const IoRequest& request) const {
  if (request.length == 0) {
    return InvalidArgumentError("zero-length request");
  }
  if (request.offset + request.length > capacity_bytes_) {
    return OutOfRangeError("request beyond device capacity");
  }
  return Status::Ok();
}

Result<SimDuration> FlashDevice::WritePages(const IoRequest& request) {
  const uint32_t page = page_size_;
  const uint64_t first = request.offset / page;
  const uint64_t last = (request.offset + request.length - 1) / page;
  // Page-aligned multi-page writes take the FTL's bulk entry point — no
  // sub-page head/tail, so no read-modify-write, and the bulk path is
  // simulation-equivalent to the per-page loop below.
  if (last > first && request.offset % page == 0 && request.length % page == 0) {
    return ftl_->WritePages(first, last - first + 1);
  }
  SimDuration array_time;
  for (uint64_t lpn = first; lpn <= last; ++lpn) {
    // Sub-page head/tail: read-modify-write if the page holds data.
    const uint64_t page_start = lpn * page;
    const bool partial = request.offset > page_start ||
                         request.offset + request.length < page_start + page;
    if (partial) {
      Result<SimDuration> read = ftl_->ReadPage(lpn);
      if (read.ok()) {
        array_time += read.value();
      }
      // NotFound (never written) needs no merge; real errors surface below
      // on the write path if the device is gone.
    }
    Result<SimDuration> write = ftl_->WritePage(lpn);
    if (!write.ok()) {
      return write.status();
    }
    array_time += write.value();
  }
  return array_time;
}

Result<SimDuration> FlashDevice::ReadPages(const IoRequest& request) {
  const uint32_t page = page_size_;
  const uint64_t first = request.offset / page;
  const uint64_t last = (request.offset + request.length - 1) / page;
  SimDuration array_time;
  for (uint64_t lpn = first; lpn <= last; ++lpn) {
    Result<SimDuration> read = ftl_->ReadPage(lpn);
    if (read.ok()) {
      array_time += read.value();
      continue;
    }
    if (read.status().code() == StatusCode::kNotFound) {
      continue;  // unwritten region reads as zeros, no array work
    }
    return read.status();
  }
  return array_time;
}

Result<SimDuration> FlashDevice::DiscardPages(const IoRequest& request) {
  const uint32_t page = page_size_;
  // Only discard pages fully covered by the range (real devices round in).
  const uint64_t first = CeilDiv(request.offset, page);
  const uint64_t last_exclusive = RoundDown(request.offset + request.length, page) / page;
  for (uint64_t lpn = first; lpn < last_exclusive; ++lpn) {
    FLASHSIM_RETURN_IF_ERROR(ftl_->TrimPage(lpn));
  }
  return SimDuration();
}

Result<IoCompletion> FlashDevice::Submit(const IoRequest& request) {
  FLASHSIM_RETURN_IF_ERROR(CheckRange(request));
  Result<SimDuration> array_time = [&]() -> Result<SimDuration> {
    switch (request.kind) {
      case IoKind::kWrite:
        return WritePages(request);
      case IoKind::kRead:
        return ReadPages(request);
      case IoKind::kDiscard:
        return DiscardPages(request);
    }
    return InvalidArgumentError("unknown request kind");
  }();
  if (!array_time.ok()) {
    return array_time.status();
  }

  const bool sequential =
      request.kind != IoKind::kWrite || request.offset == last_write_end_;
  if (request.kind == IoKind::kWrite) {
    last_write_end_ = request.offset + request.length;
  }
  const SimDuration service =
      perf_.ServiceTime(request.length, array_time.value(), sequential);
  if (trace_ != nullptr) {
    trace_->Record(request, clock_.Now(), service);
  }
  clock_.AdvanceWithCategory(service, IoKindName(request.kind));

  if (request.kind == IoKind::kWrite) {
    write_meter_.Record(request.length, service);
  } else if (request.kind == IoKind::kRead) {
    read_meter_.Record(request.length, service);
  }
  // A lone request is a group of one under the event engine: it admits
  // immediately to an idle device, so its latency is its service time on
  // both paths — no scheduling needed.
  RecordLatency(request.kind, service);
  return IoCompletion{service, request.length};
}

BatchCompletion FlashDevice::SubmitBatch(const IoRequest* requests, size_t count) {
  BatchCompletion out;
  const uint32_t page = page_size_;
  size_t i = 0;
  while (i < count) {
    // Group a maximal run of valid page-aligned writes for the bulk path.
    // Anything else (reads, discards, sub-page writes, invalid ranges) goes
    // through Submit one request at a time, which also surfaces errors in
    // submission order. With a trace recorder attached we fall back too, so
    // every request is stamped with its own completion time.
    const uint64_t capacity = capacity_bytes_;
    size_t g = i;
    std::vector<uint64_t>& lpns = batch_lpns_.AcquireEmpty();
    while (g < count && trace_ == nullptr) {
      const IoRequest& rq = requests[g];
      if (rq.kind != IoKind::kWrite || rq.length == 0 || rq.offset % page != 0 ||
          rq.length % page != 0 || rq.offset + rq.length > capacity) {
        break;
      }
      const uint64_t first = rq.offset / page;
      const uint64_t pages = rq.length / page;
      for (uint64_t p = 0; p < pages; ++p) {
        lpns.push_back(first + p);
      }
      ++g;
    }
    if (g == i) {
      Result<IoCompletion> one = Submit(requests[i]);
      if (!one.ok()) {
        out.status = one.status();
        return out;
      }
      out.service_time += one.value().service_time;
      out.bytes_transferred += one.value().bytes_transferred;
      ++out.requests_completed;
      ++i;
      continue;
    }

    SimDuration* page_times = batch_page_times_.AcquireZeroed(lpns.size());
    size_t pages_done = 0;
    const Status st =
        ftl_->WriteBatch(lpns.data(), lpns.size(), page_times, &pages_done);

    // Convert per-page array times back into per-request service times. A
    // request counts as completed only if every one of its pages committed;
    // a partially-written request mirrors the per-page path, where Submit
    // returns the error and discards the request's accounting.
    SimDuration batch_service;
    size_t group_completed = 0;
    size_t page_idx = 0;
    std::vector<QueuedOp>& group_ops = batch_ops_.AcquireEmpty();
    for (size_t r = i; r < g; ++r) {
      const uint64_t pages = requests[r].length / page;
      if (page_idx + pages > pages_done) {
        break;
      }
      SimDuration array_time;
      for (uint64_t p = 0; p < pages; ++p) {
        array_time += page_times[page_idx + p];
      }
      page_idx += pages;
      const bool sequential = requests[r].offset == last_write_end_;
      last_write_end_ = requests[r].offset + requests[r].length;
      const SimDuration service =
          perf_.ServiceTime(requests[r].length, array_time, sequential);
      write_meter_.Record(requests[r].length, service);
      group_ops.push_back(QueuedOp{requests[r].offset / page, service});
      batch_service += service;
      out.bytes_transferred += requests[r].length;
      ++out.requests_completed;
      ++group_completed;
    }
    // The device was busy for the group's makespan: under the event engine
    // the queue schedules the whole group (requests overlap across channels
    // up to the queue depth); on the flat synchronous path requests serve
    // back to back, so the makespan is the plain sum of service times —
    // which is exactly what the degenerate C=1/D=1 schedule produces.
    SimDuration group_busy = batch_service;
    if (group_completed > 0) {
      if (UsesEventEngine()) {
        SimDuration* lat = batch_latencies_.AcquireZeroed(group_completed);
        group_busy = queue_.Run(group_ops.data(), group_completed, lat);
        for (size_t r = 0; r < group_completed; ++r) {
          RecordLatency(IoKind::kWrite, lat[r]);
        }
      } else {
        for (size_t r = 0; r < group_completed; ++r) {
          RecordLatency(IoKind::kWrite, group_ops[r].service);
        }
      }
      clock_.AdvanceWithCategory(group_busy, IoKindName(IoKind::kWrite));
    }
    out.service_time += group_busy;
    if (!st.ok()) {
      out.status = st;
      return out;
    }
    i = g;
  }
  return out;
}

HealthReport FlashDevice::QueryHealth() const {
  if (!config_.health_supported) {
    HealthReport unsupported;
    unsupported.supported = false;
    unsupported.life_time_est_a = 0;
    unsupported.life_time_est_b = 0;
    unsupported.pre_eol = PreEolInfo::kNotDefined;
    return unsupported;
  }
  return ftl_->Health();
}

void FlashDevice::SaveState(SnapshotWriter& w) const {
  w.BeginSection(SnapshotTag("FDEV"));
  w.Str(config_.name);  // fingerprint, validated on load
  ftl_->SaveState(w);
  clock_.SaveState(w);
  write_meter_.SaveState(w);
  read_meter_.SaveState(w);
  w.U64(last_write_end_);
  // Latency digests (appended fields; absent state restores as disabled).
  // The queue itself has no state to save: it drains at every submission
  // boundary, so snapshots between requests are quiesced by construction.
  w.Bool(write_lat_ != nullptr);
  if (write_lat_ != nullptr) {
    write_lat_->Save(w);
    read_lat_->Save(w);
  }
  w.EndSection();
}

Status FlashDevice::LoadState(SnapshotReader& r) {
  FLASHSIM_RETURN_IF_ERROR(r.EnterSection(SnapshotTag("FDEV")));
  if (r.Str() != config_.name) {
    return FailedPreconditionError(
        "snapshot device name does not match the constructed device");
  }
  FLASHSIM_RETURN_IF_ERROR(ftl_->LoadState(r));
  FLASHSIM_RETURN_IF_ERROR(clock_.LoadState(r));
  FLASHSIM_RETURN_IF_ERROR(write_meter_.LoadState(r));
  FLASHSIM_RETURN_IF_ERROR(read_meter_.LoadState(r));
  last_write_end_ = r.U64();
  if (r.U8() != 0) {
    EnableLatencyDigests();
    FLASHSIM_RETURN_IF_ERROR(write_lat_->Load(r));
    FLASHSIM_RETURN_IF_ERROR(read_lat_->Load(r));
  } else {
    write_lat_.reset();
    read_lat_.reset();
  }
  r.LeaveSection();
  return r.status();
}

Status FlashDevice::SaveSnapshotFile(const std::string& path) const {
  SnapshotWriter w;
  SaveState(w);
  return w.WriteFile(path);
}

Status FlashDevice::LoadSnapshotFile(const std::string& path) {
  Result<SnapshotReader> reader = SnapshotReader::FromFile(path);
  FLASHSIM_RETURN_IF_ERROR(reader.status());
  SnapshotReader r = std::move(reader).value();
  return LoadState(r);
}

}  // namespace flashsim
