#include "src/device/flash_device.h"

#include <cassert>

#include "src/simcore/units.h"

namespace flashsim {

FlashDevice::FlashDevice(FlashDeviceConfig config, std::unique_ptr<FtlInterface> ftl)
    : config_(std::move(config)), ftl_(std::move(ftl)), perf_(config_.perf) {
  assert(ftl_ != nullptr);
}

uint64_t FlashDevice::CapacityBytes() const {
  return ftl_->LogicalPageCount() * ftl_->PageSizeBytes();
}

Status FlashDevice::CheckRange(const IoRequest& request) const {
  if (request.length == 0) {
    return InvalidArgumentError("zero-length request");
  }
  if (request.offset + request.length > CapacityBytes()) {
    return OutOfRangeError("request beyond device capacity");
  }
  return Status::Ok();
}

Result<SimDuration> FlashDevice::WritePages(const IoRequest& request) {
  const uint32_t page = ftl_->PageSizeBytes();
  const uint64_t first = request.offset / page;
  const uint64_t last = (request.offset + request.length - 1) / page;
  SimDuration array_time;
  for (uint64_t lpn = first; lpn <= last; ++lpn) {
    // Sub-page head/tail: read-modify-write if the page holds data.
    const uint64_t page_start = lpn * page;
    const bool partial = request.offset > page_start ||
                         request.offset + request.length < page_start + page;
    if (partial) {
      Result<SimDuration> read = ftl_->ReadPage(lpn);
      if (read.ok()) {
        array_time += read.value();
      }
      // NotFound (never written) needs no merge; real errors surface below
      // on the write path if the device is gone.
    }
    Result<SimDuration> write = ftl_->WritePage(lpn);
    if (!write.ok()) {
      return write.status();
    }
    array_time += write.value();
  }
  return array_time;
}

Result<SimDuration> FlashDevice::ReadPages(const IoRequest& request) {
  const uint32_t page = ftl_->PageSizeBytes();
  const uint64_t first = request.offset / page;
  const uint64_t last = (request.offset + request.length - 1) / page;
  SimDuration array_time;
  for (uint64_t lpn = first; lpn <= last; ++lpn) {
    Result<SimDuration> read = ftl_->ReadPage(lpn);
    if (read.ok()) {
      array_time += read.value();
      continue;
    }
    if (read.status().code() == StatusCode::kNotFound) {
      continue;  // unwritten region reads as zeros, no array work
    }
    return read.status();
  }
  return array_time;
}

Result<SimDuration> FlashDevice::DiscardPages(const IoRequest& request) {
  const uint32_t page = ftl_->PageSizeBytes();
  // Only discard pages fully covered by the range (real devices round in).
  const uint64_t first = CeilDiv(request.offset, page);
  const uint64_t last_exclusive = RoundDown(request.offset + request.length, page) / page;
  for (uint64_t lpn = first; lpn < last_exclusive; ++lpn) {
    FLASHSIM_RETURN_IF_ERROR(ftl_->TrimPage(lpn));
  }
  return SimDuration();
}

Result<IoCompletion> FlashDevice::Submit(const IoRequest& request) {
  FLASHSIM_RETURN_IF_ERROR(CheckRange(request));
  Result<SimDuration> array_time = [&]() -> Result<SimDuration> {
    switch (request.kind) {
      case IoKind::kWrite:
        return WritePages(request);
      case IoKind::kRead:
        return ReadPages(request);
      case IoKind::kDiscard:
        return DiscardPages(request);
    }
    return InvalidArgumentError("unknown request kind");
  }();
  if (!array_time.ok()) {
    return array_time.status();
  }

  const bool sequential =
      request.kind != IoKind::kWrite || request.offset == last_write_end_;
  if (request.kind == IoKind::kWrite) {
    last_write_end_ = request.offset + request.length;
  }
  const SimDuration service =
      perf_.ServiceTime(request.length, array_time.value(), sequential);
  if (trace_ != nullptr) {
    trace_->Record(request, clock_.Now(), service);
  }
  clock_.AdvanceWithCategory(service, IoKindName(request.kind));

  if (request.kind == IoKind::kWrite) {
    write_meter_.Record(request.length, service);
  } else if (request.kind == IoKind::kRead) {
    read_meter_.Record(request.length, service);
  }
  return IoCompletion{service, request.length};
}

HealthReport FlashDevice::QueryHealth() const {
  if (!config_.health_supported) {
    HealthReport unsupported;
    unsupported.supported = false;
    unsupported.life_time_est_a = 0;
    unsupported.life_time_est_b = 0;
    unsupported.pre_eol = PreEolInfo::kNotDefined;
    return unsupported;
  }
  return ftl_->Health();
}

}  // namespace flashsim
