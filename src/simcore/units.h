// Byte-count units and human-readable formatting helpers.
//
// Everything in the simulator that measures data volume uses plain uint64_t
// byte counts; this header supplies the constants and conversion/formatting
// utilities so call sites can say `4 * kKiB` instead of magic numbers.

#ifndef SRC_SIMCORE_UNITS_H_
#define SRC_SIMCORE_UNITS_H_

#include <cstdint>
#include <string>

namespace flashsim {

inline constexpr uint64_t kKiB = 1024ull;
inline constexpr uint64_t kMiB = 1024ull * kKiB;
inline constexpr uint64_t kGiB = 1024ull * kMiB;
inline constexpr uint64_t kTiB = 1024ull * kGiB;

// Converts a byte count to fractional GiB (for reporting).
constexpr double BytesToGiB(uint64_t bytes) {
  return static_cast<double>(bytes) / static_cast<double>(kGiB);
}

// Converts a byte count to fractional MiB (for reporting).
constexpr double BytesToMiB(uint64_t bytes) {
  return static_cast<double>(bytes) / static_cast<double>(kMiB);
}

// Renders a byte count with an adaptive unit suffix, e.g. "512 B", "4.0 KiB",
// "992.4 GiB". Two decimal places above KiB.
std::string FormatBytes(uint64_t bytes);

// Renders a bandwidth figure in MiB/s with two decimal places.
std::string FormatBandwidthMiBps(double mib_per_sec);

// Integer ceiling division. Requires divisor != 0.
constexpr uint64_t CeilDiv(uint64_t dividend, uint64_t divisor) {
  return (dividend + divisor - 1) / divisor;
}

// Rounds `value` up to the next multiple of `multiple`. Requires multiple != 0.
constexpr uint64_t RoundUp(uint64_t value, uint64_t multiple) {
  return CeilDiv(value, multiple) * multiple;
}

// Rounds `value` down to a multiple of `multiple`. Requires multiple != 0.
constexpr uint64_t RoundDown(uint64_t value, uint64_t multiple) {
  return (value / multiple) * multiple;
}

// True iff `value` is a power of two (and nonzero).
constexpr bool IsPowerOfTwo(uint64_t value) {
  return value != 0 && (value & (value - 1)) == 0;
}

}  // namespace flashsim

#endif  // SRC_SIMCORE_UNITS_H_
