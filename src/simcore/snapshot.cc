#include "src/simcore/snapshot.h"

#include <bit>
#include <cstdio>
#include <cstring>

// The format is little-endian (guarded by kSnapshotEndianSentinel at load),
// so on little-endian hosts the scalar and vector primitives degrade to
// plain memcpy — the fleet runner serializes every device once per slice,
// which makes these the hottest bytes in a campaign.

namespace flashsim {

SnapshotWriter::SnapshotWriter() { Reset(); }

void SnapshotWriter::Reset() {
  buf_.clear();
  open_sections_.clear();
  U32(kSnapshotMagic);
  U32(kSnapshotVersion);
  U32(kSnapshotEndianSentinel);
}

void SnapshotWriter::U32(uint32_t v) {
  if constexpr (std::endian::native == std::endian::little) {
    const size_t at = buf_.size();
    buf_.resize(at + 4);
    std::memcpy(buf_.data() + at, &v, 4);
  } else {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
}

void SnapshotWriter::U64(uint64_t v) {
  if constexpr (std::endian::native == std::endian::little) {
    const size_t at = buf_.size();
    buf_.resize(at + 8);
    std::memcpy(buf_.data() + at, &v, 8);
  } else {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
}

void SnapshotWriter::F64(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void SnapshotWriter::Str(const std::string& s) {
  U32(static_cast<uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void SnapshotWriter::VecU8(const std::vector<uint8_t>& v) {
  U64(v.size());
  buf_.insert(buf_.end(), v.begin(), v.end());
}

void SnapshotWriter::VecU32(const std::vector<uint32_t>& v) {
  U64(v.size());
  if constexpr (std::endian::native == std::endian::little) {
    if (!v.empty()) {
      const size_t at = buf_.size();
      buf_.resize(at + v.size() * 4);
      std::memcpy(buf_.data() + at, v.data(), v.size() * 4);
    }
  } else {
    for (uint32_t x : v) {
      U32(x);
    }
  }
}

void SnapshotWriter::VecU64(const std::vector<uint64_t>& v) {
  U64(v.size());
  if constexpr (std::endian::native == std::endian::little) {
    if (!v.empty()) {
      const size_t at = buf_.size();
      buf_.resize(at + v.size() * 8);
      std::memcpy(buf_.data() + at, v.data(), v.size() * 8);
    }
  } else {
    for (uint64_t x : v) {
      U64(x);
    }
  }
}

void SnapshotWriter::BeginSection(uint32_t tag) {
  U32(tag);
  open_sections_.push_back(buf_.size());
  U64(0);  // length placeholder, patched by EndSection
}

void SnapshotWriter::EndSection() {
  const size_t at = open_sections_.back();
  open_sections_.pop_back();
  const uint64_t length = buf_.size() - (at + 8);
  for (int i = 0; i < 8; ++i) {
    buf_[at + static_cast<size_t>(i)] = static_cast<uint8_t>(length >> (8 * i));
  }
}

Status SnapshotWriter::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return UnavailableError("cannot open snapshot file for writing: " + path);
  }
  const size_t written = buf_.empty() ? 0 : std::fwrite(buf_.data(), 1, buf_.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != buf_.size() || !closed) {
    return UnavailableError("short write to snapshot file: " + path);
  }
  return Status::Ok();
}

SnapshotReader::SnapshotReader(std::vector<uint8_t> data) : data_(std::move(data)) {
  if (U32() != kSnapshotMagic) {
    Fail("not a snapshot file (bad magic)");
    return;
  }
  const uint32_t version = U32();
  if (version != kSnapshotVersion) {
    Fail("unsupported snapshot version " + std::to_string(version));
    return;
  }
  if (U32() != kSnapshotEndianSentinel) {
    Fail("snapshot endianness sentinel mismatch");
  }
}

Result<SnapshotReader> SnapshotReader::FromFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return UnavailableError("cannot open snapshot file: " + path);
  }
  std::vector<uint8_t> data;
  uint8_t chunk[1 << 16];
  size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    data.insert(data.end(), chunk, chunk + got);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return UnavailableError("error reading snapshot file: " + path);
  }
  SnapshotReader reader(std::move(data));
  if (!reader.ok()) {
    return reader.status();
  }
  return reader;
}

void SnapshotReader::Fail(const std::string& message) {
  if (error_.ok()) {
    error_ = DataLossError("snapshot: " + message);
  }
}

std::vector<uint8_t> SnapshotReader::TakeBuffer() {
  pos_ = 0;
  section_ends_.clear();
  return std::move(data_);
}

// Bounds check for `count` elements of `elem_size` bytes. The division form
// matters: `count` comes straight from the file, so `count * elem_size`
// could wrap and pass a plain Need().
bool SnapshotReader::NeedCount(uint64_t count, size_t elem_size) {
  if (!error_.ok()) {
    return false;
  }
  const size_t limit = section_ends_.empty() ? data_.size() : section_ends_.back();
  const size_t avail = pos_ > limit ? 0 : limit - pos_;
  if (count > avail / elem_size) {
    Fail("truncated (vector count past end)");
    return false;
  }
  return true;
}

bool SnapshotReader::Need(size_t bytes) {
  if (!error_.ok()) {
    return false;
  }
  const size_t limit = section_ends_.empty() ? data_.size() : section_ends_.back();
  if (pos_ > limit || bytes > limit - pos_) {
    Fail("truncated (read past end of " +
         std::string(section_ends_.empty() ? "file" : "section") + ")");
    return false;
  }
  return true;
}

uint8_t SnapshotReader::U8() {
  if (!Need(1)) {
    return 0;
  }
  return data_[pos_++];
}

uint32_t SnapshotReader::U32() {
  if (!Need(4)) {
    return 0;
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data_[pos_++]) << (8 * i);
  }
  return v;
}

uint64_t SnapshotReader::U64() {
  if (!Need(8)) {
    return 0;
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
  }
  return v;
}

double SnapshotReader::F64() {
  const uint64_t bits = U64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string SnapshotReader::Str() {
  const uint32_t n = U32();
  if (!Need(n)) {
    return std::string();
  }
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

void SnapshotReader::VecU8(std::vector<uint8_t>* out) {
  const uint64_t n = U64();
  if (!Need(n)) {
    out->clear();
    return;
  }
  out->assign(data_.begin() + static_cast<ptrdiff_t>(pos_),
              data_.begin() + static_cast<ptrdiff_t>(pos_ + n));
  pos_ += n;
}

void SnapshotReader::VecU32(std::vector<uint32_t>* out) {
  const uint64_t n = U64();
  if (!NeedCount(n, 4)) {
    out->clear();
    return;
  }
  out->resize(n);
  if constexpr (std::endian::native == std::endian::little) {
    if (n != 0) {
      std::memcpy(out->data(), data_.data() + pos_, n * 4);
      pos_ += n * 4;
    }
  } else {
    for (uint64_t i = 0; i < n; ++i) {
      (*out)[i] = U32();
    }
  }
}

void SnapshotReader::VecU64(std::vector<uint64_t>* out) {
  const uint64_t n = U64();
  if (!NeedCount(n, 8)) {
    out->clear();
    return;
  }
  out->resize(n);
  if constexpr (std::endian::native == std::endian::little) {
    if (n != 0) {
      std::memcpy(out->data(), data_.data() + pos_, n * 8);
      pos_ += n * 8;
    }
  } else {
    for (uint64_t i = 0; i < n; ++i) {
      (*out)[i] = U64();
    }
  }
}

Status SnapshotReader::EnterSection(uint32_t tag) {
  while (ok()) {
    const size_t limit = section_ends_.empty() ? data_.size() : section_ends_.back();
    if (pos_ >= limit) {
      Fail("section not found: tag " + std::to_string(tag));
      break;
    }
    const uint32_t found = U32();
    const uint64_t length = U64();
    if (!Need(length)) {
      break;
    }
    if (found == tag) {
      section_ends_.push_back(pos_ + length);
      return Status::Ok();
    }
    pos_ += length;  // skip unknown section (forward compat)
  }
  return error_;
}

void SnapshotReader::LeaveSection() {
  if (section_ends_.empty()) {
    Fail("LeaveSection with no open section");
    return;
  }
  pos_ = section_ends_.back();
  section_ends_.pop_back();
}

}  // namespace flashsim
