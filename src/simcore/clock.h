// Discrete simulated clock.
//
// The simulation is service-time driven rather than event-queue driven: each
// device operation computes its service time and advances the shared clock.
// A SimClock is therefore just a monotonically advancing instant plus
// bookkeeping for how much time was spent in named categories.

#ifndef SRC_SIMCORE_CLOCK_H_
#define SRC_SIMCORE_CLOCK_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/simcore/sim_time.h"
#include "src/simcore/status.h"

namespace flashsim {

class SnapshotReader;
class SnapshotWriter;

// Monotonic simulated clock shared by a device stack.
class SimClock {
 public:
  SimClock() = default;

  // Current simulated instant.
  SimTime Now() const { return now_; }

  // Advances the clock by `d` (which must be non-negative).
  void Advance(SimDuration d);

  // Advances the clock and attributes the time to `category` for reporting
  // (e.g. "program", "erase", "bus").
  void AdvanceWithCategory(SimDuration d, const std::string& category);

  // Total simulated time attributed to `category` so far.
  SimDuration CategoryTotal(const std::string& category) const;

  // Resets the clock to zero and clears category accounting.
  void Reset();

  // Device snapshot support.
  void SaveState(SnapshotWriter& w) const;
  Status LoadState(SnapshotReader& r);

 private:
  SimTime now_;
  std::map<std::string, SimDuration> category_totals_;
};

}  // namespace flashsim

#endif  // SRC_SIMCORE_CLOCK_H_
