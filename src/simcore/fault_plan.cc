#include "src/simcore/fault_plan.h"

#include "src/simcore/rng.h"

namespace flashsim {

FaultPlan FaultPlan::AtOpCount(uint64_t nth_op) {
  FaultPlan plan;
  plan.cut_after_ops = nth_op;
  return plan;
}

FaultPlan FaultPlan::AtTime(SimTime t) {
  FaultPlan plan;
  plan.cut_at_time = t;
  return plan;
}

FaultPlan FaultPlan::RandomOpInWindow(uint64_t seed, uint64_t min_ops,
                                      uint64_t max_ops) {
  if (min_ops == 0) {
    min_ops = 1;
  }
  if (max_ops < min_ops) {
    max_ops = min_ops;
  }
  Rng rng(DeriveSeed(seed, /*stream=*/0x66617573ull));  // "faus"
  const uint64_t span = max_ops - min_ops + 1;
  return AtOpCount(min_ops + rng.UniformU64(span));
}

void PowerRail::Arm(const FaultPlan& plan) {
  plan_ = plan;
  armed_ = true;
  armed_at_ = ops_;
}

bool PowerRail::OnDestructiveOp() {
  ++ops_;
  if (!armed_ || !powered_) {
    return false;
  }
  bool fire = false;
  if (plan_.cut_after_ops != 0 && ops_ - armed_at_ >= plan_.cut_after_ops) {
    fire = true;
  }
  if (plan_.cut_at_time.has_value() && clock_ != nullptr &&
      clock_->Now() >= *plan_.cut_at_time) {
    fire = true;
  }
  if (!fire) {
    return false;
  }
  powered_ = false;
  armed_ = false;
  ++cuts_;
  return true;
}

}  // namespace flashsim
