// Incrementally-maintained victim-selection index.
//
// GC-style victim picks ("fewest valid pages among closed blocks") are a
// selection over a small integer key: the per-block valid count can only be
// one of [0, pages_per_block]. BucketVictimIndex keeps one bucket per key
// value and moves a member between buckets as its key changes, so the pick
// that used to be an O(total-blocks) scan becomes "first member of the
// lowest non-empty bucket" — O(1) amortized, independent of device size.
// This is the same replace-the-scan move as WearBucketedFreePool (PR 1),
// generalized so PageMapFtl GC, HybridFtl cache eviction, and the LogFs
// segment cleaner can all share it.
//
// Two bucket representations, chosen at Reset():
//  * Order::kById — each bucket is a hierarchical bitmap over member ids.
//    Insert/Erase/Move are a handful of word operations (no allocation on
//    the hot path), and the pick returns the LOWEST id in the bucket, which
//    is exactly the tie-break of a "first strict improvement wins" linear
//    scan. Used for greedy GC, cache eviction, and segment cleaning.
//  * Order::kBySortKeyThenId — each bucket is an ordered set of
//    (sort_key, id); the bucket minimum is the member with the smallest
//    sort key, lowest id first. Used for cost-benefit GC, where within a
//    valid-count bucket the winner is the oldest block (smallest close
//    sequence number).
//
// Ordering contract (relied on by the dual-implementation equivalence
// tests): PickMin returns the member a linear scan with a strict "better
// than best so far" comparison would return, i.e. lowest bucket first, then
// lowest id (kById) or lowest (sort_key, id) (kBySortKeyThenId).
//
// The structure is deliberately ignorant of what ids mean; callers own the
// membership rules (e.g. "closed blocks only", "in-use, non-log-head
// segments only") and must Insert/Erase/Move on every transition.

#ifndef SRC_SIMCORE_VICTIM_INDEX_H_
#define SRC_SIMCORE_VICTIM_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <set>
#include <utility>
#include <vector>

namespace flashsim {

// Victim-selection implementation switch, shared by the FTLs and LogFs. The
// linear scan is kept as the bit-exact reference implementation; benches and
// equivalence tests run both and compare victim sequences.
enum class VictimSelect {
  kLinearScan,  // O(candidates) scan per pick (reference implementation)
  kIndexed,     // incrementally-maintained BucketVictimIndex
};

const char* VictimSelectName(VictimSelect select);

// FNV-1a accumulator for victim-sequence hashes: equal hashes across two
// runs mean identical pick sequences without storing them.
inline constexpr uint64_t kVictimHashInit = 1469598103934665603ull;
inline uint64_t VictimHashMix(uint64_t hash, uint64_t victim) {
  hash ^= victim;
  hash *= 1099511628211ull;
  return hash;
}

class BucketVictimIndex {
 public:
  enum class Order { kById, kBySortKeyThenId };

  // Re-initializes to `bucket_count` empty buckets holding ids in
  // [0, id_limit). Buckets grow on demand if Insert names a higher bucket
  // (used when the bucket key is an unbounded P/E count); id_limit is fixed.
  // sort keys are only meaningful under kBySortKeyThenId and must be passed
  // consistently to Insert/Erase/Move/Contains (kById ignores them).
  void Reset(uint32_t bucket_count, uint32_t id_limit, Order order);

  void Insert(uint32_t bucket, uint32_t id, uint64_t sort_key = 0);
  void Erase(uint32_t bucket, uint32_t id, uint64_t sort_key = 0);
  void Move(uint32_t from_bucket, uint32_t to_bucket, uint32_t id,
            uint64_t sort_key = 0);
  bool Contains(uint32_t bucket, uint32_t id, uint64_t sort_key = 0) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  uint32_t bucket_count() const {
    return static_cast<uint32_t>(bucket_sizes_.size());
  }
  size_t bucket_size(uint32_t bucket) const {
    return bucket < bucket_sizes_.size() ? bucket_sizes_[bucket] : 0;
  }

  // Minimum member of the lowest non-empty bucket strictly below
  // `limit_bucket` (so a caller can exclude, say, fully-valid blocks).
  // Adds the number of buckets probed to `*probes_acc` (the indexed
  // equivalent of "candidates examined"). Amortized O(1): a lazily-advanced
  // cursor remembers that every bucket below it is empty.
  bool PickMin(uint32_t limit_bucket, uint32_t* bucket_out, uint32_t* id_out,
               uint64_t* probes_acc);

  // Minimum (sort_key, id) of one bucket; false when the bucket is empty.
  // The cost-benefit policy scores one candidate per bucket with this.
  bool BucketMin(uint32_t bucket, uint64_t* sort_key_out,
                 uint32_t* id_out) const;

  // Lowest id >= min_id across buckets [min cursor, last_bucket] — ascending
  // id iteration over "members with bucket key <= last_bucket", as used by
  // the cold-block sweep of static wear leveling. kById only. Probes every
  // non-empty bucket in range (bounded by the caller's key range, not by
  // device size); adds the bucket count probed to `*probes_acc`.
  bool MinIdAtLeast(uint32_t min_id, uint32_t last_bucket, uint32_t* id_out,
                    uint64_t* probes_acc);

 private:
  // Per-bucket bitmap with a one-level summary: summary bit w set iff
  // words[w] != 0. `words` is allocated on first insert, so untouched
  // buckets cost one empty vector each.
  struct BitBucket {
    std::vector<uint64_t> words;
    std::vector<uint64_t> summary;
  };

  void BitSet(BitBucket& bucket, uint32_t id);
  void BitClear(BitBucket& bucket, uint32_t id);
  bool BitTest(const BitBucket& bucket, uint32_t id) const;
  // Lowest set id >= min_id, or false.
  bool BitFirstAtLeast(const BitBucket& bucket, uint32_t min_id,
                       uint32_t* id_out) const;

  void EnsureBucket(uint32_t bucket);

  Order order_ = Order::kById;
  uint32_t id_limit_ = 0;
  uint32_t words_per_bucket_ = 0;
  uint32_t summary_per_bucket_ = 0;
  size_t size_ = 0;
  // No non-empty bucket exists below this cursor; only Insert/Move lower it.
  uint32_t min_bucket_ = 0;
  std::vector<uint32_t> bucket_sizes_;
  std::vector<BitBucket> bits_;                                    // kById
  std::vector<std::set<std::pair<uint64_t, uint32_t>>> sets_;  // kBySortKeyThenId
};

}  // namespace flashsim

#endif  // SRC_SIMCORE_VICTIM_INDEX_H_
