// Incrementally-maintained victim-selection index.
//
// GC-style victim picks ("fewest valid pages among closed blocks") are a
// selection over a small integer key: the per-block valid count can only be
// one of [0, pages_per_block]. BucketVictimIndex keeps one bucket per key
// value and moves a member between buckets as its key changes, so the pick
// that used to be an O(total-blocks) scan becomes "first member of the
// lowest non-empty bucket" — O(1) amortized, independent of device size.
// This is the same replace-the-scan move as WearBucketedFreePool (PR 1),
// generalized so PageMapFtl GC, HybridFtl cache eviction, and the LogFs
// segment cleaner can all share it.
//
// Two bucket representations, chosen at Reset():
//  * Order::kById — each bucket is a hierarchical bitmap over member ids.
//    Insert/Erase/Move are a handful of word operations (no allocation on
//    the hot path), and the pick returns the LOWEST id in the bucket, which
//    is exactly the tie-break of a "first strict improvement wins" linear
//    scan. Used for greedy GC, cache eviction, and segment cleaning.
//  * Order::kBySortKeyThenId — each bucket is an ordered set of
//    (sort_key, id); the bucket minimum is the member with the smallest
//    sort key, lowest id first. Used for cost-benefit GC, where within a
//    valid-count bucket the winner is the oldest block (smallest close
//    sequence number).
//
// Ordering contract (relied on by the dual-implementation equivalence
// tests): PickMin returns the member a linear scan with a strict "better
// than best so far" comparison would return, i.e. lowest bucket first, then
// lowest id (kById) or lowest (sort_key, id) (kBySortKeyThenId).
//
// The structure is deliberately ignorant of what ids mean; callers own the
// membership rules (e.g. "closed blocks only", "in-use, non-log-head
// segments only") and must Insert/Erase/Move on every transition.

#ifndef SRC_SIMCORE_VICTIM_INDEX_H_
#define SRC_SIMCORE_VICTIM_INDEX_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <set>
#include <utility>
#include <vector>

namespace flashsim {

// Victim-selection implementation switch, shared by the FTLs and LogFs. The
// linear scan is kept as the bit-exact reference implementation; benches and
// equivalence tests run both and compare victim sequences.
enum class VictimSelect {
  kLinearScan,  // O(candidates) scan per pick (reference implementation)
  kIndexed,     // incrementally-maintained BucketVictimIndex
};

const char* VictimSelectName(VictimSelect select);

// FNV-1a accumulator for victim-sequence hashes: equal hashes across two
// runs mean identical pick sequences without storing them.
inline constexpr uint64_t kVictimHashInit = 1469598103934665603ull;
inline uint64_t VictimHashMix(uint64_t hash, uint64_t victim) {
  hash ^= victim;
  hash *= 1099511628211ull;
  return hash;
}

class BucketVictimIndex {
 public:
  enum class Order { kById, kBySortKeyThenId };

  // Re-initializes to `bucket_count` empty buckets holding ids in
  // [0, id_limit). Buckets grow on demand if Insert names a higher bucket
  // (used when the bucket key is an unbounded P/E count); id_limit is fixed.
  // sort keys are only meaningful under kBySortKeyThenId and must be passed
  // consistently to Insert/Erase/Move/Contains (kById ignores them).
  void Reset(uint32_t bucket_count, uint32_t id_limit, Order order);

  // Membership mutations run on the per-page hot path (every valid-count
  // change of a closed block is a Move), so they are inline.
  void Insert(uint32_t bucket, uint32_t id, uint64_t sort_key = 0) {
    assert(id < id_limit_);
    EnsureBucket(bucket);
    if (order_ == Order::kById) {
      BitSet(bucket, id);
    } else {
      const bool inserted = sets_[bucket].emplace(sort_key, id).second;
      assert(inserted);
      (void)inserted;
    }
    ++bucket_sizes_[bucket];
    ++size_;
    if (bucket < min_bucket_) {
      min_bucket_ = bucket;
    }
  }
  void Erase(uint32_t bucket, uint32_t id, uint64_t sort_key = 0) {
    assert(bucket < bucket_sizes_.size() && bucket_sizes_[bucket] > 0);
    if (order_ == Order::kById) {
      BitClear(bucket, id);
    } else {
      const size_t erased = sets_[bucket].erase({sort_key, id});
      assert(erased == 1);
      (void)erased;
    }
    --bucket_sizes_[bucket];
    --size_;
  }
  void Move(uint32_t from_bucket, uint32_t to_bucket, uint32_t id,
            uint64_t sort_key = 0) {
    Erase(from_bucket, id, sort_key);
    Insert(to_bucket, id, sort_key);
  }
  bool Contains(uint32_t bucket, uint32_t id, uint64_t sort_key = 0) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  uint32_t bucket_count() const {
    return static_cast<uint32_t>(bucket_sizes_.size());
  }
  size_t bucket_size(uint32_t bucket) const {
    return bucket < bucket_sizes_.size() ? bucket_sizes_[bucket] : 0;
  }

  // Minimum member of the lowest non-empty bucket strictly below
  // `limit_bucket` (so a caller can exclude, say, fully-valid blocks).
  // Adds the number of buckets probed to `*probes_acc` (the indexed
  // equivalent of "candidates examined"). Amortized O(1): a lazily-advanced
  // cursor remembers that every bucket below it is empty.
  bool PickMin(uint32_t limit_bucket, uint32_t* bucket_out, uint32_t* id_out,
               uint64_t* probes_acc);

  // Minimum (sort_key, id) of one bucket; false when the bucket is empty.
  // The cost-benefit policy scores one candidate per bucket with this.
  bool BucketMin(uint32_t bucket, uint64_t* sort_key_out,
                 uint32_t* id_out) const;

  // Lowest id >= min_id across buckets [min cursor, last_bucket] — ascending
  // id iteration over "members with bucket key <= last_bucket", as used by
  // the cold-block sweep of static wear leveling. kById only. Probes every
  // non-empty bucket in range (bounded by the caller's key range, not by
  // device size); adds the bucket count probed to `*probes_acc`.
  bool MinIdAtLeast(uint32_t min_id, uint32_t last_bucket, uint32_t* id_out,
                    uint64_t* probes_acc);

  // The lazy cursor is pure acceleration state — it never changes WHICH
  // member a query returns, only how many buckets the query probes. Snapshot
  // restore re-applies a saved cursor after rebuilding so probe counters
  // continue bit-exactly with the saved device.
  uint32_t min_bucket() const { return min_bucket_; }
  void set_min_bucket(uint32_t bucket) { min_bucket_ = bucket; }

 private:
  // kById storage is one flat bitmap plane — words_[bucket * words_per_bucket_
  // + w] — plus a one-level summary per bucket (summary bit w set iff the
  // word is nonzero). Same flattening as the NAND metadata planes: the
  // per-page Move on the GC hot path touches two rows of one contiguous
  // array instead of chasing per-bucket vector headers.
  void BitSet(uint32_t bucket, uint32_t id) {
    const uint32_t w = id >> 6;
    uint64_t& word = words_[static_cast<size_t>(bucket) * words_per_bucket_ + w];
    assert((word & (1ull << (id & 63))) == 0);
    word |= 1ull << (id & 63);
    summary_[static_cast<size_t>(bucket) * summary_per_bucket_ + (w >> 6)] |=
        1ull << (w & 63);
  }
  void BitClear(uint32_t bucket, uint32_t id) {
    const uint32_t w = id >> 6;
    uint64_t& word = words_[static_cast<size_t>(bucket) * words_per_bucket_ + w];
    assert((word & (1ull << (id & 63))) != 0);
    word &= ~(1ull << (id & 63));
    if (word == 0) {
      summary_[static_cast<size_t>(bucket) * summary_per_bucket_ + (w >> 6)] &=
          ~(1ull << (w & 63));
    }
  }
  bool BitTest(uint32_t bucket, uint32_t id) const;
  // Lowest set id >= min_id in `bucket`, or false.
  bool BitFirstAtLeast(uint32_t bucket, uint32_t min_id, uint32_t* id_out) const;

  void EnsureBucket(uint32_t bucket) {
    if (bucket < bucket_sizes_.size()) {
      return;
    }
    GrowBuckets(bucket);
  }
  void GrowBuckets(uint32_t bucket);

  Order order_ = Order::kById;
  uint32_t id_limit_ = 0;
  uint32_t words_per_bucket_ = 0;
  uint32_t summary_per_bucket_ = 0;
  size_t size_ = 0;
  // No non-empty bucket exists below this cursor; only Insert/Move lower it.
  uint32_t min_bucket_ = 0;
  std::vector<uint32_t> bucket_sizes_;
  std::vector<uint64_t> words_;    // kById: bucket-major flat bitmap plane
  std::vector<uint64_t> summary_;  // kById: bucket-major word-nonempty bits
  std::vector<std::set<std::pair<uint64_t, uint32_t>>> sets_;  // kBySortKeyThenId
};

}  // namespace flashsim

#endif  // SRC_SIMCORE_VICTIM_INDEX_H_
