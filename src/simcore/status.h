// Lightweight error propagation without exceptions.
//
// Device operations can fail for reasons the caller must handle (device worn
// out, out of space, I/O rejected). Status carries a code and message;
// Result<T> carries either a value or a Status. Modeled on absl::Status but
// self-contained.

#ifndef SRC_SIMCORE_STATUS_H_
#define SRC_SIMCORE_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace flashsim {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,    // no free space / no free blocks
  kFailedPrecondition,   // e.g. file not open
  kDataLoss,             // uncorrectable ECC error
  kUnavailable,          // device is read-only or bricked
  kPowerLoss,            // power cut mid-operation; retry after Restore()
  kPermissionDenied,     // sandbox / rate-limit rejection
  kInternal,
};

// Human-readable name for a status code, e.g. "DATA_LOSS".
const char* StatusCodeName(StatusCode code);

// A success-or-error value. Default-constructed Status is OK.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "CODE_NAME: message".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

Status InvalidArgumentError(std::string message);
Status OutOfRangeError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status ResourceExhaustedError(std::string message);
Status FailedPreconditionError(std::string message);
Status DataLossError(std::string message);
Status UnavailableError(std::string message);
Status PowerLossError(std::string message);
Status PermissionDeniedError(std::string message);
Status InternalError(std::string message);

// Either a T or an error Status. Access to value() requires ok().
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

// Propagates a non-OK status from an expression to the caller.
#define FLASHSIM_RETURN_IF_ERROR(expr)          \
  do {                                          \
    ::flashsim::Status _st = (expr);            \
    if (!_st.ok()) {                            \
      return _st;                               \
    }                                           \
  } while (false)

}  // namespace flashsim

#endif  // SRC_SIMCORE_STATUS_H_
