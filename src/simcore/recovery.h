// RecoveryReport: what a mount-time crash-recovery pass found and repaired.
//
// Shared by the FTL layer (OOB scan, torn-page discard, mapping rebuild) and
// the file-system layer (log replay, journal scan, fsck-style orphan
// reclaim). Counters that do not apply to a layer stay zero; Merge() sums
// reports so a device-level remount can fold the FTL and fs passes into one.

#ifndef SRC_SIMCORE_RECOVERY_H_
#define SRC_SIMCORE_RECOVERY_H_

#include <cstdint>

namespace flashsim {

struct RecoveryReport {
  // FTL-level: physical scan.
  uint64_t scanned_pages = 0;           // programmed pages examined
  uint64_t torn_pages_discarded = 0;    // pages torn by an interrupted program
  uint64_t stale_pages_ignored = 0;     // superseded copies (lower seq)
  uint64_t mapped_pages_recovered = 0;  // live mappings rebuilt
  uint64_t torn_erase_blocks = 0;       // blocks re-erased (interrupted erase)
  uint64_t blocks_retired = 0;          // blocks that failed the mount re-erase
  uint64_t merges_replayed = 0;         // block-map: power-on log merges

  // FS-level: namespace recovery.
  uint64_t files_recovered = 0;         // files present after recovery
  uint64_t segments_replayed = 0;       // logfs: node entries rolled forward
  uint64_t journal_commits_scanned = 0; // extfs: commits in the journal ring
  uint64_t orphan_files = 0;            // files lost (never made durable)
  uint64_t orphan_blocks = 0;           // blocks reclaimed by rollback / fsck
  // State the mount had to discard or rewrite to reach a consistent
  // namespace (rolled-back files, reclaimed blocks). A copy-on-write design
  // where every on-media state is valid by construction reports zero here —
  // the CowFs crash contract, gated in CI.
  uint64_t fsck_repairs = 0;

  RecoveryReport& Merge(const RecoveryReport& o) {
    scanned_pages += o.scanned_pages;
    torn_pages_discarded += o.torn_pages_discarded;
    stale_pages_ignored += o.stale_pages_ignored;
    mapped_pages_recovered += o.mapped_pages_recovered;
    torn_erase_blocks += o.torn_erase_blocks;
    blocks_retired += o.blocks_retired;
    merges_replayed += o.merges_replayed;
    files_recovered += o.files_recovered;
    segments_replayed += o.segments_replayed;
    journal_commits_scanned += o.journal_commits_scanned;
    orphan_files += o.orphan_files;
    orphan_blocks += o.orphan_blocks;
    fsck_repairs += o.fsck_repairs;
    return *this;
  }
};

}  // namespace flashsim

#endif  // SRC_SIMCORE_RECOVERY_H_
