#include "src/simcore/stats.h"

#include <bit>
#include <cmath>

#include "src/simcore/snapshot.h"

namespace flashsim {

void RunningStats::Add(double sample) {
  if (count_ == 0) {
    min_ = sample;
    max_ = sample;
  } else {
    if (sample < min_) {
      min_ = sample;
    }
    if (sample > max_) {
      max_ = sample;
    }
  }
  ++count_;
  sum_ += sample;
  const double delta = sample - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (sample - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::Reset() { *this = RunningStats(); }

void LogHistogram::Add(uint64_t sample) {
  const int bucket = sample == 0 ? 0 : 63 - std::countl_zero(sample);
  buckets_[static_cast<size_t>(bucket)] += 1;
  ++total_;
}

uint64_t LogHistogram::ApproxQuantile(double q) const {
  if (total_ == 0) {
    return 0;
  }
  if (q < 0.0) {
    q = 0.0;
  }
  if (q > 1.0) {
    q = 1.0;
  }
  const uint64_t target = static_cast<uint64_t>(q * static_cast<double>(total_ - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen > target) {
      return i == 0 ? 0 : (1ull << i);
    }
  }
  return 1ull << 63;
}

void LogHistogram::Reset() {
  buckets_.fill(0);
  total_ = 0;
}

void RateMeter::Record(uint64_t bytes, SimDuration elapsed) {
  total_bytes_ += bytes;
  total_time_ += elapsed;
  ++operations_;
}

double RateMeter::MiBPerSec() const {
  const double seconds = total_time_.ToSecondsF();
  if (seconds <= 0.0) {
    return 0.0;
  }
  return static_cast<double>(total_bytes_) / (1024.0 * 1024.0) / seconds;
}

void RateMeter::Reset() { *this = RateMeter(); }

void RateMeter::SaveState(SnapshotWriter& w) const {
  w.U64(total_bytes_);
  w.U64(operations_);
  w.U64(static_cast<uint64_t>(total_time_.nanos()));
}

Status RateMeter::LoadState(SnapshotReader& r) {
  total_bytes_ = r.U64();
  operations_ = r.U64();
  total_time_ = SimDuration(static_cast<int64_t>(r.U64()));
  return r.status();
}

void CounterSet::Increment(const std::string& name, uint64_t delta) {
  counters_[name] += delta;
}

uint64_t CounterSet::Get(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void CounterSet::Reset() { counters_.clear(); }

void CounterSet::SaveState(SnapshotWriter& w) const {
  // Canonical form: zero-valued counters are omitted (Get() cannot tell a
  // zero from an absence). This keeps the snapshot byte-exact even when the
  // set carries zeroed residue keys from a LoadState into a reused instance.
  uint32_t nonzero = 0;
  for (const auto& [name, value] : counters_) {
    if (value != 0) {
      ++nonzero;
    }
  }
  w.U32(nonzero);
  for (const auto& [name, value] : counters_) {
    if (value != 0) {
      w.Str(name);
      w.U64(value);
    }
  }
}

Status CounterSet::LoadState(SnapshotReader& r) {
  for (auto& entry : counters_) {
    entry.second = 0;
  }
  const uint32_t n = r.U32();
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    const std::string name = r.Str();
    counters_[name] = r.U64();
  }
  return r.status();
}

}  // namespace flashsim
