// Deterministic pseudo-random number generation for the simulator.
//
// We use xoshiro256** — fast, high quality, and trivially seedable — so every
// experiment is reproducible from a single uint64 seed. Distribution helpers
// cover the needs of the flash model: uniform ints/doubles, Bernoulli trials,
// and an efficient binomial sampler for bit-error injection over large
// codewords (exact for small n, normal approximation for large n).

#ifndef SRC_SIMCORE_RNG_H_
#define SRC_SIMCORE_RNG_H_

#include <array>
#include <cstdint>

namespace flashsim {

// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  // Seeds the state via splitmix64 so any seed (including 0) is usable.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  // Next raw 64-bit value.
  uint64_t NextU64();

  // Uniform integer in [0, bound). Requires bound > 0. Uses rejection
  // sampling, so the result is unbiased.
  uint64_t UniformU64(uint64_t bound);

  // Uniform integer in [lo, hi]. Requires lo <= hi.
  uint64_t UniformInRange(uint64_t lo, uint64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Number of successes among `trials` independent trials of probability `p`.
  // Exact inversion for small `trials * p`, Gaussian approximation otherwise;
  // always clamped to [0, trials].
  uint64_t Binomial(uint64_t trials, double p);

  // Standard normal variate (Box-Muller).
  double Gaussian();

  // Exponentially distributed variate with the given mean. Requires mean > 0.
  double Exponential(double mean);

  // Re-seeds the generator, resetting its stream.
  void Reseed(uint64_t seed);

  // Raw generator state, for device snapshot save/restore (the stream
  // continues bit-exactly from a restored state).
  const std::array<uint64_t, 4>& state() const { return state_; }
  void set_state(const std::array<uint64_t, 4>& state) { state_ = state; }

 private:
  std::array<uint64_t, 4> state_;
};

// Derives a decorrelated child seed from (base_seed, stream_index) via two
// splitmix64 rounds: equal inputs give equal outputs, and nearby indices land
// in unrelated streams. The campaign runner uses this to give every run in a
// grid an independent RNG stream from one campaign seed; workload drivers use
// it to reseed looped streams per lap.
uint64_t DeriveSeed(uint64_t base_seed, uint64_t stream_index);

// Derives a per-device seed for population (fleet) grids from
// (campaign seed, run index, device index). Chains two DeriveSeed rounds
// through a domain-separation constant so the device streams of one run
// cannot collide with the per-run streams DeriveSeed hands out for the same
// campaign seed, and nearby (run, device) cells land in unrelated streams.
// fleet_seed_test proves the full 1M-device x 64-run grid is collision-free.
uint64_t DeriveDeviceSeed(uint64_t campaign_seed, uint64_t run_index,
                          uint64_t device_index);

}  // namespace flashsim

#endif  // SRC_SIMCORE_RNG_H_
