#include "src/simcore/victim_index.h"

#include <algorithm>
#include <cassert>

namespace flashsim {

const char* VictimSelectName(VictimSelect select) {
  switch (select) {
    case VictimSelect::kLinearScan:
      return "linear_scan";
    case VictimSelect::kIndexed:
      return "indexed";
  }
  return "unknown";
}

void BucketVictimIndex::Reset(uint32_t bucket_count, uint32_t id_limit,
                              Order order) {
  order_ = order;
  id_limit_ = id_limit;
  words_per_bucket_ = (id_limit + 63) / 64;
  summary_per_bucket_ = (words_per_bucket_ + 63) / 64;
  size_ = 0;
  min_bucket_ = 0;
  bucket_sizes_.assign(bucket_count, 0);
  words_.clear();
  summary_.clear();
  sets_.clear();
  if (order_ == Order::kById) {
    words_.assign(static_cast<size_t>(bucket_count) * words_per_bucket_, 0);
    summary_.assign(static_cast<size_t>(bucket_count) * summary_per_bucket_, 0);
  } else {
    sets_.resize(bucket_count);
  }
}

void BucketVictimIndex::GrowBuckets(uint32_t bucket) {
  const size_t count = static_cast<size_t>(bucket) + 1;
  bucket_sizes_.resize(count, 0);
  if (order_ == Order::kById) {
    // Bucket keys can grow one at a time over a device's life (P/E counts),
    // so grow the flat planes geometrically to keep the amortized cost flat.
    const auto grow = [](std::vector<uint64_t>& plane, size_t need) {
      if (plane.capacity() < need) {
        plane.reserve(std::max(plane.capacity() * 2, need));
      }
      plane.resize(need, 0);
    };
    grow(words_, count * words_per_bucket_);
    grow(summary_, count * summary_per_bucket_);
  } else {
    sets_.resize(count);
  }
}

bool BucketVictimIndex::BitTest(uint32_t bucket, uint32_t id) const {
  return (words_[static_cast<size_t>(bucket) * words_per_bucket_ + (id >> 6)] &
          (1ull << (id & 63))) != 0;
}

bool BucketVictimIndex::BitFirstAtLeast(uint32_t bucket, uint32_t min_id,
                                        uint32_t* id_out) const {
  if (min_id >= id_limit_) {
    return false;
  }
  const uint64_t* words =
      words_.data() + static_cast<size_t>(bucket) * words_per_bucket_;
  const uint64_t* summaries =
      summary_.data() + static_cast<size_t>(bucket) * summary_per_bucket_;
  const uint32_t w0 = min_id >> 6;
  // Bits >= min_id within the starting word.
  const uint64_t head = words[w0] & (~0ull << (min_id & 63));
  if (head != 0) {
    *id_out = (w0 << 6) + static_cast<uint32_t>(__builtin_ctzll(head));
    return true;
  }
  // Later words, via the summary. The starting summary word is masked down
  // to the bits for words strictly after w0.
  for (uint32_t sw = w0 >> 6; sw < summary_per_bucket_; ++sw) {
    uint64_t summary = summaries[sw];
    if (sw == (w0 >> 6)) {
      const uint32_t bit = w0 & 63;
      summary = bit == 63 ? 0 : summary & (~0ull << (bit + 1));
    }
    if (summary == 0) {
      continue;
    }
    const uint32_t w = (sw << 6) + static_cast<uint32_t>(__builtin_ctzll(summary));
    *id_out = (w << 6) + static_cast<uint32_t>(__builtin_ctzll(words[w]));
    return true;
  }
  return false;
}

bool BucketVictimIndex::Contains(uint32_t bucket, uint32_t id,
                                 uint64_t sort_key) const {
  if (bucket >= bucket_sizes_.size()) {
    return false;
  }
  if (order_ == Order::kById) {
    return BitTest(bucket, id);
  }
  return sets_[bucket].count({sort_key, id}) != 0;
}

bool BucketVictimIndex::PickMin(uint32_t limit_bucket, uint32_t* bucket_out,
                                uint32_t* id_out, uint64_t* probes_acc) {
  const uint32_t limit =
      std::min<uint32_t>(limit_bucket, static_cast<uint32_t>(bucket_sizes_.size()));
  uint32_t b = min_bucket_;
  for (; b < limit; ++b) {
    ++*probes_acc;
    if (bucket_sizes_[b] == 0) {
      continue;
    }
    min_bucket_ = b;
    *bucket_out = b;
    if (order_ == Order::kById) {
      const bool found = BitFirstAtLeast(b, 0, id_out);
      assert(found);
      (void)found;
    } else {
      *id_out = sets_[b].begin()->second;
    }
    return true;
  }
  // Every bucket below `limit` is empty; remember that so the next pick
  // (or a pick with a higher limit) resumes from here.
  min_bucket_ = b;
  return false;
}

bool BucketVictimIndex::BucketMin(uint32_t bucket, uint64_t* sort_key_out,
                                  uint32_t* id_out) const {
  if (bucket >= bucket_sizes_.size() || bucket_sizes_[bucket] == 0) {
    return false;
  }
  if (order_ == Order::kById) {
    uint32_t id = 0;
    if (!BitFirstAtLeast(bucket, 0, &id)) {
      return false;
    }
    *sort_key_out = 0;
    *id_out = id;
    return true;
  }
  *sort_key_out = sets_[bucket].begin()->first;
  *id_out = sets_[bucket].begin()->second;
  return true;
}

bool BucketVictimIndex::MinIdAtLeast(uint32_t min_id, uint32_t last_bucket,
                                     uint32_t* id_out, uint64_t* probes_acc) {
  assert(order_ == Order::kById);
  // Advance the cursor over leading empty buckets so the probe count is
  // bounded by the caller's key range (last_bucket - first non-empty), not
  // by how large bucket keys have grown over the device's life.
  while (min_bucket_ < bucket_sizes_.size() && bucket_sizes_[min_bucket_] == 0) {
    ++min_bucket_;
  }
  const uint32_t last =
      std::min<uint32_t>(last_bucket,
                         bucket_sizes_.empty()
                             ? 0
                             : static_cast<uint32_t>(bucket_sizes_.size() - 1));
  bool found = false;
  uint32_t best = 0;
  for (uint32_t b = min_bucket_; b <= last && b < bucket_sizes_.size(); ++b) {
    ++*probes_acc;
    if (bucket_sizes_[b] == 0) {
      continue;
    }
    uint32_t id = 0;
    if (BitFirstAtLeast(b, min_id, &id) && (!found || id < best)) {
      found = true;
      best = id;
    }
  }
  if (found) {
    *id_out = best;
  }
  return found;
}

}  // namespace flashsim
