#include "src/simcore/rng.h"

#include <cassert>
#include <cmath>

namespace flashsim {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

constexpr uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t DeriveSeed(uint64_t base_seed, uint64_t stream_index) {
  uint64_t x = base_seed;
  uint64_t h = SplitMix64(x);
  x = h ^ (stream_index * 0x9e3779b97f4a7c15ull);
  h = SplitMix64(x);
  return h ^ stream_index;
}

uint64_t DeriveDeviceSeed(uint64_t campaign_seed, uint64_t run_index,
                          uint64_t device_index) {
  // Domain-separate the run stream before deriving per-device children, so
  // DeriveDeviceSeed(s, r, d) never aliases DeriveSeed(s, i) for the indices
  // campaigns actually use.
  const uint64_t run_stream =
      DeriveSeed(campaign_seed, run_index) ^ 0xd1f1ee7ull * 0x9e3779b97f4a7c15ull;
  return DeriveSeed(run_stream, device_index);
}

Rng::Rng(uint64_t seed) { Reseed(seed); }

void Rng::Reseed(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) {
    word = SplitMix64(s);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t bound) {
  assert(bound > 0);
  // Lemire-style rejection to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

uint64_t Rng::UniformInRange(uint64_t lo, uint64_t hi) {
  assert(lo <= hi);
  return lo + UniformU64(hi - lo + 1);
}

double Rng::UniformDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return UniformDouble() < p;
}

uint64_t Rng::Binomial(uint64_t trials, double p) {
  if (trials == 0 || p <= 0.0) {
    return 0;
  }
  if (p >= 1.0) {
    return trials;
  }
  const double mean = static_cast<double>(trials) * p;
  if (mean < 16.0) {
    // Poisson-like regime: inversion by sequential search on the CDF is O(mean).
    // For very small p over huge `trials` this is both exact enough and fast.
    // Draw from Poisson(mean) as the standard small-p approximation, clamped.
    double l = std::exp(-mean);
    uint64_t k = 0;
    double prod = UniformDouble();
    while (prod > l && k < trials) {
      ++k;
      prod *= UniformDouble();
    }
    return k;
  }
  // Normal approximation with continuity correction.
  const double variance = mean * (1.0 - p);
  double sample = mean + std::sqrt(variance) * Gaussian() + 0.5;
  if (sample < 0.0) {
    return 0;
  }
  const uint64_t value = static_cast<uint64_t>(sample);
  return value > trials ? trials : value;
}

double Rng::Gaussian() {
  // Box-Muller; discard the second variate for simplicity.
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  if (u1 < 1e-300) {
    u1 = 1e-300;
  }
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::Exponential(double mean) {
  assert(mean > 0.0);
  double u = UniformDouble();
  if (u < 1e-300) {
    u = 1e-300;
  }
  return -mean * std::log(u);
}

}  // namespace flashsim
