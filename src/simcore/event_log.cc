#include "src/simcore/event_log.h"

namespace flashsim {

const char* EventSeverityName(EventSeverity severity) {
  switch (severity) {
    case EventSeverity::kDebug:
      return "DEBUG";
    case EventSeverity::kInfo:
      return "INFO";
    case EventSeverity::kWarning:
      return "WARNING";
    case EventSeverity::kError:
      return "ERROR";
  }
  return "UNKNOWN";
}

void EventLog::Append(SimTime time, EventSeverity severity, std::string component,
                      std::string message) {
  if (events_.size() >= capacity_) {
    events_.pop_front();
    ++dropped_;
  }
  events_.push_back(Event{time, severity, std::move(component), std::move(message)});
}

std::vector<Event> EventLog::Filter(const std::string& component,
                                    EventSeverity min_severity) const {
  std::vector<Event> out;
  for (const Event& e : events_) {
    if (e.component == component && e.severity >= min_severity) {
      out.push_back(e);
    }
  }
  return out;
}

uint64_t EventLog::CountAtSeverity(EventSeverity severity) const {
  uint64_t n = 0;
  for (const Event& e : events_) {
    if (e.severity == severity) {
      ++n;
    }
  }
  return n;
}

void EventLog::Clear() {
  events_.clear();
  dropped_ = 0;
}

}  // namespace flashsim
