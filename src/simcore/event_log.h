// Bounded in-memory event log for device/FTL/OS events.
//
// Components append timestamped events; tests and tools inspect or dump them.
// The log is a ring: when full, the oldest events are dropped (and counted),
// so long experiments cannot exhaust memory.

#ifndef SRC_SIMCORE_EVENT_LOG_H_
#define SRC_SIMCORE_EVENT_LOG_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/simcore/sim_time.h"

namespace flashsim {

enum class EventSeverity { kDebug, kInfo, kWarning, kError };

const char* EventSeverityName(EventSeverity severity);

struct Event {
  SimTime time;
  EventSeverity severity = EventSeverity::kInfo;
  std::string component;  // e.g. "ftl", "emmc", "fs.logfs"
  std::string message;
};

class EventLog {
 public:
  explicit EventLog(size_t capacity = 4096) : capacity_(capacity) {}

  void Append(SimTime time, EventSeverity severity, std::string component,
              std::string message);

  size_t size() const { return events_.size(); }
  uint64_t dropped() const { return dropped_; }
  const std::deque<Event>& events() const { return events_; }

  // Events from `component` at `min_severity` or above, oldest first.
  std::vector<Event> Filter(const std::string& component,
                            EventSeverity min_severity = EventSeverity::kDebug) const;

  // Count of events at exactly `severity`.
  uint64_t CountAtSeverity(EventSeverity severity) const;

  void Clear();

 private:
  size_t capacity_;
  std::deque<Event> events_;
  uint64_t dropped_ = 0;
};

}  // namespace flashsim

#endif  // SRC_SIMCORE_EVENT_LOG_H_
