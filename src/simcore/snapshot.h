// Device snapshot container: versioned, sectioned, endian-stable binary
// serialization for worn-device state (DESIGN.md §12).
//
// Layout:
//   header:   magic "FSNP" (u32) | format version (u32) | endian sentinel
//             0x01020304 (u32)
//   sections: { tag (u32 FourCC) | payload length (u64) | payload bytes }*
//
// All integers are packed little-endian byte-by-byte, so snapshot files are
// portable across hosts regardless of native endianness (the sentinel
// documents and double-checks this).
//
// Forward-compatibility policy: readers locate sections by tag and skip
// unknown ones, and LeaveSection() jumps to the recorded payload end even if
// the reader consumed only a prefix — so newer writers may append sections
// anywhere and append fields at the END of an existing section without
// breaking older readers. Removing or reordering existing fields requires a
// format version bump.
//
// Error handling: SnapshotReader is sticky — the first malformed read marks
// the reader failed, every subsequent numeric read returns 0, and the caller
// checks status() once at the end instead of per field.

#ifndef SRC_SIMCORE_SNAPSHOT_H_
#define SRC_SIMCORE_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/simcore/status.h"

namespace flashsim {

inline constexpr uint32_t kSnapshotMagic = 0x504e5346u;  // "FSNP" in LE bytes
inline constexpr uint32_t kSnapshotVersion = 1;
inline constexpr uint32_t kSnapshotEndianSentinel = 0x01020304u;

// FourCC section tag, e.g. SnapshotTag("CHIP").
constexpr uint32_t SnapshotTag(const char (&s)[5]) {
  return static_cast<uint32_t>(static_cast<uint8_t>(s[0])) |
         static_cast<uint32_t>(static_cast<uint8_t>(s[1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(s[2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(s[3])) << 24;
}

class SnapshotWriter {
 public:
  SnapshotWriter();  // writes the header

  // Rewinds to a fresh header while keeping the buffer's capacity, so one
  // writer can serialize many snapshots without steady-state allocation.
  void Reset();

  void U8(uint8_t v) { buf_.push_back(v); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void F64(double v);  // bit pattern, via u64
  void Str(const std::string& s);                  // u32 length + bytes
  void VecU8(const std::vector<uint8_t>& v);       // u64 count + bytes
  void VecU32(const std::vector<uint32_t>& v);     // u64 count + packed LE
  void VecU64(const std::vector<uint64_t>& v);

  // Sections may nest; every BeginSection needs a matching EndSection.
  void BeginSection(uint32_t tag);
  void EndSection();

  const std::vector<uint8_t>& buffer() const { return buf_; }
  Status WriteFile(const std::string& path) const;

 private:
  std::vector<uint8_t> buf_;
  std::vector<size_t> open_sections_;  // offsets of pending length fields
};

class SnapshotReader {
 public:
  explicit SnapshotReader(std::vector<uint8_t> data);
  static Result<SnapshotReader> FromFile(const std::string& path);

  uint8_t U8();
  bool Bool() { return U8() != 0; }
  uint32_t U32();
  uint64_t U64();
  double F64();
  std::string Str();
  void VecU8(std::vector<uint8_t>* out);
  void VecU32(std::vector<uint32_t>* out);
  void VecU64(std::vector<uint64_t>* out);

  // Scans forward from the current position for a section with `tag`,
  // skipping unknown sections, and positions the reader at its payload.
  // Fails the reader if the tag is not found before the enclosing region
  // ends.
  Status EnterSection(uint32_t tag);
  // Jumps to the end of the innermost open section (consuming any appended
  // fields this reader does not know about).
  void LeaveSection();

  bool ok() const { return error_.ok(); }
  Status status() const { return error_; }

  // Moves the underlying buffer back out (e.g. to keep the raw snapshot as
  // a delta base after loading from it). Check status() first; the reader
  // must not be used afterwards.
  std::vector<uint8_t> TakeBuffer();

 private:
  void Fail(const std::string& message);
  bool Need(size_t bytes);
  bool NeedCount(uint64_t count, size_t elem_size);

  std::vector<uint8_t> data_;
  size_t pos_ = 0;
  std::vector<size_t> section_ends_;
  Status error_;
};

}  // namespace flashsim

#endif  // SRC_SIMCORE_SNAPSHOT_H_
