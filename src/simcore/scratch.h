// Reusable per-operation scratch buffers.
//
// The bulk I/O paths need per-op arrays whose length varies call to call
// (LPN runs, per-page service times). Allocating them inside the hot loop
// would put malloc on the per-batch path, so each call site owns a
// ScratchBuffer: one geometrically-grown allocation reused across calls.
// Every reallocation is counted, which turns "zero steady-state allocation"
// from a hope into a testable invariant — after warm-up, acquiring any
// previously seen size must leave grow_count() unchanged (DESIGN.md §12).

#ifndef SRC_SIMCORE_SCRATCH_H_
#define SRC_SIMCORE_SCRATCH_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace flashsim {

template <typename T>
class ScratchBuffer {
 public:
  // `count` elements with unspecified contents (the caller overwrites them).
  T* Acquire(size_t count) {
    NotePushBackGrowth();
    EnsureCapacity(count);
    buf_.resize(count);
    return buf_.data();
  }

  // `count` value-initialized elements.
  T* AcquireZeroed(size_t count) {
    NotePushBackGrowth();
    EnsureCapacity(count);
    buf_.assign(count, T());
    return buf_.data();
  }

  // Cleared, length-zero buffer for push_back-style filling when the final
  // size is not known up front. Growth during the fill is detected and
  // counted at the next acquire (or by grow_count()).
  std::vector<T>& AcquireEmpty() {
    NotePushBackGrowth();
    buf_.clear();
    return buf_;
  }

  // Reallocations so far, including any pending one from push_back filling.
  uint64_t grow_count() const {
    return grows_ + (buf_.capacity() != last_capacity_ ? 1 : 0);
  }

 private:
  void EnsureCapacity(size_t count) {
    if (count > buf_.capacity()) {
      buf_.reserve(std::max(buf_.capacity() * 2, count));
      ++grows_;
      last_capacity_ = buf_.capacity();
    }
  }
  void NotePushBackGrowth() {
    if (buf_.capacity() != last_capacity_) {
      ++grows_;
      last_capacity_ = buf_.capacity();
    }
  }

  std::vector<T> buf_;
  uint64_t grows_ = 0;
  size_t last_capacity_ = 0;
};

}  // namespace flashsim

#endif  // SRC_SIMCORE_SCRATCH_H_
