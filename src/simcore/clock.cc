#include "src/simcore/clock.h"

#include <cassert>

namespace flashsim {

void SimClock::Advance(SimDuration d) {
  assert(d.nanos() >= 0);
  now_ += d;
}

void SimClock::AdvanceWithCategory(SimDuration d, const std::string& category) {
  Advance(d);
  category_totals_[category] += d;
}

SimDuration SimClock::CategoryTotal(const std::string& category) const {
  auto it = category_totals_.find(category);
  return it == category_totals_.end() ? SimDuration() : it->second;
}

void SimClock::Reset() {
  now_ = SimTime();
  category_totals_.clear();
}

}  // namespace flashsim
