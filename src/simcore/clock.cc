#include "src/simcore/clock.h"

#include <cassert>

#include "src/simcore/snapshot.h"

namespace flashsim {

void SimClock::Advance(SimDuration d) {
  assert(d.nanos() >= 0);
  now_ += d;
}

void SimClock::AdvanceWithCategory(SimDuration d, const std::string& category) {
  Advance(d);
  category_totals_[category] += d;
}

SimDuration SimClock::CategoryTotal(const std::string& category) const {
  auto it = category_totals_.find(category);
  return it == category_totals_.end() ? SimDuration() : it->second;
}

void SimClock::Reset() {
  now_ = SimTime();
  category_totals_.clear();
}

void SimClock::SaveState(SnapshotWriter& w) const {
  w.U64(static_cast<uint64_t>(now_.nanos()));
  w.U32(static_cast<uint32_t>(category_totals_.size()));
  for (const auto& [category, total] : category_totals_) {
    w.Str(category);
    w.U64(static_cast<uint64_t>(total.nanos()));
  }
}

Status SimClock::LoadState(SnapshotReader& r) {
  now_ = SimTime(static_cast<int64_t>(r.U64()));
  category_totals_.clear();
  const uint32_t n = r.U32();
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    const std::string category = r.Str();
    category_totals_[category] = SimDuration(static_cast<int64_t>(r.U64()));
  }
  return r.status();
}

}  // namespace flashsim
