// Deterministic power-loss fault injection.
//
// A FaultPlan schedules exactly one power cut: on the N-th destructive NAND
// operation (program or erase), at the first destructive operation at or
// after a simulated instant, or at an operation index drawn from a seeded
// RNG. A PowerRail is armed with a plan and attached to one or more
// NandChips; the chip consults the rail once per destructive operation,
// *before* committing it. When the trigger fires the in-flight operation is
// left torn (see NandBlock) and the rail drops to the unpowered state, where
// every chip operation fails with kPowerLoss until Restore() is called —
// the moment the harness "plugs the device back in" and remounts.
//
// Determinism: op-count triggers are exact by construction; random triggers
// resolve to an op count when the plan is built, so a run is bit-reproducible
// from (workload seed, plan) alone. Time triggers depend only on the
// attached SimClock, which is itself deterministic.

#ifndef SRC_SIMCORE_FAULT_PLAN_H_
#define SRC_SIMCORE_FAULT_PLAN_H_

#include <cstdint>
#include <optional>

#include "src/simcore/clock.h"
#include "src/simcore/sim_time.h"

namespace flashsim {

struct FaultPlan {
  // Fire on the nth destructive operation after arming (1 = the very next
  // program/erase). 0 disables the op-count trigger.
  uint64_t cut_after_ops = 0;

  // Fire on the first destructive operation at or after this instant.
  // Requires a SimClock attached to the rail.
  std::optional<SimTime> cut_at_time;

  static FaultPlan AtOpCount(uint64_t nth_op);
  static FaultPlan AtTime(SimTime t);

  // Seeded-random trigger: resolves to a uniform op count in
  // [min_ops, max_ops] (inclusive) so the run is reproducible from the seed.
  static FaultPlan RandomOpInWindow(uint64_t seed, uint64_t min_ops,
                                    uint64_t max_ops);
};

class PowerRail {
 public:
  PowerRail() = default;

  // Needed only for FaultPlan::cut_at_time triggers.
  void AttachClock(const SimClock* clock) { clock_ = clock; }

  // Arms (or re-arms) the cut. The op-count window restarts at arming time.
  void Arm(const FaultPlan& plan);
  void Disarm() { armed_ = false; }

  bool armed() const { return armed_; }
  bool powered() const { return powered_; }
  uint64_t destructive_ops() const { return ops_; }
  uint64_t cuts_delivered() const { return cuts_; }

  // Chip hook: counts one destructive operation and returns true exactly when
  // the armed cut fires on it — the caller must then leave the operation
  // torn. Must only be called while powered.
  bool OnDestructiveOp();

  // Power restored: chip operations succeed again. Does not re-arm.
  void Restore() { powered_ = true; }

 private:
  const SimClock* clock_ = nullptr;
  FaultPlan plan_;
  bool armed_ = false;
  bool powered_ = true;
  uint64_t ops_ = 0;        // lifetime destructive-op count across attach(es)
  uint64_t armed_at_ = 0;   // ops_ value when Arm() was called
  uint64_t cuts_ = 0;
};

}  // namespace flashsim

#endif  // SRC_SIMCORE_FAULT_PLAN_H_
