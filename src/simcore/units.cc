#include "src/simcore/units.h"

#include <cstdio>

namespace flashsim {

std::string FormatBytes(uint64_t bytes) {
  char buf[64];
  if (bytes >= kTiB) {
    std::snprintf(buf, sizeof(buf), "%.2f TiB", static_cast<double>(bytes) / kTiB);
  } else if (bytes >= kGiB) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", static_cast<double>(bytes) / kGiB);
  } else if (bytes >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB", static_cast<double>(bytes) / kMiB);
  } else if (bytes >= kKiB) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB", static_cast<double>(bytes) / kKiB);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string FormatBandwidthMiBps(double mib_per_sec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f MiB/s", mib_per_sec);
  return buf;
}

}  // namespace flashsim
