// Simulated-time types.
//
// The simulator keeps time as integer nanoseconds since simulation start.
// Strong typedefs keep durations and instants from mixing with byte counts,
// while staying trivially copyable and cheap.

#ifndef SRC_SIMCORE_SIM_TIME_H_
#define SRC_SIMCORE_SIM_TIME_H_

#include <compare>
#include <cstdint>

namespace flashsim {

// A span of simulated time, in nanoseconds. Value type; supports arithmetic.
class SimDuration {
 public:
  constexpr SimDuration() = default;
  constexpr explicit SimDuration(int64_t nanos) : nanos_(nanos) {}

  static constexpr SimDuration Nanos(int64_t n) { return SimDuration(n); }
  static constexpr SimDuration Micros(int64_t n) { return SimDuration(n * 1000); }
  static constexpr SimDuration Millis(int64_t n) { return SimDuration(n * 1000000); }
  static constexpr SimDuration Seconds(int64_t n) { return SimDuration(n * 1000000000); }
  static constexpr SimDuration Minutes(int64_t n) { return Seconds(n * 60); }
  static constexpr SimDuration Hours(int64_t n) { return Seconds(n * 3600); }

  // Builds a duration from a fractional second count (rounded to nanoseconds).
  static constexpr SimDuration FromSecondsF(double seconds) {
    return SimDuration(static_cast<int64_t>(seconds * 1e9));
  }

  constexpr int64_t nanos() const { return nanos_; }
  constexpr double ToSecondsF() const { return static_cast<double>(nanos_) / 1e9; }
  constexpr double ToHoursF() const { return ToSecondsF() / 3600.0; }

  constexpr SimDuration operator+(SimDuration other) const {
    return SimDuration(nanos_ + other.nanos_);
  }
  constexpr SimDuration operator-(SimDuration other) const {
    return SimDuration(nanos_ - other.nanos_);
  }
  constexpr SimDuration operator*(int64_t k) const { return SimDuration(nanos_ * k); }
  constexpr SimDuration& operator+=(SimDuration other) {
    nanos_ += other.nanos_;
    return *this;
  }
  constexpr auto operator<=>(const SimDuration&) const = default;

 private:
  int64_t nanos_ = 0;
};

// An instant on the simulated clock, nanoseconds since simulation start.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(int64_t nanos) : nanos_(nanos) {}

  constexpr int64_t nanos() const { return nanos_; }
  constexpr double ToSecondsF() const { return static_cast<double>(nanos_) / 1e9; }
  constexpr double ToHoursF() const { return ToSecondsF() / 3600.0; }

  constexpr SimTime operator+(SimDuration d) const { return SimTime(nanos_ + d.nanos()); }
  constexpr SimDuration operator-(SimTime other) const {
    return SimDuration(nanos_ - other.nanos_);
  }
  constexpr SimTime& operator+=(SimDuration d) {
    nanos_ += d.nanos();
    return *this;
  }
  constexpr auto operator<=>(const SimTime&) const = default;

 private:
  int64_t nanos_ = 0;
};

}  // namespace flashsim

#endif  // SRC_SIMCORE_SIM_TIME_H_
