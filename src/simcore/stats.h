// Streaming statistics containers used across the simulator:
//  - RunningStats: count/mean/variance/min/max without storing samples.
//  - LogHistogram: power-of-two bucketed histogram for latencies/sizes.
//  - RateMeter: bytes-over-simulated-time bandwidth accounting.
//  - Counter: named monotonic counters grouped in a CounterSet.

#ifndef SRC_SIMCORE_STATS_H_
#define SRC_SIMCORE_STATS_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/simcore/sim_time.h"
#include "src/simcore/status.h"

namespace flashsim {

class SnapshotReader;
class SnapshotWriter;

// Welford-style running mean/variance plus min/max.
class RunningStats {
 public:
  void Add(double sample);

  uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  // Population variance; 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }

  void Reset();

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Histogram with 64 power-of-two buckets: bucket i counts samples in
// [2^i, 2^(i+1)). Sample 0 lands in bucket 0.
class LogHistogram {
 public:
  void Add(uint64_t sample);

  uint64_t TotalCount() const { return total_; }
  uint64_t BucketCount(int bucket) const { return buckets_.at(static_cast<size_t>(bucket)); }

  // Approximate quantile (q in [0,1]): returns the lower bound of the bucket
  // containing the q-th sample. Returns 0 when empty.
  uint64_t ApproxQuantile(double q) const;

  void Reset();

 private:
  std::array<uint64_t, 64> buckets_ = {};
  uint64_t total_ = 0;
};

// Accumulates bytes transferred against simulated elapsed time and reports
// mean bandwidth. The caller supplies both sides explicitly, so the meter is
// independent of any particular clock instance.
class RateMeter {
 public:
  void Record(uint64_t bytes, SimDuration elapsed);

  uint64_t total_bytes() const { return total_bytes_; }
  SimDuration total_time() const { return total_time_; }
  uint64_t operations() const { return operations_; }

  // Mean bandwidth in MiB per simulated second; 0 if no time has elapsed.
  double MiBPerSec() const;

  void Reset();

  // Device snapshot support.
  void SaveState(SnapshotWriter& w) const;
  Status LoadState(SnapshotReader& r);

 private:
  uint64_t total_bytes_ = 0;
  uint64_t operations_ = 0;
  SimDuration total_time_;
};

// A set of named monotonic counters, for device/FTL introspection dumps.
class CounterSet {
 public:
  void Increment(const std::string& name, uint64_t delta = 1);
  uint64_t Get(const std::string& name) const;
  const std::map<std::string, uint64_t>& counters() const { return counters_; }
  void Reset();

  // Pre-resolved counter slot for hot paths: one map lookup at setup, then
  // plain integer increments. Map nodes are stable, so the pointer survives
  // later insertions (and moves of the owning CounterSet).
  uint64_t* Slot(const std::string& name) { return &counters_[name]; }

  // Device snapshot support. LoadState zeroes every existing counter and
  // then applies the saved values in place, so pre-resolved Slot() pointers
  // stay valid across a restore. SaveState omits zero-valued counters, so
  // the serialized bytes are a pure function of the logical counter values
  // (zeroed residue keys in a reused instance never leak into a snapshot).
  void SaveState(SnapshotWriter& w) const;
  Status LoadState(SnapshotReader& r);

 private:
  std::map<std::string, uint64_t> counters_;
};

}  // namespace flashsim

#endif  // SRC_SIMCORE_STATS_H_
