// Crash-recovery property harness.
//
// One scenario = one deterministic (seed, cut) experiment: build a fresh
// device + file system, drive a randomized workload while mirroring every
// acknowledged operation into a ShadowFs, cut power at a planned destructive
// NAND operation, restore, remount (FTL OOB scan + fs recovery), and check:
//
//   (a) durability — the recovered namespace equals one of the shadow's
//       admissible namespaces, and every recovered file reads back in full;
//   (b) integrity — FTL and fs mounts succeed and FTL invariants hold, and
//       a second remount reproduces the identical state (idempotence); the
//       device stays usable (write + fsync + read succeed post-recovery);
//   (c) wear accounting — erase counts, NAND writes, average P/E, and spare
//       consumption never move backwards across the crash.
//
// Everything is reproducible from the spec alone: the workload stream comes
// from DeriveSeed(seed, ...) and the random cut resolves to an exact op
// count when the FaultPlan is built. A failing run reports a one-line
// crash_soak command that replays it exactly.

#ifndef SRC_CRASHLAB_CRASH_HARNESS_H_
#define SRC_CRASHLAB_CRASH_HARNESS_H_

#include <cstdint>
#include <string>

#include "src/simcore/recovery.h"

namespace flashsim {

enum class FtlKind { kPageMap, kHybrid };
enum class FsKind { kLogFs, kExtFs, kCowFs };

// Operation mixes. kMixed exercises the whole namespace API; kOverwrite
// hammers sync overwrites on few files (in-place / cache-eviction paths);
// kSyncHeavy is append + fsync churn (node-write / journal-commit paths).
enum class CrashWorkload { kMixed, kOverwrite, kSyncHeavy };

const char* FtlKindName(FtlKind kind);
const char* FsKindName(FsKind kind);
const char* CrashWorkloadName(CrashWorkload workload);
bool ParseFtlKind(const std::string& s, FtlKind* out);
bool ParseFsKind(const std::string& s, FsKind* out);
bool ParseCrashWorkload(const std::string& s, CrashWorkload* out);

struct CrashSpec {
  FtlKind ftl = FtlKind::kPageMap;
  FsKind fs = FsKind::kLogFs;
  CrashWorkload workload = CrashWorkload::kMixed;
  uint64_t seed = 1;
  // File-system operations to attempt before a clean shutdown.
  uint64_t ops = 400;
  // Exact destructive-NAND-op index to cut at (1 = first program/erase).
  // 0 = draw one from the seed, uniform in [1, cut_window].
  uint64_t cut_op = 0;
  uint64_t cut_window = 4000;
  // No cut at all: run the workload, fsync everything, then remount — the
  // clean-shutdown recovery path must restore the namespace exactly.
  bool no_cut = false;
  // Queue topology for the device under test (0 = keep the flat default).
  // The event engine is a timing overlay: the power cut triggers on a
  // destructive-NAND-op *index*, not a wall-clock time, so the same
  // (seed, cut) scenario must recover to the identical state at any
  // channel count or queue depth.
  uint32_t channels = 0;
  uint32_t queue_depth = 0;
};

struct CrashRunResult {
  bool ok = false;
  std::string failure;  // empty when ok; names the violated property
  bool cut_fired = false;
  uint64_t resolved_cut_op = 0;   // exact op index the plan resolved to
  uint64_t ops_acknowledged = 0;  // fs ops completed before the cut
  RecoveryReport report;          // FTL mount + fs mount, merged
  std::string repro;              // one-line crash_soak replay command
};

CrashRunResult RunCrashScenario(const CrashSpec& spec);

// {"scanned_pages": 123, ...} — for the soak driver's CI artifact.
std::string RecoveryReportJson(const RecoveryReport& rep);

}  // namespace flashsim

#endif  // SRC_CRASHLAB_CRASH_HARNESS_H_
