#include "src/crashlab/shadow_fs.h"

#include <algorithm>
#include <cassert>

namespace flashsim {

ShadowFs::ShadowFs(DurabilityContract contract, uint64_t commit_batch_bytes)
    : contract_(contract), commit_batch_bytes_(commit_batch_bytes) {}

void ShadowFs::Barrier(const std::string& name) {
  if (contract_ == DurabilityContract::kLogFs) {
    durable_[name] = volatile_.at(name);
  } else {
    durable_ = volatile_;
    synced_since_commit_ = 0;
  }
}

void ShadowFs::OnCreate(const std::string& name) {
  assert(volatile_.count(name) == 0);
  volatile_[name] = 0;
}

void ShadowFs::OnWrite(const std::string& name, uint64_t offset,
                       uint64_t length, bool sync) {
  auto it = volatile_.find(name);
  assert(it != volatile_.end());
  it->second = std::max(it->second, offset + length);
  if (contract_ == DurabilityContract::kLogFs) {
    if (sync) {
      Barrier(name);
    }
    return;
  }
  // ExtFs: sync bytes accumulate toward the batched journal commit.
  synced_since_commit_ += sync ? length : 0;
  if (sync && synced_since_commit_ >= commit_batch_bytes_) {
    Barrier(name);
  }
}

void ShadowFs::OnFsync(const std::string& name) { Barrier(name); }

void ShadowFs::OnUnlink(const std::string& name) {
  volatile_.erase(name);
  if (contract_ == DurabilityContract::kLogFs) {
    durable_.erase(name);  // dentry removal is durable immediately
  }
}

void ShadowFs::OnTruncate(const std::string& name, uint64_t new_size) {
  volatile_.at(name) = new_size;  // durable at the next barrier, both fs
}

void ShadowFs::OnRename(const std::string& from, const std::string& to) {
  auto node = volatile_.extract(from);
  assert(!node.empty());
  node.key() = to;
  volatile_.insert(std::move(node));
  if (contract_ == DurabilityContract::kLogFs) {
    // Durable immediately: the recovered file appears under the new name,
    // with its last-synced contents. Never-synced files have no entry.
    auto durable_node = durable_.extract(from);
    if (!durable_node.empty()) {
      durable_node.key() = to;
      durable_.insert(std::move(durable_node));
    }
  }
}

void ShadowFs::OnPowerCutDuringWrite(const std::string& name, uint64_t offset,
                                     uint64_t length, bool sync) {
  Namespace after_op = volatile_;
  auto it = after_op.find(name);
  assert(it != after_op.end());
  it->second = std::max(it->second, offset + length);
  if (contract_ == DurabilityContract::kLogFs) {
    if (sync) {
      Namespace candidate = durable_;
      candidate[name] = it->second;
      inflight_candidate_ = std::move(candidate);
    }
    return;
  }
  if (sync && synced_since_commit_ + length >= commit_batch_bytes_) {
    inflight_candidate_ = std::move(after_op);
  }
}

void ShadowFs::OnPowerCutDuringFsync(const std::string& name) {
  if (contract_ == DurabilityContract::kLogFs) {
    Namespace candidate = durable_;
    candidate[name] = volatile_.at(name);
    inflight_candidate_ = std::move(candidate);
  } else {
    inflight_candidate_ = volatile_;
  }
}

std::vector<ShadowFs::Namespace> ShadowFs::AdmissibleAfterRecovery() const {
  std::vector<Namespace> out = {durable_};
  if (inflight_candidate_.has_value() && *inflight_candidate_ != durable_) {
    out.push_back(*inflight_candidate_);
  }
  return out;
}

std::string FormatNamespace(const ShadowFs::Namespace& ns) {
  if (ns.empty()) {
    return "(empty)";
  }
  std::string out;
  for (const auto& [name, size] : ns) {
    if (!out.empty()) {
      out += ' ';
    }
    out += name + ":" + std::to_string(size);
  }
  return out;
}

}  // namespace flashsim
