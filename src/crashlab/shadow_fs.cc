#include "src/crashlab/shadow_fs.h"

#include <algorithm>
#include <cassert>

namespace flashsim {

ShadowFs::ShadowFs(DurabilityContract contract, uint64_t commit_batch_bytes)
    : contract_(contract), commit_batch_bytes_(commit_batch_bytes) {}

void ShadowFs::Barrier(const std::string& name) {
  if (contract_ == DurabilityContract::kExtFs) {
    durable_ = volatile_;
    synced_since_commit_ = 0;
  } else {
    durable_[name] = volatile_.at(name);  // per-file: LogFs node / CowFs pair
  }
}

void ShadowFs::OnCreate(const std::string& name) {
  assert(volatile_.count(name) == 0);
  volatile_[name] = 0;
  if (contract_ == DurabilityContract::kCowFs) {
    durable_[name] = 0;  // Create commits its metadata pair synchronously
  }
}

void ShadowFs::OnWrite(const std::string& name, uint64_t offset,
                       uint64_t length, bool sync) {
  auto it = volatile_.find(name);
  assert(it != volatile_.end());
  it->second = std::max(it->second, offset + length);
  if (contract_ != DurabilityContract::kExtFs) {
    if (sync) {
      Barrier(name);
    }
    return;
  }
  // ExtFs: sync bytes accumulate toward the batched journal commit.
  synced_since_commit_ += sync ? length : 0;
  if (sync && synced_since_commit_ >= commit_batch_bytes_) {
    Barrier(name);
  }
}

void ShadowFs::OnFsync(const std::string& name) { Barrier(name); }

void ShadowFs::OnUnlink(const std::string& name) {
  volatile_.erase(name);
  if (contract_ != DurabilityContract::kExtFs) {
    durable_.erase(name);  // dentry removal is durable immediately
  }
}

void ShadowFs::OnTruncate(const std::string& name, uint64_t new_size) {
  volatile_.at(name) = new_size;
  if (contract_ == DurabilityContract::kCowFs) {
    durable_[name] = new_size;  // Truncate commits the exact new size
  }
  // LogFs/ExtFs: durable at the next barrier.
}

void ShadowFs::OnRename(const std::string& from, const std::string& to) {
  auto node = volatile_.extract(from);
  assert(!node.empty());
  node.key() = to;
  volatile_.insert(std::move(node));
  if (contract_ != DurabilityContract::kExtFs) {
    // Durable immediately: the recovered file appears under the new name,
    // with its last-synced contents. Never-synced files have no entry.
    auto durable_node = durable_.extract(from);
    if (!durable_node.empty()) {
      durable_node.key() = to;
      durable_.insert(std::move(durable_node));
    }
  }
}

void ShadowFs::OnPowerCutDuringWrite(const std::string& name, uint64_t offset,
                                     uint64_t length, bool sync) {
  Namespace after_op = volatile_;
  auto it = after_op.find(name);
  assert(it != after_op.end());
  it->second = std::max(it->second, offset + length);
  if (contract_ != DurabilityContract::kExtFs) {
    if (sync) {
      Namespace candidate = durable_;
      candidate[name] = it->second;
      inflight_candidate_ = std::move(candidate);
    }
    return;
  }
  if (sync && synced_since_commit_ + length >= commit_batch_bytes_) {
    inflight_candidate_ = std::move(after_op);
  }
}

void ShadowFs::OnPowerCutDuringFsync(const std::string& name) {
  if (contract_ == DurabilityContract::kExtFs) {
    inflight_candidate_ = volatile_;
  } else {
    Namespace candidate = durable_;
    candidate[name] = volatile_.at(name);
    inflight_candidate_ = std::move(candidate);
  }
}

void ShadowFs::OnPowerCutDuringCreate(const std::string& name) {
  if (contract_ != DurabilityContract::kCowFs) {
    return;  // no barrier inside Create elsewhere — nothing could commit
  }
  Namespace candidate = durable_;
  candidate[name] = 0;
  inflight_candidate_ = std::move(candidate);
}

void ShadowFs::OnPowerCutDuringUnlink(const std::string& name) {
  if (contract_ != DurabilityContract::kCowFs) {
    return;
  }
  Namespace candidate = durable_;
  candidate.erase(name);
  inflight_candidate_ = std::move(candidate);
}

void ShadowFs::OnPowerCutDuringTruncate(const std::string& name,
                                        uint64_t new_size) {
  if (contract_ != DurabilityContract::kCowFs) {
    return;
  }
  Namespace candidate = durable_;
  candidate[name] = new_size;
  inflight_candidate_ = std::move(candidate);
}

void ShadowFs::OnPowerCutDuringRename(const std::string& from,
                                      const std::string& to) {
  if (contract_ != DurabilityContract::kCowFs) {
    return;
  }
  Namespace candidate = durable_;
  auto node = candidate.extract(from);
  if (!node.empty()) {
    node.key() = to;
    candidate.insert(std::move(node));
  }
  inflight_candidate_ = std::move(candidate);
}

std::vector<ShadowFs::Namespace> ShadowFs::AdmissibleAfterRecovery() const {
  std::vector<Namespace> out = {durable_};
  if (inflight_candidate_.has_value() && *inflight_candidate_ != durable_) {
    out.push_back(*inflight_candidate_);
  }
  return out;
}

std::string FormatNamespace(const ShadowFs::Namespace& ns) {
  if (ns.empty()) {
    return "(empty)";
  }
  std::string out;
  for (const auto& [name, size] : ns) {
    if (!out.empty()) {
      out += ' ';
    }
    out += name + ":" + std::to_string(size);
  }
  return out;
}

}  // namespace flashsim
