// ShadowFs: a host-side model of what a file system has *promised* to keep.
//
// The crash harness mirrors every acknowledged operation into a ShadowFs,
// which tracks two namespaces (name -> size):
//
//   volatile : the state the file system would report right now;
//   durable  : the state it has guaranteed to recover after a power cut,
//              per the file system's durability contract (DESIGN.md §11).
//
// Contracts mirrored here:
//   LogFs — a file becomes durable at each successful node-block write
//           (sync Write or Fsync), per file. Unlink and Rename act on the
//           durable record immediately (synchronous dentry updates).
//   ExtFs — the journal commit is a global barrier: Fsync always commits;
//           sync writes commit once the synced-byte batch threshold is
//           reached. Unlink/Truncate/Rename/Create are volatile until the
//           commit covering them.
//   CowFs — strictly stronger than both: sync Write/Fsync are per-file
//           barriers (as LogFs), and Create/Unlink/Truncate/Rename each
//           carry their own metadata-pair commit, so every namespace
//           operation is durable the moment it is acknowledged. The
//           admissible post-crash namespaces are exactly the committed
//           prefix, with zero repairs (DESIGN.md §16).
//
// A cut can land *inside* an operation that was never acknowledged; if that
// operation carried a durability barrier (a node write, a journal commit)
// the barrier may or may not have completed before the cut. The shadow
// therefore exposes a small set of admissible post-recovery namespaces: the
// durable one, plus — when the in-flight operation could have committed —
// the state including that operation. Recovery must land on exactly one.

#ifndef SRC_CRASHLAB_SHADOW_FS_H_
#define SRC_CRASHLAB_SHADOW_FS_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace flashsim {

enum class DurabilityContract { kLogFs, kExtFs, kCowFs };

class ShadowFs {
 public:
  // name -> file size; files absent from the map do not exist.
  using Namespace = std::map<std::string, uint64_t>;

  // `commit_batch_bytes` mirrors ExtFsConfig::journal_batch_bytes; ignored
  // for the LogFs contract.
  ShadowFs(DurabilityContract contract, uint64_t commit_batch_bytes);

  // Acknowledged operations: call only after the real op returned OK.
  void OnCreate(const std::string& name);
  void OnWrite(const std::string& name, uint64_t offset, uint64_t length,
               bool sync);
  void OnFsync(const std::string& name);
  void OnUnlink(const std::string& name);
  void OnTruncate(const std::string& name, uint64_t new_size);
  void OnRename(const std::string& from, const std::string& to);

  // The op in flight when the cut fired (it returned kPowerLoss and was
  // never acknowledged). Computes the second admissible namespace if the
  // op's durability barrier could have completed before the cut.
  void OnPowerCutDuringWrite(const std::string& name, uint64_t offset,
                             uint64_t length, bool sync);
  void OnPowerCutDuringFsync(const std::string& name);
  // Namespace operations carry their own commit only under the CowFs
  // contract; elsewhere they are pure RAM updates a cut cannot land inside,
  // so these are no-ops for kLogFs/kExtFs.
  void OnPowerCutDuringCreate(const std::string& name);
  void OnPowerCutDuringUnlink(const std::string& name);
  void OnPowerCutDuringTruncate(const std::string& name, uint64_t new_size);
  void OnPowerCutDuringRename(const std::string& from, const std::string& to);

  const Namespace& durable() const { return durable_; }
  const Namespace& volatile_ns() const { return volatile_; }

  // All namespaces recovery is allowed to land on. Always contains
  // durable(); one more entry when an in-flight barrier was possible.
  std::vector<Namespace> AdmissibleAfterRecovery() const;

 private:
  // Durability barrier for `name` having size per `volatile_`: per-file for
  // LogFs, whole-namespace for ExtFs.
  void Barrier(const std::string& name);

  DurabilityContract contract_;
  uint64_t commit_batch_bytes_;
  uint64_t synced_since_commit_ = 0;  // ExtFs batching mirror
  Namespace durable_;
  Namespace volatile_;
  std::optional<Namespace> inflight_candidate_;
};

// "a:4096 b:0" — for failure messages.
std::string FormatNamespace(const ShadowFs::Namespace& ns);

}  // namespace flashsim

#endif  // SRC_CRASHLAB_SHADOW_FS_H_
