#include "src/crashlab/crash_harness.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "src/crashlab/shadow_fs.h"
#include "src/device/flash_device.h"
#include "src/fs/cowfs.h"
#include "src/fs/extfs.h"
#include "src/fs/logfs.h"
#include "src/ftl/hybrid_ftl.h"
#include "src/ftl/page_map_ftl.h"
#include "src/nand/config.h"
#include "src/simcore/fault_plan.h"
#include "src/simcore/rng.h"

namespace flashsim {
namespace {

// Harness sizing: a 16 MiB pool keeps runs fast while still cycling the
// LogFs cleaner and the ExtFs journal ring within a few hundred ops; the
// endurance ratings are set far above anything a run can consume, so wear
// never confounds the durability properties (a page stranded in a
// wear-retired block is a different failure mode, covered by FTL tests).
constexpr uint64_t kMaxFileBytes = 1 * 1024 * 1024;
constexpr uint32_t kBlockBytes = 4096;
constexpr uint64_t kExtFsBatchBytes = 256 * 1024;

const char* const kNamePool[] = {"f0", "f1", "f2", "f3", "f4", "f5",
                                 "g0", "g1", "g2", "g3"};

std::unique_ptr<FlashDevice> MakeCrashDevice(FtlKind kind, uint64_t seed) {
  NandChipConfig mlc = MakeMlcConfig();
  mlc.name = "crashlab-mlc";
  mlc.channels = 1;
  mlc.dies_per_channel = 2;
  mlc.blocks_per_die = 16;
  mlc.pages_per_block = 128;
  mlc.page_size_bytes = kBlockBytes;
  mlc.rated_pe_cycles = 1000000;

  FtlConfig ftl;
  ftl.over_provisioning = 0.10;
  ftl.spare_blocks = 4;
  ftl.gc_free_block_watermark = 3;
  ftl.health_rated_pe = 1000000;
  ftl.wear_level_threshold = 1000000;  // wear leveling off: endurance is moot

  FlashDeviceConfig dev;
  dev.name = "crashlab-device";
  dev.perf.per_request_overhead = SimDuration::Micros(100);
  dev.perf.bus_mib_per_sec = 100.0;
  dev.perf.effective_parallelism = 4;

  std::unique_ptr<FtlInterface> impl;
  if (kind == FtlKind::kPageMap) {
    impl = std::make_unique<PageMapFtl>(mlc, ftl, seed);
  } else {
    NandChipConfig slc = MakeSlcConfig();
    slc.name = "crashlab-slc";
    slc.channels = 1;
    slc.dies_per_channel = 1;
    slc.blocks_per_die = 8;
    slc.pages_per_block = 128;
    slc.page_size_bytes = kBlockBytes;
    slc.rated_pe_cycles = 1000000;
    HybridConfig hybrid;
    hybrid.cache_blocks = 8;
    hybrid.cache_free_watermark = 6;
    hybrid.merge_utilization_threshold = 0.80;
    hybrid.gc_pressure_ratio = 0.5;
    hybrid.mlc_mode_wear_weight = 8;
    hybrid.health_rated_pe_a = 1000000;
    impl = std::make_unique<HybridFtl>(mlc, ftl, slc, hybrid, seed);
  }
  return std::make_unique<FlashDevice>(std::move(dev), std::move(impl));
}

std::unique_ptr<Filesystem> MakeFs(FsKind kind, FlashDevice& device) {
  if (kind == FsKind::kLogFs) {
    LogFsConfig cfg;
    cfg.blocks_per_segment = 128;  // ~28 segments: the cleaner cycles
    return std::make_unique<LogFs>(device, cfg);
  }
  if (kind == FsKind::kCowFs) {
    return std::make_unique<CowFs>(device);
  }
  ExtFsConfig cfg;
  cfg.journal_blocks = 1024;  // 4 MiB ring on the 16 MiB device
  cfg.journal_batch_bytes = kExtFsBatchBytes;
  return std::make_unique<ExtFs>(device, cfg);
}

enum class Action { kCreate, kWriteSync, kWriteAsync, kFsync, kRead, kTruncate, kRename, kUnlink };

Action PickAction(CrashWorkload workload, Rng& rng) {
  const uint64_t w = rng.UniformU64(100);
  switch (workload) {
    case CrashWorkload::kMixed:
      if (w < 8) return Action::kCreate;
      if (w < 28) return Action::kWriteSync;
      if (w < 50) return Action::kWriteAsync;
      if (w < 60) return Action::kFsync;
      if (w < 72) return Action::kRead;
      if (w < 80) return Action::kTruncate;
      if (w < 86) return Action::kRename;
      return Action::kUnlink;
    case CrashWorkload::kOverwrite:
      if (w < 4) return Action::kCreate;
      if (w < 54) return Action::kWriteSync;
      if (w < 79) return Action::kWriteAsync;
      if (w < 87) return Action::kFsync;
      return Action::kRead;
    case CrashWorkload::kSyncHeavy:
    default:
      if (w < 8) return Action::kCreate;
      if (w < 54) return Action::kWriteSync;
      if (w < 76) return Action::kFsync;
      if (w < 84) return Action::kRead;
      return Action::kUnlink;
  }
}

std::vector<std::string> ExistingNames(const ShadowFs& shadow) {
  std::vector<std::string> names;
  names.reserve(shadow.volatile_ns().size());
  for (const auto& [name, size] : shadow.volatile_ns()) {
    (void)size;
    names.push_back(name);
  }
  return names;
}

std::vector<std::string> FreeNames(const ShadowFs& shadow) {
  std::vector<std::string> names;
  for (const char* name : kNamePool) {
    if (shadow.volatile_ns().count(name) == 0) {
      names.push_back(name);
    }
  }
  return names;
}

}  // namespace

const char* FtlKindName(FtlKind kind) {
  return kind == FtlKind::kPageMap ? "pagemap" : "hybrid";
}
const char* FsKindName(FsKind kind) {
  switch (kind) {
    case FsKind::kLogFs: return "logfs";
    case FsKind::kCowFs: return "cowfs";
    case FsKind::kExtFs:
    default: return "extfs";
  }
}
const char* CrashWorkloadName(CrashWorkload workload) {
  switch (workload) {
    case CrashWorkload::kMixed: return "mixed";
    case CrashWorkload::kOverwrite: return "overwrite";
    case CrashWorkload::kSyncHeavy:
    default: return "syncheavy";
  }
}

bool ParseFtlKind(const std::string& s, FtlKind* out) {
  if (s == "pagemap") { *out = FtlKind::kPageMap; return true; }
  if (s == "hybrid") { *out = FtlKind::kHybrid; return true; }
  return false;
}
bool ParseFsKind(const std::string& s, FsKind* out) {
  if (s == "logfs") { *out = FsKind::kLogFs; return true; }
  if (s == "extfs") { *out = FsKind::kExtFs; return true; }
  if (s == "cowfs") { *out = FsKind::kCowFs; return true; }
  return false;
}
bool ParseCrashWorkload(const std::string& s, CrashWorkload* out) {
  if (s == "mixed") { *out = CrashWorkload::kMixed; return true; }
  if (s == "overwrite") { *out = CrashWorkload::kOverwrite; return true; }
  if (s == "syncheavy") { *out = CrashWorkload::kSyncHeavy; return true; }
  return false;
}

CrashRunResult RunCrashScenario(const CrashSpec& spec) {
  CrashRunResult result;

  std::unique_ptr<FlashDevice> device = MakeCrashDevice(spec.ftl, spec.seed);
  if (spec.channels > 0 || spec.queue_depth > 0) {
    device->ConfigureQueue(spec.channels, spec.queue_depth,
                           /*force_event_engine=*/false);
  }
  std::unique_ptr<Filesystem> fs = MakeFs(spec.fs, *device);
  const DurabilityContract contract =
      spec.fs == FsKind::kLogFs   ? DurabilityContract::kLogFs
      : spec.fs == FsKind::kCowFs ? DurabilityContract::kCowFs
                                  : DurabilityContract::kExtFs;
  ShadowFs shadow(contract, kExtFsBatchBytes);

  PowerRail rail;
  rail.AttachClock(&device->clock());
  device->AttachPowerRail(&rail);
  if (!spec.no_cut) {
    const FaultPlan plan =
        spec.cut_op > 0
            ? FaultPlan::AtOpCount(spec.cut_op)
            : FaultPlan::RandomOpInWindow(DeriveSeed(spec.seed, 0xFA17),
                                          1, std::max<uint64_t>(1, spec.cut_window));
    result.resolved_cut_op = plan.cut_after_ops;
    rail.Arm(plan);
  }
  result.repro = std::string("crash_soak --ftl=") + FtlKindName(spec.ftl) +
                 " --fs=" + FsKindName(spec.fs) +
                 " --workload=" + CrashWorkloadName(spec.workload) +
                 " --seed=" + std::to_string(spec.seed) +
                 " --ops=" + std::to_string(spec.ops) +
                 (spec.no_cut ? std::string(" --no-cut")
                              : " --cut-op=" + std::to_string(result.resolved_cut_op));
  if (spec.channels > 0) {
    result.repro += " --channels=" + std::to_string(spec.channels);
  }
  if (spec.queue_depth > 0) {
    result.repro += " --queue-depth=" + std::to_string(spec.queue_depth);
  }

  // --- Workload, mirrored into the shadow op by op -------------------------
  Rng rng(DeriveSeed(spec.seed, 1));
  const auto unexpected = [&](const char* what, const Status& st) {
    result.failure = std::string("workload ") + what +
                     " failed unexpectedly: " + st.ToString();
  };

  for (uint64_t i = 0; i < spec.ops && !result.cut_fired; ++i) {
    Action action = PickAction(spec.workload, rng);
    std::vector<std::string> existing = ExistingNames(shadow);
    if (existing.empty() && action != Action::kCreate) {
      action = Action::kCreate;
    }
    if (action == Action::kCreate && FreeNames(shadow).empty()) {
      action = Action::kWriteAsync;
    }

    switch (action) {
      case Action::kCreate: {
        std::vector<std::string> free = FreeNames(shadow);
        const std::string name = free[rng.UniformU64(free.size())];
        const Status st = fs->Create(name);
        if (!st.ok()) {
          // CowFs commits namespace ops synchronously, so a cut can land
          // inside them (the other file systems do no I/O here).
          if (st.code() == StatusCode::kPowerLoss) {
            shadow.OnPowerCutDuringCreate(name);
            result.cut_fired = true;
            break;
          }
          unexpected("create", st);
          return result;
        }
        shadow.OnCreate(name);
        break;
      }
      case Action::kWriteSync:
      case Action::kWriteAsync: {
        const bool sync = action == Action::kWriteSync;
        const std::string name = existing[rng.UniformU64(existing.size())];
        const uint64_t size = shadow.volatile_ns().at(name);
        // Offsets never exceed the current size, so files have no holes and
        // a full readback after recovery is always well-defined.
        uint64_t offset =
            spec.workload == CrashWorkload::kSyncHeavy
                ? size
                : (rng.UniformU64(size + 1) / kBlockBytes) * kBlockBytes;
        offset = std::min<uint64_t>(offset, kMaxFileBytes - kBlockBytes);
        uint64_t length = (1 + rng.UniformU64(16)) * kBlockBytes;
        length = std::min(length, kMaxFileBytes - offset);
        const Result<SimDuration> r = fs->Write(name, offset, length, sync);
        if (!r.ok()) {
          if (r.status().code() == StatusCode::kPowerLoss) {
            shadow.OnPowerCutDuringWrite(name, offset, length, sync);
            result.cut_fired = true;
            break;
          }
          unexpected("write", r.status());
          return result;
        }
        shadow.OnWrite(name, offset, length, sync);
        break;
      }
      case Action::kFsync: {
        const std::string name = existing[rng.UniformU64(existing.size())];
        const Result<SimDuration> r = fs->Fsync(name);
        if (!r.ok()) {
          if (r.status().code() == StatusCode::kPowerLoss) {
            shadow.OnPowerCutDuringFsync(name);
            result.cut_fired = true;
            break;
          }
          unexpected("fsync", r.status());
          return result;
        }
        shadow.OnFsync(name);
        break;
      }
      case Action::kRead: {
        const std::string name = existing[rng.UniformU64(existing.size())];
        const uint64_t size = shadow.volatile_ns().at(name);
        if (size == 0) {
          break;
        }
        const uint64_t offset = rng.UniformU64(size);
        const uint64_t length =
            std::max<uint64_t>(1, std::min<uint64_t>(size - offset, 16 * kBlockBytes));
        const Result<SimDuration> r = fs->Read(name, offset, length);
        if (!r.ok()) {
          unexpected("read", r.status());
          return result;
        }
        break;
      }
      case Action::kTruncate: {
        const std::string name = existing[rng.UniformU64(existing.size())];
        const uint64_t size = shadow.volatile_ns().at(name);
        const uint64_t new_size = rng.UniformU64(size + 1);  // shrink only
        const Status st = fs->Truncate(name, new_size);
        if (!st.ok()) {
          if (st.code() == StatusCode::kPowerLoss) {
            shadow.OnPowerCutDuringTruncate(name, new_size);
            result.cut_fired = true;
            break;
          }
          unexpected("truncate", st);
          return result;
        }
        shadow.OnTruncate(name, new_size);
        break;
      }
      case Action::kRename: {
        std::vector<std::string> free = FreeNames(shadow);
        const std::string from = existing[rng.UniformU64(existing.size())];
        if (free.empty()) {
          break;
        }
        const std::string to = free[rng.UniformU64(free.size())];
        const Status st = fs->Rename(from, to);
        if (!st.ok()) {
          if (st.code() == StatusCode::kPowerLoss) {
            shadow.OnPowerCutDuringRename(from, to);
            result.cut_fired = true;
            break;
          }
          unexpected("rename", st);
          return result;
        }
        shadow.OnRename(from, to);
        break;
      }
      case Action::kUnlink: {
        const std::string name = existing[rng.UniformU64(existing.size())];
        const Status st = fs->Unlink(name);
        if (!st.ok()) {
          if (st.code() == StatusCode::kPowerLoss) {
            shadow.OnPowerCutDuringUnlink(name);
            result.cut_fired = true;
            break;
          }
          unexpected("unlink", st);
          return result;
        }
        shadow.OnUnlink(name);
        break;
      }
    }
    if (!result.cut_fired) {
      ++result.ops_acknowledged;
    }
  }

  // --- Shutdown: clean (fsync everything) or crashed -----------------------
  if (!result.cut_fired) {
    rail.Disarm();
    for (const std::string& name : ExistingNames(shadow)) {
      const Result<SimDuration> r = fs->Fsync(name);
      if (!r.ok()) {
        unexpected("shutdown fsync", r.status());
        return result;
      }
      shadow.OnFsync(name);
    }
  }

  const FtlStats wear_pre = device->ftl().Stats();
  const HealthReport health_pre = device->ftl().Health();

  // --- Recovery ------------------------------------------------------------
  rail.Restore();
  const Result<RecoveryReport> dev_rep = device->Remount();
  if (!dev_rep.ok()) {
    result.failure = "FTL mount failed: " + dev_rep.status().ToString();
    return result;
  }
  result.report = dev_rep.value();
  const Result<RecoveryReport> fs_rep = fs->Mount();
  if (!fs_rep.ok()) {
    result.failure = "fs mount failed: " + fs_rep.status().ToString();
    return result;
  }
  result.report.Merge(fs_rep.value());

  // CowFs's contract is zero-repair by construction: every on-media state
  // is a valid committed prefix, so a mount that rolled anything back,
  // reclaimed a block, or orphaned a file is a bug, not recovery.
  if (spec.fs == FsKind::kCowFs) {
    const RecoveryReport& fsr = fs_rep.value();
    if (fsr.fsck_repairs != 0 || fsr.orphan_files != 0 || fsr.orphan_blocks != 0) {
      result.failure = "cowfs mount reported repairs (fsck_repairs=" +
                       std::to_string(fsr.fsck_repairs) + " orphan_files=" +
                       std::to_string(fsr.orphan_files) + " orphan_blocks=" +
                       std::to_string(fsr.orphan_blocks) +
                       "); the zero-repair contract forbids all three";
      return result;
    }
  }

  // (b) integrity: invariants after mount.
  const Status inv = device->mutable_ftl().ValidateInvariants();
  if (!inv.ok()) {
    result.failure = "post-mount FTL invariants violated: " + inv.ToString();
    return result;
  }

  // (c) wear accounting must never move backwards across a crash.
  const FtlStats wear_post = device->ftl().Stats();
  const HealthReport health_post = device->ftl().Health();
  if (wear_post.erases < wear_pre.erases ||
      wear_post.nand_pages_written < wear_pre.nand_pages_written ||
      health_post.avg_pe_a < health_pre.avg_pe_a ||
      health_post.spare_blocks_used < health_pre.spare_blocks_used) {
    result.failure = "wear accounting moved backwards across remount (erases " +
                     std::to_string(wear_pre.erases) + " -> " +
                     std::to_string(wear_post.erases) + ")";
    return result;
  }

  // (a) durability: the recovered namespace must be admissible...
  ShadowFs::Namespace recovered;
  for (const std::string& name : fs->List()) {
    const Result<uint64_t> size = fs->FileSize(name);
    if (!size.ok()) {
      result.failure = "recovered file has no size: " + name;
      return result;
    }
    recovered[name] = size.value();
  }
  const std::vector<ShadowFs::Namespace> admissible = shadow.AdmissibleAfterRecovery();
  bool matched = false;
  for (const ShadowFs::Namespace& ns : admissible) {
    matched = matched || ns == recovered;
  }
  if (!matched) {
    result.failure = "recovered namespace inadmissible: got {" +
                     FormatNamespace(recovered) + "} want {" +
                     FormatNamespace(admissible[0]) + "}";
    if (admissible.size() > 1) {
      result.failure += " or {" + FormatNamespace(admissible[1]) + "}";
    }
    return result;
  }

  // ...and every acknowledged byte must read back.
  for (const auto& [name, size] : recovered) {
    if (size == 0) {
      continue;
    }
    const Result<SimDuration> r = fs->Read(name, 0, size);
    if (!r.ok()) {
      result.failure = "acknowledged data lost: full readback of " + name +
                       " (" + std::to_string(size) +
                       " bytes) failed: " + r.status().ToString();
      return result;
    }
  }

  // (b) integrity: remounting again must reproduce the identical state.
  if (!device->Remount().ok() || !fs->Mount().ok()) {
    result.failure = "second remount failed";
    return result;
  }
  ShadowFs::Namespace recovered_again;
  for (const std::string& name : fs->List()) {
    recovered_again[name] = fs->FileSize(name).value();
  }
  if (recovered_again != recovered) {
    result.failure = "remount is not idempotent: {" + FormatNamespace(recovered) +
                     "} then {" + FormatNamespace(recovered_again) + "}";
    return result;
  }

  // (b) integrity: the device stays usable after recovery.
  const char* post_name = "zz-crashlab-post";
  if (!fs->Create(post_name).ok() ||
      !fs->Write(post_name, 0, 16 * kBlockBytes, /*sync=*/true).ok() ||
      !fs->Fsync(post_name).ok() ||
      !fs->Read(post_name, 0, 16 * kBlockBytes).ok()) {
    result.failure = "device unusable after recovery (create/write/fsync/read)";
    return result;
  }

  result.ok = true;
  return result;
}

std::string RecoveryReportJson(const RecoveryReport& rep) {
  std::string out = "{";
  const auto field = [&out](const char* key, uint64_t value, bool last = false) {
    out += std::string("\"") + key + "\": " + std::to_string(value) + (last ? "" : ", ");
  };
  field("scanned_pages", rep.scanned_pages);
  field("torn_pages_discarded", rep.torn_pages_discarded);
  field("stale_pages_ignored", rep.stale_pages_ignored);
  field("mapped_pages_recovered", rep.mapped_pages_recovered);
  field("torn_erase_blocks", rep.torn_erase_blocks);
  field("blocks_retired", rep.blocks_retired);
  field("merges_replayed", rep.merges_replayed);
  field("files_recovered", rep.files_recovered);
  field("segments_replayed", rep.segments_replayed);
  field("journal_commits_scanned", rep.journal_commits_scanned);
  field("orphan_files", rep.orphan_files);
  field("orphan_blocks", rep.orphan_blocks);
  field("fsck_repairs", rep.fsck_repairs, /*last=*/true);
  out += "}";
  return out;
}

}  // namespace flashsim
