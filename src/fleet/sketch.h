// Streaming, deterministically-mergeable statistic sketches for fleet-scale
// aggregation (DESIGN.md §13).
//
// A fleet campaign folds millions of per-device observations into a few
// kilobytes of state per device model. Three sketches cover the report's
// needs:
//
//   MergeStats   — count/sum/min/max (mean derived), O(1) per sample.
//   WearDigest   — t-digest-style percentile sketch over doubles: bounded
//                  centroid count, raw samples buffered and compressed by a
//                  sorted greedy merge pass.
//   DayHistogram — sparse integer-bin histogram (survival curves, binned by
//                  full-device-equivalent day).
//
// Determinism contract: every sketch is a pure function of its observation
// sequence, and the fleet runner feeds observations in a thread-count
// independent order (per-shard sequential, shards folded in index order), so
// fleet reports are byte-identical at any thread count. To keep checkpointed
// runs bit-exact with uninterrupted ones, Save() serializes the sketch
// *as-is* — including WearDigest's uncompressed sample buffer — rather than
// normalizing it; restoring therefore reproduces the exact in-memory state
// and the same downstream compression trajectory.

#ifndef SRC_FLEET_SKETCH_H_
#define SRC_FLEET_SKETCH_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/simcore/snapshot.h"
#include "src/simcore/status.h"

namespace flashsim {

// Count/sum/min/max accumulator. Unlike RunningStats (Welford), merging two
// MergeStats is exact and associative, which the shard fold relies on.
class MergeStats {
 public:
  void Add(double v);
  void Merge(const MergeStats& other);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double Mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  void Save(SnapshotWriter& w) const;
  Status Load(SnapshotReader& r);

 private:
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Mergeable percentile sketch (a simplified merging t-digest: Dunning &
// Ertl's buffer-and-merge variant with a q(1-q) centroid size bound). Memory
// is O(compression + buffer), independent of sample count; accuracy is best
// in the tails, which is what brick-day percentiles care about.
class WearDigest {
 public:
  WearDigest() = default;
  explicit WearDigest(uint32_t compression);

  void Add(double v);
  void Merge(const WearDigest& other);

  // Interpolated quantile estimate, q in [0, 1]. Returns 0 when empty.
  // Const and non-destructive: works on a temporary compacted view so
  // report-time queries cannot perturb checkpoint trajectories.
  double Quantile(double q) const;

  uint64_t count() const { return count_; }
  double Mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  void Save(SnapshotWriter& w) const;
  Status Load(SnapshotReader& r);

 private:
  struct Centroid {
    double mean = 0.0;
    double weight = 0.0;
  };

  void Compress();
  std::vector<Centroid> Compacted() const;

  uint32_t compression_ = 128;
  std::vector<Centroid> centroids_;  // sorted by mean after Compress()
  std::vector<double> buffer_;       // raw weight-1 samples
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Sparse histogram over non-negative integer bins. The fleet report uses it
// for survival curves: bin = full-device-equivalent day of a brick event.
class DayHistogram {
 public:
  void Add(uint32_t bin, uint64_t n = 1);
  void Merge(const DayHistogram& other);

  const std::map<uint32_t, uint64_t>& bins() const { return bins_; }
  uint64_t total() const { return total_; }

  void Save(SnapshotWriter& w) const;
  Status Load(SnapshotReader& r);

 private:
  std::map<uint32_t, uint64_t> bins_;
  uint64_t total_ = 0;
};

}  // namespace flashsim

#endif  // SRC_FLEET_SKETCH_H_
