// Parked-device blob packing (DESIGN.md §13/§14).
//
// Between slices, a fleet device exists only as its serialized FSNP snapshot
// (device + workload generator state). Measured worn-device snapshots are
// ~70-75% zero bytes — empty mapping-table tails, unwritten plane metadata —
// so a byte-exact zero-run codec shrinks parked state ~3-4x for a linear
// scan's cost, without eliding any section (eliding would break the
// bit-exact park/unpark contract).
//
// Two layers live here:
//
//  * The raw zero-run codec (PackZeroRuns/UnpackZeroRuns): u64 raw size,
//    then alternating LEB128-length runs starting with a literal run:
//    (literal_len, literal bytes, zero_len)*. Unpack validates the recorded
//    size, so truncated or corrupt blobs fail loudly. The scanner walks the
//    input a uint64 word at a time.
//
//  * Park blobs (DESIGN.md §14): a one-byte format tag in front of a
//    zero-run stream. kParkFull is the tagged PR6 format; kParkFullT8 and
//    kParkDelta first pass the image through an 8-lane byte transpose
//    (grouping byte k of every u64 together), which turns the
//    low-bytes-changed / high-bytes-zero structure of wear planes into long
//    zero runs. kParkDelta packs the transposed XOR against a caller-held
//    base snapshot; applying it back onto that base is bit-exact.

#ifndef SRC_FLEET_PARK_H_
#define SRC_FLEET_PARK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/simcore/scratch.h"
#include "src/simcore/status.h"

namespace flashsim {

// Largest raw image a park blob may claim to decode to. A corrupt size
// header would otherwise drive a near-2^64 allocation before any data
// validation could reject the blob; real parked snapshots are a few MiB.
inline constexpr size_t kParkMaxRawBytes = size_t{1} << 30;

// Raw zero-run codec. The Into variants reuse `out`'s capacity (steady-state
// allocation-free); the value-returning forms are convenience wrappers.
// `max_raw_size` bounds the decoded size a blob may claim (see above).
void PackZeroRunsInto(const uint8_t* raw, size_t size,
                      std::vector<uint8_t>* out);
Status UnpackZeroRunsInto(const uint8_t* packed, size_t size,
                          std::vector<uint8_t>* out,
                          size_t max_raw_size = kParkMaxRawBytes);
std::vector<uint8_t> PackZeroRuns(const std::vector<uint8_t>& raw);
Status UnpackZeroRuns(const std::vector<uint8_t>& packed,
                      std::vector<uint8_t>* out);

// Park blob format tags (first byte of every park blob).
enum ParkFormat : uint8_t {
  kParkFull = 0x01,    // zero-run(raw) — the PR6 layout behind a tag
  kParkFullT8 = 0x02,  // zero-run(transpose8(raw)) — rebase bases
  kParkDelta = 0x03,   // zero-run(transpose8(raw XOR base))
};

// Reusable intermediates for the park codec (one per worker thread).
struct ParkScratch {
  ScratchBuffer<uint8_t> image;  // transposed (or transposed-XOR) image
  ScratchBuffer<uint8_t> xored;  // untransposed XOR (unequal-size fallback)

  uint64_t grow_count() const {
    return image.grow_count() + xored.grow_count();
  }
};

// Packs `raw` as a self-contained park blob (kParkFull or, with
// `transpose` set, kParkFullT8).
void ParkPackFull(const std::vector<uint8_t>& raw, bool transpose,
                  ParkScratch* scratch, std::vector<uint8_t>* out);

// Packs `cur` as a kParkDelta blob against `base`. Unparking requires the
// exact same base bytes.
void ParkPackDelta(const std::vector<uint8_t>& cur,
                   const std::vector<uint8_t>& base, ParkScratch* scratch,
                   std::vector<uint8_t>* out);

// Unpacks a self-contained blob (kParkFull / kParkFullT8) into `raw`.
Status ParkUnpackFull(const std::vector<uint8_t>& blob, ParkScratch* scratch,
                      std::vector<uint8_t>* raw);

// Applies a kParkDelta blob onto `raw` (which must hold the base it was
// packed against); on return `raw` holds the reconstructed snapshot.
Status ParkApplyDelta(const std::vector<uint8_t>& blob, ParkScratch* scratch,
                      std::vector<uint8_t>* raw);

// Unparks a base blob plus its ordered delta chain in one pass. When the
// base is kParkFullT8 and the deltas are size-stable (the common case), the
// chain folds in transposed space — each delta touches only its literal
// bytes, with a single untranspose at the end — instead of paying two
// full-image passes per link. Falls back to ParkApplyDelta per link when a
// snapshot resize interrupts the run. Equivalent to ParkUnpackFull(base)
// followed by ParkApplyDelta over `chain` in order.
Status ParkUnpackChain(const std::vector<uint8_t>& base,
                       const std::vector<std::vector<uint8_t>>& chain,
                       ParkScratch* scratch, std::vector<uint8_t>* raw);

}  // namespace flashsim

#endif  // SRC_FLEET_PARK_H_
