// Parked-device blob packing (DESIGN.md §13).
//
// Between slices, a fleet device exists only as its serialized FSNP snapshot
// (device + workload generator state). Measured worn-device snapshots are
// ~70-75% zero bytes — empty mapping-table tails, unwritten plane metadata —
// so a byte-exact zero-run codec shrinks parked state ~3-4x for a linear
// scan's cost, without eliding any section (eliding would break the
// bit-exact park/unpark contract).
//
// Format: u64 raw size, then alternating LEB128-length runs starting with a
// literal run: (literal_len, literal bytes, zero_len)*. Unpack validates the
// recorded size, so truncated or corrupt blobs fail loudly.

#ifndef SRC_FLEET_PARK_H_
#define SRC_FLEET_PARK_H_

#include <cstdint>
#include <vector>

#include "src/simcore/status.h"

namespace flashsim {

std::vector<uint8_t> PackZeroRuns(const std::vector<uint8_t>& raw);
Status UnpackZeroRuns(const std::vector<uint8_t>& packed,
                      std::vector<uint8_t>* out);

}  // namespace flashsim

#endif  // SRC_FLEET_PARK_H_
