#include "src/fleet/shard.h"

#include <algorithm>

#include "src/device/flash_device.h"
#include "src/fleet/park.h"
#include "src/simcore/rng.h"
#include "src/simcore/units.h"
#include "src/workload/generators.h"

namespace flashsim {

namespace {

constexpr uint32_t kShardTag = SnapshotTag("SHRD");

// Per-device byte cap when the spec sets none; matches the campaign runner's
// default wear cap so unbounded streams still terminate.
constexpr uint64_t kDefaultDeviceCap = 1 * kTiB;

constexpr uint64_t kPrefillChunk = 4 * kMiB;

Status PrefillDevice(FlashDevice& device, uint64_t start, uint64_t length) {
  const uint64_t end = std::min(start + length, device.CapacityBytes());
  for (uint64_t off = start; off < end; off += kPrefillChunk) {
    const IoRequest fill{IoKind::kWrite, off, std::min(kPrefillChunk, end - off)};
    Result<IoCompletion> done = device.Submit(fill);
    if (!done.ok()) {
      return done.status();
    }
  }
  return Status::Ok();
}

}  // namespace

FleetDeviceRef FleetDeviceAt(const CampaignSpec& spec, const FleetSpec& fleet,
                             uint64_t index) {
  FleetDeviceRef ref;
  ref.index = index;
  const uint64_t n_models = std::max<size_t>(1, fleet.devices.size());
  const uint64_t n_workloads = std::max<size_t>(1, fleet.workloads.size());
  const uint64_t combo = index % (n_models * n_workloads);
  ref.model_index = static_cast<uint32_t>(combo % n_models);
  if (ref.model_index < fleet.devices.size()) {
    ref.model = FindCampaignDevice(fleet.devices[ref.model_index]);
  }
  const uint64_t workload_index = combo / n_models;
  if (workload_index < fleet.workloads.size()) {
    const SyntheticWorkloadConfig* w =
        spec.FindWorkload(fleet.workloads[workload_index]);
    if (w != nullptr) {
      ref.workload = *w;
    }
  }
  ref.seed = DeriveDeviceSeed(spec.seed, fleet.index, index);
  return ref;
}

uint64_t FleetShardCount(const FleetSpec& fleet) {
  if (fleet.device_count == 0 || fleet.shard_devices == 0) {
    return 0;
  }
  return (fleet.device_count + fleet.shard_devices - 1) / fleet.shard_devices;
}

FleetShard::FleetShard(const CampaignSpec* spec, const FleetSpec* fleet)
    : spec_(spec), fleet_(fleet) {}

void FleetShard::InitFresh(uint64_t shard_index) {
  shard_index_ = shard_index;
  first_device_ = shard_index * fleet_->shard_devices;
  const uint64_t end =
      std::min(first_device_ + fleet_->shard_devices, fleet_->device_count);
  devices_.assign(end > first_device_ ? end - first_device_ : 0,
                  FleetDeviceProgress{});
  cursor_ = 0;
  remaining_ = devices_.size();
  acc_.Init(fleet_->devices, fleet_->survival_bin_hours);
}

Status FleetShard::RunSlice() {
  if (remaining_ == 0 || devices_.empty()) {
    return Status::Ok();
  }
  uint64_t pos = cursor_ % devices_.size();
  while (devices_[pos].phase == FleetDeviceProgress::kDone) {
    pos = (pos + 1) % devices_.size();
  }
  const Status s = DriveDeviceSlice(pos);
  cursor_ = (pos + 1) % devices_.size();
  return s;
}

Status FleetShard::DriveDeviceSlice(uint64_t position) {
  FleetDeviceProgress& p = devices_[position];
  const FleetDeviceRef ref =
      FleetDeviceAt(*spec_, *fleet_, first_device_ + position);
  if (ref.model == nullptr) {
    return NotFoundError("fleet device has unknown model slug");
  }

  std::unique_ptr<FlashDevice> device =
      ref.model->make(fleet_->scale, DeriveSeed(ref.seed, 0));
  SyntheticWorkload workload(ref.workload);
  const uint64_t driver_seed = DeriveSeed(ref.seed, 1);
  const uint64_t target = device->CapacityBytes();

  if (p.phase == FleetDeviceProgress::kUnborn) {
    workload.Reset(DeriveSeed(driver_seed, 0));
    if (workload.MayRead()) {
      uint64_t start = 0;
      uint64_t length = 0;
      workload.TouchRange(target, &start, &length);
      FLASHSIM_RETURN_IF_ERROR(PrefillDevice(*device, start, length));
    }
  } else {
    std::vector<uint8_t> raw;
    FLASHSIM_RETURN_IF_ERROR(UnpackZeroRuns(p.parked, &raw));
    SnapshotReader r(std::move(raw));
    FLASHSIM_RETURN_IF_ERROR(device->LoadState(r));
    FLASHSIM_RETURN_IF_ERROR(workload.LoadState(r));
  }

  const uint64_t poll_bytes = std::max<uint64_t>(64 * kKiB, target / 64);
  const uint64_t cap =
      fleet_->max_device_bytes > 0 ? fleet_->max_device_bytes : kDefaultDeviceCap;
  std::vector<IoRequest> pending;
  pending.reserve(fleet_->batch_requests);
  bool done = false;
  bool bricked = false;
  bool reached = false;

  // Folds a SubmitBatch flush into the progress counters; false = the drive
  // must stop (wear-out or hard failure).
  auto flush = [&]() -> bool {
    if (pending.empty()) {
      return true;
    }
    const BatchCompletion dc =
        device->SubmitBatch(pending.data(), pending.size());
    for (size_t i = 0; i < dc.requests_completed; ++i) {
      if (pending[i].kind == IoKind::kRead) {
        p.bytes_read += pending[i].length;
      } else if (pending[i].kind == IoKind::kWrite) {
        p.bytes_written += pending[i].length;
      }
    }
    p.requests += dc.requests_completed;
    pending.clear();
    if (!dc.status.ok()) {
      bricked = dc.status.code() == StatusCode::kUnavailable;
      return false;
    }
    return true;
  };
  auto poll = [&]() -> uint32_t {
    const HealthReport h = device->QueryHealth();
    const uint32_t level =
        h.supported ? std::max(h.life_time_est_a, h.life_time_est_b) : 0;
    while (p.last_level < level) {
      ++p.last_level;
      p.levels.push_back(FleetDeviceProgress::LevelRow{
          p.last_level, p.bytes_written + p.bytes_read,
          device->clock().Now().ToHoursF()});
    }
    return level;
  };

  uint64_t slice_issued = 0;
  while (slice_issued < fleet_->slice_bytes) {
    WorkloadOp op;
    if (!workload.Next(target, &op)) {
      // Fleet devices always loop their stream (wear experiment semantics);
      // laps are reseeded like WorkloadDriveOptions::loop.
      ++p.lap;
      workload.Reset(DeriveSeed(driver_seed, p.lap));
      if (!workload.Next(target, &op)) {
        done = true;  // stream empty even after a restart
        break;
      }
    }
    if (op.pre_idle.nanos() > 0) {
      if (!flush()) {
        done = true;
        break;
      }
      device->clock().AdvanceWithCategory(op.pre_idle, "workload-idle");
    }
    pending.push_back(IoRequest{op.kind, op.offset, op.length});
    slice_issued += op.length;
    p.since_poll += op.length;
    if (pending.size() >= fleet_->batch_requests && !flush()) {
      done = true;
      break;
    }
    if (p.since_poll >= poll_bytes) {
      p.since_poll = 0;
      if (!flush()) {
        done = true;
        break;
      }
      const uint32_t level = poll();
      if (fleet_->target_level > 0 && level >= fleet_->target_level) {
        reached = true;
        done = true;
        break;
      }
    }
    if (p.bytes_written + p.bytes_read >= cap) {
      done = true;
      break;
    }
  }
  if (!flush()) {
    done = true;
  }
  poll();
  if (fleet_->target_level > 0 && p.last_level >= fleet_->target_level) {
    reached = true;
    done = true;
  }
  if (bricked) {
    done = true;
  }

  if (!done) {
    SnapshotWriter w;
    device->SaveState(w);
    workload.SaveState(w);
    p.parked = PackZeroRuns(w.buffer());
    p.parked_raw_bytes = w.buffer().size();
    p.phase = FleetDeviceProgress::kParked;
    acc_.AddParkedSample(p.parked_raw_bytes, p.parked.size());
    return Status::Ok();
  }

  const double vf = fleet_->scale.VolumeFactor();
  FleetDeviceOutcome out;
  out.model_index = ref.model_index;
  out.bricked = bricked;
  out.reached_level = reached;
  out.days = device->clock().Now().ToHoursF() * vf / 24.0;
  out.host_gib =
      static_cast<double>(p.bytes_written) * vf / static_cast<double>(kGiB);
  out.device_wa = device->ftl().Stats().WriteAmplification();
  out.level_days.reserve(p.levels.size());
  for (const FleetDeviceProgress::LevelRow& row : p.levels) {
    out.level_days.emplace_back(row.level, row.hours * vf / 24.0);
  }
  acc_.AddOutcome(out);
  p = FleetDeviceProgress{};  // frees the parked blob and level rows
  p.phase = FleetDeviceProgress::kDone;
  --remaining_;
  return Status::Ok();
}

void FleetShard::Save(SnapshotWriter& w) const {
  w.BeginSection(kShardTag);
  w.U64(shard_index_);
  w.U64(first_device_);
  w.U64(cursor_);
  w.U64(remaining_);
  w.U64(devices_.size());
  for (const FleetDeviceProgress& p : devices_) {
    w.U8(p.phase);
    if (p.phase != FleetDeviceProgress::kParked) {
      continue;  // unborn and done devices have no state
    }
    w.U64(p.bytes_written);
    w.U64(p.bytes_read);
    w.U64(p.requests);
    w.U64(p.lap);
    w.U64(p.since_poll);
    w.U32(p.last_level);
    w.U64(p.levels.size());
    for (const FleetDeviceProgress::LevelRow& row : p.levels) {
      w.U32(row.level);
      w.U64(row.host_bytes);
      w.F64(row.hours);
    }
    w.U64(p.parked_raw_bytes);
    w.VecU8(p.parked);
  }
  acc_.Save(w);
  w.EndSection();
}

Status FleetShard::Load(SnapshotReader& r) {
  FLASHSIM_RETURN_IF_ERROR(r.EnterSection(kShardTag));
  shard_index_ = r.U64();
  first_device_ = r.U64();
  cursor_ = r.U64();
  remaining_ = r.U64();
  const uint64_t n_devices = r.U64();
  devices_.assign(n_devices, FleetDeviceProgress{});
  for (uint64_t i = 0; i < n_devices && r.ok(); ++i) {
    FleetDeviceProgress& p = devices_[i];
    p.phase = r.U8();
    if (p.phase != FleetDeviceProgress::kParked) {
      continue;
    }
    p.bytes_written = r.U64();
    p.bytes_read = r.U64();
    p.requests = r.U64();
    p.lap = r.U64();
    p.since_poll = r.U64();
    p.last_level = r.U32();
    const uint64_t n_levels = r.U64();
    for (uint64_t j = 0; j < n_levels && r.ok(); ++j) {
      FleetDeviceProgress::LevelRow row;
      row.level = r.U32();
      row.host_bytes = r.U64();
      row.hours = r.F64();
      p.levels.push_back(row);
    }
    p.parked_raw_bytes = r.U64();
    r.VecU8(&p.parked);
  }
  FLASHSIM_RETURN_IF_ERROR(acc_.Load(r));
  r.LeaveSection();
  return r.status();
}

}  // namespace flashsim
