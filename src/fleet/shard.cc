#include "src/fleet/shard.h"

#include <algorithm>
#include <cassert>

#include "src/device/flash_device.h"
#include "src/simcore/rng.h"
#include "src/simcore/units.h"
#include "src/workload/generators.h"

namespace flashsim {

namespace {

constexpr uint32_t kShardTag = SnapshotTag("SHRD");

// Per-device byte cap when the spec sets none; matches the campaign runner's
// default wear cap so unbounded streams still terminate.
constexpr uint64_t kDefaultDeviceCap = 1 * kTiB;

constexpr uint64_t kPrefillChunk = 4 * kMiB;

Status PrefillDevice(FlashDevice& device, uint64_t start, uint64_t length) {
  const uint64_t end = std::min(start + length, device.CapacityBytes());
  for (uint64_t off = start; off < end; off += kPrefillChunk) {
    const IoRequest fill{IoKind::kWrite, off, std::min(kPrefillChunk, end - off)};
    Result<IoCompletion> done = device.Submit(fill);
    if (!done.ok()) {
      return done.status();
    }
  }
  return Status::Ok();
}

// Exact-size copy of a scratch pack buffer into a retained blob; parked
// blobs live for many slices, so capacity overshoot would be resident waste.
std::vector<uint8_t> ShrinkWrap(const std::vector<uint8_t>& packed) {
  return std::vector<uint8_t>(packed.begin(), packed.end());
}

}  // namespace

FleetWorkerScratch::FleetWorkerScratch() = default;
FleetWorkerScratch::~FleetWorkerScratch() = default;

uint64_t FleetWorkerScratch::GrowCount() const {
  auto track = [](size_t cap, size_t* last, uint64_t* grows) {
    if (cap != *last) {
      *last = cap;
      ++*grows;
    }
  };
  track(raw.capacity(), &raw_cap_, &raw_grows_);
  track(packed.capacity(), &packed_cap_, &packed_grows_);
  track(writer.buffer().capacity(), &writer_cap_, &writer_grows_);
  // The first tracked capacity of each buffer counts as its warm-up grow, so
  // the invariant reads "stable after warm-up" just like ScratchBuffer.
  return raw_grows_ + packed_grows_ + writer_grows_ + park.grow_count();
}

FleetDeviceRef FleetDeviceAt(const CampaignSpec& spec, const FleetSpec& fleet,
                             uint64_t index) {
  FleetDeviceRef ref;
  ref.index = index;
  const uint64_t n_models = std::max<size_t>(1, fleet.devices.size());
  const uint64_t n_workloads = std::max<size_t>(1, fleet.workloads.size());
  const uint64_t combo = index % (n_models * n_workloads);
  ref.model_index = static_cast<uint32_t>(combo % n_models);
  if (ref.model_index < fleet.devices.size()) {
    ref.model = FindCampaignDevice(fleet.devices[ref.model_index]);
  }
  const uint64_t workload_index = combo / n_models;
  if (workload_index < fleet.workloads.size()) {
    const SyntheticWorkloadConfig* w =
        spec.FindWorkload(fleet.workloads[workload_index]);
    if (w != nullptr) {
      ref.workload = *w;
    }
  }
  ref.seed = DeriveDeviceSeed(spec.seed, fleet.index, index);
  return ref;
}

uint64_t FleetShardCount(const FleetSpec& fleet) {
  if (fleet.device_count == 0 || fleet.shard_devices == 0) {
    return 0;
  }
  return (fleet.device_count + fleet.shard_devices - 1) / fleet.shard_devices;
}

FleetShard::FleetShard(const CampaignSpec* spec, const FleetSpec* fleet)
    : spec_(spec), fleet_(fleet) {}

void FleetShard::InitFresh(uint64_t shard_index) {
  shard_index_ = shard_index;
  first_device_ = shard_index * fleet_->shard_devices;
  const uint64_t end =
      std::min(first_device_ + fleet_->shard_devices, fleet_->device_count);
  devices_.clear();
  devices_.resize(end > first_device_ ? end - first_device_ : 0);
  cursor_ = 0;
  remaining_ = devices_.size();
  claimed_ = 0;
  fold_next_ = 0;
  slices_run_ = 0;
  acc_.Init(fleet_->devices, fleet_->survival_bin_hours);
}

bool FleetShard::Claim(uint64_t* position) {
  const uint64_t n = devices_.size();
  if (remaining_ == 0 || n == 0) {
    return false;
  }
  for (uint64_t k = 0; k < n; ++k) {
    const uint64_t pos = (cursor_ + k) % n;
    FleetDeviceProgress& p = devices_[pos];
    if (p.phase != FleetDeviceProgress::kDone && !p.running) {
      p.running = true;
      ++claimed_;
      cursor_ = (pos + 1) % n;
      *position = pos;
      return true;
    }
  }
  return false;
}

bool FleetShard::HasClaimable() const {
  if (remaining_ == 0) {
    return false;
  }
  for (const FleetDeviceProgress& p : devices_) {
    if (p.phase != FleetDeviceProgress::kDone && !p.running) {
      return true;
    }
  }
  return false;
}

Status FleetShard::Unpark(FleetDeviceProgress& p,
                          FleetWorkerScratch* scratch) const {
  FLASHSIM_RETURN_IF_ERROR(ParkUnpackChain(p.base, p.chain, &scratch->park,
                                           &scratch->raw));
  if (scratch->raw.size() != p.parked_raw_bytes) {
    return DataLossError("parked device: reconstructed size mismatch");
  }
  return Status::Ok();
}

void FleetShard::Park(FleetDeviceProgress& p, FleetWorkerScratch* scratch,
                      FleetSliceResult* result) const {
  const std::vector<uint8_t>& new_raw = scratch->writer.buffer();
  result->parked_raw_bytes = new_raw.size();

  // Delta park: chain onto the previous park's raw (still in scratch->raw
  // from Unpark), unless the chain is at its length bound. A park that
  // would blow the chain byte budget rebases instead.
  if (fleet_->park_mode == FleetParkMode::kDelta &&
      p.phase == FleetDeviceProgress::kParked &&
      p.chain.size() + 1 < fleet_->park_rebase_every) {
    ParkPackDelta(new_raw, scratch->raw, &scratch->park, &scratch->packed);
    const double budget =
        fleet_->park_chain_budget * static_cast<double>(p.base.size());
    if (static_cast<double>(p.chain_bytes + scratch->packed.size()) <=
        budget) {
      p.chain.push_back(ShrinkWrap(scratch->packed));
      p.chain_bytes += scratch->packed.size();
      p.parked_raw_bytes = new_raw.size();
      result->stored_bytes = scratch->packed.size();
      result->resident_bytes = p.base.size() + p.chain_bytes;
      result->delta_park = true;
      return;
    }
  }

  // Full park: a self-contained blob becomes the new base. Delta mode uses
  // the transposed layout for its rebase bases; full mode keeps the plain
  // layout (the canonical checkpoint form, and the PR6 comparison baseline).
  const bool rebase = p.phase == FleetDeviceProgress::kParked &&
                      fleet_->park_mode == FleetParkMode::kDelta;
  ParkPackFull(new_raw, /*transpose=*/fleet_->park_mode == FleetParkMode::kDelta,
               &scratch->park, &scratch->packed);
  p.base = ShrinkWrap(scratch->packed);
  p.chain.clear();
  p.chain_bytes = 0;
  p.parked_raw_bytes = new_raw.size();
  result->stored_bytes = p.base.size();
  result->resident_bytes = p.base.size();
  result->rebase = rebase;
}

Status FleetShard::RunSlice(uint64_t position, FleetWorkerScratch* scratch,
                            FleetSliceResult* result) {
  *result = FleetSliceResult{};
  FleetDeviceProgress& p = devices_[position];
  const FleetDeviceRef ref =
      FleetDeviceAt(*spec_, *fleet_, first_device_ + position);
  if (ref.model == nullptr) {
    return NotFoundError("fleet device has unknown model slug");
  }

  // One live FlashDevice per (worker, model): LoadState overwrites every
  // plane, map, meter, and RNG stream, so a parked device can resume inside
  // any same-model instance without per-slice construction.
  if (scratch->devices.size() < fleet_->devices.size()) {
    scratch->devices.resize(fleet_->devices.size());
  }
  std::unique_ptr<FlashDevice>& slot = scratch->devices[ref.model_index];
  if (p.phase == FleetDeviceProgress::kUnborn) {
    // Fresh devices derive all randomness from their own seed; build a new
    // instance (once per device lifetime) rather than reseeding a used one.
    slot = ref.model->make(fleet_->scale, DeriveSeed(ref.seed, 0));
  } else if (slot == nullptr) {
    slot = ref.model->make(fleet_->scale, 0);  // state comes from LoadState
  }
  FlashDevice& device = *slot;
  SyntheticWorkload workload(ref.workload);
  const uint64_t driver_seed = DeriveSeed(ref.seed, 1);
  const uint64_t target = device.CapacityBytes();

  if (p.phase == FleetDeviceProgress::kUnborn) {
    workload.Reset(DeriveSeed(driver_seed, 0));
    if (workload.MayRead()) {
      uint64_t start = 0;
      uint64_t length = 0;
      workload.TouchRange(target, &start, &length);
      FLASHSIM_RETURN_IF_ERROR(PrefillDevice(device, start, length));
    }
  } else {
    FLASHSIM_RETURN_IF_ERROR(Unpark(p, scratch));
    SnapshotReader r(std::move(scratch->raw));
    FLASHSIM_RETURN_IF_ERROR(device.LoadState(r));
    FLASHSIM_RETURN_IF_ERROR(workload.LoadState(r));
    // Keep the raw snapshot: it is the next park's delta base.
    scratch->raw = r.TakeBuffer();
  }

  const uint64_t poll_bytes = std::max<uint64_t>(64 * kKiB, target / 64);
  const uint64_t cap =
      fleet_->max_device_bytes > 0 ? fleet_->max_device_bytes : kDefaultDeviceCap;
  std::vector<IoRequest>& pending = scratch->pending;
  pending.clear();
  bool done = false;
  bool bricked = false;
  bool reached = false;

  // Folds a SubmitBatch flush into the progress counters; false = the drive
  // must stop (wear-out or hard failure).
  auto flush = [&]() -> bool {
    if (pending.empty()) {
      return true;
    }
    const BatchCompletion dc = device.SubmitBatch(pending.data(), pending.size());
    for (size_t i = 0; i < dc.requests_completed; ++i) {
      if (pending[i].kind == IoKind::kRead) {
        p.bytes_read += pending[i].length;
      } else if (pending[i].kind == IoKind::kWrite) {
        p.bytes_written += pending[i].length;
      }
    }
    p.requests += dc.requests_completed;
    pending.clear();
    if (!dc.status.ok()) {
      bricked = dc.status.code() == StatusCode::kUnavailable;
      return false;
    }
    return true;
  };
  auto poll = [&]() -> uint32_t {
    const HealthReport h = device.QueryHealth();
    const uint32_t level =
        h.supported ? std::max(h.life_time_est_a, h.life_time_est_b) : 0;
    while (p.last_level < level) {
      ++p.last_level;
      p.levels.push_back(FleetDeviceProgress::LevelRow{
          p.last_level, p.bytes_written + p.bytes_read,
          device.clock().Now().ToHoursF()});
    }
    return level;
  };

  uint64_t slice_issued = 0;
  while (slice_issued < fleet_->slice_bytes) {
    WorkloadOp op;
    if (!workload.Next(target, &op)) {
      // Fleet devices always loop their stream (wear experiment semantics);
      // laps are reseeded like WorkloadDriveOptions::loop.
      ++p.lap;
      workload.Reset(DeriveSeed(driver_seed, p.lap));
      if (!workload.Next(target, &op)) {
        done = true;  // stream empty even after a restart
        break;
      }
    }
    if (op.pre_idle.nanos() > 0) {
      if (!flush()) {
        done = true;
        break;
      }
      device.clock().AdvanceWithCategory(op.pre_idle, "workload-idle");
    }
    pending.push_back(IoRequest{op.kind, op.offset, op.length});
    slice_issued += op.length;
    p.since_poll += op.length;
    if (pending.size() >= fleet_->batch_requests && !flush()) {
      done = true;
      break;
    }
    if (p.since_poll >= poll_bytes) {
      p.since_poll = 0;
      if (!flush()) {
        done = true;
        break;
      }
      const uint32_t level = poll();
      if (fleet_->target_level > 0 && level >= fleet_->target_level) {
        reached = true;
        done = true;
        break;
      }
    }
    if (p.bytes_written + p.bytes_read >= cap) {
      done = true;
      break;
    }
  }
  if (!flush()) {
    done = true;
  }
  poll();
  if (fleet_->target_level > 0 && p.last_level >= fleet_->target_level) {
    reached = true;
    done = true;
  }
  if (bricked) {
    done = true;
  }

  if (!done) {
    scratch->writer.Reset();
    device.SaveState(scratch->writer);
    workload.SaveState(scratch->writer);
    Park(p, scratch, result);
    return Status::Ok();
  }

  const double vf = fleet_->scale.VolumeFactor();
  FleetDeviceOutcome& out = result->outcome;
  out.model_index = ref.model_index;
  out.bricked = bricked;
  out.reached_level = reached;
  out.days = device.clock().Now().ToHoursF() * vf / 24.0;
  out.host_gib =
      static_cast<double>(p.bytes_written) * vf / static_cast<double>(kGiB);
  out.device_wa = device.ftl().Stats().WriteAmplification();
  out.level_days.reserve(p.levels.size());
  for (const FleetDeviceProgress::LevelRow& row : p.levels) {
    out.level_days.emplace_back(row.level, row.hours * vf / 24.0);
  }
  result->finished = true;
  // Free the parked representation now (the outcome above is all that
  // survives); the phase flip happens under the runner lock in Release.
  p.base.clear();
  p.base.shrink_to_fit();
  p.chain.clear();
  p.chain_bytes = 0;
  p.levels.clear();
  p.levels.shrink_to_fit();
  return Status::Ok();
}

void FleetShard::Release(uint64_t position, FleetSliceResult&& result) {
  FleetDeviceProgress& p = devices_[position];
  p.running = false;
  --claimed_;
  ++slices_run_;
  if (result.finished) {
    p.phase = FleetDeviceProgress::kDone;
    p.outcome = std::make_unique<FleetDeviceOutcome>(std::move(result.outcome));
    --remaining_;
    // Outcomes fold strictly in device-index order: the WearDigest sketches
    // are observation-order sensitive, and this order is the one schedule-
    // independent choice.
    while (fold_next_ < devices_.size() &&
           devices_[fold_next_].phase == FleetDeviceProgress::kDone) {
      if (devices_[fold_next_].outcome != nullptr) {
        acc_.AddOutcome(*devices_[fold_next_].outcome);
        devices_[fold_next_].outcome.reset();
      }
      ++fold_next_;
    }
  } else {
    p.phase = FleetDeviceProgress::kParked;
    // Raw size is schedule-independent; integer MergeStats fold exactly in
    // any order, so no buffering is needed here.
    acc_.AddParkedSample(result.parked_raw_bytes);
  }
  if (Done()) {
    acc_.AddShardSlices(slices_run_);
  }
}

void FleetShard::Save(SnapshotWriter& w) const {
  assert(claimed_ == 0 && "checkpointing a shard with outstanding claims");
  w.BeginSection(kShardTag);
  w.U64(shard_index_);
  w.U64(first_device_);
  w.U64(cursor_);
  w.U64(remaining_);
  w.U64(fold_next_);
  w.U64(slices_run_);
  w.U64(devices_.size());
  ParkScratch park;
  std::vector<uint8_t> raw;
  std::vector<uint8_t> canonical;
  for (const FleetDeviceProgress& p : devices_) {
    w.U8(p.phase);
    if (p.phase == FleetDeviceProgress::kDone) {
      // Finished devices carry only their not-yet-folded outcome.
      w.Bool(p.outcome != nullptr);
      if (p.outcome != nullptr) {
        p.outcome->Save(w);
      }
      continue;
    }
    if (p.phase != FleetDeviceProgress::kParked) {
      continue;  // unborn devices have no state
    }
    w.U64(p.bytes_written);
    w.U64(p.bytes_read);
    w.U64(p.requests);
    w.U64(p.lap);
    w.U64(p.since_poll);
    w.U32(p.last_level);
    w.U64(p.levels.size());
    for (const FleetDeviceProgress::LevelRow& row : p.levels) {
      w.U32(row.level);
      w.U64(row.host_bytes);
      w.F64(row.hours);
    }
    w.U64(p.parked_raw_bytes);
    // Canonical form: a plain self-contained blob, whatever the in-memory
    // park mode — so checkpoint files are byte-identical across park modes
    // and a checkpoint written under one mode resumes under another.
    if (p.chain.empty() && !p.base.empty() && p.base[0] == kParkFull) {
      w.VecU8(p.base);
    } else {
      raw.clear();
      const Status st = ParkUnpackChain(p.base, p.chain, &park, &raw);
      assert(st.ok() && "parked blobs we wrote must reconstruct");
      (void)st;
      ParkPackFull(raw, /*transpose=*/false, &park, &canonical);
      w.VecU8(canonical);
    }
  }
  acc_.Save(w);
  w.EndSection();
}

Status FleetShard::Load(SnapshotReader& r) {
  FLASHSIM_RETURN_IF_ERROR(r.EnterSection(kShardTag));
  shard_index_ = r.U64();
  first_device_ = r.U64();
  cursor_ = r.U64();
  remaining_ = r.U64();
  fold_next_ = r.U64();
  slices_run_ = r.U64();
  claimed_ = 0;
  const uint64_t n_devices = r.U64();
  devices_.clear();
  devices_.resize(n_devices);
  for (uint64_t i = 0; i < n_devices && r.ok(); ++i) {
    FleetDeviceProgress& p = devices_[i];
    p.phase = r.U8();
    if (p.phase == FleetDeviceProgress::kDone) {
      if (r.Bool()) {
        p.outcome = std::make_unique<FleetDeviceOutcome>();
        FLASHSIM_RETURN_IF_ERROR(p.outcome->Load(r));
      }
      continue;
    }
    if (p.phase != FleetDeviceProgress::kParked) {
      continue;
    }
    p.bytes_written = r.U64();
    p.bytes_read = r.U64();
    p.requests = r.U64();
    p.lap = r.U64();
    p.since_poll = r.U64();
    p.last_level = r.U32();
    const uint64_t n_levels = r.U64();
    for (uint64_t j = 0; j < n_levels && r.ok(); ++j) {
      FleetDeviceProgress::LevelRow row;
      row.level = r.U32();
      row.host_bytes = r.U64();
      row.hours = r.F64();
      p.levels.push_back(row);
    }
    p.parked_raw_bytes = r.U64();
    r.VecU8(&p.base);  // canonical self-contained blob; chain restarts empty
    p.chain.clear();
    p.chain_bytes = 0;
  }
  FLASHSIM_RETURN_IF_ERROR(acc_.Load(r));
  r.LeaveSection();
  return r.status();
}

}  // namespace flashsim
