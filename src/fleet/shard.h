// Fleet shard: a contiguous range of simulated devices driven in bounded
// slices with park/unpark between slices (DESIGN.md §13).
//
// Device identity is positional: device i of a fleet maps to combo
// c = i mod (|devices| * |workloads|), model = devices[c mod |devices|],
// workload = workloads[c div |devices|], and its RNG tree is rooted at
// DeriveDeviceSeed(campaign seed, fleet index, i) — so any device can be
// reconstructed from the spec alone, and unstarted devices cost zero bytes.
//
// A shard is processed sequentially by exactly one worker. RunSlice()
// unparks the next unfinished device (round-robin), drives up to
// slice_bytes of its workload, and parks it again as a zero-run packed FSNP
// blob; at most one device per worker is ever live, which is what bounds
// fleet memory. Finished devices fold into the shard's FleetAccumulator
// immediately and free their parked state. Save()/Load() serialize the
// whole mid-shard state (cursor, per-device progress, parked blobs,
// accumulator) for fleet checkpoints; a restored shard continues bit-exactly.

#ifndef SRC_FLEET_SHARD_H_
#define SRC_FLEET_SHARD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/campaign/spec.h"
#include "src/fleet/aggregate.h"
#include "src/simcore/snapshot.h"
#include "src/simcore/status.h"

namespace flashsim {

// Resolved identity of one fleet device.
struct FleetDeviceRef {
  uint64_t index = 0;
  uint32_t model_index = 0;            // into fleet.devices
  const CampaignDevice* model = nullptr;
  SyntheticWorkloadConfig workload;
  uint64_t seed = 0;  // DeriveDeviceSeed(spec.seed, fleet.index, index)
};

FleetDeviceRef FleetDeviceAt(const CampaignSpec& spec, const FleetSpec& fleet,
                             uint64_t index);

// Number of shards a fleet splits into.
uint64_t FleetShardCount(const FleetSpec& fleet);

// Cross-slice progress of one device. While parked, this struct plus the
// packed blob IS the device.
struct FleetDeviceProgress {
  enum Phase : uint8_t { kUnborn = 0, kParked = 1, kDone = 2 };

  struct LevelRow {
    uint32_t level = 0;
    uint64_t host_bytes = 0;
    double hours = 0.0;  // sim-scale hours at the transition
  };

  uint8_t phase = kUnborn;
  uint64_t bytes_written = 0;
  uint64_t bytes_read = 0;
  uint64_t requests = 0;
  uint64_t lap = 0;         // workload restart count
  uint64_t since_poll = 0;  // bytes since the last health poll
  uint32_t last_level = 0;
  std::vector<LevelRow> levels;
  std::vector<uint8_t> parked;  // zero-run packed FSNP blob (kParked only)
  uint64_t parked_raw_bytes = 0;
};

class FleetShard {
 public:
  FleetShard(const CampaignSpec* spec, const FleetSpec* fleet);

  // Fresh shard covering device range [index * shard_devices, ...).
  void InitFresh(uint64_t shard_index);

  uint64_t shard_index() const { return shard_index_; }
  uint64_t device_count() const { return devices_.size(); }
  bool Done() const { return remaining_ == 0; }

  // Drives the next unfinished device for one slice. Returns an error only
  // on internal (snapshot) failures; device wear-out is normal progress.
  Status RunSlice();

  FleetAccumulator& accumulator() { return acc_; }
  const FleetAccumulator& accumulator() const { return acc_; }

  // Mid-shard checkpoint state ("SHRD" section).
  void Save(SnapshotWriter& w) const;
  Status Load(SnapshotReader& r);

 private:
  Status DriveDeviceSlice(uint64_t position);

  const CampaignSpec* spec_ = nullptr;
  const FleetSpec* fleet_ = nullptr;
  uint64_t shard_index_ = 0;
  uint64_t first_device_ = 0;
  uint64_t cursor_ = 0;     // round-robin position of the next slice
  uint64_t remaining_ = 0;  // devices not yet done
  std::vector<FleetDeviceProgress> devices_;
  FleetAccumulator acc_;
};

}  // namespace flashsim

#endif  // SRC_FLEET_SHARD_H_
