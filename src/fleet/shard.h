// Fleet shard: a contiguous range of simulated devices driven in bounded
// slices with park/unpark between slices (DESIGN.md §13/§14).
//
// Device identity is positional: device i of a fleet maps to combo
// c = i mod (|devices| * |workloads|), model = devices[c mod |devices|],
// workload = workloads[c div |devices|], and its RNG tree is rooted at
// DeriveDeviceSeed(campaign seed, fleet index, i) — so any device can be
// reconstructed from the spec alone, and unstarted devices cost zero bytes.
//
// Scheduling is device-granular: devices inside a shard are independent
// simulation streams, so any number of workers may drive different devices
// of the same shard concurrently. A worker Claims a device position under
// the runner lock, runs one bounded slice lock-free via RunSlice, and hands
// the result back with Release. Determinism discipline: device outcomes are
// buffered per device and folded into the shard accumulator strictly in
// device-index order (the order-sensitive WearDigest sketches therefore see
// a schedule-independent sequence); park raw-size samples are integer-valued
// MergeStats and may fold in completion order. The folded accumulator — and
// hence the fleet report — is byte-identical at any thread count.
//
// Parking (DESIGN.md §14): between slices a device exists as a
// self-contained base blob plus a bounded chain of packed XOR-deltas, each
// taken against the previous park's raw snapshot (park=delta, the default),
// or as a single self-contained packed blob per park (park=full, the PR6
// behavior). Checkpoints always serialize the canonical self-contained form,
// so checkpoint files are byte-identical across park modes.
//
// Save()/Load() serialize the whole quiesced mid-shard state (cursors,
// per-device progress, canonical parked blobs, pending outcomes,
// accumulator) for fleet checkpoints; a restored shard continues
// bit-exactly.

#ifndef SRC_FLEET_SHARD_H_
#define SRC_FLEET_SHARD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/blockdev/block_device.h"
#include "src/campaign/spec.h"
#include "src/fleet/aggregate.h"
#include "src/fleet/park.h"
#include "src/simcore/snapshot.h"
#include "src/simcore/status.h"

namespace flashsim {

class FlashDevice;

// Resolved identity of one fleet device.
struct FleetDeviceRef {
  uint64_t index = 0;
  uint32_t model_index = 0;            // into fleet.devices
  const CampaignDevice* model = nullptr;
  SyntheticWorkloadConfig workload;
  uint64_t seed = 0;  // DeriveDeviceSeed(spec.seed, fleet.index, index)
};

FleetDeviceRef FleetDeviceAt(const CampaignSpec& spec, const FleetSpec& fleet,
                             uint64_t index);

// Number of shards a fleet splits into.
uint64_t FleetShardCount(const FleetSpec& fleet);

// Cross-slice progress of one device. While parked, this struct plus the
// base blob and delta chain IS the device.
struct FleetDeviceProgress {
  enum Phase : uint8_t { kUnborn = 0, kParked = 1, kDone = 2 };

  struct LevelRow {
    uint32_t level = 0;
    uint64_t host_bytes = 0;
    double hours = 0.0;  // sim-scale hours at the transition
  };

  uint8_t phase = kUnborn;
  bool running = false;  // claimed by a worker right now (never serialized)
  uint64_t bytes_written = 0;
  uint64_t bytes_read = 0;
  uint64_t requests = 0;
  uint64_t lap = 0;         // workload restart count
  uint64_t since_poll = 0;  // bytes since the last health poll
  uint32_t last_level = 0;
  std::vector<LevelRow> levels;
  // Parked representation: `base` is a self-contained park blob (kParkFull
  // or kParkFullT8); `chain` holds kParkDelta blobs, oldest first, each
  // against the raw snapshot the previous link reconstructs.
  std::vector<uint8_t> base;
  std::vector<std::vector<uint8_t>> chain;
  uint64_t chain_bytes = 0;
  uint64_t parked_raw_bytes = 0;
  // Finished devices buffer their outcome here until the in-order fold
  // cursor reaches them.
  std::unique_ptr<FleetDeviceOutcome> outcome;
};

// Per-worker reusable resources for the slice loop. After each worker has
// seen every (model, snapshot size) once, driving further slices performs no
// steady-state allocation: the snapshot writer, the raw/packed byte vectors,
// the park transpose scratch, the batch buffer, and the simulated devices
// themselves (state fully overwritten by LoadState) are all reused.
struct FleetWorkerScratch {
  FleetWorkerScratch();
  ~FleetWorkerScratch();

  SnapshotWriter writer;            // Reset() before each park
  std::vector<uint8_t> raw;         // previous park's raw snapshot
  std::vector<uint8_t> packed;      // pack destination before shrink-wrap
  std::vector<IoRequest> pending;   // SubmitBatch staging
  ParkScratch park;
  std::vector<std::unique_ptr<FlashDevice>> devices;  // by model_index

  // Reallocation count across the reusable buffers above; stable once warm
  // (FleetRunnerTest.WorkerScratchDoesNotGrowInSteadyState).
  uint64_t GrowCount() const;

 private:
  mutable uint64_t raw_grows_ = 0;
  mutable size_t raw_cap_ = 0;
  mutable uint64_t packed_grows_ = 0;
  mutable size_t packed_cap_ = 0;
  mutable uint64_t writer_grows_ = 0;
  mutable size_t writer_cap_ = 0;
};

// What one slice did; produced lock-free by RunSlice, accounted under the
// runner lock by Release.
struct FleetSliceResult {
  bool finished = false;        // device reached an end state this slice
  FleetDeviceOutcome outcome;   // valid when finished
  uint64_t parked_raw_bytes = 0;  // raw snapshot size (parked devices)
  // Park accounting (host observability; deterministic but mode-dependent,
  // so it feeds BENCH/stdout, never the byte-compared report).
  uint64_t stored_bytes = 0;    // blob bytes appended/replaced by this park
  uint64_t resident_bytes = 0;  // base + chain bytes after this park
  bool delta_park = false;      // this park appended a chain delta
  bool rebase = false;          // this park rewrote the base mid-life
};

class FleetShard {
 public:
  FleetShard(const CampaignSpec* spec, const FleetSpec* fleet);

  // Fresh shard covering device range [index * shard_devices, ...).
  void InitFresh(uint64_t shard_index);

  uint64_t shard_index() const { return shard_index_; }
  uint64_t device_count() const { return devices_.size(); }
  uint64_t slices_run() const { return slices_run_; }
  // All devices finished and no claims outstanding: the accumulator is
  // complete and the shard may fold.
  bool Done() const { return remaining_ == 0 && claimed_ == 0; }

  // Claim the next runnable device (round-robin over unfinished, unclaimed
  // positions). Caller must hold the runner lock. False = nothing to claim
  // (all remaining devices are already claimed, or the shard is finished).
  bool Claim(uint64_t* position);
  // True if Claim would succeed.
  bool HasClaimable() const;

  // Drives one bounded slice of the claimed device. Lock-free: the claim
  // gives this worker exclusive ownership of the device's progress entry.
  // Returns an error only on internal (snapshot) failures; device wear-out
  // is normal progress.
  Status RunSlice(uint64_t position, FleetWorkerScratch* scratch,
                  FleetSliceResult* result);

  // Returns the claim and folds the slice result into the accumulator
  // (outcomes strictly in device-index order). Caller must hold the runner
  // lock.
  void Release(uint64_t position, FleetSliceResult&& result);

  FleetAccumulator& accumulator() { return acc_; }
  const FleetAccumulator& accumulator() const { return acc_; }

  // Mid-shard checkpoint state ("SHRD" section). The shard must be quiesced
  // (no outstanding claims); parked devices serialize in the canonical
  // self-contained form regardless of park mode.
  void Save(SnapshotWriter& w) const;
  Status Load(SnapshotReader& r);

 private:
  Status Unpark(FleetDeviceProgress& p, FleetWorkerScratch* scratch) const;
  void Park(FleetDeviceProgress& p, FleetWorkerScratch* scratch,
            FleetSliceResult* result) const;

  const CampaignSpec* spec_ = nullptr;
  const FleetSpec* fleet_ = nullptr;
  uint64_t shard_index_ = 0;
  uint64_t first_device_ = 0;
  uint64_t cursor_ = 0;      // round-robin position of the next claim
  uint64_t remaining_ = 0;   // devices not yet done
  uint64_t claimed_ = 0;     // outstanding claims
  uint64_t fold_next_ = 0;   // outcomes [0, fold_next_) folded into acc_
  uint64_t slices_run_ = 0;
  std::vector<FleetDeviceProgress> devices_;
  FleetAccumulator acc_;
};

}  // namespace flashsim

#endif  // SRC_FLEET_SHARD_H_
