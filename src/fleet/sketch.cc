#include "src/fleet/sketch.h"

#include <algorithm>
#include <cmath>

namespace flashsim {

namespace {

constexpr uint32_t kMergeStatsTag = SnapshotTag("MSTA");
constexpr uint32_t kDigestTag = SnapshotTag("TDIG");
constexpr uint32_t kHistTag = SnapshotTag("DHIS");

// Buffered samples per compression pass. Larger buffers amortize the sort;
// the value is part of the determinism surface (it fixes where compression
// boundaries fall), so it is a constant, not a tunable.
constexpr size_t kDigestBuffer = 512;

}  // namespace

// --- MergeStats -------------------------------------------------------------

void MergeStats::Add(double v) {
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

void MergeStats::Merge(const MergeStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
}

void MergeStats::Save(SnapshotWriter& w) const {
  w.BeginSection(kMergeStatsTag);
  w.U64(count_);
  w.F64(sum_);
  w.F64(min_);
  w.F64(max_);
  w.EndSection();
}

Status MergeStats::Load(SnapshotReader& r) {
  FLASHSIM_RETURN_IF_ERROR(r.EnterSection(kMergeStatsTag));
  count_ = r.U64();
  sum_ = r.F64();
  min_ = r.F64();
  max_ = r.F64();
  r.LeaveSection();
  return r.status();
}

// --- WearDigest -------------------------------------------------------------

WearDigest::WearDigest(uint32_t compression)
    : compression_(std::max<uint32_t>(8, compression)) {}

void WearDigest::Add(double v) {
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  buffer_.push_back(v);
  if (buffer_.size() >= kDigestBuffer) {
    Compress();
  }
}

void WearDigest::Merge(const WearDigest& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  centroids_.insert(centroids_.end(), other.centroids_.begin(),
                    other.centroids_.end());
  buffer_.insert(buffer_.end(), other.buffer_.begin(), other.buffer_.end());
  Compress();
}

void WearDigest::Compress() {
  std::vector<Centroid> in = std::move(centroids_);
  centroids_.clear();
  in.reserve(in.size() + buffer_.size());
  for (double v : buffer_) {
    in.push_back(Centroid{v, 1.0});
  }
  buffer_.clear();
  if (in.empty()) {
    return;
  }
  // Full (mean, weight) ordering: equal keys are interchangeable, so the
  // result is a deterministic function of the input multiset.
  std::sort(in.begin(), in.end(), [](const Centroid& a, const Centroid& b) {
    return a.mean != b.mean ? a.mean < b.mean : a.weight < b.weight;
  });
  double total = 0.0;
  for (const Centroid& c : in) {
    total += c.weight;
  }
  // Greedy left-to-right merge: a centroid may absorb its neighbor while its
  // weight stays under the q(1-q) bound, which concentrates resolution in
  // the tails.
  centroids_.reserve(compression_ + 8);
  Centroid cur = in[0];
  double done = 0.0;  // weight fully emitted before `cur`
  for (size_t i = 1; i < in.size(); ++i) {
    const double w = cur.weight + in[i].weight;
    const double q = (done + w / 2.0) / total;
    const double limit =
        std::max(1.0, 4.0 * total * q * (1.0 - q) / compression_);
    if (w <= limit) {
      cur.mean = (cur.mean * cur.weight + in[i].mean * in[i].weight) / w;
      cur.weight = w;
    } else {
      done += cur.weight;
      centroids_.push_back(cur);
      cur = in[i];
    }
  }
  centroids_.push_back(cur);
}

std::vector<WearDigest::Centroid> WearDigest::Compacted() const {
  WearDigest tmp(compression_);
  tmp.centroids_ = centroids_;
  tmp.buffer_ = buffer_;
  tmp.Compress();
  return std::move(tmp.centroids_);
}

double WearDigest::Quantile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  q = std::min(1.0, std::max(0.0, q));
  const std::vector<Centroid> cs = Compacted();
  const double target = q * static_cast<double>(count_);
  double cum = 0.0;
  for (size_t i = 0; i < cs.size(); ++i) {
    const double mid = cum + cs[i].weight / 2.0;
    if (target <= mid) {
      if (i == 0) {
        // Interpolate from the true minimum into the first centroid.
        const double frac = cs[i].weight <= 1.0 ? 1.0 : target / mid;
        return min_ + (cs[i].mean - min_) * std::min(1.0, frac);
      }
      const double prev_mid = cum - cs[i - 1].weight / 2.0;
      const double span = mid - prev_mid;
      const double frac = span > 0.0 ? (target - prev_mid) / span : 0.0;
      return cs[i - 1].mean + (cs[i].mean - cs[i - 1].mean) * frac;
    }
    cum += cs[i].weight;
  }
  return max_;
}

void WearDigest::Save(SnapshotWriter& w) const {
  w.BeginSection(kDigestTag);
  w.U32(compression_);
  w.U64(count_);
  w.F64(sum_);
  w.F64(min_);
  w.F64(max_);
  w.U64(centroids_.size());
  for (const Centroid& c : centroids_) {
    w.F64(c.mean);
    w.F64(c.weight);
  }
  w.U64(buffer_.size());
  for (double v : buffer_) {
    w.F64(v);
  }
  w.EndSection();
}

Status WearDigest::Load(SnapshotReader& r) {
  FLASHSIM_RETURN_IF_ERROR(r.EnterSection(kDigestTag));
  compression_ = r.U32();
  count_ = r.U64();
  sum_ = r.F64();
  min_ = r.F64();
  max_ = r.F64();
  const uint64_t n_centroids = r.U64();
  centroids_.clear();
  for (uint64_t i = 0; i < n_centroids && r.ok(); ++i) {
    Centroid c;
    c.mean = r.F64();
    c.weight = r.F64();
    centroids_.push_back(c);
  }
  const uint64_t n_buffer = r.U64();
  buffer_.clear();
  for (uint64_t i = 0; i < n_buffer && r.ok(); ++i) {
    buffer_.push_back(r.F64());
  }
  r.LeaveSection();
  return r.status();
}

// --- DayHistogram -----------------------------------------------------------

void DayHistogram::Add(uint32_t bin, uint64_t n) {
  bins_[bin] += n;
  total_ += n;
}

void DayHistogram::Merge(const DayHistogram& other) {
  for (const auto& [bin, n] : other.bins_) {
    bins_[bin] += n;
  }
  total_ += other.total_;
}

void DayHistogram::Save(SnapshotWriter& w) const {
  w.BeginSection(kHistTag);
  w.U64(bins_.size());
  for (const auto& [bin, n] : bins_) {
    w.U32(bin);
    w.U64(n);
  }
  w.EndSection();
}

Status DayHistogram::Load(SnapshotReader& r) {
  FLASHSIM_RETURN_IF_ERROR(r.EnterSection(kHistTag));
  bins_.clear();
  total_ = 0;
  const uint64_t n_bins = r.U64();
  for (uint64_t i = 0; i < n_bins && r.ok(); ++i) {
    const uint32_t bin = r.U32();
    const uint64_t n = r.U64();
    bins_[bin] = n;
    total_ += n;
  }
  r.LeaveSection();
  return r.status();
}

}  // namespace flashsim
