#include "src/fleet/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/fleet/checkpoint.h"
#include "src/fleet/shard.h"

namespace flashsim {

namespace {

using SteadyClock = std::chrono::steady_clock;

// One shard currently being driven (possibly by several workers at once).
struct InflightShard {
  std::unique_ptr<FleetShard> shard;
  int admitted_by = -1;  // worker that admitted it; others' claims = steals
  SteadyClock::time_point admitted_at{};
};

struct WorkerStats {
  uint64_t slices = 0;
  double busy_seconds = 0.0;
};

// All cross-worker state, guarded by `mu` (the cp_flag mirror is atomic so
// the claim loop can poll it without taking the lock).
struct FleetRunState {
  std::mutex mu;
  std::condition_variable cv;

  // Shard sourcing: resumed in-flight shards drain first, then fresh indices.
  std::vector<std::unique_ptr<FleetShard>> resumed;
  size_t next_resumed = 0;
  uint64_t next_fresh = 0;
  uint64_t shard_count = 0;

  // The work-stealing pool: shards with unfinished devices. Workers claim
  // single (shard, device) slices from here; a new shard is admitted only
  // when nothing here is claimable, bounding in-flight shards by the worker
  // count.
  std::vector<InflightShard> inflight;

  // In-order fold.
  uint64_t folded = 0;  // shards [0, folded) merged into global
  FleetAccumulator global;
  std::map<uint64_t, FleetAccumulator> pending;  // done, awaiting their turn

  // Checkpoint coordination.
  bool checkpoint_requested = false;
  std::atomic<bool> cp_flag{false};
  bool stop = false;
  int active = 0;
  int paused = 0;
  uint64_t shards_since_checkpoint = 0;
  uint64_t checkpoints_written = 0;

  // Observability.
  FleetParkTotals park;
  std::vector<WorkerStats> workers;
  uint64_t steals = 0;
  double shard_seconds_max = 0.0;

  Status error;
};

void FoldShardLocked(FleetRunState* st, uint64_t shard_index,
                     FleetAccumulator&& acc) {
  if (shard_index == st->folded) {
    st->global.Merge(acc);
    ++st->folded;
    while (!st->pending.empty() && st->pending.begin()->first == st->folded) {
      st->global.Merge(st->pending.begin()->second);
      ++st->folded;
      st->pending.erase(st->pending.begin());
    }
  } else {
    st->pending.emplace(shard_index, std::move(acc));
  }
}

}  // namespace

Result<FleetOutcome> RunFleet(const CampaignSpec& spec, const FleetSpec& fleet,
                              const FleetRunOptions& options) {
  if (fleet.device_count == 0 || fleet.devices.empty() ||
      fleet.workloads.empty()) {
    return InvalidArgumentError("fleet '" + fleet.name + "' is empty");
  }
  const uint64_t shard_count = FleetShardCount(fleet);
  const bool checkpoint_enabled =
      !options.checkpoint_path.empty() && options.checkpoint_every_shards > 0;
  const uint64_t fingerprint = FleetSpecFingerprint(spec, fleet);

  FleetRunState st;
  st.shard_count = shard_count;
  st.global.Init(fleet.devices, fleet.survival_bin_hours);

  if (!options.resume_path.empty()) {
    Result<FleetCheckpointState> loaded =
        ReadFleetCheckpoint(options.resume_path, spec, fleet);
    FLASHSIM_RETURN_IF_ERROR(loaded.status());
    FleetCheckpointState& cp = loaded.value();
    st.global = std::move(cp.global);
    st.folded = cp.folded_prefix;
    for (auto& [shard_id, acc] : cp.pending) {
      st.pending.emplace(shard_id, std::move(acc));
    }
    st.resumed = std::move(cp.inflight);
    st.next_fresh = cp.next_fresh_shard;
  }

  const auto wall_start = SteadyClock::now();
  const int threads = std::max(1, options.threads);
  st.active = threads;
  st.workers.resize(static_cast<size_t>(threads));

  auto worker = [&](int wid) {
    FleetWorkerScratch scratch;
    for (;;) {
      FleetShard* shard = nullptr;
      uint64_t position = 0;
      bool stole = false;
      {
        std::unique_lock<std::mutex> lock(st.mu);
        for (;;) {
          // Quiesce while a checkpoint is being written. Workers only pause
          // here — holding no claim — so a quiesced fleet has every device
          // parked at a slice boundary and every shard serializable.
          while (st.checkpoint_requested && !st.stop) {
            ++st.paused;
            st.cv.notify_all();
            st.cv.wait(lock,
                       [&] { return !st.checkpoint_requested || st.stop; });
            --st.paused;
          }
          if (st.stop || !st.error.ok()) {
            break;
          }
          // Steal pass: any claimable device in an in-flight shard.
          for (InflightShard& inf : st.inflight) {
            if (inf.shard->Claim(&position)) {
              shard = inf.shard.get();
              stole = inf.admitted_by != wid;
              break;
            }
          }
          if (shard != nullptr) {
            break;
          }
          // Nothing claimable: admit the next shard if any remain.
          if (st.next_resumed < st.resumed.size()) {
            InflightShard inf;
            inf.shard = std::move(st.resumed[st.next_resumed++]);
            inf.admitted_by = wid;
            inf.admitted_at = SteadyClock::now();
            st.inflight.push_back(std::move(inf));
            continue;  // claim from it on the next pass
          }
          if (st.next_fresh < st.shard_count) {
            const uint64_t index = st.next_fresh++;
            lock.unlock();
            auto fresh = std::make_unique<FleetShard>(&spec, &fleet);
            fresh->InitFresh(index);
            lock.lock();
            InflightShard inf;
            inf.shard = std::move(fresh);
            inf.admitted_by = wid;
            inf.admitted_at = SteadyClock::now();
            st.inflight.push_back(std::move(inf));
            continue;
          }
          if (st.inflight.empty()) {
            break;  // no sources, nothing in flight: fleet finished
          }
          // In-flight shards exist but every unfinished device is claimed
          // by some other worker; wait for a release to open one up.
          st.cv.wait(lock);
        }
        if (shard == nullptr) {
          break;  // stop, error, or no work left
        }
        if (stole) {
          ++st.steals;
        }
      }

      const auto t0 = SteadyClock::now();
      FleetSliceResult result;
      const Status s = shard->RunSlice(position, &scratch, &result);
      const double dt =
          std::chrono::duration<double>(SteadyClock::now() - t0).count();

      {
        std::lock_guard<std::mutex> lock(st.mu);
        if (!s.ok()) {
          if (st.error.ok()) {
            st.error = s;
          }
          st.stop = true;
          st.cv.notify_all();
          break;
        }
        WorkerStats& ws = st.workers[static_cast<size_t>(wid)];
        ++ws.slices;
        ws.busy_seconds += dt;
        if (!result.finished) {
          ++st.park.park_events;
          st.park.raw_bytes += result.parked_raw_bytes;
          st.park.stored_bytes += result.stored_bytes;
          st.park.resident_bytes += result.resident_bytes;
          if (result.delta_park) {
            ++st.park.delta_parks;
          } else if (result.rebase) {
            ++st.park.rebases;
          } else {
            ++st.park.full_parks;
          }
        }
        shard->Release(position, std::move(result));
        if (shard->Done()) {
          const uint64_t index = shard->shard_index();
          for (size_t i = 0; i < st.inflight.size(); ++i) {
            if (st.inflight[i].shard.get() == shard) {
              st.shard_seconds_max = std::max(
                  st.shard_seconds_max,
                  std::chrono::duration<double>(SteadyClock::now() -
                                                st.inflight[i].admitted_at)
                      .count());
              FoldShardLocked(&st, index,
                              std::move(st.inflight[i].shard->accumulator()));
              st.inflight.erase(st.inflight.begin() +
                                static_cast<ptrdiff_t>(i));
              break;
            }
          }
          ++st.shards_since_checkpoint;
          if (checkpoint_enabled && !st.checkpoint_requested && !st.stop &&
              st.shards_since_checkpoint >= options.checkpoint_every_shards) {
            st.shards_since_checkpoint = 0;
            st.checkpoint_requested = true;
            st.cp_flag.store(true, std::memory_order_relaxed);
          }
        }
        // A release can open a claimable device (or finish the fleet);
        // wake anyone waiting for work or for quiesce.
        st.cv.notify_all();
      }
    }
    {
      std::lock_guard<std::mutex> lock(st.mu);
      st.park.scratch_grows += scratch.GrowCount();
      --st.active;
      st.cv.notify_all();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back(worker, t);
  }

  // Coordinator: writes checkpoints whenever all live workers are quiesced.
  {
    std::unique_lock<std::mutex> lock(st.mu);
    for (;;) {
      st.cv.wait(lock, [&] {
        return st.active == 0 ||
               (st.checkpoint_requested && !st.stop &&
                st.paused == st.active);
      });
      if (st.active == 0) {
        break;
      }
      FleetCheckpointWriteView view;
      view.fingerprint = fingerprint;
      view.device_count = fleet.device_count;
      view.shard_count = shard_count;
      view.next_fresh_shard = st.next_fresh;
      view.folded_prefix = st.folded;
      view.global = &st.global;
      for (const auto& [shard_id, acc] : st.pending) {
        view.pending.emplace_back(shard_id, &acc);
      }
      for (const InflightShard& inf : st.inflight) {
        view.inflight.push_back(inf.shard.get());
      }
      // Resumed-but-unclaimed shards are in flight too: nobody holds them,
      // but they are neither folded nor pending.
      for (size_t i = st.next_resumed; i < st.resumed.size(); ++i) {
        view.inflight.push_back(st.resumed[i].get());
      }
      const Status written =
          WriteFleetCheckpoint(options.checkpoint_path, view);
      if (!written.ok() && st.error.ok()) {
        st.error = written;
        st.stop = true;
      } else {
        ++st.checkpoints_written;
        if (options.stop_after_checkpoints > 0 &&
            st.checkpoints_written >= options.stop_after_checkpoints) {
          st.stop = true;
        }
      }
      st.checkpoint_requested = false;
      st.cp_flag.store(false, std::memory_order_relaxed);
      st.cv.notify_all();
      if (st.stop) {
        st.cv.wait(lock, [&] { return st.active == 0; });
        break;
      }
    }
  }
  for (std::thread& t : pool) {
    t.join();
  }
  if (!st.error.ok()) {
    return st.error;
  }

  FleetOutcome outcome;
  outcome.campaign = spec.name;
  outcome.fleet = fleet.name;
  outcome.seed = spec.seed;
  outcome.device_count = fleet.device_count;
  outcome.shard_count = shard_count;
  outcome.acc = std::move(st.global);
  outcome.completed = st.folded == shard_count;
  outcome.checkpoints_written = st.checkpoints_written;
  outcome.park = st.park;
  outcome.sched.workers = threads;
  outcome.sched.steals = st.steals;
  outcome.sched.shard_seconds_max = st.shard_seconds_max;
  bool first = true;
  for (const WorkerStats& ws : st.workers) {
    outcome.sched.slices += ws.slices;
    outcome.sched.busy_seconds_total += ws.busy_seconds;
    outcome.sched.busy_seconds_min =
        first ? ws.busy_seconds
              : std::min(outcome.sched.busy_seconds_min, ws.busy_seconds);
    outcome.sched.busy_seconds_max =
        std::max(outcome.sched.busy_seconds_max, ws.busy_seconds);
    first = false;
  }
  outcome.wall_seconds =
      std::chrono::duration<double>(SteadyClock::now() - wall_start).count();
  return outcome;
}

}  // namespace flashsim
