#include "src/fleet/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/fleet/checkpoint.h"
#include "src/fleet/shard.h"

namespace flashsim {

namespace {

// All cross-worker state, guarded by `mu` (the cp_flag mirror is atomic so
// slice loops can poll it without taking the lock).
struct FleetRunState {
  std::mutex mu;
  std::condition_variable cv;

  // Shard sourcing: resumed in-flight shards drain first, then fresh indices.
  std::vector<std::unique_ptr<FleetShard>> resumed;
  size_t next_resumed = 0;
  uint64_t next_fresh = 0;
  uint64_t shard_count = 0;

  // In-order fold.
  uint64_t folded = 0;  // shards [0, folded) merged into global
  FleetAccumulator global;
  std::map<uint64_t, FleetAccumulator> pending;  // done, awaiting their turn

  // Checkpoint coordination.
  bool checkpoint_requested = false;
  std::atomic<bool> cp_flag{false};
  bool stop = false;
  int active = 0;
  int paused = 0;
  std::vector<const FleetShard*> paused_shards;  // held by paused workers
  uint64_t shards_since_checkpoint = 0;
  uint64_t checkpoints_written = 0;

  Status error;
};

void FoldShardLocked(FleetRunState* st, uint64_t shard_index,
                     FleetAccumulator&& acc) {
  if (shard_index == st->folded) {
    st->global.Merge(acc);
    ++st->folded;
    while (!st->pending.empty() && st->pending.begin()->first == st->folded) {
      st->global.Merge(st->pending.begin()->second);
      ++st->folded;
      st->pending.erase(st->pending.begin());
    }
  } else {
    st->pending.emplace(shard_index, std::move(acc));
  }
}

}  // namespace

Result<FleetOutcome> RunFleet(const CampaignSpec& spec, const FleetSpec& fleet,
                              const FleetRunOptions& options) {
  if (fleet.device_count == 0 || fleet.devices.empty() ||
      fleet.workloads.empty()) {
    return InvalidArgumentError("fleet '" + fleet.name + "' is empty");
  }
  const uint64_t shard_count = FleetShardCount(fleet);
  const bool checkpoint_enabled =
      !options.checkpoint_path.empty() && options.checkpoint_every_shards > 0;
  const uint64_t fingerprint = FleetSpecFingerprint(spec, fleet);

  FleetRunState st;
  st.shard_count = shard_count;
  st.global.Init(fleet.devices, fleet.survival_bin_hours);

  if (!options.resume_path.empty()) {
    Result<FleetCheckpointState> loaded =
        ReadFleetCheckpoint(options.resume_path, spec, fleet);
    FLASHSIM_RETURN_IF_ERROR(loaded.status());
    FleetCheckpointState& cp = loaded.value();
    st.global = std::move(cp.global);
    st.folded = cp.folded_prefix;
    for (auto& [shard_id, acc] : cp.pending) {
      st.pending.emplace(shard_id, std::move(acc));
    }
    st.resumed = std::move(cp.inflight);
    st.next_fresh = cp.next_fresh_shard;
  }

  const auto wall_start = std::chrono::steady_clock::now();
  const int threads = std::max(1, options.threads);
  st.active = threads;

  auto worker = [&]() {
    for (;;) {
      std::unique_ptr<FleetShard> shard;
      {
        std::unique_lock<std::mutex> lock(st.mu);
        // Quiesce between shards while a checkpoint is being written.
        while (st.checkpoint_requested && !st.stop) {
          ++st.paused;
          st.cv.notify_all();
          st.cv.wait(lock,
                     [&] { return !st.checkpoint_requested || st.stop; });
          --st.paused;
        }
        if (st.stop || !st.error.ok()) {
          break;
        }
        if (st.next_resumed < st.resumed.size()) {
          shard = std::move(st.resumed[st.next_resumed++]);
        } else if (st.next_fresh < st.shard_count) {
          const uint64_t index = st.next_fresh++;
          lock.unlock();
          shard = std::make_unique<FleetShard>(&spec, &fleet);
          shard->InitFresh(index);
        } else {
          break;  // no work left
        }
      }

      bool abandoned = false;
      while (!shard->Done()) {
        if (st.cp_flag.load(std::memory_order_relaxed)) {
          std::unique_lock<std::mutex> lock(st.mu);
          if (st.checkpoint_requested && !st.stop) {
            // Every device in this shard is parked at a slice boundary, so
            // the shard is serializable as-is.
            st.paused_shards.push_back(shard.get());
            ++st.paused;
            st.cv.notify_all();
            st.cv.wait(lock,
                       [&] { return !st.checkpoint_requested || st.stop; });
            --st.paused;
            st.paused_shards.erase(
                std::find(st.paused_shards.begin(), st.paused_shards.end(),
                          shard.get()));
          }
          if (st.stop || !st.error.ok()) {
            abandoned = true;  // state lives on in the checkpoint file
            break;
          }
        }
        const Status s = shard->RunSlice();
        if (!s.ok()) {
          std::lock_guard<std::mutex> lock(st.mu);
          if (st.error.ok()) {
            st.error = s;
          }
          st.stop = true;
          st.cv.notify_all();
          abandoned = true;
          break;
        }
      }
      if (abandoned) {
        break;
      }

      {
        std::lock_guard<std::mutex> lock(st.mu);
        FoldShardLocked(&st, shard->shard_index(),
                        std::move(shard->accumulator()));
        ++st.shards_since_checkpoint;
        if (checkpoint_enabled && !st.checkpoint_requested && !st.stop &&
            st.shards_since_checkpoint >= options.checkpoint_every_shards) {
          st.shards_since_checkpoint = 0;
          st.checkpoint_requested = true;
          st.cp_flag.store(true, std::memory_order_relaxed);
          st.cv.notify_all();
        }
      }
    }
    {
      std::lock_guard<std::mutex> lock(st.mu);
      --st.active;
      st.cv.notify_all();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back(worker);
  }

  // Coordinator: writes checkpoints whenever all live workers are quiesced.
  {
    std::unique_lock<std::mutex> lock(st.mu);
    for (;;) {
      st.cv.wait(lock, [&] {
        return st.active == 0 ||
               (st.checkpoint_requested && !st.stop &&
                st.paused == st.active);
      });
      if (st.active == 0) {
        break;
      }
      FleetCheckpointWriteView view;
      view.fingerprint = fingerprint;
      view.device_count = fleet.device_count;
      view.shard_count = shard_count;
      view.next_fresh_shard = st.next_fresh;
      view.folded_prefix = st.folded;
      view.global = &st.global;
      for (const auto& [shard_id, acc] : st.pending) {
        view.pending.emplace_back(shard_id, &acc);
      }
      view.inflight = st.paused_shards;
      // Resumed-but-unclaimed shards are in flight too: nobody holds them,
      // but they are neither folded nor pending.
      for (size_t i = st.next_resumed; i < st.resumed.size(); ++i) {
        view.inflight.push_back(st.resumed[i].get());
      }
      const Status written =
          WriteFleetCheckpoint(options.checkpoint_path, view);
      if (!written.ok() && st.error.ok()) {
        st.error = written;
        st.stop = true;
      } else {
        ++st.checkpoints_written;
        if (options.stop_after_checkpoints > 0 &&
            st.checkpoints_written >= options.stop_after_checkpoints) {
          st.stop = true;
        }
      }
      st.checkpoint_requested = false;
      st.cp_flag.store(false, std::memory_order_relaxed);
      st.cv.notify_all();
      if (st.stop) {
        st.cv.wait(lock, [&] { return st.active == 0; });
        break;
      }
    }
  }
  for (std::thread& t : pool) {
    t.join();
  }
  if (!st.error.ok()) {
    return st.error;
  }

  FleetOutcome outcome;
  outcome.campaign = spec.name;
  outcome.fleet = fleet.name;
  outcome.seed = spec.seed;
  outcome.device_count = fleet.device_count;
  outcome.shard_count = shard_count;
  outcome.acc = std::move(st.global);
  outcome.completed = st.folded == shard_count;
  outcome.checkpoints_written = st.checkpoints_written;
  outcome.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return outcome;
}

}  // namespace flashsim
