#include "src/fleet/aggregate.h"

#include <cmath>
#include <utility>

namespace flashsim {

namespace {

constexpr uint32_t kModelTag = SnapshotTag("FMOD");
constexpr uint32_t kAccTag = SnapshotTag("FACC");

}  // namespace

void FleetDeviceOutcome::Save(SnapshotWriter& w) const {
  w.U32(model_index);
  w.Bool(bricked);
  w.Bool(reached_level);
  w.F64(days);
  w.F64(host_gib);
  w.F64(device_wa);
  w.U64(level_days.size());
  for (const auto& [level, day] : level_days) {
    w.U32(level);
    w.F64(day);
  }
}

Status FleetDeviceOutcome::Load(SnapshotReader& r) {
  model_index = r.U32();
  bricked = r.Bool();
  reached_level = r.Bool();
  days = r.F64();
  host_gib = r.F64();
  device_wa = r.F64();
  const uint64_t n = r.U64();
  level_days.clear();
  for (uint64_t i = 0; i < n && r.ok(); ++i) {
    const uint32_t level = r.U32();
    level_days.emplace_back(level, r.F64());
  }
  return r.status();
}

void FleetModelStats::Merge(const FleetModelStats& other) {
  devices += other.devices;
  bricked += other.bricked;
  reached_level += other.reached_level;
  brick_days.Merge(other.brick_days);
  brick_day_hist.Merge(other.brick_day_hist);
  host_gib.Merge(other.host_gib);
  device_wa.Merge(other.device_wa);
  for (size_t i = 0; i < level_days.size(); ++i) {
    level_days[i].Merge(other.level_days[i]);
  }
}

void FleetModelStats::Save(SnapshotWriter& w) const {
  w.BeginSection(kModelTag);
  w.U64(devices);
  w.U64(bricked);
  w.U64(reached_level);
  brick_days.Save(w);
  brick_day_hist.Save(w);
  host_gib.Save(w);
  device_wa.Save(w);
  for (const WearDigest& d : level_days) {
    d.Save(w);
  }
  w.EndSection();
}

Status FleetModelStats::Load(SnapshotReader& r) {
  FLASHSIM_RETURN_IF_ERROR(r.EnterSection(kModelTag));
  devices = r.U64();
  bricked = r.U64();
  reached_level = r.U64();
  FLASHSIM_RETURN_IF_ERROR(brick_days.Load(r));
  FLASHSIM_RETURN_IF_ERROR(brick_day_hist.Load(r));
  FLASHSIM_RETURN_IF_ERROR(host_gib.Load(r));
  FLASHSIM_RETURN_IF_ERROR(device_wa.Load(r));
  for (WearDigest& d : level_days) {
    FLASHSIM_RETURN_IF_ERROR(d.Load(r));
  }
  r.LeaveSection();
  return r.status();
}

void FleetAccumulator::Init(const std::vector<std::string>& model_slugs,
                            double survival_bin_hours) {
  model_slugs_ = model_slugs;
  models_.assign(model_slugs.size(), FleetModelStats{});
  survival_bin_hours_ = survival_bin_hours;
  parked_raw_ = MergeStats{};
  shard_slices_ = MergeStats{};
}

void FleetAccumulator::AddOutcome(const FleetDeviceOutcome& outcome) {
  if (outcome.model_index >= models_.size()) {
    return;  // defensive; assignment is validated upstream
  }
  FleetModelStats& m = models_[outcome.model_index];
  ++m.devices;
  if (outcome.bricked) {
    ++m.bricked;
    m.brick_days.Add(outcome.days);
    const double bin_days = survival_bin_hours_ / 24.0;
    m.brick_day_hist.Add(
        static_cast<uint32_t>(std::floor(outcome.days / bin_days)));
  }
  if (outcome.reached_level) {
    ++m.reached_level;
  }
  m.host_gib.Add(outcome.host_gib);
  m.device_wa.Add(outcome.device_wa);
  for (const auto& [level, day] : outcome.level_days) {
    if (level <= kMaxWearLevel) {
      m.level_days[level].Add(day);
    }
  }
}

void FleetAccumulator::AddParkedSample(uint64_t raw_bytes) {
  parked_raw_.Add(static_cast<double>(raw_bytes));
}

void FleetAccumulator::AddShardSlices(uint64_t slices) {
  shard_slices_.Add(static_cast<double>(slices));
}

void FleetAccumulator::Merge(const FleetAccumulator& other) {
  if (model_slugs_.empty()) {
    *this = other;
    return;
  }
  for (size_t i = 0; i < models_.size() && i < other.models_.size(); ++i) {
    models_[i].Merge(other.models_[i]);
  }
  parked_raw_.Merge(other.parked_raw_);
  shard_slices_.Merge(other.shard_slices_);
}

uint64_t FleetAccumulator::DevicesDone() const {
  uint64_t total = 0;
  for (const FleetModelStats& m : models_) {
    total += m.devices;
  }
  return total;
}

uint64_t FleetAccumulator::DevicesBricked() const {
  uint64_t total = 0;
  for (const FleetModelStats& m : models_) {
    total += m.bricked;
  }
  return total;
}

void FleetAccumulator::Save(SnapshotWriter& w) const {
  w.BeginSection(kAccTag);
  w.U64(model_slugs_.size());
  for (const std::string& slug : model_slugs_) {
    w.Str(slug);
  }
  w.F64(survival_bin_hours_);
  parked_raw_.Save(w);
  shard_slices_.Save(w);
  for (const FleetModelStats& m : models_) {
    m.Save(w);
  }
  w.EndSection();
}

Status FleetAccumulator::Load(SnapshotReader& r) {
  FLASHSIM_RETURN_IF_ERROR(r.EnterSection(kAccTag));
  const uint64_t n_models = r.U64();
  model_slugs_.clear();
  for (uint64_t i = 0; i < n_models && r.ok(); ++i) {
    model_slugs_.push_back(r.Str());
  }
  survival_bin_hours_ = r.F64();
  FLASHSIM_RETURN_IF_ERROR(parked_raw_.Load(r));
  FLASHSIM_RETURN_IF_ERROR(shard_slices_.Load(r));
  models_.assign(model_slugs_.size(), FleetModelStats{});
  for (FleetModelStats& m : models_) {
    FLASHSIM_RETURN_IF_ERROR(m.Load(r));
  }
  r.LeaveSection();
  return r.status();
}

}  // namespace flashsim
