#include "src/fleet/park.h"

#include <cstring>

namespace flashsim {

namespace {

void PutVarint(std::vector<uint8_t>* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

bool GetVarint(const uint8_t* in, size_t size, size_t* pos, uint64_t* v) {
  *v = 0;
  for (uint32_t shift = 0; shift < 64; shift += 7) {
    if (*pos >= size) {
      return false;
    }
    const uint8_t byte = in[(*pos)++];
    *v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      return true;
    }
  }
  return false;
}

// Zero runs shorter than this cost more to encode (two varints) than to
// carry literally.
constexpr size_t kMinZeroRun = 4;

constexpr uint64_t kLow01 = 0x0101010101010101ULL;
constexpr uint64_t kHigh80 = 0x8080808080808080ULL;

inline uint64_t LoadWord(const uint8_t* p) {
  uint64_t w;
  std::memcpy(&w, p, sizeof(w));
  return w;
}

// First index >= pos holding a zero byte, or size. Steps a word at a time
// using the SWAR has-zero-byte test; the byte scan only runs on the word
// that actually contains a zero.
size_t FindNextZero(const uint8_t* p, size_t size, size_t pos) {
  while (pos + 8 <= size) {
    const uint64_t w = LoadWord(p + pos);
    if (((w - kLow01) & ~w & kHigh80) != 0) {
      break;
    }
    pos += 8;
  }
  while (pos < size && p[pos] != 0) {
    ++pos;
  }
  return pos;
}

// End of the zero run starting at pos (whole zero words are skipped eight
// bytes at a time).
size_t SkipZeros(const uint8_t* p, size_t size, size_t pos) {
  while (pos + 8 <= size && LoadWord(p + pos) == 0) {
    pos += 8;
  }
  while (pos < size && p[pos] == 0) {
    ++pos;
  }
  return pos;
}

// Appends the zero-run stream for raw[0, size) to `out` (no clear) —
// identical bytes to the PR6 byte-at-a-time packer.
void PackZeroRunsAppend(const uint8_t* raw, size_t size,
                        std::vector<uint8_t>* out) {
  PutVarint(out, size);
  size_t pos = 0;
  while (pos < size) {
    // Literal run: up to the next zero run worth encoding.
    size_t lit_end = pos;
    size_t zero_end = pos;
    for (;;) {
      lit_end = FindNextZero(raw, size, lit_end);
      if (lit_end == size) {
        zero_end = size;
        break;
      }
      zero_end = SkipZeros(raw, size, lit_end);
      if (zero_end - lit_end >= kMinZeroRun) {
        break;
      }
      lit_end = zero_end;
    }
    PutVarint(out, lit_end - pos);
    out->insert(out->end(), raw + pos, raw + lit_end);
    pos = lit_end;
    if (pos == size) {
      break;  // no trailing zero run after a final literal
    }
    PutVarint(out, zero_end - pos);
    pos = zero_end;
  }
}

// Decodes a zero-run stream occupying exactly packed[0, size). All bounds
// checks are in subtraction form: the run lengths are attacker-controlled
// varints, so `pos + lit` style additions could wrap uint64 and pass.
Status UnpackZeroRunsRange(const uint8_t* packed, size_t size,
                           std::vector<uint8_t>* out, size_t max_raw_size) {
  size_t pos = 0;
  uint64_t raw_size = 0;
  if (!GetVarint(packed, size, &pos, &raw_size)) {
    return DataLossError("parked blob: truncated size header");
  }
  if (raw_size > max_raw_size) {
    return DataLossError("parked blob: implausible raw size");
  }
  out->clear();
  out->reserve(raw_size);
  while (out->size() < raw_size) {
    uint64_t lit = 0;
    if (!GetVarint(packed, size, &pos, &lit) || lit > size - pos ||
        lit > raw_size - out->size()) {
      return DataLossError("parked blob: bad literal run");
    }
    out->insert(out->end(), packed + pos, packed + pos + lit);
    pos += lit;
    if (out->size() == raw_size) {
      break;
    }
    uint64_t zeros = 0;
    if (!GetVarint(packed, size, &pos, &zeros) ||
        zeros > raw_size - out->size()) {
      return DataLossError("parked blob: bad zero run");
    }
    out->resize(out->size() + zeros, 0);
  }
  if (out->size() != raw_size || pos != size) {
    return DataLossError("parked blob: size mismatch");
  }
  return Status::Ok();
}

// 8-lane byte transpose: dst holds byte k of every u64 word contiguously
// (lane k = src[k], src[k+8], src[k+16], ...), then the sub-word tail
// verbatim. Self-inverse up to the lane/word index swap below.
void Transpose8(const uint8_t* src, size_t size, uint8_t* dst) {
  if (size == 0) {
    return;  // src/dst may be null for an empty image
  }
  const size_t words = size / 8;
  for (size_t lane = 0; lane < 8; ++lane) {
    const uint8_t* s = src + lane;
    uint8_t* d = dst + lane * words;
    for (size_t w = 0; w < words; ++w) {
      d[w] = s[w * 8];
    }
  }
  std::memcpy(dst + words * 8, src + words * 8, size - words * 8);
}

// Inverse of Transpose8: lane k of the image scatters back to bytes
// k, k+8, k+16, ... of the raw snapshot.
void Untranspose8Into(const std::vector<uint8_t>& img,
                      std::vector<uint8_t>* raw) {
  const size_t size = img.size();
  raw->resize(size);
  if (size == 0) {
    return;
  }
  const size_t words = size / 8;
  for (size_t lane = 0; lane < 8; ++lane) {
    const uint8_t* s = img.data() + lane * words;
    uint8_t* d = raw->data() + lane;
    for (size_t w = 0; w < words; ++w) {
      d[w * 8] = s[w];
    }
  }
  std::memcpy(raw->data() + words * 8, img.data() + words * 8,
              size - words * 8);
}

// Reads only the raw-size header of a zero-run stream.
bool PeekRawSize(const uint8_t* packed, size_t size, uint64_t* raw_size) {
  size_t pos = 0;
  return GetVarint(packed, size, &pos, raw_size);
}

// XORs the literal runs of a zero-run stream onto img[0, img_size); zero
// runs advance the cursor without touching memory, so the cost is the
// delta's literal bytes, not the image size. The stream's recorded raw size
// must equal img_size (callers peek it first to route resizes elsewhere).
Status XorZeroRunsOnto(const uint8_t* packed, size_t size, uint8_t* img,
                       size_t img_size) {
  size_t pos = 0;
  uint64_t raw_size = 0;
  if (!GetVarint(packed, size, &pos, &raw_size)) {
    return DataLossError("parked blob: truncated size header");
  }
  if (raw_size != img_size) {
    return DataLossError("parked delta: size mismatch with base");
  }
  size_t out = 0;
  while (out < raw_size) {
    uint64_t lit = 0;
    if (!GetVarint(packed, size, &pos, &lit) || lit > size - pos ||
        lit > raw_size - out) {
      return DataLossError("parked blob: bad literal run");
    }
    for (size_t i = 0; i < lit; ++i) {
      img[out + i] = static_cast<uint8_t>(img[out + i] ^ packed[pos + i]);
    }
    pos += lit;
    out += lit;
    if (out == raw_size) {
      break;
    }
    uint64_t zeros = 0;
    if (!GetVarint(packed, size, &pos, &zeros) ||
        zeros > raw_size - out) {
      return DataLossError("parked blob: bad zero run");
    }
    out += zeros;
  }
  if (out != raw_size || pos != size) {
    return DataLossError("parked blob: size mismatch");
  }
  return Status::Ok();
}

}  // namespace

void PackZeroRunsInto(const uint8_t* raw, size_t size,
                      std::vector<uint8_t>* out) {
  out->clear();
  out->reserve(size / 3 + 16);
  PackZeroRunsAppend(raw, size, out);
}

Status UnpackZeroRunsInto(const uint8_t* packed, size_t size,
                          std::vector<uint8_t>* out, size_t max_raw_size) {
  return UnpackZeroRunsRange(packed, size, out, max_raw_size);
}

std::vector<uint8_t> PackZeroRuns(const std::vector<uint8_t>& raw) {
  std::vector<uint8_t> out;
  PackZeroRunsInto(raw.data(), raw.size(), &out);
  return out;
}

Status UnpackZeroRuns(const std::vector<uint8_t>& packed,
                      std::vector<uint8_t>* out) {
  return UnpackZeroRunsInto(packed.data(), packed.size(), out);
}

void ParkPackFull(const std::vector<uint8_t>& raw, bool transpose,
                  ParkScratch* scratch, std::vector<uint8_t>* out) {
  out->clear();
  out->reserve(raw.size() / 3 + 16);
  if (!transpose) {
    out->push_back(kParkFull);
    PackZeroRunsAppend(raw.data(), raw.size(), out);
    return;
  }
  uint8_t* img = scratch->image.Acquire(raw.size());
  Transpose8(raw.data(), raw.size(), img);
  out->push_back(kParkFullT8);
  PackZeroRunsAppend(img, raw.size(), out);
}

void ParkPackDelta(const std::vector<uint8_t>& cur,
                   const std::vector<uint8_t>& base, ParkScratch* scratch,
                   std::vector<uint8_t>* out) {
  const size_t size = cur.size();
  uint8_t* img = scratch->image.Acquire(size);
  if (size == 0) {
    // fall through to pack an empty image
  } else if (base.size() == size) {
    // Fused XOR + transpose: strided reads, sequential writes.
    const size_t words = size / 8;
    for (size_t lane = 0; lane < 8; ++lane) {
      const uint8_t* c = cur.data() + lane;
      const uint8_t* b = base.data() + lane;
      uint8_t* d = img + lane * words;
      for (size_t w = 0; w < words; ++w) {
        d[w] = static_cast<uint8_t>(c[w * 8] ^ b[w * 8]);
      }
    }
    for (size_t i = words * 8; i < size; ++i) {
      img[words * 8 + (i - words * 8)] =
          static_cast<uint8_t>(cur[i] ^ base[i]);
    }
  } else {
    // Sizes differ (rare: snapshot grew/shrank since the base was taken).
    // XOR against the zero-padded/truncated base, then transpose.
    uint8_t* x = scratch->xored.Acquire(size);
    const size_t common = std::min(size, base.size());
    for (size_t i = 0; i < common; ++i) {
      x[i] = static_cast<uint8_t>(cur[i] ^ base[i]);
    }
    if (size > common) {
      std::memcpy(x + common, cur.data() + common, size - common);
    }
    Transpose8(x, size, img);
  }
  out->clear();
  out->reserve(size / 8 + 16);
  out->push_back(kParkDelta);
  PackZeroRunsAppend(img, size, out);
}

Status ParkUnpackFull(const std::vector<uint8_t>& blob, ParkScratch* scratch,
                      std::vector<uint8_t>* raw) {
  if (blob.empty()) {
    return DataLossError("park blob: empty");
  }
  if (blob[0] == kParkFull) {
    return UnpackZeroRunsRange(blob.data() + 1, blob.size() - 1, raw,
                               kParkMaxRawBytes);
  }
  if (blob[0] != kParkFullT8) {
    return DataLossError("park blob: bad format tag");
  }
  std::vector<uint8_t>& img = scratch->image.AcquireEmpty();
  Status st =
      UnpackZeroRunsRange(blob.data() + 1, blob.size() - 1, &img,
                          kParkMaxRawBytes);
  if (!st.ok()) {
    return st;
  }
  Untranspose8Into(img, raw);
  return Status::Ok();
}

Status ParkApplyDelta(const std::vector<uint8_t>& blob, ParkScratch* scratch,
                      std::vector<uint8_t>* raw) {
  if (blob.empty() || blob[0] != kParkDelta) {
    return DataLossError("park blob: bad delta tag");
  }
  std::vector<uint8_t>& img = scratch->image.AcquireEmpty();
  Status st =
      UnpackZeroRunsRange(blob.data() + 1, blob.size() - 1, &img,
                          kParkMaxRawBytes);
  if (!st.ok()) {
    return st;
  }
  const size_t size = img.size();
  // The delta was taken against `raw` zero-padded/truncated to the packed
  // snapshot's size, so reshape first, then XOR the untransposed image in.
  raw->resize(size, 0);
  const size_t words = size / 8;
  for (size_t lane = 0; size != 0 && lane < 8; ++lane) {
    const uint8_t* s = img.data() + lane * words;
    uint8_t* d = raw->data() + lane;
    for (size_t w = 0; w < words; ++w) {
      d[w * 8] = static_cast<uint8_t>(d[w * 8] ^ s[w]);
    }
  }
  for (size_t i = words * 8; i < size; ++i) {
    (*raw)[i] = static_cast<uint8_t>((*raw)[i] ^ img[i]);
  }
  return Status::Ok();
}

Status ParkUnpackChain(const std::vector<uint8_t>& base,
                       const std::vector<std::vector<uint8_t>>& chain,
                       ParkScratch* scratch, std::vector<uint8_t>* raw) {
  size_t next = 0;
  if (!chain.empty() && !base.empty() && base[0] == kParkFullT8) {
    // Fold size-stable deltas in transposed space: unpack the base image,
    // XOR each delta's literals straight onto it, untranspose once.
    std::vector<uint8_t>& img = scratch->image.AcquireEmpty();
    FLASHSIM_RETURN_IF_ERROR(UnpackZeroRunsRange(base.data() + 1,
                                                 base.size() - 1, &img,
                                                 kParkMaxRawBytes));
    while (next < chain.size()) {
      const std::vector<uint8_t>& delta = chain[next];
      if (delta.empty() || delta[0] != kParkDelta) {
        return DataLossError("park blob: bad delta tag");
      }
      uint64_t delta_raw = 0;
      if (!PeekRawSize(delta.data() + 1, delta.size() - 1, &delta_raw)) {
        return DataLossError("parked blob: truncated size header");
      }
      if (delta_raw != img.size()) {
        break;  // snapshot resized here: finish via the general path
      }
      FLASHSIM_RETURN_IF_ERROR(XorZeroRunsOnto(delta.data() + 1,
                                               delta.size() - 1, img.data(),
                                               img.size()));
      ++next;
    }
    Untranspose8Into(img, raw);
  } else {
    FLASHSIM_RETURN_IF_ERROR(ParkUnpackFull(base, scratch, raw));
  }
  for (; next < chain.size(); ++next) {
    FLASHSIM_RETURN_IF_ERROR(ParkApplyDelta(chain[next], scratch, raw));
  }
  return Status::Ok();
}

}  // namespace flashsim
