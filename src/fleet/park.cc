#include "src/fleet/park.h"

namespace flashsim {

namespace {

void PutVarint(std::vector<uint8_t>* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

bool GetVarint(const std::vector<uint8_t>& in, size_t* pos, uint64_t* v) {
  *v = 0;
  for (uint32_t shift = 0; shift < 64; shift += 7) {
    if (*pos >= in.size()) {
      return false;
    }
    const uint8_t byte = in[(*pos)++];
    *v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      return true;
    }
  }
  return false;
}

// Zero runs shorter than this cost more to encode (two varints) than to
// carry literally.
constexpr size_t kMinZeroRun = 4;

}  // namespace

std::vector<uint8_t> PackZeroRuns(const std::vector<uint8_t>& raw) {
  std::vector<uint8_t> out;
  out.reserve(raw.size() / 3 + 16);
  PutVarint(&out, raw.size());
  size_t pos = 0;
  while (pos < raw.size()) {
    // Literal run: up to the next worthwhile zero run.
    size_t lit_end = pos;
    while (lit_end < raw.size()) {
      if (raw[lit_end] == 0) {
        size_t z = lit_end;
        while (z < raw.size() && raw[z] == 0) {
          ++z;
        }
        if (z - lit_end >= kMinZeroRun) {
          break;
        }
        lit_end = z;
      } else {
        ++lit_end;
      }
    }
    PutVarint(&out, lit_end - pos);
    out.insert(out.end(), raw.begin() + static_cast<ptrdiff_t>(pos),
               raw.begin() + static_cast<ptrdiff_t>(lit_end));
    pos = lit_end;
    if (pos == raw.size()) {
      break;  // no trailing zero run after a final literal
    }
    size_t zero_end = pos;
    while (zero_end < raw.size() && raw[zero_end] == 0) {
      ++zero_end;
    }
    PutVarint(&out, zero_end - pos);
    pos = zero_end;
  }
  return out;
}

Status UnpackZeroRuns(const std::vector<uint8_t>& packed,
                      std::vector<uint8_t>* out) {
  size_t pos = 0;
  uint64_t raw_size = 0;
  if (!GetVarint(packed, &pos, &raw_size)) {
    return DataLossError("parked blob: truncated size header");
  }
  out->clear();
  out->reserve(raw_size);
  while (out->size() < raw_size) {
    uint64_t lit = 0;
    if (!GetVarint(packed, &pos, &lit) || pos + lit > packed.size() ||
        out->size() + lit > raw_size) {
      return DataLossError("parked blob: bad literal run");
    }
    out->insert(out->end(), packed.begin() + static_cast<ptrdiff_t>(pos),
                packed.begin() + static_cast<ptrdiff_t>(pos + lit));
    pos += lit;
    if (out->size() == raw_size) {
      break;
    }
    uint64_t zeros = 0;
    if (!GetVarint(packed, &pos, &zeros) || out->size() + zeros > raw_size) {
      return DataLossError("parked blob: bad zero run");
    }
    out->resize(out->size() + zeros, 0);
  }
  if (out->size() != raw_size || pos != packed.size()) {
    return DataLossError("parked blob: size mismatch");
  }
  return Status::Ok();
}

}  // namespace flashsim
