#include "src/fleet/checkpoint.h"

#include <cstdio>
#include <sstream>

namespace flashsim {

namespace {

constexpr uint32_t kManifestTag = SnapshotTag("FMAN");
constexpr uint32_t kDoneTag = SnapshotTag("DONE");

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

uint64_t FleetSpecFingerprint(const CampaignSpec& spec, const FleetSpec& fleet) {
  std::ostringstream os;
  os << spec.name << '|' << spec.seed << '|' << fleet.name << '|'
     << fleet.index << '|' << fleet.device_count << '|'
     << fleet.scale.capacity_div << 'x' << fleet.scale.endurance_div << '|'
     << fleet.shard_devices << '|' << fleet.slice_bytes << '|'
     << fleet.target_level << '|' << fleet.max_device_bytes << '|'
     << fleet.batch_requests << '|' << fleet.survival_bin_hours;
  for (const std::string& slug : fleet.devices) {
    os << '|' << slug;
  }
  for (const std::string& name : fleet.workloads) {
    os << '|' << name;
    // The workload definition shapes the trajectory as much as its name.
    const SyntheticWorkloadConfig* w = spec.FindWorkload(name);
    if (w != nullptr) {
      os << ':' << static_cast<int>(w->pattern) << ':' << w->request_bytes
         << ':' << w->total_bytes << ':' << w->span_bytes << ':'
         << w->span_fraction << ':' << w->start_offset << ':'
         << w->stride_bytes << ':' << w->zipf_theta << ':' << w->hot_fraction
         << ':' << w->hot_probability << ':' << w->read_fraction << ':'
         << w->burst_requests << ':' << w->idle_time.nanos();
    }
  }
  return Fnv1a(os.str());
}

Status WriteFleetCheckpoint(const std::string& path,
                            const FleetCheckpointWriteView& view) {
  SnapshotWriter w;
  w.BeginSection(kManifestTag);
  w.U64(view.fingerprint);
  w.U64(view.device_count);
  w.U64(view.shard_count);
  w.U64(view.next_fresh_shard);
  w.U64(view.folded_prefix);
  w.U64(view.pending.size());
  w.U64(view.inflight.size());
  w.EndSection();
  view.global->Save(w);
  for (const auto& [shard_id, acc] : view.pending) {
    w.BeginSection(kDoneTag);
    w.U64(shard_id);
    acc->Save(w);
    w.EndSection();
  }
  for (const FleetShard* shard : view.inflight) {
    shard->Save(w);
  }
  const std::string tmp = path + ".tmp";
  FLASHSIM_RETURN_IF_ERROR(w.WriteFile(tmp));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return InternalError("cannot rename checkpoint into place: " + path);
  }
  return Status::Ok();
}

Result<FleetCheckpointState> ReadFleetCheckpoint(const std::string& path,
                                                 const CampaignSpec& spec,
                                                 const FleetSpec& fleet) {
  Result<SnapshotReader> reader = SnapshotReader::FromFile(path);
  FLASHSIM_RETURN_IF_ERROR(reader.status());
  SnapshotReader& r = reader.value();

  FleetCheckpointState state;
  FLASHSIM_RETURN_IF_ERROR(r.EnterSection(kManifestTag));
  state.fingerprint = r.U64();
  state.device_count = r.U64();
  state.shard_count = r.U64();
  state.next_fresh_shard = r.U64();
  state.folded_prefix = r.U64();
  const uint64_t n_pending = r.U64();
  const uint64_t n_inflight = r.U64();
  r.LeaveSection();
  FLASHSIM_RETURN_IF_ERROR(r.status());

  if (state.fingerprint != FleetSpecFingerprint(spec, fleet)) {
    return InvalidArgumentError(
        "checkpoint was written by a different fleet spec: " + path);
  }
  if (state.device_count != fleet.device_count ||
      state.shard_count != FleetShardCount(fleet)) {
    return InvalidArgumentError("checkpoint shape mismatch: " + path);
  }

  FLASHSIM_RETURN_IF_ERROR(state.global.Load(r));
  for (uint64_t i = 0; i < n_pending; ++i) {
    FLASHSIM_RETURN_IF_ERROR(r.EnterSection(kDoneTag));
    const uint64_t shard_id = r.U64();
    FleetAccumulator acc;
    FLASHSIM_RETURN_IF_ERROR(acc.Load(r));
    r.LeaveSection();
    state.pending.emplace_back(shard_id, std::move(acc));
  }
  for (uint64_t i = 0; i < n_inflight; ++i) {
    auto shard = std::make_unique<FleetShard>(&spec, &fleet);
    FLASHSIM_RETURN_IF_ERROR(shard->Load(r));
    state.inflight.push_back(std::move(shard));
  }
  FLASHSIM_RETURN_IF_ERROR(r.status());
  return state;
}

}  // namespace flashsim
