#include "src/fleet/report.h"

#include <cinttypes>
#include <cstdio>
#include <string>

namespace flashsim {

namespace {

// Deterministic double formatting, matching the campaign report writers.
std::string JsonNum(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

std::string JsonNum(uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  return buf;
}

std::string JsonStr(const std::string& value) {
  std::string out = "\"";
  for (const char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += "\"";
  return out;
}

const char* JsonBool(bool value) { return value ? "true" : "false"; }

void WriteDigest(const WearDigest& d, std::ostream& os) {
  os << "{\"count\": " << JsonNum(d.count())
     << ", \"mean\": " << JsonNum(d.Mean())
     << ", \"p10\": " << JsonNum(d.Quantile(0.10))
     << ", \"p50\": " << JsonNum(d.Quantile(0.50))
     << ", \"p90\": " << JsonNum(d.Quantile(0.90)) << "}";
}

}  // namespace

void WriteFleetJson(const FleetOutcome& outcome, std::ostream& os) {
  const FleetAccumulator& acc = outcome.acc;
  os << "{\n";
  os << "  \"campaign\": " << JsonStr(outcome.campaign) << ",\n";
  os << "  \"fleet\": " << JsonStr(outcome.fleet) << ",\n";
  os << "  \"seed\": " << JsonNum(outcome.seed) << ",\n";
  os << "  \"device_count\": " << JsonNum(outcome.device_count) << ",\n";
  os << "  \"shard_count\": " << JsonNum(outcome.shard_count) << ",\n";
  os << "  \"completed\": " << JsonBool(outcome.completed) << ",\n";
  os << "  \"devices_done\": " << JsonNum(acc.DevicesDone()) << ",\n";
  os << "  \"devices_bricked\": " << JsonNum(acc.DevicesBricked()) << ",\n";
  os << "  \"survival_bin_hours\": " << JsonNum(acc.survival_bin_hours())
     << ",\n";
  // Only raw sizes here: packed/stored bytes depend on the park policy, and
  // the report must be byte-identical across park modes (and thread counts).
  // Policy-dependent park accounting lives in BENCH_fleet.json.
  os << "  \"parked_bytes\": {\"samples\": "
     << JsonNum(acc.parked_raw_bytes().count())
     << ", \"raw_mean\": " << JsonNum(acc.parked_raw_bytes().Mean())
     << ", \"raw_max\": " << JsonNum(acc.parked_raw_bytes().max())
     << "},\n";
  // Slice-count spread across shards: the deterministic cohort-imbalance
  // signal (host timings stay out of the report).
  os << "  \"shard_slices\": {\"shards\": "
     << JsonNum(acc.shard_slices().count())
     << ", \"mean\": " << JsonNum(acc.shard_slices().Mean())
     << ", \"min\": " << JsonNum(acc.shard_slices().min())
     << ", \"max\": " << JsonNum(acc.shard_slices().max())
     << "},\n";
  os << "  \"models\": [\n";
  for (size_t i = 0; i < acc.models().size(); ++i) {
    const FleetModelStats& m = acc.models()[i];
    os << "    {\n";
    os << "      \"model\": " << JsonStr(acc.model_slugs()[i]) << ",\n";
    os << "      \"devices\": " << JsonNum(m.devices) << ",\n";
    os << "      \"bricked\": " << JsonNum(m.bricked) << ",\n";
    os << "      \"reached_level\": " << JsonNum(m.reached_level) << ",\n";
    os << "      \"brick_days\": ";
    WriteDigest(m.brick_days, os);
    os << ",\n";
    os << "      \"host_gib\": ";
    WriteDigest(m.host_gib, os);
    os << ",\n";
    os << "      \"device_wa\": ";
    WriteDigest(m.device_wa, os);
    os << ",\n";
    os << "      \"levels\": [";
    bool first_level = true;
    for (uint32_t level = 1; level <= kMaxWearLevel; ++level) {
      const WearDigest& d = m.level_days[level];
      if (d.count() == 0) {
        continue;
      }
      if (!first_level) {
        os << ", ";
      }
      first_level = false;
      os << "{\"level\": " << JsonNum(static_cast<uint64_t>(level))
         << ", \"count\": " << JsonNum(d.count())
         << ", \"p50_days\": " << JsonNum(d.Quantile(0.5)) << "}";
    }
    os << "],\n";
    os << "      \"survival\": [";
    uint64_t cum = 0;
    bool first_bin = true;
    for (const auto& [bin, n] : m.brick_day_hist.bins()) {
      cum += n;
      if (!first_bin) {
        os << ", ";
      }
      first_bin = false;
      const double frac =
          m.devices > 0
              ? static_cast<double>(cum) / static_cast<double>(m.devices)
              : 0.0;
      os << "{\"bin\": " << JsonNum(static_cast<uint64_t>(bin))
         << ", \"bricked\": " << JsonNum(n)
         << ", \"cum_bricked\": " << JsonNum(cum)
         << ", \"cum_fraction\": " << JsonNum(frac) << "}";
    }
    os << "]\n";
    os << "    }" << (i + 1 < acc.models().size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
}

void PrintFleetSummary(const FleetOutcome& outcome, std::ostream& os) {
  const FleetAccumulator& acc = outcome.acc;
  char line[256];
  std::snprintf(line, sizeof(line),
                "fleet %s: %" PRIu64 " devices in %" PRIu64
                " shards, %" PRIu64 " done, %" PRIu64 " bricked%s",
                outcome.fleet.c_str(), outcome.device_count,
                outcome.shard_count, acc.DevicesDone(), acc.DevicesBricked(),
                outcome.completed ? "" : " (stopped at checkpoint)");
  os << line << "\n";
  std::snprintf(line, sizeof(line),
                "  parked state: mean %.1f KiB raw -> %.1f KiB stored "
                "(%.1f KiB resident) over %" PRIu64 " parks "
                "(%" PRIu64 " delta, %" PRIu64 " rebase)",
                acc.parked_raw_bytes().Mean() / 1024.0,
                outcome.park.StoredMean() / 1024.0,
                outcome.park.ResidentMean() / 1024.0,
                acc.parked_raw_bytes().count(), outcome.park.delta_parks,
                outcome.park.rebases);
  os << line << "\n";
  if (acc.shard_slices().count() > 0) {
    std::snprintf(line, sizeof(line),
                  "  shard slices: mean %.1f (min %.0f, max %.0f); "
                  "steals %" PRIu64 ", worker busy %.1fs..%.1fs",
                  acc.shard_slices().Mean(), acc.shard_slices().min(),
                  acc.shard_slices().max(), outcome.sched.steals,
                  outcome.sched.busy_seconds_min,
                  outcome.sched.busy_seconds_max);
    os << line << "\n";
  }
  for (size_t i = 0; i < acc.models().size(); ++i) {
    const FleetModelStats& m = acc.models()[i];
    const double frac =
        m.devices > 0
            ? 100.0 * static_cast<double>(m.bricked) /
                  static_cast<double>(m.devices)
            : 0.0;
    std::snprintf(line, sizeof(line),
                  "  %-12s %8" PRIu64 " devices, %7" PRIu64
                  " bricked (%5.1f%%), median brick day %.1f",
                  acc.model_slugs()[i].c_str(), m.devices, m.bricked, frac,
                  m.brick_days.Quantile(0.5));
    os << line << "\n";
  }
  if (outcome.wall_seconds > 0.0) {
    std::snprintf(line, sizeof(line), "  wall %.1fs (%.0f devices/sec)",
                  outcome.wall_seconds,
                  static_cast<double>(acc.DevicesDone()) /
                      outcome.wall_seconds);
    os << line << "\n";
  }
}

}  // namespace flashsim
