// Fleet accumulator: mergeable per-model wear statistics (DESIGN.md §13).
//
// Each shard owns one FleetAccumulator and feeds it device outcomes in
// device-index order; the fleet runner then folds completed shard
// accumulators into the global one strictly in shard-index order. Because
// every sketch inside is a deterministic function of its observation
// sequence, the folded result — and hence the fleet report — is byte-
// identical at any thread count.
//
// All hour/volume inputs are full-device-equivalent (sim values already
// multiplied by SimScale::VolumeFactor()); days = hours / 24.

#ifndef SRC_FLEET_AGGREGATE_H_
#define SRC_FLEET_AGGREGATE_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/fleet/sketch.h"
#include "src/simcore/snapshot.h"
#include "src/simcore/status.h"

namespace flashsim {

inline constexpr uint32_t kMaxWearLevel = 11;  // JEDEC 0x0B = exceeded

// Everything the aggregation layer keeps from one finished device.
struct FleetDeviceOutcome {
  uint32_t model_index = 0;  // position in the fleet's devices= list
  bool bricked = false;
  bool reached_level = false;
  double days = 0.0;      // full-device-equivalent days simulated
  double host_gib = 0.0;  // full-device-equivalent host GiB written
  double device_wa = 1.0;
  // Wear-indicator transitions: level -> full-device-equivalent day, level
  // in [1, kMaxWearLevel].
  std::vector<std::pair<uint32_t, double>> level_days;

  // Serialized inside shard checkpoint state for outcomes that finished but
  // have not yet reached the in-order fold cursor.
  void Save(SnapshotWriter& w) const;
  Status Load(SnapshotReader& r);
};

// Per-model aggregate. Sketches use full-device-equivalent days.
struct FleetModelStats {
  uint64_t devices = 0;  // finished devices of this model
  uint64_t bricked = 0;
  uint64_t reached_level = 0;
  WearDigest brick_days;
  DayHistogram brick_day_hist;  // binned by survival_bin_hours
  WearDigest host_gib;
  WearDigest device_wa;
  std::array<WearDigest, kMaxWearLevel + 1> level_days;  // index = level

  void Merge(const FleetModelStats& other);
  void Save(SnapshotWriter& w) const;
  Status Load(SnapshotReader& r);
};

class FleetAccumulator {
 public:
  FleetAccumulator() = default;

  // `model_slugs` fixes the model index space; `survival_bin_hours` is the
  // brick-histogram bin width in full-device-equivalent hours.
  void Init(const std::vector<std::string>& model_slugs,
            double survival_bin_hours);

  void AddOutcome(const FleetDeviceOutcome& outcome);
  // One parking event: raw snapshot size. Raw size is a pure function of the
  // simulation (park policy never changes it), and MergeStats over integer
  // values is observation-order independent, so parked samples may arrive in
  // any schedule order without breaking report byte-identity.
  void AddParkedSample(uint64_t raw_bytes);
  // Total slices one shard took, folded when the shard folds; the min/max
  // spread is the report's cohort-imbalance signal.
  void AddShardSlices(uint64_t slices);
  void Merge(const FleetAccumulator& other);

  const std::vector<std::string>& model_slugs() const { return model_slugs_; }
  const std::vector<FleetModelStats>& models() const { return models_; }
  double survival_bin_hours() const { return survival_bin_hours_; }
  const MergeStats& parked_raw_bytes() const { return parked_raw_; }
  const MergeStats& shard_slices() const { return shard_slices_; }

  uint64_t DevicesDone() const;
  uint64_t DevicesBricked() const;

  void Save(SnapshotWriter& w) const;
  Status Load(SnapshotReader& r);

 private:
  std::vector<std::string> model_slugs_;
  std::vector<FleetModelStats> models_;
  double survival_bin_hours_ = 24.0;
  MergeStats parked_raw_;
  MergeStats shard_slices_;
};

}  // namespace flashsim

#endif  // SRC_FLEET_AGGREGATE_H_
