// Fleet report writers: byte-stable JSON for fleet campaign results, plus a
// human-readable stdout summary.
//
// The JSON report is a pure function of the fold-ordered accumulator — no
// wall-clock, RSS, or thread-count dependent values — so runs at different
// thread counts (or kill+resume runs) diff byte-for-byte equal.

#ifndef SRC_FLEET_REPORT_H_
#define SRC_FLEET_REPORT_H_

#include <ostream>

#include "src/fleet/runner.h"

namespace flashsim {

void WriteFleetJson(const FleetOutcome& outcome, std::ostream& os);

// Console summary; may include wall-clock (never part of the JSON report).
void PrintFleetSummary(const FleetOutcome& outcome, std::ostream& os);

}  // namespace flashsim

#endif  // SRC_FLEET_REPORT_H_
