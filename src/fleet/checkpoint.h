// Fleet checkpoint container (DESIGN.md §13): a single FSNP file holding a
// whole mid-campaign fleet — manifest, folded-prefix accumulator, completed-
// but-unfolded shard accumulators, and full mid-shard states.
//
// Layout (sections in order; readers skip unknown sections, so newer writers
// may append):
//   FMAN  manifest: spec fingerprint, counts, fold cursor
//   FACC  global accumulator for the folded shard prefix [0, folded_prefix)
//   DONE* {shard id, accumulator} for finished shards awaiting in-order fold
//   SHRD* full FleetShard state for shards interrupted mid-flight
//
// Resuming from a checkpoint and running to completion produces a final
// report bit-identical to the uninterrupted run, at any thread count.

#ifndef SRC_FLEET_CHECKPOINT_H_
#define SRC_FLEET_CHECKPOINT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/campaign/spec.h"
#include "src/fleet/aggregate.h"
#include "src/fleet/shard.h"
#include "src/simcore/status.h"

namespace flashsim {

// Fingerprint of everything that fixes a fleet's simulation trajectory.
// Resume refuses a checkpoint whose fingerprint does not match the spec it
// is resumed against.
uint64_t FleetSpecFingerprint(const CampaignSpec& spec, const FleetSpec& fleet);

// Borrowed view of the runner's state for writing (the runner holds the
// real objects; all workers are quiesced while this is serialized).
struct FleetCheckpointWriteView {
  uint64_t fingerprint = 0;
  uint64_t device_count = 0;
  uint64_t shard_count = 0;
  uint64_t next_fresh_shard = 0;  // shard-claim counter at save time
  uint64_t folded_prefix = 0;     // shards [0, K) are folded into `global`
  const FleetAccumulator* global = nullptr;
  std::vector<std::pair<uint64_t, const FleetAccumulator*>> pending;
  std::vector<const FleetShard*> inflight;
};

struct FleetCheckpointState {
  uint64_t fingerprint = 0;
  uint64_t device_count = 0;
  uint64_t shard_count = 0;
  uint64_t next_fresh_shard = 0;
  uint64_t folded_prefix = 0;
  FleetAccumulator global;
  std::vector<std::pair<uint64_t, FleetAccumulator>> pending;  // done, unfolded
  std::vector<std::unique_ptr<FleetShard>> inflight;
};

// Serializes atomically: writes to `path`.tmp, then renames over `path`.
Status WriteFleetCheckpoint(const std::string& path,
                            const FleetCheckpointWriteView& view);

// Loads and validates a checkpoint against (spec, fleet). In-flight shards
// are reconstructed bound to the given spec/fleet (which must outlive them).
Result<FleetCheckpointState> ReadFleetCheckpoint(const std::string& path,
                                                 const CampaignSpec& spec,
                                                 const FleetSpec& fleet);

}  // namespace flashsim

#endif  // SRC_FLEET_CHECKPOINT_H_
