// Fleet runner: executes one FleetSpec across a worker pool (DESIGN.md
// §13/§14).
//
// Scheduling is a device-granular work-stealing queue: workers claim one
// (shard, device) slice at a time from the set of in-flight shards, so a
// straggler device no longer serializes its whole shard on one worker. A
// new shard is admitted only when no in-flight shard has a claimable
// device, which keeps in-flight shards (and hence parked-state memory)
// bounded by the worker count. Completed shard accumulators fold into the
// global accumulator strictly in shard-index order — out-of-order finishers
// wait in a small pending map — and outcomes fold in device-index order
// inside each shard, so the final report is byte-identical at any thread
// count and under any steal schedule.
//
// Checkpointing: after every `checkpoint_every_shards` folds, workers
// quiesce at their next slice boundary (every device parked), the whole
// fleet state is serialized to `checkpoint_path` (atomic tmp+rename), and
// work resumes. `stop_after_checkpoints` turns a checkpoint into a
// controlled kill for crash-resume testing; `resume_path` warm-starts a run
// from such a file, continuing bit-exactly.

#ifndef SRC_FLEET_RUNNER_H_
#define SRC_FLEET_RUNNER_H_

#include <cstdint>
#include <string>

#include "src/campaign/spec.h"
#include "src/fleet/aggregate.h"
#include "src/simcore/status.h"

namespace flashsim {

struct FleetRunOptions {
  int threads = 1;
  // Checkpointing is active when both are set.
  std::string checkpoint_path;
  uint64_t checkpoint_every_shards = 0;
  // Stop (without finishing the fleet) once this many checkpoints have been
  // written; 0 = run to completion.
  uint64_t stop_after_checkpoints = 0;
  // Warm-start from a checkpoint file written by a previous run.
  std::string resume_path;
};

// Park-path accounting for one run. Deterministic (every count and byte is
// a pure function of spec + park knobs) but park-policy dependent, so it
// feeds BENCH_fleet.json and stdout, never the byte-compared report.
struct FleetParkTotals {
  uint64_t park_events = 0;  // delta_parks + full_parks + rebases
  uint64_t delta_parks = 0;  // chained a packed delta
  uint64_t full_parks = 0;   // first park of a device (self-contained blob)
  uint64_t rebases = 0;      // mid-life chain reset onto a fresh base
  uint64_t raw_bytes = 0;       // sum of raw snapshot sizes over park events
  uint64_t stored_bytes = 0;    // sum of blob bytes written per park event
  uint64_t resident_bytes = 0;  // sum of post-park resident (base + chain)
  uint64_t scratch_grows = 0;   // worker scratch reallocations, summed

  double StoredMean() const {
    return park_events == 0
               ? 0.0
               : static_cast<double>(stored_bytes) /
                     static_cast<double>(park_events);
  }
  double ResidentMean() const {
    return park_events == 0
               ? 0.0
               : static_cast<double>(resident_bytes) /
                     static_cast<double>(park_events);
  }
};

// Scheduler observability: host-side timings and steal counts. Not
// deterministic — stdout/BENCH only.
struct FleetSchedTotals {
  int workers = 0;
  uint64_t slices = 0;
  uint64_t steals = 0;  // claims on a shard another worker admitted
  double busy_seconds_total = 0.0;  // summed slice-run time across workers
  double busy_seconds_min = 0.0;    // least-loaded worker
  double busy_seconds_max = 0.0;    // most-loaded worker
  double shard_seconds_max = 0.0;   // longest admit-to-fold shard span
};

struct FleetOutcome {
  std::string campaign;
  std::string fleet;
  uint64_t seed = 0;
  uint64_t device_count = 0;
  uint64_t shard_count = 0;
  FleetAccumulator acc;
  bool completed = true;  // false when stopped after a checkpoint
  uint64_t checkpoints_written = 0;
  FleetParkTotals park;
  FleetSchedTotals sched;
  // Host wall-clock; stdout only, never serialized into reports.
  double wall_seconds = 0.0;
};

Result<FleetOutcome> RunFleet(const CampaignSpec& spec, const FleetSpec& fleet,
                              const FleetRunOptions& options);

}  // namespace flashsim

#endif  // SRC_FLEET_RUNNER_H_
