// Fleet runner: executes one FleetSpec across a worker pool (DESIGN.md §13).
//
// Workers claim whole shards (resumed in-flight shards first, then fresh
// shard indices from an atomic cursor) and process each shard sequentially,
// one bounded slice at a time. Completed shard accumulators fold into the
// global accumulator strictly in shard-index order — out-of-order finishers
// wait in a small pending map — so the final report is byte-identical at any
// thread count.
//
// Checkpointing: after every `checkpoint_every_shards` folds, workers
// quiesce at their next slice boundary (every device parked), the whole
// fleet state is serialized to `checkpoint_path` (atomic tmp+rename), and
// work resumes. `stop_after_checkpoints` turns a checkpoint into a
// controlled kill for crash-resume testing; `resume_path` warm-starts a run
// from such a file, continuing bit-exactly.

#ifndef SRC_FLEET_RUNNER_H_
#define SRC_FLEET_RUNNER_H_

#include <cstdint>
#include <string>

#include "src/campaign/spec.h"
#include "src/fleet/aggregate.h"
#include "src/simcore/status.h"

namespace flashsim {

struct FleetRunOptions {
  int threads = 1;
  // Checkpointing is active when both are set.
  std::string checkpoint_path;
  uint64_t checkpoint_every_shards = 0;
  // Stop (without finishing the fleet) once this many checkpoints have been
  // written; 0 = run to completion.
  uint64_t stop_after_checkpoints = 0;
  // Warm-start from a checkpoint file written by a previous run.
  std::string resume_path;
};

struct FleetOutcome {
  std::string campaign;
  std::string fleet;
  uint64_t seed = 0;
  uint64_t device_count = 0;
  uint64_t shard_count = 0;
  FleetAccumulator acc;
  bool completed = true;  // false when stopped after a checkpoint
  uint64_t checkpoints_written = 0;
  // Host wall-clock; stdout only, never serialized into reports.
  double wall_seconds = 0.0;
};

Result<FleetOutcome> RunFleet(const CampaignSpec& spec, const FleetSpec& fleet,
                              const FleetRunOptions& options);

}  // namespace flashsim

#endif  // SRC_FLEET_RUNNER_H_
