// ExtFs: an Ext4-like journaling file system model.
//
// Structure (all block-granular, block size == device page size):
//   [ metadata region | journal ring | data region ]
//
// Data is written *in place* (ordered mode): overwriting a file block hits
// the same device LBA, so the device-level FTL sees rewrite traffic directly.
// Metadata updates (inode size/mtime, allocation bitmaps) are journaled: a
// commit writes a descriptor block, the dirty metadata block(s), and a commit
// block into the journal ring. Commits are batched (by synced-byte volume and
// on explicit Fsync), which is why Ext4's file-system write amplification for
// sequential and sync rewrites stays near 1.0 — the behaviour behind the Moto
// E Ext4 curve in Figure 4 matching the raw eMMC chip in Figure 2.
//
// Crash recovery (DESIGN.md §11): the journal commit is the durability
// barrier. Mount() rolls the namespace back to the last commit and rebuilds
// the allocation bitmap from the recovered inodes (fsck-style), so the
// unlink/truncate free + TRIM is deferred to the commit covering it.

#ifndef SRC_FS_EXTFS_H_
#define SRC_FS_EXTFS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/fs/filesystem.h"

namespace flashsim {

struct ExtFsConfig {
  // Journal ring size, in blocks.
  uint32_t journal_blocks = 2048;
  // Metadata (inode tables / bitmaps) region, as a fraction of the device.
  double metadata_fraction = 0.01;
  // A journal commit is forced after this many synced data bytes.
  uint64_t journal_batch_bytes = 1 * 1024 * 1024;
  // In-place metadata checkpoint every this many commits.
  uint32_t checkpoint_interval_commits = 64;
};

class ExtFs : public Filesystem {
 public:
  // Mounts (formats) the file system on `device`, which must outlive it.
  ExtFs(BlockDevice& device, ExtFsConfig config = {});

  // Filesystem:
  Status Create(const std::string& path) override;
  Result<SimDuration> Write(const std::string& path, uint64_t offset, uint64_t length,
                            bool sync) override;
  Result<SimDuration> Fsync(const std::string& path) override;
  Result<SimDuration> Read(const std::string& path, uint64_t offset,
                           uint64_t length) override;
  Status Unlink(const std::string& path) override;
  Status Truncate(const std::string& path, uint64_t new_size) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Result<uint64_t> FileSize(const std::string& path) const override;
  bool Exists(const std::string& path) const override;
  std::vector<std::string> List() const override;
  uint64_t FreeBytes() const override;
  const FsStats& stats() const override { return stats_; }
  const char* fs_type() const override { return "extfs"; }
  BlockDevice& device() override { return device_; }

  // Crash recovery: rolls the namespace back to the last journal commit
  // (Fsync, or a sync-write volume that forced a commit) and runs an
  // fsck-style sweep — the allocation bitmap is rebuilt from the recovered
  // inodes, reclaiming blocks allocated after the commit as orphans. Blocks
  // freed by uncommitted unlinks/truncates are only discarded at commit
  // (pending-free list), so a rollback never references trimmed space.
  Result<RecoveryReport> Mount() override;

 private:
  struct Inode {
    uint64_t size = 0;
    std::vector<uint64_t> blocks;  // absolute device block index per file block
  };

  // Allocates one data block; advances the next-fit cursor.
  Result<uint64_t> AllocateBlock();
  void FreeBlock(uint64_t block);

  // Submits one extent-coalesced device request per contiguous block run.
  Result<SimDuration> SubmitBlocks(IoKind kind, const std::vector<uint64_t>& blocks,
                                   uint64_t* bytes_out);

  // Journal commit: descriptor + dirty metadata + commit block in the ring.
  Result<SimDuration> CommitJournal();

  // Periodic in-place metadata write-back.
  Result<SimDuration> CheckpointMetadata();

  BlockDevice& device_;
  ExtFsConfig config_;
  uint32_t block_size_;

  uint64_t journal_start_block_ = 0;
  uint64_t data_start_block_ = 0;
  uint64_t total_blocks_ = 0;

  std::vector<bool> data_bitmap_;   // indexed from data_start_block_
  uint64_t alloc_cursor_ = 0;
  uint64_t free_data_blocks_ = 0;

  std::map<std::string, Inode> files_;

  // Namespace as of the last journal commit — what a crash recovers to.
  std::map<std::string, Inode> durable_files_;
  // Blocks freed by not-yet-committed unlinks/truncates: still marked in the
  // bitmap (no reuse) and not yet discarded (rollback may need them).
  std::vector<uint64_t> pending_free_;

  uint64_t journal_head_ = 0;           // ring position, in blocks
  uint64_t dirty_metadata_blocks_ = 0;  // blocks to include in next commit
  uint64_t synced_since_commit_ = 0;
  uint64_t commits_ = 0;

  FsStats stats_;
};

}  // namespace flashsim

#endif  // SRC_FS_EXTFS_H_
