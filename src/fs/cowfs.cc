#include "src/fs/cowfs.h"

#include <algorithm>
#include <cassert>

#include "src/simcore/units.h"

namespace flashsim {

namespace {

constexpr uint8_t kMagic[4] = {'C', 'W', 'F', 'S'};
constexpr size_t kChecksumBytes = 8;

uint64_t Fnv1a64(const uint8_t* data, size_t size) {
  uint64_t hash = 14695981039346656037ull;
  for (size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

void PutVarint(std::vector<uint8_t>* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

bool GetVarint(const uint8_t* in, size_t size, size_t* pos, uint64_t* v) {
  uint64_t value = 0;
  for (uint32_t shift = 0; shift < 64; shift += 7) {
    if (*pos >= size) {
      return false;
    }
    const uint8_t byte = in[(*pos)++];
    value |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *v = value;
      return true;
    }
  }
  return false;  // unterminated / overlong
}

}  // namespace

CowFs::CowFs(BlockDevice& device, CowFsConfig config)
    : device_(device), config_(config), block_size_(device.PageSizeBytes()) {
  total_blocks_ = device_.CapacityBytes() / block_size_;
  uint32_t pairs = config_.dir_pairs;
  if (pairs == 0) {
    pairs = static_cast<uint32_t>(std::max<uint64_t>(4, total_blocks_ / 1024));
  }
  data_start_block_ = 2 + 2ull * pairs;  // superblock pair + metadata pairs
  assert(data_start_block_ < total_blocks_);
  const uint64_t data_blocks = total_blocks_ - data_start_block_;
  committed_ref_.assign(data_blocks, 0);
  volatile_ref_.assign(data_blocks, 0);
  free_data_blocks_ = data_blocks;
  pair_revisions_.assign(pairs, 0);
  pair_entry_counts_.assign(pairs, 0);
  pair_images_.resize(pairs);
}

void CowFs::SetVolatileRef(uint64_t addr, bool on) {
  const uint64_t idx = DataIndex(addr);
  const bool was_free = IsFree(idx);
  volatile_ref_[idx] = on ? 1 : 0;
  const bool is_free = IsFree(idx);
  if (was_free && !is_free) {
    --free_data_blocks_;
  } else if (!was_free && is_free) {
    ++free_data_blocks_;
  }
}

void CowFs::SetCommittedRef(uint64_t addr, bool on) {
  const uint64_t idx = DataIndex(addr);
  const bool was_free = IsFree(idx);
  committed_ref_[idx] = on ? 1 : 0;
  const bool is_free = IsFree(idx);
  if (was_free && !is_free) {
    --free_data_blocks_;
  } else if (!was_free && is_free) {
    ++free_data_blocks_;
  }
}

Result<uint64_t> CowFs::AllocateBlock() {
  if (free_data_blocks_ == 0) {
    return ResourceExhaustedError("cowfs: no free blocks");
  }
  const uint64_t n = committed_ref_.size();
  for (uint64_t probe = 0; probe < n; ++probe) {
    const uint64_t idx = (alloc_cursor_ + probe) % n;
    if (IsFree(idx)) {
      // The cursor never resets: allocation rotates round-robin over the
      // whole data region, spreading erase load (littlefs lookahead model).
      alloc_cursor_ = (idx + 1) % n;
      const uint64_t addr = data_start_block_ + idx;
      SetVolatileRef(addr, true);
      return addr;
    }
  }
  return InternalError("cowfs: reference maps inconsistent with free count");
}

Result<SimDuration> CowFs::SubmitBlocks(IoKind kind, const std::vector<uint64_t>& blocks,
                                        uint64_t* bytes_out) {
  SimDuration total;
  uint64_t bytes = 0;
  size_t i = 0;
  while (i < blocks.size()) {
    size_t j = i + 1;
    while (j < blocks.size() && blocks[j] == blocks[j - 1] + 1) {
      ++j;
    }
    IoRequest req;
    req.kind = kind;
    req.offset = blocks[i] * block_size_;
    req.length = (j - i) * block_size_;
    Result<IoCompletion> done = device_.Submit(req);
    if (!done.ok()) {
      return done.status();
    }
    total += done.value().service_time;
    bytes += req.length;
    i = j;
  }
  if (bytes_out != nullptr) {
    *bytes_out = bytes;
  }
  return total;
}

Result<SimDuration> CowFs::WritePairSlot(uint32_t pair) {
  // The atomic two-block update: the commit goes to the slot the *previous*
  // revision does not occupy, so a torn write can only corrupt the copy that
  // loses the revision race at mount.
  const uint32_t slot = static_cast<uint32_t>((pair_revisions_[pair] + 1) & 1);
  IoRequest req;
  req.kind = IoKind::kWrite;
  req.offset = PairBlockAddr(pair, slot) * block_size_;
  req.length = block_size_;
  Result<IoCompletion> done = device_.Submit(req);
  if (!done.ok()) {
    return done.status();
  }
  ++pair_revisions_[pair];
  stats_.device_metadata_bytes += block_size_;
  ++stats_.metadata_commits;
  return done.value().service_time;
}

void CowFs::RefreshPairImage(uint32_t pair) {
  std::vector<CowFsDecodedPair::Entry> entries;
  for (const auto& [name, entry] : durable_files_) {
    if (entry.pair != pair) {
      continue;
    }
    CowFsDecodedPair::Entry e;
    e.name = name;
    e.id = entry.id;
    e.size = entry.size;
    e.blocks = entry.blocks;
    entries.push_back(std::move(e));
  }
  const uint64_t rev = pair_revisions_[pair];
  pair_images_[pair][rev & 1] = EncodePairBlock(pair, rev, entries);
}

Result<SimDuration> CowFs::DiscardBlocks(std::vector<uint64_t>& blocks) {
  if (blocks.empty()) {
    return SimDuration();
  }
  std::sort(blocks.begin(), blocks.end());
  return SubmitBlocks(IoKind::kDiscard, blocks, nullptr);
}

Result<SimDuration> CowFs::CommitEntry(const std::string& name) {
  FileMeta& file = files_.at(name);
  const uint32_t pair = file.pair;
  Result<SimDuration> t = WritePairSlot(pair);
  if (!t.ok()) {
    return t.status();  // torn commit: the durable record is unchanged
  }

  // Fold the volatile state into the committed snapshot and rediff block
  // references; blocks only the old entry referenced become free — the
  // copy-on-write replacement finally releases the originals.
  auto it = durable_files_.find(name);
  std::vector<uint64_t> old_blocks;
  if (it == durable_files_.end()) {
    ++pair_entry_counts_[pair];
    it = durable_files_.emplace(name, CommittedEntry{}).first;
  } else {
    old_blocks = it->second.blocks;
  }
  it->second.id = file.id;
  it->second.size = file.size;
  it->second.blocks = file.blocks;
  it->second.pair = pair;
  file.entry_dirty = false;

  for (const uint64_t addr : old_blocks) {
    if (addr != 0) {
      SetCommittedRef(addr, false);
    }
  }
  for (const uint64_t addr : file.blocks) {
    if (addr != 0) {
      SetCommittedRef(addr, true);
    }
  }
  std::vector<uint64_t> freed;
  for (const uint64_t addr : old_blocks) {
    if (addr != 0 && IsFree(DataIndex(addr))) {
      freed.push_back(addr);
    }
  }
  RefreshPairImage(pair);
  Result<SimDuration> discard = DiscardBlocks(freed);
  if (!discard.ok()) {
    return discard.status();  // the commit itself already landed
  }
  return t.value() + discard.value();
}

Result<uint32_t> CowFs::AssignPair() const {
  uint32_t best = 0;
  uint32_t best_count = UINT32_MAX;
  for (uint32_t p = 0; p < pair_entry_counts_.size(); ++p) {
    if (pair_entry_counts_[p] < best_count) {
      best = p;
      best_count = pair_entry_counts_[p];
    }
  }
  if (best_count >= config_.entries_per_pair) {
    return ResourceExhaustedError("cowfs: all metadata pairs full");
  }
  return best;
}

Status CowFs::Create(const std::string& path) {
  if (files_.count(path) != 0) {
    return AlreadyExistsError("cowfs: file exists: " + path);
  }
  Result<uint32_t> pair = AssignPair();
  if (!pair.ok()) {
    return pair.status();
  }
  FileMeta meta;
  meta.id = next_file_id_++;
  meta.pair = pair.value();
  files_[path] = std::move(meta);
  Result<SimDuration> commit = CommitEntry(path);
  if (!commit.ok()) {
    files_.erase(path);  // namespace membership is always committed
    return commit.status();
  }
  return Status::Ok();
}

Result<SimDuration> CowFs::Write(const std::string& path, uint64_t offset,
                                 uint64_t length, bool sync) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return NotFoundError("cowfs: no such file: " + path);
  }
  if (length == 0) {
    return InvalidArgumentError("cowfs: zero-length write");
  }
  FileMeta& file = it->second;
  const uint64_t first = offset / block_size_;
  const uint64_t last = (offset + length - 1) / block_size_;
  const uint64_t n = file.blocks.size();

  // Plan every new address up front so a failed allocation unwinds cleanly.
  // [first..last] carries the new data; when the write lands inside the
  // existing extent list, the CTZ pointer chains of every later block are
  // invalidated, so the suffix (last..n-1) is copied to fresh blocks too.
  const bool rewrites_suffix = first < n && last + 1 < n;
  std::vector<std::pair<uint64_t, uint64_t>> placements;  // (file block, addr)
  std::vector<uint64_t> copy_reads;
  uint64_t data_blocks_written = 0;
  uint64_t copy_blocks_written = 0;
  Status alloc_failure = Status::Ok();
  for (uint64_t fb = first; fb <= last; ++fb) {
    Result<uint64_t> addr = AllocateBlock();
    if (!addr.ok()) {
      alloc_failure = addr.status();
      break;
    }
    placements.emplace_back(fb, addr.value());
    ++data_blocks_written;
  }
  if (alloc_failure.ok() && rewrites_suffix) {
    for (uint64_t fb = last + 1; fb < n; ++fb) {
      if (file.blocks[fb] == 0) {
        continue;  // holes have no pointer chain to relocate
      }
      Result<uint64_t> addr = AllocateBlock();
      if (!addr.ok()) {
        alloc_failure = addr.status();
        break;
      }
      copy_reads.push_back(file.blocks[fb]);
      placements.emplace_back(fb, addr.value());
      ++copy_blocks_written;
    }
  }
  if (!alloc_failure.ok()) {
    for (const auto& [fb, addr] : placements) {
      (void)fb;
      SetVolatileRef(addr, false);
    }
    return alloc_failure;
  }

  SimDuration total;
  if (!copy_reads.empty()) {
    Result<SimDuration> rd = SubmitBlocks(IoKind::kRead, copy_reads, nullptr);
    if (!rd.ok()) {
      for (const auto& [fb, addr] : placements) {
        (void)fb;
        SetVolatileRef(addr, false);
      }
      return rd.status();
    }
    total += rd.value();
  }
  std::vector<uint64_t> writes;
  writes.reserve(placements.size());
  for (const auto& [fb, addr] : placements) {
    (void)fb;
    writes.push_back(addr);
  }
  Result<SimDuration> wr = SubmitBlocks(IoKind::kWrite, writes, nullptr);
  if (!wr.ok()) {
    for (const auto& [fb, addr] : placements) {
      (void)fb;
      SetVolatileRef(addr, false);
    }
    return wr.status();
  }
  total += wr.value();

  // Install the new addresses; originals that were never committed are free
  // for reuse immediately, committed ones stay pinned until the next commit
  // drops them (the copy-on-write invariant).
  if (last >= file.blocks.size()) {
    file.blocks.resize(last + 1, 0);
  }
  for (const auto& [fb, addr] : placements) {
    const uint64_t old = file.blocks[fb];
    file.blocks[fb] = addr;
    if (old != 0) {
      SetVolatileRef(old, false);
    }
  }
  stats_.device_data_bytes += data_blocks_written * block_size_;
  stats_.cleaner_bytes_moved += copy_blocks_written * block_size_;
  stats_.app_bytes_written += length;
  file.size = std::max(file.size, offset + length);
  file.entry_dirty = true;

  if (sync) {
    Result<SimDuration> commit = CommitEntry(path);
    if (!commit.ok()) {
      return commit.status();
    }
    total += commit.value();
  }
  return total;
}

Result<SimDuration> CowFs::Fsync(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return NotFoundError("cowfs: no such file: " + path);
  }
  ++stats_.fsyncs;
  if (!it->second.entry_dirty) {
    return SimDuration();  // the committed entry is already current
  }
  return CommitEntry(path);
}

Result<SimDuration> CowFs::Read(const std::string& path, uint64_t offset,
                                uint64_t length) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return NotFoundError("cowfs: no such file: " + path);
  }
  if (offset + length > it->second.size) {
    return OutOfRangeError("cowfs: read past end of file");
  }
  if (length == 0) {
    return SimDuration();
  }
  const uint64_t first = offset / block_size_;
  const uint64_t last = (offset + length - 1) / block_size_;
  std::vector<uint64_t> blocks;
  for (uint64_t fb = first; fb <= last && fb < it->second.blocks.size(); ++fb) {
    if (it->second.blocks[fb] != 0) {
      blocks.push_back(it->second.blocks[fb]);
    }
  }
  return SubmitBlocks(IoKind::kRead, blocks, nullptr);
}

Status CowFs::Unlink(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return NotFoundError("cowfs: no such file: " + path);
  }
  const uint32_t pair = it->second.pair;
  Result<SimDuration> t = WritePairSlot(pair);
  if (!t.ok()) {
    return t.status();
  }
  // The commit landed: the entry is gone from the durable namespace, so both
  // its committed and volatile blocks lose their references now.
  auto durable = durable_files_.find(path);
  assert(durable != durable_files_.end());
  std::vector<uint64_t> committed_blocks = durable->second.blocks;
  std::vector<uint64_t> volatile_blocks = it->second.blocks;
  durable_files_.erase(durable);
  files_.erase(it);
  --pair_entry_counts_[pair];

  for (const uint64_t addr : volatile_blocks) {
    if (addr != 0) {
      SetVolatileRef(addr, false);
    }
  }
  std::vector<uint64_t> freed;
  for (const uint64_t addr : committed_blocks) {
    if (addr != 0) {
      SetCommittedRef(addr, false);
      if (IsFree(DataIndex(addr))) {
        freed.push_back(addr);
      }
    }
  }
  RefreshPairImage(pair);
  Result<SimDuration> discard = DiscardBlocks(freed);
  if (!discard.ok()) {
    return discard.status();
  }
  return Status::Ok();
}

Status CowFs::Truncate(const std::string& path, uint64_t new_size) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return NotFoundError("cowfs: no such file: " + path);
  }
  FileMeta& file = it->second;
  if (new_size >= file.size) {
    // Sparse extension: the CTZ list is untouched, only the committed size
    // changes — one commit block, no data-region allocation.
    file.size = new_size;
  } else {
    // The list is backward-linked from the head, so truncation keeps the
    // prefix as-is: O(1), no copying, just release the dropped tail.
    const uint64_t keep = CeilDiv(new_size, block_size_);
    for (uint64_t fb = keep; fb < file.blocks.size(); ++fb) {
      if (file.blocks[fb] != 0) {
        SetVolatileRef(file.blocks[fb], false);
      }
    }
    file.blocks.resize(keep);
    file.size = new_size;
  }
  file.entry_dirty = true;
  Result<SimDuration> commit = CommitEntry(path);
  if (!commit.ok()) {
    return commit.status();
  }
  return Status::Ok();
}

Status CowFs::Rename(const std::string& from, const std::string& to) {
  if (files_.count(to) != 0) {
    return AlreadyExistsError("cowfs: destination exists: " + to);
  }
  auto it = files_.find(from);
  if (it == files_.end()) {
    return NotFoundError("cowfs: no such file: " + from);
  }
  const uint32_t pair = it->second.pair;
  Result<SimDuration> t = WritePairSlot(pair);
  if (!t.ok()) {
    return t.status();
  }
  // The commit rewrites the pair with the entry under its new name, at its
  // last *committed* state — uncommitted data stays volatile across a
  // rename, exactly like an unsynced file keeping its dirty cache.
  auto durable_node = durable_files_.extract(from);
  assert(!durable_node.empty());
  durable_node.key() = to;
  durable_files_.insert(std::move(durable_node));
  auto node = files_.extract(from);
  node.key() = to;
  files_.insert(std::move(node));
  RefreshPairImage(pair);
  return Status::Ok();
}

Result<uint64_t> CowFs::FileSize(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return NotFoundError("cowfs: no such file: " + path);
  }
  return it->second.size;
}

bool CowFs::Exists(const std::string& path) const { return files_.count(path) != 0; }

std::vector<std::string> CowFs::List() const {
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, meta] : files_) {
    (void)meta;
    names.push_back(name);
  }
  return names;
}

uint64_t CowFs::FreeBytes() const { return free_data_blocks_ * block_size_; }

Result<RecoveryReport> CowFs::Mount() {
  RecoveryReport rep;
  const uint32_t pairs = dir_pairs();
  const uint64_t data_blocks = total_blocks_ - data_start_block_;

  // Decode every pair from its slot images: highest valid revision wins; a
  // torn commit left at most one bad slot, so a pair with *no* decodable
  // slot means external corruption, not a crash artifact.
  std::map<std::string, CommittedEntry> decoded;
  std::vector<uint64_t> revisions(pairs, 0);
  std::vector<uint32_t> entry_counts(pairs, 0);
  std::vector<uint8_t> seen_block(data_blocks, 0);
  uint32_t max_id = 0;
  for (uint32_t pair = 0; pair < pairs; ++pair) {
    Result<CowFsDecodedPair> a = DecodePairBlock(pair_images_[pair][0], pair);
    Result<CowFsDecodedPair> b = DecodePairBlock(pair_images_[pair][1], pair);
    const CowFsDecodedPair* winner = nullptr;
    if (a.ok() && (!b.ok() || a.value().revision >= b.value().revision)) {
      winner = &a.value();
    } else if (b.ok()) {
      winner = &b.value();
    } else {
      return DataLossError("cowfs: metadata pair " + std::to_string(pair) +
                           " has no decodable block");
    }
    revisions[pair] = winner->revision;
    entry_counts[pair] = static_cast<uint32_t>(winner->entries.size());
    for (const CowFsDecodedPair::Entry& e : winner->entries) {
      for (const uint64_t addr : e.blocks) {
        if (addr == 0) {
          continue;
        }
        if (addr < data_start_block_ || addr >= total_blocks_) {
          return DataLossError("cowfs: entry " + e.name +
                               " references block outside the data region");
        }
        if (seen_block[addr - data_start_block_] != 0) {
          return DataLossError("cowfs: block " + std::to_string(addr) +
                               " referenced by two entries");
        }
        seen_block[addr - data_start_block_] = 1;
      }
      CommittedEntry entry;
      entry.id = e.id;
      entry.size = e.size;
      entry.blocks = e.blocks;
      entry.pair = pair;
      if (!decoded.emplace(e.name, std::move(entry)).second) {
        return DataLossError("cowfs: duplicate entry name: " + e.name);
      }
      max_id = std::max(max_id, e.id);
    }
  }

  // Install: the decoded committed state IS the namespace — nothing to roll
  // back, no orphans to reclaim, no repairs. The free set is the complement
  // of the committed references by definition, and the rotation cursor is
  // re-derived from the commit history so allocation keeps rotating instead
  // of restarting at zero.
  durable_files_ = std::move(decoded);
  files_.clear();
  committed_ref_.assign(data_blocks, 0);
  volatile_ref_.assign(data_blocks, 0);
  free_data_blocks_ = data_blocks;
  uint64_t revision_sum = 0;
  for (uint32_t pair = 0; pair < pairs; ++pair) {
    revision_sum += revisions[pair];
  }
  pair_revisions_ = std::move(revisions);
  pair_entry_counts_ = std::move(entry_counts);
  for (const auto& [name, entry] : durable_files_) {
    FileMeta meta;
    meta.id = entry.id;
    meta.size = entry.size;
    meta.blocks = entry.blocks;
    meta.pair = entry.pair;
    meta.entry_dirty = false;
    for (const uint64_t addr : meta.blocks) {
      if (addr != 0) {
        SetCommittedRef(addr, true);
        SetVolatileRef(addr, true);
        ++rep.mapped_pages_recovered;
      }
    }
    files_.emplace(name, std::move(meta));
    ++rep.files_recovered;
  }
  alloc_cursor_ = data_blocks == 0 ? 0 : revision_sum % data_blocks;
  next_file_id_ = max_id + 1;
  return rep;
}

std::vector<uint8_t> CowFs::EncodePairBlock(
    uint32_t pair, uint64_t revision,
    const std::vector<CowFsDecodedPair::Entry>& entries) {
  std::vector<uint8_t> out(kMagic, kMagic + 4);
  PutVarint(&out, pair);
  PutVarint(&out, revision);
  PutVarint(&out, entries.size());
  for (const CowFsDecodedPair::Entry& e : entries) {
    PutVarint(&out, e.name.size());
    out.insert(out.end(), e.name.begin(), e.name.end());
    PutVarint(&out, e.id);
    PutVarint(&out, e.size);
    PutVarint(&out, e.blocks.size());
    for (const uint64_t addr : e.blocks) {
      PutVarint(&out, addr);
    }
  }
  const uint64_t sum = Fnv1a64(out.data(), out.size());
  for (size_t i = 0; i < kChecksumBytes; ++i) {
    out.push_back(static_cast<uint8_t>(sum >> (8 * i)));
  }
  return out;
}

Result<CowFsDecodedPair> CowFs::DecodePairBlock(const std::vector<uint8_t>& image,
                                                uint32_t expected_pair) {
  CowFsDecodedPair out;
  if (image.empty()) {
    return out;  // unprogrammed slot: valid, revision 0, no entries
  }
  if (image.size() < 4 + kChecksumBytes) {
    return DataLossError("cowfs: pair block too short");
  }
  if (!std::equal(kMagic, kMagic + 4, image.begin())) {
    return DataLossError("cowfs: bad pair-block magic");
  }
  const size_t payload = image.size() - kChecksumBytes;
  uint64_t stored_sum = 0;
  for (size_t i = 0; i < kChecksumBytes; ++i) {
    stored_sum |= static_cast<uint64_t>(image[payload + i]) << (8 * i);
  }
  if (Fnv1a64(image.data(), payload) != stored_sum) {
    return DataLossError("cowfs: pair-block checksum mismatch");
  }
  size_t pos = 4;
  uint64_t pair = 0;
  uint64_t entry_count = 0;
  if (!GetVarint(image.data(), payload, &pos, &pair) ||
      !GetVarint(image.data(), payload, &pos, &out.revision) ||
      !GetVarint(image.data(), payload, &pos, &entry_count)) {
    return DataLossError("cowfs: truncated pair-block header");
  }
  if (pair != expected_pair) {
    return DataLossError("cowfs: pair block belongs to pair " +
                         std::to_string(pair));
  }
  // Every entry needs at least 4 header bytes, so a huge count cannot pass
  // the remaining-bytes bound (this also caps the reserve below).
  if (entry_count > payload - pos) {
    return DataLossError("cowfs: entry count overruns block");
  }
  out.entries.reserve(entry_count);
  for (uint64_t i = 0; i < entry_count; ++i) {
    CowFsDecodedPair::Entry e;
    uint64_t name_len = 0;
    if (!GetVarint(image.data(), payload, &pos, &name_len) ||
        name_len > payload - pos) {
      return DataLossError("cowfs: entry name overruns block");
    }
    e.name.assign(reinterpret_cast<const char*>(image.data()) + pos, name_len);
    pos += name_len;
    uint64_t id = 0;
    uint64_t block_count = 0;
    if (!GetVarint(image.data(), payload, &pos, &id) ||
        !GetVarint(image.data(), payload, &pos, &e.size) ||
        !GetVarint(image.data(), payload, &pos, &block_count)) {
      return DataLossError("cowfs: truncated entry");
    }
    if (id > UINT32_MAX) {
      return DataLossError("cowfs: entry id out of range");
    }
    e.id = static_cast<uint32_t>(id);
    if (block_count > payload - pos) {
      return DataLossError("cowfs: block list overruns block");
    }
    e.blocks.reserve(block_count);
    for (uint64_t b = 0; b < block_count; ++b) {
      uint64_t addr = 0;
      if (!GetVarint(image.data(), payload, &pos, &addr)) {
        return DataLossError("cowfs: truncated block list");
      }
      e.blocks.push_back(addr);
    }
    // The committed size must fit the extent list (holes allowed).
    if (e.size > e.blocks.size() * 4096ull * 1024) {
      return DataLossError("cowfs: entry size inconsistent with extents");
    }
    out.entries.push_back(std::move(e));
  }
  if (pos != payload) {
    return DataLossError("cowfs: trailing bytes after last entry");
  }
  return out;
}

}  // namespace flashsim
