#include "src/fs/logfs.h"

#include <algorithm>
#include <cassert>

#include "src/simcore/units.h"

namespace flashsim {

LogFs::LogFs(BlockDevice& device, LogFsConfig config)
    : device_(device), config_(config), block_size_(device.PageSizeBytes()) {
  const uint64_t total_blocks = device_.CapacityBytes() / block_size_;
  const uint64_t checkpoint_blocks = 2ull * config_.blocks_per_segment;
  nat_start_block_ = checkpoint_blocks;
  main_start_block_ =
      nat_start_block_ + static_cast<uint64_t>(config_.nat_segments) * config_.blocks_per_segment;
  assert(main_start_block_ < total_blocks);
  segment_count_ = (total_blocks - main_start_block_) / config_.blocks_per_segment;
  assert(segment_count_ > config_.cleaner_free_watermark + 2);

  valid_counts_.assign(segment_count_, 0);
  segment_in_use_.assign(segment_count_, false);
  owners_.assign(segment_count_ * config_.blocks_per_segment, BlockOwner{});
  free_segments_.reserve(segment_count_);
  for (uint64_t s = segment_count_; s > 0; --s) {
    free_segments_.push_back(s - 1);
  }
  seg_indexed_.assign(segment_count_, 0);
  if (UseIndex()) {
    seg_index_.Reset(config_.blocks_per_segment + 1,
                     static_cast<uint32_t>(segment_count_),
                     BucketVictimIndex::Order::kById);
  }
}

void LogFs::IndexSegment(uint64_t seg) {
  if (!UseIndex() || seg == UINT64_MAX || !segment_in_use_[seg]) {
    return;
  }
  assert(!seg_indexed_[seg]);
  seg_index_.Insert(valid_counts_[seg], static_cast<uint32_t>(seg));
  seg_indexed_[seg] = 1;
}

void LogFs::UnindexSegment(uint64_t seg) {
  assert(seg_indexed_[seg]);
  seg_index_.Erase(valid_counts_[seg], static_cast<uint32_t>(seg));
  seg_indexed_[seg] = 0;
}

Result<SimDuration> LogFs::SubmitRange(IoKind kind, uint64_t start_block,
                                       uint64_t nblocks, uint64_t* bytes_out) {
  IoRequest req;
  req.kind = kind;
  req.offset = start_block * block_size_;
  req.length = nblocks * block_size_;
  Result<IoCompletion> done = device_.Submit(req);
  if (!done.ok()) {
    return done.status();
  }
  if (bytes_out != nullptr) {
    *bytes_out = req.length;
  }
  return done.value().service_time;
}

Result<uint64_t> LogFs::TakeFreeSegment(SimDuration& time_acc, bool allow_clean) {
  if (allow_clean) {
    while (free_segments_.size() <= config_.cleaner_free_watermark) {
      Status cleaned = CleanOneSegment(time_acc);
      if (!cleaned.ok()) {
        break;  // nothing cleanable; fall through to whatever is left
      }
    }
  }
  if (free_segments_.empty()) {
    return ResourceExhaustedError("logfs: out of segments");
  }
  const uint64_t seg = free_segments_.back();
  free_segments_.pop_back();
  segment_in_use_[seg] = true;
  return seg;
}

void LogFs::InvalidateBlock(uint64_t addr) {
  if (addr == 0) {
    return;
  }
  const uint64_t idx = MainAreaIndex(addr);
  if (owners_[idx].type == OwnerType::kNone) {
    return;
  }
  owners_[idx] = BlockOwner{};
  if (durable_refs_.count(addr) != 0) {
    return;  // still pinned by the durable snapshot; stays live for recovery
  }
  const uint64_t seg = SegmentOfAddr(addr);
  assert(valid_counts_[seg] > 0);
  if (UseIndex() && seg_indexed_[seg]) {
    seg_index_.Move(valid_counts_[seg], valid_counts_[seg] - 1,
                    static_cast<uint32_t>(seg));
  }
  --valid_counts_[seg];
}

void LogFs::DurableRelease(uint64_t addr) {
  if (addr == 0) {
    return;
  }
  auto it = durable_refs_.find(addr);
  if (it == durable_refs_.end()) {
    return;
  }
  durable_refs_.erase(it);
  if (owners_[MainAreaIndex(addr)].type != OwnerType::kNone) {
    return;  // still current-live; the count keeps including it
  }
  const uint64_t seg = SegmentOfAddr(addr);
  assert(valid_counts_[seg] > 0);
  if (UseIndex() && seg_indexed_[seg]) {
    seg_index_.Move(valid_counts_[seg], valid_counts_[seg] - 1,
                    static_cast<uint32_t>(seg));
  }
  --valid_counts_[seg];
}

void LogFs::DurableReleaseFile(const DurableFile& snapshot) {
  for (uint64_t addr : snapshot.blocks) {
    DurableRelease(addr);
  }
  DurableRelease(snapshot.node_block);
}

void LogFs::DurableAcquireFile(const FileMeta& file) {
  // Every snapshotted address is the file's current block, so it is already
  // counted live; acquiring only records the back-reference.
  for (uint32_t fb = 0; fb < file.blocks.size(); ++fb) {
    if (file.blocks[fb] == 0) {
      continue;
    }
    assert(owners_[MainAreaIndex(file.blocks[fb])].type != OwnerType::kNone);
    durable_refs_[file.blocks[fb]] =
        DurableRef{file.id, fb, /*is_node=*/false};
  }
  if (file.node_block != 0) {
    durable_refs_[file.node_block] = DurableRef{file.id, 0, /*is_node=*/true};
  }
}

Result<uint64_t> LogFs::AppendBlock(LogType log, BlockOwner owner, SimDuration& time_acc,
                                    bool allow_clean) {
  LogHead& head = log == LogType::kData ? data_log_ : node_log_;
  if (head.segment == UINT64_MAX || head.offset == config_.blocks_per_segment) {
    Result<uint64_t> seg = TakeFreeSegment(time_acc, allow_clean);
    if (!seg.ok()) {
      return seg.status();
    }
    // TakeFreeSegment may have run the cleaner, and the cleaner's migration
    // appends reenter this function: the same head can already have been
    // rotated onto a fresh segment by the time the pop returns. Re-test the
    // rotation condition against the *current* head; blindly installing the
    // popped segment here would orphan the reentrantly-installed head as a
    // never-indexed, never-scannable zombie.
    if (head.segment != UINT64_MAX && head.offset < config_.blocks_per_segment) {
      segment_in_use_[seg.value()] = false;
      free_segments_.push_back(seg.value());
    } else {
      // The outgoing head is no longer excluded as a log head, so it becomes
      // a cleaner candidate exactly now.
      IndexSegment(head.segment);
      head.segment = seg.value();
      head.offset = 0;
    }
  }
  const uint64_t addr =
      main_start_block_ + head.segment * config_.blocks_per_segment + head.offset;
  ++head.offset;
  owners_[MainAreaIndex(addr)] = owner;
  ++valid_counts_[head.segment];
  return addr;
}

Status LogFs::CleanOneSegment(SimDuration& time_acc) {
  // Greedy victim: in-use, not a log head, fewest valid blocks (lowest
  // segment on ties). Identical pick in both modes; the statuses separate
  // "no candidate at all" from "only fully-valid candidates" because the
  // caller can retry the latter after invalidations but not the former.
  uint64_t victim = UINT64_MAX;
  if (UseIndex()) {
    if (seg_index_.empty()) {
      return ResourceExhaustedError("logfs: no cleanable segment");
    }
    uint32_t bucket = 0;
    uint32_t id = 0;
    // Candidates in the full-valid bucket (== blocks_per_segment) exist but
    // are excluded by the limit; cleaning one would only copy data.
    if (!seg_index_.PickMin(config_.blocks_per_segment, &bucket, &id,
                            &stats_.cleaner_candidates_examined)) {
      return FailedPreconditionError("logfs: all candidate segments fully valid");
    }
    victim = id;
  } else {
    uint32_t best_valid = config_.blocks_per_segment + 1;
    stats_.cleaner_candidates_examined += segment_count_;
    for (uint64_t s = 0; s < segment_count_; ++s) {
      if (!segment_in_use_[s] || s == data_log_.segment || s == node_log_.segment) {
        continue;
      }
      if (valid_counts_[s] < best_valid) {
        best_valid = valid_counts_[s];
        victim = s;
      }
    }
    if (victim == UINT64_MAX) {
      return ResourceExhaustedError("logfs: no cleanable segment");
    }
    if (best_valid >= config_.blocks_per_segment) {
      return FailedPreconditionError("logfs: all candidate segments fully valid");
    }
  }
  ++stats_.cleaner_picks;
  stats_.cleaner_victim_hash = VictimHashMix(stats_.cleaner_victim_hash, victim);
  if (UseIndex()) {
    // Out of the index before migration: re-appends during the loop can
    // rotate heads and invalidate blocks of *other* segments, but the
    // victim's own counts drop without index moves.
    UnindexSegment(victim);
  }
  const uint64_t seg_base = main_start_block_ + victim * config_.blocks_per_segment;
  for (uint32_t b = 0; b < config_.blocks_per_segment; ++b) {
    const uint64_t addr = seg_base + b;
    BlockOwner owner = owners_[MainAreaIndex(addr)];
    if (owner.type != OwnerType::kNone &&
        files_by_id_.find(owner.file_id) == files_by_id_.end()) {
      InvalidateBlock(addr);  // stale current ref; may stay durable-pinned
      owner = BlockOwner{};
    }
    auto dref_it = durable_refs_.find(addr);
    const bool durable = dref_it != durable_refs_.end();
    if (owner.type == OwnerType::kNone && !durable) {
      continue;
    }
    // Read the live block, then re-append it to the proper log. A block only
    // the durable snapshot references (its current copy was superseded since
    // the last node write) moves too — discarding it would lose the state a
    // crash must recover to.
    const DurableRef dref = durable ? dref_it->second : DurableRef{};
    const bool is_node = owner.type != OwnerType::kNone
                             ? owner.type == OwnerType::kNode
                             : dref.is_node;
    Result<SimDuration> rd = SubmitRange(IoKind::kRead, addr, 1, nullptr);
    if (rd.ok()) {
      time_acc += rd.value();
    }
    InvalidateBlock(addr);
    if (durable) {
      DurableRelease(addr);
    }
    const LogType log = is_node ? LogType::kNode : LogType::kData;
    // Abandoned migrations (free-pool exhaustion, power loss) leave the
    // victim in use with live blocks remaining, so it must go back into the
    // index or the indexed cleaner would never see it again while the
    // linear reference scan still does. Its count is current: index moves
    // were skipped while it was unindexed, but valid_counts_ kept updating.
    Result<uint64_t> dst = AppendBlock(log, owner, time_acc, /*allow_clean=*/false);
    if (!dst.ok()) {
      IndexSegment(victim);
      return dst.status();
    }
    uint64_t moved = 0;
    Result<SimDuration> wr = SubmitRange(IoKind::kWrite, dst.value(), 1, &moved);
    if (!wr.ok()) {
      IndexSegment(victim);
      return wr.status();
    }
    time_acc += wr.value();
    stats_.cleaner_bytes_moved += moved;
    if (owner.type == OwnerType::kData) {
      files_by_id_[owner.file_id]->blocks[owner.file_block] = dst.value();
    } else if (owner.type == OwnerType::kNode) {
      files_by_id_[owner.file_id]->node_block = dst.value();
    }
    if (durable) {
      durable_refs_[dst.value()] = dref;
      DurableFile& snapshot = durable_files_[dref.file_id];
      if (dref.is_node) {
        snapshot.node_block = dst.value();
      } else {
        snapshot.blocks[dref.file_block] = dst.value();
      }
    }
  }
  // Segment is empty: discard it so the device FTL can reclaim the space.
  Result<SimDuration> discard =
      SubmitRange(IoKind::kDiscard, seg_base, config_.blocks_per_segment, nullptr);
  if (discard.ok()) {
    time_acc += discard.value();
  }
  segment_in_use_[victim] = false;
  valid_counts_[victim] = 0;
  free_segments_.push_back(victim);
  ++segments_cleaned_;
  return Status::Ok();
}

Status LogFs::CleanNow(SimDuration* time_out) {
  SimDuration time_acc;
  Status cleaned = CleanOneSegment(time_acc);
  if (time_out != nullptr) {
    *time_out += time_acc;
  }
  return cleaned;
}

Result<SimDuration> LogFs::WriteNodeBlock(FileMeta& file, bool allow_clean) {
  SimDuration time_acc;
  InvalidateBlock(file.node_block);
  BlockOwner owner;
  owner.type = OwnerType::kNode;
  owner.file_id = file.id;
  Result<uint64_t> addr = AppendBlock(LogType::kNode, owner, time_acc, allow_clean);
  if (!addr.ok()) {
    return addr.status();
  }
  file.node_block = addr.value();
  file.node_dirty = false;
  uint64_t bytes = 0;
  Result<SimDuration> t = SubmitRange(IoKind::kWrite, addr.value(), 1, &bytes);
  if (!t.ok()) {
    return t.status();
  }
  stats_.device_metadata_bytes += bytes;
  ++stats_.metadata_commits;
  // Durability point: the node block now on the device carries this file's
  // size and mappings, so the durable snapshot advances to the current state
  // (and the previous snapshot's pins are dropped).
  auto durable_it = durable_files_.find(file.id);
  if (durable_it != durable_files_.end()) {
    DurableReleaseFile(durable_it->second);
  }
  DurableFile snapshot;
  snapshot.name = names_by_id_[file.id];
  snapshot.size = file.size;
  snapshot.blocks = file.blocks;
  snapshot.node_block = file.node_block;
  durable_files_[file.id] = std::move(snapshot);
  DurableAcquireFile(file);
  ++node_writes_since_checkpoint_;
  ++dirty_nat_entries_;
  Result<SimDuration> cp = MaybeCheckpoint();
  if (!cp.ok()) {
    return cp.status();
  }
  return time_acc + t.value() + cp.value();
}

Result<SimDuration> LogFs::MaybeCheckpoint() {
  if (node_writes_since_checkpoint_ < config_.checkpoint_interval_nodes) {
    return SimDuration();
  }
  node_writes_since_checkpoint_ = 0;
  SimDuration total;
  // Flush dirty NAT blocks.
  const uint64_t nat_blocks =
      CeilDiv(std::max<uint64_t>(1, dirty_nat_entries_), config_.nat_entries_per_block);
  const uint64_t nat_area_blocks =
      static_cast<uint64_t>(config_.nat_segments) * config_.blocks_per_segment;
  for (uint64_t k = 0; k < nat_blocks; ++k) {
    uint64_t bytes = 0;
    Result<SimDuration> t = SubmitRange(
        IoKind::kWrite, nat_start_block_ + (nat_cursor_ % nat_area_blocks), 1, &bytes);
    if (!t.ok()) {
      return t.status();
    }
    ++nat_cursor_;
    total += t.value();
    stats_.device_journal_bytes += bytes;
  }
  dirty_nat_entries_ = 0;
  // Two checkpoint-pack blocks, alternating between the two checkpoint slots.
  for (int k = 0; k < 2; ++k) {
    uint64_t bytes = 0;
    Result<SimDuration> t = SubmitRange(
        IoKind::kWrite, (checkpoint_cursor_ % 2) * config_.blocks_per_segment + k, 1,
        &bytes);
    if (!t.ok()) {
      return t.status();
    }
    total += t.value();
    stats_.device_journal_bytes += bytes;
  }
  ++checkpoint_cursor_;
  return total;
}

Status LogFs::Create(const std::string& path) {
  if (files_.count(path) != 0) {
    return AlreadyExistsError("logfs: file exists: " + path);
  }
  FileMeta meta;
  meta.id = next_file_id_++;
  meta.node_dirty = true;
  auto [it, inserted] = files_.emplace(path, std::move(meta));
  files_by_id_[it->second.id] = &it->second;
  names_by_id_[it->second.id] = path;
  return Status::Ok();
}

Result<SimDuration> LogFs::Write(const std::string& path, uint64_t offset,
                                 uint64_t length, bool sync) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return NotFoundError("logfs: no such file: " + path);
  }
  if (length == 0) {
    return InvalidArgumentError("logfs: zero-length write");
  }
  FileMeta& file = it->second;
  const uint64_t first = offset / block_size_;
  const uint64_t last = (offset + length - 1) / block_size_;
  if (last >= file.blocks.size()) {
    file.blocks.resize(last + 1, 0);
  }

  SimDuration time_acc;
  // Append all data blocks, coalescing physically-contiguous appends.
  uint64_t run_start = 0;
  uint64_t run_len = 0;
  auto flush_run = [&]() -> Status {
    if (run_len == 0) {
      return Status::Ok();
    }
    uint64_t bytes = 0;
    Result<SimDuration> t = SubmitRange(IoKind::kWrite, run_start, run_len, &bytes);
    if (!t.ok()) {
      return t.status();
    }
    time_acc += t.value();
    stats_.device_data_bytes += bytes;
    run_len = 0;
    return Status::Ok();
  };

  for (uint64_t fb = first; fb <= last; ++fb) {
    InvalidateBlock(file.blocks[fb]);
    BlockOwner owner;
    owner.type = OwnerType::kData;
    owner.file_id = file.id;
    owner.file_block = static_cast<uint32_t>(fb);
    Result<uint64_t> addr = AppendBlock(LogType::kData, owner, time_acc, true);
    if (!addr.ok()) {
      return addr.status();
    }
    file.blocks[fb] = addr.value();
    if (run_len > 0 && addr.value() == run_start + run_len) {
      ++run_len;
    } else {
      FLASHSIM_RETURN_IF_ERROR(flush_run());
      run_start = addr.value();
      run_len = 1;
    }
  }
  FLASHSIM_RETURN_IF_ERROR(flush_run());

  stats_.app_bytes_written += length;
  file.size = std::max(file.size, offset + length);
  file.node_dirty = true;

  if (sync) {
    // fsync-path: the node block carrying the new mappings must be persisted
    // — this is the 2x device I/O of 4 KiB sync writes on F2FS.
    Result<SimDuration> node = WriteNodeBlock(file, /*allow_clean=*/true);
    if (!node.ok()) {
      return node.status();
    }
    time_acc += node.value();
    ++stats_.fsyncs;
  }
  return time_acc;
}

Result<SimDuration> LogFs::Fsync(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return NotFoundError("logfs: no such file: " + path);
  }
  ++stats_.fsyncs;
  if (!it->second.node_dirty) {
    return SimDuration();
  }
  return WriteNodeBlock(it->second, /*allow_clean=*/true);
}

Result<SimDuration> LogFs::Read(const std::string& path, uint64_t offset,
                                uint64_t length) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return NotFoundError("logfs: no such file: " + path);
  }
  if (offset + length > it->second.size) {
    return OutOfRangeError("logfs: read past end of file");
  }
  const uint64_t first = offset / block_size_;
  const uint64_t last = (offset + length - 1) / block_size_;
  SimDuration total;
  for (uint64_t fb = first; fb <= last; ++fb) {
    Result<SimDuration> t = SubmitRange(IoKind::kRead, it->second.blocks[fb], 1, nullptr);
    if (!t.ok()) {
      return t.status();
    }
    total += t.value();
  }
  return total;
}

Status LogFs::Unlink(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return NotFoundError("logfs: no such file: " + path);
  }
  FileMeta& file = it->second;
  // The dentry removal is modelled as durable immediately, so the durable
  // snapshot (and its pins) go with the file — a recovered namespace never
  // resurrects an unlinked name.
  auto durable_it = durable_files_.find(file.id);
  if (durable_it != durable_files_.end()) {
    DurableReleaseFile(durable_it->second);
    durable_files_.erase(durable_it);
  }
  for (uint64_t addr : file.blocks) {
    InvalidateBlock(addr);
  }
  InvalidateBlock(file.node_block);
  files_by_id_.erase(file.id);
  names_by_id_.erase(file.id);
  files_.erase(it);
  return Status::Ok();
}

Status LogFs::Truncate(const std::string& path, uint64_t new_size) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return NotFoundError("logfs: no such file: " + path);
  }
  FileMeta& file = it->second;
  if (new_size >= file.size) {
    file.size = new_size;
    file.node_dirty = true;
    return Status::Ok();
  }
  const uint64_t keep_blocks = CeilDiv(new_size, block_size_);
  for (uint64_t fb = keep_blocks; fb < file.blocks.size(); ++fb) {
    InvalidateBlock(file.blocks[fb]);
  }
  file.blocks.resize(keep_blocks);
  file.size = new_size;
  file.node_dirty = true;
  return Status::Ok();
}

Status LogFs::Rename(const std::string& from, const std::string& to) {
  if (files_.count(to) != 0) {
    return AlreadyExistsError("logfs: destination exists: " + to);
  }
  auto node = files_.extract(from);
  if (node.empty()) {
    return NotFoundError("logfs: no such file: " + from);
  }
  node.key() = to;
  const auto pos = files_.insert(std::move(node)).position;
  // std::map node handles keep the mapped object's address stable, so the
  // id-indexed pointers remain valid; refresh them anyway for clarity.
  files_by_id_[pos->second.id] = &pos->second;
  names_by_id_[pos->second.id] = to;
  pos->second.node_dirty = true;  // the rename must reach the node/dentry
  // Dentry updates are durable immediately (see Unlink): a crash after a
  // rename recovers the file under its new name, with the last-synced
  // contents. Files never synced have no durable entry — nothing to move.
  auto durable_it = durable_files_.find(pos->second.id);
  if (durable_it != durable_files_.end()) {
    durable_it->second.name = to;
  }
  return Status::Ok();
}

Result<uint64_t> LogFs::FileSize(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return NotFoundError("logfs: no such file: " + path);
  }
  return it->second.size;
}

bool LogFs::Exists(const std::string& path) const { return files_.count(path) != 0; }

std::vector<std::string> LogFs::List() const {
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, meta] : files_) {
    names.push_back(name);
  }
  return names;
}

Result<RecoveryReport> LogFs::Mount() {
  RecoveryReport rep;
  // Everything not reachable from a durable snapshot is volatile and lost;
  // count the in-RAM files about to vanish as the orphans an fsck would log.
  for (const auto& [name, meta] : files_) {
    (void)name;
    if (durable_files_.count(meta.id) == 0) {
      ++rep.orphan_files;
    }
  }
  // Roll-forward recovery discards files with no durable node block — each
  // one is a repair the mount performed to reach a consistent namespace.
  rep.fsck_repairs = rep.orphan_files;

  std::fill(valid_counts_.begin(), valid_counts_.end(), 0u);
  std::fill(segment_in_use_.begin(), segment_in_use_.end(), false);
  std::fill(owners_.begin(), owners_.end(), BlockOwner{});
  std::fill(seg_indexed_.begin(), seg_indexed_.end(), 0);
  if (UseIndex()) {
    seg_index_.Reset(config_.blocks_per_segment + 1,
                     static_cast<uint32_t>(segment_count_),
                     BucketVictimIndex::Order::kById);
  }
  durable_refs_.clear();
  files_.clear();
  files_by_id_.clear();
  names_by_id_.clear();
  data_log_ = LogHead{};
  node_log_ = LogHead{};

  uint32_t max_id = 0;
  for (const auto& [id, snapshot] : durable_files_) {
    FileMeta meta;
    meta.id = id;
    meta.size = snapshot.size;
    meta.blocks = snapshot.blocks;
    meta.node_block = snapshot.node_block;
    meta.node_dirty = false;
    auto [it, inserted] = files_.emplace(snapshot.name, std::move(meta));
    assert(inserted);
    files_by_id_[id] = &it->second;
    names_by_id_[id] = snapshot.name;
    max_id = std::max(max_id, id);
    ++rep.files_recovered;
    const FileMeta& file = it->second;
    for (uint32_t fb = 0; fb < file.blocks.size(); ++fb) {
      const uint64_t addr = file.blocks[fb];
      if (addr == 0) {
        continue;
      }
      BlockOwner owner;
      owner.type = OwnerType::kData;
      owner.file_id = id;
      owner.file_block = fb;
      owners_[MainAreaIndex(addr)] = owner;
      durable_refs_[addr] = DurableRef{id, fb, /*is_node=*/false};
      const uint64_t seg = SegmentOfAddr(addr);
      ++valid_counts_[seg];
      segment_in_use_[seg] = true;
      ++rep.mapped_pages_recovered;
    }
    if (file.node_block != 0) {
      BlockOwner owner;
      owner.type = OwnerType::kNode;
      owner.file_id = id;
      owners_[MainAreaIndex(file.node_block)] = owner;
      durable_refs_[file.node_block] = DurableRef{id, 0, /*is_node=*/true};
      const uint64_t seg = SegmentOfAddr(file.node_block);
      ++valid_counts_[seg];
      segment_in_use_[seg] = true;
      ++rep.mapped_pages_recovered;
    }
  }
  next_file_id_ = max_id + 1;

  free_segments_.clear();
  for (uint64_t s = segment_count_; s > 0; --s) {
    if (!segment_in_use_[s - 1]) {
      free_segments_.push_back(s - 1);
    }
  }
  for (uint64_t s = 0; s < segment_count_; ++s) {
    if (segment_in_use_[s]) {
      ++rep.segments_replayed;
      IndexSegment(s);  // no segment is a log head after a mount
    }
  }
  node_writes_since_checkpoint_ = 0;
  dirty_nat_entries_ = 0;
  return rep;
}

uint64_t LogFs::FreeBytes() const {
  uint64_t blocks = free_segments_.size() * config_.blocks_per_segment;
  if (data_log_.segment != UINT64_MAX) {
    blocks += config_.blocks_per_segment - data_log_.offset;
  }
  return blocks * block_size_;
}

}  // namespace flashsim
