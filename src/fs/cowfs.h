// CowFs: a littlefs-style bounded-RAM copy-on-write file system model.
//
// Layout (block-granular, block size == device page size):
//   [ superblock pair (2 blocks) | metadata pairs (2 blocks each) | data ]
//
// There is no journal and no fsck repair path: every on-media state is valid
// by construction. The namespace lives in a fixed set of *metadata pairs* —
// two alternating blocks per pair, each commit rewriting the non-current
// block with an incremented revision counter. Mount picks the block with the
// highest valid revision per pair; a torn commit simply leaves the older
// revision as the winner. A commit persists exactly the committing file's
// entry (other entries are re-encoded at their last committed state), so the
// durability barrier is per file, like LogFs — but Create, Unlink, Truncate
// and Rename each carry their own commit, making namespace operations
// durable immediately (a strictly stronger contract than either ExtFs or
// LogFs; see DESIGN.md §16).
//
// File extents are CTZ-skip-list style: append is O(1) — one data-block
// write, no metadata traffic until the next commit — and truncation is O(1)
// (the list is backward-linked from the head). The price is overwrite:
// because block k's address is baked into the pointer chains of every later
// block, rewriting block k copies the whole suffix k..n-1 to fresh blocks
// (accounted as cleaner_bytes_moved). That asymmetry is CowFs's structural
// write-amplification signature in the three-way Figure 4 shootout: ~1.0 for
// appends, O(file length) for random sync overwrites.
//
// Allocation is wear-aware free-block rotation (the littlefs lookahead
// model): a cursor walks the data region round-robin and never resets, so
// erase load spreads over the whole device; blocks freed by a commit are
// discarded (TRIM) at that commit. Copy-on-write never overwrites a block
// referenced by committed metadata, so recovery needs no rollback, no orphan
// scan, and no repairs — Mount() decodes the pair images and reports
// fsck_repairs == 0 by construction.

#ifndef SRC_FS_COWFS_H_
#define SRC_FS_COWFS_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/fs/filesystem.h"

namespace flashsim {

struct CowFsConfig {
  // Number of metadata pairs (2 blocks each). 0 = auto: one pair per 1024
  // device blocks, minimum 4.
  uint32_t dir_pairs = 0;
  // Directory entries a single metadata pair can hold.
  uint32_t entries_per_pair = 64;
};

// One decoded metadata-pair block: the committed directory slice it held.
struct CowFsDecodedPair {
  uint64_t revision = 0;
  struct Entry {
    std::string name;
    uint32_t id = 0;
    uint64_t size = 0;
    std::vector<uint64_t> blocks;  // absolute device block; 0 = hole
  };
  std::vector<Entry> entries;
};

class CowFs : public Filesystem {
 public:
  CowFs(BlockDevice& device, CowFsConfig config = {});

  // Filesystem:
  Status Create(const std::string& path) override;
  Result<SimDuration> Write(const std::string& path, uint64_t offset, uint64_t length,
                            bool sync) override;
  Result<SimDuration> Fsync(const std::string& path) override;
  Result<SimDuration> Read(const std::string& path, uint64_t offset,
                           uint64_t length) override;
  Status Unlink(const std::string& path) override;
  Status Truncate(const std::string& path, uint64_t new_size) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Result<uint64_t> FileSize(const std::string& path) const override;
  bool Exists(const std::string& path) const override;
  std::vector<std::string> List() const override;
  uint64_t FreeBytes() const override;
  const FsStats& stats() const override { return stats_; }
  const char* fs_type() const override { return "cowfs"; }
  BlockDevice& device() override { return device_; }

  // Crash recovery: decodes every metadata pair (highest valid revision
  // wins), rebuilds the namespace and the free set from the committed
  // entries alone, and re-derives the rotation cursor. Nothing is rolled
  // back, reclaimed, or repaired — fsck_repairs, orphan_files and
  // orphan_blocks are all zero on every mount. Fails with kDataLoss only if
  // a pair has no decodable block (possible only under external corruption,
  // never from a power cut mid-commit).
  Result<RecoveryReport> Mount() override;

  // --- On-media commit-block codec, exposed for the decoder fuzz test -----
  // Encoding: "CWFS" magic, then varints (pair, revision, entry count), then
  // per entry (name length, name bytes, id, size, block count, one varint
  // per block address), sealed by a little-endian FNV-1a 64 checksum.
  static std::vector<uint8_t> EncodePairBlock(uint32_t pair, uint64_t revision,
                                              const std::vector<CowFsDecodedPair::Entry>& entries);
  // Clean kDataLoss on any malformed input (bad magic, truncated varint,
  // overrun, checksum mismatch) — never UB. An empty image decodes as a
  // valid revision-0 block with no entries (an unprogrammed pair slot).
  static Result<CowFsDecodedPair> DecodePairBlock(const std::vector<uint8_t>& image,
                                                  uint32_t expected_pair);

  // Raw pair-slot images, for the fuzz test to read and corrupt. Mount()
  // decodes exactly these.
  const std::vector<uint8_t>& PairImageForTest(uint32_t pair, uint32_t slot) const {
    return pair_images_[pair][slot];
  }
  void CorruptPairImageForTest(uint32_t pair, uint32_t slot,
                               std::vector<uint8_t> image) {
    pair_images_[pair][slot] = std::move(image);
  }
  uint32_t dir_pairs() const { return static_cast<uint32_t>(pair_revisions_.size()); }

 private:
  struct FileMeta {
    uint32_t id = 0;
    uint64_t size = 0;
    std::vector<uint64_t> blocks;  // absolute device block per file block; 0 = hole
    uint32_t pair = 0;             // metadata pair holding this entry
    bool entry_dirty = false;      // size/extents newer than the committed entry
  };
  struct CommittedEntry {
    uint32_t id = 0;
    uint64_t size = 0;
    std::vector<uint64_t> blocks;
    uint32_t pair = 0;
  };

  // Reference tracking: a data block is free iff neither the committed
  // namespace nor the volatile one references it; the allocator may never
  // hand out a committed block (the copy-on-write invariant).
  void SetVolatileRef(uint64_t addr, bool on);
  void SetCommittedRef(uint64_t addr, bool on);
  bool IsFree(uint64_t idx) const {
    return !committed_ref_[idx] && !volatile_ref_[idx];
  }

  // Wear-aware rotation: next free block at/after the cursor; the cursor
  // only ever advances (mod data region), never resets.
  Result<uint64_t> AllocateBlock();

  Result<SimDuration> SubmitBlocks(IoKind kind, const std::vector<uint64_t>& blocks,
                                   uint64_t* bytes_out);

  // One commit-block write into `pair`'s non-current slot; bumps the
  // revision on success. On a power cut the durable record is unchanged —
  // the torn block loses the revision race at mount.
  Result<SimDuration> WritePairSlot(uint32_t pair);

  // The durability barrier for one file: WritePairSlot, then fold `name`'s
  // current volatile state into the committed snapshot, rediff block
  // references, and discard newly-free blocks.
  Result<SimDuration> CommitEntry(const std::string& name);

  // Re-encode `pair`'s committed directory slice into its current slot image.
  void RefreshPairImage(uint32_t pair);

  // Sorted discard of blocks that just lost their last reference.
  Result<SimDuration> DiscardBlocks(std::vector<uint64_t>& blocks);

  // Picks the least-loaded metadata pair for a new entry.
  Result<uint32_t> AssignPair() const;

  uint64_t PairBlockAddr(uint32_t pair, uint32_t slot) const {
    return 2 + 2ull * pair + slot;
  }
  uint64_t DataIndex(uint64_t addr) const { return addr - data_start_block_; }

  BlockDevice& device_;
  CowFsConfig config_;
  uint32_t block_size_;

  uint64_t data_start_block_ = 0;
  uint64_t total_blocks_ = 0;

  std::vector<uint8_t> committed_ref_;  // per data-region block
  std::vector<uint8_t> volatile_ref_;
  uint64_t free_data_blocks_ = 0;
  uint64_t alloc_cursor_ = 0;

  std::map<std::string, FileMeta> files_;
  // Namespace as of the last commit per entry — always key-identical to
  // files_ (namespace operations commit synchronously); only sizes/extents
  // can be newer in files_.
  std::map<std::string, CommittedEntry> durable_files_;

  std::vector<uint64_t> pair_revisions_;
  std::vector<uint32_t> pair_entry_counts_;
  // The two on-media slot images per pair; slot (revision & 1) is current.
  std::vector<std::array<std::vector<uint8_t>, 2>> pair_images_;

  uint32_t next_file_id_ = 1;

  FsStats stats_;
};

}  // namespace flashsim

#endif  // SRC_FS_COWFS_H_
