// File-system abstraction over a BlockDevice.
//
// The paper's phone experiments write through a file system, and the choice
// matters: F2FS roughly doubles the device I/O of 4 KiB synchronous writes
// (node + NAT updates) relative to Ext4 (Figure 4), while also lowering
// attack throughput (Figure 3). Two implementations reproduce this
// mechanically: ExtFs (journaling, in-place data) and LogFs (log-structured
// with node blocks and segment cleaning).
//
// The simulator does not store file contents — files are sizes plus block
// mappings — so reads/writes carry lengths, not buffers.

#ifndef SRC_FS_FILESYSTEM_H_
#define SRC_FS_FILESYSTEM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/blockdev/block_device.h"
#include "src/simcore/recovery.h"
#include "src/simcore/status.h"
#include "src/simcore/victim_index.h"

namespace flashsim {

// Write-traffic breakdown, for write-amplification analysis at the FS level.
struct FsStats {
  uint64_t app_bytes_written = 0;
  uint64_t device_data_bytes = 0;      // file payload reaching the device
  uint64_t device_metadata_bytes = 0;  // inode/node/NAT/bitmap traffic
  uint64_t device_journal_bytes = 0;   // journal / checkpoint traffic
  uint64_t fsyncs = 0;
  uint64_t cleaner_bytes_moved = 0;    // log-structured segment cleaning /
                                       // copy-on-write suffix relocation
  // Durability-barrier commits: journal commits (ExtFs), node-block writes
  // (LogFs), metadata-pair commits (CowFs).
  uint64_t metadata_commits = 0;

  // Segment-cleaner victim-selection observability (log-structured FS only);
  // same semantics as the FtlStats GC counters.
  uint64_t cleaner_picks = 0;
  uint64_t cleaner_candidates_examined = 0;
  uint64_t cleaner_victim_hash = kVictimHashInit;

  uint64_t DeviceBytesTotal() const {
    return device_data_bytes + device_metadata_bytes + device_journal_bytes +
           cleaner_bytes_moved;
  }
  // Device bytes per app byte; >= 1 in steady state.
  double FsWriteAmplification() const {
    return app_bytes_written == 0 ? 1.0
                                  : static_cast<double>(DeviceBytesTotal()) /
                                        static_cast<double>(app_bytes_written);
  }
};

class Filesystem {
 public:
  virtual ~Filesystem() = default;

  // Creates an empty file. Fails if it already exists.
  virtual Status Create(const std::string& path) = 0;

  // Writes `length` bytes at `offset`, extending the file as needed. Data
  // may be buffered until Fsync, depending on the implementation and `sync`.
  // Returns the simulated time consumed.
  virtual Result<SimDuration> Write(const std::string& path, uint64_t offset,
                                    uint64_t length, bool sync) = 0;

  // Flushes buffered data and metadata for the file.
  virtual Result<SimDuration> Fsync(const std::string& path) = 0;

  // Reads `length` bytes at `offset`.
  virtual Result<SimDuration> Read(const std::string& path, uint64_t offset,
                                   uint64_t length) = 0;

  // Deletes the file, discarding its blocks (TRIM) on supporting devices.
  virtual Status Unlink(const std::string& path) = 0;

  // Truncates (or sparsely extends) the file to `new_size`. Shrinking frees
  // the dropped blocks and discards them on the device.
  virtual Status Truncate(const std::string& path, uint64_t new_size) = 0;

  // Renames a file. Fails if the destination exists.
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  virtual Result<uint64_t> FileSize(const std::string& path) const = 0;
  virtual bool Exists(const std::string& path) const = 0;
  virtual std::vector<std::string> List() const = 0;

  // Bytes still allocatable for file data.
  virtual uint64_t FreeBytes() const = 0;

  // Crash recovery: discards all volatile state and rebuilds the namespace
  // from the file system's durable record (LogFs: the last node block written
  // per file; ExtFs: the last journal commit). Call after the device itself
  // has been remounted (FlashDevice::Remount). The durability contract —
  // which operations survive a crash once acknowledged — is per-FS and
  // documented in DESIGN.md §11.
  virtual Result<RecoveryReport> Mount() = 0;

  virtual const FsStats& stats() const = 0;
  virtual const char* fs_type() const = 0;

  // The device this file system is mounted on.
  virtual BlockDevice& device() = 0;
};

}  // namespace flashsim

#endif  // SRC_FS_FILESYSTEM_H_
