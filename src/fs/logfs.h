// LogFs: an F2FS-like log-structured file system model.
//
// Layout (block-granular, block size == device page size):
//   [ checkpoint area | NAT area | main area (segments) ]
//
// The main area is divided into segments; two append-only logs (data, node)
// each own an open segment. A data write appends the new block to the data
// log and invalidates the old copy; persisting the mapping requires writing
// the file's *node block* to the node log (F2FS's "additional mapping
// mechanism"). A synchronous 4 KiB write therefore issues 4 KiB of data plus
// a 4 KiB node block — doubling device I/O, which is the entire Figure 4
// F2FS effect. The Node Address Table (NAT) is flushed at checkpoints.
//
// A segment cleaner (greedy, fewest-valid-blocks victim) migrates live
// blocks when free segments run low; cleaned segments are discarded (TRIM)
// so the device FTL can reclaim them cheaply.

#ifndef SRC_FS_LOGFS_H_
#define SRC_FS_LOGFS_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/fs/filesystem.h"

namespace flashsim {

struct LogFsConfig {
  uint32_t blocks_per_segment = 512;  // 2 MiB segments at 4 KiB blocks
  uint32_t nat_segments = 2;
  // Cleaner engages when free segments drop to this count.
  uint32_t cleaner_free_watermark = 8;
  // Checkpoint (+ NAT flush) every this many node-block writes.
  uint32_t checkpoint_interval_nodes = 1024;
  // NAT entries per NAT block (455 in real F2FS; any positive value works).
  uint32_t nat_entries_per_block = 455;
  // Cleaner victim location: incrementally-indexed O(1) picks, or the
  // bit-exact O(segments) reference scan.
  VictimSelect victim_select = VictimSelect::kIndexed;
};

class LogFs : public Filesystem {
 public:
  LogFs(BlockDevice& device, LogFsConfig config = {});

  // Filesystem:
  Status Create(const std::string& path) override;
  Result<SimDuration> Write(const std::string& path, uint64_t offset, uint64_t length,
                            bool sync) override;
  Result<SimDuration> Fsync(const std::string& path) override;
  Result<SimDuration> Read(const std::string& path, uint64_t offset,
                           uint64_t length) override;
  Status Unlink(const std::string& path) override;
  Status Truncate(const std::string& path, uint64_t new_size) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Result<uint64_t> FileSize(const std::string& path) const override;
  bool Exists(const std::string& path) const override;
  std::vector<std::string> List() const override;
  uint64_t FreeBytes() const override;
  const FsStats& stats() const override { return stats_; }
  const char* fs_type() const override { return "logfs"; }
  BlockDevice& device() override { return device_; }

  // Crash recovery. The durable record is the per-file node block: a file's
  // name, size, and block mappings survive a crash exactly as of its last
  // successful node write (sync Write or Fsync). Unlink and Rename act on
  // the durable record immediately (modelled as synchronous dentry updates).
  // Everything newer is volatile and is discarded here; the segment/cleaner
  // state is rebuilt from the durable mappings alone.
  Result<RecoveryReport> Mount() override;

  // Cleaner activity, exposed for tests.
  uint64_t segments_cleaned() const { return segments_cleaned_; }

  // Runs one cleaning pass immediately (tests/experiments). Distinguishes
  // "no candidate segment at all" (kResourceExhausted) from "candidates
  // exist but every one is fully valid — cleaning would only copy"
  // (kFailedPrecondition). Adds the cleaning time to `*time_out` if set.
  Status CleanNow(SimDuration* time_out = nullptr);

 private:
  enum class LogType { kData, kNode };
  enum class OwnerType : uint8_t { kNone, kData, kNode };

  struct BlockOwner {
    OwnerType type = OwnerType::kNone;
    uint32_t file_id = 0;
    uint32_t file_block = 0;  // meaningful for data blocks
  };

  struct FileMeta {
    uint32_t id = 0;
    uint64_t size = 0;
    std::vector<uint64_t> blocks;     // absolute device block per file block
    uint64_t node_block = 0;          // current node block address (0 = none)
    bool node_dirty = false;
  };

  struct LogHead {
    uint64_t segment = UINT64_MAX;  // segment index in main area
    uint32_t offset = 0;            // next block within the segment
  };

  // Appends one block to `log`, running the cleaner if space is low.
  // Returns the absolute device block address.
  Result<uint64_t> AppendBlock(LogType log, BlockOwner owner, SimDuration& time_acc,
                               bool allow_clean);

  // Invalidate the live block at `addr` (if any).
  void InvalidateBlock(uint64_t addr);

  Result<uint64_t> TakeFreeSegment(SimDuration& time_acc, bool allow_clean);
  Status CleanOneSegment(SimDuration& time_acc);

  // --- Durable shadow (crash recovery) ---
  // Snapshot of a file as of its last node write; what Mount() restores.
  struct DurableFile {
    std::string name;
    uint64_t size = 0;
    std::vector<uint64_t> blocks;
    uint64_t node_block = 0;
  };
  // Back-reference from a durable-pinned block to its snapshot entry, so the
  // cleaner can relocate the block and patch the snapshot's address.
  struct DurableRef {
    uint32_t file_id = 0;
    uint32_t file_block = 0;
    bool is_node = false;
  };

  // A main-area block is live while it has a current owner OR a durable
  // reference; valid_counts_ counts live blocks. These maintain that rule
  // (mirroring InvalidateBlock on the current side).
  void DurableAcquireFile(const FileMeta& file);
  void DurableReleaseFile(const DurableFile& snapshot);
  void DurableRelease(uint64_t addr);

  // --- Cleaner victim index (kIndexed mode) ---
  // Holds exactly the cleanable segments — in use and not a log head — keyed
  // by valid count, so "no candidates" and "only full-valid candidates" fall
  // out of the index state by construction.
  bool UseIndex() const { return config_.victim_select == VictimSelect::kIndexed; }
  void IndexSegment(uint64_t seg);    // head rotated away; seg is cleanable
  void UnindexSegment(uint64_t seg);  // picked for cleaning
  Result<SimDuration> WriteNodeBlock(FileMeta& file, bool allow_clean);
  Result<SimDuration> MaybeCheckpoint();

  Result<SimDuration> SubmitRange(IoKind kind, uint64_t start_block, uint64_t nblocks,
                                  uint64_t* bytes_out);

  uint64_t MainAreaIndex(uint64_t addr) const { return addr - main_start_block_; }
  uint64_t SegmentOfAddr(uint64_t addr) const {
    return MainAreaIndex(addr) / config_.blocks_per_segment;
  }

  BlockDevice& device_;
  LogFsConfig config_;
  uint32_t block_size_;

  uint64_t nat_start_block_ = 0;
  uint64_t main_start_block_ = 0;
  uint64_t segment_count_ = 0;

  std::vector<uint32_t> valid_counts_;   // per segment
  std::vector<bool> segment_in_use_;     // owned by a log or holding data
  std::vector<uint64_t> free_segments_;
  std::vector<BlockOwner> owners_;       // per main-area block

  BucketVictimIndex seg_index_;          // cleanable segments by valid count
  std::vector<uint8_t> seg_indexed_;     // membership flag per segment

  LogHead data_log_;
  LogHead node_log_;

  std::map<std::string, FileMeta> files_;
  std::unordered_map<uint32_t, FileMeta*> files_by_id_;
  std::unordered_map<uint32_t, std::string> names_by_id_;
  uint32_t next_file_id_ = 1;

  std::map<uint32_t, DurableFile> durable_files_;        // by file id
  std::unordered_map<uint64_t, DurableRef> durable_refs_;  // by block addr

  uint64_t node_writes_since_checkpoint_ = 0;
  uint64_t dirty_nat_entries_ = 0;
  uint64_t nat_cursor_ = 0;
  uint64_t checkpoint_cursor_ = 0;
  uint64_t segments_cleaned_ = 0;

  FsStats stats_;
};

}  // namespace flashsim

#endif  // SRC_FS_LOGFS_H_
