#include "src/fs/extfs.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/simcore/units.h"

namespace flashsim {

ExtFs::ExtFs(BlockDevice& device, ExtFsConfig config)
    : device_(device), config_(config), block_size_(device.PageSizeBytes()) {
  total_blocks_ = device_.CapacityBytes() / block_size_;
  const uint64_t metadata_blocks = std::max<uint64_t>(
      8, static_cast<uint64_t>(std::ceil(static_cast<double>(total_blocks_) *
                                         config_.metadata_fraction)));
  journal_start_block_ = metadata_blocks;
  data_start_block_ = journal_start_block_ + config_.journal_blocks;
  assert(data_start_block_ < total_blocks_);
  const uint64_t data_blocks = total_blocks_ - data_start_block_;
  data_bitmap_.assign(data_blocks, false);
  free_data_blocks_ = data_blocks;
}

Result<uint64_t> ExtFs::AllocateBlock() {
  if (free_data_blocks_ == 0) {
    return ResourceExhaustedError("extfs: no free blocks");
  }
  const uint64_t n = data_bitmap_.size();
  for (uint64_t probe = 0; probe < n; ++probe) {
    const uint64_t idx = (alloc_cursor_ + probe) % n;
    if (!data_bitmap_[idx]) {
      data_bitmap_[idx] = true;
      --free_data_blocks_;
      alloc_cursor_ = (idx + 1) % n;
      return data_start_block_ + idx;
    }
  }
  return InternalError("extfs: bitmap inconsistent with free count");
}

void ExtFs::FreeBlock(uint64_t block) {
  assert(block >= data_start_block_ && block < total_blocks_);
  const uint64_t idx = block - data_start_block_;
  assert(data_bitmap_[idx]);
  data_bitmap_[idx] = false;
  ++free_data_blocks_;
}

Result<SimDuration> ExtFs::SubmitBlocks(IoKind kind, const std::vector<uint64_t>& blocks,
                                        uint64_t* bytes_out) {
  SimDuration total;
  uint64_t bytes = 0;
  size_t i = 0;
  while (i < blocks.size()) {
    // Coalesce a contiguous run into one device request.
    size_t j = i + 1;
    while (j < blocks.size() && blocks[j] == blocks[j - 1] + 1) {
      ++j;
    }
    IoRequest req;
    req.kind = kind;
    req.offset = blocks[i] * block_size_;
    req.length = (j - i) * block_size_;
    Result<IoCompletion> done = device_.Submit(req);
    if (!done.ok()) {
      return done.status();
    }
    total += done.value().service_time;
    bytes += req.length;
    i = j;
  }
  if (bytes_out != nullptr) {
    *bytes_out = bytes;
  }
  return total;
}

Result<SimDuration> ExtFs::CommitJournal() {
  // Descriptor + dirty metadata blocks + commit block, sequential in the ring.
  const uint64_t blocks_to_write = 2 + std::max<uint64_t>(1, dirty_metadata_blocks_);
  std::vector<uint64_t> blocks;
  blocks.reserve(blocks_to_write);
  for (uint64_t k = 0; k < blocks_to_write; ++k) {
    blocks.push_back(journal_start_block_ + (journal_head_ + k) % config_.journal_blocks);
  }
  journal_head_ = (journal_head_ + blocks_to_write) % config_.journal_blocks;
  uint64_t bytes = 0;
  Result<SimDuration> t = SubmitBlocks(IoKind::kWrite, blocks, &bytes);
  if (!t.ok()) {
    return t.status();
  }
  stats_.device_journal_bytes += bytes;
  ++stats_.metadata_commits;
  dirty_metadata_blocks_ = 0;
  synced_since_commit_ = 0;
  ++commits_;
  SimDuration total = t.value();
  // Commit point: the current namespace is now recoverable, so blocks freed
  // by the unlinks/truncates it covers can finally be reused and discarded.
  durable_files_ = files_;
  if (!pending_free_.empty()) {
    for (uint64_t blk : pending_free_) {
      FreeBlock(blk);
    }
    std::sort(pending_free_.begin(), pending_free_.end());
    Result<SimDuration> discard =
        SubmitBlocks(IoKind::kDiscard, pending_free_, nullptr);
    pending_free_.clear();
    if (!discard.ok()) {
      return discard.status();
    }
    total += discard.value();
  }
  if (commits_ % config_.checkpoint_interval_commits == 0) {
    Result<SimDuration> cp = CheckpointMetadata();
    if (!cp.ok()) {
      return cp.status();
    }
    total += cp.value();
  }
  return total;
}

Result<SimDuration> ExtFs::CheckpointMetadata() {
  // Write back a couple of inode-table/bitmap blocks in place.
  std::vector<uint64_t> blocks = {0, 1};
  uint64_t bytes = 0;
  Result<SimDuration> t = SubmitBlocks(IoKind::kWrite, blocks, &bytes);
  if (!t.ok()) {
    return t.status();
  }
  stats_.device_metadata_bytes += bytes;
  return t.value();
}

Status ExtFs::Create(const std::string& path) {
  if (files_.count(path) != 0) {
    return AlreadyExistsError("extfs: file exists: " + path);
  }
  files_[path] = Inode{};
  ++dirty_metadata_blocks_;
  return Status::Ok();
}

Result<SimDuration> ExtFs::Write(const std::string& path, uint64_t offset,
                                 uint64_t length, bool sync) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return NotFoundError("extfs: no such file: " + path);
  }
  if (length == 0) {
    return InvalidArgumentError("extfs: zero-length write");
  }
  Inode& inode = it->second;
  const uint64_t first = offset / block_size_;
  const uint64_t last = (offset + length - 1) / block_size_;

  std::vector<uint64_t> device_blocks;
  device_blocks.reserve(last - first + 1);
  bool allocated = false;
  for (uint64_t fb = first; fb <= last; ++fb) {
    if (fb >= inode.blocks.size()) {
      inode.blocks.resize(fb + 1, 0);
    }
    if (inode.blocks[fb] == 0) {
      Result<uint64_t> blk = AllocateBlock();
      if (!blk.ok()) {
        return blk.status();
      }
      inode.blocks[fb] = blk.value();
      allocated = true;
    }
    device_blocks.push_back(inode.blocks[fb]);
  }

  uint64_t data_bytes = 0;
  Result<SimDuration> t = SubmitBlocks(IoKind::kWrite, device_blocks, &data_bytes);
  if (!t.ok()) {
    return t.status();
  }
  stats_.device_data_bytes += data_bytes;
  stats_.app_bytes_written += length;

  inode.size = std::max(inode.size, offset + length);
  if (allocated) {
    ++dirty_metadata_blocks_;  // bitmap + inode extent tree changed
  }

  SimDuration total = t.value();
  synced_since_commit_ += sync ? length : 0;
  if (sync && synced_since_commit_ >= config_.journal_batch_bytes) {
    Result<SimDuration> commit = CommitJournal();
    if (!commit.ok()) {
      return commit.status();
    }
    total += commit.value();
  }
  return total;
}

Result<SimDuration> ExtFs::Fsync(const std::string& path) {
  if (files_.count(path) == 0) {
    return NotFoundError("extfs: no such file: " + path);
  }
  ++stats_.fsyncs;
  ++dirty_metadata_blocks_;  // mtime/size persisted with the commit
  return CommitJournal();
}

Result<SimDuration> ExtFs::Read(const std::string& path, uint64_t offset,
                                uint64_t length) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return NotFoundError("extfs: no such file: " + path);
  }
  if (offset + length > it->second.size) {
    return OutOfRangeError("extfs: read past end of file");
  }
  const uint64_t first = offset / block_size_;
  const uint64_t last = (offset + length - 1) / block_size_;
  std::vector<uint64_t> blocks;
  for (uint64_t fb = first; fb <= last; ++fb) {
    blocks.push_back(it->second.blocks[fb]);
  }
  return SubmitBlocks(IoKind::kRead, blocks, nullptr);
}

Status ExtFs::Unlink(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return NotFoundError("extfs: no such file: " + path);
  }
  // The free + discard waits for the journal commit covering this unlink: a
  // crash before the commit rolls the file back, so its blocks must survive
  // (and stay unallocatable) until then.
  for (uint64_t blk : it->second.blocks) {
    if (blk != 0) {
      pending_free_.push_back(blk);
    }
  }
  files_.erase(it);
  ++dirty_metadata_blocks_;
  return Status::Ok();
}

Status ExtFs::Truncate(const std::string& path, uint64_t new_size) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return NotFoundError("extfs: no such file: " + path);
  }
  Inode& inode = it->second;
  if (new_size >= inode.size) {
    inode.size = new_size;  // sparse extension costs nothing now
    ++dirty_metadata_blocks_;
    return Status::Ok();
  }
  const uint64_t keep_blocks = CeilDiv(new_size, block_size_);
  for (uint64_t fb = keep_blocks; fb < inode.blocks.size(); ++fb) {
    if (inode.blocks[fb] != 0) {
      pending_free_.push_back(inode.blocks[fb]);  // freed at the next commit
    }
  }
  inode.blocks.resize(keep_blocks);
  inode.size = new_size;
  ++dirty_metadata_blocks_;
  return Status::Ok();
}

Status ExtFs::Rename(const std::string& from, const std::string& to) {
  if (files_.count(to) != 0) {
    return AlreadyExistsError("extfs: destination exists: " + to);
  }
  auto node = files_.extract(from);
  if (node.empty()) {
    return NotFoundError("extfs: no such file: " + from);
  }
  node.key() = to;
  files_.insert(std::move(node));
  ++dirty_metadata_blocks_;
  return Status::Ok();
}

Result<RecoveryReport> ExtFs::Mount() {
  RecoveryReport rep;
  rep.journal_commits_scanned = commits_;
  for (const auto& [name, inode] : files_) {
    (void)inode;
    if (durable_files_.count(name) == 0) {
      ++rep.orphan_files;  // created/renamed after the last commit
    }
  }
  uint64_t used_before = 0;
  for (const bool bit : data_bitmap_) {
    used_before += bit ? 1 : 0;
  }

  // Roll back to the last commit, then fsck: the bitmap is rebuilt from the
  // recovered inodes, so blocks allocated after the commit fall out as
  // reclaimed orphans and blocks freed by uncommitted unlinks re-attach.
  files_ = durable_files_;
  std::fill(data_bitmap_.begin(), data_bitmap_.end(), false);
  uint64_t used_after = 0;
  for (const auto& [name, inode] : files_) {
    (void)name;
    for (const uint64_t blk : inode.blocks) {
      if (blk == 0) {
        continue;
      }
      data_bitmap_[blk - data_start_block_] = true;
      ++used_after;
      ++rep.mapped_pages_recovered;
    }
    ++rep.files_recovered;
  }
  free_data_blocks_ = data_bitmap_.size() - used_after;
  rep.orphan_blocks = used_before > used_after ? used_before - used_after : 0;
  // Journal replay repairs: every rolled-back file and reclaimed block is
  // state the fsck pass had to discard to reach the last commit.
  rep.fsck_repairs = rep.orphan_files + rep.orphan_blocks;
  pending_free_.clear();
  dirty_metadata_blocks_ = 0;
  synced_since_commit_ = 0;
  alloc_cursor_ = 0;
  return rep;
}

Result<uint64_t> ExtFs::FileSize(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return NotFoundError("extfs: no such file: " + path);
  }
  return it->second.size;
}

bool ExtFs::Exists(const std::string& path) const { return files_.count(path) != 0; }

std::vector<std::string> ExtFs::List() const {
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, inode] : files_) {
    names.push_back(name);
  }
  return names;
}

uint64_t ExtFs::FreeBytes() const { return free_data_blocks_ * block_size_; }

}  // namespace flashsim
