#include "src/ftl/free_pool.h"

#include <algorithm>
#include <cassert>
#include <functional>

namespace flashsim {

void WearBucketedFreePool::Insert(uint32_t pe_cycles, BlockId block) {
  if (pe_cycles >= buckets_.size()) {
    buckets_.resize(static_cast<size_t>(pe_cycles) + 1);
  }
  std::vector<BlockId>& bucket = buckets_[pe_cycles];
  bucket.push_back(block);
  std::push_heap(bucket.begin(), bucket.end(), std::greater<BlockId>());
  if (pe_cycles < min_bucket_) {
    min_bucket_ = pe_cycles;
  }
  ++size_;
}

uint32_t WearBucketedFreePool::FindMinBucket() const {
  assert(size_ > 0);
  uint32_t b = min_bucket_;
  while (b < buckets_.size() && buckets_[b].empty()) {
    ++b;
  }
  assert(b < buckets_.size());
  return b;
}

WearBucketedFreePool::Entry WearBucketedFreePool::PopMin() {
  const uint32_t b = FindMinBucket();
  min_bucket_ = b;
  std::vector<BlockId>& bucket = buckets_[b];
  std::pop_heap(bucket.begin(), bucket.end(), std::greater<BlockId>());
  const BlockId id = bucket.back();
  bucket.pop_back();
  --size_;
  return Entry{b, id};
}

WearBucketedFreePool::Entry WearBucketedFreePool::PeekMin() const {
  const uint32_t b = FindMinBucket();
  return Entry{b, buckets_[b].front()};
}

std::vector<WearBucketedFreePool::Entry> WearBucketedFreePool::Entries() const {
  std::vector<Entry> all;
  all.reserve(size_);
  for (uint32_t pe = 0; pe < buckets_.size(); ++pe) {
    for (const BlockId id : buckets_[pe]) {
      all.push_back(Entry{pe, id});
    }
  }
  return all;
}

void WearBucketedFreePool::Clear() {
  buckets_.clear();
  size_ = 0;
  min_bucket_ = 0;
}

}  // namespace flashsim
