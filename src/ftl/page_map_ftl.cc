#include "src/ftl/page_map_ftl.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/simcore/units.h"

namespace flashsim {

namespace {
// Give up on a write after this many fresh-block retries; in practice a write
// only fails repeatedly when the whole array is at end of life.
constexpr int kMaxProgramRetries = 4;

// One shared scoring function for the linear and indexed cost-benefit paths:
// identical operations in identical order, so both produce bit-identical
// doubles and therefore identical victim choices.
double CostBenefitScore(uint32_t ppb, uint32_t valid, uint64_t erase_seq,
                        uint64_t close_seq) {
  const double u = static_cast<double>(valid) / ppb;
  const double age = static_cast<double>(erase_seq - close_seq) + 1.0;
  return (1.0 - u) / (1.0 + u) * age;
}
}  // namespace

PageMapFtl::PageMapFtl(NandChipConfig nand_config, FtlConfig ftl_config, uint64_t seed,
                       EventLog* event_log)
    : nand_config_(nand_config),
      ftl_config_(ftl_config),
      chip_(nand_config, seed),
      event_log_(event_log) {
  assert(ftl_config_.Validate().ok());
  const uint32_t total_blocks = nand_config_.total_blocks();
  assert(total_blocks > ftl_config_.spare_blocks + ftl_config_.gc_free_block_watermark);

  const uint32_t usable_blocks = total_blocks - ftl_config_.spare_blocks;
  const double logical_fraction = 1.0 - ftl_config_.over_provisioning;
  logical_pages_ = static_cast<uint64_t>(
      std::floor(static_cast<double>(usable_blocks) * logical_fraction)) *
      nand_config_.pages_per_block;

  map_.assign(logical_pages_, kInvalidPageAddr);
  valid_counts_.assign(total_blocks, 0);
  block_states_.assign(total_blocks, BlockState::kFree);
  close_seq_.assign(total_blocks, 0);
  gc_origin_.assign(total_blocks, 0);
  hist_pe_.assign(total_blocks, 0);
  for (BlockId b = 0; b < total_blocks; ++b) {
    free_blocks_.Insert(0, b);
  }
  victim_select_ = ftl_config_.victim_select;
  if (UseIndex()) {
    RebuildVictimIndexes();
  }
}

void PageMapFtl::SetVictimSelect(VictimSelect select) {
  if (select == victim_select_) {
    return;
  }
  victim_select_ = select;
  if (UseIndex()) {
    RebuildVictimIndexes();
  }
}

void PageMapFtl::RebuildVictimIndexes() {
  ++stats_.victim_index_rebuilds;
  const uint32_t total_blocks = static_cast<uint32_t>(block_states_.size());
  const uint32_t ppb = nand_config_.pages_per_block;
  victim_index_.Reset(ppb + 1, total_blocks,
                      ftl_config_.gc_policy == GcPolicy::kCostBenefit
                          ? BucketVictimIndex::Order::kBySortKeyThenId
                          : BucketVictimIndex::Order::kById);
  closed_by_pe_.Reset(/*bucket_count=*/1, total_blocks,
                      BucketVictimIndex::Order::kById);
  pe_hist_.clear();
  pe_hist_total_ = 0;
  pe_min_cursor_ = 0;
  pe_max_cursor_ = 0;
  for (BlockId b = 0; b < total_blocks; ++b) {
    if (block_states_[b] == BlockState::kBad) {
      continue;
    }
    const uint32_t pe = chip_.block(b).pe_cycles();
    hist_pe_[b] = pe;
    PeHistAdd(pe);
    if (block_states_[b] == BlockState::kClosed) {
      victim_index_.Insert(valid_counts_[b], b, VictimSortKey(b));
      closed_by_pe_.Insert(pe, b);
    }
  }
  wear_sync_version_ = chip_.wear_version();
}

void PageMapFtl::EnsureWearIndexSync() {
  if (wear_sync_version_ != chip_.wear_version()) {
    // Wear changed outside our own erase/retire paths (e.g. annealing via
    // mutable_chip()); the P/E-keyed structures are stale. Rebuild.
    RebuildVictimIndexes();
  }
}

void PageMapFtl::PeHistAdd(uint32_t pe) {
  if (pe >= pe_hist_.size()) {
    pe_hist_.resize(pe + 1, 0);
  }
  ++pe_hist_[pe];
  ++pe_hist_total_;
  if (pe < pe_min_cursor_) {
    pe_min_cursor_ = pe;
  }
  if (pe > pe_max_cursor_) {
    pe_max_cursor_ = pe;
  }
}

void PageMapFtl::PeHistRemove(uint32_t pe) {
  assert(pe < pe_hist_.size() && pe_hist_[pe] > 0);
  --pe_hist_[pe];
  --pe_hist_total_;
}

uint32_t PageMapFtl::PeHistMin() {
  // Lazy cursor: erases only move blocks upward, so the minimum can only
  // rise between rebuilds; skip drained buckets on demand.
  while (pe_min_cursor_ < pe_hist_.size() && pe_hist_[pe_min_cursor_] == 0) {
    ++pe_min_cursor_;
  }
  return pe_min_cursor_;
}

uint32_t PageMapFtl::PeHistMax() {
  while (pe_max_cursor_ > 0 && pe_hist_[pe_max_cursor_] == 0) {
    --pe_max_cursor_;
  }
  return pe_max_cursor_;
}

void PageMapFtl::OnBlockErased(BlockId block) {
  PeHistRemove(hist_pe_[block]);
  const uint32_t pe = chip_.block(block).pe_cycles();
  hist_pe_[block] = pe;
  PeHistAdd(pe);
  // The erase ticked the chip wear version exactly once, and this block's
  // histogram entry was just refreshed — advance by that one tick only. A
  // blind resync would mask an external wear change (anneal) still pending.
  ++wear_sync_version_;
}

void PageMapFtl::IndexInsertClosed(BlockId block) {
  victim_index_.Insert(valid_counts_[block], block, VictimSortKey(block));
  closed_by_pe_.Insert(hist_pe_[block], block);
}

void PageMapFtl::IndexEraseClosed(BlockId block) {
  victim_index_.Erase(valid_counts_[block], block, VictimSortKey(block));
  closed_by_pe_.Erase(hist_pe_[block], block);
}

void PageMapFtl::IncValidCount(BlockId block) {
  ++valid_counts_[block];
  // A block's final pages are counted after CloseIfFull ran, so increments
  // on an already-closed block are normal; move it up one bucket.
  if (UseIndex() && block_states_[block] == BlockState::kClosed) {
    victim_index_.Move(valid_counts_[block] - 1, valid_counts_[block], block,
                       VictimSortKey(block));
  }
}

void PageMapFtl::DecValidCount(BlockId block) {
  assert(valid_counts_[block] > 0);
  --valid_counts_[block];
  // The block mid-reclaim is deliberately absent from the index (see
  // ReclaimBlock); everything else moves down one bucket as usual.
  if (UseIndex() && block != reclaiming_block_ &&
      block_states_[block] == BlockState::kClosed) {
    victim_index_.Move(valid_counts_[block] + 1, valid_counts_[block], block,
                       VictimSortKey(block));
  }
}

void PageMapFtl::LogEvent(EventSeverity severity, const std::string& message) {
  if (event_log_ != nullptr) {
    event_log_->Append(SimTime(), severity, "ftl", message);
  }
}

bool PageMapFtl::IsMapped(uint64_t lpn) const {
  return lpn < logical_pages_ && map_[lpn].IsValid();
}

double PageMapFtl::Utilization() const {
  return logical_pages_ == 0
             ? 0.0
             : static_cast<double>(valid_total_) / static_cast<double>(logical_pages_);
}

void PageMapFtl::RetireBlock(BlockId block) {
  if (UseIndex()) {
    // A block can retire while closed (erase-verify failure during reclaim)
    // or while open (program failure); only closed blocks are indexed.
    if (block_states_[block] == BlockState::kClosed) {
      IndexEraseClosed(block);
    }
    PeHistRemove(hist_pe_[block]);
    // Retirement follows exactly one wear-version tick (the failed erase or
    // program); advance by that tick without masking pending external wear.
    ++wear_sync_version_;
  }
  block_states_[block] = BlockState::kBad;
  ++spares_used_;
  // Guard before formatting: building the message costs allocations even
  // when no log is attached, and retirement sits on the wear-out hot path.
  if (event_log_ != nullptr) {
    LogEvent(EventSeverity::kWarning, "block retired; spares used " +
                                          std::to_string(spares_used_) + "/" +
                                          std::to_string(ftl_config_.spare_blocks));
  }
  if (spares_used_ > ftl_config_.spare_blocks) {
    read_only_ = true;
    if (event_log_ != nullptr) {
      LogEvent(EventSeverity::kError, "spare pool exhausted; device is read-only");
    }
  }
}

Result<BlockId> PageMapFtl::AllocateBlock(BlockState stream, bool allow_gc,
                                          SimDuration& time_acc) {
  if (allow_gc) {
    FLASHSIM_RETURN_IF_ERROR(RunGcIfNeeded(time_acc));
  }
  while (!free_blocks_.empty()) {
    // Dynamic wear leveling: hand out the least-worn free block.
    const BlockId id = free_blocks_.PopMin().block;
    // Free blocks are kept erased; a block that was closed and reclaimed was
    // erased during reclaim. Blocks here are always erasable targets.
    block_states_[id] = stream;
    gc_origin_[id] = stream == BlockState::kOpenGc ? 1 : 0;
    return id;
  }
  return ResourceExhaustedError("no free blocks");
}

Result<PhysPageAddr> PageMapFtl::ProgramIntoStream(uint64_t lpn, BlockState stream,
                                                   bool allow_gc,
                                                   SimDuration& time_acc) {
  BlockId& active = stream == BlockState::kOpenHost ? host_active_ : gc_active_;
  for (int attempt = 0; attempt < kMaxProgramRetries; ++attempt) {
    if (active == kInvalidBlockId) {
      Result<BlockId> alloc = AllocateBlock(stream, allow_gc, time_acc);
      if (!alloc.ok()) {
        return alloc.status();
      }
      active = alloc.value();
    }
    const uint32_t wp = chip_.block(active).write_pointer();
    const PhysPageAddr addr{active, wp};
    Result<SimDuration> prog = chip_.ProgramPage(addr, lpn);
    if (prog.ok()) {
      time_acc += prog.value();
      ++stats_.nand_pages_written;
      CloseIfFull(active);
      return addr;
    }
    if (prog.status().code() == StatusCode::kDataLoss) {
      // Program-verify failure: the block is now bad; move to a fresh block.
      RetireBlock(active);
      active = kInvalidBlockId;
      if (read_only_) {
        return UnavailableError("device worn out (spares exhausted)");
      }
      continue;
    }
    return prog.status();
  }
  return UnavailableError("repeated program failures; array at end of life");
}

void PageMapFtl::CloseIfFull(BlockId block) {
  if (chip_.block(block).IsFull()) {
    block_states_[block] = BlockState::kClosed;
    close_seq_[block] = erase_seq_;
    if (UseIndex()) {
      IndexInsertClosed(block);
    }
    if (host_active_ == block) {
      host_active_ = kInvalidBlockId;
    }
    if (gc_active_ == block) {
      gc_active_ = kInvalidBlockId;
    }
  }
}

void PageMapFtl::InvalidateMapping(uint64_t lpn) {
  const PhysPageAddr old = map_[lpn];
  if (old.IsValid()) {
    DecValidCount(old.block);
    --valid_total_;
    map_[lpn] = kInvalidPageAddr;
    if (valid_counts_[old.block] == 0 && block_states_[old.block] == BlockState::kClosed) {
      dead_blocks_.push_back(old.block);
    }
  }
}

BlockId PageMapFtl::PickVictimLinear() {
  BlockId best = kInvalidBlockId;
  double best_score = -1.0;
  const uint32_t ppb = nand_config_.pages_per_block;
  stats_.gc_victim_candidates += block_states_.size();
  for (BlockId b = 0; b < block_states_.size(); ++b) {
    if (block_states_[b] != BlockState::kClosed) {
      continue;
    }
    const uint32_t valid = valid_counts_[b];
    if (valid == ppb) {
      continue;  // nothing reclaimable
    }
    double score;
    if (ftl_config_.gc_policy == GcPolicy::kGreedy) {
      score = static_cast<double>(ppb - valid);
    } else {
      score = CostBenefitScore(ppb, valid, erase_seq_, close_seq_[b]);
    }
    // Strict improvement only: equal scores keep the earlier (lowest) id.
    if (score > best_score) {
      best_score = score;
      best = b;
    }
  }
  return best;
}

BlockId PageMapFtl::PickVictimIndexed() {
  const uint32_t ppb = nand_config_.pages_per_block;
  if (ftl_config_.gc_policy == GcPolicy::kGreedy) {
    // Greedy = lowest valid count, lowest id on ties — exactly PickMin with
    // the fully-valid bucket excluded.
    uint32_t bucket = 0;
    uint32_t id = 0;
    if (!victim_index_.PickMin(ppb, &bucket, &id, &stats_.gc_victim_candidates)) {
      return kInvalidBlockId;
    }
    return id;
  }
  // Cost-benefit: within a valid-count bucket the score is a fixed positive
  // multiplier times the age, so the bucket's best candidate is its oldest
  // member (lowest close_seq, then lowest id) — the bucket minimum. Scoring
  // one candidate per bucket bounds the pick at O(pages_per_block),
  // independent of device size, and reproduces the linear scan's choice:
  // highest score wins, lowest id on exact ties.
  BlockId best = kInvalidBlockId;
  double best_score = -1.0;
  for (uint32_t valid = 0; valid < ppb; ++valid) {
    uint64_t close_seq = 0;
    uint32_t id = 0;
    if (!victim_index_.BucketMin(valid, &close_seq, &id)) {
      continue;
    }
    ++stats_.gc_victim_candidates;
    const double score = CostBenefitScore(ppb, valid, erase_seq_, close_seq);
    if (score > best_score || (score == best_score && id < best)) {
      best_score = score;
      best = id;
    }
  }
  return best;
}

BlockId PageMapFtl::PickVictim() {
  const BlockId victim = UseIndex() ? PickVictimIndexed() : PickVictimLinear();
  if (victim != kInvalidBlockId) {
    ++stats_.gc_victim_picks;
    stats_.victim_seq_hash = VictimHashMix(stats_.victim_seq_hash, victim);
  }
  return victim;
}

Status PageMapFtl::ReclaimBlock(BlockId victim, SimDuration& time_acc) {
  const uint32_t wp = chip_.block(victim).write_pointer();
  // Batch OOB scan over the flat metadata plane. Two structural shortcuts,
  // both bit-exact with the page-at-a-time reference walk:
  //  * the per-block valid count equals the number of map entries pointing
  //    into the block, so a fully-invalid block (the background-GC common
  //    case) skips the scan entirely, and the walk stops the moment the last
  //    live page has migrated — the remaining pages can only be stale or
  //    torn, which the reference walk would skip one by one;
  //  * torn pages only exist after an interrupted program, so the per-page
  //    torn test is gated on one up-front word-scan of the torn bitmap.
  // The victim leaves the victim/wear indexes before the migration walk: no
  // pick can observe the index until this reclaim returns (migrations run
  // with allow_gc=false), so walking the victim down one valid-count bucket
  // per migrated page would be pure overhead — it is erased at the end
  // anyway. DecValidCount skips the block named here. The rare non-erase
  // exits below re-insert to keep the "closed <=> indexed" invariant.
  if (UseIndex()) {
    IndexEraseClosed(victim);
    reclaiming_block_ = victim;
  }
  if (valid_counts_[victim] > 0) {
    const NandChip::OobRunView oob = chip_.ReadTagsRun(victim);
    const bool has_torn = chip_.BlockHasTornPages(victim);
    const NandBlock& vblk = chip_.block(victim);
    for (uint32_t page = 0; page < wp && valid_counts_[victim] > 0; ++page) {
      if (has_torn && vblk.TornAt(page)) {
        continue;  // consumed by an interrupted program: nothing to move
      }
      // Check the forward map via the OOB tag: the page is live only if the
      // map still points at it.
      const uint64_t lpn = oob.tags[page];
      const PhysPageAddr src{victim, page};
      if (lpn >= logical_pages_ || map_[lpn] != src) {
        continue;  // stale copy
      }
      // Live page: read it out (charges read latency + ECC) and rewrite it.
      Result<NandReadOutcome> read = chip_.ReadPage(src);
      if (!read.ok() && read.status().code() != StatusCode::kDataLoss) {
        if (UseIndex()) {
          reclaiming_block_ = kInvalidBlockId;
          IndexInsertClosed(victim);
        }
        return read.status();
      }
      if (read.ok()) {
        time_acc += read.value().latency;
      }
      // Even if the copy had an uncorrectable error we must move the mapping
      // (data loss is recorded by the chip counters).
      Result<PhysPageAddr> dst =
          ProgramIntoStream(lpn, BlockState::kOpenGc, /*allow_gc=*/false, time_acc);
      if (!dst.ok()) {
        if (UseIndex()) {
          reclaiming_block_ = kInvalidBlockId;
          IndexInsertClosed(victim);
        }
        return dst.status();
      }
      DecValidCount(victim);
      IncValidCount(dst.value().block);
      map_[lpn] = dst.value();
      ++stats_.gc_pages_migrated;
    }
  }
  // All live data moved; erase and return to the free pool. When merged-pool
  // diversion is active, erasing a GC-destination block is wear-free here:
  // that churn physically runs on drafted Type A blocks (charged by the
  // hybrid front end).
  ++erase_seq_;
  UpdateWearLevelCheckDue();
  ++stats_.erases;
  if (UseIndex()) {
    reclaiming_block_ = kInvalidBlockId;
  }
  const uint32_t wear_weight = divert_gc_wear_ && gc_origin_[victim] ? 0 : 1;
  Result<SimDuration> erase = chip_.EraseBlock(victim, wear_weight);
  if (!erase.ok()) {
    if (erase.status().code() == StatusCode::kPowerLoss) {
      if (UseIndex()) {
        IndexInsertClosed(victim);  // still closed: recovery re-erases it
      }
      return erase.status();
    }
    if (UseIndex()) {
      IndexInsertClosed(victim);  // RetireBlock expects closed blocks indexed
    }
    RetireBlock(victim);
    return Status::Ok();  // reclaim succeeded logically; block just retired
  }
  if (UseIndex()) {
    // Already out of the victim/wear indexes (erased up front); account for
    // the P/E tick only.
    OnBlockErased(victim);
  }
  time_acc += erase.value();
  block_states_[victim] = BlockState::kFree;
  free_blocks_.Insert(chip_.block(victim).pe_cycles(), victim);
  return Status::Ok();
}

Status PageMapFtl::RunGcIfNeeded(SimDuration& time_acc) {
  // Background reclaim: erase blocks that have become fully invalid so they
  // rejoin the wear-ordered free pool immediately. Without this, a hot
  // working set would cycle through a handful of blocks at the GC watermark
  // and wear them out far ahead of the rest of the array.
  while (!dead_blocks_.empty()) {
    const BlockId dead = dead_blocks_.back();
    dead_blocks_.pop_back();
    if (block_states_[dead] != BlockState::kClosed || valid_counts_[dead] != 0) {
      continue;  // stale entry (state changed since it was queued)
    }
    FLASHSIM_RETURN_IF_ERROR(ReclaimBlock(dead, time_acc));
    if (read_only_) {
      return UnavailableError("device worn out during GC");
    }
  }
  while (free_blocks_.size() < ftl_config_.gc_free_block_watermark) {
    const BlockId victim = PickVictim();
    if (victim == kInvalidBlockId) {
      if (free_blocks_.empty()) {
        return ResourceExhaustedError("no reclaimable blocks and free pool empty");
      }
      return Status::Ok();  // nothing reclaimable but we still have headroom
    }
    FLASHSIM_RETURN_IF_ERROR(ReclaimBlock(victim, time_acc));
    if (read_only_) {
      return UnavailableError("device worn out during GC");
    }
  }
  return Status::Ok();
}

void PageMapFtl::StaticWearLevelPass(SimDuration& time_acc) {
  // Reached only through the inline MaybeStaticWearLevel gate: the feature
  // is on, erase_seq_ sits on a check multiple, and no scan at the current
  // wear version has concluded "spread fine". The spread depends only on
  // P/E counts and the bad set, which change exactly when the chip's wear
  // version ticks — so the no-op outcome below stays cached (and the gate
  // skips this pass) until the next wear event; a migration pass has side
  // effects and bumps the version itself.
  //
  // Find the wear spread: O(1) from the P/E histogram in indexed mode, one
  // O(blocks) scan otherwise.
  uint32_t min_pe = 0xffffffffu;
  uint32_t max_pe = 0;
  if (UseIndex()) {
    EnsureWearIndexSync();
    if (pe_hist_total_ == 0) {
      return;
    }
    min_pe = PeHistMin();
    max_pe = PeHistMax();
  } else {
    for (BlockId b = 0; b < block_states_.size(); ++b) {
      if (block_states_[b] == BlockState::kBad) {
        continue;
      }
      const uint32_t pe = chip_.block(b).pe_cycles();
      if (pe > max_pe) {
        max_pe = pe;
      }
      if (pe < min_pe) {
        min_pe = pe;
      }
    }
  }
  if (max_pe - min_pe <= ftl_config_.wear_level_threshold) {
    wl_spread_ok_version_ = chip_.wear_version();
    return;
  }
  // Migrate a batch of cold closed blocks (P/E within a quarter threshold of
  // the minimum); they rejoin the free pool and, being the least worn, are
  // handed out first by dynamic wear leveling. A batch per check keeps the
  // spread bounded even under a fully skewed hot workload. Both sweeps visit
  // candidates in ascending block id, so the migration order is identical.
  const uint32_t cold_cutoff = min_pe + ftl_config_.wear_level_threshold / 4;
  uint32_t migrated = 0;
  if (UseIndex()) {
    // closed_by_pe_ buckets at or below the cutoff hold exactly the cold
    // closed blocks; the walk is bounded by threshold/4 buckets because no
    // closed block sits below the histogram minimum.
    uint32_t next_id = 0;
    while (migrated < 8) {
      uint32_t cold = 0;
      if (!closed_by_pe_.MinIdAtLeast(next_id, cold_cutoff, &cold,
                                      &stats_.gc_victim_candidates)) {
        break;
      }
      next_id = cold + 1;
      SimDuration wl_time;
      const Status st = ReclaimBlock(cold, wl_time);
      if (st.ok()) {
        time_acc += wl_time;
        ++migrated;
      } else if (st.code() == StatusCode::kPowerLoss) {
        return;
      }
      if (read_only_) {
        return;
      }
    }
  } else {
    for (BlockId b = 0; b < block_states_.size() && migrated < 8; ++b) {
      ++stats_.gc_victim_candidates;
      if (block_states_[b] != BlockState::kClosed ||
          chip_.block(b).pe_cycles() > cold_cutoff) {
        continue;
      }
      SimDuration wl_time;
      const Status st = ReclaimBlock(b, wl_time);
      if (st.ok()) {
        time_acc += wl_time;
        ++migrated;
      } else if (st.code() == StatusCode::kPowerLoss) {
        return;
      }
      if (read_only_) {
        return;
      }
    }
  }
  if (migrated > 0 && event_log_ != nullptr) {
    LogEvent(EventSeverity::kDebug,
             "static wear-level migrated " + std::to_string(migrated) + " blocks");
  }
}

Result<SimDuration> PageMapFtl::WritePageInternal(uint64_t lpn, bool count_as_host) {
  if (read_only_) {
    return UnavailableError("device is read-only (worn out)");
  }
  if (lpn >= logical_pages_) {
    return OutOfRangeError("LPN beyond logical capacity");
  }
  SimDuration time_acc;
  Result<PhysPageAddr> addr =
      ProgramIntoStream(lpn, BlockState::kOpenHost, /*allow_gc=*/true, time_acc);
  if (!addr.ok()) {
    return addr.status();
  }
  InvalidateMapping(lpn);
  map_[lpn] = addr.value();
  IncValidCount(addr.value().block);
  ++valid_total_;
  if (count_as_host) {
    ++stats_.host_pages_written;
  }
  MaybeStaticWearLevel(time_acc);
  return time_acc;
}

Result<SimDuration> PageMapFtl::WritePage(uint64_t lpn) {
  return WritePageInternal(lpn, /*count_as_host=*/true);
}

Status PageMapFtl::WriteBatch(const uint64_t* lpns, size_t count,
                              SimDuration* per_page_times, size_t* pages_done) {
  // Simulation-equivalent to `count` WritePage calls in order. Host-stream
  // programs always append to the active block, so even a batch of scattered
  // LPNs is a run of consecutive page programs; each run is pushed through
  // NandChip::ProgramRun in one call, and the per-page bookkeeping (map
  // updates, invalidation, static wear-leveling checks) is applied afterwards
  // in submission order. GC can only trigger at block-allocation points,
  // which are run boundaries, so state at every GC/erase/allocation decision
  // — and the RNG stream — is identical to the per-page path.
  *pages_done = 0;
  const uint32_t ppb = nand_config_.pages_per_block;
  const SimDuration program_time = chip_.config().timings.program_page;
  size_t i = 0;
  size_t failing_page = count;  // page currently burning program retries
  int attempts = 0;
  SimDuration pending_lead;  // allocation/GC time not yet charged to a page
  while (i < count) {
    if (read_only_) {
      return UnavailableError("device is read-only (worn out)");
    }
    if (lpns[i] >= logical_pages_) {
      return OutOfRangeError("LPN beyond logical capacity");
    }
    if (host_active_ == kInvalidBlockId) {
      Result<BlockId> alloc =
          AllocateBlock(BlockState::kOpenHost, /*allow_gc=*/true, pending_lead);
      if (!alloc.ok()) {
        return alloc.status();
      }
      host_active_ = alloc.value();
    }
    const BlockId block = host_active_;
    const uint32_t wp = chip_.block(block).write_pointer();
    uint32_t run = static_cast<uint32_t>(
        std::min<uint64_t>(count - i, ppb - wp));
    // An out-of-range LPN fails before anything is programmed; stop the run
    // just short of the first one so the error surfaces in order.
    for (uint32_t k = 1; k < run; ++k) {
      if (lpns[i + k] >= logical_pages_) {
        run = k;
        break;
      }
    }
    Result<NandProgramRunOutcome> prog = chip_.ProgramRun(block, lpns + i, run);
    if (!prog.ok()) {
      return prog.status();  // in-order/addressing violation: internal bug
    }
    const NandProgramRunOutcome& outcome = prog.value();
    for (uint32_t k = 0; k < outcome.pages_done; ++k) {
      const uint64_t lpn = lpns[i + k];
      SimDuration& t = per_page_times[i + k];
      t = program_time + pending_lead;
      pending_lead = SimDuration();
      ++stats_.nand_pages_written;
      if (wp + k + 1 == ppb) {
        CloseIfFull(block);  // the per-page path closes before the map update
      }
      // InvalidateMapping folded in: one map_ load covers both the overwrite
      // test and the old address, and an overwrite nets valid_total_ out
      // instead of paying the -1/+1 pair.
      const PhysPageAddr old = map_[lpn];
      map_[lpn] = PhysPageAddr{block, wp + k};
      if (old.IsValid()) {
        DecValidCount(old.block);
        if (valid_counts_[old.block] == 0 &&
            block_states_[old.block] == BlockState::kClosed) {
          dead_blocks_.push_back(old.block);
        }
      } else {
        ++valid_total_;
      }
      IncValidCount(block);
      ++stats_.host_pages_written;
      ++*pages_done;
      MaybeStaticWearLevel(t);
    }
    i += outcome.pages_done;
    if (outcome.power_lost) {
      // Identical to what the per-page path surfaces from the chip.
      return PowerLossError("power lost mid-program; page torn");
    }
    if (outcome.block_failed) {
      // Program-verify failure on page i: retire the block and retry that
      // page on a fresh block, with the per-page retry budget.
      if (i != failing_page) {
        failing_page = i;
        attempts = 0;
      }
      RetireBlock(block);
      host_active_ = kInvalidBlockId;
      if (read_only_) {
        return UnavailableError("device worn out (spares exhausted)");
      }
      if (++attempts >= kMaxProgramRetries) {
        return UnavailableError("repeated program failures; array at end of life");
      }
    }
  }
  return Status::Ok();
}

Result<SimDuration> PageMapFtl::WritePages(uint64_t lpn, uint64_t count) {
  if (count == 0) {
    return SimDuration();
  }
  uint64_t* lpns = scratch_lpns_.Acquire(count);
  SimDuration* times = scratch_times_.AcquireZeroed(count);
  for (uint64_t k = 0; k < count; ++k) {
    lpns[k] = lpn + k;
  }
  size_t done = 0;
  Status st = WriteBatch(lpns, count, times, &done);
  if (!st.ok()) {
    return st;
  }
  SimDuration total;
  for (size_t k = 0; k < done; ++k) {
    total += times[k];
  }
  return total;
}

Result<SimDuration> PageMapFtl::ReadPage(uint64_t lpn) {
  if (lpn >= logical_pages_) {
    return OutOfRangeError("LPN beyond logical capacity");
  }
  const PhysPageAddr addr = map_[lpn];
  if (!addr.IsValid()) {
    return NotFoundError("read of unmapped LPN");
  }
  Result<NandReadOutcome> read = chip_.ReadPage(addr);
  if (!read.ok()) {
    return read.status();
  }
  ++stats_.host_pages_read;
  return read.value().latency;
}

Status PageMapFtl::TrimPage(uint64_t lpn) {
  if (lpn >= logical_pages_) {
    return OutOfRangeError("LPN beyond logical capacity");
  }
  InvalidateMapping(lpn);
  return Status::Ok();
}

HealthReport PageMapFtl::Health() const {
  HealthReport report;
  const WearSummary wear = chip_.ComputeWearSummary();
  report.avg_pe_a = wear.avg_pe;
  report.rated_pe_a = ftl_config_.health_rated_pe;
  report.life_time_est_a =
      LifeFractionToLevel(wear.avg_pe / static_cast<double>(ftl_config_.health_rated_pe));
  report.life_time_est_b = 0;  // single-pool device
  report.spare_blocks_total = ftl_config_.spare_blocks;
  report.spare_blocks_used = spares_used_;
  report.pre_eol = ComputePreEol(spares_used_, ftl_config_.spare_blocks);
  return report;
}

Status PageMapFtl::ValidateInvariants(uint64_t lpn_stride) const {
  if (lpn_stride == 0) {
    lpn_stride = 1;
  }
  const bool full_walk = lpn_stride == 1;
  std::vector<uint32_t> counted(block_states_.size(), 0);
  uint64_t mapped_total = 0;
  for (uint64_t lpn = 0; lpn < logical_pages_; lpn += lpn_stride) {
    const PhysPageAddr addr = map_[lpn];
    if (!addr.IsValid()) {
      continue;
    }
    ++mapped_total;
    if (addr.block >= block_states_.size()) {
      return InternalError("map entry points beyond the array");
    }
    ++counted[addr.block];
    if (!chip_.block(addr.block).IsProgrammed(addr.page)) {
      return InternalError("map entry points at an unprogrammed page");
    }
    Result<uint64_t> tag = chip_.block(addr.block).ReadTag(addr.page);
    if (!tag.ok() || tag.value() != lpn) {
      return InternalError("OOB tag does not match the forward map");
    }
  }
  if (full_walk && mapped_total != valid_total_) {
    return InternalError("valid-page total out of sync with the map");
  }
  uint64_t closed_total = 0;
  uint64_t non_bad_total = 0;
  for (BlockId b = 0; b < block_states_.size(); ++b) {
    if (full_walk && counted[b] != valid_counts_[b]) {
      return InternalError("per-block valid count out of sync at block " +
                           std::to_string(b));
    }
    if (block_states_[b] == BlockState::kBad && !chip_.block(b).is_bad()) {
      return InternalError("state says bad but chip disagrees");
    }
    if (block_states_[b] == BlockState::kClosed) {
      ++closed_total;
    }
    if (block_states_[b] != BlockState::kBad) {
      ++non_bad_total;
    }
  }
  if (UseIndex()) {
    // The indexes must mirror the block states exactly: every closed block in
    // both (under its current keys), nothing else (checked via sizes).
    for (BlockId b = 0; b < block_states_.size(); ++b) {
      if (block_states_[b] != BlockState::kClosed) {
        continue;
      }
      if (!victim_index_.Contains(valid_counts_[b], b, VictimSortKey(b))) {
        return InternalError("closed block missing from the victim index: " +
                             std::to_string(b));
      }
      if (!closed_by_pe_.Contains(hist_pe_[b], b)) {
        return InternalError("closed block missing from the P/E index: " +
                             std::to_string(b));
      }
    }
    if (victim_index_.size() != closed_total) {
      return InternalError("victim index size != closed block count");
    }
    if (closed_by_pe_.size() != closed_total) {
      return InternalError("P/E index size != closed block count");
    }
    if (pe_hist_total_ != non_bad_total) {
      return InternalError("P/E histogram total != non-bad block count");
    }
    if (wear_sync_version_ == chip_.wear_version()) {
      for (BlockId b = 0; b < block_states_.size(); ++b) {
        if (block_states_[b] != BlockState::kBad &&
            hist_pe_[b] != chip_.block(b).pe_cycles()) {
          return InternalError("stale P/E key at block " + std::to_string(b));
        }
      }
    }
  }
  uint64_t free_seen = 0;
  for (const WearBucketedFreePool::Entry& entry : free_blocks_.Entries()) {
    const BlockId id = entry.block;
    ++free_seen;
    if (block_states_[id] != BlockState::kFree) {
      return InternalError("free-pool entry not in kFree state");
    }
    if (!chip_.block(id).IsErased()) {
      return InternalError("free block is not erased");
    }
    if (valid_counts_[id] != 0) {
      return InternalError("free block has valid pages");
    }
    // Note: entry.pe_cycles may lag chip wear after annealing (Heal does not
    // re-key pool entries), so it is deliberately not validated here.
  }
  if (free_seen != free_blocks_.size()) {
    return InternalError("free pool size mismatch");
  }
  return Status::Ok();
}

FtlStats PageMapFtl::Stats() const {
  FtlStats s = stats_;
  s.free_blocks = static_cast<uint32_t>(free_blocks_.size());
  s.valid_pages = valid_total_;
  return s;
}

Result<RecoveryReport> PageMapFtl::Mount() {
  RecoveryReport rep;
  const uint32_t total_blocks = nand_config_.total_blocks();

  // Phase 0: finish interrupted erases. A block torn mid-erase holds nothing
  // trustworthy and cannot be programmed until a completed erase resets it.
  for (BlockId b = 0; b < total_blocks; ++b) {
    if (chip_.block(b).is_bad() || !chip_.block(b).erase_torn()) {
      continue;
    }
    ++rep.torn_erase_blocks;
    ++stats_.erases;
    Result<SimDuration> erase = chip_.EraseBlock(b);
    if (!erase.ok()) {
      if (erase.status().code() == StatusCode::kPowerLoss) {
        return erase.status();  // mounted while still unpowered
      }
      ++rep.blocks_retired;  // erase-verify failed; the chip marked it bad
    }
  }

  // Phase 1: OOB scan. For every logical page the highest-sequence non-torn
  // copy wins — a crash mid-GC leaves the (torn) migration target discarded
  // and falls back to the still-present source copy; a crash mid-erase of a
  // GC victim keeps the (newer) migrated copies.
  map_.assign(logical_pages_, kInvalidPageAddr);
  std::vector<uint64_t> best_seq(logical_pages_, 0);
  for (BlockId b = 0; b < total_blocks; ++b) {
    const NandBlock& blk = chip_.block(b);
    if (blk.is_bad()) {
      continue;
    }
    const uint32_t wp = blk.write_pointer();
    // Batch OOB: tags and sequences straight from the flat metadata plane
    // (raw reads, no ECC model); the torn test runs per page only on blocks
    // that actually hold torn pages.
    const NandChip::OobRunView oob = chip_.ReadTagsRun(b);
    const bool has_torn = chip_.BlockHasTornPages(b);
    for (uint32_t p = 0; p < wp; ++p) {
      ++rep.scanned_pages;
      if (has_torn && blk.TornAt(p)) {
        ++rep.torn_pages_discarded;
        continue;
      }
      if (oob.tags[p] >= logical_pages_) {
        ++rep.stale_pages_ignored;
        continue;
      }
      const uint64_t lpn = oob.tags[p];
      const uint64_t seq = oob.seqs[p];
      if (!map_[lpn].IsValid() || seq > best_seq[lpn]) {
        if (map_[lpn].IsValid()) {
          ++rep.stale_pages_ignored;
        }
        map_[lpn] = PhysPageAddr{b, p};
        best_seq[lpn] = seq;
      } else {
        ++rep.stale_pages_ignored;
      }
    }
  }

  // Phase 2: rebuild every derived structure from the recovered map. Nothing
  // below reads pre-crash RAM state.
  valid_counts_.assign(total_blocks, 0);
  block_states_.assign(total_blocks, BlockState::kFree);
  close_seq_.assign(total_blocks, 0);
  gc_origin_.assign(total_blocks, 0);
  free_blocks_.Clear();
  dead_blocks_.clear();
  host_active_ = kInvalidBlockId;
  gc_active_ = kInvalidBlockId;
  valid_total_ = 0;
  erase_seq_ = 0;
  UpdateWearLevelCheckDue();
  spares_used_ = 0;
  wl_spread_ok_version_ = ~0ull;
  for (uint64_t lpn = 0; lpn < logical_pages_; ++lpn) {
    if (map_[lpn].IsValid()) {
      ++valid_counts_[map_[lpn].block];
      ++valid_total_;
      ++rep.mapped_pages_recovered;
    }
  }
  for (BlockId b = 0; b < total_blocks; ++b) {
    if (chip_.block(b).is_bad()) {
      block_states_[b] = BlockState::kBad;
      ++spares_used_;
      continue;
    }
    if (chip_.block(b).IsErased()) {
      free_blocks_.Insert(chip_.block(b).pe_cycles(), b);
      continue;  // kFree
    }
    // Any written block is sealed, full or not: resuming appends into a
    // crash-interrupted open block risks disturbing its last page on real
    // NAND, so recovery never does.
    block_states_[b] = BlockState::kClosed;
    if (valid_counts_[b] == 0) {
      dead_blocks_.push_back(b);
    }
  }
  read_only_ = spares_used_ > ftl_config_.spare_blocks;
  if (UseIndex()) {
    RebuildVictimIndexes();
  }
  FLASHSIM_RETURN_IF_ERROR(ValidateInvariants());
  return rep;
}

void PageMapFtl::SaveState(SnapshotWriter& w) const {
  w.BeginSection(SnapshotTag("PFTL"));
  chip_.SaveState(w);
  w.U64(logical_pages_);  // fingerprint, validated on load
  std::vector<uint64_t> packed_map(map_.size());
  for (size_t i = 0; i < map_.size(); ++i) {
    packed_map[i] =
        (static_cast<uint64_t>(map_[i].block) << 32) | map_[i].page;
  }
  w.VecU64(packed_map);
  w.VecU32(valid_counts_);
  std::vector<uint8_t> states(block_states_.size());
  for (size_t i = 0; i < block_states_.size(); ++i) {
    states[i] = static_cast<uint8_t>(block_states_[i]);
  }
  w.VecU8(states);
  w.VecU64(close_seq_);
  w.VecU8(gc_origin_);
  // Free pool by membership, sorted for stable file bytes: pop order depends
  // only on the (pe, id) membership set, so re-Insert on load reproduces it.
  std::vector<WearBucketedFreePool::Entry> pool = free_blocks_.Entries();
  std::sort(pool.begin(), pool.end(),
            [](const WearBucketedFreePool::Entry& a,
               const WearBucketedFreePool::Entry& b) {
              return std::make_pair(a.pe_cycles, a.block) <
                     std::make_pair(b.pe_cycles, b.block);
            });
  w.U64(pool.size());
  for (const WearBucketedFreePool::Entry& e : pool) {
    w.U32(e.pe_cycles);
    w.U32(e.block);
  }
  w.U32(host_active_);
  w.U32(gc_active_);
  w.VecU32(dead_blocks_);
  w.U64(valid_total_);
  w.U64(erase_seq_);
  w.U32(spares_used_);
  w.Bool(read_only_);
  w.Bool(divert_gc_wear_);
  w.U64(wl_spread_ok_version_);
  w.U8(static_cast<uint8_t>(victim_select_));
  // Lazy-cursor acceleration state; never changes results, but restoring it
  // keeps probe counters (gc_victim_candidates) bit-exact after a restore.
  w.U32(victim_index_.min_bucket());
  w.U32(closed_by_pe_.min_bucket());
  w.U64(wear_sync_version_);
  SaveFtlStats(w, stats_);
  w.EndSection();
}

Status PageMapFtl::LoadState(SnapshotReader& r) {
  FLASHSIM_RETURN_IF_ERROR(r.EnterSection(SnapshotTag("PFTL")));
  FLASHSIM_RETURN_IF_ERROR(chip_.LoadState(r));
  if (r.U64() != logical_pages_) {
    return FailedPreconditionError(
        "snapshot FTL logical size does not match the constructed device");
  }
  std::vector<uint64_t> packed_map;
  std::vector<uint32_t> valid_counts;
  std::vector<uint8_t> states;
  std::vector<uint64_t> close_seq;
  std::vector<uint8_t> gc_origin;
  r.VecU64(&packed_map);
  r.VecU32(&valid_counts);
  r.VecU8(&states);
  r.VecU64(&close_seq);
  r.VecU8(&gc_origin);
  const uint64_t pool_count = r.U64();
  std::vector<WearBucketedFreePool::Entry> pool;
  for (uint64_t i = 0; i < pool_count && r.ok(); ++i) {
    WearBucketedFreePool::Entry e;
    e.pe_cycles = r.U32();
    e.block = r.U32();
    pool.push_back(e);
  }
  const BlockId host_active = r.U32();
  const BlockId gc_active = r.U32();
  std::vector<uint32_t> dead_blocks;
  r.VecU32(&dead_blocks);
  const uint64_t valid_total = r.U64();
  const uint64_t erase_seq = r.U64();
  const uint32_t spares_used = r.U32();
  const bool read_only = r.Bool();
  const bool divert_gc_wear = r.Bool();
  const uint64_t wl_spread_ok_version = r.U64();
  const uint8_t victim_select = r.U8();
  const uint32_t victim_min_bucket = r.U32();
  const uint32_t pe_index_min_bucket = r.U32();
  const uint64_t wear_sync_version = r.U64();
  FtlStats stats;
  LoadFtlStats(r, &stats);
  r.LeaveSection();
  FLASHSIM_RETURN_IF_ERROR(r.status());
  if (packed_map.size() != map_.size() ||
      valid_counts.size() != valid_counts_.size() ||
      states.size() != block_states_.size() ||
      close_seq.size() != close_seq_.size() ||
      gc_origin.size() != gc_origin_.size() ||
      victim_select > static_cast<uint8_t>(VictimSelect::kIndexed)) {
    return DataLossError("snapshot FTL state has inconsistent sizes");
  }
  for (size_t i = 0; i < map_.size(); ++i) {
    map_[i] = PhysPageAddr{static_cast<BlockId>(packed_map[i] >> 32),
                           static_cast<uint32_t>(packed_map[i])};
  }
  valid_counts_ = std::move(valid_counts);
  for (size_t i = 0; i < states.size(); ++i) {
    block_states_[i] = static_cast<BlockState>(states[i]);
  }
  close_seq_ = std::move(close_seq);
  gc_origin_ = std::move(gc_origin);
  free_blocks_.Clear();
  for (const WearBucketedFreePool::Entry& e : pool) {
    free_blocks_.Insert(e.pe_cycles, e.block);
  }
  host_active_ = host_active;
  gc_active_ = gc_active;
  dead_blocks_ = std::move(dead_blocks);
  valid_total_ = valid_total;
  erase_seq_ = erase_seq;
  spares_used_ = spares_used;
  read_only_ = read_only;
  divert_gc_wear_ = divert_gc_wear;
  wl_spread_ok_version_ = wl_spread_ok_version;
  victim_select_ = static_cast<VictimSelect>(victim_select);
  reclaiming_block_ = kInvalidBlockId;
  UpdateWearLevelCheckDue();
  if (UseIndex()) {
    RebuildVictimIndexes();
    victim_index_.set_min_bucket(victim_min_bucket);
    closed_by_pe_.set_min_bucket(pe_index_min_bucket);
    // Preserved verbatim: if the save raced a pending external wear change,
    // the restored device re-detects it exactly like the saved one would.
    wear_sync_version_ = wear_sync_version;
  }
  // Restored last so the LoadState-time index rebuild above does not show up
  // in victim_index_rebuilds (the saved device never ran it).
  stats_ = stats;
  return Status::Ok();
}

}  // namespace flashsim
