// Wear-bucketed free-block pool.
//
// Dynamic wear leveling hands out the least-worn free block on every
// allocation, which the FTL previously implemented with a
// std::set<std::pair<pe, BlockId>> — an O(log n) node-allocating red-black
// tree walked on every block allocation and every reclaim. Free blocks are
// instead kept in per-wear buckets: buckets_[pe] holds every free block with
// exactly `pe` program/erase cycles as a binary min-heap of block ids, and a
// monotone cursor tracks the lowest non-empty bucket. PopMin() is O(1)
// bucket lookup plus an O(log bucket) heap pop with no allocation on the hot
// path; the cursor only rescans when wear advances, which it does
// monotonically over a device's life.
//
// Ordering is identical to the std::set it replaces: blocks pop in
// ascending (pe_cycles, block id) order, so allocation sequences — and
// therefore every seeded simulation result — are unchanged.

#ifndef SRC_FTL_FREE_POOL_H_
#define SRC_FTL_FREE_POOL_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/nand/address.h"

namespace flashsim {

class WearBucketedFreePool {
 public:
  // One pool entry: the block's P/E count at insertion time plus its id.
  struct Entry {
    uint32_t pe_cycles = 0;
    BlockId block = kInvalidBlockId;
  };

  // Adds `block` with the given wear. A block must not be inserted twice.
  void Insert(uint32_t pe_cycles, BlockId block);

  // Removes and returns the entry with the lowest (pe_cycles, block) pair.
  // The pool must not be empty.
  Entry PopMin();

  // The lowest (pe_cycles, block) entry without removing it. The pool must
  // not be empty.
  Entry PeekMin() const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Snapshot of every entry, in unspecified order (for invariant checks and
  // introspection — not a hot path).
  std::vector<Entry> Entries() const;

  void Clear();

 private:
  // Index of the lowest bucket that may be non-empty; advanced lazily.
  uint32_t FindMinBucket() const;

  std::vector<std::vector<BlockId>> buckets_;  // buckets_[pe] = min-heap of ids
  size_t size_ = 0;
  uint32_t min_bucket_ = 0;
};

}  // namespace flashsim

#endif  // SRC_FTL_FREE_POOL_H_
