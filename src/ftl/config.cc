#include "src/ftl/config.h"

namespace flashsim {

Status FtlConfig::Validate() const {
  if (over_provisioning < 0.0 || over_provisioning >= 0.5) {
    return InvalidArgumentError("over_provisioning must be in [0, 0.5)");
  }
  if (gc_free_block_watermark < 2) {
    return InvalidArgumentError("gc_free_block_watermark must be >= 2");
  }
  if (health_rated_pe == 0) {
    return InvalidArgumentError("health_rated_pe must be nonzero");
  }
  if (wear_level_threshold != 0 && wear_level_check_interval == 0) {
    return InvalidArgumentError("wear_level_check_interval must be nonzero");
  }
  return Status::Ok();
}

Status HybridConfig::Validate() const {
  if (cache_blocks < 4) {
    return InvalidArgumentError("hybrid cache needs at least 4 blocks");
  }
  if (cache_free_watermark < 1 || cache_free_watermark >= cache_blocks) {
    return InvalidArgumentError("cache_free_watermark out of range");
  }
  if (merge_utilization_threshold <= 0.0 || merge_utilization_threshold > 1.0) {
    return InvalidArgumentError("merge_utilization_threshold out of range");
  }
  if (mlc_mode_wear_weight == 0) {
    return InvalidArgumentError("mlc_mode_wear_weight must be nonzero");
  }
  if (health_rated_pe_a == 0) {
    return InvalidArgumentError("health_rated_pe_a must be nonzero");
  }
  return Status::Ok();
}

}  // namespace flashsim
