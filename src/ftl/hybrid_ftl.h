// Hybrid two-flash-type FTL, modelling devices like the paper's eMMC 16 GB:
// a small, high-endurance SLC-mode region ("Type A") acts as a write cache in
// front of the main MLC pool ("Type B"). The JEDEC health registers report
// the two regions separately — the paper's Table 1 tracks exactly these.
//
// Mechanisms reproduced:
//  * All host writes land in the Type A log first and are migrated to Type B
//    when cache blocks are evicted (FIFO), so Type A wear accrues slowly
//    (huge SLC-mode endurance) while Type B absorbs ~1x host traffic.
//  * Pool merging under pressure: when logical utilization crosses a
//    threshold the firmware drafts Type A blocks as staging for GC traffic
//    and cycles them in MLC mode. MLC-mode programming stresses SLC-rated
//    cells far beyond their rating, modelled as a per-erase wear weight.
//    This is the regime in which the paper observed Type A wear accelerating
//    ~27x (Table 1, rows "4 KiB rand rewrite 90%+").

#ifndef SRC_FTL_HYBRID_FTL_H_
#define SRC_FTL_HYBRID_FTL_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/ftl/config.h"
#include "src/ftl/ftl_interface.h"
#include "src/ftl/page_map_ftl.h"
#include "src/nand/chip.h"

namespace flashsim {

class HybridFtl : public FtlInterface {
 public:
  // `mlc_config`/`ftl_config` describe the Type B pool; `slc_config` the
  // Type A cache chip (its geometry should be small); `hybrid_config` the
  // cache/merge policy. All configs must validate.
  HybridFtl(NandChipConfig mlc_config, FtlConfig ftl_config, NandChipConfig slc_config,
            HybridConfig hybrid_config, uint64_t seed, EventLog* event_log = nullptr);

  // FtlInterface:
  Result<SimDuration> WritePage(uint64_t lpn) override;
  // Bulk fast path. Pages stream through NandChip::ProgramRun on the cache
  // chip whenever no eviction or staged-GC work can intervene; every other
  // page takes the exact per-page route. Simulation-equivalent to per-page
  // WritePage calls (see DESIGN.md).
  Status WriteBatch(const uint64_t* lpns, size_t count,
                    SimDuration* per_page_times, size_t* pages_done) override;
  Result<SimDuration> WritePages(uint64_t lpn, uint64_t count) override;
  Result<SimDuration> ReadPage(uint64_t lpn) override;
  Status TrimPage(uint64_t lpn) override;
  uint64_t LogicalPageCount() const override { return mlc_.LogicalPageCount(); }
  uint32_t PageSizeBytes() const override { return mlc_.PageSizeBytes(); }
  HealthReport Health() const override;
  FtlStats Stats() const override;
  bool IsReadOnly() const override { return mlc_.IsReadOnly(); }
  double Utilization() const override { return mlc_.Utilization(); }

  // Mount-time recovery: remounts the MLC pool, then rebuilds the cache map
  // from the cache chip's OOB metadata. Both chips share one write-sequence
  // counter, so a surviving cache copy is live only if its sequence number
  // beats the MLC pool's copy of the same LPN — anything older (a bypass
  // write landed in the pool after the cache copy) is dropped as stale.
  // Closed cache blocks re-enter the FIFO in write-age order (max page
  // sequence). Merged-mode state and staging baselines reset.
  Result<RecoveryReport> Mount() override;

  void AttachPowerRail(PowerRail* rail) override {
    mlc_.AttachPowerRail(rail);
    cache_chip_.AttachPowerRail(rail);
  }

  // MLC-pool invariants plus the cache's: every cache-map entry points at a
  // programmed non-torn cache page tagged with its LPN, per-block valid
  // counts match the map, block states partition the cache chip, and the
  // FIFO/eviction index mirrors the closed set.
  Status ValidateInvariants(uint64_t lpn_stride = 1) const override;

  // Device snapshot (see FtlInterface): the MLC pool and cache chip nest
  // their own sections; the cache eviction index is rebuilt on load.
  void SaveState(SnapshotWriter& w) const override;
  Status LoadState(SnapshotReader& r) override;

  // True when the pool-merge heuristic is currently active (high utilization
  // AND sustained GC pressure; re-evaluated every pressure_window_pages).
  bool InMergedMode() const { return merged_mode_; }

  // Accessors for tests/experiments.
  const NandChip& cache_chip() const { return cache_chip_; }
  const PageMapFtl& mlc_pool() const { return mlc_; }
  uint32_t cache_resident_pages() const {
    return static_cast<uint32_t>(cache_map_.size());
  }
  // Reallocations of the bulk-write scratch buffers; constant in steady
  // state (DESIGN.md §12).
  uint64_t ScratchGrowCount() const {
    return scratch_lpns_.grow_count() + scratch_times_.grow_count();
  }

 private:
  enum class CacheBlockState : uint8_t { kFree, kOpen, kClosed, kBad };

  // Ensures an open cache block exists, evicting closed block(s) when the
  // free pool is below the watermark.
  Status EnsureCacheSpace(SimDuration& time_acc);

  // Migrates all live pages of one closed cache block (chosen by the
  // configured eviction policy) into the MLC pool and erases the block
  // (wear-weighted in merged mode).
  Status EvictCacheBlock(SimDuration& time_acc);

  // Eviction victim per HybridConfig::cache_evict_policy; kInvalidBlockId
  // when no closed block exists. Folds the pick into the cache stats.
  BlockId PickCacheEvictVictim();

  // In merged mode, charges Type A staging wear for GC traffic that the MLC
  // pool generated since the last call (drafted-block model).
  void ChargeStagingWear(SimDuration& time_acc);

  // Picks (or opens) the active cache block; invalid when cache disabled.
  Result<BlockId> OpenCacheBlock();

  // The per-page program-attempt loop of WritePage, entered at
  // `first_attempt` so the bulk path can resume a page after a mid-run
  // program failure with the attempt already burned. `time_acc` carries any
  // eviction time already accrued for this page.
  Result<SimDuration> WriteViaCache(uint64_t lpn, SimDuration time_acc,
                                    int first_attempt);

  void RetireCacheBlock(BlockId block);

  // --- Closed-set bookkeeping shared by the eviction policies ---
  bool UseCacheIndex() const {
    return hybrid_config_.cache_evict_policy == CacheEvictPolicy::kMinValid &&
           hybrid_config_.victim_select == VictimSelect::kIndexed;
  }
  bool HasClosedCacheBlock() const { return cache_closed_count_ > 0; }
  // Called when a cache block fills (kFifo appends; kMinValid indexes it).
  void OnCacheBlockClosed(BlockId block);
  // Removes a just-picked victim from the closed set before migration, so
  // the migration loop's valid-count decrements need no index moves.
  void RemoveClosedCacheBlock(BlockId block);
  // Puts an eviction victim back into the closed set when migration is
  // abandoned (power cut, pool exhaustion); see EvictCacheBlock.
  void RestoreClosedCacheBlock(BlockId block);
  // Valid-count mutations; a closed block moves between index buckets.
  void IncCacheValid(BlockId block);
  void DecCacheValid(BlockId block);

  PageMapFtl mlc_;
  NandChip cache_chip_;
  HybridConfig hybrid_config_;
  EventLog* event_log_;

  // One write-sequence domain across both chips (see Mount); both chips hold
  // a pointer to this counter, so HybridFtl must not be copied or moved.
  uint64_t shared_write_seq_ = 1;

  std::unordered_map<uint64_t, PhysPageAddr> cache_map_;  // lpn -> cache page
  std::vector<CacheBlockState> cache_states_;
  std::vector<uint32_t> cache_valid_;
  std::deque<BlockId> cache_fifo_;  // closed blocks, oldest first (kFifo)
  std::vector<BlockId> cache_free_;
  BlockId cache_active_ = kInvalidBlockId;
  bool cache_enabled_ = true;
  uint32_t cache_bad_blocks_ = 0;

  // Closed cache blocks keyed by valid count (kMinValid + kIndexed only).
  BucketVictimIndex cache_index_;
  uint32_t cache_closed_count_ = 0;
  uint64_t cache_evict_picks_ = 0;
  uint64_t cache_evict_candidates_ = 0;
  uint64_t cache_victim_hash_ = kVictimHashInit;

  // Re-evaluates the pool-merge heuristic once per pressure window.
  void UpdateMergedMode();

  uint64_t host_pages_written_ = 0;
  uint64_t host_pages_read_ = 0;
  uint64_t gc_staged_baseline_ = 0;   // mlc gc_pages_migrated already charged
  uint64_t staging_page_credit_ = 0;  // staged pages not yet a full block
  bool merged_mode_ = false;
  uint64_t window_host_baseline_ = 0;
  uint64_t window_gc_baseline_ = 0;

  // Scratch buffers for the bulk write path, reused across calls.
  ScratchBuffer<uint64_t> scratch_lpns_;
  ScratchBuffer<SimDuration> scratch_times_;
};

}  // namespace flashsim

#endif  // SRC_FTL_HYBRID_FTL_H_
