#include "src/ftl/hybrid_ftl.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace flashsim {

namespace {
// Below this many good cache blocks the cache is disabled and writes bypass
// straight to the MLC pool.
constexpr uint32_t kMinCacheBlocks = 4;
}  // namespace

HybridFtl::HybridFtl(NandChipConfig mlc_config, FtlConfig ftl_config,
                     NandChipConfig slc_config, HybridConfig hybrid_config,
                     uint64_t seed, EventLog* event_log)
    : mlc_(mlc_config, ftl_config, seed, event_log),
      cache_chip_(slc_config, seed ^ 0xa5a5a5a5a5a5a5a5ull),
      hybrid_config_(hybrid_config),
      event_log_(event_log) {
  assert(hybrid_config_.Validate().ok());
  assert(slc_config.page_size_bytes == mlc_config.page_size_bytes);
  // Both chips stamp OOB write sequences from one counter, so mount-time
  // recovery can order copies of an LPN across the cache and the pool.
  mlc_.mutable_chip().AttachSharedSeq(&shared_write_seq_);
  cache_chip_.AttachSharedSeq(&shared_write_seq_);
  const uint32_t blocks = cache_chip_.config().total_blocks();
  cache_states_.assign(blocks, CacheBlockState::kFree);
  cache_valid_.assign(blocks, 0);
  cache_free_.reserve(blocks);
  for (BlockId b = 0; b < blocks; ++b) {
    cache_free_.push_back(b);
  }
  if (UseCacheIndex()) {
    cache_index_.Reset(cache_chip_.config().pages_per_block + 1, blocks,
                       BucketVictimIndex::Order::kById);
  }
}

void HybridFtl::OnCacheBlockClosed(BlockId block) {
  ++cache_closed_count_;
  if (hybrid_config_.cache_evict_policy == CacheEvictPolicy::kFifo) {
    cache_fifo_.push_back(block);
  } else if (UseCacheIndex()) {
    cache_index_.Insert(cache_valid_[block], block);
  }
}

void HybridFtl::RemoveClosedCacheBlock(BlockId block) {
  assert(cache_closed_count_ > 0);
  --cache_closed_count_;
  if (hybrid_config_.cache_evict_policy == CacheEvictPolicy::kFifo) {
    assert(!cache_fifo_.empty() && cache_fifo_.front() == block);
    cache_fifo_.pop_front();
  } else if (UseCacheIndex()) {
    cache_index_.Erase(cache_valid_[block], block);
  }
}

void HybridFtl::RestoreClosedCacheBlock(BlockId block) {
  // Reverses RemoveClosedCacheBlock after an abandoned eviction: the victim
  // still holds live pages and must stay visible to future picks, or the
  // indexed/FIFO modes silently diverge from the linear reference scan. The
  // FIFO re-insert goes to the front, where the pick took it from.
  ++cache_closed_count_;
  if (hybrid_config_.cache_evict_policy == CacheEvictPolicy::kFifo) {
    cache_fifo_.push_front(block);
  } else if (UseCacheIndex()) {
    cache_index_.Insert(cache_valid_[block], block);
  }
}

void HybridFtl::IncCacheValid(BlockId block) {
  ++cache_valid_[block];
  if (UseCacheIndex() && cache_states_[block] == CacheBlockState::kClosed) {
    cache_index_.Move(cache_valid_[block] - 1, cache_valid_[block], block);
  }
}

void HybridFtl::DecCacheValid(BlockId block) {
  assert(cache_valid_[block] > 0);
  --cache_valid_[block];
  if (UseCacheIndex() && cache_states_[block] == CacheBlockState::kClosed) {
    cache_index_.Move(cache_valid_[block] + 1, cache_valid_[block], block);
  }
}

BlockId HybridFtl::PickCacheEvictVictim() {
  BlockId victim = kInvalidBlockId;
  switch (hybrid_config_.cache_evict_policy) {
    case CacheEvictPolicy::kFifo:
      if (!cache_fifo_.empty()) {
        victim = cache_fifo_.front();
        ++cache_evict_candidates_;
      }
      break;
    case CacheEvictPolicy::kMinValid:
      if (hybrid_config_.victim_select == VictimSelect::kIndexed) {
        uint32_t bucket = 0;
        uint32_t id = 0;
        // No limit bucket: a full-valid block is still evictable (matching
        // the linear min-valid scan, which considers every closed block).
        if (cache_index_.PickMin(cache_index_.bucket_count(), &bucket, &id,
                                 &cache_evict_candidates_)) {
          victim = id;
        }
      } else {
        // Strict improvement only: equal valid counts keep the lowest id.
        uint32_t best_valid = 0;
        cache_evict_candidates_ += cache_states_.size();
        for (BlockId b = 0; b < cache_states_.size(); ++b) {
          if (cache_states_[b] != CacheBlockState::kClosed) {
            continue;
          }
          if (victim == kInvalidBlockId || cache_valid_[b] < best_valid) {
            victim = b;
            best_valid = cache_valid_[b];
          }
        }
      }
      break;
  }
  if (victim != kInvalidBlockId) {
    ++cache_evict_picks_;
    cache_victim_hash_ = VictimHashMix(cache_victim_hash_, victim);
  }
  return victim;
}

void HybridFtl::UpdateMergedMode() {
  const uint64_t window = hybrid_config_.pressure_window_pages;
  if (host_pages_written_ - window_host_baseline_ < window) {
    return;
  }
  const uint64_t gc_now = mlc_.Stats().gc_pages_migrated;
  const double gc_ratio =
      static_cast<double>(gc_now - window_gc_baseline_) /
      static_cast<double>(host_pages_written_ - window_host_baseline_);
  merged_mode_ = mlc_.Utilization() >= hybrid_config_.merge_utilization_threshold &&
                 gc_ratio >= hybrid_config_.gc_pressure_ratio;
  mlc_.SetDivertGcWear(merged_mode_);
  window_host_baseline_ = host_pages_written_;
  window_gc_baseline_ = gc_now;
}

void HybridFtl::RetireCacheBlock(BlockId block) {
  cache_states_[block] = CacheBlockState::kBad;
  ++cache_bad_blocks_;
  const uint32_t good = cache_chip_.config().total_blocks() - cache_bad_blocks_;
  if (good < kMinCacheBlocks) {
    cache_enabled_ = false;
    if (event_log_ != nullptr) {
      event_log_->Append(SimTime(), EventSeverity::kWarning, "ftl.hybrid",
                         "Type A cache exhausted; bypassing to Type B pool");
    }
  }
}

Result<BlockId> HybridFtl::OpenCacheBlock() {
  if (cache_free_.empty()) {
    return ResourceExhaustedError("no free cache blocks");
  }
  const BlockId id = cache_free_.back();
  cache_free_.pop_back();
  cache_states_[id] = CacheBlockState::kOpen;
  return id;
}

Status HybridFtl::EvictCacheBlock(SimDuration& time_acc) {
  const BlockId victim = PickCacheEvictVictim();
  if (victim == kInvalidBlockId) {
    return ResourceExhaustedError("no closed cache blocks to evict");
  }
  // Out of the closed set first, so the migration loop's valid-count
  // decrements on the victim need no index maintenance.
  RemoveClosedCacheBlock(victim);
  const uint32_t wp = cache_chip_.block(victim).write_pointer();
  // Batch OOB scan (see PageMapFtl::ReclaimBlock): the victim's valid count
  // is exactly the number of live cache-map entries, so the walk stops when
  // the last one has migrated, and the per-page torn test only runs on
  // blocks that actually hold torn pages.
  const NandChip::OobRunView oob = cache_chip_.ReadTagsRun(victim);
  const bool has_torn = cache_chip_.BlockHasTornPages(victim);
  const NandBlock& vblk = cache_chip_.block(victim);
  for (uint32_t page = 0; page < wp && cache_valid_[victim] > 0; ++page) {
    if (has_torn && vblk.TornAt(page)) {
      continue;  // torn by a power cut; discarded at mount, never mapped
    }
    const uint64_t lpn = oob.tags[page];
    const PhysPageAddr src{victim, page};
    auto it = cache_map_.find(lpn);
    if (it == cache_map_.end() || it->second != src) {
      continue;  // superseded by a newer cache copy
    }
    Result<NandReadOutcome> read = cache_chip_.ReadPage(src);
    if (read.ok()) {
      time_acc += read.value().latency;
    }
    Result<SimDuration> write = mlc_.WritePageInternal(lpn, /*count_as_host=*/false);
    if (!write.ok()) {
      RestoreClosedCacheBlock(victim);
      return write.status();
    }
    time_acc += write.value();
    cache_map_.erase(it);
    --cache_valid_[victim];  // raw: victim already left the closed set
  }
  const uint32_t wear_weight = InMergedMode() ? hybrid_config_.mlc_mode_wear_weight : 1;
  Result<SimDuration> erase = cache_chip_.EraseBlock(victim, wear_weight);
  if (!erase.ok()) {
    if (erase.status().code() == StatusCode::kPowerLoss) {
      // Fully migrated but still kClosed: keep it in the closed set so the
      // "closed <=> tracked" invariant holds until Mount rebuilds everything.
      RestoreClosedCacheBlock(victim);
      return erase.status();  // block is torn, not bad; Mount re-erases it
    }
    RetireCacheBlock(victim);
    return Status::Ok();
  }
  time_acc += erase.value();
  cache_states_[victim] = CacheBlockState::kFree;
  cache_valid_[victim] = 0;
  cache_free_.push_back(victim);
  return Status::Ok();
}

void HybridFtl::ChargeStagingWear(SimDuration& time_acc) {
  const uint64_t migrated_now = mlc_.Stats().gc_pages_migrated;
  const uint64_t delta = migrated_now - gc_staged_baseline_;
  gc_staged_baseline_ = migrated_now;
  if (!InMergedMode() || !cache_enabled_ || delta == 0) {
    return;
  }
  // Drafted-block model: GC migrations stream through Type A staging blocks,
  // cycling them in MLC mode. We charge whole staging-block cycles as the
  // staged page count crosses block boundaries.
  staging_page_credit_ += delta;
  const uint32_t ppb = cache_chip_.config().pages_per_block;
  while (staging_page_credit_ >= ppb) {
    staging_page_credit_ -= ppb;
    // Cycle the least-recently-used free cache block as the staging buffer.
    if (cache_free_.empty()) {
      // All cache blocks busy with host data; stage through a closed block
      // by evicting it first.
      if (EvictCacheBlock(time_acc).ok() && !cache_free_.empty()) {
        // fall through to cycle a free block below
      } else {
        return;
      }
    }
    const BlockId staging = cache_free_.back();
    Result<SimDuration> erase =
        cache_chip_.EraseBlock(staging, hybrid_config_.mlc_mode_wear_weight);
    if (!erase.ok()) {
      if (erase.status().code() == StatusCode::kPowerLoss) {
        return;  // block is torn, not bad; Mount re-erases it
      }
      cache_free_.pop_back();
      RetireCacheBlock(staging);
      continue;
    }
    time_acc += erase.value();
    // Staging writes + erase: charge program time for a full block pass.
    time_acc += cache_chip_.config().timings.program_page * ppb;
  }
}

Status HybridFtl::EnsureCacheSpace(SimDuration& time_acc) {
  while (cache_free_.size() < hybrid_config_.cache_free_watermark &&
         HasClosedCacheBlock()) {
    FLASHSIM_RETURN_IF_ERROR(EvictCacheBlock(time_acc));
  }
  return Status::Ok();
}

Result<SimDuration> HybridFtl::WritePage(uint64_t lpn) {
  if (mlc_.IsReadOnly()) {
    return UnavailableError("device is read-only (worn out)");
  }
  if (lpn >= mlc_.LogicalPageCount()) {
    return OutOfRangeError("LPN beyond logical capacity");
  }
  SimDuration time_acc;
  if (!cache_enabled_) {
    Result<SimDuration> direct = mlc_.WritePageInternal(lpn, /*count_as_host=*/false);
    if (!direct.ok()) {
      return direct.status();
    }
    ++host_pages_written_;
    return direct.value();
  }
  FLASHSIM_RETURN_IF_ERROR(EnsureCacheSpace(time_acc));
  return WriteViaCache(lpn, time_acc, /*first_attempt=*/0);
}

Result<SimDuration> HybridFtl::WriteViaCache(uint64_t lpn, SimDuration time_acc,
                                             int first_attempt) {
  for (int attempt = first_attempt; attempt < 4; ++attempt) {
    if (cache_active_ == kInvalidBlockId) {
      Result<BlockId> open = OpenCacheBlock();
      if (!open.ok()) {
        // Cache full beyond eviction (e.g. tiny cache): bypass this write.
        Result<SimDuration> direct =
            mlc_.WritePageInternal(lpn, /*count_as_host=*/false);
        if (!direct.ok()) {
          return direct.status();
        }
        ++host_pages_written_;
        return time_acc + direct.value();
      }
      cache_active_ = open.value();
    }
    const uint32_t wp = cache_chip_.block(cache_active_).write_pointer();
    const PhysPageAddr addr{cache_active_, wp};
    Result<SimDuration> prog = cache_chip_.ProgramPage(addr, lpn);
    if (!prog.ok()) {
      if (prog.status().code() == StatusCode::kPowerLoss) {
        return prog.status();  // page is torn, block healthy; do not retire
      }
      RetireCacheBlock(cache_active_);
      cache_active_ = kInvalidBlockId;
      if (!cache_enabled_) {
        continue;  // next attempt takes the bypass path
      }
      continue;
    }
    time_acc += prog.value();
    // Supersede any older cache copy, then install the new mapping.
    auto it = cache_map_.find(lpn);
    if (it != cache_map_.end()) {
      DecCacheValid(it->second.block);
      it->second = addr;
    } else {
      cache_map_.emplace(lpn, addr);
    }
    IncCacheValid(cache_active_);
    if (cache_chip_.block(cache_active_).IsFull()) {
      cache_states_[cache_active_] = CacheBlockState::kClosed;
      OnCacheBlockClosed(cache_active_);
      cache_active_ = kInvalidBlockId;
    }
    ++host_pages_written_;
    UpdateMergedMode();
    ChargeStagingWear(time_acc);
    return time_acc;
  }
  return UnavailableError("repeated cache program failures");
}

Status HybridFtl::WriteBatch(const uint64_t* lpns, size_t count,
                             SimDuration* per_page_times, size_t* pages_done) {
  // Simulation-equivalent to `count` WritePage calls in order. A page takes
  // the bulk route only when the per-page machinery around it is provably
  // inert: the cache is enabled with an open active block, no eviction is
  // pending (EnsureCacheSpace would be a no-op, and nothing mid-stretch can
  // change that before the block closes), and no staged-GC wear is
  // outstanding (ChargeStagingWear's delta stays zero because the MLC pool
  // is untouched between cache programs). Everything else — evictions,
  // bypasses, retries after program failures — runs the exact per-page code.
  *pages_done = 0;
  const uint32_t ppb = cache_chip_.config().pages_per_block;
  const SimDuration cache_program_time = cache_chip_.config().timings.program_page;
  size_t i = 0;
  while (i < count) {
    const bool eviction_pending =
        cache_free_.size() < hybrid_config_.cache_free_watermark &&
        HasClosedCacheBlock();
    if (cache_enabled_ && cache_active_ != kInvalidBlockId && !eviction_pending &&
        !mlc_.IsReadOnly() &&
        mlc_.Stats().gc_pages_migrated == gc_staged_baseline_) {
      const BlockId block = cache_active_;
      const uint32_t wp = cache_chip_.block(block).write_pointer();
      uint32_t run = static_cast<uint32_t>(
          std::min<uint64_t>(count - i, ppb - wp));
      // Out-of-range LPNs fail before programming; surface them in order.
      for (uint32_t k = 0; k < run; ++k) {
        if (lpns[i + k] >= mlc_.LogicalPageCount()) {
          run = k;
          break;
        }
      }
      if (run > 0) {
        Result<NandProgramRunOutcome> prog =
            cache_chip_.ProgramRun(block, lpns + i, run);
        if (!prog.ok()) {
          return prog.status();
        }
        const NandProgramRunOutcome& outcome = prog.value();
        for (uint32_t k = 0; k < outcome.pages_done; ++k) {
          const uint64_t lpn = lpns[i + k];
          per_page_times[i + k] = cache_program_time;
          const PhysPageAddr addr{block, wp + k};
          auto it = cache_map_.find(lpn);
          if (it != cache_map_.end()) {
            DecCacheValid(it->second.block);
            it->second = addr;
          } else {
            cache_map_.emplace(lpn, addr);
          }
          IncCacheValid(block);
          if (wp + k + 1 == ppb) {
            cache_states_[block] = CacheBlockState::kClosed;
            OnCacheBlockClosed(block);
            cache_active_ = kInvalidBlockId;
          }
          ++host_pages_written_;
          UpdateMergedMode();
          // ChargeStagingWear is skipped: its delta is zero for every page
          // of the stretch (precondition above), so it would only re-sync
          // an already-synced baseline.
          ++*pages_done;
        }
        i += outcome.pages_done;
        if (outcome.power_lost) {
          // Same point the per-page path reaches: the next page is torn and
          // its write was never acknowledged.
          return PowerLossError("power lost mid-program; page torn");
        }
        if (outcome.block_failed) {
          RetireCacheBlock(block);
          cache_active_ = kInvalidBlockId;
          // Resume the failed page on the per-page attempt loop with one
          // attempt burned, exactly as WritePage would after this failure.
          Result<SimDuration> one =
              WriteViaCache(lpns[i], SimDuration(), /*first_attempt=*/1);
          if (!one.ok()) {
            return one.status();
          }
          per_page_times[i] = one.value();
          ++*pages_done;
          ++i;
        }
        continue;
      }
    }
    // Per-page route (evictions, bypass, range errors, merged-mode charges).
    Result<SimDuration> one = WritePage(lpns[i]);
    if (!one.ok()) {
      return one.status();
    }
    per_page_times[i] = one.value();
    ++*pages_done;
    ++i;
  }
  return Status::Ok();
}

Result<SimDuration> HybridFtl::WritePages(uint64_t lpn, uint64_t count) {
  if (count == 0) {
    return SimDuration();
  }
  uint64_t* lpns = scratch_lpns_.Acquire(count);
  SimDuration* times = scratch_times_.AcquireZeroed(count);
  for (uint64_t k = 0; k < count; ++k) {
    lpns[k] = lpn + k;
  }
  size_t done = 0;
  Status st = WriteBatch(lpns, count, times, &done);
  if (!st.ok()) {
    return st;
  }
  SimDuration total;
  for (size_t k = 0; k < done; ++k) {
    total += times[k];
  }
  return total;
}

Result<SimDuration> HybridFtl::ReadPage(uint64_t lpn) {
  if (lpn >= mlc_.LogicalPageCount()) {
    return OutOfRangeError("LPN beyond logical capacity");
  }
  auto it = cache_map_.find(lpn);
  if (it != cache_map_.end()) {
    Result<NandReadOutcome> read = cache_chip_.ReadPage(it->second);
    if (!read.ok()) {
      return read.status();
    }
    ++host_pages_read_;
    return read.value().latency;
  }
  Result<SimDuration> read = mlc_.ReadPage(lpn);
  if (!read.ok()) {
    return read.status();
  }
  ++host_pages_read_;
  return read.value();
}

Status HybridFtl::TrimPage(uint64_t lpn) {
  if (lpn >= mlc_.LogicalPageCount()) {
    return OutOfRangeError("LPN beyond logical capacity");
  }
  auto it = cache_map_.find(lpn);
  if (it != cache_map_.end()) {
    DecCacheValid(it->second.block);
    cache_map_.erase(it);
  }
  return mlc_.TrimPage(lpn);
}

HealthReport HybridFtl::Health() const {
  HealthReport report = mlc_.Health();
  // The MLC pool is the *Type B* region of this device; its own "A" slot
  // holds that data, so move it over and fill A from the cache chip.
  report.life_time_est_b = report.life_time_est_a;
  report.avg_pe_b = report.avg_pe_a;
  report.rated_pe_b = report.rated_pe_a;
  const WearSummary cache_wear = cache_chip_.ComputeWearSummary();
  report.avg_pe_a = cache_wear.avg_pe;
  report.rated_pe_a = hybrid_config_.health_rated_pe_a;
  report.life_time_est_a = LifeFractionToLevel(
      cache_wear.avg_pe / static_cast<double>(hybrid_config_.health_rated_pe_a));
  return report;
}

Result<RecoveryReport> HybridFtl::Mount() {
  Result<RecoveryReport> pool = mlc_.Mount();
  if (!pool.ok()) {
    return pool.status();
  }
  RecoveryReport rep = pool.value();

  const uint32_t blocks = cache_chip_.config().total_blocks();
  const uint32_t ppb = cache_chip_.config().pages_per_block;

  // Phase 0: finish cache erases interrupted by the cut (no P/E charged).
  for (BlockId b = 0; b < blocks; ++b) {
    if (cache_chip_.block(b).is_bad() || !cache_chip_.block(b).erase_torn()) {
      continue;
    }
    ++rep.torn_erase_blocks;
    Result<SimDuration> erase = cache_chip_.EraseBlock(b);
    if (!erase.ok()) {
      if (erase.status().code() == StatusCode::kPowerLoss) {
        return erase.status();
      }
      ++rep.blocks_retired;  // erase-verify failed; chip marked it bad
    }
  }

  // Phase 1: newest cache copy of every LPN, by OOB write sequence. Tags and
  // sequences come from the flat metadata plane in one run per block; a
  // page below the write pointer is programmed unless its torn bit is set,
  // so the non-torn path needs no per-page status checks.
  std::unordered_map<uint64_t, uint64_t> best_seq;  // lpn -> max cache seq
  for (BlockId b = 0; b < blocks; ++b) {
    const NandBlock& blk = cache_chip_.block(b);
    if (blk.is_bad()) {
      continue;
    }
    const NandChip::OobRunView oob = cache_chip_.ReadTagsRun(b);
    const bool has_torn = cache_chip_.BlockHasTornPages(b);
    for (uint32_t p = 0; p < blk.write_pointer(); ++p) {
      ++rep.scanned_pages;
      if (has_torn && blk.TornAt(p)) {
        ++rep.torn_pages_discarded;
        continue;
      }
      if (oob.tags[p] >= mlc_.LogicalPageCount()) {
        ++rep.stale_pages_ignored;
        continue;
      }
      uint64_t& best = best_seq[oob.tags[p]];
      best = std::max(best, oob.seqs[p]);
    }
  }

  // Phase 2: install winners — unless the MLC pool holds a newer copy of the
  // same LPN (both chips share one sequence counter; a bypass write can land
  // in the pool after a still-resident cache copy).
  cache_map_.clear();
  for (BlockId b = 0; b < blocks; ++b) {
    const NandBlock& blk = cache_chip_.block(b);
    if (blk.is_bad()) {
      continue;
    }
    const NandChip::OobRunView oob = cache_chip_.ReadTagsRun(b);
    const bool has_torn = cache_chip_.BlockHasTornPages(b);
    for (uint32_t p = 0; p < blk.write_pointer(); ++p) {
      if (has_torn && blk.TornAt(p)) {
        continue;
      }
      if (oob.tags[p] >= mlc_.LogicalPageCount()) {
        continue;
      }
      const uint64_t lpn = oob.tags[p];
      if (oob.seqs[p] != best_seq[lpn]) {
        ++rep.stale_pages_ignored;  // superseded inside the cache
        continue;
      }
      const PhysPageAddr pool_addr = mlc_.MappedAddr(lpn);
      if (pool_addr != kInvalidPageAddr &&
          mlc_.chip().block(pool_addr.block).PageSeq(pool_addr.page) >
              oob.seqs[p]) {
        ++rep.stale_pages_ignored;  // bypass write left the pool copy newer
        continue;
      }
      cache_map_[lpn] = PhysPageAddr{b, p};
      ++rep.mapped_pages_recovered;
    }
  }

  // Phase 3: rebuild the block structures. Partially written blocks are
  // sealed closed (never resumed); closed blocks re-enter the FIFO in
  // write-age order (newest page sequence, ascending = oldest first).
  cache_valid_.assign(blocks, 0);
  for (const auto& [lpn, addr] : cache_map_) {
    (void)lpn;
    ++cache_valid_[addr.block];
  }
  cache_fifo_.clear();
  cache_free_.clear();
  cache_active_ = kInvalidBlockId;
  cache_closed_count_ = 0;
  cache_bad_blocks_ = 0;
  std::vector<std::pair<uint64_t, BlockId>> closed;  // (newest seq, id)
  for (BlockId b = 0; b < blocks; ++b) {
    const NandBlock& blk = cache_chip_.block(b);
    if (blk.is_bad()) {
      cache_states_[b] = CacheBlockState::kBad;
      ++cache_bad_blocks_;
    } else if (blk.IsErased()) {
      cache_states_[b] = CacheBlockState::kFree;
      cache_free_.push_back(b);
    } else {
      cache_states_[b] = CacheBlockState::kClosed;
      uint64_t newest = 0;
      for (uint32_t p = 0; p < blk.write_pointer(); ++p) {
        newest = std::max(newest, blk.PageSeq(p));
      }
      closed.emplace_back(newest, b);
    }
  }
  std::sort(closed.begin(), closed.end());
  if (UseCacheIndex()) {
    cache_index_.Reset(ppb + 1, blocks, BucketVictimIndex::Order::kById);
  }
  for (const auto& [seq, b] : closed) {
    (void)seq;
    OnCacheBlockClosed(b);
  }
  cache_enabled_ = blocks - cache_bad_blocks_ >= kMinCacheBlocks;

  // Phase 4: merged-mode heuristics restart from the post-mount state.
  merged_mode_ = false;
  mlc_.SetDivertGcWear(false);
  staging_page_credit_ = 0;
  gc_staged_baseline_ = mlc_.Stats().gc_pages_migrated;
  window_host_baseline_ = host_pages_written_;
  window_gc_baseline_ = gc_staged_baseline_;

  FLASHSIM_RETURN_IF_ERROR(ValidateInvariants());
  return rep;
}

Status HybridFtl::ValidateInvariants(uint64_t lpn_stride) const {
  FLASHSIM_RETURN_IF_ERROR(mlc_.ValidateInvariants(lpn_stride));
  const uint32_t blocks = cache_chip_.config().total_blocks();
  std::vector<uint32_t> counted(blocks, 0);
  for (const auto& [lpn, addr] : cache_map_) {
    if (addr.block >= blocks ||
        addr.page >= cache_chip_.block(addr.block).write_pointer()) {
      return InternalError("cache map entry outside the written area");
    }
    const NandBlock& blk = cache_chip_.block(addr.block);
    if (blk.IsTorn(addr.page)) {
      return InternalError("cache map entry points at a torn page");
    }
    Result<uint64_t> tag = blk.ReadTag(addr.page);
    if (!tag.ok() || tag.value() != lpn) {
      return InternalError("cache OOB tag does not match the mapped LPN");
    }
    ++counted[addr.block];
  }
  uint32_t closed = 0;
  uint32_t bad = 0;
  uint32_t free_count = 0;
  for (BlockId b = 0; b < blocks; ++b) {
    if (counted[b] != cache_valid_[b]) {
      return InternalError("cache valid-count mismatch");
    }
    switch (cache_states_[b]) {
      case CacheBlockState::kFree:
        if (!cache_chip_.block(b).IsErased()) {
          return InternalError("free cache block is not erased");
        }
        ++free_count;
        break;
      case CacheBlockState::kOpen:
        if (b != cache_active_) {
          return InternalError("open cache block is not the active block");
        }
        break;
      case CacheBlockState::kClosed:
        ++closed;
        break;
      case CacheBlockState::kBad:
        ++bad;
        break;
    }
  }
  if (bad != cache_bad_blocks_) {
    return InternalError("cache bad-block count mismatch");
  }
  if (free_count != cache_free_.size()) {
    return InternalError("cache free-list size mismatch");
  }
  if (closed != cache_closed_count_) {
    return InternalError("cache closed-count mismatch");
  }
  if (hybrid_config_.cache_evict_policy == CacheEvictPolicy::kFifo &&
      cache_fifo_.size() != closed) {
    return InternalError("cache FIFO does not mirror the closed set");
  }
  if (UseCacheIndex() && cache_index_.size() != closed) {
    return InternalError("cache victim index does not mirror the closed set");
  }
  return Status::Ok();
}

FtlStats HybridFtl::Stats() const {
  FtlStats s = mlc_.Stats();
  s.host_pages_written = host_pages_written_;
  s.host_pages_read = host_pages_read_;
  // Cache programs are NAND writes too.
  s.nand_pages_written += cache_chip_.counters().Get("nand.programs");
  s.cache_evict_picks = cache_evict_picks_;
  s.cache_evict_candidates = cache_evict_candidates_;
  s.cache_victim_seq_hash = cache_victim_hash_;
  return s;
}

void HybridFtl::SaveState(SnapshotWriter& w) const {
  w.BeginSection(SnapshotTag("HFTL"));
  mlc_.SaveState(w);
  cache_chip_.SaveState(w);
  // The shared sequence counter is authoritative for both chips (they stamp
  // OOB through a pointer to it); the chips' own counters are shadows.
  w.U64(shared_write_seq_);
  // Cache map sorted by LPN: unordered_map iteration order is not stable, so
  // sorting keeps the snapshot bytes deterministic for a given state.
  std::vector<std::pair<uint64_t, PhysPageAddr>> entries(cache_map_.begin(),
                                                         cache_map_.end());
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.U64(entries.size());
  for (const auto& [lpn, addr] : entries) {
    w.U64(lpn);
    w.U64((static_cast<uint64_t>(addr.block) << 32) | addr.page);
  }
  std::vector<uint8_t> states(cache_states_.size());
  for (size_t i = 0; i < cache_states_.size(); ++i) {
    states[i] = static_cast<uint8_t>(cache_states_[i]);
  }
  w.VecU8(states);
  w.VecU32(cache_valid_);
  std::vector<uint32_t> fifo(cache_fifo_.begin(), cache_fifo_.end());
  w.VecU32(fifo);
  w.VecU32(cache_free_);
  w.U32(cache_active_);
  w.Bool(cache_enabled_);
  w.U32(cache_bad_blocks_);
  w.U32(cache_closed_count_);
  w.U64(cache_evict_picks_);
  w.U64(cache_evict_candidates_);
  w.U64(cache_victim_hash_);
  w.U32(cache_index_.min_bucket());
  w.U64(host_pages_written_);
  w.U64(host_pages_read_);
  w.U64(gc_staged_baseline_);
  w.U64(staging_page_credit_);
  w.Bool(merged_mode_);
  w.U64(window_host_baseline_);
  w.U64(window_gc_baseline_);
  w.EndSection();
}

Status HybridFtl::LoadState(SnapshotReader& r) {
  FLASHSIM_RETURN_IF_ERROR(r.EnterSection(SnapshotTag("HFTL")));
  FLASHSIM_RETURN_IF_ERROR(mlc_.LoadState(r));
  FLASHSIM_RETURN_IF_ERROR(cache_chip_.LoadState(r));
  const uint64_t shared_seq = r.U64();
  const uint64_t map_count = r.U64();
  std::vector<std::pair<uint64_t, PhysPageAddr>> entries;
  for (uint64_t i = 0; i < map_count && r.ok(); ++i) {
    const uint64_t lpn = r.U64();
    const uint64_t packed = r.U64();
    entries.emplace_back(lpn,
                         PhysPageAddr{static_cast<BlockId>(packed >> 32),
                                      static_cast<uint32_t>(packed)});
  }
  std::vector<uint8_t> states;
  std::vector<uint32_t> valid, fifo, free_list;
  r.VecU8(&states);
  r.VecU32(&valid);
  r.VecU32(&fifo);
  r.VecU32(&free_list);
  const BlockId cache_active = r.U32();
  const bool cache_enabled = r.Bool();
  const uint32_t cache_bad_blocks = r.U32();
  const uint32_t cache_closed_count = r.U32();
  const uint64_t evict_picks = r.U64();
  const uint64_t evict_candidates = r.U64();
  const uint64_t victim_hash = r.U64();
  const uint32_t index_min_bucket = r.U32();
  const uint64_t host_written = r.U64();
  const uint64_t host_read = r.U64();
  const uint64_t gc_staged_baseline = r.U64();
  const uint64_t staging_page_credit = r.U64();
  const bool merged_mode = r.Bool();
  const uint64_t window_host_baseline = r.U64();
  const uint64_t window_gc_baseline = r.U64();
  r.LeaveSection();
  FLASHSIM_RETURN_IF_ERROR(r.status());
  if (states.size() != cache_states_.size() ||
      valid.size() != cache_valid_.size()) {
    return DataLossError("snapshot cache state has inconsistent sizes");
  }
  shared_write_seq_ = shared_seq;
  cache_map_.clear();
  for (const auto& [lpn, addr] : entries) {
    cache_map_.emplace(lpn, addr);
  }
  for (size_t i = 0; i < states.size(); ++i) {
    cache_states_[i] = static_cast<CacheBlockState>(states[i]);
  }
  cache_valid_ = std::move(valid);
  cache_fifo_.assign(fifo.begin(), fifo.end());
  cache_free_.assign(free_list.begin(), free_list.end());
  cache_active_ = cache_active;
  cache_enabled_ = cache_enabled;
  cache_bad_blocks_ = cache_bad_blocks;
  cache_closed_count_ = cache_closed_count;
  cache_evict_picks_ = evict_picks;
  cache_evict_candidates_ = evict_candidates;
  cache_victim_hash_ = victim_hash;
  host_pages_written_ = host_written;
  host_pages_read_ = host_read;
  gc_staged_baseline_ = gc_staged_baseline;
  staging_page_credit_ = staging_page_credit;
  merged_mode_ = merged_mode;
  window_host_baseline_ = window_host_baseline;
  window_gc_baseline_ = window_gc_baseline;
  if (UseCacheIndex()) {
    const uint32_t blocks = cache_chip_.config().total_blocks();
    cache_index_.Reset(cache_chip_.config().pages_per_block + 1, blocks,
                       BucketVictimIndex::Order::kById);
    for (BlockId b = 0; b < blocks; ++b) {
      if (cache_states_[b] == CacheBlockState::kClosed) {
        cache_index_.Insert(cache_valid_[b], b);
      }
    }
    cache_index_.set_min_bucket(index_min_bucket);
  }
  return Status::Ok();
}

}  // namespace flashsim
