// Abstract logical-page interface every FTL variant implements.
//
// Devices (src/device) talk to an FtlInterface; PageMapFtl and HybridFtl are
// the two implementations. All I/O is in units of one logical page (the NAND
// page size); devices split larger requests.

#ifndef SRC_FTL_FTL_INTERFACE_H_
#define SRC_FTL_FTL_INTERFACE_H_

#include <cstddef>
#include <cstdint>

#include "src/ftl/health.h"
#include "src/simcore/fault_plan.h"
#include "src/simcore/recovery.h"
#include "src/simcore/sim_time.h"
#include "src/simcore/snapshot.h"
#include "src/simcore/status.h"
#include "src/simcore/victim_index.h"

namespace flashsim {

// Aggregate FTL statistics, primarily for write-amplification analysis.
struct FtlStats {
  uint64_t host_pages_written = 0;
  uint64_t nand_pages_written = 0;   // host + GC + wear-leveling + migration
  uint64_t gc_pages_migrated = 0;
  uint64_t erases = 0;
  uint64_t host_pages_read = 0;
  uint32_t free_blocks = 0;
  uint64_t valid_pages = 0;

  // GC victim-selection observability. Candidates are blocks scanned
  // (linear) or index buckets probed (indexed) while locating victims, so
  // candidates/picks is the per-pick cost in either mode; the sequence hash
  // folds every pick (FNV-1a) so two runs can be compared for identical
  // victim choices without recording the sequences.
  uint64_t gc_victim_picks = 0;
  uint64_t gc_victim_candidates = 0;
  uint64_t victim_index_rebuilds = 0;
  uint64_t victim_seq_hash = kVictimHashInit;
  // Hybrid cache eviction picks (zero on single-pool devices).
  uint64_t cache_evict_picks = 0;
  uint64_t cache_evict_candidates = 0;
  uint64_t cache_victim_seq_hash = kVictimHashInit;

  // nand writes / host writes; 1.0 when no host writes yet.
  double WriteAmplification() const {
    return host_pages_written == 0
               ? 1.0
               : static_cast<double>(nand_pages_written) /
                     static_cast<double>(host_pages_written);
  }
};

class FtlInterface {
 public:
  virtual ~FtlInterface() = default;

  // Writes one logical page. Returns total NAND/array time consumed,
  // including any GC work triggered by this write.
  virtual Result<SimDuration> WritePage(uint64_t lpn) = 0;

  // Bulk write of `count` logical pages in submission order (LPNs may be
  // scattered and may repeat). Simulation-equivalent to calling WritePage
  // once per LPN in order: identical wear, health, stats, and array time for
  // the same seed — implementations amortize dispatch, map updates, GC
  // checks, and failure-randomness draws across the batch, they do not
  // change what is simulated.
  //
  // `per_page_times` must have room for `count` entries; entry i receives
  // the array time attributable to page i (allocation/GC time is charged to
  // the page that triggered it, exactly as on the per-page path). On error,
  // `*pages_done` reports how many leading pages committed; their times are
  // valid and the remaining pages are untouched.
  virtual Status WriteBatch(const uint64_t* lpns, size_t count,
                            SimDuration* per_page_times, size_t* pages_done) {
    *pages_done = 0;
    for (size_t i = 0; i < count; ++i) {
      Result<SimDuration> one = WritePage(lpns[i]);
      if (!one.ok()) {
        return one.status();
      }
      per_page_times[i] = one.value();
      ++*pages_done;
    }
    return Status::Ok();
  }

  // Bulk write of `count` consecutive logical pages starting at `lpn`.
  // Returns the total array time; same equivalence guarantee as WriteBatch.
  virtual Result<SimDuration> WritePages(uint64_t lpn, uint64_t count) {
    SimDuration total;
    for (uint64_t i = 0; i < count; ++i) {
      Result<SimDuration> one = WritePage(lpn + i);
      if (!one.ok()) {
        return one.status();
      }
      total += one.value();
    }
    return total;
  }

  // Reads one logical page. Reading a never-written page is an error.
  virtual Result<SimDuration> ReadPage(uint64_t lpn) = 0;

  // Discards a logical page (TRIM), freeing its physical page for GC.
  virtual Status TrimPage(uint64_t lpn) = 0;

  // Logical address space, in pages.
  virtual uint64_t LogicalPageCount() const = 0;
  virtual uint32_t PageSizeBytes() const = 0;

  // JEDEC-style health registers.
  virtual HealthReport Health() const = 0;

  virtual FtlStats Stats() const = 0;

  // True once the device has exhausted its spare pool and refuses writes.
  virtual bool IsReadOnly() const = 0;

  // Fraction of the logical space currently holding valid data.
  virtual double Utilization() const = 0;

  // Mount-time recovery after (possibly unclean) power loss: rebuilds every
  // piece of RAM state purely from NAND OOB metadata (tags + write sequence
  // numbers), discarding torn pages, re-erasing blocks torn by an
  // interrupted erase, and finishing with an internal invariant check.
  // Power must be restored (PowerRail::Restore) before mounting. Also valid
  // on a cleanly running device, where it is a no-op state rebuild.
  virtual Result<RecoveryReport> Mount() { return RecoveryReport{}; }

  // Routes every destructive NAND operation of the underlying chip(s)
  // through `rail` for power-loss fault injection; nullptr detaches.
  virtual void AttachPowerRail(PowerRail* rail) { (void)rail; }

  // Sampled internal-consistency check; overridden by FTLs that support it.
  // `lpn_stride` bounds the map walk by sampling every N-th LPN.
  virtual Status ValidateInvariants(uint64_t lpn_stride = 1) const {
    (void)lpn_stride;
    return Status::Ok();
  }

  // Device snapshot (DESIGN.md §12): serializes the complete simulated state
  // — NAND metadata planes, per-block wear, RNG stream position, mapping
  // tables, free pools, statistics — so a worn device can be persisted and
  // later restored into a freshly constructed FTL with identical geometry
  // and config. A restored device continues bit-exactly with the device it
  // was saved from: same victim sequences, wear tables, health registers,
  // and report bytes. Must be called between operations (quiescent state).
  virtual void SaveState(SnapshotWriter& w) const = 0;
  virtual Status LoadState(SnapshotReader& r) = 0;
};

// Shared FtlStats (de)serialization for the FTL implementations.
inline void SaveFtlStats(SnapshotWriter& w, const FtlStats& s) {
  w.U64(s.host_pages_written);
  w.U64(s.nand_pages_written);
  w.U64(s.gc_pages_migrated);
  w.U64(s.erases);
  w.U64(s.host_pages_read);
  w.U32(s.free_blocks);
  w.U64(s.valid_pages);
  w.U64(s.gc_victim_picks);
  w.U64(s.gc_victim_candidates);
  w.U64(s.victim_index_rebuilds);
  w.U64(s.victim_seq_hash);
  w.U64(s.cache_evict_picks);
  w.U64(s.cache_evict_candidates);
  w.U64(s.cache_victim_seq_hash);
}
inline void LoadFtlStats(SnapshotReader& r, FtlStats* s) {
  s->host_pages_written = r.U64();
  s->nand_pages_written = r.U64();
  s->gc_pages_migrated = r.U64();
  s->erases = r.U64();
  s->host_pages_read = r.U64();
  s->free_blocks = r.U32();
  s->valid_pages = r.U64();
  s->gc_victim_picks = r.U64();
  s->gc_victim_candidates = r.U64();
  s->victim_index_rebuilds = r.U64();
  s->victim_seq_hash = r.U64();
  s->cache_evict_picks = r.U64();
  s->cache_evict_candidates = r.U64();
  s->cache_victim_seq_hash = r.U64();
}

}  // namespace flashsim

#endif  // SRC_FTL_FTL_INTERFACE_H_
