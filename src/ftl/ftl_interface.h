// Abstract logical-page interface every FTL variant implements.
//
// Devices (src/device) talk to an FtlInterface; PageMapFtl and HybridFtl are
// the two implementations. All I/O is in units of one logical page (the NAND
// page size); devices split larger requests.

#ifndef SRC_FTL_FTL_INTERFACE_H_
#define SRC_FTL_FTL_INTERFACE_H_

#include <cstdint>

#include "src/ftl/health.h"
#include "src/simcore/sim_time.h"
#include "src/simcore/status.h"

namespace flashsim {

// Aggregate FTL statistics, primarily for write-amplification analysis.
struct FtlStats {
  uint64_t host_pages_written = 0;
  uint64_t nand_pages_written = 0;   // host + GC + wear-leveling + migration
  uint64_t gc_pages_migrated = 0;
  uint64_t erases = 0;
  uint64_t host_pages_read = 0;
  uint32_t free_blocks = 0;
  uint64_t valid_pages = 0;

  // nand writes / host writes; 1.0 when no host writes yet.
  double WriteAmplification() const {
    return host_pages_written == 0
               ? 1.0
               : static_cast<double>(nand_pages_written) /
                     static_cast<double>(host_pages_written);
  }
};

class FtlInterface {
 public:
  virtual ~FtlInterface() = default;

  // Writes one logical page. Returns total NAND/array time consumed,
  // including any GC work triggered by this write.
  virtual Result<SimDuration> WritePage(uint64_t lpn) = 0;

  // Reads one logical page. Reading a never-written page is an error.
  virtual Result<SimDuration> ReadPage(uint64_t lpn) = 0;

  // Discards a logical page (TRIM), freeing its physical page for GC.
  virtual Status TrimPage(uint64_t lpn) = 0;

  // Logical address space, in pages.
  virtual uint64_t LogicalPageCount() const = 0;
  virtual uint32_t PageSizeBytes() const = 0;

  // JEDEC-style health registers.
  virtual HealthReport Health() const = 0;

  virtual FtlStats Stats() const = 0;

  // True once the device has exhausted its spare pool and refuses writes.
  virtual bool IsReadOnly() const = 0;

  // Fraction of the logical space currently holding valid data.
  virtual double Utilization() const = 0;
};

}  // namespace flashsim

#endif  // SRC_FTL_FTL_INTERFACE_H_
