// FTL configuration knobs.

#ifndef SRC_FTL_CONFIG_H_
#define SRC_FTL_CONFIG_H_

#include <cstdint>

#include "src/simcore/status.h"
#include "src/simcore/victim_index.h"

namespace flashsim {

// Garbage-collection victim selection policy.
enum class GcPolicy {
  kGreedy,       // fewest valid pages
  kCostBenefit,  // (1 - u) / (1 + u) weighted by block age
};

// Hybrid cache eviction victim policy.
enum class CacheEvictPolicy {
  kFifo,      // oldest closed cache block (historical default)
  kMinValid,  // fewest live cache pages, lowest block id on ties
};

struct FtlConfig {
  // Fraction of physical capacity withheld from the logical space for GC
  // headroom. Consumer eMMC is typically ~7%.
  double over_provisioning = 0.07;

  // Blocks reserved for bad-block replacement. When the bad-block count
  // exceeds this pool the device transitions to read-only ("bricked").
  uint32_t spare_blocks = 16;

  // GC starts when the free pool drops to this many blocks and runs until the
  // pool is back above it. Must be >= 2 (one host-active, one GC-active).
  uint32_t gc_free_block_watermark = 4;

  GcPolicy gc_policy = GcPolicy::kGreedy;

  // How GC and wear-leveling victims are located. kIndexed maintains bucket
  // indexes incrementally and picks in O(1); kLinearScan is the bit-exact
  // O(total-blocks) reference (same victims, same tie-breaking — see
  // DESIGN.md "Victim-selection indexes").
  VictimSelect victim_select = VictimSelect::kIndexed;

  // Static wear leveling: when (max - min) P/E exceeds this threshold the FTL
  // migrates the coldest block's data so the cold block rejoins the hot pool.
  // 0 disables static wear leveling.
  uint32_t wear_level_threshold = 32;
  // Check the wear-leveling condition every N erases.
  uint32_t wear_level_check_interval = 64;

  // Rated endurance used by the firmware's *health estimate*. Vendors keep a
  // margin below the physical rating (this gap is exactly the "back of the
  // envelope is ~3x optimistic" effect the paper measures), so this is
  // typically ~half of NandChipConfig::rated_pe_cycles.
  uint32_t health_rated_pe = 1500;

  Status Validate() const;
};

// Hybrid (two-flash-type) front end, as in the paper's eMMC 16 GB chip: a
// small, high-endurance "Type A" region caches writes in front of the main
// "Type B" pool; under high utilization the firmware merges the pools.
struct HybridConfig {
  // Type A geometry is a fraction of sizing below; endurance per its chip cfg.
  uint32_t cache_blocks = 64;

  // Evict cache blocks when fewer than this many are free.
  uint32_t cache_free_watermark = 2;

  // Pool-merge heuristic: Type A blocks are drafted as GC staging when the
  // device is both highly utilized AND fragmented — i.e. utilization exceeds
  // this fraction and recent GC traffic exceeds gc_pressure_ratio of host
  // traffic. (The paper infers exactly this dual trigger from Table 1: at
  // 90% utilization with writes aimed at *free* space Type A stays slow; only
  // rewrites of the utilized space collapse it.)
  double merge_utilization_threshold = 0.85;
  double gc_pressure_ratio = 1.0;
  // Host-pages window over which GC pressure is evaluated.
  uint32_t pressure_window_pages = 2048;

  // Wear multiplier applied to drafted Type A blocks (cycled in MLC mode,
  // which stresses the cells far beyond their SLC-mode rating).
  uint32_t mlc_mode_wear_weight = 20;

  // Which closed cache block an eviction migrates. kMinValid moves the least
  // live data per eviction; kFifo preserves the original age order.
  CacheEvictPolicy cache_evict_policy = CacheEvictPolicy::kFifo;
  // Victim-location strategy for kMinValid (kFifo is O(1) by nature).
  VictimSelect victim_select = VictimSelect::kIndexed;

  // Health rating for the Type A region (SLC-mode cycles).
  uint32_t health_rated_pe_a = 120000;

  Status Validate() const;
};

}  // namespace flashsim

#endif  // SRC_FTL_CONFIG_H_
