#include "src/ftl/block_map_ftl.h"

#include <algorithm>
#include <cassert>

namespace flashsim {

namespace {
// OOB tag for filler pages programmed to satisfy the in-order rule when a
// merge has to skip never-written offsets.
constexpr uint64_t kPadTag = 0xfffffffffffffffeull;
constexpr int kMaxMergeRetries = 3;
}  // namespace

Status BlockMapFtlConfig::Validate() const {
  if (log_blocks == 0) {
    return InvalidArgumentError("log_blocks must be nonzero");
  }
  if (health_rated_pe == 0) {
    return InvalidArgumentError("health_rated_pe must be nonzero");
  }
  return Status::Ok();
}

BlockMapFtl::BlockMapFtl(NandChipConfig nand_config, BlockMapFtlConfig config,
                         uint64_t seed)
    : nand_config_(nand_config), config_(config), chip_(nand_config, seed) {
  assert(config_.Validate().ok());
  const uint32_t total = nand_config_.total_blocks();
  const uint32_t reserved = config_.spare_blocks + config_.log_blocks + 2;
  assert(total > reserved);
  logical_blocks_ = total - reserved;
  data_blocks_.assign(logical_blocks_, kInvalidBlockId);
  written_.assign(LogicalPageCount(), false);
  for (BlockId b = 0; b < total; ++b) {
    free_blocks_.insert({0, b});
  }
}

uint64_t BlockMapFtl::LogicalPageCount() const {
  return logical_blocks_ * nand_config_.pages_per_block;
}

double BlockMapFtl::Utilization() const {
  const uint64_t logical = LogicalPageCount();
  return logical == 0 ? 0.0
                      : static_cast<double>(valid_pages_) / static_cast<double>(logical);
}

void BlockMapFtl::RetireBlock(BlockId block) {
  (void)block;  // already marked bad at the chip level; tracked via spares
  ++spares_used_;
  if (spares_used_ > config_.spare_blocks) {
    read_only_ = true;
  }
}

Result<BlockId> BlockMapFtl::AllocateBlock(SimDuration& time_acc) {
  (void)time_acc;
  while (!free_blocks_.empty()) {
    const auto it = free_blocks_.begin();
    const BlockId id = it->second;
    free_blocks_.erase(it);
    if (chip_.block(id).is_bad()) {
      continue;
    }
    return id;
  }
  read_only_ = true;
  return ResourceExhaustedError("block-map FTL out of free blocks");
}

void BlockMapFtl::ReleaseBlock(BlockId block, SimDuration& time_acc) {
  if (block == kInvalidBlockId || chip_.block(block).is_bad()) {
    return;
  }
  if (chip_.block(block).IsErased()) {
    free_blocks_.insert({chip_.block(block).pe_cycles(), block});
    return;
  }
  ++stats_.erases;
  Result<SimDuration> erase = chip_.EraseBlock(block);
  if (!erase.ok()) {
    if (erase.status().code() == StatusCode::kPowerLoss) {
      return;  // block is torn, not bad; Mount re-erases it
    }
    RetireBlock(block);
    return;
  }
  time_acc += erase.value();
  free_blocks_.insert({chip_.block(block).pe_cycles(), block});
}

Status BlockMapFtl::Merge(uint64_t logical_block, SimDuration& time_acc) {
  auto log_it = logs_.find(logical_block);
  LogBlock* log = log_it == logs_.end() ? nullptr : &log_it->second;
  const BlockId old_data = data_blocks_[logical_block];
  const uint32_t ppb = nand_config_.pages_per_block;

  // Switch merge: an in-order, full log block simply becomes the data block.
  if (log != nullptr && log->strictly_sequential && log->newest.size() == ppb) {
    data_blocks_[logical_block] = log->phys;
    logs_.erase(log_it);
    ReleaseBlock(old_data, time_acc);
    ++switch_merges_;
    return Status::Ok();
  }

  // Full merge: copy the newest copy of every live page into a fresh block.
  for (int attempt = 0; attempt < kMaxMergeRetries; ++attempt) {
    Result<BlockId> dest = AllocateBlock(time_acc);
    if (!dest.ok()) {
      return dest.status();
    }
    // Find the highest live offset so trailing unwritten pages are skipped.
    const uint64_t first_lpn = logical_block * ppb;
    uint32_t last_live = 0;
    bool any_live = false;
    for (uint32_t off = 0; off < ppb; ++off) {
      const bool in_log = log != nullptr && log->newest.count(off) != 0;
      const bool in_data =
          old_data != kInvalidBlockId && chip_.block(old_data).IsProgrammed(off);
      if ((in_log || in_data) && written_[first_lpn + off]) {
        last_live = off;
        any_live = true;
      }
    }
    bool failed = false;
    for (uint32_t off = 0; any_live && off <= last_live; ++off) {
      const bool live = written_[first_lpn + off];
      uint64_t tag = kPadTag;
      if (live) {
        // Prefer the log copy (newest), fall back to the data block.
        PhysPageAddr src = kInvalidPageAddr;
        if (log != nullptr) {
          auto n = log->newest.find(off);
          if (n != log->newest.end()) {
            src = PhysPageAddr{log->phys, n->second};
          }
        }
        if (!src.IsValid() && old_data != kInvalidBlockId &&
            chip_.block(old_data).IsProgrammed(off)) {
          src = PhysPageAddr{old_data, off};
        }
        if (src.IsValid()) {
          Result<NandReadOutcome> read = chip_.ReadPage(src);
          if (read.ok()) {
            time_acc += read.value().latency;
          }
          // Uncorrectable reads lose data but the merge must still proceed.
          tag = first_lpn + off;
          ++stats_.gc_pages_migrated;
        }
      }
      Result<SimDuration> prog =
          chip_.ProgramPage({dest.value(), chip_.block(dest.value()).write_pointer()},
                            tag);
      if (!prog.ok()) {
        if (prog.status().code() == StatusCode::kPowerLoss) {
          return prog.status();  // half-written dest is resolved at mount
        }
        RetireBlock(dest.value());
        failed = true;
        break;
      }
      time_acc += prog.value();
      ++stats_.nand_pages_written;
    }
    if (failed) {
      if (read_only_) {
        return UnavailableError("device worn out during merge");
      }
      continue;  // retry with a fresh destination
    }
    data_blocks_[logical_block] = any_live ? dest.value() : kInvalidBlockId;
    if (!any_live) {
      ReleaseBlock(dest.value(), time_acc);
    }
    if (log != nullptr) {
      const BlockId log_phys = log->phys;
      logs_.erase(log_it);
      ReleaseBlock(log_phys, time_acc);
    }
    ReleaseBlock(old_data, time_acc);
    ++full_merges_;
    return Status::Ok();
  }
  read_only_ = true;  // repeated failures: treat the device as dead
  return UnavailableError("repeated merge failures; device at end of life");
}

Result<BlockMapFtl::LogBlock*> BlockMapFtl::GetLogBlock(uint64_t logical_block,
                                                        SimDuration& time_acc) {
  auto it = logs_.find(logical_block);
  if (it != logs_.end()) {
    return &it->second;
  }
  if (logs_.size() >= config_.log_blocks) {
    // Evict the least-recently-used log via a merge.
    uint64_t victim = 0;
    uint64_t oldest = UINT64_MAX;
    for (const auto& [lb, log] : logs_) {
      if (log.last_use_seq < oldest) {
        oldest = log.last_use_seq;
        victim = lb;
      }
    }
    FLASHSIM_RETURN_IF_ERROR(Merge(victim, time_acc));
    if (read_only_) {
      return UnavailableError("device worn out");
    }
  }
  Result<BlockId> phys = AllocateBlock(time_acc);
  if (!phys.ok()) {
    return phys.status();
  }
  LogBlock log;
  log.phys = phys.value();
  auto [inserted, ok] = logs_.emplace(logical_block, std::move(log));
  return &inserted->second;
}

Result<SimDuration> BlockMapFtl::WritePage(uint64_t lpn) {
  if (read_only_) {
    return UnavailableError("device is read-only (worn out)");
  }
  if (lpn >= LogicalPageCount()) {
    return OutOfRangeError("LPN beyond logical capacity");
  }
  const uint32_t ppb = nand_config_.pages_per_block;
  const uint64_t logical_block = lpn / ppb;
  const uint32_t offset = static_cast<uint32_t>(lpn % ppb);
  SimDuration time_acc;

  for (int attempt = 0; attempt < kMaxMergeRetries; ++attempt) {
    Result<LogBlock*> log_result = GetLogBlock(logical_block, time_acc);
    if (!log_result.ok()) {
      return log_result.status();
    }
    LogBlock* log = log_result.value();
    const uint32_t wp = chip_.block(log->phys).write_pointer();
    Result<SimDuration> prog = chip_.ProgramPage({log->phys, wp}, lpn);
    if (!prog.ok()) {
      if (prog.status().code() == StatusCode::kPowerLoss) {
        return prog.status();  // page is torn, block healthy; do not retire
      }
      // Log block went bad: its content merges out via the data block copies
      // it still holds are lost; retire and retry on a fresh log.
      RetireBlock(log->phys);
      logs_.erase(logical_block);
      if (read_only_) {
        return UnavailableError("device worn out (spares exhausted)");
      }
      continue;
    }
    time_acc += prog.value();
    ++stats_.nand_pages_written;
    ++stats_.host_pages_written;
    log->newest[offset] = wp;
    if (log->strictly_sequential && offset == log->next_expected_offset) {
      ++log->next_expected_offset;
    } else {
      log->strictly_sequential = false;
    }
    log->last_use_seq = ++use_seq_;
    if (!written_[lpn]) {
      written_[lpn] = true;
      ++valid_pages_;
    }
    if (chip_.block(log->phys).IsFull()) {
      FLASHSIM_RETURN_IF_ERROR(Merge(logical_block, time_acc));
      if (read_only_) {
        return UnavailableError("device worn out during merge");
      }
    }
    return time_acc;
  }
  read_only_ = true;  // repeated failures: treat the device as dead
  return UnavailableError("repeated log-block failures");
}

Result<SimDuration> BlockMapFtl::ReadPage(uint64_t lpn) {
  if (lpn >= LogicalPageCount()) {
    return OutOfRangeError("LPN beyond logical capacity");
  }
  if (!written_[lpn]) {
    return NotFoundError("read of unwritten LPN");
  }
  const uint32_t ppb = nand_config_.pages_per_block;
  const uint64_t logical_block = lpn / ppb;
  const uint32_t offset = static_cast<uint32_t>(lpn % ppb);
  PhysPageAddr src = kInvalidPageAddr;
  auto it = logs_.find(logical_block);
  if (it != logs_.end()) {
    auto n = it->second.newest.find(offset);
    if (n != it->second.newest.end()) {
      src = PhysPageAddr{it->second.phys, n->second};
    }
  }
  if (!src.IsValid()) {
    const BlockId data = data_blocks_[logical_block];
    if (data == kInvalidBlockId || !chip_.block(data).IsProgrammed(offset)) {
      return NotFoundError("mapping hole (data lost in log failure)");
    }
    src = PhysPageAddr{data, offset};
  }
  Result<NandReadOutcome> read = chip_.ReadPage(src);
  if (!read.ok()) {
    return read.status();
  }
  ++stats_.host_pages_read;
  return read.value().latency;
}

Status BlockMapFtl::TrimPage(uint64_t lpn) {
  if (lpn >= LogicalPageCount()) {
    return OutOfRangeError("LPN beyond logical capacity");
  }
  if (written_[lpn]) {
    written_[lpn] = false;
    --valid_pages_;
  }
  return Status::Ok();
}

Result<RecoveryReport> BlockMapFtl::Mount() {
  RecoveryReport rep;
  const uint32_t total = nand_config_.total_blocks();
  const uint32_t ppb = nand_config_.pages_per_block;

  // Phase 0: finish erases interrupted by the cut (no P/E was charged).
  for (BlockId b = 0; b < total; ++b) {
    if (chip_.block(b).is_bad() || !chip_.block(b).erase_torn()) {
      continue;
    }
    ++rep.torn_erase_blocks;
    ++stats_.erases;
    Result<SimDuration> erase = chip_.EraseBlock(b);
    if (!erase.ok()) {
      if (erase.status().code() == StatusCode::kPowerLoss) {
        return erase.status();
      }
      ++rep.blocks_retired;  // erase-verify failed; chip marked it bad
    }
  }

  // Phase 1: classify every physical block by the logical block its OOB tags
  // name (a block only ever holds one logical block's pages plus pads).
  logs_.clear();
  use_seq_ = 0;
  data_blocks_.assign(logical_blocks_, kInvalidBlockId);
  std::fill(written_.begin(), written_.end(), false);
  valid_pages_ = 0;
  free_blocks_.clear();

  struct Candidate {
    BlockId phys = kInvalidBlockId;
    bool in_position = true;
  };
  std::map<uint64_t, std::vector<Candidate>> candidates;
  std::vector<BlockId> garbage;  // only pads/torn pages: nothing to keep
  for (BlockId b = 0; b < total; ++b) {
    const NandBlock& blk = chip_.block(b);
    if (blk.is_bad()) {
      continue;
    }
    if (blk.IsErased()) {
      free_blocks_.insert({blk.pe_cycles(), b});
      continue;
    }
    Candidate cand;
    cand.phys = b;
    uint64_t owner = UINT64_MAX;
    // Batch OOB: tags straight from the flat metadata plane; a page below
    // the write pointer is programmed unless its torn bit is set.
    const NandChip::OobRunView oob = chip_.ReadTagsRun(b);
    const bool has_torn = chip_.BlockHasTornPages(b);
    for (uint32_t p = 0; p < blk.write_pointer(); ++p) {
      ++rep.scanned_pages;
      if (has_torn && blk.TornAt(p)) {
        ++rep.torn_pages_discarded;
        continue;  // reads as a hole; older candidates still hold the data
      }
      const uint64_t tag = oob.tags[p];
      if (tag == kPadTag) {
        continue;
      }
      if (tag >= LogicalPageCount()) {
        ++rep.stale_pages_ignored;
        continue;
      }
      owner = tag / ppb;
      if (tag % ppb != p) {
        cand.in_position = false;
      }
    }
    if (owner == UINT64_MAX) {
      garbage.push_back(b);
      continue;
    }
    candidates[owner].push_back(cand);
  }
  for (BlockId b : garbage) {
    ++stats_.erases;
    Result<SimDuration> erase = chip_.EraseBlock(b);
    if (!erase.ok()) {
      if (erase.status().code() == StatusCode::kPowerLoss) {
        return erase.status();
      }
      ++rep.blocks_retired;
    } else {
      free_blocks_.insert({chip_.block(b).pe_cycles(), b});
    }
  }

  // Phase 2: adopt unambiguous data blocks in place; anything else (old data
  // + log, or a half-written merge destination) goes through a power-on
  // merge keyed by OOB write sequence.
  SimDuration mount_time;
  for (auto& [logical_block, cands] : candidates) {
    const uint64_t first_lpn = logical_block * ppb;
    if (cands.size() == 1 && cands[0].in_position) {
      const BlockId b = cands[0].phys;
      data_blocks_[logical_block] = b;
      const NandBlock& blk = chip_.block(b);
      const NandChip::OobRunView oob = chip_.ReadTagsRun(b);
      const bool has_torn = chip_.BlockHasTornPages(b);
      for (uint32_t p = 0; p < blk.write_pointer(); ++p) {
        if ((has_torn && blk.TornAt(p)) || oob.tags[p] == kPadTag) {
          continue;
        }
        written_[first_lpn + p] = true;
        ++valid_pages_;
        ++rep.mapped_pages_recovered;
      }
      continue;
    }
    // Newest copy of every offset across all candidates, by write sequence.
    std::map<uint32_t, std::pair<uint64_t, PhysPageAddr>> newest;  // off -> (seq, src)
    for (const Candidate& cand : cands) {
      const NandBlock& blk = chip_.block(cand.phys);
      const NandChip::OobRunView oob = chip_.ReadTagsRun(cand.phys);
      const bool has_torn = chip_.BlockHasTornPages(cand.phys);
      for (uint32_t p = 0; p < blk.write_pointer(); ++p) {
        if (has_torn && blk.TornAt(p)) {
          continue;
        }
        const uint64_t tag = oob.tags[p];
        if (tag == kPadTag || tag >= LogicalPageCount()) {
          continue;
        }
        const uint32_t off = static_cast<uint32_t>(tag % ppb);
        auto [it, inserted] =
            newest.emplace(off, std::make_pair(oob.seqs[p],
                                               PhysPageAddr{cand.phys, p}));
        if (!inserted) {
          if (oob.seqs[p] > it->second.first) {
            it->second = {oob.seqs[p], PhysPageAddr{cand.phys, p}};
            ++rep.stale_pages_ignored;
          } else {
            ++rep.stale_pages_ignored;
          }
        }
      }
    }
    const uint32_t last_live = newest.empty() ? 0 : newest.rbegin()->first;
    bool merged = false;
    for (int attempt = 0; attempt < kMaxMergeRetries && !merged; ++attempt) {
      Result<BlockId> dest = AllocateBlock(mount_time);
      if (!dest.ok()) {
        return dest.status();
      }
      bool failed = false;
      for (uint32_t off = 0; off <= last_live; ++off) {
        const uint64_t tag =
            newest.count(off) != 0 ? first_lpn + off : kPadTag;
        Result<SimDuration> prog = chip_.ProgramPage(
            {dest.value(), chip_.block(dest.value()).write_pointer()}, tag);
        if (!prog.ok()) {
          if (prog.status().code() == StatusCode::kPowerLoss) {
            return prog.status();
          }
          failed = true;  // chip marked the destination bad; retry fresh
          break;
        }
        ++stats_.nand_pages_written;
      }
      if (failed) {
        continue;
      }
      data_blocks_[logical_block] = dest.value();
      merged = true;
    }
    if (!merged) {
      read_only_ = true;
      return UnavailableError("repeated merge failures during mount");
    }
    for (const auto& [off, src] : newest) {
      (void)src;
      written_[first_lpn + off] = true;
      ++valid_pages_;
      ++rep.mapped_pages_recovered;
    }
    ++rep.merges_replayed;
    for (const Candidate& cand : cands) {
      ++stats_.erases;
      Result<SimDuration> erase = chip_.EraseBlock(cand.phys);
      if (!erase.ok()) {
        if (erase.status().code() == StatusCode::kPowerLoss) {
          return erase.status();
        }
        ++rep.blocks_retired;
        continue;
      }
      free_blocks_.insert({chip_.block(cand.phys).pe_cycles(), cand.phys});
    }
  }

  // Phase 3: wear accounting. Every retirement path marks the chip block
  // bad first, so the bad-block count IS the spare consumption.
  spares_used_ = 0;
  for (BlockId b = 0; b < total; ++b) {
    if (chip_.block(b).is_bad()) {
      ++spares_used_;
    }
  }
  read_only_ = spares_used_ > config_.spare_blocks;

  FLASHSIM_RETURN_IF_ERROR(ValidateInvariants());
  return rep;
}

Status BlockMapFtl::ValidateInvariants(uint64_t lpn_stride) const {
  (void)lpn_stride;  // the walks here are O(blocks + log entries) already
  const uint32_t ppb = nand_config_.pages_per_block;
  std::vector<uint8_t> refs(nand_config_.total_blocks(), 0);
  for (uint64_t lb = 0; lb < logical_blocks_; ++lb) {
    const BlockId b = data_blocks_[lb];
    if (b == kInvalidBlockId) {
      continue;
    }
    if (b >= refs.size()) {
      return InternalError("data block id out of range");
    }
    if (refs[b]++ != 0) {
      return InternalError("physical block referenced twice");
    }
    const NandBlock& blk = chip_.block(b);
    for (uint32_t p = 0; p < blk.write_pointer(); ++p) {
      if (blk.IsTorn(p)) {
        continue;
      }
      Result<uint64_t> tag = blk.ReadTag(p);
      if (!tag.ok()) {
        return InternalError("unreadable tag in data block");
      }
      if (tag.value() != kPadTag && tag.value() != lb * ppb + p) {
        return InternalError("data block page out of position");
      }
    }
  }
  for (const auto& [lb, log] : logs_) {
    if (log.phys == kInvalidBlockId || log.phys >= refs.size()) {
      return InternalError("log block id invalid");
    }
    if (refs[log.phys]++ != 0) {
      return InternalError("physical block referenced twice");
    }
    const NandBlock& blk = chip_.block(log.phys);
    for (const auto& [off, page] : log.newest) {
      if (page >= blk.write_pointer()) {
        return InternalError("log newest entry beyond write pointer");
      }
      Result<uint64_t> tag = blk.ReadTag(page);
      if (!tag.ok() || tag.value() != lb * ppb + off) {
        return InternalError("log newest entry tag mismatch");
      }
    }
  }
  for (const auto& [pe, b] : free_blocks_) {
    if (b >= refs.size()) {
      return InternalError("free block id out of range");
    }
    if (refs[b]++ != 0) {
      return InternalError("free block also referenced by a mapping");
    }
    if (!chip_.block(b).IsErased()) {
      return InternalError("free block is not erased");
    }
    if (chip_.block(b).pe_cycles() != pe) {
      return InternalError("free pool wear key is stale");
    }
  }
  uint64_t count = 0;
  for (const bool w : written_) {
    count += w ? 1 : 0;
  }
  if (count != valid_pages_) {
    return InternalError("valid-page count mismatch");
  }
  return Status::Ok();
}

HealthReport BlockMapFtl::Health() const {
  HealthReport report;
  const WearSummary wear = chip_.ComputeWearSummary();
  report.avg_pe_a = wear.avg_pe;
  report.rated_pe_a = config_.health_rated_pe;
  report.life_time_est_a = LifeFractionToLevel(
      wear.avg_pe / static_cast<double>(config_.health_rated_pe));
  report.life_time_est_b = 0;
  report.spare_blocks_total = config_.spare_blocks;
  report.spare_blocks_used = spares_used_;
  report.pre_eol = ComputePreEol(spares_used_, config_.spare_blocks);
  return report;
}

FtlStats BlockMapFtl::Stats() const {
  FtlStats s = stats_;
  s.free_blocks = static_cast<uint32_t>(free_blocks_.size());
  s.valid_pages = valid_pages_;
  return s;
}

void BlockMapFtl::SaveState(SnapshotWriter& w) const {
  w.BeginSection(SnapshotTag("BFTL"));
  chip_.SaveState(w);
  w.U64(logical_blocks_);  // fingerprint, validated on load
  w.VecU32(data_blocks_);
  std::vector<uint8_t> written(written_.size());
  for (size_t i = 0; i < written_.size(); ++i) {
    written[i] = written_[i] ? 1 : 0;
  }
  w.VecU8(written);
  w.U64(logs_.size());
  for (const auto& [logical_block, log] : logs_) {
    w.U64(logical_block);
    w.U32(log.phys);
    w.U64(log.newest.size());
    for (const auto& [offset, log_page] : log.newest) {
      w.U32(offset);
      w.U32(log_page);
    }
    w.Bool(log.strictly_sequential);
    w.U32(log.next_expected_offset);
    w.U64(log.last_use_seq);
  }
  w.U64(free_blocks_.size());
  for (const auto& [pe, block] : free_blocks_) {
    w.U32(pe);
    w.U32(block);
  }
  w.U64(use_seq_);
  w.U32(spares_used_);
  w.Bool(read_only_);
  w.U64(full_merges_);
  w.U64(switch_merges_);
  w.U64(valid_pages_);
  SaveFtlStats(w, stats_);
  w.EndSection();
}

Status BlockMapFtl::LoadState(SnapshotReader& r) {
  FLASHSIM_RETURN_IF_ERROR(r.EnterSection(SnapshotTag("BFTL")));
  FLASHSIM_RETURN_IF_ERROR(chip_.LoadState(r));
  if (r.U64() != logical_blocks_) {
    return FailedPreconditionError(
        "snapshot FTL logical size does not match the constructed device");
  }
  std::vector<uint32_t> data_blocks;
  std::vector<uint8_t> written;
  r.VecU32(&data_blocks);
  r.VecU8(&written);
  std::map<uint64_t, LogBlock> logs;
  const uint64_t log_count = r.U64();
  for (uint64_t i = 0; i < log_count && r.ok(); ++i) {
    const uint64_t logical_block = r.U64();
    LogBlock log;
    log.phys = r.U32();
    const uint64_t newest_count = r.U64();
    for (uint64_t k = 0; k < newest_count && r.ok(); ++k) {
      const uint32_t offset = r.U32();
      const uint32_t log_page = r.U32();
      log.newest.emplace(offset, log_page);
    }
    log.strictly_sequential = r.Bool();
    log.next_expected_offset = r.U32();
    log.last_use_seq = r.U64();
    logs.emplace(logical_block, std::move(log));
  }
  std::set<std::pair<uint32_t, BlockId>> free_blocks;
  const uint64_t free_count = r.U64();
  for (uint64_t i = 0; i < free_count && r.ok(); ++i) {
    const uint32_t pe = r.U32();
    const BlockId block = r.U32();
    free_blocks.emplace(pe, block);
  }
  const uint64_t use_seq = r.U64();
  const uint32_t spares_used = r.U32();
  const bool read_only = r.Bool();
  const uint64_t full_merges = r.U64();
  const uint64_t switch_merges = r.U64();
  const uint64_t valid_pages = r.U64();
  FtlStats stats;
  LoadFtlStats(r, &stats);
  r.LeaveSection();
  FLASHSIM_RETURN_IF_ERROR(r.status());
  if (data_blocks.size() != data_blocks_.size() ||
      written.size() != written_.size()) {
    return DataLossError("snapshot FTL state has inconsistent sizes");
  }
  data_blocks_ = std::move(data_blocks);
  for (size_t i = 0; i < written.size(); ++i) {
    written_[i] = written[i] != 0;
  }
  logs_ = std::move(logs);
  free_blocks_ = std::move(free_blocks);
  use_seq_ = use_seq;
  spares_used_ = spares_used;
  read_only_ = read_only;
  full_merges_ = full_merges;
  switch_merges_ = switch_merges;
  valid_pages_ = valid_pages;
  stats_ = stats;
  return Status::Ok();
}

}  // namespace flashsim
