#include "src/ftl/health.h"

#include <cmath>
#include <cstdio>

namespace flashsim {

const char* PreEolInfoName(PreEolInfo info) {
  switch (info) {
    case PreEolInfo::kNotDefined:
      return "NOT_DEFINED";
    case PreEolInfo::kNormal:
      return "NORMAL";
    case PreEolInfo::kWarning:
      return "WARNING";
    case PreEolInfo::kUrgent:
      return "URGENT";
  }
  return "UNKNOWN";
}

uint32_t LifeFractionToLevel(double fraction) {
  if (fraction < 0.0) {
    fraction = 0.0;
  }
  // Level 1 covers [0%,10%), ..., level 10 covers [90%,100%), level 11 beyond.
  const uint32_t level = static_cast<uint32_t>(std::floor(fraction * 10.0)) + 1;
  return level > 11 ? 11 : level;
}

PreEolInfo ComputePreEol(uint32_t spares_used, uint32_t spares_total) {
  if (spares_total == 0) {
    return PreEolInfo::kNotDefined;
  }
  const double used = static_cast<double>(spares_used) / spares_total;
  if (used >= 0.98) {
    return PreEolInfo::kUrgent;
  }
  if (used >= 0.80) {
    return PreEolInfo::kWarning;
  }
  return PreEolInfo::kNormal;
}

std::string HealthReport::ToString() const {
  if (!supported) {
    return "health reporting unsupported";
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "LIFE_TIME_EST A=%u B=%u PRE_EOL=%s (avg P/E A=%.1f/%u B=%.1f/%u)",
                life_time_est_a, life_time_est_b, PreEolInfoName(pre_eol), avg_pe_a,
                rated_pe_a, avg_pe_b, rated_pe_b);
  return buf;
}

}  // namespace flashsim
