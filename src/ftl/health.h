// JEDEC eMMC 5.1-style device health reporting (the "wear-out indicator"
// central to the paper's measurements).
//
// DEVICE_LIFE_TIME_EST_TYP_A / _B: 11-level estimate of consumed lifetime.
// Level n means (n-1)*10%..n*10% of the rated endurance has been used; level
// 11 means the estimate is exceeded and the device may corrupt data (§4.3).
// PRE_EOL_INFO: coarse state of the reserved-block pool.

#ifndef SRC_FTL_HEALTH_H_
#define SRC_FTL_HEALTH_H_

#include <cstdint>
#include <string>

namespace flashsim {

// PRE_EOL_INFO values per JEDEC: consumption of reserved (spare) blocks.
enum class PreEolInfo {
  kNotDefined = 0,
  kNormal = 1,    // < 80% of spares consumed
  kWarning = 2,   // >= 80% of spares consumed
  kUrgent = 3,    // spares (almost) exhausted; device near read-only
};

const char* PreEolInfoName(PreEolInfo info);

// Snapshot of the health registers a host can query.
struct HealthReport {
  bool supported = true;       // budget devices may not implement reporting
  uint32_t life_time_est_a = 1;  // 1..11
  uint32_t life_time_est_b = 0;  // 0 when the device has no Type B region
  PreEolInfo pre_eol = PreEolInfo::kNormal;

  // Raw model state backing the registers (not host-visible on real devices,
  // exposed here for experiments and tests).
  double avg_pe_a = 0.0;
  double avg_pe_b = 0.0;
  uint32_t rated_pe_a = 0;
  uint32_t rated_pe_b = 0;
  uint32_t spare_blocks_total = 0;
  uint32_t spare_blocks_used = 0;

  std::string ToString() const;
};

// Maps a consumed-life fraction to the 1..11 JEDEC level.
uint32_t LifeFractionToLevel(double fraction);

// Computes PRE_EOL_INFO from spare-pool consumption.
PreEolInfo ComputePreEol(uint32_t spares_used, uint32_t spares_total);

}  // namespace flashsim

#endif  // SRC_FTL_HEALTH_H_
