// Block-mapped FTL with log blocks — the architecture of simple/cheap flash
// controllers (MicroSD cards, older eMMC).
//
// The mapping granularity is a whole erase block: logical block n lives in
// one physical "data block". Small writes go to a bounded pool of "log
// blocks" (one per logical block, FAST-style); when a log block fills, or the
// pool is exhausted, the FTL *merges*: it combines the newest copy of every
// page from (data block, log block) into a freshly allocated block and
// erases the old ones. Two merge flavours:
//
//  * switch merge — the log block was filled strictly in order, so it simply
//    becomes the new data block (sequential writes are cheap);
//  * full merge — page-by-page copy (random writes are brutally expensive).
//
// This is exactly why §4.2 finds uSD random writes an order of magnitude
// slower than sequential while eMMC (page-mapped) shows no such gap: the
// asymmetry is architectural, and here it falls out of the merge path rather
// than any tuned constant.

#ifndef SRC_FTL_BLOCK_MAP_FTL_H_
#define SRC_FTL_BLOCK_MAP_FTL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "src/ftl/config.h"
#include "src/ftl/ftl_interface.h"
#include "src/nand/chip.h"

namespace flashsim {

struct BlockMapFtlConfig {
  // Concurrently open log blocks. Small on real SD controllers (4-8).
  uint32_t log_blocks = 8;
  // Spare physical blocks for bad-block replacement.
  uint32_t spare_blocks = 8;
  // Rated endurance used by the (internal) health estimate; SD cards do not
  // expose it, but the model still needs an EOL notion.
  uint32_t health_rated_pe = 500;

  Status Validate() const;
};

class BlockMapFtl : public FtlInterface {
 public:
  BlockMapFtl(NandChipConfig nand_config, BlockMapFtlConfig config, uint64_t seed);

  // FtlInterface:
  Result<SimDuration> WritePage(uint64_t lpn) override;
  Result<SimDuration> ReadPage(uint64_t lpn) override;
  Status TrimPage(uint64_t lpn) override;
  uint64_t LogicalPageCount() const override;
  uint32_t PageSizeBytes() const override { return chip_.config().page_size_bytes; }
  HealthReport Health() const override;
  FtlStats Stats() const override;
  bool IsReadOnly() const override { return read_only_; }
  double Utilization() const override;

  // Mount-time recovery: classifies every physical block by the logical
  // block its OOB tags name. A single candidate whose pages all sit in
  // position becomes the data block as-is; when several candidates survive a
  // cut (old data block, log block, half-written merge destination), a
  // power-on merge combines the newest copy of every offset — ordered by OOB
  // write sequence — into a fresh block and erases the rest. Log blocks do
  // not survive a mount; torn pages read as holes.
  Result<RecoveryReport> Mount() override;

  void AttachPowerRail(PowerRail* rail) override { chip_.AttachPowerRail(rail); }

  // Internal-consistency check: data blocks hold only in-position (or pad)
  // tags, log `newest` entries point at pages tagged with their offset, no
  // physical block is referenced twice, free blocks are erased with fresh
  // wear keys, and the valid-page count matches `written_`.
  Status ValidateInvariants(uint64_t lpn_stride = 1) const override;

  // Device snapshot (see FtlInterface).
  void SaveState(SnapshotWriter& w) const override;
  Status LoadState(SnapshotReader& r) override;

  // Introspection for tests.
  uint64_t full_merges() const { return full_merges_; }
  uint64_t switch_merges() const { return switch_merges_; }
  uint32_t open_log_blocks() const { return static_cast<uint32_t>(logs_.size()); }
  const NandChip& chip() const { return chip_; }

 private:
  struct LogBlock {
    BlockId phys = kInvalidBlockId;
    // Newest log page index per block-offset (page offset -> log page).
    std::map<uint32_t, uint32_t> newest;
    bool strictly_sequential = true;
    uint32_t next_expected_offset = 0;
    uint64_t last_use_seq = 0;
  };

  // Allocates the least-worn free block; kInvalid + error when exhausted.
  Result<BlockId> AllocateBlock(SimDuration& time_acc);
  void ReleaseBlock(BlockId block, SimDuration& time_acc);
  void RetireBlock(BlockId block);

  // Ensures `logical_block` has an open log block, evicting (merging) the
  // least-recently-used log when the pool is full.
  Result<LogBlock*> GetLogBlock(uint64_t logical_block, SimDuration& time_acc);

  // Merges `logical_block`'s data+log into a fresh block.
  Status Merge(uint64_t logical_block, SimDuration& time_acc);

  NandChipConfig nand_config_;
  BlockMapFtlConfig config_;
  NandChip chip_;

  std::vector<BlockId> data_blocks_;                 // per logical block
  std::vector<bool> written_;                        // per logical page
  std::map<uint64_t, LogBlock> logs_;                // logical block -> log
  std::set<std::pair<uint32_t, BlockId>> free_blocks_;  // (pe, id)

  uint64_t logical_blocks_ = 0;
  uint64_t use_seq_ = 0;
  uint32_t spares_used_ = 0;
  bool read_only_ = false;
  uint64_t full_merges_ = 0;
  uint64_t switch_merges_ = 0;
  uint64_t valid_pages_ = 0;

  FtlStats stats_;
};

}  // namespace flashsim

#endif  // SRC_FTL_BLOCK_MAP_FTL_H_
