// Page-mapped flash translation layer.
//
// Classic page-level FTL: a full logical-to-physical page map, separate host
// and GC write streams, greedy or cost-benefit garbage collection, dynamic
// wear leveling at allocation time (coldest free block first), optional
// static wear leveling (cold-data migration), bad-block replacement from a
// spare pool, and JEDEC-style health reporting. When the spare pool is
// exhausted the device turns read-only — the "bricked phone" end state of the
// paper's experiments.

#ifndef SRC_FTL_PAGE_MAP_FTL_H_
#define SRC_FTL_PAGE_MAP_FTL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/ftl/config.h"
#include "src/ftl/free_pool.h"
#include "src/ftl/ftl_interface.h"
#include "src/nand/chip.h"
#include "src/simcore/event_log.h"
#include "src/simcore/scratch.h"
#include "src/simcore/victim_index.h"

namespace flashsim {

class PageMapFtl : public FtlInterface {
 public:
  // `nand_config` and `ftl_config` must validate. `event_log` may be null.
  PageMapFtl(NandChipConfig nand_config, FtlConfig ftl_config, uint64_t seed,
             EventLog* event_log = nullptr);

  // FtlInterface:
  Result<SimDuration> WritePage(uint64_t lpn) override;
  // Bulk fast path: amortizes dispatch, free-pool work, NAND bookkeeping,
  // and failure-randomness draws across the batch while staying
  // simulation-equivalent to per-page WritePage calls (see DESIGN.md).
  Status WriteBatch(const uint64_t* lpns, size_t count,
                    SimDuration* per_page_times, size_t* pages_done) override;
  Result<SimDuration> WritePages(uint64_t lpn, uint64_t count) override;
  Result<SimDuration> ReadPage(uint64_t lpn) override;
  Status TrimPage(uint64_t lpn) override;
  uint64_t LogicalPageCount() const override { return logical_pages_; }
  uint32_t PageSizeBytes() const override { return chip_.config().page_size_bytes; }
  HealthReport Health() const override;
  FtlStats Stats() const override;
  bool IsReadOnly() const override { return read_only_; }
  double Utilization() const override;

  // Mount-time recovery: rebuilds the page map and every derived structure
  // (valid counts, block states, free pool, victim indexes) purely from the
  // chip's OOB metadata — per-page tags plus write sequence numbers — so it
  // is correct after an unclean power cut. The newest non-torn copy of each
  // LPN wins; torn pages are discarded; blocks torn by an interrupted erase
  // are re-erased; partially written blocks are sealed (never resumed).
  // Finishes with a full ValidateInvariants pass.
  Result<RecoveryReport> Mount() override;

  void AttachPowerRail(PowerRail* rail) override { chip_.AttachPowerRail(rail); }

  // Internal write entry point also used by HybridFtl for migrations: writes
  // a page whose content belongs to `lpn` without counting it as host I/O.
  Result<SimDuration> WritePageInternal(uint64_t lpn, bool count_as_host);

  // Direct access for tests and the hybrid front end.
  const NandChip& chip() const { return chip_; }
  // Mutable access for maintenance operations (annealing/self-healing).
  NandChip& mutable_chip() { return chip_; }
  uint32_t free_block_count() const { return static_cast<uint32_t>(free_blocks_.size()); }
  const WearBucketedFreePool& free_pool() const { return free_blocks_; }
  const FtlConfig& config() const { return ftl_config_; }
  // Reallocations of the bulk-write scratch buffers; constant in steady
  // state (DESIGN.md §12).
  uint64_t ScratchGrowCount() const {
    return scratch_lpns_.grow_count() + scratch_times_.grow_count();
  }

  // True when `lpn` currently maps to a physical page.
  bool IsMapped(uint64_t lpn) const;

  // Current physical location of `lpn` (kInvalidPageAddr when unmapped).
  PhysPageAddr MappedAddr(uint64_t lpn) const {
    return lpn < logical_pages_ ? map_[lpn] : kInvalidPageAddr;
  }

  // Internal-consistency check:
  //  * every sampled mapped LPN points at a programmed page whose OOB tag is
  //    the LPN;
  //  * per-block valid counts equal the number of map entries per block;
  //  * the valid-page total matches;
  //  * free blocks are erased, and block states partition the array;
  //  * in indexed mode, the victim/wear indexes mirror the block states.
  // `lpn_stride` bounds the O(logical pages) map walk by sampling every
  // N-th LPN; strides > 1 skip the count/total cross-checks (they need the
  // full walk) but keep every O(blocks) check. Returns the first violation
  // found. Meant for tests and debug builds.
  Status ValidateInvariants(uint64_t lpn_stride = 1) const override;

  // Device snapshot (see FtlInterface). The victim/wear indexes are not
  // serialized — LoadState rebuilds them from the restored block states and
  // chip wear, then re-applies the saved lazy cursors so probe counters
  // continue bit-exactly.
  void SaveState(SnapshotWriter& w) const override;
  Status LoadState(SnapshotReader& r) override;

  // Switches victim selection at runtime (rebuilds the indexes when turning
  // kIndexed on). The pick sequence is identical either way; benches flip
  // this to compare wall-clock cost.
  void SetVictimSelect(VictimSelect select);
  VictimSelect victim_select() const { return victim_select_; }

  // Merged-pool support (hybrid devices): while enabled, erases of blocks
  // that served as GC destinations are wear-free in THIS pool — the churn is
  // physically absorbed by drafted Type A staging blocks, whose wear the
  // hybrid front end charges separately (HybridFtl::ChargeStagingWear).
  void SetDivertGcWear(bool divert) { divert_gc_wear_ = divert; }
  bool divert_gc_wear() const { return divert_gc_wear_; }

 private:
  enum class BlockState : uint8_t { kFree, kOpenHost, kOpenGc, kClosed, kBad };

  // Allocates the lowest-wear free block for the given stream. When
  // `allow_gc` and the pool is at the watermark, runs GC first.
  Result<BlockId> AllocateBlock(BlockState stream, bool allow_gc,
                                SimDuration& time_acc);

  // Runs GC until the free pool is above the watermark (or nothing more can
  // be reclaimed). Accumulates NAND time into `time_acc`.
  Status RunGcIfNeeded(SimDuration& time_acc);

  // Picks a GC victim among closed blocks; kInvalidBlockId if none eligible.
  // Dispatches to the linear reference scan or the bucket indexes and folds
  // the pick into the stats (picks, candidates, sequence hash).
  BlockId PickVictim();
  BlockId PickVictimLinear();
  BlockId PickVictimIndexed();

  // Migrates all still-valid pages out of `victim` and erases it.
  Status ReclaimBlock(BlockId victim, SimDuration& time_acc);

  // Programs `lpn` into the active block of `stream`, handling program
  // failures by retiring the block and retrying on a fresh one.
  Result<PhysPageAddr> ProgramIntoStream(uint64_t lpn, BlockState stream,
                                         bool allow_gc, SimDuration& time_acc);

  // Static wear-leveling check; migrates the coldest closed blocks when the
  // P/E spread exceeds the configured threshold. Runs on every page write,
  // so the cheap predicates — feature enabled, erase_seq_ on a check
  // multiple (folded into `wl_check_due_`, maintained where erase_seq_
  // changes), spread already known fine at this wear version — gate the
  // out-of-line pass inline.
  void MaybeStaticWearLevel(SimDuration& time_acc) {
    if (!wl_check_due_ || wl_spread_ok_version_ == chip_.wear_version()) {
      return;
    }
    StaticWearLevelPass(time_acc);
  }
  void StaticWearLevelPass(SimDuration& time_acc);
  void UpdateWearLevelCheckDue() {
    wl_check_due_ = ftl_config_.wear_level_threshold != 0 && erase_seq_ != 0 &&
                    erase_seq_ % ftl_config_.wear_level_check_interval == 0;
  }

  // Removes `block` from service after a failure, updating spare accounting
  // and possibly transitioning the device to read-only.
  void RetireBlock(BlockId block);

  void InvalidateMapping(uint64_t lpn);
  void CloseIfFull(BlockId block);
  void LogEvent(EventSeverity severity, const std::string& message);

  // --- Incremental victim/wear index maintenance (kIndexed mode) ---
  bool UseIndex() const { return victim_select_ == VictimSelect::kIndexed; }
  // Ordering key inside a valid-count bucket: close sequence for
  // cost-benefit (oldest first), unused for greedy (id order).
  uint64_t VictimSortKey(BlockId block) const {
    return ftl_config_.gc_policy == GcPolicy::kCostBenefit ? close_seq_[block] : 0;
  }
  // Valid-count mutations; a closed block moves between index buckets.
  void IncValidCount(BlockId block);
  void DecValidCount(BlockId block);
  // Closed-set membership (victim index + closed-by-P/E index).
  void IndexInsertClosed(BlockId block);
  void IndexEraseClosed(BlockId block);
  // P/E histogram over non-bad blocks: O(1) spread (min/max) queries.
  void PeHistAdd(uint32_t pe);
  void PeHistRemove(uint32_t pe);
  uint32_t PeHistMin();
  uint32_t PeHistMax();
  // Re-keys `block` after an erase charged wear to it.
  void OnBlockErased(BlockId block);
  // Full rebuild from chip/block state; counted in the stats. Also the
  // resync path when external wear changes (annealing) desync the P/E keys.
  void RebuildVictimIndexes();
  void EnsureWearIndexSync();

  NandChipConfig nand_config_;
  FtlConfig ftl_config_;
  NandChip chip_;
  EventLog* event_log_;

  uint64_t logical_pages_ = 0;
  std::vector<PhysPageAddr> map_;          // lpn -> physical page
  std::vector<uint32_t> valid_counts_;     // per block
  std::vector<BlockState> block_states_;   // per block
  std::vector<uint64_t> close_seq_;        // erase sequence at close (for CB age)
  std::vector<uint8_t> gc_origin_;         // block was last filled by the GC stream
  WearBucketedFreePool free_blocks_;       // min-wear first, O(1) pop

  BlockId host_active_ = kInvalidBlockId;
  BlockId gc_active_ = kInvalidBlockId;

  // Closed blocks whose last valid page was just invalidated; reclaimed
  // eagerly (background GC) so they re-enter the wear-ordered free pool.
  std::vector<BlockId> dead_blocks_;

  uint64_t valid_total_ = 0;
  uint64_t erase_seq_ = 0;
  // erase_seq_ sits on a wear-level check multiple (and the feature is on).
  bool wl_check_due_ = false;
  // Block currently being reclaimed: removed from the victim/wear indexes up
  // front, so DecValidCount must not Move it (see ReclaimBlock).
  BlockId reclaiming_block_ = kInvalidBlockId;
  uint32_t spares_used_ = 0;
  bool read_only_ = false;
  bool divert_gc_wear_ = false;

  // Scratch buffers for the bulk write path, reused across calls.
  ScratchBuffer<uint64_t> scratch_lpns_;
  ScratchBuffer<SimDuration> scratch_times_;

  // Chip wear version at which the static wear-level scan last found the
  // spread within threshold; ~0 means "no valid cached scan".
  uint64_t wl_spread_ok_version_ = ~0ull;

  // Victim-selection indexes (maintained only in kIndexed mode; see
  // DESIGN.md "Victim-selection indexes" for the invariants).
  VictimSelect victim_select_ = VictimSelect::kIndexed;
  BucketVictimIndex victim_index_;   // closed blocks keyed by valid count
  BucketVictimIndex closed_by_pe_;   // closed blocks keyed by P/E count
  std::vector<uint32_t> hist_pe_;    // P/E key each non-bad block occupies
  std::vector<uint64_t> pe_hist_;    // non-bad blocks per P/E count
  uint64_t pe_hist_total_ = 0;
  uint32_t pe_min_cursor_ = 0;       // no non-empty P/E bucket below this
  uint32_t pe_max_cursor_ = 0;       // no non-empty P/E bucket above this
  // Chip wear version the P/E-keyed structures reflect; a mismatch at use
  // time means external wear changes (annealing) require a rebuild.
  uint64_t wear_sync_version_ = ~0ull;

  FtlStats stats_;
};

}  // namespace flashsim

#endif  // SRC_FTL_PAGE_MAP_FTL_H_
