// I/O tracing and replay.
//
// TraceRecorder captures the request stream a device serves (kind, offset,
// length, issue time, service time) with per-kind latency/size histograms.
// TraceReplayer re-issues a captured stream against another device,
// preserving idle gaps — the standard methodology for asking "what would
// this workload do to that hardware?", and the tool a §4.5-style defense
// would use to build its model of expected application I/O behaviour.

#ifndef SRC_BLOCKDEV_IOTRACE_H_
#define SRC_BLOCKDEV_IOTRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/blockdev/block_device.h"
#include "src/simcore/stats.h"

namespace flashsim {

struct TraceEntry {
  IoKind kind = IoKind::kWrite;
  uint64_t offset = 0;
  uint64_t length = 0;
  SimTime issue_time;
  SimDuration service_time;
};

// Bounded in-memory trace with streaming statistics (the statistics keep
// counting after the entry buffer fills).
class TraceRecorder {
 public:
  explicit TraceRecorder(size_t max_entries = 1 << 20) : max_entries_(max_entries) {}

  void Record(const IoRequest& request, SimTime issue_time, SimDuration service_time);

  const std::vector<TraceEntry>& entries() const { return entries_; }
  uint64_t total_recorded() const { return total_; }
  uint64_t dropped() const { return total_ - entries_.size(); }

  // Latency distribution (microseconds) per request kind.
  const LogHistogram& WriteLatencyUs() const { return write_latency_us_; }
  const LogHistogram& ReadLatencyUs() const { return read_latency_us_; }
  // Request-size distribution (bytes) across all kinds.
  const LogHistogram& SizeBytes() const { return size_bytes_; }

  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t bytes_read() const { return bytes_read_; }

  // One-line human summary ("N reqs, X GiB written, p50/p99 write latency").
  std::string Summary() const;

  void Clear();

 private:
  size_t max_entries_;
  std::vector<TraceEntry> entries_;
  uint64_t total_ = 0;
  uint64_t bytes_written_ = 0;
  uint64_t bytes_read_ = 0;
  LogHistogram write_latency_us_;
  LogHistogram read_latency_us_;
  LogHistogram size_bytes_;
};

// Outcome of replaying a trace.
struct ReplayResult {
  uint64_t requests_replayed = 0;
  uint64_t requests_failed = 0;
  SimDuration total_io_time;     // sum of service times on the target
  SimDuration trace_io_time;     // sum of service times in the recording
  Status status;                 // first hard failure (device gone)

  // Target service time over recorded service time; > 1 means the target is
  // slower for this workload.
  double SlowdownFactor() const {
    return trace_io_time.nanos() == 0
               ? 0.0
               : static_cast<double>(total_io_time.nanos()) /
                     static_cast<double>(trace_io_time.nanos());
  }
};

// Replays `trace` onto `device`, preserving recorded idle gaps (time between
// a request's issue and the previous request's completion). Offsets beyond
// the target's capacity wrap modulo capacity.
ReplayResult ReplayTrace(const std::vector<TraceEntry>& trace, BlockDevice& device);

}  // namespace flashsim

#endif  // SRC_BLOCKDEV_IOTRACE_H_
