#include "src/blockdev/io_queue.h"

#include <algorithm>

namespace flashsim {

IoQueue::IoQueue(uint32_t channels, uint32_t depth)
    : channels_(std::max(1u, channels)), depth_(std::max(1u, depth)) {
  channel_free_ns_.resize(channels_);
  inflight_heap_.reserve(depth_);
}

SimDuration IoQueue::Run(const QueuedOp* ops, size_t count,
                         SimDuration* latencies) {
  std::fill(channel_free_ns_.begin(), channel_free_ns_.end(), int64_t{0});
  inflight_heap_.clear();
  // std::*_heap with std::greater<> keeps the earliest completion on top.
  const auto earlier = [](int64_t a, int64_t b) { return a > b; };

  int64_t makespan = 0;
  for (size_t i = 0; i < count; ++i) {
    // Queue-slot admission: block until the earliest in-flight op completes
    // when all `depth_` slots are taken.
    int64_t submit = 0;
    if (inflight_heap_.size() == depth_) {
      submit = inflight_heap_.front();
      std::pop_heap(inflight_heap_.begin(), inflight_heap_.end(), earlier);
      inflight_heap_.pop_back();
    }
    const uint32_t channel =
        static_cast<uint32_t>(ops[i].channel_key % channels_);
    const int64_t start = std::max(submit, channel_free_ns_[channel]);
    const int64_t complete = start + ops[i].service.nanos();
    channel_free_ns_[channel] = complete;
    inflight_heap_.push_back(complete);
    std::push_heap(inflight_heap_.begin(), inflight_heap_.end(), earlier);
    if (latencies != nullptr) {
      latencies[i] = SimDuration::Nanos(complete - submit);
    }
    makespan = std::max(makespan, complete);
  }
  return SimDuration::Nanos(makespan);
}

}  // namespace flashsim
