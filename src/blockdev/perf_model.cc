#include "src/blockdev/perf_model.h"

#include <algorithm>

namespace flashsim {

SimDuration PerfModel::ServiceTime(uint64_t bytes, SimDuration array_time,
                                   bool sequential) const {
  const double transfer_seconds =
      static_cast<double>(bytes) / (config_.bus_mib_per_sec * 1024.0 * 1024.0);
  // Bus transfer and array programming pipeline: data for the next die
  // transfers while the previous one programs, so the slower of the two
  // stages dominates rather than their sum.
  const SimDuration transfer = SimDuration::FromSecondsF(transfer_seconds);
  const SimDuration array(array_time.nanos() /
                          static_cast<int64_t>(std::max(1u, config_.effective_parallelism)));
  SimDuration t = config_.per_request_overhead;
  t += std::max(transfer, array);
  if (!sequential) {
    t += config_.random_write_penalty;
  }
  return t;
}

double PerfModel::PlateauMiBPerSec(uint32_t page_bytes, SimDuration program_time) const {
  // Array-side limit: parallel pages per program time.
  const double array_limit =
      static_cast<double>(page_bytes) * config_.effective_parallelism /
      (1024.0 * 1024.0) / program_time.ToSecondsF();
  return std::min(array_limit, config_.bus_mib_per_sec);
}

}  // namespace flashsim
