#include "src/blockdev/perf_model.h"

#include <algorithm>
#include <limits>

namespace flashsim {

SimDuration PerfModel::ServiceTime(uint64_t bytes, SimDuration array_time,
                                   bool sequential) const {
  // A non-positive bandwidth means "no transfer stage" (zero-latency test
  // configs) rather than a division blow-up.
  const double transfer_seconds =
      config_.bus_mib_per_sec > 0.0
          ? static_cast<double>(bytes) / (config_.bus_mib_per_sec * 1024.0 * 1024.0)
          : 0.0;
  // Bus transfer and array programming pipeline: data for the next die
  // transfers while the previous one programs, so the slower of the two
  // stages dominates rather than their sum. Saturate instead of overflowing
  // the ns cast for absurd byte counts (EOL sweeps on scaled devices), and
  // saturate the additions too so overhead on top of a clamped transfer
  // cannot wrap negative.
  constexpr int64_t kMaxNanos = std::numeric_limits<int64_t>::max();
  const double transfer_nanos = transfer_seconds * 1e9;
  const SimDuration transfer =
      transfer_nanos >= static_cast<double>(kMaxNanos)
          ? SimDuration::Nanos(kMaxNanos)
          : SimDuration::FromSecondsF(transfer_seconds);
  const SimDuration array(array_time.nanos() /
                          static_cast<int64_t>(std::max(1u, config_.effective_parallelism)));
  const auto saturating_add = [](int64_t a, int64_t b) {
    return a > kMaxNanos - b ? kMaxNanos : a + b;
  };
  int64_t t = saturating_add(config_.per_request_overhead.nanos(),
                             std::max(transfer, array).nanos());
  if (!sequential) {
    t = saturating_add(t, config_.random_write_penalty.nanos());
  }
  return SimDuration::Nanos(t);
}

double PerfModel::PlateauMiBPerSec(uint32_t page_bytes, SimDuration program_time) const {
  if (program_time.nanos() <= 0) {
    return config_.bus_mib_per_sec;  // array stage is free; bus is the limit
  }
  // Array-side limit: parallel pages per program time.
  const double array_limit =
      static_cast<double>(page_bytes) * config_.effective_parallelism /
      (1024.0 * 1024.0) / program_time.ToSecondsF();
  return std::min(array_limit, config_.bus_mib_per_sec);
}

}  // namespace flashsim
