// Host-visible block device abstraction.
//
// File systems and raw workloads submit byte-addressed requests; the device
// translates them to logical pages, drives its FTL, computes a service time
// from its performance model, and advances the shared simulated clock.

#ifndef SRC_BLOCKDEV_BLOCK_DEVICE_H_
#define SRC_BLOCKDEV_BLOCK_DEVICE_H_

#include <cstddef>
#include <cstdint>

#include "src/ftl/health.h"
#include "src/simcore/clock.h"
#include "src/simcore/sim_time.h"
#include "src/simcore/status.h"

namespace flashsim {

enum class IoKind { kRead, kWrite, kDiscard };

const char* IoKindName(IoKind kind);

// One I/O request. Offsets and lengths are in bytes; writes shorter than a
// device page incur read-modify-write amplification, as on real hardware.
struct IoRequest {
  IoKind kind = IoKind::kWrite;
  uint64_t offset = 0;
  uint64_t length = 0;
};

// Completion record for a request.
struct IoCompletion {
  SimDuration service_time;
  uint64_t bytes_transferred = 0;
};

// Completion record for a batch submission. Requests are processed in
// order; on the first failure processing stops, `status` reports it, and the
// leading `requests_completed` requests are fully applied and accounted
// (clock, meters, service time) exactly as if submitted one by one.
struct BatchCompletion {
  SimDuration service_time;  // total across the completed requests
  uint64_t bytes_transferred = 0;
  size_t requests_completed = 0;
  Status status;
};

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  // Submits a synchronous request; on success the device clock has advanced
  // by the returned service time.
  virtual Result<IoCompletion> Submit(const IoRequest& request) = 0;

  // Submits `count` requests as one batch. Semantically identical to calling
  // Submit in order and stopping at the first failure — same simulated time,
  // wear, and accounting — but lets devices amortize per-request and
  // per-page overhead (see FlashDevice). The base implementation just loops.
  virtual BatchCompletion SubmitBatch(const IoRequest* requests, size_t count);

  // Device capacity visible to the host, in bytes.
  virtual uint64_t CapacityBytes() const = 0;

  // Native page size (optimal write granularity), in bytes.
  virtual uint32_t PageSizeBytes() const = 0;

  // JEDEC-style health registers; `supported == false` on budget devices.
  virtual HealthReport QueryHealth() const = 0;

  // True once the device has worn out and rejects writes.
  virtual bool IsReadOnly() const = 0;

  // The simulated clock this device advances.
  virtual SimClock& clock() = 0;
};

}  // namespace flashsim

#endif  // SRC_BLOCKDEV_BLOCK_DEVICE_H_
