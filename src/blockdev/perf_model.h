// Device-level service-time model.
//
// Mobile flash throughput hinges on request size (§4.2 of the paper): small
// requests pay a fixed per-command overhead, larger requests exploit internal
// parallelism (channels × dies × planes) until the interface or the array
// saturates. The model composes:
//
//   service = per_request_overhead
//           + max(transfer(bytes / bus_bandwidth),
//                 array_time / effective_parallelism)   // stages pipeline
//           + random_access_penalty (simple controllers only)
//
// where array_time is the serial NAND time the FTL reports (programs, reads,
// erases, GC work). This reproduces the near-linear-then-plateau bandwidth
// curves of Figure 1 and, because GC time flows through `array_time`,
// throughput degrades mechanically as write amplification rises.

#ifndef SRC_BLOCKDEV_PERF_MODEL_H_
#define SRC_BLOCKDEV_PERF_MODEL_H_

#include <cstdint>

#include "src/simcore/sim_time.h"

namespace flashsim {

struct PerfModelConfig {
  // Fixed controller + interface command overhead per request.
  SimDuration per_request_overhead = SimDuration::Micros(120);

  // Interface transfer bandwidth (eMMC HS200/HS400, UFS gear speed).
  double bus_mib_per_sec = 200.0;

  // Effective parallel NAND operations (channels × dies × planes, including
  // cache-program pipelining). Divides serial array time.
  uint32_t effective_parallelism = 8;

  // Extra penalty charged when a write is not sequential to the previous one
  // — models block-mapped/simple-controller devices (MicroSD) whose random
  // writes trigger partial-block merges. Zero for page-mapped eMMC/UFS.
  SimDuration random_write_penalty = SimDuration::Nanos(0);

  // Queued-submission topology (src/blockdev/io_queue.h). `channels` is the
  // number of independent host-visible channels requests stripe across;
  // `queue_depth` bounds how many requests may be in flight at once. With
  // channels=1 and queue_depth=1 the device serves requests synchronously
  // through the flat formula above — the calibrated Figure 1 behaviour — and
  // the event engine is bypassed entirely unless `force_event_engine` asks
  // for it (the degenerate event model is bit-exact with the flat path; the
  // flag exists so the equivalence tests can prove that).
  uint32_t channels = 1;
  uint32_t queue_depth = 1;
  bool force_event_engine = false;
};

class PerfModel {
 public:
  explicit PerfModel(PerfModelConfig config) : config_(config) {}

  const PerfModelConfig& config() const { return config_; }

  // Service time for a request of `bytes` whose serial NAND/array time was
  // `array_time`. `sequential` reports whether the request starts where the
  // previous one ended.
  SimDuration ServiceTime(uint64_t bytes, SimDuration array_time, bool sequential) const;

  // The model's asymptotic sequential-write bandwidth for a page of
  // `page_bytes` programmed in `program_time` (useful for tests).
  double PlateauMiBPerSec(uint32_t page_bytes, SimDuration program_time) const;

 private:
  PerfModelConfig config_;
};

}  // namespace flashsim

#endif  // SRC_BLOCKDEV_PERF_MODEL_H_
