#include "src/blockdev/iotrace.h"

#include <cstdio>

#include "src/simcore/units.h"

namespace flashsim {

void TraceRecorder::Record(const IoRequest& request, SimTime issue_time,
                           SimDuration service_time) {
  ++total_;
  const uint64_t latency_us =
      static_cast<uint64_t>(service_time.nanos() / 1000);
  if (request.kind == IoKind::kWrite) {
    bytes_written_ += request.length;
    write_latency_us_.Add(latency_us);
  } else if (request.kind == IoKind::kRead) {
    bytes_read_ += request.length;
    read_latency_us_.Add(latency_us);
  }
  size_bytes_.Add(request.length);
  if (entries_.size() < max_entries_) {
    entries_.push_back(
        TraceEntry{request.kind, request.offset, request.length, issue_time,
                   service_time});
  }
}

std::string TraceRecorder::Summary() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "%llu reqs, %s written, %s read, write p50/p99 = %llu/%llu us",
                static_cast<unsigned long long>(total_),
                FormatBytes(bytes_written_).c_str(), FormatBytes(bytes_read_).c_str(),
                static_cast<unsigned long long>(write_latency_us_.ApproxQuantile(0.5)),
                static_cast<unsigned long long>(write_latency_us_.ApproxQuantile(0.99)));
  return buf;
}

void TraceRecorder::Clear() {
  entries_.clear();
  total_ = 0;
  bytes_written_ = 0;
  bytes_read_ = 0;
  write_latency_us_.Reset();
  read_latency_us_.Reset();
  size_bytes_.Reset();
}

ReplayResult ReplayTrace(const std::vector<TraceEntry>& trace, BlockDevice& device) {
  ReplayResult result;
  const uint64_t capacity = device.CapacityBytes();
  SimTime prev_completion_in_trace;
  for (const TraceEntry& entry : trace) {
    // Preserve recorded think time between requests.
    if (entry.issue_time > prev_completion_in_trace) {
      device.clock().AdvanceWithCategory(entry.issue_time - prev_completion_in_trace,
                                         "replay-idle");
    }
    prev_completion_in_trace = entry.issue_time + entry.service_time;
    result.trace_io_time += entry.service_time;

    IoRequest req;
    req.kind = entry.kind;
    req.length = entry.length;
    req.offset = entry.length <= capacity
                     ? entry.offset % (capacity - entry.length + 1)
                     : 0;
    if (entry.length > capacity) {
      ++result.requests_failed;
      continue;
    }
    Result<IoCompletion> done = device.Submit(req);
    if (!done.ok()) {
      ++result.requests_failed;
      if (done.status().code() == StatusCode::kUnavailable) {
        result.status = done.status();
        break;  // target device died under the workload
      }
      continue;
    }
    ++result.requests_replayed;
    result.total_io_time += done.value().service_time;
  }
  return result;
}

}  // namespace flashsim
