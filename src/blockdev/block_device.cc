#include "src/blockdev/block_device.h"

namespace flashsim {

const char* IoKindName(IoKind kind) {
  switch (kind) {
    case IoKind::kRead:
      return "read";
    case IoKind::kWrite:
      return "write";
    case IoKind::kDiscard:
      return "discard";
  }
  return "unknown";
}

}  // namespace flashsim
