#include "src/blockdev/block_device.h"

namespace flashsim {

BatchCompletion BlockDevice::SubmitBatch(const IoRequest* requests, size_t count) {
  BatchCompletion out;
  for (size_t i = 0; i < count; ++i) {
    Result<IoCompletion> one = Submit(requests[i]);
    if (!one.ok()) {
      out.status = one.status();
      return out;
    }
    out.service_time += one.value().service_time;
    out.bytes_transferred += one.value().bytes_transferred;
    ++out.requests_completed;
  }
  return out;
}

const char* IoKindName(IoKind kind) {
  switch (kind) {
    case IoKind::kRead:
      return "read";
    case IoKind::kWrite:
      return "write";
    case IoKind::kDiscard:
      return "discard";
  }
  return "unknown";
}

}  // namespace flashsim
