// NCQ-style bounded device queue: the discrete-event scheduling core of the
// latency-aware device model (DESIGN.md §15).
//
// The host hands the device a group of requests (a SubmitBatch call); each
// request carries a precomputed service time (the calibrated flat formula,
// src/blockdev/perf_model.h) and a channel key. The queue then plays the
// group out in simulated time:
//
//   - at most `depth` requests are in flight at once — submission of the
//     next request blocks until the earliest in-flight completion frees a
//     slot (native-command-queueing semantics);
//   - each request dispatches to channel `key % channels`; an idle channel
//     starts it immediately, a busy one serializes it behind the request it
//     is serving (address-striped, not availability-based, so the schedule
//     is a pure function of the request sequence);
//   - requests complete in simulated-time order; the group's makespan (last
//     completion) is how long the device was busy.
//
// Degenerate-mode invariant (enforced by tests/latency_equivalence_test.cc):
// with channels=1 and depth=1 every request starts exactly when its
// predecessor completes, so the makespan is the plain sum of service times
// and each per-request latency equals its service time — bit-exactly the
// flat synchronous model. Monotonicity: a deeper queue never increases the
// makespan (submissions only move earlier), and doubling a power-of-two
// channel count never increases it either (keys colliding mod 2C also
// collide mod C, so splitting only removes conflicts).
//
// The queue is drained at every submission boundary — the host is
// synchronous above the device — so it holds no cross-call state and
// snapshots are quiesced by construction.

#ifndef SRC_BLOCKDEV_IO_QUEUE_H_
#define SRC_BLOCKDEV_IO_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/simcore/sim_time.h"

namespace flashsim {

// One request as the queue sees it: where it goes and how long it holds its
// channel. `channel_key` is the request's first logical page number, so
// consecutive addresses stripe across channels.
struct QueuedOp {
  uint64_t channel_key = 0;
  SimDuration service;
};

class IoQueue {
 public:
  // `channels` and `depth` must be >= 1 (clamped if 0).
  IoQueue(uint32_t channels, uint32_t depth);

  uint32_t channels() const { return channels_; }
  uint32_t depth() const { return depth_; }

  // Schedules `count` ops that all become available at group time zero, in
  // submission order. Returns the group makespan (time of last completion).
  // When `latencies` is non-null it receives, per op in submission order,
  // completion minus submission — channel wait plus service, excluding the
  // time the op waited for a queue slot (the host-side block).
  SimDuration Run(const QueuedOp* ops, size_t count,
                  SimDuration* latencies = nullptr);

 private:
  uint32_t channels_;
  uint32_t depth_;
  // Scratch reused across Run calls (cleared on entry; sized by config).
  std::vector<int64_t> channel_free_ns_;
  std::vector<int64_t> inflight_heap_;  // min-heap of completion times (ns)
};

}  // namespace flashsim

#endif  // SRC_BLOCKDEV_IO_QUEUE_H_
