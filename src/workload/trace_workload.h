// TraceWorkload: replays a TraceRecorder capture as a workload stream.
//
// Turns the "record on device A, replay on device B" methodology into an
// ordinary Workload: recorded inter-arrival gaps become op think time, so
// the replay preserves idle periods exactly like blockdev's ReplayTrace, but
// the stream can now be driven through any workload driver (bulk block-layer
// submission, campaign runs) and mixed freely with synthetic generators.

#ifndef SRC_WORKLOAD_TRACE_WORKLOAD_H_
#define SRC_WORKLOAD_TRACE_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/blockdev/iotrace.h"
#include "src/workload/workload.h"

namespace flashsim {

class TraceWorkload : public Workload {
 public:
  // Copies `entries`; the recorder/trace needs not outlive the workload.
  explicit TraceWorkload(std::vector<TraceEntry> entries,
                         std::string name = "trace");

  static TraceWorkload FromRecorder(const TraceRecorder& recorder,
                                    std::string name = "trace");

  // Offsets are wrapped so each request fits a target of `target_bytes`
  // (same rule as ReplayTrace); entries larger than the target are skipped.
  bool Next(uint64_t target_bytes, WorkloadOp* op) override;

  // Rewinds; the seed is unused (a trace has no randomness).
  void Reset(uint64_t seed) override;

  bool MayRead() const override { return has_reads_; }
  const std::string& name() const override { return name_; }

  size_t entry_count() const { return entries_.size(); }

  // Total device time the recording spent serving these requests — the
  // baseline for slowdown comparisons against a replay target.
  SimDuration RecordedIoTime() const;

 private:
  std::vector<TraceEntry> entries_;
  std::string name_;
  size_t cursor_ = 0;
  SimTime prev_completion_;
  bool has_reads_ = false;
};

}  // namespace flashsim

#endif  // SRC_WORKLOAD_TRACE_WORKLOAD_H_
