// Workload drivers: issue a Workload's stream against a real target.
//
// RunWorkloadOnDevice drives the block layer through the PR-1 SubmitBatch
// bulk path (simulation-equivalent to one-by-one submission, much cheaper in
// wall-clock). RunWorkloadOnFilesystem drives a mounted Filesystem — e.g. a
// Phone's fs() — by mapping the workload's flat offset space across a set of
// working files, the way the paper's attack app spreads its 100 MB files.
//
// Both drivers share stop conditions (stream end, byte cap, health-indicator
// level) and record wear-indicator transitions as they pass, so one run can
// serve either a bandwidth measurement or a time-to-wear experiment.

#ifndef SRC_WORKLOAD_DRIVER_H_
#define SRC_WORKLOAD_DRIVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/blockdev/block_device.h"
#include "src/fs/filesystem.h"
#include "src/simcore/sim_time.h"
#include "src/workload/workload.h"

namespace flashsim {

struct WorkloadDriveOptions {
  // Requests per SubmitBatch call at the block layer (1 = no batching).
  // Simulated results are identical for any value.
  uint64_t batch_requests = 32;
  // Stop after this much workload I/O; 0 = run until the stream ends.
  uint64_t max_bytes = 0;
  // Restart the stream when it ends instead of stopping. Lap `k` is reseeded
  // with DeriveSeed(seed, k), so laps stay decorrelated but deterministic.
  bool loop = false;
  // Stop once max(life_time_est_a, life_time_est_b) reaches this level
  // (0 = no health-based stop).
  uint32_t stop_at_level = 0;
  // Health-poll cadence in workload bytes; 0 = auto (capacity/64, >= 64 KiB).
  uint64_t health_poll_bytes = 0;
  // Seed for Workload::Reset at the start of the drive (and lap reseeding).
  uint64_t seed = 42;
  // Prefill the target before driving a stream that may read, so reads hit
  // mapped pages. Prefill traffic is excluded from the result's byte counts.
  bool prefill_for_reads = true;
};

// One wear-indicator transition observed while driving.
struct WorkloadLevelRow {
  uint32_t level = 0;        // new max(Type A, Type B) level
  uint64_t host_bytes = 0;   // workload bytes issued when it was observed
  double hours = 0.0;        // simulated hours elapsed when it was observed
};

struct WorkloadRunResult {
  uint64_t requests = 0;
  uint64_t bytes_written = 0;
  uint64_t bytes_read = 0;
  SimDuration elapsed;  // simulated time including idle/think time
  SimDuration io_time;  // device/fs service time only
  std::vector<WorkloadLevelRow> levels;
  bool reached_level = false;  // stop_at_level hit
  bool bricked = false;        // target went read-only mid-run
  Status status;               // first hard failure other than wear-out

  uint64_t TotalBytes() const { return bytes_written + bytes_read; }
  double WriteMiBps() const {
    const double secs = elapsed.ToSecondsF();
    return secs > 0 ? static_cast<double>(bytes_written) / (1024.0 * 1024.0) / secs
                    : 0.0;
  }
};

WorkloadRunResult RunWorkloadOnDevice(Workload& workload, BlockDevice& device,
                                      const WorkloadDriveOptions& options);

// Layout of the file-layer working set. `file_bytes` files are created and
// prefilled up front (install phase, excluded from result accounting); the
// workload's flat offsets then address file_count * file_bytes bytes spread
// across them.
struct FileLayerLayout {
  uint32_t file_count = 4;
  uint64_t file_bytes = 100ull * 1024 * 1024;
  bool sync = true;  // issue synchronous writes (the paper's workload)
  std::string dir = "workload";

  uint64_t TargetBytes() const {
    return static_cast<uint64_t>(file_count) * file_bytes;
  }
};

WorkloadRunResult RunWorkloadOnFilesystem(Workload& workload, Filesystem& fs,
                                          const FileLayerLayout& layout,
                                          const WorkloadDriveOptions& options);

}  // namespace flashsim

#endif  // SRC_WORKLOAD_DRIVER_H_
