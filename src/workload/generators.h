// Composable synthetic workload generators.
//
// One config drives every spatial pattern (sequential / random / strided /
// Zipf / hot-cold), a read/write mix, and a burst-idle duty cycle, so a
// uFLIP-style grid of micro-patterns is just a list of these configs. All
// randomness flows from a single Rng reseeded via Reset(), making streams
// reproducible and campaign runs independent.

#ifndef SRC_WORKLOAD_GENERATORS_H_
#define SRC_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/simcore/rng.h"
#include "src/simcore/status.h"
#include "src/workload/access_pattern.h"
#include "src/workload/workload.h"

namespace flashsim {

class SnapshotReader;
class SnapshotWriter;

struct SyntheticWorkloadConfig {
  std::string name = "synthetic";
  AccessPattern pattern = AccessPattern::kSequential;
  uint64_t request_bytes = 4096;
  // Stream length: the workload ends once this much I/O has been produced.
  uint64_t total_bytes = 64ull * 1024 * 1024;
  // Working region within the target. span_fraction (of the target size)
  // wins when > 0; otherwise span_bytes, with 0 meaning the whole target.
  uint64_t span_bytes = 0;
  double span_fraction = 0.0;
  uint64_t start_offset = 0;
  // kStrided: distance between consecutive requests; 0 defaults to
  // 8 * request_bytes. The phase shifts on each wrap so all slots are hit.
  uint64_t stride_bytes = 0;
  // kZipf: skew exponent (YCSB-style, ~0.99 is the classic hot distribution).
  double zipf_theta = 0.99;
  // kHotCold: leading `hot_fraction` of the span absorbs `hot_probability`
  // of the requests.
  double hot_fraction = 0.1;
  double hot_probability = 0.9;
  // Fraction of requests issued as reads (the rest are writes).
  double read_fraction = 0.0;
  // Burst-idle duty cycle: after every `burst_requests` operations the next
  // one carries `idle_time` of think time. 0 disables idling.
  uint64_t burst_requests = 0;
  SimDuration idle_time;
  uint64_t seed = 42;
};

// O(1)-memory Zipf(theta) sampler over ranks [0, n) using Gray et al.'s
// rejection-free approximation (the YCSB generator). Rank 0 is hottest.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double theta);

  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }

 private:
  uint64_t n_ = 1;
  double theta_ = 0.99;
  double zetan_ = 1.0;
  double eta_ = 0.0;
  double alpha_ = 0.0;
};

class SyntheticWorkload : public Workload {
 public:
  explicit SyntheticWorkload(SyntheticWorkloadConfig config);

  bool Next(uint64_t target_bytes, WorkloadOp* op) override;
  void Reset(uint64_t seed) override;
  bool MayRead() const override { return config_.read_fraction > 0.0; }
  void TouchRange(uint64_t target_bytes, uint64_t* start,
                  uint64_t* length) const override;
  const std::string& name() const override { return config_.name; }

  const SyntheticWorkloadConfig& config() const { return config_; }

  // Generator state snapshot, for fleet device parking: the stream continues
  // bit-exactly from a restored state on a workload constructed from the same
  // config. The Zipf sampler is derived state — it is rebuilt lazily on the
  // first post-restore sample and consumes no randomness, so it is not saved.
  void SaveState(SnapshotWriter& w) const;
  Status LoadState(SnapshotReader& r);

  // Region the generator addresses on a target of `target_bytes`:
  // [start, start + slots * request). slots == 0 when the target is smaller
  // than one request.
  void Geometry(uint64_t target_bytes, uint64_t* start, uint64_t* slots) const;

 private:
  uint64_t NextSlot(uint64_t slots);

  SyntheticWorkloadConfig config_;
  Rng rng_;
  uint64_t cursor_ = 0;
  uint64_t issued_bytes_ = 0;
  uint64_t burst_count_ = 0;
  // Lazily built sampler; rebuilt when the slot count changes.
  std::unique_ptr<ZipfSampler> zipf_;
};

}  // namespace flashsim

#endif  // SRC_WORKLOAD_GENERATORS_H_
