// Declarative workload model: a Workload is a deterministic, seedable stream
// of timed I/O operations, independent of what it is driven against. Drivers
// (driver.h) issue the stream at the block-device layer (through the bulk
// SubmitBatch path) or at the file-system layer (through a Phone's mounted
// Filesystem), so one workload definition serves both halves of the paper's
// methodology: raw-chip probes and in-phone app traffic.

#ifndef SRC_WORKLOAD_WORKLOAD_H_
#define SRC_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <string>

#include "src/blockdev/block_device.h"
#include "src/simcore/sim_time.h"

namespace flashsim {

// One operation in a workload stream. Offsets address a flat byte space of
// the driver-provided target size; `pre_idle` is think time the driver lets
// pass on the simulated clock before issuing the request (burst/idle duty
// cycles, recorded inter-arrival gaps).
struct WorkloadOp {
  IoKind kind = IoKind::kWrite;
  uint64_t offset = 0;
  uint64_t length = 0;
  SimDuration pre_idle;
};

class Workload {
 public:
  virtual ~Workload() = default;

  // Produces the next operation for a target of `target_bytes` addressable
  // bytes, which must stay constant for the duration of one drive. Returns
  // false when the stream is exhausted.
  virtual bool Next(uint64_t target_bytes, WorkloadOp* op) = 0;

  // Rewinds the stream and re-seeds any randomness. Generators with no
  // random component ignore the seed but still rewind.
  virtual void Reset(uint64_t seed) = 0;

  // True if the stream may contain reads; drivers use this to prefill the
  // target (reading a never-written page is an error in the simulator).
  virtual bool MayRead() const { return false; }

  // Byte range [*start, *start + *length) the stream may touch on a target
  // of `target_bytes`. Drivers prefill exactly this range before driving a
  // read-bearing stream. The default is the whole target.
  virtual void TouchRange(uint64_t target_bytes, uint64_t* start,
                          uint64_t* length) const {
    *start = 0;
    *length = target_bytes;
  }

  virtual const std::string& name() const = 0;
};

}  // namespace flashsim

#endif  // SRC_WORKLOAD_WORKLOAD_H_
