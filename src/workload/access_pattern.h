// Shared access-pattern vocabulary for workload generators and probes.
//
// Formerly private to wearlab/bandwidth_probe.h; hoisted here so the Figure 1
// probe, the wear-out experiment, and the declarative workload generators all
// agree on one enum. bandwidth_probe.h re-exports it, so existing call sites
// compile unchanged.

#ifndef SRC_WORKLOAD_ACCESS_PATTERN_H_
#define SRC_WORKLOAD_ACCESS_PATTERN_H_

#include <string>

namespace flashsim {

// Spatial shape of a request stream. kSequential and kRandom are the paper's
// two patterns; the rest extend the space uFLIP-style: fixed-stride scans,
// Zipf-skewed popularity, and an explicit hot/cold split.
enum class AccessPattern { kSequential, kRandom, kStrided, kZipf, kHotCold };

const char* AccessPatternName(AccessPattern pattern);

// Parses a pattern name ("sequential"/"seq", "random"/"rand",
// "strided"/"stride", "zipf", "hotcold"/"hot-cold"). Returns false and leaves
// `*out` untouched on unknown input.
bool ParseAccessPattern(const std::string& text, AccessPattern* out);

}  // namespace flashsim

#endif  // SRC_WORKLOAD_ACCESS_PATTERN_H_
