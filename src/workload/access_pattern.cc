#include "src/workload/access_pattern.h"

namespace flashsim {

const char* AccessPatternName(AccessPattern pattern) {
  switch (pattern) {
    case AccessPattern::kSequential:
      return "sequential";
    case AccessPattern::kRandom:
      return "random";
    case AccessPattern::kStrided:
      return "strided";
    case AccessPattern::kZipf:
      return "zipf";
    case AccessPattern::kHotCold:
      return "hotcold";
  }
  return "unknown";
}

bool ParseAccessPattern(const std::string& text, AccessPattern* out) {
  if (text == "sequential" || text == "seq") {
    *out = AccessPattern::kSequential;
  } else if (text == "random" || text == "rand") {
    *out = AccessPattern::kRandom;
  } else if (text == "strided" || text == "stride") {
    *out = AccessPattern::kStrided;
  } else if (text == "zipf") {
    *out = AccessPattern::kZipf;
  } else if (text == "hotcold" || text == "hot-cold") {
    *out = AccessPattern::kHotCold;
  } else {
    return false;
  }
  return true;
}

}  // namespace flashsim
