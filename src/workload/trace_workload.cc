#include "src/workload/trace_workload.h"

#include <utility>

namespace flashsim {

TraceWorkload::TraceWorkload(std::vector<TraceEntry> entries, std::string name)
    : entries_(std::move(entries)), name_(std::move(name)) {
  for (const TraceEntry& entry : entries_) {
    if (entry.kind == IoKind::kRead) {
      has_reads_ = true;
      break;
    }
  }
}

TraceWorkload TraceWorkload::FromRecorder(const TraceRecorder& recorder,
                                          std::string name) {
  return TraceWorkload(recorder.entries(), std::move(name));
}

void TraceWorkload::Reset(uint64_t seed) {
  (void)seed;
  cursor_ = 0;
  prev_completion_ = SimTime();
}

SimDuration TraceWorkload::RecordedIoTime() const {
  SimDuration total;
  for (const TraceEntry& entry : entries_) {
    total += entry.service_time;
  }
  return total;
}

bool TraceWorkload::Next(uint64_t target_bytes, WorkloadOp* op) {
  SimDuration idle;
  while (cursor_ < entries_.size()) {
    const TraceEntry& entry = entries_[cursor_++];
    // Preserve recorded think time between a request's issue and the
    // previous request's completion, accumulating across skipped entries.
    if (entry.issue_time > prev_completion_) {
      idle += entry.issue_time - prev_completion_;
    }
    prev_completion_ = entry.issue_time + entry.service_time;
    if (entry.length > target_bytes) {
      continue;  // cannot fit this request on the target at all
    }
    op->pre_idle = idle;
    op->kind = entry.kind;
    op->length = entry.length;
    op->offset = entry.offset % (target_bytes - entry.length + 1);
    return true;
  }
  return false;
}

}  // namespace flashsim
