#include "src/workload/driver.h"

#include <algorithm>

#include "src/simcore/rng.h"
#include "src/simcore/units.h"

namespace flashsim {

namespace {

constexpr uint64_t kPrefillChunk = 4 * kMiB;

uint32_t CurrentLevel(const HealthReport& health) {
  return health.supported ? std::max(health.life_time_est_a, health.life_time_est_b)
                          : 0;
}

// Polls the health registers, appends one WorkloadLevelRow per level the
// indicator stepped since the last poll, and returns the current level.
uint32_t PollHealth(BlockDevice& device, SimTime start, uint32_t* last_level,
                    WorkloadRunResult* result) {
  const uint32_t level = CurrentLevel(device.QueryHealth());
  while (*last_level < level) {
    ++*last_level;
    result->levels.push_back(WorkloadLevelRow{
        *last_level, result->TotalBytes(),
        (device.clock().Now() - start).ToHoursF()});
  }
  return level;
}

uint64_t AutoPollBytes(const WorkloadDriveOptions& options, uint64_t target_bytes) {
  if (options.health_poll_bytes > 0) {
    return options.health_poll_bytes;
  }
  return std::max<uint64_t>(64 * kKiB, target_bytes / 64);
}

Status PrefillDevice(BlockDevice& device, uint64_t start, uint64_t length) {
  const uint64_t end = std::min(start + length, device.CapacityBytes());
  for (uint64_t off = start; off < end; off += kPrefillChunk) {
    const IoRequest fill{IoKind::kWrite, off, std::min(kPrefillChunk, end - off)};
    Result<IoCompletion> done = device.Submit(fill);
    if (!done.ok()) {
      return done.status();
    }
  }
  return Status::Ok();
}

// Accumulates requests and flushes them through the bulk submission path,
// folding completions into the run result.
class BlockBatcher {
 public:
  BlockBatcher(BlockDevice& device, uint64_t batch_requests, WorkloadRunResult* result)
      : device_(device),
        batch_requests_(std::max<uint64_t>(1, batch_requests)),
        result_(result) {}

  // Returns false once the drive must stop (hard failure or wear-out).
  bool Add(const WorkloadOp& op) {
    pending_.push_back(IoRequest{op.kind, op.offset, op.length});
    return pending_.size() < batch_requests_ || Flush();
  }

  bool Flush() {
    if (pending_.empty()) {
      return true;
    }
    const BatchCompletion done = device_.SubmitBatch(pending_.data(), pending_.size());
    for (size_t i = 0; i < done.requests_completed; ++i) {
      if (pending_[i].kind == IoKind::kRead) {
        result_->bytes_read += pending_[i].length;
      } else if (pending_[i].kind == IoKind::kWrite) {
        result_->bytes_written += pending_[i].length;
      }
    }
    result_->requests += done.requests_completed;
    result_->io_time += done.service_time;
    pending_.clear();
    if (!done.status.ok()) {
      result_->status = done.status;
      result_->bricked = done.status.code() == StatusCode::kUnavailable;
      return false;
    }
    return true;
  }

 private:
  BlockDevice& device_;
  uint64_t batch_requests_;
  WorkloadRunResult* result_;
  std::vector<IoRequest> pending_;
};

}  // namespace

WorkloadRunResult RunWorkloadOnDevice(Workload& workload, BlockDevice& device,
                                      const WorkloadDriveOptions& options) {
  WorkloadRunResult result;
  const uint64_t target = device.CapacityBytes();

  if (options.prefill_for_reads && workload.MayRead()) {
    uint64_t start = 0;
    uint64_t length = 0;
    workload.TouchRange(target, &start, &length);
    const Status prefilled = PrefillDevice(device, start, length);
    if (!prefilled.ok()) {
      result.status = prefilled;
      result.bricked = prefilled.code() == StatusCode::kUnavailable;
      return result;
    }
  }

  BlockBatcher batcher(device, options.batch_requests, &result);
  const uint64_t poll_bytes = AutoPollBytes(options, target);
  const SimTime start_time = device.clock().Now();
  uint32_t last_level = CurrentLevel(device.QueryHealth());
  uint64_t since_poll = 0;
  uint64_t lap = 0;
  workload.Reset(DeriveSeed(options.seed, lap));

  for (;;) {
    WorkloadOp op;
    if (!workload.Next(target, &op)) {
      if (!options.loop) {
        break;
      }
      ++lap;
      workload.Reset(DeriveSeed(options.seed, lap));
      if (!workload.Next(target, &op)) {
        break;  // stream is empty even after a restart
      }
    }
    if (op.pre_idle.nanos() > 0) {
      if (!batcher.Flush()) {
        break;
      }
      device.clock().AdvanceWithCategory(op.pre_idle, "workload-idle");
    }
    if (!batcher.Add(op)) {
      break;
    }
    since_poll += op.length;
    if (since_poll >= poll_bytes) {
      since_poll = 0;
      if (!batcher.Flush()) {
        break;
      }
      const uint32_t level = PollHealth(device, start_time, &last_level, &result);
      if (options.stop_at_level > 0 && level >= options.stop_at_level) {
        result.reached_level = true;
        break;
      }
    }
    if (options.max_bytes > 0 && result.TotalBytes() >= options.max_bytes) {
      break;
    }
  }
  batcher.Flush();
  PollHealth(device, start_time, &last_level, &result);
  result.elapsed = device.clock().Now() - start_time;
  return result;
}

WorkloadRunResult RunWorkloadOnFilesystem(Workload& workload, Filesystem& fs,
                                          const FileLayerLayout& layout,
                                          const WorkloadDriveOptions& options) {
  WorkloadRunResult result;
  const uint64_t target = layout.TargetBytes();
  if (layout.file_count == 0 || layout.file_bytes == 0) {
    result.status = InvalidArgumentError("file layer layout is empty");
    return result;
  }

  // Install phase: create and prefill the working files (excluded from the
  // result's accounting, like the attack app's Install).
  std::vector<std::string> paths;
  paths.reserve(layout.file_count);
  for (uint32_t i = 0; i < layout.file_count; ++i) {
    paths.push_back(layout.dir + "/f" + std::to_string(i));
  }
  for (const std::string& path : paths) {
    if (!fs.Exists(path)) {
      const Status created = fs.Create(path);
      if (!created.ok()) {
        result.status = created;
        return result;
      }
    }
    for (uint64_t off = 0; off < layout.file_bytes; off += kPrefillChunk) {
      const uint64_t len = std::min(kPrefillChunk, layout.file_bytes - off);
      Result<SimDuration> wrote = fs.Write(path, off, len, /*sync=*/false);
      if (!wrote.ok()) {
        result.status = wrote.status();
        result.bricked = wrote.status().code() == StatusCode::kUnavailable;
        return result;
      }
    }
    Result<SimDuration> synced = fs.Fsync(path);
    if (!synced.ok()) {
      result.status = synced.status();
      result.bricked = synced.status().code() == StatusCode::kUnavailable;
      return result;
    }
  }

  BlockDevice& device = fs.device();
  const uint64_t poll_bytes = AutoPollBytes(options, target);
  const SimTime start_time = device.clock().Now();
  uint32_t last_level = CurrentLevel(device.QueryHealth());
  uint64_t since_poll = 0;
  uint64_t lap = 0;
  workload.Reset(DeriveSeed(options.seed, lap));

  for (;;) {
    WorkloadOp op;
    if (!workload.Next(target, &op)) {
      if (!options.loop) {
        break;
      }
      ++lap;
      workload.Reset(DeriveSeed(options.seed, lap));
      if (!workload.Next(target, &op)) {
        break;
      }
    }
    if (op.pre_idle.nanos() > 0) {
      device.clock().AdvanceWithCategory(op.pre_idle, "workload-idle");
    }
    if (op.kind == IoKind::kDiscard) {
      continue;  // no file-layer equivalent of a raw discard
    }
    // Map the flat offset onto the file set; requests straddling a file
    // boundary are clipped to the end of their file.
    const uint64_t flat = std::min(op.offset, target - 1);
    const uint32_t file_index = static_cast<uint32_t>(flat / layout.file_bytes);
    const uint64_t in_file = flat % layout.file_bytes;
    const uint64_t length =
        std::min(op.length, layout.file_bytes - in_file);
    const std::string& path = paths[file_index];
    Result<SimDuration> io =
        op.kind == IoKind::kRead
            ? fs.Read(path, in_file, length)
            : fs.Write(path, in_file, length, layout.sync);
    if (!io.ok()) {
      result.status = io.status();
      result.bricked = io.status().code() == StatusCode::kUnavailable;
      break;
    }
    ++result.requests;
    result.io_time += io.value();
    if (op.kind == IoKind::kRead) {
      result.bytes_read += length;
    } else {
      result.bytes_written += length;
    }
    since_poll += length;
    if (since_poll >= poll_bytes) {
      since_poll = 0;
      const uint32_t level = PollHealth(device, start_time, &last_level, &result);
      if (options.stop_at_level > 0 && level >= options.stop_at_level) {
        result.reached_level = true;
        break;
      }
    }
    if (options.max_bytes > 0 && result.TotalBytes() >= options.max_bytes) {
      break;
    }
  }
  PollHealth(device, start_time, &last_level, &result);
  result.elapsed = device.clock().Now() - start_time;
  return result;
}

}  // namespace flashsim
