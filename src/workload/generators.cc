#include "src/workload/generators.h"

#include <algorithm>
#include <cmath>

#include "src/simcore/snapshot.h"

namespace flashsim {

namespace {

double Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace

ZipfSampler::ZipfSampler(uint64_t n, double theta)
    : n_(std::max<uint64_t>(1, n)), theta_(theta) {
  zetan_ = Zeta(n_, theta_);
  const double zeta2 = Zeta(std::min<uint64_t>(2, n_), theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.UniformDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (n_ >= 2 && uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  const double rank = static_cast<double>(n_) *
                      std::pow(eta_ * u - eta_ + 1.0, alpha_);
  const uint64_t r = static_cast<uint64_t>(rank);
  return r >= n_ ? n_ - 1 : r;
}

SyntheticWorkload::SyntheticWorkload(SyntheticWorkloadConfig config)
    : config_(std::move(config)), rng_(config_.seed) {}

void SyntheticWorkload::Reset(uint64_t seed) {
  rng_.Reseed(seed);
  cursor_ = 0;
  issued_bytes_ = 0;
  burst_count_ = 0;
}

void SyntheticWorkload::Geometry(uint64_t target_bytes, uint64_t* start,
                                 uint64_t* slots) const {
  const uint64_t begin = std::min(config_.start_offset, target_bytes);
  const uint64_t avail = target_bytes - begin;
  uint64_t span;
  if (config_.span_fraction > 0.0) {
    span = static_cast<uint64_t>(config_.span_fraction *
                                 static_cast<double>(target_bytes));
  } else if (config_.span_bytes > 0) {
    span = config_.span_bytes;
  } else {
    span = avail;
  }
  span = std::min(span, avail);
  *start = begin;
  *slots = config_.request_bytes == 0 ? 0 : span / config_.request_bytes;
}

void SyntheticWorkload::TouchRange(uint64_t target_bytes, uint64_t* start,
                                   uint64_t* length) const {
  uint64_t slots = 0;
  Geometry(target_bytes, start, &slots);
  *length = slots * config_.request_bytes;
}

uint64_t SyntheticWorkload::NextSlot(uint64_t slots) {
  switch (config_.pattern) {
    case AccessPattern::kSequential:
      return cursor_++ % slots;
    case AccessPattern::kRandom:
      return rng_.UniformU64(slots);
    case AccessPattern::kStrided: {
      const uint64_t stride_bytes =
          config_.stride_bytes > 0 ? config_.stride_bytes : 8 * config_.request_bytes;
      const uint64_t stride =
          std::max<uint64_t>(1, stride_bytes / config_.request_bytes);
      // Phase-shifted stride: each wrap of the span advances the phase by
      // one, so over enough requests every slot is visited.
      const uint64_t pos = cursor_++ * stride;
      return (pos + pos / slots) % slots;
    }
    case AccessPattern::kZipf: {
      if (zipf_ == nullptr || zipf_->n() != slots) {
        zipf_ = std::make_unique<ZipfSampler>(slots, config_.zipf_theta);
      }
      return zipf_->Sample(rng_);
    }
    case AccessPattern::kHotCold: {
      const uint64_t hot =
          std::max<uint64_t>(1, static_cast<uint64_t>(config_.hot_fraction *
                                                      static_cast<double>(slots)));
      if (hot >= slots || rng_.Bernoulli(config_.hot_probability)) {
        return rng_.UniformU64(std::min(hot, slots));
      }
      return hot + rng_.UniformU64(slots - hot);
    }
  }
  return 0;
}

void SyntheticWorkload::SaveState(SnapshotWriter& w) const {
  w.BeginSection(SnapshotTag("SWKL"));
  for (uint64_t word : rng_.state()) {
    w.U64(word);
  }
  w.U64(cursor_);
  w.U64(issued_bytes_);
  w.U64(burst_count_);
  w.EndSection();
}

Status SyntheticWorkload::LoadState(SnapshotReader& r) {
  FLASHSIM_RETURN_IF_ERROR(r.EnterSection(SnapshotTag("SWKL")));
  std::array<uint64_t, 4> state;
  for (uint64_t& word : state) {
    word = r.U64();
  }
  const uint64_t cursor = r.U64();
  const uint64_t issued = r.U64();
  const uint64_t burst = r.U64();
  r.LeaveSection();
  FLASHSIM_RETURN_IF_ERROR(r.status());
  rng_.set_state(state);
  cursor_ = cursor;
  issued_bytes_ = issued;
  burst_count_ = burst;
  return Status::Ok();
}

bool SyntheticWorkload::Next(uint64_t target_bytes, WorkloadOp* op) {
  if (issued_bytes_ >= config_.total_bytes) {
    return false;
  }
  uint64_t start = 0;
  uint64_t slots = 0;
  Geometry(target_bytes, &start, &slots);
  if (slots == 0) {
    return false;
  }

  op->pre_idle = SimDuration();
  if (config_.burst_requests > 0 && burst_count_ >= config_.burst_requests) {
    op->pre_idle = config_.idle_time;
    burst_count_ = 0;
  }
  // The kind draw happens for every pattern (even pure-write streams draw
  // nothing: Bernoulli(0) short-circuits), keeping streams bit-reproducible.
  op->kind = rng_.Bernoulli(config_.read_fraction) ? IoKind::kRead : IoKind::kWrite;
  op->offset = start + NextSlot(slots) * config_.request_bytes;
  // The final request is clipped so the stream produces exactly total_bytes.
  op->length = std::min(config_.request_bytes, config_.total_bytes - issued_bytes_);
  issued_bytes_ += op->length;
  ++burst_count_;
  return true;
}

}  // namespace flashsim
