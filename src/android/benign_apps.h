// Benign application workload models, used to evaluate the §4.5 defenses
// against realistic non-malicious I/O:
//
//  * CameraApp    — large sequential bursts (shoot a video, dump photos);
//                   the workload a naive rate limiter would hurt most.
//  * SpotifyBugApp— the real-world pathological case the paper cites (§3,
//                   ref [26]): a buggy app rewriting large volumes of junk
//                   cache data continuously. Not malicious, same effect.
//  * MessagingApp — trickle of small sync writes (databases, logs); the
//                   everyday background load on a phone.

#ifndef SRC_ANDROID_BENIGN_APPS_H_
#define SRC_ANDROID_BENIGN_APPS_H_

#include <cstdint>
#include <string>

#include "src/android/android_system.h"
#include "src/simcore/rng.h"

namespace flashsim {

// Common interface: apps run in simulated-time slices.
class BenignApp {
 public:
  virtual ~BenignApp() = default;

  // Performs the app's activity up to `deadline`. Returns OK unless the
  // storage failed underneath it.
  virtual Status RunUntil(SimTime deadline) = 0;

  virtual AppId app_id() const = 0;
  virtual const char* name() const = 0;
  uint64_t bytes_written() const { return bytes_written_; }

 protected:
  uint64_t bytes_written_ = 0;
};

struct CameraAppConfig {
  AppId app_id = 201;
  uint64_t burst_bytes = 300ull * 1024 * 1024;
  SimDuration burst_interval = SimDuration::Hours(1);
  uint64_t chunk_bytes = 4 * 1024 * 1024;
};

// Writes one `burst_bytes` clip every `burst_interval`, then idles.
class CameraApp : public BenignApp {
 public:
  CameraApp(AndroidSystem& system, CameraAppConfig config);

  Status RunUntil(SimTime deadline) override;
  AppId app_id() const override { return config_.app_id; }
  const char* name() const override { return "camera"; }

  // Wall-clock seconds the most recent burst took (benign-app latency — the
  // defense metric).
  double last_burst_seconds() const { return last_burst_seconds_; }

 private:
  AndroidSystem& system_;
  CameraAppConfig config_;
  uint64_t clips_ = 0;
  SimTime next_burst_;
  double last_burst_seconds_ = 0.0;
};

struct SpotifyBugAppConfig {
  AppId app_id = 202;
  // The bug rewrote the same cache files continuously; observed rates were
  // tens of GB/hour.
  uint64_t cache_bytes = 128ull * 1024 * 1024;
  uint64_t write_bytes = 256 * 1024;
  double duty_cycle = 0.5;  // fraction of wall-clock spent writing
};

// Continuously rewrites its cache file at the configured duty cycle.
class SpotifyBugApp : public BenignApp {
 public:
  SpotifyBugApp(AndroidSystem& system, SpotifyBugAppConfig config, uint64_t seed = 21);

  Status RunUntil(SimTime deadline) override;
  AppId app_id() const override { return config_.app_id; }
  const char* name() const override { return "spotify-bug"; }

 private:
  AndroidSystem& system_;
  SpotifyBugAppConfig config_;
  Rng rng_;
  bool installed_ = false;
};

struct MessagingAppConfig {
  AppId app_id = 203;
  uint64_t db_bytes = 16 * 1024 * 1024;
  uint64_t write_bytes = 4096;
  SimDuration write_interval = SimDuration::Seconds(5);
};

// Small synchronous database-style updates on a timer.
class MessagingApp : public BenignApp {
 public:
  MessagingApp(AndroidSystem& system, MessagingAppConfig config, uint64_t seed = 22);

  Status RunUntil(SimTime deadline) override;
  AppId app_id() const override { return config_.app_id; }
  const char* name() const override { return "messaging"; }

 private:
  AndroidSystem& system_;
  MessagingAppConfig config_;
  Rng rng_;
  bool installed_ = false;
};

}  // namespace flashsim

#endif  // SRC_ANDROID_BENIGN_APPS_H_
