#include "src/android/phone_state.h"

namespace flashsim {

PhoneState UsageSchedule::StateAt(SimTime t) const {
  const int64_t seconds_of_day = (t.nanos() / 1000000000) % 86400;
  const uint32_t hour = static_cast<uint32_t>(seconds_of_day / 3600);
  const uint32_t minute_of_day = static_cast<uint32_t>(seconds_of_day / 60);

  PhoneState state;
  // Overnight charging window may wrap midnight.
  if (config_.charge_start_hour > config_.charge_end_hour) {
    state.charging = hour >= config_.charge_start_hour || hour < config_.charge_end_hour;
  } else {
    state.charging = hour >= config_.charge_start_hour && hour < config_.charge_end_hour;
  }

  if (state.charging) {
    // Asleep except a short morning session just after the alarm.
    const uint32_t charge_end_minute = config_.charge_end_hour * 60;
    state.screen_on = minute_of_day >= charge_end_minute - config_.morning_use_minutes &&
                      minute_of_day < charge_end_minute;
  } else {
    // Waking hours: periodic screen-on bursts.
    state.screen_on =
        (minute_of_day % config_.screen_cycle_minutes) < config_.screen_on_minutes;
  }
  return state;
}

double UsageSchedule::StealthWindowFraction() const {
  // Integrate the schedule over one day at minute resolution.
  uint32_t stealth_minutes = 0;
  for (uint32_t m = 0; m < 24 * 60; ++m) {
    const PhoneState s = StateAt(SimTime(static_cast<int64_t>(m) * 60 * 1000000000));
    if (s.charging && !s.screen_on) {
      ++stealth_minutes;
    }
  }
  return static_cast<double>(stealth_minutes) / (24.0 * 60.0);
}

}  // namespace flashsim
