// AndroidSystem: the OS layer between unprivileged apps and the file system.
//
// Mirrors the properties the paper exploits: every app gets a private
// directory it can write without any permission; the system meters power,
// shows running apps, and (optionally, as a defense) accounts and rate-limits
// per-app I/O. The attack app never needs anything beyond this interface —
// exactly the "963 LoC, no special permissions" app of §4.4.

#ifndef SRC_ANDROID_ANDROID_SYSTEM_H_
#define SRC_ANDROID_ANDROID_SYSTEM_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/android/defense.h"
#include "src/android/monitors.h"
#include "src/android/phone_state.h"
#include "src/fs/filesystem.h"

namespace flashsim {

struct AndroidSystemConfig {
  UsageScheduleConfig schedule;
  PowerMonitorConfig power;
  ProcessMonitorConfig process;
  ThermalModelConfig thermal;
  // Defenses are off by default (stock Android, as measured by the paper).
  bool enable_rate_limiter = false;
  RateLimiterConfig rate_limiter;
};

// What the user could have noticed about an app so far.
struct DetectionSummary {
  bool power_flagged = false;
  bool process_flagged = false;
  bool thermal_suspicion = false;
  double attributed_joules = 0.0;
  uint64_t process_samples_caught = 0;
};

class AndroidSystem {
 public:
  // `fs` must outlive the system. The device clock behind `fs` is the
  // system's notion of time.
  AndroidSystem(Filesystem& fs, AndroidSystemConfig config = {});

  // Current simulated time and phone state.
  SimTime Now();
  PhoneState StateNow();
  const UsageSchedule& schedule() const { return schedule_; }

  // Lets simulated wall-clock pass with no I/O (phone idle / app sleeping).
  void AdvanceIdle(SimDuration d);

  // --- App-facing storage API (sandboxed, no permissions needed) ----------

  // Private-directory path for an app's file.
  static std::string SandboxPath(AppId app, const std::string& name);

  Status AppCreate(AppId app, const std::string& name);
  // Writes through the sandbox; applies rate limiting (if enabled), meters
  // power/process/thermal channels, and advances the clock.
  Result<SimDuration> AppWrite(AppId app, const std::string& name, uint64_t offset,
                               uint64_t length, bool sync);
  Result<SimDuration> AppRead(AppId app, const std::string& name, uint64_t offset,
                              uint64_t length);
  Status AppUnlink(AppId app, const std::string& name);

  // --- Telemetry / defenses ------------------------------------------------

  DetectionSummary Detection(AppId app);
  const IoAccountant& accountant() const { return accountant_; }
  WearIndicatorService& wear_service() { return wear_service_; }

  // Polls the wear indicator (as a background service would).
  void PollWearIndicator();

  Filesystem& fs() { return fs_; }
  bool rate_limiter_enabled() const { return limiter_.has_value(); }

 private:
  Filesystem& fs_;
  AndroidSystemConfig config_;
  UsageSchedule schedule_;
  PowerMonitor power_;
  ProcessMonitor process_;
  ThermalModel thermal_;
  IoAccountant accountant_;
  WearIndicatorService wear_service_;
  std::optional<WearRateLimiter> limiter_;
};

}  // namespace flashsim

#endif  // SRC_ANDROID_ANDROID_SYSTEM_H_
