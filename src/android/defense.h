// Defenses sketched in §4.5 of the paper, made concrete:
//
//  * WearIndicatorService — expose the JEDEC wear indicator to the user,
//    S.M.A.R.T.-style, with alert thresholds.
//  * IoAccountant — per-app storage-I/O accounting, like the cellular data
//    usage UI, so the user can find the app squandering the flash.
//  * WearRateLimiter — a token-bucket write budget derived from the device's
//    rated endurance and a target lifespan. A burst allowance keeps benign
//    bursty apps (file transfers) usable while capping sustained abuse; a
//    selective mode only throttles apps exceeding their fair share.

#ifndef SRC_ANDROID_DEFENSE_H_
#define SRC_ANDROID_DEFENSE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/android/monitors.h"
#include "src/blockdev/block_device.h"
#include "src/simcore/sim_time.h"

namespace flashsim {

// --- Wear indicator exposure -------------------------------------------------

struct WearAlert {
  SimTime time;
  uint32_t level = 0;   // JEDEC level that triggered the alert
  std::string message;
};

class WearIndicatorService {
 public:
  // Alerts fire when LIFE_TIME_EST (max of A/B) reaches each threshold.
  explicit WearIndicatorService(std::vector<uint32_t> alert_levels = {8, 10, 11})
      : alert_levels_(std::move(alert_levels)) {}

  // Polls the device and records alerts for newly crossed thresholds.
  void Poll(BlockDevice& device, SimTime now);

  const std::vector<WearAlert>& alerts() const { return alerts_; }
  uint32_t last_seen_level() const { return last_seen_level_; }

 private:
  std::vector<uint32_t> alert_levels_;
  std::vector<WearAlert> alerts_;
  uint32_t last_seen_level_ = 0;
};

// --- Per-app I/O accounting --------------------------------------------------

struct AppIoUsage {
  uint64_t bytes_written = 0;
  uint64_t bytes_read = 0;
  uint64_t write_ops = 0;
};

class IoAccountant {
 public:
  void RecordWrite(AppId app, uint64_t bytes);
  void RecordRead(AppId app, uint64_t bytes);

  AppIoUsage Usage(AppId app) const;

  // Apps sorted by bytes written, descending — the "which app is killing my
  // flash" view.
  std::vector<std::pair<AppId, AppIoUsage>> TopWriters() const;

 private:
  std::map<AppId, AppIoUsage> usage_;
};

// --- Write rate limiting -----------------------------------------------------

struct RateLimiterConfig {
  // Target device lifespan the budget must guarantee.
  double target_lifetime_days = 3 * 365.0;
  // Full-device rewrites the device is rated for (endurance / WA margin).
  double rated_rewrites = 1000.0;
  // Token bucket burst: how many bytes an app may write at full speed before
  // throttling kicks in. Sized to keep file transfers unharmed.
  uint64_t burst_bytes = 2ull * 1024 * 1024 * 1024;
  // Selective mode: throttle only apps whose sustained rate exceeds their
  // fair share; non-selective throttles everyone proportionally.
  bool selective = true;
};

// Decision for one write: how long the writer must wait before the write may
// proceed (zero = no throttling).
struct ThrottleDecision {
  SimDuration delay;
  bool throttled = false;
};

class WearRateLimiter {
 public:
  // `device_capacity_bytes` sizes the lifetime budget.
  WearRateLimiter(RateLimiterConfig config, uint64_t device_capacity_bytes);

  // Sustainable device-wide write rate implied by the lifespan target.
  double BudgetBytesPerSec() const { return budget_bytes_per_sec_; }

  // Accounts a write of `bytes` by `app` at `now` and returns the delay the
  // system must impose on the app before admitting it.
  ThrottleDecision Admit(AppId app, uint64_t bytes, SimTime now);

 private:
  struct Bucket {
    double tokens = 0.0;   // bytes of accumulated allowance
    SimTime last_refill;
    bool initialized = false;
  };

  RateLimiterConfig config_;
  double budget_bytes_per_sec_;
  std::map<AppId, Bucket> buckets_;
};

}  // namespace flashsim

#endif  // SRC_ANDROID_DEFENSE_H_
