#include "src/android/android_system.h"

namespace flashsim {

AndroidSystem::AndroidSystem(Filesystem& fs, AndroidSystemConfig config)
    : fs_(fs),
      config_(config),
      schedule_(config.schedule),
      power_(config.power),
      process_(config.process),
      thermal_(config.thermal) {
  if (config_.enable_rate_limiter) {
    limiter_.emplace(config_.rate_limiter, fs_.device().CapacityBytes());
  }
}

SimTime AndroidSystem::Now() { return fs_.device().clock().Now(); }

PhoneState AndroidSystem::StateNow() { return schedule_.StateAt(Now()); }

void AndroidSystem::AdvanceIdle(SimDuration d) {
  fs_.device().clock().AdvanceWithCategory(d, "idle");
}

std::string AndroidSystem::SandboxPath(AppId app, const std::string& name) {
  return "data/app" + std::to_string(app) + "/" + name;
}

Status AndroidSystem::AppCreate(AppId app, const std::string& name) {
  return fs_.Create(SandboxPath(app, name));
}

Result<SimDuration> AndroidSystem::AppWrite(AppId app, const std::string& name,
                                            uint64_t offset, uint64_t length,
                                            bool sync) {
  SimDuration throttle_delay;
  if (limiter_.has_value()) {
    const ThrottleDecision decision = limiter_->Admit(app, length, Now());
    if (decision.throttled) {
      // The app blocks until its budget refills; the wait is real wall-clock
      // time during which the flash is *not* being written.
      AdvanceIdle(decision.delay);
      throttle_delay = decision.delay;
    }
  }
  const SimTime start = Now();
  const PhoneState state = schedule_.StateAt(start);
  Result<SimDuration> io = fs_.Write(SandboxPath(app, name), offset, length, sync);
  if (!io.ok()) {
    return io.status();
  }
  const SimTime end = Now();
  accountant_.RecordWrite(app, length);
  power_.RecordIo(app, length, start, state);
  process_.ObserveIo(app, start, end, schedule_);
  thermal_.RecordIo(length, end);
  return throttle_delay + io.value();
}

Result<SimDuration> AndroidSystem::AppRead(AppId app, const std::string& name,
                                           uint64_t offset, uint64_t length) {
  const SimTime start = Now();
  const PhoneState state = schedule_.StateAt(start);
  Result<SimDuration> io = fs_.Read(SandboxPath(app, name), offset, length);
  if (!io.ok()) {
    return io.status();
  }
  accountant_.RecordRead(app, length);
  power_.RecordIo(app, length, start, state);
  process_.ObserveIo(app, start, Now(), schedule_);
  return io.value();
}

Status AndroidSystem::AppUnlink(AppId app, const std::string& name) {
  return fs_.Unlink(SandboxPath(app, name));
}

DetectionSummary AndroidSystem::Detection(AppId app) {
  DetectionSummary summary;
  const SimTime now = Now();
  summary.power_flagged = power_.IsFlagged(app, now);
  summary.process_flagged = process_.IsFlagged(app);
  summary.thermal_suspicion = thermal_.IsSuspicious(now, StateNow());
  summary.attributed_joules = power_.AttributedJoules(app);
  summary.process_samples_caught = process_.SamplesCaught(app);
  return summary;
}

void AndroidSystem::PollWearIndicator() {
  wear_service_.Poll(fs_.device(), Now());
}

}  // namespace flashsim
