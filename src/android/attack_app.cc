#include "src/android/attack_app.h"

#include <algorithm>

namespace flashsim {

namespace {
// Installation writes in large chunks — the app only needs the files to
// exist; the attack proper uses the configured write size.
constexpr uint64_t kInstallChunk = 4ull * 1024 * 1024;
// Granularity of the stealth sleep loop.
constexpr int64_t kSleepStepNanos = 60ll * 1000000000;  // one minute
}  // namespace

const char* AttackPolicyName(AttackPolicy policy) {
  switch (policy) {
    case AttackPolicy::kAggressive:
      return "aggressive";
    case AttackPolicy::kStealth:
      return "stealth";
  }
  return "unknown";
}

WearAttackApp::WearAttackApp(AndroidSystem& system, AttackAppConfig config,
                             uint64_t seed)
    : system_(system), config_(config), rng_(seed) {}

std::string WearAttackApp::FileName(uint32_t index) const {
  return "wear" + std::to_string(index) + ".dat";
}

Status WearAttackApp::Install() {
  for (uint32_t f = 0; f < config_.file_count; ++f) {
    FLASHSIM_RETURN_IF_ERROR(system_.AppCreate(config_.app_id, FileName(f)));
    for (uint64_t off = 0; off < config_.file_bytes; off += kInstallChunk) {
      const uint64_t len = std::min(kInstallChunk, config_.file_bytes - off);
      Result<SimDuration> w =
          system_.AppWrite(config_.app_id, FileName(f), off, len, /*sync=*/false);
      if (!w.ok()) {
        return w.status();
      }
    }
    Result<SimDuration> sync = system_.fs().Fsync(
        AndroidSystem::SandboxPath(config_.app_id, FileName(f)));
    if (!sync.ok()) {
      return sync.status();
    }
  }
  installed_ = true;
  return Status::Ok();
}

bool WearAttackApp::AllowedNow() {
  if (config_.policy == AttackPolicy::kAggressive) {
    return true;
  }
  const PhoneState state = system_.StateNow();
  return state.charging && !state.screen_on;
}

void WearAttackApp::SleepUntilAllowed(SimTime deadline, AttackProgress& progress) {
  while (!AllowedNow() && system_.Now() < deadline) {
    system_.AdvanceIdle(SimDuration(kSleepStepNanos));
    ++progress.idle_skips;
  }
}

AttackProgress WearAttackApp::RunUntil(SimTime deadline) {
  return RunSlice(UINT64_MAX, deadline);
}

AttackProgress WearAttackApp::RunSlice(uint64_t max_bytes, SimTime deadline) {
  AttackProgress progress;
  if (!installed_) {
    progress.last_error = FailedPreconditionError("attack app not installed");
    return progress;
  }
  const uint64_t writes_per_file = config_.file_bytes / config_.write_bytes;
  while (system_.Now() < deadline && progress.bytes_written < max_bytes) {
    if (!AllowedNow()) {
      SleepUntilAllowed(deadline, progress);
      continue;
    }
    const uint32_t file = static_cast<uint32_t>(
        config_.random_offsets ? rng_.UniformU64(config_.file_count)
                               : (sweep_cursor_ / writes_per_file) % config_.file_count);
    const uint64_t slot = config_.random_offsets
                              ? rng_.UniformU64(writes_per_file)
                              : sweep_cursor_ % writes_per_file;
    ++sweep_cursor_;
    Result<SimDuration> w =
        system_.AppWrite(config_.app_id, FileName(file), slot * config_.write_bytes,
                         config_.write_bytes, config_.sync);
    if (!w.ok()) {
      progress.last_error = w.status();
      if (w.status().code() == StatusCode::kUnavailable) {
        progress.device_bricked = true;  // flash refused the write: dead phone
      }
      return progress;
    }
    progress.bytes_written += config_.write_bytes;
    total_bytes_ += config_.write_bytes;
    ++progress.writes_issued;
  }
  return progress;
}

AttackProgress WearAttackApp::RunUntilBricked(SimDuration max_sim_time) {
  AttackProgress total;
  const SimTime deadline = system_.Now() + max_sim_time;
  while (system_.Now() < deadline) {
    AttackProgress slice = RunUntil(deadline);
    total.bytes_written += slice.bytes_written;
    total.writes_issued += slice.writes_issued;
    total.idle_skips += slice.idle_skips;
    total.last_error = slice.last_error;
    if (slice.device_bricked) {
      total.device_bricked = true;
      return total;
    }
    if (!slice.last_error.ok()) {
      return total;  // non-brick error: stop rather than loop forever
    }
  }
  return total;
}

}  // namespace flashsim
