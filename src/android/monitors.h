// The two detection channels the paper evaluates (§4.4 "Detection"), plus a
// thermal channel it mentions as future work.
//
//  * PowerMonitor — Android's battery attribution: charges an app for I/O
//    energy only while the phone is on battery. An app whose daily battery
//    share crosses a threshold shows up in the battery-usage UI.
//  * ProcessMonitor — the running-apps view: samples roughly once per second
//    while the screen is on; an app repeatedly seen doing I/O is flagged.
//  * ThermalModel — sustained writes heat the device; heat while charging is
//    commonly attributed to the charger itself, so the monitor discounts it.

#ifndef SRC_ANDROID_MONITORS_H_
#define SRC_ANDROID_MONITORS_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/android/phone_state.h"
#include "src/simcore/sim_time.h"

namespace flashsim {

using AppId = uint32_t;

struct PowerMonitorConfig {
  // Energy cost of storage I/O attributed to the issuing app.
  double joules_per_gib = 40.0;
  // Daily battery-energy threshold above which the app is surfaced to the
  // user as a top consumer.
  double flag_threshold_joules_per_day = 50.0;
};

class PowerMonitor {
 public:
  explicit PowerMonitor(PowerMonitorConfig config = {}) : config_(config) {}

  // Records `bytes` of I/O by `app` at time `now` under phone state `state`.
  // Only on-battery I/O is attributed (the evasion the paper demonstrates).
  void RecordIo(AppId app, uint64_t bytes, SimTime now, const PhoneState& state);

  // Attributed on-battery energy for the app, in joules.
  double AttributedJoules(AppId app) const;

  // True if the app's average daily attributed energy crossed the threshold.
  bool IsFlagged(AppId app, SimTime now) const;

 private:
  PowerMonitorConfig config_;
  std::map<AppId, double> joules_;
};

struct ProcessMonitorConfig {
  // Sampling period of the running-apps view.
  SimDuration sample_period = SimDuration::Seconds(1);
  // Number of screen-on samples catching the app doing I/O before the user
  // is assumed to notice it.
  uint32_t flag_after_samples = 10;
};

class ProcessMonitor {
 public:
  explicit ProcessMonitor(ProcessMonitorConfig config = {}) : config_(config) {}

  // Called for each I/O burst; samples the interval [start, end) and counts
  // screen-on samples during which `app` was actively doing I/O.
  void ObserveIo(AppId app, SimTime start, SimTime end, const UsageSchedule& schedule);

  uint64_t SamplesCaught(AppId app) const;
  bool IsFlagged(AppId app) const;

 private:
  ProcessMonitorConfig config_;
  std::map<AppId, uint64_t> caught_;
  SimTime next_sample_;
};

struct ThermalModelConfig {
  // Temperature rise per GiB written, and exponential cool-down constant.
  double celsius_per_gib = 0.8;
  double cooldown_half_life_seconds = 600.0;
  double ambient_celsius = 25.0;
  // User notices an abnormally hot phone above this, unless charging (heat
  // is then attributed to the charger).
  double suspicion_celsius = 41.0;
};

class ThermalModel {
 public:
  explicit ThermalModel(ThermalModelConfig config = {}) : config_(config) {}

  void RecordIo(uint64_t bytes, SimTime now);
  double TemperatureAt(SimTime now) const;
  bool IsSuspicious(SimTime now, const PhoneState& state) const;

 private:
  ThermalModelConfig config_;
  double excess_celsius_ = 0.0;
  SimTime last_update_;
};

}  // namespace flashsim

#endif  // SRC_ANDROID_MONITORS_H_
