// WearAttackApp: the paper's trivial, unprivileged wear-out app (§4.4).
//
// The real app was 963 lines, "mostly UI and Android hooks"; the essence is
// a loop that rewrites 100 MB files in the app's private storage. Two
// scheduling policies are modelled:
//
//  * kAggressive — write whenever the process is scheduled (the bench that
//    bricked the paper's phones).
//  * kStealth    — write only while charging with the screen off, evading
//    both the power monitor and the process monitor.

#ifndef SRC_ANDROID_ATTACK_APP_H_
#define SRC_ANDROID_ATTACK_APP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/android/android_system.h"
#include "src/simcore/rng.h"

namespace flashsim {

enum class AttackPolicy { kAggressive, kStealth };

const char* AttackPolicyName(AttackPolicy policy);

struct AttackAppConfig {
  AppId app_id = 100;
  uint32_t file_count = 4;
  uint64_t file_bytes = 100ull * 1024 * 1024;
  // I/O unit per write call; 4 KiB sync rewrites are the paper's workload.
  uint64_t write_bytes = 4096;
  bool sync = true;
  // Random offsets within the files (vs. sequential sweep).
  bool random_offsets = true;
  AttackPolicy policy = AttackPolicy::kAggressive;
};

// Progress report from a run slice.
struct AttackProgress {
  uint64_t bytes_written = 0;
  uint64_t writes_issued = 0;
  uint64_t idle_skips = 0;    // times the stealth policy paused the attack
  bool device_bricked = false;
  Status last_error;
};

class WearAttackApp {
 public:
  WearAttackApp(AndroidSystem& system, AttackAppConfig config, uint64_t seed = 7);

  // Creates and fills the working files (the app's steady-state footprint —
  // under 3% of an 16 GB device, as the paper stresses).
  Status Install();

  // Runs the attack until `deadline` (simulated) or until the device bricks,
  // whichever comes first. Respects the scheduling policy: outside the
  // allowed window the app sleeps and the clock advances without I/O.
  AttackProgress RunUntil(SimTime deadline);

  // Like RunUntil, but also stops after `max_bytes` of writes — used by
  // experiment drivers that must poll the wear indicator at byte granularity.
  AttackProgress RunSlice(uint64_t max_bytes, SimTime deadline);

  // Runs until the device bricks (device read-only / write failure), with a
  // safety cap. Returns total progress.
  AttackProgress RunUntilBricked(SimDuration max_sim_time);

  uint64_t total_bytes_written() const { return total_bytes_; }
  const AttackAppConfig& config() const { return config_; }

 private:
  bool AllowedNow();
  // Sleeps (simulated) until the policy allows running again.
  void SleepUntilAllowed(SimTime deadline, AttackProgress& progress);
  std::string FileName(uint32_t index) const;

  AndroidSystem& system_;
  AttackAppConfig config_;
  Rng rng_;
  uint64_t total_bytes_ = 0;
  uint64_t sweep_cursor_ = 0;
  bool installed_ = false;
};

}  // namespace flashsim

#endif  // SRC_ANDROID_ATTACK_APP_H_
