#include "src/android/monitors.h"

#include <algorithm>
#include <cmath>

#include "src/simcore/units.h"

namespace flashsim {

void PowerMonitor::RecordIo(AppId app, uint64_t bytes, SimTime now,
                            const PhoneState& state) {
  (void)now;
  if (state.charging) {
    return;  // battery stats do not attribute while charging
  }
  joules_[app] += BytesToGiB(bytes) * config_.joules_per_gib;
}

double PowerMonitor::AttributedJoules(AppId app) const {
  auto it = joules_.find(app);
  return it == joules_.end() ? 0.0 : it->second;
}

bool PowerMonitor::IsFlagged(AppId app, SimTime now) const {
  const double days = std::max(now.ToHoursF() / 24.0, 1e-9);
  // Within the first day, compare against the full-day budget rather than
  // extrapolating a few minutes of burst into a huge daily rate.
  const double daily = AttributedJoules(app) / std::max(days, 1.0);
  return daily > config_.flag_threshold_joules_per_day;
}

void ProcessMonitor::ObserveIo(AppId app, SimTime start, SimTime end,
                               const UsageSchedule& schedule) {
  if (next_sample_ < start) {
    const int64_t period = config_.sample_period.nanos();
    const int64_t k = (start.nanos() - next_sample_.nanos() + period - 1) / period;
    next_sample_ = SimTime(next_sample_.nanos() + k * period);
  }
  while (next_sample_ < end) {
    if (schedule.StateAt(next_sample_).screen_on) {
      ++caught_[app];
    }
    next_sample_ += config_.sample_period;
  }
}

uint64_t ProcessMonitor::SamplesCaught(AppId app) const {
  auto it = caught_.find(app);
  return it == caught_.end() ? 0 : it->second;
}

bool ProcessMonitor::IsFlagged(AppId app) const {
  return SamplesCaught(app) >= config_.flag_after_samples;
}

void ThermalModel::RecordIo(uint64_t bytes, SimTime now) {
  const double dt = (now - last_update_).ToSecondsF();
  if (dt > 0) {
    excess_celsius_ *= std::exp2(-dt / config_.cooldown_half_life_seconds);
    last_update_ = now;
  }
  excess_celsius_ += BytesToGiB(bytes) * config_.celsius_per_gib;
}

double ThermalModel::TemperatureAt(SimTime now) const {
  const double dt = std::max(0.0, (now - last_update_).ToSecondsF());
  const double excess =
      excess_celsius_ * std::exp2(-dt / config_.cooldown_half_life_seconds);
  return config_.ambient_celsius + excess;
}

bool ThermalModel::IsSuspicious(SimTime now, const PhoneState& state) const {
  if (state.charging) {
    return false;  // heat attributed to the charging process (§4.4)
  }
  return TemperatureAt(now) > config_.suspicion_celsius;
}

}  // namespace flashsim
