#include "src/android/benign_apps.h"

#include <algorithm>

namespace flashsim {

// --- CameraApp ---------------------------------------------------------------

CameraApp::CameraApp(AndroidSystem& system, CameraAppConfig config)
    : system_(system), config_(config) {
  next_burst_ = system_.Now();
}

Status CameraApp::RunUntil(SimTime deadline) {
  while (next_burst_ < deadline) {
    // Idle until the next clip.
    if (system_.Now() < next_burst_) {
      system_.AdvanceIdle(next_burst_ - system_.Now());
    }
    const std::string clip = "clip" + std::to_string(clips_++) + ".mp4";
    FLASHSIM_RETURN_IF_ERROR(system_.AppCreate(config_.app_id, clip));
    const SimTime burst_start = system_.Now();
    for (uint64_t off = 0; off < config_.burst_bytes; off += config_.chunk_bytes) {
      const uint64_t len = std::min(config_.chunk_bytes, config_.burst_bytes - off);
      Result<SimDuration> w =
          system_.AppWrite(config_.app_id, clip, off, len, /*sync=*/false);
      if (!w.ok()) {
        return w.status();
      }
      bytes_written_ += len;
    }
    last_burst_seconds_ = (system_.Now() - burst_start).ToSecondsF();
    next_burst_ += config_.burst_interval;
  }
  if (system_.Now() < deadline) {
    system_.AdvanceIdle(deadline - system_.Now());
  }
  return Status::Ok();
}

// --- SpotifyBugApp -----------------------------------------------------------

SpotifyBugApp::SpotifyBugApp(AndroidSystem& system, SpotifyBugAppConfig config,
                             uint64_t seed)
    : system_(system), config_(config), rng_(seed) {}

Status SpotifyBugApp::RunUntil(SimTime deadline) {
  if (!installed_) {
    FLASHSIM_RETURN_IF_ERROR(system_.AppCreate(config_.app_id, "mercury.db"));
    installed_ = true;
  }
  const uint64_t slots = config_.cache_bytes / config_.write_bytes;
  while (system_.Now() < deadline) {
    const uint64_t slot = rng_.UniformU64(slots);
    const SimTime io_start = system_.Now();
    Result<SimDuration> w = system_.AppWrite(
        config_.app_id, "mercury.db", slot * config_.write_bytes, config_.write_bytes,
        /*sync=*/false);
    if (!w.ok()) {
      return w.status();
    }
    bytes_written_ += config_.write_bytes;
    // Duty cycle: idle in proportion to the I/O time just spent.
    const double io_seconds = (system_.Now() - io_start).ToSecondsF();
    const double idle_seconds = io_seconds * (1.0 - config_.duty_cycle) /
                                std::max(config_.duty_cycle, 1e-6);
    if (idle_seconds > 0) {
      system_.AdvanceIdle(SimDuration::FromSecondsF(idle_seconds));
    }
  }
  return Status::Ok();
}

// --- MessagingApp ------------------------------------------------------------

MessagingApp::MessagingApp(AndroidSystem& system, MessagingAppConfig config,
                           uint64_t seed)
    : system_(system), config_(config), rng_(seed) {}

Status MessagingApp::RunUntil(SimTime deadline) {
  if (!installed_) {
    FLASHSIM_RETURN_IF_ERROR(system_.AppCreate(config_.app_id, "messages.db"));
    installed_ = true;
  }
  const uint64_t slots = config_.db_bytes / config_.write_bytes;
  while (system_.Now() < deadline) {
    const uint64_t slot = rng_.UniformU64(slots);
    Result<SimDuration> w = system_.AppWrite(
        config_.app_id, "messages.db", slot * config_.write_bytes, config_.write_bytes,
        /*sync=*/true);
    if (!w.ok()) {
      return w.status();
    }
    bytes_written_ += config_.write_bytes;
    const SimTime next = system_.Now() + config_.write_interval;
    if (next > deadline) {
      system_.AdvanceIdle(deadline - system_.Now());
      break;
    }
    system_.AdvanceIdle(config_.write_interval);
  }
  return Status::Ok();
}

}  // namespace flashsim
