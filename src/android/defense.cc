#include "src/android/defense.h"

#include <algorithm>

namespace flashsim {

void WearIndicatorService::Poll(BlockDevice& device, SimTime now) {
  const HealthReport health = device.QueryHealth();
  if (!health.supported) {
    return;
  }
  const uint32_t level = std::max(health.life_time_est_a, health.life_time_est_b);
  for (uint32_t threshold : alert_levels_) {
    if (level >= threshold && last_seen_level_ < threshold) {
      WearAlert alert;
      alert.time = now;
      alert.level = level;
      alert.message = "storage lifetime estimate reached level " +
                      std::to_string(level) + "/11";
      alerts_.push_back(std::move(alert));
    }
  }
  last_seen_level_ = std::max(last_seen_level_, level);
}

void IoAccountant::RecordWrite(AppId app, uint64_t bytes) {
  AppIoUsage& u = usage_[app];
  u.bytes_written += bytes;
  ++u.write_ops;
}

void IoAccountant::RecordRead(AppId app, uint64_t bytes) {
  usage_[app].bytes_read += bytes;
}

AppIoUsage IoAccountant::Usage(AppId app) const {
  auto it = usage_.find(app);
  return it == usage_.end() ? AppIoUsage{} : it->second;
}

std::vector<std::pair<AppId, AppIoUsage>> IoAccountant::TopWriters() const {
  std::vector<std::pair<AppId, AppIoUsage>> out(usage_.begin(), usage_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second.bytes_written > b.second.bytes_written;
  });
  return out;
}

WearRateLimiter::WearRateLimiter(RateLimiterConfig config, uint64_t device_capacity_bytes)
    : config_(config) {
  const double lifetime_seconds = config_.target_lifetime_days * 86400.0;
  budget_bytes_per_sec_ = static_cast<double>(device_capacity_bytes) *
                          config_.rated_rewrites / lifetime_seconds;
}

ThrottleDecision WearRateLimiter::Admit(AppId app, uint64_t bytes, SimTime now) {
  // Selective mode keys buckets per app, so a well-behaved app never pays for
  // an abusive one; non-selective mode shares one global budget (the naive
  // design §4.5 warns would hurt benign bursty apps).
  Bucket& bucket = buckets_[config_.selective ? app : 0];
  if (!bucket.initialized) {
    bucket.tokens = static_cast<double>(config_.burst_bytes);
    bucket.last_refill = now;
    bucket.initialized = true;
  }
  // Refill at the budget rate (per-app fair share is the whole budget here;
  // contention between apps is resolved by the device queue anyway).
  const double dt = (now - bucket.last_refill).ToSecondsF();
  if (dt > 0) {
    bucket.tokens = std::min(static_cast<double>(config_.burst_bytes),
                             bucket.tokens + dt * budget_bytes_per_sec_);
    bucket.last_refill = now;
  }
  ThrottleDecision decision;
  if (bucket.tokens >= static_cast<double>(bytes)) {
    bucket.tokens -= static_cast<double>(bytes);
    return decision;  // within burst allowance
  }
  // Not enough tokens: the app must wait for the deficit to refill.
  const double deficit = static_cast<double>(bytes) - bucket.tokens;
  bucket.tokens = 0.0;
  decision.throttled = true;
  decision.delay = SimDuration::FromSecondsF(deficit / budget_bytes_per_sec_);
  return decision;
}

}  // namespace flashsim
