// Phone usage model: charging and screen state over simulated time.
//
// The paper's stealth analysis (§4.4) hinges on two observations: Android
// only attributes energy while on battery, and the process monitor is only
// in front of the user's eyes while the screen is lit. A deterministic daily
// schedule gives the attack app exactly those signals.

#ifndef SRC_ANDROID_PHONE_STATE_H_
#define SRC_ANDROID_PHONE_STATE_H_

#include <cstdint>

#include "src/simcore/sim_time.h"

namespace flashsim {

// Instantaneous phone state.
struct PhoneState {
  bool charging = false;
  bool screen_on = false;
};

// Configurable deterministic daily schedule.
struct UsageScheduleConfig {
  // Overnight charging window [start, end) in hours-of-day.
  uint32_t charge_start_hour = 23;
  uint32_t charge_end_hour = 7;
  // During waking hours the screen lights for `screen_on_minutes` out of
  // every `screen_cycle_minutes`.
  uint32_t screen_cycle_minutes = 30;
  uint32_t screen_on_minutes = 6;
  // Brief morning screen-on session while still on the charger.
  uint32_t morning_use_minutes = 30;
};

// Maps a simulated instant to phone state. Day 0 starts at midnight.
class UsageSchedule {
 public:
  explicit UsageSchedule(UsageScheduleConfig config = {}) : config_(config) {}

  PhoneState StateAt(SimTime t) const;

  // Fraction of each day that is charging with the screen off — the stealth
  // attack's usable window.
  double StealthWindowFraction() const;

  const UsageScheduleConfig& config() const { return config_; }

 private:
  UsageScheduleConfig config_;
};

}  // namespace flashsim

#endif  // SRC_ANDROID_PHONE_STATE_H_
