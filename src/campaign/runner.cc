#include "src/campaign/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "src/simcore/units.h"
#include "src/wearlab/phone.h"

namespace flashsim {

namespace {

// Default per-run byte cap for wear runs that specify none: enough volume to
// wear any catalog device through several levels at typical sim scales, while
// bounding runaway streams on devices that wear slowly.
constexpr uint64_t kDefaultWearCap = 1 * kTiB;

WorkloadDriveOptions DriveOptionsFor(const RunSpec& run) {
  WorkloadDriveOptions opts;
  opts.batch_requests = run.batch_requests;
  opts.seed = DeriveSeed(run.seed, 1);  // stream 0 seeds the device itself
  if (run.metric == RunMetric::kWear) {
    opts.loop = true;
    opts.stop_at_level = run.target_level;
    opts.max_bytes = run.max_bytes > 0 ? run.max_bytes : kDefaultWearCap;
  }
  return opts;
}

void FillCommon(const RunSpec& run, const WorkloadRunResult& result,
                FlashDevice& device, RunRecord* record) {
  record->status = result.status;
  record->requests = result.requests;
  record->bytes_written = result.bytes_written;
  record->bytes_read = result.bytes_read;
  record->sim_seconds = result.elapsed.ToSecondsF();
  record->io_seconds = result.io_time.ToSecondsF();
  record->write_mib_per_sec = result.WriteMiBps();
  const FtlStats ftl_stats = device.ftl().Stats();
  record->device_wa = ftl_stats.WriteAmplification();
  record->gc_picks = ftl_stats.gc_victim_picks;
  record->gc_candidates = ftl_stats.gc_victim_candidates;
  record->victim_index_rebuilds = ftl_stats.victim_index_rebuilds;
  record->reached_target = result.reached_level;
  record->bricked = result.bricked;
  record->levels = result.levels;
  const HealthReport health = device.QueryHealth();
  if (health.supported) {
    record->level_a = health.life_time_est_a;
    record->level_b = health.life_time_est_b;
  }
  if (const WearDigest* wd = device.write_latency_digest()) {
    record->write_lat_count = wd->count();
    record->write_lat_p50_us = wd->Quantile(0.50);
    record->write_lat_p95_us = wd->Quantile(0.95);
    record->write_lat_p99_us = wd->Quantile(0.99);
  }
  if (const WearDigest* rd = device.read_latency_digest()) {
    record->read_lat_count = rd->count();
    record->read_lat_p50_us = rd->Quantile(0.50);
    record->read_lat_p95_us = rd->Quantile(0.95);
    record->read_lat_p99_us = rd->Quantile(0.99);
  }
  record->volume_factor = run.scale.VolumeFactor();
}

}  // namespace

RunRecord ExecuteRun(const RunSpec& run) {
  RunRecord record;
  record.index = run.index;
  record.grid = run.grid;
  record.layer = RunLayerName(run.layer);
  record.metric = RunMetricName(run.metric);
  record.device = run.device;
  record.fs = run.has_fs ? PhoneFsTypeName(run.fs) : "-";
  record.workload = run.workload.name;
  record.seed = run.seed;
  record.volume_factor = run.scale.VolumeFactor();
  record.fs_wa = 1.0;

  const CampaignDevice* entry = FindCampaignDevice(run.device);
  if (entry == nullptr) {
    record.status = NotFoundError("unknown device slug: " + run.device);
    return record;
  }
  std::unique_ptr<FlashDevice> device = entry->make(run.scale, DeriveSeed(run.seed, 0));
  device->ConfigureQueue(run.channels, run.queue_depth, run.force_event_engine);
  device->EnableLatencyDigests();
  SyntheticWorkload workload(run.workload);
  const WorkloadDriveOptions opts = DriveOptionsFor(run);

  if (run.layer == RunLayer::kBlock) {
    const WorkloadRunResult result = RunWorkloadOnDevice(workload, *device, opts);
    FillCommon(run, result, *device, &record);
    return record;
  }

  // Phone layer: mount the requested file system, fill static data to the
  // requested utilization, then drive the workload through the file set.
  Phone phone(std::move(device), run.fs);
  if (run.utilization > 0.0) {
    const Status filled = phone.FillStaticData(run.utilization);
    if (!filled.ok()) {
      record.status = filled;
      return record;
    }
  }
  FileLayerLayout layout;
  layout.file_count = run.file_count;
  layout.file_bytes =
      std::max<uint64_t>(run.workload.request_bytes,
                         run.file_bytes / run.scale.capacity_div);
  layout.sync = run.sync;
  const WorkloadRunResult result =
      RunWorkloadOnFilesystem(workload, phone.fs(), layout, opts);
  FillCommon(run, result, phone.device(), &record);
  record.fs_wa = phone.fs().stats().FsWriteAmplification();
  record.cleaner_picks = phone.fs().stats().cleaner_picks;
  record.cleaner_candidates = phone.fs().stats().cleaner_candidates_examined;
  record.fs_commits = phone.fs().stats().metadata_commits;
  return record;
}

CampaignStreamResult RunCampaignStreaming(const CampaignSpec& spec,
                                          const CampaignRunOptions& options,
                                          const RunRecordSink& sink) {
  CampaignStreamResult result;
  result.name = spec.name;
  result.seed = spec.seed;

  const std::vector<RunSpec> runs = ExpandRuns(spec);
  result.run_count = runs.size();

  // Touch the lazily-built tables once before spawning workers (their
  // construction is thread-safe anyway; this just keeps first-run timings
  // comparable across threads).
  (void)CampaignDevices();

  const auto wall_start = std::chrono::steady_clock::now();
  const int threads =
      std::max(1, std::min<int>(options.threads, static_cast<int>(runs.size())));

  // Emits a completed record if it is the next one in index order, then
  // drains any buffered successors. Records finishing out of order wait in
  // `held`, which can never hold more entries than there are in-flight runs.
  size_t emitted = 0;
  std::map<size_t, RunRecord> held;
  auto deliver = [&](size_t index, RunRecord&& record) {
    if (!record.status.ok() && !record.bricked) {
      ++result.hard_failures;
    }
    if (index != emitted) {
      held.emplace(index, std::move(record));
      return;
    }
    sink(std::move(record));
    ++emitted;
    while (!held.empty() && held.begin()->first == emitted) {
      sink(std::move(held.begin()->second));
      held.erase(held.begin());
      ++emitted;
    }
  };

  if (threads <= 1) {
    for (size_t i = 0; i < runs.size(); ++i) {
      deliver(i, ExecuteRun(runs[i]));
    }
  } else {
    std::atomic<size_t> next{0};
    std::mutex mu;  // guards deliver() state
    auto worker = [&]() {
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= runs.size()) {
          return;
        }
        RunRecord record = ExecuteRun(runs[i]);
        std::lock_guard<std::mutex> lock(mu);
        deliver(i, std::move(record));
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back(worker);
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();
  return result;
}

CampaignOutcome RunCampaign(const CampaignSpec& spec,
                            const CampaignRunOptions& options) {
  CampaignOutcome outcome;
  outcome.name = spec.name;
  outcome.seed = spec.seed;
  const CampaignStreamResult result = RunCampaignStreaming(
      spec, options,
      [&outcome](RunRecord&& record) { outcome.runs.push_back(std::move(record)); });
  outcome.wall_seconds = result.wall_seconds;
  return outcome;
}

}  // namespace flashsim
