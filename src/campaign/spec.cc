#include "src/campaign/spec.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/simcore/rng.h"
#include "src/simcore/units.h"

namespace flashsim {

namespace {

// --- low-level token parsing ------------------------------------------------

bool ParseU64(const std::string& text, uint64_t* out) {
  if (text.empty()) {
    return false;
  }
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return false;
  }
  *out = v;
  return true;
}

bool ParseF64(const std::string& text, double* out) {
  if (text.empty()) {
    return false;
  }
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    return false;
  }
  *out = v;
  return true;
}

// "4096", "4KiB", "100MiB", "1GiB", "2TiB" (also lowercase kib/mib/...).
bool ParseSize(const std::string& text, uint64_t* out) {
  size_t i = 0;
  while (i < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[i])) || text[i] == '.')) {
    ++i;
  }
  double value = 0.0;
  if (!ParseF64(text.substr(0, i), &value)) {
    return false;
  }
  std::string unit = text.substr(i);
  for (char& c : unit) {
    c = static_cast<char>(std::tolower(c));
  }
  double mult = 1.0;
  if (unit.empty() || unit == "b") {
    mult = 1.0;
  } else if (unit == "kib" || unit == "k") {
    mult = static_cast<double>(kKiB);
  } else if (unit == "mib" || unit == "m") {
    mult = static_cast<double>(kMiB);
  } else if (unit == "gib" || unit == "g") {
    mult = static_cast<double>(kGiB);
  } else if (unit == "tib" || unit == "t") {
    mult = static_cast<double>(kTiB);
  } else {
    return false;
  }
  *out = static_cast<uint64_t>(value * mult);
  return true;
}

// "5ms", "100us", "2s", "50ns".
bool ParseSimDuration(const std::string& text, SimDuration* out) {
  size_t i = 0;
  while (i < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[i])) || text[i] == '.')) {
    ++i;
  }
  double value = 0.0;
  if (!ParseF64(text.substr(0, i), &value)) {
    return false;
  }
  const std::string unit = text.substr(i);
  double nanos;
  if (unit == "ns") {
    nanos = value;
  } else if (unit == "us") {
    nanos = value * 1e3;
  } else if (unit == "ms") {
    nanos = value * 1e6;
  } else if (unit == "s" || unit.empty()) {
    nanos = value * 1e9;
  } else {
    return false;
  }
  *out = SimDuration::Nanos(static_cast<int64_t>(nanos));
  return true;
}

// "16x1" -> {16, 1}.
bool ParseScale(const std::string& text, SimScale* out) {
  const size_t x = text.find('x');
  if (x == std::string::npos) {
    return false;
  }
  uint64_t cap = 0;
  uint64_t end = 0;
  if (!ParseU64(text.substr(0, x), &cap) || !ParseU64(text.substr(x + 1), &end) ||
      cap == 0 || end == 0) {
    return false;
  }
  out->capacity_div = static_cast<uint32_t>(cap);
  out->endurance_div = static_cast<uint32_t>(end);
  return true;
}

bool ParseBool(const std::string& text, bool* out) {
  if (text == "1" || text == "true" || text == "yes") {
    *out = true;
  } else if (text == "0" || text == "false" || text == "no") {
    *out = false;
  } else {
    return false;
  }
  return true;
}

std::vector<std::string> SplitList(const std::string& text) {
  std::vector<std::string> items;
  std::string item;
  std::stringstream ss(text);
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) {
      items.push_back(item);
    }
  }
  return items;
}

// Whitespace-splits a line into tokens.
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::stringstream ss(line);
  std::string token;
  while (ss >> token) {
    tokens.push_back(token);
  }
  return tokens;
}

Status LineError(size_t line_no, const std::string& message) {
  return InvalidArgumentError("spec line " + std::to_string(line_no) + ": " + message);
}

struct KeyValue {
  std::string key;
  std::string value;
};

bool SplitKeyValue(const std::string& token, KeyValue* kv) {
  const size_t eq = token.find('=');
  if (eq == std::string::npos || eq == 0) {
    return false;
  }
  kv->key = token.substr(0, eq);
  kv->value = token.substr(eq + 1);
  return true;
}

// --- directive handlers -----------------------------------------------------

Status ApplyWorkloadKey(const KeyValue& kv, size_t line_no,
                        SyntheticWorkloadConfig* w) {
  const std::string& k = kv.key;
  const std::string& v = kv.value;
  bool ok = true;
  if (k == "pattern") {
    ok = ParseAccessPattern(v, &w->pattern);
  } else if (k == "request") {
    ok = ParseSize(v, &w->request_bytes) && w->request_bytes > 0;
  } else if (k == "total") {
    ok = ParseSize(v, &w->total_bytes) && w->total_bytes > 0;
  } else if (k == "span") {
    if (!v.empty() && v.back() == '%') {
      double pct = 0.0;
      ok = ParseF64(v.substr(0, v.size() - 1), &pct) && pct > 0.0 && pct <= 100.0;
      w->span_fraction = pct / 100.0;
    } else {
      ok = ParseSize(v, &w->span_bytes);
    }
  } else if (k == "start") {
    ok = ParseSize(v, &w->start_offset);
  } else if (k == "stride") {
    ok = ParseSize(v, &w->stride_bytes);
  } else if (k == "theta") {
    ok = ParseF64(v, &w->zipf_theta) && w->zipf_theta > 0.0 && w->zipf_theta < 1.0;
  } else if (k == "hot_fraction") {
    ok = ParseF64(v, &w->hot_fraction) && w->hot_fraction > 0.0 && w->hot_fraction <= 1.0;
  } else if (k == "hot_probability") {
    ok = ParseF64(v, &w->hot_probability) && w->hot_probability >= 0.0 &&
         w->hot_probability <= 1.0;
  } else if (k == "read_fraction") {
    ok = ParseF64(v, &w->read_fraction) && w->read_fraction >= 0.0 &&
         w->read_fraction <= 1.0;
  } else if (k == "burst") {
    ok = ParseU64(v, &w->burst_requests);
  } else if (k == "idle") {
    ok = ParseSimDuration(v, &w->idle_time);
  } else {
    return LineError(line_no, "unknown workload key '" + k + "'");
  }
  if (!ok) {
    return LineError(line_no, "bad value for '" + k + "': '" + v + "'");
  }
  return Status::Ok();
}

Status ApplyGridKey(const KeyValue& kv, size_t line_no, GridSpec* g) {
  const std::string& k = kv.key;
  const std::string& v = kv.value;
  bool ok = true;
  if (k == "layer") {
    if (v == "block") {
      g->layer = RunLayer::kBlock;
    } else if (v == "phone") {
      g->layer = RunLayer::kPhone;
    } else {
      ok = false;
    }
  } else if (k == "metric") {
    if (v == "bandwidth") {
      g->metric = RunMetric::kBandwidth;
    } else if (v == "wear") {
      g->metric = RunMetric::kWear;
    } else {
      ok = false;
    }
  } else if (k == "scale") {
    ok = ParseScale(v, &g->scale);
  } else if (k == "devices") {
    g->devices = SplitList(v);
    ok = !g->devices.empty();
  } else if (k == "workloads") {
    g->workloads = SplitList(v);
    ok = !g->workloads.empty();
  } else if (k == "fs") {
    g->filesystems.clear();
    for (const std::string& fs_name : SplitList(v)) {
      if (fs_name == "ext4" || fs_name == "extfs") {
        g->filesystems.push_back(PhoneFsType::kExtFs);
      } else if (fs_name == "f2fs" || fs_name == "logfs") {
        g->filesystems.push_back(PhoneFsType::kLogFs);
      } else if (fs_name == "cowfs" || fs_name == "littlefs") {
        g->filesystems.push_back(PhoneFsType::kCowFs);
      } else {
        ok = false;
      }
    }
    ok = ok && !g->filesystems.empty();
  } else if (k == "utilization") {
    ok = ParseF64(v, &g->utilization) && g->utilization >= 0.0 && g->utilization < 1.0;
  } else if (k == "target_level") {
    uint64_t level = 0;
    ok = ParseU64(v, &level) && level >= 1 && level <= 11;
    g->target_level = static_cast<uint32_t>(level);
  } else if (k == "max_bytes") {
    ok = ParseSize(v, &g->max_bytes);
  } else if (k == "files") {
    const size_t x = v.find('x');
    uint64_t count = 0;
    ok = x != std::string::npos && ParseU64(v.substr(0, x), &count) && count > 0 &&
         ParseSize(v.substr(x + 1), &g->file_bytes) && g->file_bytes > 0;
    g->file_count = static_cast<uint32_t>(count);
  } else if (k == "sync") {
    ok = ParseBool(v, &g->sync);
  } else if (k == "batch") {
    ok = ParseU64(v, &g->batch_requests) && g->batch_requests > 0;
  } else if (k == "depth") {
    uint64_t depth = 0;
    ok = ParseU64(v, &depth) && depth >= 1 && depth <= 4096;
    g->queue_depth = static_cast<uint32_t>(depth);
  } else if (k == "channels") {
    uint64_t ch = 0;
    ok = ParseU64(v, &ch) && ch >= 1 && ch <= 64;
    g->channels = static_cast<uint32_t>(ch);
  } else if (k == "engine") {
    if (v == "event") {
      g->force_event_engine = true;
    } else if (v == "flat") {
      g->force_event_engine = false;
    } else {
      ok = false;
    }
  } else {
    return LineError(line_no, "unknown grid key '" + k + "'");
  }
  if (!ok) {
    return LineError(line_no, "bad value for '" + k + "': '" + v + "'");
  }
  return Status::Ok();
}

Status ApplyFleetKey(const KeyValue& kv, size_t line_no, FleetSpec* f) {
  const std::string& k = kv.key;
  const std::string& v = kv.value;
  bool ok = true;
  if (k == "count") {
    ok = ParseU64(v, &f->device_count) && f->device_count > 0;
  } else if (k == "scale") {
    ok = ParseScale(v, &f->scale);
  } else if (k == "devices") {
    f->devices = SplitList(v);
    ok = !f->devices.empty();
  } else if (k == "workloads") {
    f->workloads = SplitList(v);
    ok = !f->workloads.empty();
  } else if (k == "shard") {
    ok = ParseU64(v, &f->shard_devices) && f->shard_devices > 0;
  } else if (k == "slice") {
    ok = ParseSize(v, &f->slice_bytes) && f->slice_bytes > 0;
  } else if (k == "target_level") {
    uint64_t level = 0;
    ok = ParseU64(v, &level) && level >= 1 && level <= 11;
    f->target_level = static_cast<uint32_t>(level);
  } else if (k == "max_device_bytes") {
    ok = ParseSize(v, &f->max_device_bytes);
  } else if (k == "batch") {
    ok = ParseU64(v, &f->batch_requests) && f->batch_requests > 0;
  } else if (k == "survival_bin_hours") {
    ok = ParseF64(v, &f->survival_bin_hours) && f->survival_bin_hours > 0.0;
  } else if (k == "park") {
    if (v == "delta") {
      f->park_mode = FleetParkMode::kDelta;
    } else if (v == "full") {
      f->park_mode = FleetParkMode::kFull;
    } else {
      ok = false;
    }
  } else if (k == "park_rebase_every") {
    ok = ParseU64(v, &f->park_rebase_every) && f->park_rebase_every > 0;
  } else if (k == "park_chain_budget") {
    ok = ParseF64(v, &f->park_chain_budget) && f->park_chain_budget > 0.0;
  } else {
    return LineError(line_no, "unknown fleet key '" + k + "'");
  }
  if (!ok) {
    return LineError(line_no, "bad value for '" + k + "': '" + v + "'");
  }
  return Status::Ok();
}

}  // namespace

const char* RunLayerName(RunLayer layer) {
  return layer == RunLayer::kBlock ? "block" : "phone";
}

const char* RunMetricName(RunMetric metric) {
  return metric == RunMetric::kBandwidth ? "bandwidth" : "wear";
}

const std::vector<CampaignDevice>& CampaignDevices() {
  static const std::vector<CampaignDevice>* devices = new std::vector<CampaignDevice>{
      {"usd16", "uSD 16GB", MakeUsd16},
      {"emmc8", "eMMC 8GB", MakeEmmc8},
      {"emmc16", "eMMC 16GB", MakeEmmc16},
      {"moto_e8", "Moto E 8GB", MakeMotoE8},
      {"samsung_s6", "Samsung S6 32GB", MakeSamsungS6},
      {"blu512", "BLU 512MB", MakeBlu512},
      {"blu4", "BLU 4GB", MakeBlu4},
  };
  return *devices;
}

const CampaignDevice* FindCampaignDevice(const std::string& slug) {
  for (const CampaignDevice& device : CampaignDevices()) {
    if (device.slug == slug) {
      return &device;
    }
  }
  return nullptr;
}

const SyntheticWorkloadConfig* CampaignSpec::FindWorkload(
    const std::string& workload_name) const {
  for (const SyntheticWorkloadConfig& w : workloads) {
    if (w.name == workload_name) {
      return &w;
    }
  }
  return nullptr;
}

const FleetSpec* CampaignSpec::FindFleet(const std::string& fleet_name) const {
  for (const FleetSpec& f : fleets) {
    if (f.name == fleet_name) {
      return &f;
    }
  }
  return nullptr;
}

Result<CampaignSpec> ParseCampaignSpec(const std::string& text) {
  CampaignSpec spec;
  bool saw_campaign = false;
  std::stringstream lines(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    const std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty()) {
      continue;
    }
    const std::string& directive = tokens[0];
    if (tokens.size() < 2) {
      return LineError(line_no, "directive '" + directive + "' needs a name");
    }

    if (directive == "campaign") {
      saw_campaign = true;
      spec.name = tokens[1];
      for (size_t i = 2; i < tokens.size(); ++i) {
        KeyValue kv;
        if (!SplitKeyValue(tokens[i], &kv)) {
          return LineError(line_no, "expected key=value, got '" + tokens[i] + "'");
        }
        if (kv.key == "seed") {
          if (!ParseU64(kv.value, &spec.seed)) {
            return LineError(line_no, "bad seed '" + kv.value + "'");
          }
        } else if (kv.key == "scale") {
          if (!ParseScale(kv.value, &spec.scale)) {
            return LineError(line_no, "bad scale '" + kv.value + "'");
          }
        } else {
          return LineError(line_no, "unknown campaign key '" + kv.key + "'");
        }
      }
    } else if (directive == "workload") {
      SyntheticWorkloadConfig w;
      w.name = tokens[1];
      if (spec.FindWorkload(w.name) != nullptr) {
        return LineError(line_no, "duplicate workload '" + w.name + "'");
      }
      for (size_t i = 2; i < tokens.size(); ++i) {
        KeyValue kv;
        if (!SplitKeyValue(tokens[i], &kv)) {
          return LineError(line_no, "expected key=value, got '" + tokens[i] + "'");
        }
        FLASHSIM_RETURN_IF_ERROR(ApplyWorkloadKey(kv, line_no, &w));
      }
      spec.workloads.push_back(std::move(w));
    } else if (directive == "grid") {
      GridSpec g;
      g.name = tokens[1];
      g.scale = spec.scale;
      for (size_t i = 2; i < tokens.size(); ++i) {
        KeyValue kv;
        if (!SplitKeyValue(tokens[i], &kv)) {
          return LineError(line_no, "expected key=value, got '" + tokens[i] + "'");
        }
        FLASHSIM_RETURN_IF_ERROR(ApplyGridKey(kv, line_no, &g));
      }
      if (g.devices.empty()) {
        return LineError(line_no, "grid '" + g.name + "' lists no devices");
      }
      if (g.workloads.empty()) {
        return LineError(line_no, "grid '" + g.name + "' lists no workloads");
      }
      for (const std::string& slug : g.devices) {
        if (FindCampaignDevice(slug) == nullptr) {
          return LineError(line_no, "unknown device '" + slug + "'");
        }
      }
      for (const std::string& w : g.workloads) {
        if (spec.FindWorkload(w) == nullptr) {
          return LineError(line_no, "grid references undefined workload '" + w + "'");
        }
      }
      if (g.layer == RunLayer::kBlock && !g.filesystems.empty()) {
        return LineError(line_no, "fs= only applies to layer=phone grids");
      }
      if (g.metric == RunMetric::kWear && g.target_level == 0 && g.max_bytes == 0) {
        return LineError(line_no,
                         "wear grids need target_level= and/or max_bytes=");
      }
      if (g.layer == RunLayer::kPhone && g.filesystems.empty()) {
        g.filesystems.push_back(PhoneFsType::kExtFs);
      }
      spec.grids.push_back(std::move(g));
    } else if (directive == "fleet") {
      FleetSpec f;
      f.name = tokens[1];
      f.scale = spec.scale;
      if (spec.FindFleet(f.name) != nullptr) {
        return LineError(line_no, "duplicate fleet '" + f.name + "'");
      }
      for (size_t i = 2; i < tokens.size(); ++i) {
        KeyValue kv;
        if (!SplitKeyValue(tokens[i], &kv)) {
          return LineError(line_no, "expected key=value, got '" + tokens[i] + "'");
        }
        FLASHSIM_RETURN_IF_ERROR(ApplyFleetKey(kv, line_no, &f));
      }
      if (f.device_count == 0) {
        return LineError(line_no, "fleet '" + f.name + "' needs count=");
      }
      if (f.devices.empty()) {
        return LineError(line_no, "fleet '" + f.name + "' lists no devices");
      }
      if (f.workloads.empty()) {
        return LineError(line_no, "fleet '" + f.name + "' lists no workloads");
      }
      for (const std::string& slug : f.devices) {
        if (FindCampaignDevice(slug) == nullptr) {
          return LineError(line_no, "unknown device '" + slug + "'");
        }
      }
      for (const std::string& w : f.workloads) {
        if (spec.FindWorkload(w) == nullptr) {
          return LineError(line_no,
                           "fleet references undefined workload '" + w + "'");
        }
      }
      f.index = spec.fleets.size();
      spec.fleets.push_back(std::move(f));
    } else {
      return LineError(line_no, "unknown directive '" + directive + "'");
    }
  }
  if (!saw_campaign) {
    return InvalidArgumentError("spec has no 'campaign' line");
  }
  if (spec.grids.empty() && spec.fleets.empty()) {
    return InvalidArgumentError("spec defines no grids or fleets");
  }
  return spec;
}

Result<CampaignSpec> LoadCampaignSpecFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return NotFoundError("cannot open spec file: " + path);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return ParseCampaignSpec(buffer.str());
}

std::vector<RunSpec> ExpandRuns(const CampaignSpec& spec) {
  std::vector<RunSpec> runs;
  for (const GridSpec& grid : spec.grids) {
    const bool phone = grid.layer == RunLayer::kPhone;
    const std::vector<PhoneFsType> fs_list =
        phone ? grid.filesystems : std::vector<PhoneFsType>{PhoneFsType::kExtFs};
    for (const std::string& device : grid.devices) {
      for (const PhoneFsType fs : fs_list) {
        for (const std::string& workload_name : grid.workloads) {
          const SyntheticWorkloadConfig* w = spec.FindWorkload(workload_name);
          if (w == nullptr) {
            continue;  // validated at parse time; defensive for built specs
          }
          RunSpec run;
          run.index = runs.size();
          run.grid = grid.name;
          run.layer = grid.layer;
          run.metric = grid.metric;
          run.scale = grid.scale;
          run.device = device;
          run.fs = fs;
          run.has_fs = phone;
          run.workload = *w;
          run.utilization = grid.utilization;
          run.target_level = grid.target_level;
          run.max_bytes = grid.max_bytes;
          run.file_count = grid.file_count;
          run.file_bytes = grid.file_bytes;
          run.sync = grid.sync;
          run.batch_requests = grid.batch_requests;
          run.queue_depth = grid.queue_depth;
          run.channels = grid.channels;
          run.force_event_engine = grid.force_event_engine;
          run.seed = DeriveSeed(spec.seed, run.index);
          runs.push_back(std::move(run));
        }
      }
    }
  }
  return runs;
}

}  // namespace flashsim
