// Campaign runner: executes a spec's expanded run list on a thread pool.
//
// Every run is a fully independent simulation (its own device, file system,
// workload, and RNG streams seeded by DeriveSeed(campaign seed, run index)),
// so runs parallelize with no shared mutable state and the aggregate report
// is byte-identical for any thread count — only wall-clock changes.

#ifndef SRC_CAMPAIGN_RUNNER_H_
#define SRC_CAMPAIGN_RUNNER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/campaign/spec.h"
#include "src/workload/driver.h"

namespace flashsim {

// Outcome of one run. String fields echo the run identity so reports are
// self-contained.
struct RunRecord {
  size_t index = 0;
  std::string grid;
  std::string layer;
  std::string metric;
  std::string device;   // slug
  std::string fs;       // "-" for block-layer runs
  std::string workload;
  uint64_t seed = 0;
  double volume_factor = 1.0;  // multiply volumes/hours for full-device numbers

  Status status;
  uint64_t requests = 0;
  uint64_t bytes_written = 0;
  uint64_t bytes_read = 0;
  double sim_seconds = 0.0;
  double io_seconds = 0.0;
  double write_mib_per_sec = 0.0;
  double device_wa = 0.0;  // FTL write amplification over the whole run
  double fs_wa = 0.0;      // file-system write amplification (1.0 at block layer)
  // GC/cleaner victim-selection observability (see FtlStats/FsStats).
  uint64_t gc_picks = 0;
  uint64_t gc_candidates = 0;
  uint64_t victim_index_rebuilds = 0;
  uint64_t cleaner_picks = 0;       // phone-layer log-structured FS only
  uint64_t cleaner_candidates = 0;
  // Durability-barrier commits the FS issued (journal commits / node writes /
  // metadata-pair commits) — the per-FS metadata pressure behind fs_wa.
  uint64_t fs_commits = 0;
  uint32_t level_a = 0;
  uint32_t level_b = 0;
  // Per-request latency percentiles (microseconds) from the device's
  // digests, recorded in submission order — deterministic at any thread
  // count (DESIGN.md §15).
  uint64_t write_lat_count = 0;
  double write_lat_p50_us = 0.0;
  double write_lat_p95_us = 0.0;
  double write_lat_p99_us = 0.0;
  uint64_t read_lat_count = 0;
  double read_lat_p50_us = 0.0;
  double read_lat_p95_us = 0.0;
  double read_lat_p99_us = 0.0;
  bool reached_target = false;
  bool bricked = false;
  std::vector<WorkloadLevelRow> levels;  // wear transitions, sim-scale units
};

struct CampaignOutcome {
  std::string name;
  uint64_t seed = 0;
  std::vector<RunRecord> runs;  // ordered by run index, independent of threads
  // Host wall-clock for the whole campaign. Reported on stdout only — never
  // serialized into the JSON/CSV reports, which must be thread-count
  // invariant.
  double wall_seconds = 0.0;
};

struct CampaignRunOptions {
  int threads = 1;
};

// Receives finished run records strictly in run-index order, exactly once
// each. Called from inside the runner (never concurrently); the record is
// moved in and owned by the sink, so the runner retains nothing after the
// call returns.
using RunRecordSink = std::function<void(RunRecord&&)>;

// Campaign-level totals from a streaming run. Unlike CampaignOutcome this
// holds no per-run state — memory is O(threads) regardless of run count.
struct CampaignStreamResult {
  std::string name;
  uint64_t seed = 0;
  size_t run_count = 0;
  size_t hard_failures = 0;  // !status.ok() && !bricked
  // Host wall-clock; stdout only, never serialized (thread-count invariant
  // reports).
  double wall_seconds = 0.0;
};

// Executes one run to completion. Thread-safe: touches only its arguments.
RunRecord ExecuteRun(const RunSpec& run);

// Runs the whole campaign with `options.threads` workers, streaming each
// finished record to `sink` in run-index order. Out-of-order completions
// wait in a reorder buffer bounded by the number of in-flight runs, so peak
// memory is O(threads), not O(runs) — the property the fleet-scale report
// path depends on.
CampaignStreamResult RunCampaignStreaming(const CampaignSpec& spec,
                                          const CampaignRunOptions& options,
                                          const RunRecordSink& sink);

// Runs the whole campaign with `options.threads` workers and collects every
// record. Convenience wrapper over RunCampaignStreaming for callers that
// want the full in-memory outcome (tests, small grids).
CampaignOutcome RunCampaign(const CampaignSpec& spec,
                            const CampaignRunOptions& options);

}  // namespace flashsim

#endif  // SRC_CAMPAIGN_RUNNER_H_
