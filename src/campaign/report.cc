#include "src/campaign/report.h"

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "src/wearlab/csv.h"
#include "src/wearlab/report.h"

namespace flashsim {

namespace {

// Deterministic double formatting for reports: %.6g is locale-independent
// for the values we emit and stable across platforms/thread counts.
std::string JsonNum(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

std::string JsonNum(uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  return buf;
}

std::string JsonStr(const std::string& value) {
  std::string out = "\"";
  for (const char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += "\"";
  return out;
}

const char* JsonBool(bool value) { return value ? "true" : "false"; }

// Per-grid aggregate, accumulated in run-index order.
struct GridAggregate {
  std::string name;
  size_t runs = 0;
  size_t failed = 0;
  uint64_t bytes_written = 0;
  uint64_t bytes_read = 0;
  double sum_write_mib_per_sec = 0.0;
  double min_write_mib_per_sec = 0.0;
  double max_write_mib_per_sec = 0.0;
  size_t reached_target = 0;
  size_t bricked = 0;
};

std::vector<GridAggregate> Aggregate(const CampaignOutcome& outcome) {
  std::vector<GridAggregate> grids;
  for (const RunRecord& run : outcome.runs) {
    GridAggregate* agg = nullptr;
    for (GridAggregate& g : grids) {
      if (g.name == run.grid) {
        agg = &g;
        break;
      }
    }
    if (agg == nullptr) {
      grids.push_back(GridAggregate{});
      agg = &grids.back();
      agg->name = run.grid;
      agg->min_write_mib_per_sec = run.write_mib_per_sec;
      agg->max_write_mib_per_sec = run.write_mib_per_sec;
    }
    ++agg->runs;
    if (!run.status.ok() && !run.bricked) {
      ++agg->failed;
    }
    agg->bytes_written += run.bytes_written;
    agg->bytes_read += run.bytes_read;
    agg->sum_write_mib_per_sec += run.write_mib_per_sec;
    agg->min_write_mib_per_sec =
        std::min(agg->min_write_mib_per_sec, run.write_mib_per_sec);
    agg->max_write_mib_per_sec =
        std::max(agg->max_write_mib_per_sec, run.write_mib_per_sec);
    if (run.reached_target) {
      ++agg->reached_target;
    }
    if (run.bricked) {
      ++agg->bricked;
    }
  }
  return grids;
}

}  // namespace

void WriteCampaignJson(std::ostream& os, const CampaignOutcome& outcome) {
  os << "{\n";
  os << "  \"campaign\": " << JsonStr(outcome.name) << ",\n";
  os << "  \"seed\": " << JsonNum(static_cast<uint64_t>(outcome.seed)) << ",\n";
  os << "  \"runs\": [\n";
  for (size_t i = 0; i < outcome.runs.size(); ++i) {
    const RunRecord& run = outcome.runs[i];
    os << "    {\n";
    os << "      \"index\": " << JsonNum(static_cast<uint64_t>(run.index)) << ",\n";
    os << "      \"grid\": " << JsonStr(run.grid) << ",\n";
    os << "      \"layer\": " << JsonStr(run.layer) << ",\n";
    os << "      \"metric\": " << JsonStr(run.metric) << ",\n";
    os << "      \"device\": " << JsonStr(run.device) << ",\n";
    os << "      \"fs\": " << JsonStr(run.fs) << ",\n";
    os << "      \"workload\": " << JsonStr(run.workload) << ",\n";
    os << "      \"seed\": " << JsonNum(run.seed) << ",\n";
    os << "      \"status\": " << JsonStr(run.status.ok() ? "OK" : run.status.ToString())
       << ",\n";
    os << "      \"requests\": " << JsonNum(run.requests) << ",\n";
    os << "      \"bytes_written\": " << JsonNum(run.bytes_written) << ",\n";
    os << "      \"bytes_read\": " << JsonNum(run.bytes_read) << ",\n";
    os << "      \"sim_seconds\": " << JsonNum(run.sim_seconds) << ",\n";
    os << "      \"io_seconds\": " << JsonNum(run.io_seconds) << ",\n";
    os << "      \"write_mib_per_sec\": " << JsonNum(run.write_mib_per_sec) << ",\n";
    os << "      \"device_wa\": " << JsonNum(run.device_wa) << ",\n";
    os << "      \"fs_wa\": " << JsonNum(run.fs_wa) << ",\n";
    os << "      \"gc_picks\": " << JsonNum(run.gc_picks) << ",\n";
    os << "      \"gc_candidates_examined\": " << JsonNum(run.gc_candidates) << ",\n";
    os << "      \"victim_index_rebuilds\": " << JsonNum(run.victim_index_rebuilds)
       << ",\n";
    os << "      \"cleaner_picks\": " << JsonNum(run.cleaner_picks) << ",\n";
    os << "      \"cleaner_candidates_examined\": " << JsonNum(run.cleaner_candidates)
       << ",\n";
    os << "      \"level_a\": " << JsonNum(static_cast<uint64_t>(run.level_a)) << ",\n";
    os << "      \"level_b\": " << JsonNum(static_cast<uint64_t>(run.level_b)) << ",\n";
    os << "      \"reached_target\": " << JsonBool(run.reached_target) << ",\n";
    os << "      \"bricked\": " << JsonBool(run.bricked) << ",\n";
    os << "      \"volume_factor\": " << JsonNum(run.volume_factor) << ",\n";
    os << "      \"levels\": [";
    for (size_t j = 0; j < run.levels.size(); ++j) {
      const WorkloadLevelRow& row = run.levels[j];
      os << (j == 0 ? "" : ", ") << "{\"level\": "
         << JsonNum(static_cast<uint64_t>(row.level))
         << ", \"host_bytes\": " << JsonNum(row.host_bytes)
         << ", \"hours\": " << JsonNum(row.hours) << "}";
    }
    os << "]\n";
    os << "    }" << (i + 1 < outcome.runs.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"grids\": [\n";
  const std::vector<GridAggregate> grids = Aggregate(outcome);
  for (size_t i = 0; i < grids.size(); ++i) {
    const GridAggregate& g = grids[i];
    const double mean = g.runs > 0
                            ? g.sum_write_mib_per_sec / static_cast<double>(g.runs)
                            : 0.0;
    os << "    {\"grid\": " << JsonStr(g.name)
       << ", \"runs\": " << JsonNum(static_cast<uint64_t>(g.runs))
       << ", \"failed\": " << JsonNum(static_cast<uint64_t>(g.failed))
       << ", \"bytes_written\": " << JsonNum(g.bytes_written)
       << ", \"bytes_read\": " << JsonNum(g.bytes_read)
       << ", \"write_mib_per_sec_min\": " << JsonNum(g.min_write_mib_per_sec)
       << ", \"write_mib_per_sec_mean\": " << JsonNum(mean)
       << ", \"write_mib_per_sec_max\": " << JsonNum(g.max_write_mib_per_sec)
       << ", \"reached_target\": " << JsonNum(static_cast<uint64_t>(g.reached_target))
       << ", \"bricked\": " << JsonNum(static_cast<uint64_t>(g.bricked)) << "}"
       << (i + 1 < grids.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
}

void WriteCampaignCsv(std::ostream& os, const CampaignOutcome& outcome) {
  WriteCsvRow(os, {"index", "grid", "layer", "metric", "device", "fs", "workload",
                   "seed", "status", "requests", "bytes_written", "bytes_read",
                   "sim_seconds", "write_mib_per_sec", "device_wa", "fs_wa",
                   "gc_picks", "gc_candidates_examined", "victim_index_rebuilds",
                   "cleaner_picks", "cleaner_candidates_examined",
                   "level_a", "level_b", "reached_target", "bricked",
                   "volume_factor"});
  for (const RunRecord& run : outcome.runs) {
    WriteCsvRow(
        os, {JsonNum(static_cast<uint64_t>(run.index)), run.grid, run.layer,
             run.metric, run.device, run.fs, run.workload, JsonNum(run.seed),
             run.status.ok() ? "OK" : StatusCodeName(run.status.code()),
             JsonNum(run.requests), JsonNum(run.bytes_written),
             JsonNum(run.bytes_read), JsonNum(run.sim_seconds),
             JsonNum(run.write_mib_per_sec), JsonNum(run.device_wa),
             JsonNum(run.fs_wa), JsonNum(run.gc_picks),
             JsonNum(run.gc_candidates), JsonNum(run.victim_index_rebuilds),
             JsonNum(run.cleaner_picks), JsonNum(run.cleaner_candidates),
             JsonNum(static_cast<uint64_t>(run.level_a)),
             JsonNum(static_cast<uint64_t>(run.level_b)),
             run.reached_target ? "1" : "0", run.bricked ? "1" : "0",
             JsonNum(run.volume_factor)});
  }
}

void PrintCampaignSummary(std::ostream& os, const CampaignOutcome& outcome) {
  TableReporter table({"Grid", "Device", "FS", "Workload", "MiB/s", "WA(dev)",
                       "WA(fs)", "Level", "Sim hrs", "Status"});
  for (const RunRecord& run : outcome.runs) {
    std::string level = std::to_string(run.level_a);
    if (run.level_b > 0) {
      level += "/" + std::to_string(run.level_b);
    }
    std::string status = run.status.ok() ? "ok" : StatusCodeName(run.status.code());
    if (run.bricked) {
      status = "BRICKED";
    } else if (run.reached_target) {
      status = "level hit";
    }
    table.AddRow({run.grid, run.device, run.fs, run.workload,
                  Fmt(run.write_mib_per_sec), Fmt(run.device_wa), Fmt(run.fs_wa),
                  level, Fmt(run.sim_seconds / 3600.0, 3), status});
  }
  table.Print(os);
}

}  // namespace flashsim
