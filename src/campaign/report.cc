#include "src/campaign/report.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "src/wearlab/csv.h"

namespace flashsim {

namespace {

// Deterministic double formatting for reports: %.6g is locale-independent
// for the values we emit and stable across platforms/thread counts.
std::string JsonNum(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

std::string JsonNum(uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  return buf;
}

std::string JsonStr(const std::string& value) {
  std::string out = "\"";
  for (const char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += "\"";
  return out;
}

const char* JsonBool(bool value) { return value ? "true" : "false"; }

void FoldIntoGrids(std::vector<CampaignGridAggregate>* grids,
                   const RunRecord& run) {
  CampaignGridAggregate* agg = nullptr;
  for (CampaignGridAggregate& g : *grids) {
    if (g.name == run.grid) {
      agg = &g;
      break;
    }
  }
  if (agg == nullptr) {
    grids->push_back(CampaignGridAggregate{});
    agg = &grids->back();
    agg->name = run.grid;
    agg->min_write_mib_per_sec = run.write_mib_per_sec;
    agg->max_write_mib_per_sec = run.write_mib_per_sec;
  }
  ++agg->runs;
  if (!run.status.ok() && !run.bricked) {
    ++agg->failed;
  }
  agg->bytes_written += run.bytes_written;
  agg->bytes_read += run.bytes_read;
  agg->sum_write_mib_per_sec += run.write_mib_per_sec;
  agg->min_write_mib_per_sec =
      std::min(agg->min_write_mib_per_sec, run.write_mib_per_sec);
  agg->max_write_mib_per_sec =
      std::max(agg->max_write_mib_per_sec, run.write_mib_per_sec);
  if (run.reached_target) {
    ++agg->reached_target;
  }
  if (run.bricked) {
    ++agg->bricked;
  }
}

}  // namespace

void CampaignJsonStream::Begin(const std::string& name, uint64_t seed) {
  os_ << "{\n";
  os_ << "  \"campaign\": " << JsonStr(name) << ",\n";
  os_ << "  \"seed\": " << JsonNum(seed) << ",\n";
  os_ << "  \"runs\": [\n";
}

void CampaignJsonStream::AddRun(const RunRecord& run) {
  // The previous row's terminator is held back until we know whether another
  // row follows; Finish() emits the final "}" without a comma.
  if (any_run_) {
    os_ << "    },\n";
  }
  any_run_ = true;
  FoldIntoGrids(&grids_, run);

  os_ << "    {\n";
  os_ << "      \"index\": " << JsonNum(static_cast<uint64_t>(run.index)) << ",\n";
  os_ << "      \"grid\": " << JsonStr(run.grid) << ",\n";
  os_ << "      \"layer\": " << JsonStr(run.layer) << ",\n";
  os_ << "      \"metric\": " << JsonStr(run.metric) << ",\n";
  os_ << "      \"device\": " << JsonStr(run.device) << ",\n";
  os_ << "      \"fs\": " << JsonStr(run.fs) << ",\n";
  os_ << "      \"workload\": " << JsonStr(run.workload) << ",\n";
  os_ << "      \"seed\": " << JsonNum(run.seed) << ",\n";
  os_ << "      \"status\": " << JsonStr(run.status.ok() ? "OK" : run.status.ToString())
      << ",\n";
  os_ << "      \"requests\": " << JsonNum(run.requests) << ",\n";
  os_ << "      \"bytes_written\": " << JsonNum(run.bytes_written) << ",\n";
  os_ << "      \"bytes_read\": " << JsonNum(run.bytes_read) << ",\n";
  os_ << "      \"sim_seconds\": " << JsonNum(run.sim_seconds) << ",\n";
  os_ << "      \"io_seconds\": " << JsonNum(run.io_seconds) << ",\n";
  os_ << "      \"write_mib_per_sec\": " << JsonNum(run.write_mib_per_sec) << ",\n";
  os_ << "      \"device_wa\": " << JsonNum(run.device_wa) << ",\n";
  os_ << "      \"fs_wa\": " << JsonNum(run.fs_wa) << ",\n";
  os_ << "      \"gc_picks\": " << JsonNum(run.gc_picks) << ",\n";
  os_ << "      \"gc_candidates_examined\": " << JsonNum(run.gc_candidates) << ",\n";
  os_ << "      \"victim_index_rebuilds\": " << JsonNum(run.victim_index_rebuilds)
      << ",\n";
  os_ << "      \"cleaner_picks\": " << JsonNum(run.cleaner_picks) << ",\n";
  os_ << "      \"cleaner_candidates_examined\": " << JsonNum(run.cleaner_candidates)
      << ",\n";
  os_ << "      \"fs_commits\": " << JsonNum(run.fs_commits) << ",\n";
  os_ << "      \"level_a\": " << JsonNum(static_cast<uint64_t>(run.level_a)) << ",\n";
  os_ << "      \"level_b\": " << JsonNum(static_cast<uint64_t>(run.level_b)) << ",\n";
  os_ << "      \"write_lat_count\": " << JsonNum(run.write_lat_count) << ",\n";
  os_ << "      \"write_lat_p50_us\": " << JsonNum(run.write_lat_p50_us) << ",\n";
  os_ << "      \"write_lat_p95_us\": " << JsonNum(run.write_lat_p95_us) << ",\n";
  os_ << "      \"write_lat_p99_us\": " << JsonNum(run.write_lat_p99_us) << ",\n";
  os_ << "      \"read_lat_count\": " << JsonNum(run.read_lat_count) << ",\n";
  os_ << "      \"read_lat_p50_us\": " << JsonNum(run.read_lat_p50_us) << ",\n";
  os_ << "      \"read_lat_p95_us\": " << JsonNum(run.read_lat_p95_us) << ",\n";
  os_ << "      \"read_lat_p99_us\": " << JsonNum(run.read_lat_p99_us) << ",\n";
  os_ << "      \"reached_target\": " << JsonBool(run.reached_target) << ",\n";
  os_ << "      \"bricked\": " << JsonBool(run.bricked) << ",\n";
  os_ << "      \"volume_factor\": " << JsonNum(run.volume_factor) << ",\n";
  os_ << "      \"levels\": [";
  for (size_t j = 0; j < run.levels.size(); ++j) {
    const WorkloadLevelRow& row = run.levels[j];
    os_ << (j == 0 ? "" : ", ") << "{\"level\": "
        << JsonNum(static_cast<uint64_t>(row.level))
        << ", \"host_bytes\": " << JsonNum(row.host_bytes)
        << ", \"hours\": " << JsonNum(row.hours) << "}";
  }
  os_ << "]\n";
}

void CampaignJsonStream::Finish() {
  if (any_run_) {
    os_ << "    }\n";
  }
  os_ << "  ],\n";
  os_ << "  \"grids\": [\n";
  for (size_t i = 0; i < grids_.size(); ++i) {
    const CampaignGridAggregate& g = grids_[i];
    const double mean = g.runs > 0
                            ? g.sum_write_mib_per_sec / static_cast<double>(g.runs)
                            : 0.0;
    os_ << "    {\"grid\": " << JsonStr(g.name)
        << ", \"runs\": " << JsonNum(static_cast<uint64_t>(g.runs))
        << ", \"failed\": " << JsonNum(static_cast<uint64_t>(g.failed))
        << ", \"bytes_written\": " << JsonNum(g.bytes_written)
        << ", \"bytes_read\": " << JsonNum(g.bytes_read)
        << ", \"write_mib_per_sec_min\": " << JsonNum(g.min_write_mib_per_sec)
        << ", \"write_mib_per_sec_mean\": " << JsonNum(mean)
        << ", \"write_mib_per_sec_max\": " << JsonNum(g.max_write_mib_per_sec)
        << ", \"reached_target\": " << JsonNum(static_cast<uint64_t>(g.reached_target))
        << ", \"bricked\": " << JsonNum(static_cast<uint64_t>(g.bricked)) << "}"
        << (i + 1 < grids_.size() ? "," : "") << "\n";
  }
  os_ << "  ]\n";
  os_ << "}\n";
}

void CampaignCsvStream::Begin() {
  WriteCsvRow(os_, {"index", "grid", "layer", "metric", "device", "fs", "workload",
                    "seed", "status", "requests", "bytes_written", "bytes_read",
                    "sim_seconds", "write_mib_per_sec", "device_wa", "fs_wa",
                    "gc_picks", "gc_candidates_examined", "victim_index_rebuilds",
                    "cleaner_picks", "cleaner_candidates_examined", "fs_commits",
                    "level_a", "level_b",
                    "write_lat_count", "write_lat_p50_us", "write_lat_p95_us",
                    "write_lat_p99_us", "read_lat_count", "read_lat_p50_us",
                    "read_lat_p95_us", "read_lat_p99_us",
                    "reached_target", "bricked",
                    "volume_factor"});
}

void CampaignCsvStream::AddRun(const RunRecord& run) {
  WriteCsvRow(
      os_, {JsonNum(static_cast<uint64_t>(run.index)), run.grid, run.layer,
            run.metric, run.device, run.fs, run.workload, JsonNum(run.seed),
            run.status.ok() ? "OK" : StatusCodeName(run.status.code()),
            JsonNum(run.requests), JsonNum(run.bytes_written),
            JsonNum(run.bytes_read), JsonNum(run.sim_seconds),
            JsonNum(run.write_mib_per_sec), JsonNum(run.device_wa),
            JsonNum(run.fs_wa), JsonNum(run.gc_picks),
            JsonNum(run.gc_candidates), JsonNum(run.victim_index_rebuilds),
            JsonNum(run.cleaner_picks), JsonNum(run.cleaner_candidates),
            JsonNum(run.fs_commits),
            JsonNum(static_cast<uint64_t>(run.level_a)),
            JsonNum(static_cast<uint64_t>(run.level_b)),
            JsonNum(run.write_lat_count), JsonNum(run.write_lat_p50_us),
            JsonNum(run.write_lat_p95_us), JsonNum(run.write_lat_p99_us),
            JsonNum(run.read_lat_count), JsonNum(run.read_lat_p50_us),
            JsonNum(run.read_lat_p95_us), JsonNum(run.read_lat_p99_us),
            run.reached_target ? "1" : "0", run.bricked ? "1" : "0",
            JsonNum(run.volume_factor)});
}

CampaignSummaryStream::CampaignSummaryStream()
    : table_({"Grid", "Device", "FS", "Workload", "MiB/s", "WA(dev)", "WA(fs)",
              "Level", "Sim hrs", "Status"}) {}

void CampaignSummaryStream::AddRun(const RunRecord& run) {
  std::string level = std::to_string(run.level_a);
  if (run.level_b > 0) {
    level += "/" + std::to_string(run.level_b);
  }
  std::string status = run.status.ok() ? "ok" : StatusCodeName(run.status.code());
  if (run.bricked) {
    status = "BRICKED";
  } else if (run.reached_target) {
    status = "level hit";
  }
  table_.AddRow({run.grid, run.device, run.fs, run.workload,
                 Fmt(run.write_mib_per_sec), Fmt(run.device_wa), Fmt(run.fs_wa),
                 level, Fmt(run.sim_seconds / 3600.0, 3), status});
}

void CampaignSummaryStream::Finish(std::ostream& os) { table_.Print(os); }

void WriteCampaignJson(std::ostream& os, const CampaignOutcome& outcome) {
  CampaignJsonStream stream(os);
  stream.Begin(outcome.name, outcome.seed);
  for (const RunRecord& run : outcome.runs) {
    stream.AddRun(run);
  }
  stream.Finish();
}

void WriteCampaignCsv(std::ostream& os, const CampaignOutcome& outcome) {
  CampaignCsvStream stream(os);
  stream.Begin();
  for (const RunRecord& run : outcome.runs) {
    stream.AddRun(run);
  }
}

void PrintCampaignSummary(std::ostream& os, const CampaignOutcome& outcome) {
  CampaignSummaryStream stream;
  for (const RunRecord& run : outcome.runs) {
    stream.AddRun(run);
  }
  stream.Finish(os);
}

}  // namespace flashsim
