// Campaign specification: a declarative device × filesystem × workload ×
// scale grid, parsed from a small line-oriented key=value text format.
//
//   # comments and blank lines are ignored
//   campaign <name> [seed=N] [scale=CAPxEND]
//   workload <name> pattern=<sequential|random|strided|zipf|hotcold>
//            [request=SIZE] [total=SIZE] [span=SIZE|PCT%] [start=SIZE]
//            [stride=SIZE] [theta=F] [hot_fraction=F] [hot_probability=F]
//            [read_fraction=F] [burst=N] [idle=DURATION]
//   grid <name> layer=<block|phone> metric=<bandwidth|wear>
//        devices=<slug,...> workloads=<name,...> [fs=<ext4,f2fs,cowfs>]
//        [scale=CAPxEND] [utilization=F] [target_level=N] [max_bytes=SIZE]
//        [files=<count>x<SIZE>] [sync=0|1] [batch=N] [depth=N] [channels=N]
//        [engine=<event|flat>]
//   fleet <name> count=N devices=<slug,...> workloads=<name,...>
//        [scale=CAPxEND] [shard=N] [slice=SIZE] [target_level=N]
//        [max_device_bytes=SIZE] [batch=N] [survival_bin_hours=F]
//
// SIZE accepts B/KiB/MiB/GiB/TiB suffixes; DURATION accepts ns/us/ms/s.
// Each grid expands to the cross product of its devices, filesystems (phone
// layer only), and workloads; every expanded run gets a deterministic seed
// derived from (campaign seed, run index).
//
// A `fleet` directive declares a population instead of a cross product: count
// devices striped over the device-model x workload combos, each seeded with
// DeriveDeviceSeed(campaign seed, fleet index, device index) and driven at
// the block layer by src/fleet (the campaign runner ignores fleets).

#ifndef SRC_CAMPAIGN_SPEC_H_
#define SRC_CAMPAIGN_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/device/catalog.h"
#include "src/simcore/status.h"
#include "src/wearlab/phone.h"
#include "src/workload/generators.h"

namespace flashsim {

enum class RunLayer { kBlock, kPhone };
enum class RunMetric { kBandwidth, kWear };

const char* RunLayerName(RunLayer layer);
const char* RunMetricName(RunMetric metric);

struct GridSpec {
  std::string name;
  RunLayer layer = RunLayer::kBlock;
  RunMetric metric = RunMetric::kBandwidth;
  SimScale scale{1, 1};
  std::vector<std::string> devices;       // catalog slugs, see CampaignDevices()
  std::vector<PhoneFsType> filesystems;   // phone layer; defaults to {ext4}
  std::vector<std::string> workloads;     // names defined by `workload` lines
  double utilization = 0.0;               // phone static fill (0 = skip)
  uint32_t target_level = 0;              // wear metric: stop at this level
  uint64_t max_bytes = 0;                 // wear metric: per-run byte cap
  uint32_t file_count = 4;                // phone layer working set
  uint64_t file_bytes = 100ull * 1024 * 1024;  // full-size; runner re-scales
  bool sync = true;
  uint64_t batch_requests = 32;
  // Queued-submission knobs (src/blockdev/io_queue.h). Zero keeps the
  // device's calibrated defaults; `force_event_engine` routes even C=1/D=1
  // runs through the event engine (equivalence gating in CI).
  uint32_t queue_depth = 0;
  uint32_t channels = 0;
  bool force_event_engine = false;
};

// A device population for src/fleet: `count` simulated devices striped over
// the devices x workloads combos, sharded into contiguous ranges of
// `shard_devices` and driven in bounded `slice_bytes` slices so idle devices
// can park as compact serialized state between slices.
// How parked devices are stored between slices (DESIGN.md §14). Neither
// mode changes any simulated byte, so reports and checkpoints are identical
// across modes; only stored/resident park bytes differ.
enum class FleetParkMode : uint8_t {
  kFull = 0,   // every park is a self-contained packed snapshot
  kDelta = 1,  // packed XOR-deltas against the previous park, rebased
               // periodically onto a fresh self-contained base
};

struct FleetSpec {
  std::string name;
  size_t index = 0;                    // position among the spec's fleets
  uint64_t device_count = 0;
  SimScale scale{1, 1};
  std::vector<std::string> devices;    // catalog slugs
  std::vector<std::string> workloads;  // names defined by `workload` lines
  uint64_t shard_devices = 64;
  uint64_t slice_bytes = 8ull * 1024 * 1024;
  uint32_t target_level = 0;           // stop a device at this level (0 = none)
  uint64_t max_device_bytes = 0;       // per-device byte cap (0 = auto)
  uint64_t batch_requests = 32;
  double survival_bin_hours = 24.0;    // survival-curve bin, full-device hours
  // Park policy. Excluded from FleetSpecFingerprint: it does not affect the
  // simulation trajectory, so checkpoints interchange across modes/knobs.
  FleetParkMode park_mode = FleetParkMode::kDelta;
  uint64_t park_rebase_every = 16;  // max delta-chain length before rebasing
  double park_chain_budget = 8.0;   // max chain bytes as a multiple of base
};

struct CampaignSpec {
  std::string name = "campaign";
  uint64_t seed = 42;
  SimScale scale{1, 1};  // default for grids that do not override it
  std::vector<SyntheticWorkloadConfig> workloads;
  std::vector<GridSpec> grids;
  std::vector<FleetSpec> fleets;

  const SyntheticWorkloadConfig* FindWorkload(const std::string& name) const;
  const FleetSpec* FindFleet(const std::string& name) const;
};

// One fully-resolved simulation: everything ExecuteRun needs.
struct RunSpec {
  size_t index = 0;
  std::string grid;
  RunLayer layer = RunLayer::kBlock;
  RunMetric metric = RunMetric::kBandwidth;
  SimScale scale{1, 1};
  std::string device;  // slug
  PhoneFsType fs = PhoneFsType::kExtFs;
  bool has_fs = false;  // false for block-layer runs
  SyntheticWorkloadConfig workload;
  double utilization = 0.0;
  uint32_t target_level = 0;
  uint64_t max_bytes = 0;
  uint32_t file_count = 4;
  uint64_t file_bytes = 100ull * 1024 * 1024;
  bool sync = true;
  uint64_t batch_requests = 32;
  uint32_t queue_depth = 0;  // 0 = device default
  uint32_t channels = 0;     // 0 = device default
  bool force_event_engine = false;
  uint64_t seed = 0;  // DeriveSeed(campaign seed, index)
};

// Catalog slugs usable in `devices=` lists ("usd16", "emmc8", "emmc16",
// "moto_e8", "samsung_s6", "blu512", "blu4"), mapped to display names and
// factories.
struct CampaignDevice {
  std::string slug;
  std::string display_name;
  std::function<std::unique_ptr<FlashDevice>(SimScale, uint64_t)> make;
};

const std::vector<CampaignDevice>& CampaignDevices();
const CampaignDevice* FindCampaignDevice(const std::string& slug);

// Parses a spec from text. Errors carry the offending line number.
Result<CampaignSpec> ParseCampaignSpec(const std::string& text);

// Reads and parses a spec file.
Result<CampaignSpec> LoadCampaignSpecFile(const std::string& path);

// Expands a spec's grids into the ordered run list (seeds included).
std::vector<RunSpec> ExpandRuns(const CampaignSpec& spec);

}  // namespace flashsim

#endif  // SRC_CAMPAIGN_SPEC_H_
