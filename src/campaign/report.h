// Campaign report serialization: one JSON document and one CSV table per
// campaign, plus a human summary. All output is a pure function of the run
// records (ordered by run index), so reports are byte-identical regardless
// of how many threads executed the campaign — the determinism contract the
// tests pin down.

#ifndef SRC_CAMPAIGN_REPORT_H_
#define SRC_CAMPAIGN_REPORT_H_

#include <ostream>

#include "src/campaign/runner.h"

namespace flashsim {

// Full machine-readable report: campaign header, per-run records (including
// wear-level transitions), and per-grid aggregates. Excludes wall-clock.
void WriteCampaignJson(std::ostream& os, const CampaignOutcome& outcome);

// One CSV row per run with the headline metrics.
void WriteCampaignCsv(std::ostream& os, const CampaignOutcome& outcome);

// Fixed-width table for the terminal.
void PrintCampaignSummary(std::ostream& os, const CampaignOutcome& outcome);

}  // namespace flashsim

#endif  // SRC_CAMPAIGN_REPORT_H_
