// Campaign report serialization: one JSON document and one CSV table per
// campaign, plus a human summary. All output is a pure function of the run
// records (ordered by run index), so reports are byte-identical regardless
// of how many threads executed the campaign — the determinism contract the
// tests pin down.
//
// The streaming writers consume one RunRecord at a time (in index order, as
// RunCampaignStreaming delivers them) and never retain past records: the
// JSON/CSV row is emitted immediately and only O(grids) aggregate state is
// kept for the trailing "grids" array. The batch Write* functions below are
// thin wrappers that replay an in-memory outcome through the same writers,
// which is what keeps the two paths byte-identical.

#ifndef SRC_CAMPAIGN_REPORT_H_
#define SRC_CAMPAIGN_REPORT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "src/campaign/runner.h"
#include "src/wearlab/report.h"

namespace flashsim {

// Per-grid aggregate, accumulated in run-index order. Internal to the report
// writers; exposed only so the streaming classes can hold it by value.
struct CampaignGridAggregate {
  std::string name;
  size_t runs = 0;
  size_t failed = 0;
  uint64_t bytes_written = 0;
  uint64_t bytes_read = 0;
  double sum_write_mib_per_sec = 0.0;
  double min_write_mib_per_sec = 0.0;
  double max_write_mib_per_sec = 0.0;
  size_t reached_target = 0;
  size_t bricked = 0;
};

// Streams the full machine-readable report: campaign header, per-run records
// (including wear-level transitions), and per-grid aggregates. Excludes
// wall-clock. Usage: Begin, AddRun xN in index order, Finish.
class CampaignJsonStream {
 public:
  explicit CampaignJsonStream(std::ostream& os) : os_(os) {}

  void Begin(const std::string& name, uint64_t seed);
  void AddRun(const RunRecord& run);
  void Finish();

 private:
  std::ostream& os_;
  bool any_run_ = false;
  std::vector<CampaignGridAggregate> grids_;
};

// Streams one CSV row per run with the headline metrics. The header row is
// written by Begin.
class CampaignCsvStream {
 public:
  explicit CampaignCsvStream(std::ostream& os) : os_(os) {}

  void Begin();
  void AddRun(const RunRecord& run);

 private:
  std::ostream& os_;
};

// Accumulates the fixed-width terminal table. Rows are stored as formatted
// strings only (column sizing needs the full set), not as RunRecords.
class CampaignSummaryStream {
 public:
  CampaignSummaryStream();

  void AddRun(const RunRecord& run);
  void Finish(std::ostream& os);

 private:
  TableReporter table_;
};

// Batch wrappers over the streaming writers (see header comment).
void WriteCampaignJson(std::ostream& os, const CampaignOutcome& outcome);
void WriteCampaignCsv(std::ostream& os, const CampaignOutcome& outcome);
void PrintCampaignSummary(std::ostream& os, const CampaignOutcome& outcome);

}  // namespace flashsim

#endif  // SRC_CAMPAIGN_REPORT_H_
