// §2.2 what-if: heat-accelerated self-healing ("this technology is not yet
// widely used"). If the firmware could periodically anneal the array and
// recover a fraction of accumulated wear, how much longer would the device
// survive the paper's attack?
//
// Method: eMMC 8GB model under 4 KiB random rewrites; an anneal pass runs
// after every N GiB of host writes (standing in for idle maintenance
// windows), recovering a fraction of each good block's P/E count. Reported:
// I/O volume and time to end of life vs the no-healing baseline.

#include <cstdio>
#include <iostream>

#include "src/device/catalog.h"
#include "src/ftl/page_map_ftl.h"
#include "src/simcore/units.h"
#include "src/wearlab/report.h"
#include "src/wearlab/wearout_experiment.h"

using namespace flashsim;

namespace {

constexpr SimScale kScale{32, 32};

struct HealingResult {
  double tib_to_eol = 0.0;
  double days_to_eol = 0.0;
  bool reached_eol = false;
};

HealingResult RunWithHealing(double recovery_fraction, uint64_t anneal_every_bytes,
                             uint64_t volume_cap) {
  auto device = MakeEmmc8(kScale, /*seed=*/19);
  auto* ftl = dynamic_cast<PageMapFtl*>(&device->mutable_ftl());
  WearWorkloadConfig w;
  w.footprint_bytes = (400 * kMiB) / kScale.capacity_div;
  WearOutExperiment exp(*device, w);

  HealingResult result;
  uint64_t written = 0;
  while (written < volume_cap) {
    // Pace strictly by byte volume (healing makes the indicator oscillate,
    // so level transitions are not a usable pacing signal here).
    const WearRunOutcome out = exp.Run(1000000, anneal_every_bytes);
    written += out.total_host_bytes;
    result.days_to_eol += out.total_hours * kScale.VolumeFactor() / 24.0;
    if (out.bricked || device->QueryHealth().life_time_est_a >= 11) {
      result.reached_eol = true;
      break;
    }
    if (recovery_fraction > 0.0) {
      // Idle-window anneal: wear partially recovers; the pass itself costs
      // time (the device is offline for it).
      const SimDuration pass = ftl->mutable_chip().AnnealAll(
          recovery_fraction, SimDuration::Millis(2));
      device->clock().AdvanceWithCategory(pass, "anneal");
      result.days_to_eol += pass.ToHoursF() * kScale.VolumeFactor() / 24.0;
    }
  }
  result.tib_to_eol =
      static_cast<double>(written) * kScale.VolumeFactor() / kTiB;
  return result;
}

}  // namespace

int main() {
  std::printf("=== Self-healing ablation (§2.2 future work): anneal passes vs "
              "attack lifetime ===\n\n");
  TableReporter table({"Healing policy", "I/O to EOL (TiB)", "Attack days to EOL",
                       "Extension"});
  // Anneal after every ~16 full-device rewrites (a periodic maintenance
  // window); cap runs at ~7x the baseline budget. Healing creates a wear
  // *equilibrium*: if a pass recovers more wear than a window adds, the
  // device never reaches EOL under this attack — the interesting threshold.
  const uint64_t anneal_every = 1 * kGiB;
  const uint64_t cap = 64 * kGiB;

  const HealingResult baseline = RunWithHealing(0.0, anneal_every, cap);
  struct Policy {
    const char* label;
    double fraction;
  };
  table.AddRow({"none (today's devices)", Fmt(baseline.tib_to_eol, 2),
                Fmt(baseline.days_to_eol, 1), "1.0x"});
  for (const Policy& p : {Policy{"anneal, 2% recovery", 0.02},
                          Policy{"anneal, 5% recovery", 0.05},
                          Policy{"anneal, 10% recovery", 0.10},
                          Policy{"anneal, 15% recovery", 0.15}}) {
    const HealingResult r = RunWithHealing(p.fraction, anneal_every, cap);
    std::string extension =
        r.reached_eol ? Fmt(r.tib_to_eol / baseline.tib_to_eol, 1) + "x"
                      : "> " + Fmt(r.tib_to_eol / baseline.tib_to_eol, 1) + "x (cap)";
    table.AddRow({p.label, Fmt(r.tib_to_eol, 2), Fmt(r.days_to_eol, 1), extension});
  }
  table.Print(std::cout);
  std::printf(
      "\nReading: light annealing stretches the write budget; past the\n"
      "equilibrium threshold (recovery per window > wear per window) the\n"
      "device outlives the volume cap entirely. Healing hardware would blunt\n"
      "this attack — but it is 'not yet widely used' (§2.2), and the budget\n"
      "for any real anneal rate stays finite.\n");
  return 0;
}
