// uFLIP-style latency envelopes for the queued device model (DESIGN.md §15).
//
// Drives sequential / random / strided write patterns at two request sizes
// and two queue configurations against the eMMC 8GB model, recording the
// device's per-request latency digests (p50/p95/p99). Every reported number
// is simulated — no wall-clock — so BENCH_latency.json is byte-stable across
// machines and runs, and CI diffs it against the committed baseline.
//
// Two gates (exit code):
//   1. Degenerate-mode equivalence: the same random-write workload run on
//      the flat synchronous path and on the event engine forced to
//      channels=1/depth=1 must leave byte-identical device snapshots
//      (clock, wear, meters, digests).
//   2. Pattern envelope: random-write p99 >= 2x sequential-write p99 at
//      depth 1 (the acceptance bar for the mechanistic GC-driven tail).
//
// Run from the repo root (writes BENCH_latency.json to the working
// directory): ./build/bench/latency [--ci]

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/device/catalog.h"
#include "src/simcore/snapshot.h"
#include "src/simcore/units.h"

using namespace flashsim;

namespace {

constexpr SimScale kScale{32, 32};
constexpr uint64_t kSeed = 7;
constexpr uint64_t kBatch = 64;  // host submission group size

enum class Pattern { kSequential, kRandom, kStrided };

const char* PatternName(Pattern p) {
  switch (p) {
    case Pattern::kSequential:
      return "sequential";
    case Pattern::kRandom:
      return "random";
    case Pattern::kStrided:
      return "strided";
  }
  return "?";
}

struct Scenario {
  Pattern pattern;
  uint64_t request_bytes;
  uint32_t depth;
  uint32_t channels;
};

struct ScenarioResult {
  Scenario scenario;
  uint64_t lat_count = 0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double sim_seconds = 0.0;
  double device_wa = 0.0;
};

// Deterministic offset stream: footprint rewritten ~3x so the FTL reaches
// steady-state GC under the random and strided patterns.
class OffsetStream {
 public:
  OffsetStream(Pattern pattern, uint64_t request, uint64_t footprint)
      : pattern_(pattern),
        request_(request),
        slots_(footprint / request),
        stride_slots_(16) {}

  uint64_t Next() {
    switch (pattern_) {
      case Pattern::kSequential: {
        const uint64_t off = cursor_ * request_;
        cursor_ = (cursor_ + 1) % slots_;
        return off;
      }
      case Pattern::kRandom: {
        state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
        return ((state_ >> 17) % slots_) * request_;
      }
      case Pattern::kStrided: {
        const uint64_t off = cursor_ * request_;
        cursor_ += stride_slots_;
        if (cursor_ >= slots_) {
          cursor_ = (cursor_ % stride_slots_) + 1;  // next phase
          if (cursor_ >= stride_slots_) {
            cursor_ = 0;
          }
        }
        return off;
      }
    }
    return 0;
  }

 private:
  Pattern pattern_;
  uint64_t request_;
  uint64_t slots_;
  uint64_t stride_slots_;
  uint64_t cursor_ = 0;
  uint64_t state_ = kSeed;
};

// Runs one scenario on a fresh device; `force_event` routes even C=1/D=1
// through the event engine (equivalence gate). Returns the device so gates
// can snapshot it.
std::unique_ptr<FlashDevice> RunScenario(const Scenario& s, bool force_event,
                                         ScenarioResult* out) {
  std::unique_ptr<FlashDevice> device = MakeEmmc8(kScale, kSeed);
  device->ConfigureQueue(s.channels, s.depth, force_event);
  device->EnableLatencyDigests();

  // 95% logical utilization rewritten 8x over: deep enough into steady-state
  // GC that victim blocks are mostly valid under random rewrites — the GC
  // burst rate per host page has to clear 1% for the tail to show at p99 —
  // which is where the pattern-dependent envelope comes from.
  const uint64_t footprint =
      (device->CapacityBytes() * 95 / 100 / s.request_bytes) * s.request_bytes;
  const uint64_t total = 8 * footprint;
  OffsetStream offsets(s.pattern, s.request_bytes, footprint);

  std::vector<IoRequest> group(kBatch);
  uint64_t written = 0;
  while (written < total) {
    size_t n = 0;
    for (; n < kBatch && written < total; ++n, written += s.request_bytes) {
      group[n] = IoRequest{IoKind::kWrite, offsets.Next(), s.request_bytes};
    }
    const BatchCompletion done = device->SubmitBatch(group.data(), n);
    if (!done.status.ok()) {
      std::fprintf(stderr, "scenario %s/%llu failed: %s\n",
                   PatternName(s.pattern),
                   static_cast<unsigned long long>(s.request_bytes),
                   done.status.message().c_str());
      return nullptr;
    }
  }

  if (out != nullptr) {
    out->scenario = s;
    const WearDigest* d = device->write_latency_digest();
    out->lat_count = d->count();
    out->p50_us = d->Quantile(0.50);
    out->p95_us = d->Quantile(0.95);
    out->p99_us = d->Quantile(0.99);
    out->sim_seconds = device->clock().Now().ToSecondsF();
    out->device_wa = device->ftl().Stats().WriteAmplification();
  }
  return device;
}

std::vector<uint8_t> SnapshotOf(const FlashDevice& device) {
  SnapshotWriter w;
  device.SaveState(w);
  return w.buffer();
}

void WriteJson(const std::vector<ScenarioResult>& results) {
  std::FILE* f = std::fopen("BENCH_latency.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_latency.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"latency\",\n");
  std::fprintf(f, "  \"device\": \"eMMC 8GB\",\n");
  std::fprintf(f, "  \"sim_scale\": {\"capacity_div\": %u, \"endurance_div\": %u},\n",
               kScale.capacity_div, kScale.endurance_div);
  std::fprintf(f, "  \"seed\": %llu,\n", static_cast<unsigned long long>(kSeed));
  std::fprintf(f, "  \"scenarios\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    std::fprintf(f,
                 "    {\"pattern\": \"%s\", \"request_bytes\": %llu, "
                 "\"depth\": %u, \"channels\": %u, \"requests\": %llu, "
                 "\"p50_us\": %.3f, \"p95_us\": %.3f, \"p99_us\": %.3f, "
                 "\"sim_seconds\": %.6f, \"device_wa\": %.4f}%s\n",
                 PatternName(r.scenario.pattern),
                 static_cast<unsigned long long>(r.scenario.request_bytes),
                 r.scenario.depth, r.scenario.channels,
                 static_cast<unsigned long long>(r.lat_count), r.p50_us,
                 r.p95_us, r.p99_us, r.sim_seconds, r.device_wa,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  // --ci runs the identical (fully simulated, deterministic) matrix; the
  // flag only trims stdout. Gates always apply.
  const bool ci = argc > 1 && std::strcmp(argv[1], "--ci") == 0;

  const std::vector<Scenario> matrix = {
      {Pattern::kSequential, 4 * kKiB, 1, 1}, {Pattern::kRandom, 4 * kKiB, 1, 1},
      {Pattern::kStrided, 4 * kKiB, 1, 1},    {Pattern::kSequential, 64 * kKiB, 1, 1},
      {Pattern::kRandom, 64 * kKiB, 1, 1},    {Pattern::kStrided, 64 * kKiB, 1, 1},
      {Pattern::kSequential, 4 * kKiB, 8, 2}, {Pattern::kRandom, 4 * kKiB, 8, 2},
      {Pattern::kStrided, 4 * kKiB, 8, 2},    {Pattern::kSequential, 64 * kKiB, 8, 2},
      {Pattern::kRandom, 64 * kKiB, 8, 2},    {Pattern::kStrided, 64 * kKiB, 8, 2},
  };

  if (!ci) {
    std::printf("=== Write-latency envelopes: eMMC 8GB (sim scale %ux/%ux) ===\n",
                kScale.capacity_div, kScale.endurance_div);
  }

  std::vector<ScenarioResult> results;
  for (const Scenario& s : matrix) {
    ScenarioResult r;
    if (RunScenario(s, /*force_event=*/false, &r) == nullptr) {
      return 1;
    }
    if (!ci) {
      std::printf("  %-10s %6llu B  depth=%u ch=%u  p50=%9.1f us  p95=%9.1f us  "
                  "p99=%9.1f us  WA=%.2f\n",
                  PatternName(s.pattern),
                  static_cast<unsigned long long>(s.request_bytes), s.depth,
                  s.channels, r.p50_us, r.p95_us, r.p99_us, r.device_wa);
    }
    results.push_back(r);
  }

  // Gate 1: degenerate-mode equivalence. The random 4 KiB depth-1 scenario
  // (GC active, non-uniform service times) on the flat path vs the event
  // engine forced to C=1/D=1 must end in byte-identical device state.
  const Scenario degenerate{Pattern::kRandom, 4 * kKiB, 1, 1};
  ScenarioResult flat_r, event_r;
  std::unique_ptr<FlashDevice> flat_dev =
      RunScenario(degenerate, /*force_event=*/false, &flat_r);
  std::unique_ptr<FlashDevice> event_dev =
      RunScenario(degenerate, /*force_event=*/true, &event_r);
  if (flat_dev == nullptr || event_dev == nullptr) {
    return 1;
  }
  const bool equivalent = SnapshotOf(*flat_dev) == SnapshotOf(*event_dev);

  // Gate 2: pattern-dependent envelope at depth 1. Gated at 64 KiB: GC
  // bursts are charged at block-allocation boundaries (1 per 128 host
  // pages), so a 16-page request crosses one every ~8 requests and the
  // random-write tail towers over sequential; single-page requests put the
  // burst rate (0.78%) just under the p99 cutoff.
  double seq_p99 = 0.0, rand_p99 = 0.0;
  for (const ScenarioResult& r : results) {
    if (r.scenario.request_bytes == 64 * kKiB && r.scenario.depth == 1) {
      if (r.scenario.pattern == Pattern::kSequential) {
        seq_p99 = r.p99_us;
      } else if (r.scenario.pattern == Pattern::kRandom) {
        rand_p99 = r.p99_us;
      }
    }
  }
  const bool envelope = rand_p99 >= 2.0 * seq_p99 && seq_p99 > 0.0;

  WriteJson(results);
  std::printf("GATE_LATENCY equivalent=%s envelope=%s rand_p99=%.1f seq_p99=%.1f\n",
              equivalent ? "yes" : "no", envelope ? "yes" : "no", rand_p99,
              seq_p99);
  if (!ci) {
    std::printf("  wrote BENCH_latency.json\n");
  }
  return (equivalent && envelope) ? 0 : 1;
}
