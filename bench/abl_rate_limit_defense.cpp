// §4.5 defense evaluation: wear-budget rate limiting and per-app accounting.
//
// The paper proposes (a) exposing the wear indicator, (b) per-app I/O
// accounting, and (c) rate-limiting writes to guarantee a lifespan target —
// warning that naive limiting hurts benign bursty apps. This bench runs a
// benign bursty app (camera: periodic 300 MB bursts) alongside the wear
// attack, with the limiter off / naive (global bucket) / selective (per-app
// bucket), and reports attacker throughput, benign-app burst latency, and
// the projected device lifetime under each regime.

#include <cstdio>
#include <iostream>

#include "src/device/catalog.h"
#include "src/simcore/units.h"
#include "src/wearlab/phone.h"
#include "src/wearlab/report.h"

using namespace flashsim;

namespace {

constexpr SimScale kScale{32, 1};
constexpr AppId kCameraApp = 7;
constexpr uint64_t kBurstBytes = 300 * kMiB / kScale.capacity_div;

struct RunResult {
  double attacker_mib_per_sec = 0.0;
  double camera_burst_seconds = 0.0;
  // Attacker write rate over the rate that would make the device last the
  // 3-year target ("1.0" = exactly on budget). Scale-free.
  double budget_overuse = 0.0;
  uint64_t attacker_gib = 0;
};

RunResult RunScenario(bool limiter, bool selective) {
  AndroidSystemConfig sys_cfg;
  sys_cfg.enable_rate_limiter = limiter;
  sys_cfg.rate_limiter.selective = selective;
  sys_cfg.rate_limiter.target_lifetime_days = 3 * 365.0;
  sys_cfg.rate_limiter.rated_rewrites = 1100.0;
  sys_cfg.rate_limiter.burst_bytes = 2 * kGiB / kScale.capacity_div;

  Phone phone(MakeMotoE8(kScale, /*seed=*/33), PhoneFsType::kExtFs, sys_cfg);
  (void)phone.FillStaticData(0.40);

  AttackAppConfig attack;
  attack.file_count = 4;
  attack.file_bytes = (100 * kMiB) / kScale.capacity_div;
  attack.write_bytes = 64 * 1024;  // bigger chunks: keeps the bench quick
  WearAttackApp app(phone.system(), attack);
  if (!app.Install().ok()) {
    return {};
  }

  RunResult result;
  (void)phone.system().AppCreate(kCameraApp, "video.mp4");
  const SimTime start = phone.system().Now();
  double burst_seconds_total = 0.0;
  int bursts = 0;
  // 12 simulated hours: attack runs flat out; camera fires a burst per hour.
  for (int hour = 0; hour < 12; ++hour) {
    AttackProgress progress =
        app.RunUntil(phone.system().Now() + SimDuration::Minutes(60));
    result.attacker_gib += progress.bytes_written;
    // Camera burst (new footage appended each hour).
    const SimTime burst_start = phone.system().Now();
    Result<SimDuration> burst = phone.system().AppWrite(
        kCameraApp, "video.mp4", static_cast<uint64_t>(hour) * kBurstBytes,
        kBurstBytes, /*sync=*/false);
    if (burst.ok()) {
      burst_seconds_total += (phone.system().Now() - burst_start).ToSecondsF();
      ++bursts;
    }
  }
  const double hours = (phone.system().Now() - start).ToHoursF();
  result.attacker_mib_per_sec =
      BytesToMiB(result.attacker_gib) / (hours * 3600.0);
  result.camera_burst_seconds = bursts > 0 ? burst_seconds_total / bursts : 0.0;

  // Sustainable rate for the 3-year target on THIS device (scale-free ratio).
  const double sustainable_bytes_per_sec =
      static_cast<double>(phone.device().CapacityBytes()) * 1100.0 /
      (3 * 365.0 * 86400.0);
  result.budget_overuse =
      result.attacker_mib_per_sec * kMiB / sustainable_bytes_per_sec;
  return result;
}

}  // namespace

int main() {
  std::printf("=== Rate-limit defense (§4.5): benign camera app vs wear attack "
              "===\n\n");
  TableReporter table({"Limiter", "Attacker MiB/s", "Budget overuse",
                       "Camera 300MB burst (s)"});
  struct Scenario {
    const char* label;
    bool limiter;
    bool selective;
  };
  for (const Scenario& s : {Scenario{"off (stock Android)", false, false},
                            Scenario{"naive (global budget)", true, false},
                            Scenario{"selective (per-app)", true, true}}) {
    const RunResult r = RunScenario(s.limiter, s.selective);
    table.AddRow({s.label, Fmt(r.attacker_mib_per_sec, 3),
                  Fmt(r.budget_overuse, 1) + "x", Fmt(r.camera_burst_seconds, 2)});
  }
  table.Print(std::cout);
  std::printf(
      "\nShape: without limiting the attacker kills the device in days; a naive\n"
      "global budget saves the flash but makes the camera burst crawl once the\n"
      "attacker drains the bucket; the selective limiter preserves both the\n"
      "lifespan target and benign burst latency (the paper's preferred design).\n");
  return 0;
}
