// §1 claim: the attack "is not hampered by various optimizations such as
// improved mobile storage interfaces [UFS]" — in fact a faster interface
// makes the phone die FASTER, because the wear budget is fixed in bytes and
// the interface only changes how quickly an app can push bytes.
//
// Method: one 8 GB flash array behind four interface generations (eMMC
// HS200-class through UFS gear 3-class bus speed and parallelism); report
// attack throughput, I/O to EOL (unchanged), and time to EOL (collapsing).

#include <cstdio>
#include <iostream>

#include "src/device/catalog.h"
#include "src/ftl/page_map_ftl.h"
#include "src/simcore/units.h"
#include "src/wearlab/report.h"
#include "src/wearlab/wearout_experiment.h"

using namespace flashsim;

namespace {

constexpr SimScale kScale{32, 32};

struct InterfaceCase {
  const char* label;
  double bus_mib_per_sec;
  uint32_t parallelism;
  int64_t overhead_us;
};

void RunInterface(const InterfaceCase& c, TableReporter& table) {
  NandChipConfig nand = MakeMlcConfig();
  nand.channels = 2;
  nand.dies_per_channel = 2;
  nand.blocks_per_die = 4096 / kScale.capacity_div;
  nand.rated_pe_cycles = std::max(20u, 3000 / kScale.endurance_div);
  FtlConfig ftl;
  ftl.over_provisioning = 0.07;
  ftl.spare_blocks = 24;
  ftl.health_rated_pe = std::max(20u, 1100 / kScale.endurance_div);
  ftl.wear_level_threshold = std::max(2u, ftl.health_rated_pe / 50);
  ftl.wear_level_check_interval = 16;
  FlashDeviceConfig dev;
  dev.name = c.label;
  dev.perf.per_request_overhead = SimDuration::Micros(c.overhead_us);
  dev.perf.bus_mib_per_sec = c.bus_mib_per_sec;
  dev.perf.effective_parallelism = c.parallelism;
  auto impl = std::make_unique<PageMapFtl>(nand, ftl, /*seed=*/29);
  FlashDevice device(std::move(dev), std::move(impl));

  WearWorkloadConfig w;
  w.request_bytes = 64 * 1024;  // the attacker uses the sweet spot
  w.footprint_bytes = (400 * kMiB) / kScale.capacity_div;
  WearOutExperiment exp(device, w);
  const WearRunOutcome out = exp.RunUntilLevel(WearType::kSinglePool, 11, 1 * kTiB);

  const double factor = kScale.VolumeFactor();
  const double tib = static_cast<double>(out.total_host_bytes) * factor / kTiB;
  const double days = out.total_hours * factor / 24.0;
  const double mib_per_sec =
      out.total_hours > 0
          ? static_cast<double>(out.total_host_bytes) / kMiB / (out.total_hours * 3600)
          : 0;
  table.AddRow({c.label, Fmt(mib_per_sec, 1), Fmt(tib, 2), Fmt(days, 1)});
}

}  // namespace

int main() {
  std::printf("=== Interface-speed ablation: same flash, faster pipes (§1: "
              "'not hampered by improved storage interfaces') ===\n\n");
  TableReporter table({"Interface", "Attack MiB/s", "I/O to EOL (TiB)",
                       "Days to EOL"});
  RunInterface({"eMMC 4.x class (100 MB/s, par 4)", 100, 4, 150}, table);
  RunInterface({"eMMC 5.1 HS400 (200 MB/s, par 8)", 200, 8, 120}, table);
  RunInterface({"UFS 2.1 class (350 MB/s, par 16)", 350, 16, 90}, table);
  RunInterface({"UFS 3.x class (700 MB/s, par 32)", 700, 32, 70}, table);
  table.Print(std::cout);
  std::printf(
      "\nShape: the write budget (I/O to EOL) is an invariant of the flash\n"
      "array — interface generations change only the attack *rate*, so each\n"
      "speed bump shortens the device's life under attack proportionally.\n");
  return 0;
}
