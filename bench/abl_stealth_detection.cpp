// §4.4 "Detection" study: can the attack app be noticed before the phone
// bricks?
//
// Reproduces the paper's two evasions and its thermal caveat:
//  * Power monitor attributes I/O energy only on battery -> run only while
//    charging and the battery stats stay clean.
//  * Process monitor is user-visible only while the screen is on -> suspend
//    when the screen lights and it never catches a sample.
//  * Heat while charging is attributed to the charger.
//
// The aggressive policy runs for four daytime hours (on battery, screen
// cycling); the stealth policy runs for a full day but only acts inside its
// charging/screen-off window. Reported: bytes, effective rate, what each
// monitor saw, and the stealth slowdown factor.

#include <cstdio>
#include <iostream>

#include "src/device/catalog.h"
#include "src/simcore/units.h"
#include "src/wearlab/phone.h"
#include "src/wearlab/report.h"

using namespace flashsim;

namespace {
// Capacity /16 keeps runs quick while the (unscaled) endurance budget
// comfortably survives the study — wear is not the variable here.
constexpr SimScale kScale{16, 1};
}  // namespace

int main() {
  std::printf("=== Detection study (§4.4): aggressive vs stealth attack ===\n\n");

  TableReporter table({"Policy", "Window", "GiB written", "MiB/s eff.",
                       "Power flagged", "Joules", "Process flagged", "Samples",
                       "Thermal susp."});
  double aggressive_rate = 0.0;
  double stealth_rate = 0.0;
  double window = 0.0;

  for (AttackPolicy policy : {AttackPolicy::kAggressive, AttackPolicy::kStealth}) {
    Phone phone(MakeMotoE8(kScale, /*seed=*/21), PhoneFsType::kExtFs);
    (void)phone.FillStaticData(0.40);
    // Start the study at 08:00 — phone off the charger, user awake.
    phone.system().AdvanceIdle(SimDuration::Hours(8));
    const SimDuration duration = policy == AttackPolicy::kAggressive
                                     ? SimDuration::Hours(4)
                                     : SimDuration::Hours(24);
    const DetectionOutcome out = RunDetectionExperiment(phone, policy, duration);
    window = out.stealth_window_fraction;
    if (policy == AttackPolicy::kAggressive) {
      aggressive_rate = out.effective_mib_per_sec;
    } else {
      stealth_rate = out.effective_mib_per_sec;
    }
    table.AddRow({AttackPolicyName(policy),
                  policy == AttackPolicy::kAggressive ? "08:00-12:00" : "24h",
                  FmtGiB(out.bytes_written, 1),
                  Fmt(out.effective_mib_per_sec),
                  out.detection.power_flagged ? "YES" : "no",
                  Fmt(out.detection.attributed_joules, 1),
                  out.detection.process_flagged ? "YES" : "no",
                  std::to_string(out.detection.process_samples_caught),
                  out.detection.thermal_suspicion ? "YES" : "no"});
  }
  table.Print(std::cout);

  std::printf("\nStealth window (charging && screen off): %s of each day\n",
              FmtPercent(window, 1).c_str());
  if (stealth_rate > 0) {
    std::printf("Stealth slowdown factor: %.2fx — a phone the aggressive attack "
                "bricks in N days takes ~%.2f*N days\nwhile showing the user "
                "nothing in battery stats or the running-apps view.\n",
                aggressive_rate / stealth_rate, aggressive_rate / stealth_rate);
  }
  std::printf("\nPaper shape: the aggressive attack is flagged by the power and "
              "process monitors (and runs hot);\nthe stealth variant is flagged "
              "by neither and still bricks the phone within a small factor.\n");
  return 0;
}
