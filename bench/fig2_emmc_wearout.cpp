// Figure 2 reproduction: I/O volume needed to increment the wear-out
// indicator on the two external eMMC chips, driving 4 KiB random rewrites of
// a 400 MB footprint (the paper's "four 100 MB files") until end of life.
//
// Paper targets: eMMC 8GB <= 992 GiB per 10% level (so ~10 TiB to EOL, about
// 3x less than the 3K-rewrite back-of-envelope); eMMC 16GB ~23 TiB to EOL
// (~2.3 TiB per Type B level). Volume is roughly constant across levels.

#include <cstdio>
#include <iostream>

#include "src/device/catalog.h"
#include "src/simcore/units.h"
#include "src/wearlab/report.h"
#include "src/wearlab/wearout_experiment.h"

using namespace flashsim;

namespace {

constexpr SimScale kScale{32, 32};

void RunDevice(const CatalogEntry& entry, WearType type) {
  auto device = entry.make(kScale, /*seed=*/3);
  WearWorkloadConfig workload;
  workload.pattern = AccessPattern::kRandom;
  workload.request_bytes = 4096;
  workload.footprint_bytes = (400 * kMiB) / kScale.capacity_div;
  WearOutExperiment experiment(*device, workload);

  const WearRunOutcome outcome =
      experiment.RunUntilLevel(type, 11, /*max_host_bytes=*/1 * kTiB);

  TableReporter table({"Wear-out Indicator", "I/O Amount (GiB)", "Hours", "WA"});
  double total_gib = 0.0;
  for (const WearTransition& t : outcome.transitions) {
    if (t.type != type) {
      continue;
    }
    const double gib =
        static_cast<double>(t.host_bytes) * kScale.VolumeFactor() / kGiB;
    const double hours = t.hours * kScale.VolumeFactor();
    total_gib += gib;
    table.AddRow({std::to_string(t.from_level) + "-" + std::to_string(t.to_level),
                  Fmt(gib, 1), Fmt(hours, 1), Fmt(t.write_amplification)});
  }
  std::printf("\n%s — 4 KiB random rewrites of a 400 MB footprint\n",
              entry.name.c_str());
  table.Print(std::cout);
  std::printf("  total to end of life: %.2f TiB%s\n", total_gib / 1024.0,
              outcome.bricked ? " (device bricked)" : "");
}

}  // namespace

int main() {
  std::printf("=== Figure 2: I/O needed to increment the wear-out indicator "
              "(sim scale %ux cap, %ux endurance; volumes re-scaled) ===\n",
              kScale.capacity_div, kScale.endurance_div);
  RunDevice(DeviceCatalog()[1], WearType::kSinglePool);  // eMMC 8GB
  RunDevice(DeviceCatalog()[2], WearType::kTypeB);       // eMMC 16GB
  std::printf("\nPaper targets: eMMC 8GB <= 992 GiB/level; eMMC 16GB ~2.3 TiB/level "
              "(23 TiB to EOL);\nvolume roughly constant across levels.\n");
  return 0;
}
