// Campaign CLI: run a declarative experiment campaign and emit its reports.
//
//   $ ./build/bench/campaign --spec examples/specs/paper_grid.spec
//         --threads 4 --out out/
//
// Writes <out>/<campaign>.json and <out>/<campaign>.csv and prints a summary
// table. The reports are byte-identical for any --threads value; only the
// wall-clock line changes.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "src/campaign/report.h"
#include "src/campaign/runner.h"
#include "src/campaign/spec.h"

using namespace flashsim;

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --spec FILE [--threads N] [--out DIR] [--quiet]\n"
               "  --spec FILE   campaign spec (see examples/specs/)\n"
               "  --threads N   worker threads (default 1)\n"
               "  --out DIR     directory for <campaign>.json/.csv (default .)\n"
               "  --quiet       suppress the per-run summary table\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path;
  std::string out_dir = ".";
  int threads = 1;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--spec" && i + 1 < argc) {
      spec_path = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (arg == "--out" && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  if (spec_path.empty() || threads < 1) {
    Usage(argv[0]);
    return 2;
  }

  Result<CampaignSpec> parsed = LoadCampaignSpecFile(spec_path);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  const CampaignSpec& spec = parsed.value();
  const size_t run_count = ExpandRuns(spec).size();
  std::printf("campaign '%s': %zu runs across %zu grids, %d thread%s\n",
              spec.name.c_str(), run_count, spec.grids.size(), threads,
              threads == 1 ? "" : "s");

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "error: cannot create %s: %s\n", out_dir.c_str(),
                 ec.message().c_str());
    return 1;
  }
  const std::string json_path = out_dir + "/" + spec.name + ".json";
  const std::string csv_path = out_dir + "/" + spec.name + ".csv";
  std::ofstream json(json_path);
  std::ofstream csv(csv_path);
  if (!json || !csv) {
    std::fprintf(stderr, "error: cannot open reports under %s\n",
                 out_dir.c_str());
    return 1;
  }

  // Stream every finished run straight into the report writers: records are
  // serialized in index order as they complete and then dropped, so memory
  // stays O(threads) no matter how large the grid is.
  CampaignJsonStream json_stream(json);
  CampaignCsvStream csv_stream(csv);
  CampaignSummaryStream summary;
  json_stream.Begin(spec.name, spec.seed);
  csv_stream.Begin();

  CampaignRunOptions options;
  options.threads = threads;
  const CampaignStreamResult result = RunCampaignStreaming(
      spec, options, [&](RunRecord&& run) {
        json_stream.AddRun(run);
        csv_stream.AddRun(run);
        if (!quiet) {
          summary.AddRun(run);
        }
      });
  json_stream.Finish();

  if (!quiet) {
    summary.Finish(std::cout);
  }
  std::printf("\n%zu/%zu runs ok (%zu hard failures), wall %.2f s\n",
              result.run_count - result.hard_failures, result.run_count,
              result.hard_failures, result.wall_seconds);
  std::printf("reports: %s  %s\n", json_path.c_str(), csv_path.c_str());
  return result.hard_failures == 0 ? 0 : 1;
}
