// Figure 3 reproduction: wall-clock time to increment the wear-out indicator
// (levels 1-2, 2-3, 3-4) on two smartphones and two external eMMC chips,
// plus the §4.4 budget-phone outcome (BLU devices brick with no usable
// indicator).
//
// Paper shape: every device's storage wears out in hours-to-days per level —
// days to weeks to total failure; timing varies with device throughput and
// file system (F2FS slower than Ext4 per level despite needing less app I/O).

#include <cstdio>
#include <iostream>

#include "src/device/catalog.h"
#include "src/simcore/units.h"
#include "src/wearlab/phone.h"
#include "src/wearlab/report.h"
#include "src/wearlab/wearout_experiment.h"

using namespace flashsim;

namespace {

constexpr SimScale kScale{32, 32};
constexpr uint32_t kLevels = 3;  // transitions 1-2, 2-3, 3-4

// Scaled attack-app footprint: the paper's four 100 MB files.
AttackAppConfig ScaledAttack() {
  AttackAppConfig attack;
  attack.file_count = 4;
  attack.file_bytes = (100 * kMiB) / kScale.capacity_div;
  attack.write_bytes = 4096;
  attack.sync = true;
  attack.policy = AttackPolicy::kAggressive;
  return attack;
}

std::vector<double> RawDeviceHours(const CatalogEntry& entry, WearType type) {
  auto device = entry.make(kScale, /*seed=*/7);
  WearWorkloadConfig workload;
  workload.footprint_bytes = (400 * kMiB) / kScale.capacity_div;
  WearOutExperiment experiment(*device, workload);
  std::vector<double> hours;
  const WearRunOutcome out = experiment.RunUntilLevel(type, 1 + kLevels, 1 * kTiB);
  for (const WearTransition& t : out.transitions) {
    if (t.type == type && hours.size() < kLevels) {
      hours.push_back(t.hours * kScale.VolumeFactor());
    }
  }
  return hours;
}

std::vector<double> PhoneHours(std::unique_ptr<FlashDevice> device,
                               PhoneFsType fs_type) {
  Phone phone(std::move(device), fs_type);
  Status fill = phone.FillStaticData(0.55);
  if (!fill.ok()) {
    std::fprintf(stderr, "static fill failed: %s\n", fill.ToString().c_str());
    return {};
  }
  const PhoneWearOutcome out = RunPhoneWearExperiment(
      phone, ScaledAttack(), /*target_level=*/1 + kLevels, SimDuration::Hours(4000));
  std::vector<double> hours;
  for (const PhoneWearRow& row : out.rows) {
    if (hours.size() < kLevels) {
      hours.push_back(row.hours * kScale.VolumeFactor());
    }
  }
  return hours;
}

void AddRow(TableReporter& table, const std::string& label,
            const std::vector<double>& hours) {
  std::vector<std::string> cells = {label};
  for (uint32_t i = 0; i < kLevels; ++i) {
    cells.push_back(i < hours.size() ? Fmt(hours[i], 2) : "-");
  }
  table.AddRow(std::move(cells));
}

void RunBudgetPhone(const CatalogEntry& entry) {
  auto device = entry.make(kScale, /*seed=*/9);
  Phone phone(std::move(device), PhoneFsType::kExtFs);
  (void)phone.FillStaticData(0.50);
  AttackAppConfig attack = ScaledAttack();
  attack.file_count = 1;
  attack.file_bytes =
      std::min<uint64_t>(attack.file_bytes, phone.fs().FreeBytes() / 4);
  WearAttackApp app(phone.system(), attack);
  if (!app.Install().ok()) {
    std::printf("  %-12s install failed (device too small at this scale)\n",
                entry.name.c_str());
    return;
  }
  const SimTime start = phone.system().Now();
  AttackProgress progress = app.RunUntilBricked(SimDuration::Hours(4000));
  const double days = (phone.system().Now() - start).ToHoursF() *
                      kScale.VolumeFactor() / 24.0;
  const HealthReport health = phone.device().QueryHealth();
  std::printf("  %-12s health reporting: %-11s  bricked: %s after %.1f days "
              "(full-device equivalent)\n",
              entry.name.c_str(), health.supported ? "supported" : "unsupported",
              progress.device_bricked ? "YES" : "no", days);
}

}  // namespace

int main() {
  std::printf("=== Figure 3: time (hours, full-device equivalent) to increment "
              "wear-out indicators (sim scale %ux cap, %ux endurance) ===\n\n",
              kScale.capacity_div, kScale.endurance_div);

  TableReporter table({"Device", "1-2 (h)", "2-3 (h)", "3-4 (h)"});
  AddRow(table, "eMMC 8GB", RawDeviceHours(DeviceCatalog()[1], WearType::kSinglePool));
  AddRow(table, "eMMC 16GB", RawDeviceHours(DeviceCatalog()[2], WearType::kTypeB));
  AddRow(table, "Moto E 8GB (Ext4)", PhoneHours(MakeMotoE8(kScale, 7), PhoneFsType::kExtFs));
  AddRow(table, "Moto E 8GB (F2FS)", PhoneHours(MakeMotoE8(kScale, 7), PhoneFsType::kLogFs));
  AddRow(table, "Samsung S6 32GB", PhoneHours(MakeSamsungS6(kScale, 7), PhoneFsType::kExtFs));
  table.Print(std::cout);

  std::printf("\nBudget phones (§4.4): no usable wear indication, brick outright\n");
  RunBudgetPhone(DeviceCatalog()[5]);  // BLU 512MB
  RunBudgetPhone(DeviceCatalog()[6]);  // BLU 4GB
  std::printf("\nPaper shape: every device wears a level in hours-to-days "
              "(days to weeks to kill a phone);\nF2FS takes longer per level "
              "than Ext4; BLU phones brick within ~2 weeks, silently.\n");
  return 0;
}
