// GC-pressure benchmark: linear-scan vs indexed victim selection.
//
// Drives the worst case for victim selection — 4 KiB random rewrites of a
// 90%-utilized device, where every write keeps the free pool pinned at the
// GC watermark — against the eMMC 8GB model at several simulation scales,
// once per VictimSelect mode. The two modes must be bit-exact (identical
// victim-sequence hashes, picks, wear, simulated clock); only wall-clock and
// the candidates-examined counters may differ. The linear scan's pick cost
// grows with device size while the indexed pick stays O(1), so the indexed
// advantage must grow as capacity_div shrinks toward full scale.
//
// Emits BENCH_gc_pressure.json (see EXPERIMENTS.md). Run from the repo root,
// Release build:
//   ./build-release/bench/gc_pressure          # full: capacity_div 32, 8, 1
//   ./build-release/bench/gc_pressure --ci     # CI scale: capacity_div 32
//
// Exit status is non-zero when any scale loses simulation equivalence or the
// indexed build exceeds the fixed candidates-per-pick budget.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/device/catalog.h"
#include "src/ftl/page_map_ftl.h"
#include "src/simcore/units.h"
#include "src/wearlab/wearout_experiment.h"

using namespace flashsim;

namespace {

constexpr uint64_t kSeed = 7;
constexpr uint32_t kEnduranceDiv = 32;
constexpr double kUtilization = 0.92;
// Indexed picks must stay cheap at every scale: a greedy pick probes at most
// pages_per_block+1 buckets (129 on this device), and in steady state far
// fewer. The budget is deliberately loose; the linear scan blows through it
// by orders of magnitude at full scale (one pick examines every block).
constexpr double kIndexedCandidatesPerPickBudget = 256.0;

struct ModeResult {
  VictimSelect select = VictimSelect::kIndexed;
  double wall_seconds = 0.0;
  double pages_per_sec = 0.0;
  uint64_t host_pages = 0;
  uint64_t nand_pages = 0;
  uint64_t erases = 0;
  uint64_t gc_picks = 0;
  uint64_t gc_candidates = 0;
  uint64_t index_rebuilds = 0;
  uint64_t victim_hash = 0;
  uint64_t host_bytes = 0;
  double sim_hours = 0.0;
  uint64_t clock_nanos = 0;
  size_t transitions = 0;
  bool bricked = false;

  double CandidatesPerPick() const {
    return gc_picks == 0 ? 0.0
                         : static_cast<double>(gc_candidates) /
                               static_cast<double>(gc_picks);
  }
};

ModeResult RunMode(uint32_t capacity_div, VictimSelect select,
                   uint64_t rewrite_budget) {
  const SimScale scale{capacity_div, kEnduranceDiv};
  auto device = MakeEmmc8(scale, kSeed);
  auto* ftl = dynamic_cast<PageMapFtl*>(&device->mutable_ftl());
  if (ftl == nullptr) {
    std::fprintf(stderr, "eMMC 8GB is expected to be a PageMapFtl device\n");
    std::exit(2);
  }
  ftl->SetVictimSelect(select);

  WearWorkloadConfig workload;
  workload.pattern = AccessPattern::kRandom;
  workload.request_bytes = 4096;
  workload.rewrite_utilized = true;
  workload.batch_requests = 64;
  WearOutExperiment experiment(*device, workload);
  if (!experiment.SetUtilization(kUtilization).ok()) {
    std::fprintf(stderr, "prefill to %.0f%% utilization failed\n",
                 kUtilization * 100.0);
    std::exit(2);
  }

  // Time only the rewrite phase: the sequential prefill does near-zero GC
  // and would dilute the measured pick cost identically in both modes.
  const auto wall_start = std::chrono::steady_clock::now();
  const WearRunOutcome outcome =
      experiment.RunUntilLevel(WearType::kSinglePool, 11, rewrite_budget);
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - wall_start)
                          .count();

  const FtlStats stats = device->ftl().Stats();
  ModeResult r;
  r.select = select;
  r.wall_seconds = wall;
  r.host_pages = stats.host_pages_written;
  r.nand_pages = stats.nand_pages_written;
  r.erases = stats.erases;
  r.gc_picks = stats.gc_victim_picks;
  r.gc_candidates = stats.gc_victim_candidates;
  r.index_rebuilds = stats.victim_index_rebuilds;
  r.victim_hash = stats.victim_seq_hash;
  r.host_bytes = device->HostBytesWritten();
  r.sim_hours = outcome.total_hours;
  r.clock_nanos = static_cast<uint64_t>(device->clock().Now().nanos());
  r.transitions = outcome.transitions.size();
  r.bricked = outcome.bricked;
  const uint64_t rewrite_pages = outcome.total_host_bytes / 4096;
  r.pages_per_sec = wall > 0 ? static_cast<double>(rewrite_pages) / wall : 0.0;
  return r;
}

// Equivalence covers everything the simulation computes; the candidate and
// rebuild counters differ between modes by design (they measure pick cost).
bool SimEquivalent(const ModeResult& a, const ModeResult& b) {
  return a.victim_hash == b.victim_hash && a.gc_picks == b.gc_picks &&
         a.host_pages == b.host_pages && a.nand_pages == b.nand_pages &&
         a.erases == b.erases && a.host_bytes == b.host_bytes &&
         a.clock_nanos == b.clock_nanos && a.transitions == b.transitions &&
         a.bricked == b.bricked;
}

struct ScaleResult {
  uint32_t capacity_div = 1;
  std::vector<ModeResult> modes;  // [linear, indexed]
  double speedup = 0.0;
  bool equivalent = false;
  bool within_budget = false;
};

void WriteJson(const std::vector<ScaleResult>& scales, bool all_equivalent,
               bool all_within_budget) {
  std::FILE* f = std::fopen("BENCH_gc_pressure.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_gc_pressure.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"gc_pressure\",\n");
  std::fprintf(f, "  \"workload\": \"4 KiB random rewrite of 92%%-utilized space\",\n");
  std::fprintf(f, "  \"device\": \"eMMC 8GB\",\n");
  std::fprintf(f, "  \"endurance_div\": %u,\n", kEnduranceDiv);
  std::fprintf(f, "  \"seed\": %llu,\n", static_cast<unsigned long long>(kSeed));
  std::fprintf(f, "  \"utilization\": %.2f,\n", kUtilization);
  std::fprintf(f, "  \"indexed_candidates_per_pick_budget\": %.0f,\n",
               kIndexedCandidatesPerPickBudget);
  std::fprintf(f, "  \"scales\": [\n");
  for (size_t i = 0; i < scales.size(); ++i) {
    const ScaleResult& s = scales[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"capacity_div\": %u,\n", s.capacity_div);
    std::fprintf(f, "      \"modes\": [\n");
    for (size_t j = 0; j < s.modes.size(); ++j) {
      const ModeResult& m = s.modes[j];
      std::fprintf(
          f,
          "        {\"victim_select\": \"%s\", \"wall_seconds\": %.4f, "
          "\"sim_pages_per_sec\": %.0f, \"host_pages\": %llu, "
          "\"nand_pages\": %llu, \"erases\": %llu, \"gc_picks\": %llu, "
          "\"gc_candidates_examined\": %llu, \"candidates_per_pick\": %.2f, "
          "\"victim_index_rebuilds\": %llu, \"victim_seq_hash\": \"%016llx\", "
          "\"sim_hours\": %.4f, \"transitions\": %zu, \"bricked\": %s}%s\n",
          VictimSelectName(m.select), m.wall_seconds, m.pages_per_sec,
          static_cast<unsigned long long>(m.host_pages),
          static_cast<unsigned long long>(m.nand_pages),
          static_cast<unsigned long long>(m.erases),
          static_cast<unsigned long long>(m.gc_picks),
          static_cast<unsigned long long>(m.gc_candidates),
          m.CandidatesPerPick(),
          static_cast<unsigned long long>(m.index_rebuilds),
          static_cast<unsigned long long>(m.victim_hash), m.sim_hours,
          m.transitions, m.bricked ? "true" : "false",
          j + 1 < s.modes.size() ? "," : "");
    }
    std::fprintf(f, "      ],\n");
    std::fprintf(f, "      \"speedup_indexed_vs_linear\": %.2f,\n", s.speedup);
    std::fprintf(f, "      \"simulation_equivalent\": %s,\n",
                 s.equivalent ? "true" : "false");
    std::fprintf(f, "      \"indexed_within_budget\": %s\n",
                 s.within_budget ? "true" : "false");
    std::fprintf(f, "    }%s\n", i + 1 < scales.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"simulation_equivalent\": %s,\n",
               all_equivalent ? "true" : "false");
  std::fprintf(f, "  \"indexed_within_budget\": %s\n",
               all_within_budget ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool ci = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ci") == 0) {
      ci = true;
    }
  }
  // Rewrite budget: 2x the (scaled) logical capacity keeps every scale in
  // steady-state GC for most of the run; the smallest scale gets a larger
  // multiple so its timed region is long enough to measure (at 2x it is
  // ~40 ms, inside scheduler noise). CI trims the scale list and the budget
  // so the job stays in seconds.
  const std::vector<uint32_t> divs = ci ? std::vector<uint32_t>{32}
                                        : std::vector<uint32_t>{32, 8, 1};
  const int reps = ci ? 2 : 3;  // best-of-N wall clock; sim results must agree

  std::printf("=== GC-pressure victim selection: 4 KiB random rewrites at "
              "%.0f%% utilization, eMMC 8GB ===\n", kUtilization * 100.0);

  std::vector<ScaleResult> scales;
  bool all_equivalent = true;
  bool all_within_budget = true;
  for (uint32_t div : divs) {
    const uint64_t mult = ci ? 1 : (div >= 32 ? 16 : 2);
    const uint64_t budget = mult * (8ull * kGiB) / div;
    ScaleResult s;
    s.capacity_div = div;
    bool reps_equivalent = true;
    for (VictimSelect select :
         {VictimSelect::kLinearScan, VictimSelect::kIndexed}) {
      ModeResult best = RunMode(div, select, budget);
      for (int rep = 1; rep < reps; ++rep) {
        ModeResult again = RunMode(div, select, budget);
        reps_equivalent = reps_equivalent && SimEquivalent(best, again);
        if (again.wall_seconds < best.wall_seconds) {
          best = again;
        }
      }
      std::printf("  div=%2u %-11s wall=%7.2fs %10.0f pages/s  "
                  "picks=%llu cand/pick=%.1f%s\n",
                  div, VictimSelectName(select), best.wall_seconds,
                  best.pages_per_sec,
                  static_cast<unsigned long long>(best.gc_picks),
                  best.CandidatesPerPick(), best.bricked ? "  (bricked)" : "");
      s.modes.push_back(best);
    }
    const ModeResult& linear = s.modes[0];
    const ModeResult& indexed = s.modes[1];
    s.equivalent = reps_equivalent && SimEquivalent(linear, indexed);
    s.speedup = linear.pages_per_sec > 0
                    ? indexed.pages_per_sec / linear.pages_per_sec
                    : 0.0;
    s.within_budget =
        indexed.CandidatesPerPick() <= kIndexedCandidatesPerPickBudget;
    std::printf("  div=%2u speedup=%.2fx equivalent=%s cand/pick budget: %s\n",
                div, s.speedup, s.equivalent ? "yes" : "NO — BUG",
                s.within_budget ? "ok" : "EXCEEDED");
    all_equivalent = all_equivalent && s.equivalent;
    all_within_budget = all_within_budget && s.within_budget;
    scales.push_back(s);
  }

  WriteJson(scales, all_equivalent, all_within_budget);
  std::printf("  wrote BENCH_gc_pressure.json\n");
  if (!all_equivalent) {
    std::printf("  FAILURE: victim sequences diverged between modes\n");
  }
  if (!all_within_budget) {
    std::printf("  FAILURE: indexed candidates-per-pick over budget\n");
  }
  return (all_equivalent && all_within_budget) ? 0 : 1;
}
