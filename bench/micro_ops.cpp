// Google-benchmark microbenchmarks for the simulator's hot paths: FTL page
// writes (with and without GC pressure), reads, device-level request
// submission, file-system write paths, and the RNG/ECC substrate. These
// guard the simulator's own performance — wear-out runs push hundreds of
// millions of page operations.

#include <benchmark/benchmark.h>

#include <memory>

#include "src/device/catalog.h"
#include "src/fs/extfs.h"
#include "src/fs/logfs.h"
#include "src/ftl/page_map_ftl.h"
#include "src/nand/error_model.h"
#include "src/simcore/rng.h"
#include "src/simcore/units.h"

namespace flashsim {
namespace {

NandChipConfig SmallChip() {
  NandChipConfig nand = MakeMlcConfig();
  nand.channels = 2;
  nand.dies_per_channel = 2;
  nand.blocks_per_die = 64;
  nand.pages_per_block = 128;
  nand.rated_pe_cycles = 1000000;  // wear out of scope here
  return nand;
}

void BM_FtlWriteSequential(benchmark::State& state) {
  FtlConfig cfg;
  cfg.health_rated_pe = 1000000;
  PageMapFtl ftl(SmallChip(), cfg, 1);
  uint64_t lpn = 0;
  const uint64_t logical = ftl.LogicalPageCount();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ftl.WritePage(lpn));
    lpn = (lpn + 1) % logical;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FtlWriteSequential);

void BM_FtlWriteRandomWithGc(benchmark::State& state) {
  FtlConfig cfg;
  cfg.health_rated_pe = 1000000;
  cfg.over_provisioning = 0.07;
  PageMapFtl ftl(SmallChip(), cfg, 1);
  Rng rng(2);
  const uint64_t logical = ftl.LogicalPageCount();
  // Fill to 85% so GC is active during the measurement.
  for (uint64_t i = 0; i < logical * 85 / 100; ++i) {
    (void)ftl.WritePage(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ftl.WritePage(rng.UniformU64(logical * 85 / 100)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FtlWriteRandomWithGc);

void BM_FtlRead(benchmark::State& state) {
  FtlConfig cfg;
  cfg.health_rated_pe = 1000000;
  PageMapFtl ftl(SmallChip(), cfg, 1);
  for (uint64_t i = 0; i < 1024; ++i) {
    (void)ftl.WritePage(i);
  }
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ftl.ReadPage(rng.UniformU64(1024)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FtlRead);

void BM_Device4KWrite(benchmark::State& state) {
  auto device = MakeEmmc8(SimScale{64, 1}, 1);
  Rng rng(4);
  const uint64_t slots = device->CapacityBytes() / 4096 / 2;
  for (auto _ : state) {
    IoRequest req{IoKind::kWrite, rng.UniformU64(slots) * 4096, 4096};
    benchmark::DoNotOptimize(device->Submit(req));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_Device4KWrite);

void BM_ExtFsSyncWrite(benchmark::State& state) {
  auto device = MakeEmmc8(SimScale{64, 1}, 1);
  ExtFs fs(*device);
  (void)fs.Create("bench.dat");
  Rng rng(5);
  const uint64_t file_bytes = 8 * kMiB;
  for (auto _ : state) {
    const uint64_t off = rng.UniformU64(file_bytes / 4096) * 4096;
    benchmark::DoNotOptimize(fs.Write("bench.dat", off, 4096, true));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_ExtFsSyncWrite);

void BM_LogFsSyncWrite(benchmark::State& state) {
  auto device = MakeEmmc8(SimScale{64, 1}, 1);
  LogFs fs(*device);
  (void)fs.Create("bench.dat");
  Rng rng(6);
  const uint64_t file_bytes = 8 * kMiB;
  for (auto _ : state) {
    const uint64_t off = rng.UniformU64(file_bytes / 4096) * 4096;
    benchmark::DoNotOptimize(fs.Write("bench.dat", off, 4096, true));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_LogFsSyncWrite);

void BM_RngU64(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextU64());
  }
}
BENCHMARK(BM_RngU64);

void BM_EccDecodePage(benchmark::State& state) {
  EccConfig cfg;
  EccEngine ecc(cfg, 4096);
  Rng rng(8);
  const double rber = 1e-5 * static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecc.DecodePage(rber, rng));
  }
}
BENCHMARK(BM_EccDecodePage)->Arg(1)->Arg(10)->Arg(100);

}  // namespace
}  // namespace flashsim

BENCHMARK_MAIN();
