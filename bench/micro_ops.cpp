// Microbenchmarks for the simulator's hot paths.
//
// Two layers:
//  * A hand-timed micro-op section that measures the primitive operations
//    the flat-plane layout is meant to accelerate — page program, block
//    erase, GC victim pick, FTL map update, device snapshot save/load —
//    prints ns/op, and emits BENCH_micro_ops.json so layout regressions are
//    visible per-PR. `--ci` runs a reduced-iteration smoke pass of just
//    this section (invoked from scripts/ci.sh).
//  * The original google-benchmark suites (FTL writes with and without GC
//    pressure, reads, device submission, FS write paths, RNG/ECC), which
//    run after the micro-op section in a default invocation and accept the
//    usual --benchmark_* flags.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/device/catalog.h"
#include "src/fleet/park.h"
#include "src/fs/extfs.h"
#include "src/fs/logfs.h"
#include "src/ftl/page_map_ftl.h"
#include "src/nand/chip.h"
#include "src/nand/error_model.h"
#include "src/simcore/rng.h"
#include "src/simcore/snapshot.h"
#include "src/simcore/units.h"
#include "src/simcore/victim_index.h"

namespace flashsim {
namespace {

NandChipConfig SmallChip() {
  NandChipConfig nand = MakeMlcConfig();
  nand.channels = 2;
  nand.dies_per_channel = 2;
  nand.blocks_per_die = 64;
  nand.pages_per_block = 128;
  nand.rated_pe_cycles = 1000000;  // wear out of scope here
  return nand;
}

void BM_FtlWriteSequential(benchmark::State& state) {
  FtlConfig cfg;
  cfg.health_rated_pe = 1000000;
  PageMapFtl ftl(SmallChip(), cfg, 1);
  uint64_t lpn = 0;
  const uint64_t logical = ftl.LogicalPageCount();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ftl.WritePage(lpn));
    lpn = (lpn + 1) % logical;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FtlWriteSequential);

void BM_FtlWriteRandomWithGc(benchmark::State& state) {
  FtlConfig cfg;
  cfg.health_rated_pe = 1000000;
  cfg.over_provisioning = 0.07;
  PageMapFtl ftl(SmallChip(), cfg, 1);
  Rng rng(2);
  const uint64_t logical = ftl.LogicalPageCount();
  // Fill to 85% so GC is active during the measurement.
  for (uint64_t i = 0; i < logical * 85 / 100; ++i) {
    (void)ftl.WritePage(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ftl.WritePage(rng.UniformU64(logical * 85 / 100)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FtlWriteRandomWithGc);

void BM_FtlRead(benchmark::State& state) {
  FtlConfig cfg;
  cfg.health_rated_pe = 1000000;
  PageMapFtl ftl(SmallChip(), cfg, 1);
  for (uint64_t i = 0; i < 1024; ++i) {
    (void)ftl.WritePage(i);
  }
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ftl.ReadPage(rng.UniformU64(1024)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FtlRead);

void BM_Device4KWrite(benchmark::State& state) {
  auto device = MakeEmmc8(SimScale{64, 1}, 1);
  Rng rng(4);
  const uint64_t slots = device->CapacityBytes() / 4096 / 2;
  for (auto _ : state) {
    IoRequest req{IoKind::kWrite, rng.UniformU64(slots) * 4096, 4096};
    benchmark::DoNotOptimize(device->Submit(req));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_Device4KWrite);

void BM_ExtFsSyncWrite(benchmark::State& state) {
  auto device = MakeEmmc8(SimScale{64, 1}, 1);
  ExtFs fs(*device);
  (void)fs.Create("bench.dat");
  Rng rng(5);
  const uint64_t file_bytes = 8 * kMiB;
  for (auto _ : state) {
    const uint64_t off = rng.UniformU64(file_bytes / 4096) * 4096;
    benchmark::DoNotOptimize(fs.Write("bench.dat", off, 4096, true));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_ExtFsSyncWrite);

void BM_LogFsSyncWrite(benchmark::State& state) {
  auto device = MakeEmmc8(SimScale{64, 1}, 1);
  LogFs fs(*device);
  (void)fs.Create("bench.dat");
  Rng rng(6);
  const uint64_t file_bytes = 8 * kMiB;
  for (auto _ : state) {
    const uint64_t off = rng.UniformU64(file_bytes / 4096) * 4096;
    benchmark::DoNotOptimize(fs.Write("bench.dat", off, 4096, true));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_LogFsSyncWrite);

void BM_RngU64(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextU64());
  }
}
BENCHMARK(BM_RngU64);

void BM_EccDecodePage(benchmark::State& state) {
  EccConfig cfg;
  EccEngine ecc(cfg, 4096);
  Rng rng(8);
  const double rber = 1e-5 * static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecc.DecodePage(rber, rng));
  }
}
BENCHMARK(BM_EccDecodePage)->Arg(1)->Arg(10)->Arg(100);

// ---------------------------------------------------------------------------
// Hand-timed micro-ops → BENCH_micro_ops.json
// ---------------------------------------------------------------------------

using SteadyClock = std::chrono::steady_clock;

struct MicroOp {
  std::string name;
  double ns_per_op = 0.0;
  uint64_t ops = 0;
};

double ElapsedNs(SteadyClock::time_point start) {
  return std::chrono::duration<double, std::nano>(SteadyClock::now() - start)
      .count();
}

// Page program on an erased block, flat-plane OOB stamping included. Erases
// between fills are excluded from the timed region.
MicroOp MeasureProgram(bool ci) {
  NandChipConfig cfg = SmallChip();
  NandChip chip(cfg, 1);
  const uint32_t blocks = cfg.channels * cfg.dies_per_channel * cfg.blocks_per_die;
  const uint32_t ppb = cfg.pages_per_block;
  const uint64_t target = ci ? 20'000 : 200'000;
  uint64_t tag = 1;
  uint64_t done = 0;
  double ns = 0.0;
  for (uint32_t b = 0; done < target; b = (b + 1) % blocks) {
    (void)chip.EraseBlock(b);
    const auto start = SteadyClock::now();
    for (uint32_t p = 0; p < ppb; ++p) {
      benchmark::DoNotOptimize(chip.ProgramPage({b, p}, tag++));
    }
    ns += ElapsedNs(start);
    done += ppb;
  }
  return {"program", ns / static_cast<double>(done), done};
}

// Block erase (the block is empty after the first erase; re-erasing measures
// the erase path itself: wear bookkeeping, plane reset, timing model).
MicroOp MeasureErase(bool ci) {
  NandChipConfig cfg = SmallChip();
  NandChip chip(cfg, 1);
  const uint64_t target = ci ? 500 : 5'000;
  const auto start = SteadyClock::now();
  for (uint64_t i = 0; i < target; ++i) {
    benchmark::DoNotOptimize(chip.EraseBlock(static_cast<BlockId>(i % 64)));
  }
  return {"erase", ElapsedNs(start) / static_cast<double>(target), target};
}

// Greedy GC victim pick from a populated valid-count index (the kIndexed
// steady-state path: lazy-cursor PickMin over the flat bitmap planes).
MicroOp MeasureGcPick(bool ci) {
  constexpr uint32_t kBlocks = 4096;
  constexpr uint32_t kPpb = 128;
  BucketVictimIndex index;
  index.Reset(kPpb + 1, kBlocks, BucketVictimIndex::Order::kById);
  uint64_t x = 9;
  for (uint32_t b = 0; b < kBlocks; ++b) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    index.Insert(1 + static_cast<uint32_t>((x >> 33) % kPpb), b);
  }
  const uint64_t target = ci ? 200'000 : 2'000'000;
  uint64_t probes = 0;
  uint32_t bucket = 0;
  uint32_t id = 0;
  const auto start = SteadyClock::now();
  for (uint64_t i = 0; i < target; ++i) {
    benchmark::DoNotOptimize(index.PickMin(kPpb + 1, &bucket, &id, &probes));
  }
  return {"gc_pick", ElapsedNs(start) / static_cast<double>(target), target};
}

// Steady-state FTL map update: random single-page overwrite on a warmed
// page-mapped FTL (map store + flat-plane program + amortized GC).
MicroOp MeasureMapUpdate(bool ci) {
  FtlConfig cfg;
  cfg.health_rated_pe = 1000000;
  PageMapFtl ftl(SmallChip(), cfg, 1);
  const uint64_t hot = ftl.LogicalPageCount() * 85 / 100;
  for (uint64_t i = 0; i < hot; ++i) {
    (void)ftl.WritePage(i);
  }
  Rng rng(2);
  const uint64_t target = ci ? 50'000 : 500'000;
  const auto start = SteadyClock::now();
  for (uint64_t i = 0; i < target; ++i) {
    benchmark::DoNotOptimize(ftl.WritePage(rng.UniformU64(hot)));
  }
  return {"map_update", ElapsedNs(start) / static_cast<double>(target), target};
}

// Park codec on a worn-device snapshot: full zero-run pack/unpack (the
// fleet's park/unpark hot path) and delta pack/apply against the previous
// slice's snapshot (DESIGN.md §14). `bytes` is the worn snapshot from
// MeasureSnapshot so the input has realistic zero structure.
void MeasurePark(bool ci, const std::vector<uint8_t>& bytes,
                 std::vector<MicroOp>* ops) {
  ParkScratch scratch;
  const uint64_t reps = ci ? 50 : 500;

  std::vector<uint8_t> packed;
  double pack_ns = 0.0;
  for (uint64_t i = 0; i < reps; ++i) {
    const auto start = SteadyClock::now();
    ParkPackFull(bytes, /*transpose=*/true, &scratch, &packed);
    pack_ns += ElapsedNs(start);
    benchmark::DoNotOptimize(packed.data());
  }
  ops->push_back({"park_pack", pack_ns / static_cast<double>(reps), reps});

  std::vector<uint8_t> raw;
  double unpack_ns = 0.0;
  for (uint64_t i = 0; i < reps; ++i) {
    const auto start = SteadyClock::now();
    const Status st = ParkUnpackFull(packed, &scratch, &raw);
    unpack_ns += ElapsedNs(start);
    if (!st.ok()) {
      std::fprintf(stderr, "park unpack failed: %s\n", st.message().c_str());
      std::exit(1);
    }
  }
  ops->push_back({"park_unpack", unpack_ns / static_cast<double>(reps), reps});

  // Delta input: the same snapshot with a sparse sprinkling of low-byte
  // edits, the shape one extra slice of wear produces.
  std::vector<uint8_t> cur = bytes;
  uint64_t x = 77;
  for (size_t i = 0; i < cur.size() / 512; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    cur[(x >> 17) % cur.size()] ^= static_cast<uint8_t>(1 + (x & 0x7f));
  }
  std::vector<uint8_t> delta;
  double dpack_ns = 0.0;
  for (uint64_t i = 0; i < reps; ++i) {
    const auto start = SteadyClock::now();
    ParkPackDelta(cur, bytes, &scratch, &delta);
    dpack_ns += ElapsedNs(start);
    benchmark::DoNotOptimize(delta.data());
  }
  ops->push_back(
      {"park_delta_pack", dpack_ns / static_cast<double>(reps), reps});

  double dapply_ns = 0.0;
  for (uint64_t i = 0; i < reps; ++i) {
    raw = bytes;  // rebuild the base the delta applies onto (untimed-ish)
    const auto start = SteadyClock::now();
    const Status st = ParkApplyDelta(delta, &scratch, &raw);
    dapply_ns += ElapsedNs(start);
    if (!st.ok()) {
      std::fprintf(stderr, "park delta apply failed: %s\n",
                   st.message().c_str());
      std::exit(1);
    }
  }
  ops->push_back(
      {"park_delta_apply", dapply_ns / static_cast<double>(reps), reps});
}

// Snapshot save/load of a worn mid-campaign device (DESIGN.md §12).
void MeasureSnapshot(bool ci, MicroOp* save, MicroOp* load,
                     std::vector<uint8_t>* snapshot_bytes) {
  auto device = MakeEmmc8(SimScale{64, 1}, 1);
  Rng rng(3);
  const uint64_t slots = device->CapacityBytes() / 4096 / 2;
  const uint64_t warmup = ci ? 20'000 : 100'000;
  for (uint64_t i = 0; i < warmup; ++i) {
    IoRequest req{IoKind::kWrite, rng.UniformU64(slots) * 4096, 4096};
    (void)device->Submit(req);
  }

  const uint64_t reps = ci ? 5 : 20;
  double save_ns = 0.0;
  std::vector<uint8_t> bytes;
  for (uint64_t i = 0; i < reps; ++i) {
    const auto start = SteadyClock::now();
    SnapshotWriter w;
    device->SaveState(w);
    save_ns += ElapsedNs(start);
    bytes = w.buffer();
  }
  *snapshot_bytes = bytes;
  *save = {"snapshot_save", save_ns / static_cast<double>(reps), reps};

  auto restored = MakeEmmc8(SimScale{64, 1}, 1);
  double load_ns = 0.0;
  for (uint64_t i = 0; i < reps; ++i) {
    const auto start = SteadyClock::now();
    SnapshotReader r(bytes);
    const Status st = restored->LoadState(r);
    load_ns += ElapsedNs(start);
    if (!st.ok()) {
      std::fprintf(stderr, "snapshot load failed: %s\n", st.message().c_str());
      std::exit(1);
    }
  }
  *load = {"snapshot_load", load_ns / static_cast<double>(reps), reps};
}

void WriteMicroOpsJson(const std::vector<MicroOp>& ops, uint64_t snapshot_bytes,
                       bool ci) {
  std::FILE* f = std::fopen("BENCH_micro_ops.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_micro_ops.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"micro_ops\",\n");
  std::fprintf(f, "  \"ci_mode\": %s,\n", ci ? "true" : "false");
  std::fprintf(f, "  \"snapshot_bytes\": %llu,\n",
               static_cast<unsigned long long>(snapshot_bytes));
  std::fprintf(f, "  \"ops\": [\n");
  for (size_t i = 0; i < ops.size(); ++i) {
    std::fprintf(f, "    {\"op\": \"%s\", \"ns_per_op\": %.1f, \"ops\": %llu}%s\n",
                 ops[i].name.c_str(), ops[i].ns_per_op,
                 static_cast<unsigned long long>(ops[i].ops),
                 i + 1 < ops.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

int RunMicroOps(bool ci) {
  std::printf("=== micro-ops (%s) ===\n", ci ? "CI smoke" : "full");
  std::vector<MicroOp> ops;
  ops.push_back(MeasureProgram(ci));
  ops.push_back(MeasureErase(ci));
  ops.push_back(MeasureGcPick(ci));
  ops.push_back(MeasureMapUpdate(ci));
  MicroOp save;
  MicroOp load;
  std::vector<uint8_t> snapshot_bytes;
  MeasureSnapshot(ci, &save, &load, &snapshot_bytes);
  ops.push_back(save);
  ops.push_back(load);
  MeasurePark(ci, snapshot_bytes, &ops);
  for (const MicroOp& op : ops) {
    std::printf("  %-16s %12.1f ns/op  (%llu ops)\n", op.name.c_str(),
                op.ns_per_op, static_cast<unsigned long long>(op.ops));
  }
  std::printf("  snapshot size: %llu bytes\n",
              static_cast<unsigned long long>(snapshot_bytes.size()));
  WriteMicroOpsJson(ops, snapshot_bytes.size(), ci);
  std::printf("  wrote BENCH_micro_ops.json\n");
  return 0;
}

}  // namespace
}  // namespace flashsim

int main(int argc, char** argv) {
  bool ci = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ci") == 0) {
      ci = true;
    }
  }
  const int rc = flashsim::RunMicroOps(ci);
  if (rc != 0 || ci) {
    return rc;  // smoke mode: micro-ops only, skip the full suites
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
