// Figure 1 reproduction: sequential and random write bandwidth vs I/O block
// size (0.5 KiB .. 16 MiB) for the five devices of §4.2.
//
// Paper shape to match: eMMC chips beat the MicroSD card everywhere
// (especially random I/O); eMMC random ~= sequential; throughput scales
// ~linearly with request size until internal parallelism saturates.

#include <cstdio>
#include <iostream>

#include "src/device/catalog.h"
#include "src/simcore/units.h"
#include "src/wearlab/bandwidth_probe.h"
#include "src/wearlab/report.h"

using namespace flashsim;

namespace {

// Capacity scaled 16x (no endurance scaling needed: probes barely wear).
constexpr SimScale kScale{16, 1};

void RunPattern(AccessPattern pattern, const char* title) {
  std::vector<std::string> headers = {"I/O Block Size"};
  for (const CatalogEntry& entry : Figure1Devices()) {
    headers.push_back(entry.name);
  }
  TableReporter table(std::move(headers));

  for (uint64_t size : Figure1RequestSizes()) {
    std::vector<std::string> row = {FormatBytes(size)};
    for (const CatalogEntry& entry : Figure1Devices()) {
      auto device = entry.make(kScale, /*seed=*/1);
      BandwidthProbeConfig cfg;
      cfg.pattern = pattern;
      cfg.request_bytes = size;
      cfg.region_bytes = device->CapacityBytes() / 4;
      cfg.total_bytes = std::max<uint64_t>(16 * kMiB, 4 * size);
      const BandwidthResult result = RunBandwidthProbe(*device, cfg);
      row.push_back(result.status.ok() ? Fmt(result.mib_per_sec) : "FAIL");
    }
    table.AddRow(std::move(row));
  }
  std::printf("\n%s (MiB/s)\n", title);
  table.Print(std::cout);
}

}  // namespace

int main() {
  std::printf("=== Figure 1: write performance of external and smartphone "
              "storage (sim scale %ux capacity) ===\n",
              kScale.capacity_div);
  RunPattern(AccessPattern::kSequential, "Figure 1a: Sequential Write");
  RunPattern(AccessPattern::kRandom, "Figure 1b: Random Write");
  std::printf("\nExpected shape: uSD slowest (random << sequential); eMMC/UFS "
              "random ~= sequential;\nbandwidth grows with request size then "
              "plateaus (internal parallelism saturated).\n");
  return 0;
}
