// Figure 4 reproduction: application-level I/O needed to increment the wear
// indicator on two Moto E 8GB phones, one running Ext4 and one F2FS.
//
// Paper shape: the Ext4 phone tracks the raw eMMC 8GB chip of Figure 2
// (in-place writes, FS write amplification ~1); the F2FS phone needs about
// HALF the app-level I/O per level, because F2FS's node/NAT mapping updates
// double the device I/O of 4 KiB synchronous writes — a flash-friendly file
// system does not save the flash.

#include <cstdio>
#include <iostream>
#include <map>

#include "src/device/catalog.h"
#include "src/simcore/units.h"
#include "src/wearlab/phone.h"
#include "src/wearlab/report.h"

using namespace flashsim;

namespace {

constexpr SimScale kScale{32, 32};
constexpr uint32_t kTargetLevel = 11;

std::map<uint32_t, PhoneWearRow> RunFs(PhoneFsType fs_type, FsStats* fs_stats,
                                       FtlStats* dev_stats) {
  Phone phone(MakeMotoE8(kScale, /*seed=*/7), fs_type);
  Status fill = phone.FillStaticData(0.55);
  if (!fill.ok()) {
    std::fprintf(stderr, "fill failed: %s\n", fill.ToString().c_str());
    return {};
  }
  AttackAppConfig attack;
  attack.file_count = 4;
  attack.file_bytes = (100 * kMiB) / kScale.capacity_div;
  attack.write_bytes = 4096;
  attack.sync = true;
  const PhoneWearOutcome out =
      RunPhoneWearExperiment(phone, attack, kTargetLevel, SimDuration::Hours(8000));
  std::map<uint32_t, PhoneWearRow> rows;
  for (const PhoneWearRow& row : out.rows) {
    rows[row.from_level] = row;
  }
  *fs_stats = phone.fs().stats();
  *dev_stats = phone.device().ftl().Stats();
  return rows;
}

}  // namespace

int main() {
  std::printf("=== Figure 4: app-level I/O per wear level, Moto E 8GB, Ext4 vs "
              "F2FS (sim scale %ux cap, %ux endurance) ===\n\n",
              kScale.capacity_div, kScale.endurance_div);

  FsStats ext_fs, log_fs;
  FtlStats ext_dev, log_dev;
  const auto ext_rows = RunFs(PhoneFsType::kExtFs, &ext_fs, &ext_dev);
  const auto log_rows = RunFs(PhoneFsType::kLogFs, &log_fs, &log_dev);

  TableReporter table({"Wear-out Indicator", "Ext4 I/O (GiB)", "F2FS I/O (GiB)",
                       "Ext4 (h)", "F2FS (h)"});
  for (uint32_t level = 1; level < kTargetLevel; ++level) {
    auto e = ext_rows.find(level);
    auto f = log_rows.find(level);
    if (e == ext_rows.end() && f == log_rows.end()) {
      continue;
    }
    auto gib = [](const PhoneWearRow& r) {
      return Fmt(static_cast<double>(r.app_bytes) * kScale.VolumeFactor() / kGiB, 1);
    };
    auto hrs = [](const PhoneWearRow& r) {
      return Fmt(r.hours * kScale.VolumeFactor(), 1);
    };
    table.AddRow({std::to_string(level) + "-" + std::to_string(level + 1),
                  e != ext_rows.end() ? gib(e->second) : "-",
                  f != log_rows.end() ? gib(f->second) : "-",
                  e != ext_rows.end() ? hrs(e->second) : "-",
                  f != log_rows.end() ? hrs(f->second) : "-"});
  }
  table.Print(std::cout);

  std::printf("\nFile-system write amplification (device bytes per app byte):\n");
  std::printf("  Ext4: %.2f (journal batched, data in place)\n",
              ext_fs.FsWriteAmplification());
  std::printf("  F2FS: %.2f (node block per 4 KiB sync write)\n",
              log_fs.FsWriteAmplification());
  std::printf("Device-level FTL write amplification: Ext4 %.2f vs F2FS %.2f "
              "(log-structuring + TRIM help the FTL,\nbut that only means MORE "
              "device I/O fits per level — the phone still dies).\n",
              ext_dev.WriteAmplification(), log_dev.WriteAmplification());
  std::printf("\nPaper shape: F2FS needs ~half the app I/O per level; Ext4 "
              "matches the raw chip in Figure 2.\n");
  return 0;
}
