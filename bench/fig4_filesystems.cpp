// Figure 4 reproduction: application-level I/O needed to increment the wear
// indicator on Moto E 8GB phones running Ext4, F2FS, and CowFs.
//
// Paper shape: the Ext4 phone tracks the raw eMMC 8GB chip of Figure 2
// (in-place writes, FS write amplification ~1); the F2FS phone needs about
// HALF the app-level I/O per level, because F2FS's node/NAT mapping updates
// double the device I/O of 4 KiB synchronous writes — a flash-friendly file
// system does not save the flash. CowFs (bounded-RAM copy-on-write) is the
// extreme point: in-place 4 KiB overwrites relocate the file's CTZ suffix
// plus a metadata-pair commit block each, so its write amplification is tens
// of x and it burns through a wear level on ~1% of the app I/O — the
// zero-repair crash contract is paid for in flash lifetime.

#include <cstdio>
#include <iostream>
#include <map>

#include "src/device/catalog.h"
#include "src/simcore/units.h"
#include "src/wearlab/phone.h"
#include "src/wearlab/report.h"

using namespace flashsim;

namespace {

constexpr SimScale kScale{32, 32};
constexpr uint32_t kTargetLevel = 11;

std::map<uint32_t, PhoneWearRow> RunFs(PhoneFsType fs_type, FsStats* fs_stats,
                                       FtlStats* dev_stats) {
  Phone phone(MakeMotoE8(kScale, /*seed=*/7), fs_type);
  Status fill = phone.FillStaticData(0.55);
  if (!fill.ok()) {
    std::fprintf(stderr, "fill failed: %s\n", fill.ToString().c_str());
    return {};
  }
  AttackAppConfig attack;
  attack.file_count = 4;
  attack.file_bytes = (100 * kMiB) / kScale.capacity_div;
  attack.write_bytes = 4096;
  attack.sync = true;
  const PhoneWearOutcome out =
      RunPhoneWearExperiment(phone, attack, kTargetLevel, SimDuration::Hours(8000));
  std::map<uint32_t, PhoneWearRow> rows;
  for (const PhoneWearRow& row : out.rows) {
    rows[row.from_level] = row;
  }
  *fs_stats = phone.fs().stats();
  *dev_stats = phone.device().ftl().Stats();
  return rows;
}

}  // namespace

int main() {
  std::printf("=== Figure 4: app-level I/O per wear level, Moto E 8GB, Ext4 vs "
              "F2FS vs CowFs (sim scale %ux cap, %ux endurance) ===\n\n",
              kScale.capacity_div, kScale.endurance_div);

  FsStats ext_fs, log_fs, cow_fs;
  FtlStats ext_dev, log_dev, cow_dev;
  const auto ext_rows = RunFs(PhoneFsType::kExtFs, &ext_fs, &ext_dev);
  const auto log_rows = RunFs(PhoneFsType::kLogFs, &log_fs, &log_dev);
  const auto cow_rows = RunFs(PhoneFsType::kCowFs, &cow_fs, &cow_dev);

  TableReporter table({"Wear-out Indicator", "Ext4 I/O (GiB)", "F2FS I/O (GiB)",
                       "CowFs I/O (GiB)", "Ext4 (h)", "F2FS (h)", "CowFs (h)"});
  for (uint32_t level = 1; level < kTargetLevel; ++level) {
    auto e = ext_rows.find(level);
    auto f = log_rows.find(level);
    auto c = cow_rows.find(level);
    if (e == ext_rows.end() && f == log_rows.end() && c == cow_rows.end()) {
      continue;
    }
    auto gib = [](const PhoneWearRow& r) {
      return Fmt(static_cast<double>(r.app_bytes) * kScale.VolumeFactor() / kGiB, 1);
    };
    auto hrs = [](const PhoneWearRow& r) {
      return Fmt(r.hours * kScale.VolumeFactor(), 1);
    };
    table.AddRow({std::to_string(level) + "-" + std::to_string(level + 1),
                  e != ext_rows.end() ? gib(e->second) : "-",
                  f != log_rows.end() ? gib(f->second) : "-",
                  c != cow_rows.end() ? gib(c->second) : "-",
                  e != ext_rows.end() ? hrs(e->second) : "-",
                  f != log_rows.end() ? hrs(f->second) : "-",
                  c != cow_rows.end() ? hrs(c->second) : "-"});
  }
  table.Print(std::cout);

  std::printf("\nFile-system write amplification (device bytes per app byte):\n");
  std::printf("  Ext4:  %.2f (journal batched, data in place)\n",
              ext_fs.FsWriteAmplification());
  std::printf("  F2FS:  %.2f (node block per 4 KiB sync write)\n",
              log_fs.FsWriteAmplification());
  std::printf("  CowFs: %.2f (CTZ suffix relocation + pair commit per sync "
              "overwrite)\n",
              cow_fs.FsWriteAmplification());
  std::printf("Durability commits issued: Ext4 %llu, F2FS %llu, CowFs %llu.\n",
              static_cast<unsigned long long>(ext_fs.metadata_commits),
              static_cast<unsigned long long>(log_fs.metadata_commits),
              static_cast<unsigned long long>(cow_fs.metadata_commits));
  std::printf("Device-level FTL write amplification: Ext4 %.2f, F2FS %.2f, "
              "CowFs %.2f\n(log-structuring + TRIM help the FTL, but that only "
              "means MORE device I/O fits per level — the phone still dies).\n",
              ext_dev.WriteAmplification(), log_dev.WriteAmplification(),
              cow_dev.WriteAmplification());
  std::printf("\nPaper shape: F2FS needs ~half the app I/O per level; Ext4 "
              "matches the raw chip in Figure 2.\nCowFs needs ~1%% of it: "
              "copy-on-write overwrites multiply device I/O, so the safest "
              "file\nsystem is also the fastest way to kill the flash.\n");
  return 0;
}
