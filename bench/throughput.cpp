// Wall-clock throughput harness for the batched write path.
//
// Drives the paper's attack workload — 4 KiB random rewrites of a small
// footprint — against the eMMC 8GB model until end of life, once per batch
// size, and measures *wall-clock* simulated-pages-per-second. Simulated
// results (wear transitions, host volume, simulated time) are checked to be
// identical across batch sizes; only the wall-clock changes. Emits
// BENCH_throughput.json with per-mode numbers and the batched-vs-per-request
// speedup.
//
// Run from the repo root (writes BENCH_throughput.json to the working
// directory), ideally from a Release build:
//   ./build-release/bench/throughput

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/device/catalog.h"
#include "src/simcore/units.h"
#include "src/wearlab/wearout_experiment.h"

using namespace flashsim;

namespace {

constexpr SimScale kScale{32, 32};
constexpr uint64_t kSeed = 3;

struct ModeResult {
  uint64_t batch = 1;
  double wall_seconds = 0.0;
  double pages_per_sec = 0.0;
  uint64_t host_pages = 0;
  uint64_t nand_pages = 0;
  uint64_t host_bytes = 0;
  double sim_hours = 0.0;
  uint64_t clock_nanos = 0;
  size_t transitions = 0;
  bool bricked = false;
};

ModeResult RunMode(uint64_t batch) {
  auto device = MakeEmmc8(kScale, kSeed);
  WearWorkloadConfig workload;
  workload.pattern = AccessPattern::kRandom;
  workload.request_bytes = 4096;
  workload.footprint_bytes = (400 * kMiB) / kScale.capacity_div;
  workload.batch_requests = batch;
  WearOutExperiment experiment(*device, workload);

  const auto wall_start = std::chrono::steady_clock::now();
  const WearRunOutcome outcome =
      experiment.RunUntilLevel(WearType::kSinglePool, 11, /*max_host_bytes=*/4 * kTiB);
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - wall_start)
                          .count();

  ModeResult r;
  r.batch = batch;
  r.wall_seconds = wall;
  r.host_pages = device->ftl().Stats().host_pages_written;
  r.nand_pages = device->ftl().Stats().nand_pages_written;
  r.host_bytes = device->HostBytesWritten();
  r.sim_hours = outcome.total_hours;
  r.clock_nanos = static_cast<uint64_t>(device->clock().Now().nanos());
  r.transitions = outcome.transitions.size();
  r.bricked = outcome.bricked;
  r.pages_per_sec = wall > 0 ? static_cast<double>(r.host_pages) / wall : 0.0;
  return r;
}

bool SimEquivalent(const ModeResult& a, const ModeResult& b) {
  return a.host_pages == b.host_pages && a.nand_pages == b.nand_pages &&
         a.host_bytes == b.host_bytes && a.clock_nanos == b.clock_nanos &&
         a.transitions == b.transitions && a.bricked == b.bricked;
}

void WriteJson(const std::vector<ModeResult>& modes, double speedup,
               bool equivalent) {
  std::FILE* f = std::fopen("BENCH_throughput.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_throughput.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"throughput\",\n");
  std::fprintf(f, "  \"workload\": \"4 KiB random rewrite to end of life\",\n");
  std::fprintf(f, "  \"device\": \"eMMC 8GB\",\n");
  std::fprintf(f, "  \"sim_scale\": {\"capacity_div\": %u, \"endurance_div\": %u},\n",
               kScale.capacity_div, kScale.endurance_div);
  std::fprintf(f, "  \"seed\": %llu,\n", static_cast<unsigned long long>(kSeed));
  std::fprintf(f, "  \"modes\": [\n");
  for (size_t i = 0; i < modes.size(); ++i) {
    const ModeResult& m = modes[i];
    std::fprintf(f,
                 "    {\"batch_requests\": %llu, \"wall_seconds\": %.4f, "
                 "\"sim_pages_per_sec\": %.0f, \"host_pages\": %llu, "
                 "\"nand_pages\": %llu, \"host_bytes\": %llu, "
                 "\"sim_hours\": %.4f, \"transitions\": %zu, "
                 "\"bricked\": %s}%s\n",
                 static_cast<unsigned long long>(m.batch), m.wall_seconds,
                 m.pages_per_sec, static_cast<unsigned long long>(m.host_pages),
                 static_cast<unsigned long long>(m.nand_pages),
                 static_cast<unsigned long long>(m.host_bytes), m.sim_hours,
                 m.transitions, m.bricked ? "true" : "false",
                 i + 1 < modes.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"speedup_batched_vs_per_request\": %.2f,\n", speedup);
  std::fprintf(f, "  \"simulation_equivalent\": %s\n", equivalent ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  // --gate: regression-gate mode for scripts/ci.sh. Measures only batch=64
  // (best of 2 reps), prints one machine-readable line, writes no JSON.
  if (argc > 1 && std::strcmp(argv[1], "--gate") == 0) {
    ModeResult r = RunMode(64);
    ModeResult again = RunMode(64);
    const bool equivalent = SimEquivalent(r, again);
    if (again.wall_seconds < r.wall_seconds) {
      r = again;
    }
    std::printf("GATE_PAGES_PER_SEC %.0f equivalent=%s\n", r.pages_per_sec,
                equivalent ? "yes" : "no");
    return equivalent ? 0 : 1;
  }

  std::printf("=== Batched write-path throughput: 4 KiB random rewrites to EOL, "
              "eMMC 8GB (sim scale %ux/%ux) ===\n",
              kScale.capacity_div, kScale.endurance_div);

  const std::vector<uint64_t> batches = {1, 8, 64, 256};
  constexpr int kReps = 3;  // best-of-N wall clock; sim results must agree
  std::vector<ModeResult> modes;
  bool reps_equivalent = true;
  for (uint64_t b : batches) {
    ModeResult r = RunMode(b);
    for (int rep = 1; rep < kReps; ++rep) {
      ModeResult again = RunMode(b);
      reps_equivalent = reps_equivalent && SimEquivalent(r, again);
      if (again.wall_seconds < r.wall_seconds) {
        r = again;
      }
    }
    std::printf("  batch=%3llu  wall=%6.2fs  %10.0f sim pages/s  "
                "(%llu host pages, %.1f sim h, %zu transitions%s)\n",
                static_cast<unsigned long long>(b), r.wall_seconds,
                r.pages_per_sec, static_cast<unsigned long long>(r.host_pages),
                r.sim_hours, r.transitions, r.bricked ? ", bricked" : "");
    modes.push_back(r);
  }

  bool equivalent = reps_equivalent;
  for (size_t i = 1; i < modes.size(); ++i) {
    equivalent = equivalent && SimEquivalent(modes[0], modes[i]);
  }

  double batched64 = 0.0;
  for (const ModeResult& m : modes) {
    if (m.batch == 64) {
      batched64 = m.pages_per_sec;
    }
  }
  const double speedup =
      modes[0].pages_per_sec > 0 ? batched64 / modes[0].pages_per_sec : 0.0;

  std::printf("\n  speedup (batch=64 vs per-request): %.2fx\n", speedup);
  std::printf("  simulation equivalent across modes: %s\n",
              equivalent ? "yes" : "NO — BUG");
  WriteJson(modes, speedup, equivalent);
  std::printf("  wrote BENCH_throughput.json\n");
  return equivalent ? 0 : 1;
}
