// Fleet CLI: run a fleet directive from a campaign spec and emit its report.
//
//   $ ./build/bench/fleet --spec examples/specs/fleet_attack.spec
//         --threads 4 --out out/fleet.json
//
// The JSON report is byte-identical for any --threads value. Checkpointing:
//
//   $ ./build/bench/fleet --spec S --checkpoint cp.fsnp --checkpoint-every 4
//   $ ./build/bench/fleet --spec S --resume cp.fsnp --out final.json
//
// --stop-after-checkpoints N exits after the Nth checkpoint (a controlled
// kill for crash-resume testing); a subsequent --resume run produces a final
// report bit-identical to an uninterrupted one.
//
// --ci appends a BENCH_fleet.json metrics file (devices/sec, peak RSS,
// parked bytes/device) next to the report for the CI dashboard; those
// host-dependent numbers never appear in the report itself.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/campaign/spec.h"
#include "src/fleet/report.h"
#include "src/fleet/runner.h"
#include "src/fleet/shard.h"

using namespace flashsim;

namespace {

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --spec FILE [options]\n"
      "  --spec FILE                campaign spec with a fleet directive\n"
      "  --fleet NAME               fleet to run (default: first in spec)\n"
      "  --threads N                worker threads (default 1)\n"
      "  --out FILE                 JSON report path (default <fleet>.json)\n"
      "  --checkpoint FILE          write resumable checkpoints here\n"
      "  --checkpoint-every N       checkpoint after every N finished shards\n"
      "  --stop-after-checkpoints N exit after the Nth checkpoint\n"
      "  --resume FILE              warm-start from a checkpoint file\n"
      "  --park MODE                parking mode: delta (default) or full\n"
      "  --park-rebase-every N      delta chain length before a rebase\n"
      "  --ci                       also write BENCH_fleet.json metrics\n"
      "  --quiet                    suppress the stdout summary\n",
      argv0);
}

// Peak resident set size in KiB from /proc/self/status (0 if unavailable,
// e.g. on non-Linux hosts). CI-metric only; never part of the report.
uint64_t PeakRssKiB() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtoull(line.c_str() + 6, nullptr, 10);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path;
  std::string fleet_name;
  std::string out_path;
  std::string park_mode;
  uint64_t park_rebase_every = 0;
  FleetRunOptions options;
  bool ci = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--spec" && i + 1 < argc) {
      spec_path = argv[++i];
    } else if (arg == "--fleet" && i + 1 < argc) {
      fleet_name = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      options.threads = std::atoi(argv[++i]);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--checkpoint" && i + 1 < argc) {
      options.checkpoint_path = argv[++i];
    } else if (arg == "--checkpoint-every" && i + 1 < argc) {
      options.checkpoint_every_shards = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--stop-after-checkpoints" && i + 1 < argc) {
      options.stop_after_checkpoints = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--resume" && i + 1 < argc) {
      options.resume_path = argv[++i];
    } else if (arg == "--park" && i + 1 < argc) {
      park_mode = argv[++i];
      if (park_mode != "delta" && park_mode != "full") {
        Usage(argv[0]);
        return 2;
      }
    } else if (arg == "--park-rebase-every" && i + 1 < argc) {
      park_rebase_every = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--ci") {
      ci = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  if (spec_path.empty() || options.threads < 1) {
    Usage(argv[0]);
    return 2;
  }

  Result<CampaignSpec> parsed = LoadCampaignSpecFile(spec_path);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  const CampaignSpec& spec = parsed.value();
  const FleetSpec* fleet = fleet_name.empty()
                               ? (spec.fleets.empty() ? nullptr : &spec.fleets[0])
                               : spec.FindFleet(fleet_name);
  if (fleet == nullptr) {
    std::fprintf(stderr, "error: spec defines no fleet%s%s\n",
                 fleet_name.empty() ? "" : " named ",
                 fleet_name.c_str());
    return 1;
  }
  if (out_path.empty()) {
    out_path = fleet->name + ".json";
  }
  // Park knobs are excluded from the checkpoint fingerprint, so CLI
  // overrides compose freely with --checkpoint/--resume.
  FleetSpec fleet_run = *fleet;
  if (park_mode == "full") {
    fleet_run.park_mode = FleetParkMode::kFull;
  } else if (park_mode == "delta") {
    fleet_run.park_mode = FleetParkMode::kDelta;
  }
  if (park_rebase_every > 0) {
    fleet_run.park_rebase_every = park_rebase_every;
  }

  std::printf("fleet '%s': %llu devices, %llu shards, %d thread%s\n",
              fleet->name.c_str(),
              static_cast<unsigned long long>(fleet->device_count),
              static_cast<unsigned long long>(FleetShardCount(*fleet)),
              options.threads, options.threads == 1 ? "" : "s");

  const uint64_t rss_before_kib = PeakRssKiB();
  Result<FleetOutcome> run = RunFleet(spec, fleet_run, options);
  if (!run.ok()) {
    std::fprintf(stderr, "error: %s\n", run.status().ToString().c_str());
    return 1;
  }
  const FleetOutcome& outcome = run.value();

  const std::filesystem::path out_file(out_path);
  if (out_file.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(out_file.parent_path(), ec);
  }
  {
    std::ofstream json(out_path);
    if (!json) {
      std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
      return 1;
    }
    WriteFleetJson(outcome, json);
  }
  if (!quiet) {
    PrintFleetSummary(outcome, std::cout);
  }
  std::printf("report: %s%s\n", out_path.c_str(),
              outcome.completed ? "" : " (partial: stopped at checkpoint)");

  if (ci) {
    const uint64_t rss_peak_kib = PeakRssKiB();
    const double devices_per_sec =
        outcome.wall_seconds > 0.0
            ? static_cast<double>(outcome.acc.DevicesDone()) /
                  outcome.wall_seconds
            : 0.0;
    std::ofstream bench("BENCH_fleet.json");
    bench << "{\n";
    bench << "  \"fleet\": \"" << fleet->name << "\",\n";
    bench << "  \"devices\": " << fleet->device_count << ",\n";
    bench << "  \"threads\": " << options.threads << ",\n";
    bench << "  \"park_mode\": \""
          << (fleet_run.park_mode == FleetParkMode::kDelta ? "delta" : "full")
          << "\",\n";
    bench << "  \"wall_seconds\": " << outcome.wall_seconds << ",\n";
    bench << "  \"devices_per_sec\": " << devices_per_sec << ",\n";
    bench << "  \"peak_rss_mib\": " << rss_peak_kib / 1024.0 << ",\n";
    bench << "  \"rss_before_mib\": " << rss_before_kib / 1024.0 << ",\n";
    bench << "  \"parked_raw_mean_bytes\": "
          << outcome.acc.parked_raw_bytes().Mean() << ",\n";
    bench << "  \"park_stored_mean_bytes\": " << outcome.park.StoredMean()
          << ",\n";
    bench << "  \"park_resident_mean_bytes\": " << outcome.park.ResidentMean()
          << ",\n";
    bench << "  \"park_events\": " << outcome.park.park_events << ",\n";
    bench << "  \"park_delta\": " << outcome.park.delta_parks << ",\n";
    bench << "  \"park_full\": " << outcome.park.full_parks << ",\n";
    bench << "  \"park_rebase\": " << outcome.park.rebases << ",\n";
    bench << "  \"scratch_grows\": " << outcome.park.scratch_grows << ",\n";
    bench << "  \"steals\": " << outcome.sched.steals << ",\n";
    bench << "  \"worker_busy_min_seconds\": " << outcome.sched.busy_seconds_min
          << ",\n";
    bench << "  \"worker_busy_max_seconds\": " << outcome.sched.busy_seconds_max
          << "\n";
    bench << "}\n";
    std::printf("metrics: BENCH_fleet.json\n");
  }
  return 0;
}
