// FTL design-choice ablations (DESIGN.md §4): how the device-firmware knobs
// the paper can only speculate about ("part of the problem may be in the
// device firmware") change the wear-out picture.
//
// Sweeps, on the eMMC 8GB model under the paper's attack workload:
//  * over-provisioning 2% / 7% / 15% / 28%,
//  * GC policy greedy vs cost-benefit,
//  * static wear leveling on vs off,
//  * request size 4 KiB vs 64 KiB vs 512 KiB,
// reporting GiB-per-level, write amplification, and attack throughput.

#include <cstdio>
#include <iostream>

#include "src/device/catalog.h"
#include "src/ftl/page_map_ftl.h"
#include "src/simcore/units.h"
#include "src/wearlab/report.h"
#include "src/wearlab/wearout_experiment.h"

using namespace flashsim;

namespace {

constexpr SimScale kScale{32, 32};

struct AblationResult {
  double gib_per_level = 0.0;
  double wa = 0.0;
  double mib_per_sec = 0.0;
  double spread = 0.0;  // max-min P/E at end
};

std::unique_ptr<FlashDevice> MakeDevice(double op, GcPolicy policy, bool wear_level) {
  NandChipConfig nand = MakeMlcConfig();
  nand.name = "ablation-mlc";
  nand.channels = 2;
  nand.dies_per_channel = 2;
  nand.blocks_per_die = 4096 / kScale.capacity_div;
  nand.pages_per_block = 128;
  nand.page_size_bytes = 4096;
  nand.rated_pe_cycles = std::max(20u, 3000 / kScale.endurance_div);
  FtlConfig ftl;
  ftl.over_provisioning = op;
  ftl.spare_blocks = 24;
  ftl.health_rated_pe = std::max(20u, 1100 / kScale.endurance_div);
  ftl.gc_policy = policy;
  ftl.wear_level_threshold = wear_level ? std::max(2u, ftl.health_rated_pe / 50) : 0;
  ftl.wear_level_check_interval = 16;
  FlashDeviceConfig dev;
  dev.name = "ablation";
  dev.perf.per_request_overhead = SimDuration::Micros(100);
  dev.perf.bus_mib_per_sec = 100.0;
  dev.perf.effective_parallelism = 8;
  auto impl = std::make_unique<PageMapFtl>(nand, ftl, /*seed=*/17);
  return std::make_unique<FlashDevice>(std::move(dev), std::move(impl));
}

AblationResult RunOne(std::unique_ptr<FlashDevice> device, uint64_t request_bytes,
                      double utilization, bool rewrite_utilized = false) {
  WearWorkloadConfig workload;
  workload.request_bytes = request_bytes;
  workload.rewrite_utilized = rewrite_utilized;
  workload.footprint_bytes = (400 * kMiB) / kScale.capacity_div;
  WearOutExperiment experiment(*device, workload);
  (void)experiment.SetUtilization(utilization);
  const WearRunOutcome out =
      experiment.RunUntilLevel(WearType::kSinglePool, 5, 256 * kGiB);
  AblationResult r;
  uint32_t levels = 0;
  for (const WearTransition& t : out.transitions) {
    r.gib_per_level += static_cast<double>(t.host_bytes) * kScale.VolumeFactor() / kGiB;
    r.wa += t.write_amplification;
    ++levels;
  }
  if (levels > 0) {
    r.gib_per_level /= levels;
    r.wa /= levels;
  }
  r.mib_per_sec = out.total_hours > 0
                      ? static_cast<double>(out.total_host_bytes) / kMiB /
                            (out.total_hours * 3600.0)
                      : 0.0;
  const auto* ftl = dynamic_cast<const PageMapFtl*>(&device->ftl());
  const WearSummary wear = ftl->chip().ComputeWearSummary();
  r.spread = wear.max_pe - wear.min_pe;
  return r;
}

}  // namespace

int main() {
  std::printf("=== FTL design ablations on the eMMC 8GB model (attack workload, "
              "55%% static utilization) ===\n\n");

  TableReporter table({"Configuration", "GiB/level", "WA", "Attack MiB/s",
                       "P/E spread"});
  auto add = [&](const std::string& label, AblationResult r) {
    table.AddRow({label, Fmt(r.gib_per_level, 1), Fmt(r.wa), Fmt(r.mib_per_sec),
                  Fmt(r.spread, 0)});
  };

  // OP matters when the device is nearly full and writes hit live data, so
  // the OP sweep rewrites utilized space at 85% utilization.
  for (double op : {0.02, 0.07, 0.15, 0.28}) {
    add("over-provisioning " + FmtPercent(op) + " (85% util rewrite)",
        RunOne(MakeDevice(op, GcPolicy::kGreedy, true), 4096, 0.85, true));
  }
  add("GC greedy (baseline)",
      RunOne(MakeDevice(0.07, GcPolicy::kGreedy, true), 4096, 0.55));
  add("GC cost-benefit",
      RunOne(MakeDevice(0.07, GcPolicy::kCostBenefit, true), 4096, 0.55));
  add("wear leveling OFF",
      RunOne(MakeDevice(0.07, GcPolicy::kGreedy, false), 4096, 0.55));
  for (uint64_t req : {uint64_t{4096}, uint64_t{64 * 1024}, uint64_t{512 * 1024}}) {
    add("request size " + FormatBytes(req),
        RunOne(MakeDevice(0.07, GcPolicy::kGreedy, true), req, 0.55));
  }
  table.Print(std::cout);

  std::printf(
      "\nReadings: more OP lowers WA (more GiB of app writes per level, but the\n"
      "device dies after the same physical P/E budget); disabling wear leveling\n"
      "blows up the P/E spread so blocks start dying long before the average\n"
      "reaches rated life; larger requests raise attack throughput — the paper's\n"
      "point that *no* firmware configuration escapes the fundamental budget.\n");
  return 0;
}
