// §2.3 vs §4.3: how optimistic is the back-of-the-envelope lifetime estimate?
//
// For each device with health reporting, compares the datasheet-style
// estimate (capacity x rated P/E cycles) against the measured write budget
// (I/O actually absorbed before the indicator passes level 10), and converts
// both into "days under a 16 GiB/day heavy user" and "hours under attack".
// The paper's finding: the envelope is ~3x optimistic, and the absolute
// number is small enough for an unprivileged app to exhaust in days.

#include <cstdio>
#include <iostream>

#include "src/device/catalog.h"
#include "src/simcore/units.h"
#include "src/wearlab/lifetime_estimator.h"
#include "src/wearlab/report.h"
#include "src/wearlab/wearout_experiment.h"

using namespace flashsim;

namespace {

constexpr SimScale kScale{32, 32};

struct DeviceCase {
  const CatalogEntry* entry;
  uint64_t full_capacity;
  uint32_t datasheet_pe;
  WearType type;
};

}  // namespace

int main() {
  std::printf("=== Back-of-the-envelope vs measured lifetime (sim scale %ux/%ux) "
              "===\n\n",
              kScale.capacity_div, kScale.endurance_div);

  const std::vector<DeviceCase> cases = {
      {&DeviceCatalog()[1], 8 * kGiB, 3000, WearType::kSinglePool},
      {&DeviceCatalog()[2], 16 * kGiB, 3000, WearType::kTypeB},
      {&DeviceCatalog()[4], 32 * kGiB, 3000, WearType::kSinglePool},
  };

  TableReporter table({"Device", "Envelope (TiB)", "Measured (TiB)", "Optimism",
                       "Envelope @16GiB/day", "Attack time (days)"});
  for (const DeviceCase& c : cases) {
    auto device = c.entry->make(kScale, /*seed=*/13);
    WearWorkloadConfig workload;
    workload.footprint_bytes = (400 * kMiB) / kScale.capacity_div;
    WearOutExperiment experiment(*device, workload);
    const WearRunOutcome out = experiment.RunUntilLevel(c.type, 11, 1 * kTiB);

    const double measured_bytes =
        static_cast<double>(out.total_host_bytes) * kScale.VolumeFactor();
    const double attack_days = out.total_hours * kScale.VolumeFactor() / 24.0;

    LifetimeEstimator envelope(c.full_capacity, c.datasheet_pe);
    const LifetimeEstimate est = envelope.Estimate(16.0 * kGiB);
    table.AddRow({c.entry->name,
                  Fmt(est.total_write_bytes / kTiB, 1),
                  Fmt(measured_bytes / kTiB, 1),
                  Fmt(envelope.OptimismFactor(measured_bytes), 1) + "x",
                  Fmt(est.years_at_workload, 1) + " years",
                  Fmt(attack_days, 1)});
  }
  table.Print(std::cout);
  std::printf("\nShape: the envelope promises years even for heavy users, but is "
              "~2.5-3x optimistic about the\nwrite budget — and that budget is "
              "exhaustible by an unprivileged app in days (§4.3).\n");
  return 0;
}
