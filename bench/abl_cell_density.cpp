// §1 / §2.1 trend claim: "technology trends in future generations of flash
// devices, such as encoding more bits in fewer cells ... will exacerbate
// this problem."
//
// Method: identical geometry and controller, three cell technologies (SLC
// 100K P/E, MLC 3K, TLC 1K), same attack workload; report the write budget
// and attack time to end of life. Endurance sim-scales differ per cell type
// (SLC would take hours to grind down even in simulation); results are
// re-scaled to full-device terms, which the scale-invariance test justifies.

#include <cstdio>
#include <iostream>

#include "src/device/flash_device.h"
#include "src/ftl/page_map_ftl.h"
#include "src/simcore/units.h"
#include "src/wearlab/report.h"
#include "src/wearlab/wearout_experiment.h"

using namespace flashsim;

namespace {

struct CellCase {
  CellType type;
  uint32_t rated_pe;
  uint32_t health_pe;
  uint32_t endurance_div;  // per-cell sim scale
};

constexpr uint32_t kCapacityDiv = 32;

void RunCell(const CellCase& c, TableReporter& table) {
  NandChipConfig nand = MakeMlcConfig();
  nand.cell_type = c.type;
  nand.timings = DefaultTimingsFor(c.type);
  nand.channels = 2;
  nand.dies_per_channel = 2;
  nand.blocks_per_die = 4096 / kCapacityDiv;
  nand.rated_pe_cycles = std::max(20u, c.rated_pe / c.endurance_div);
  FtlConfig ftl;
  ftl.over_provisioning = 0.07;
  ftl.spare_blocks = 24;
  ftl.health_rated_pe = std::max(20u, c.health_pe / c.endurance_div);
  ftl.wear_level_threshold = std::max(2u, ftl.health_rated_pe / 50);
  ftl.wear_level_check_interval = 16;
  FlashDeviceConfig dev;
  dev.name = CellTypeName(c.type);
  dev.perf.per_request_overhead = SimDuration::Micros(100);
  dev.perf.bus_mib_per_sec = 100.0;
  dev.perf.effective_parallelism = 8;
  auto impl = std::make_unique<PageMapFtl>(nand, ftl, /*seed=*/23);
  FlashDevice device(std::move(dev), std::move(impl));

  WearWorkloadConfig w;
  w.footprint_bytes = (400 * kMiB) / kCapacityDiv;
  WearOutExperiment exp(device, w);
  const WearRunOutcome out =
      exp.RunUntilLevel(WearType::kSinglePool, 11, 1 * kTiB);

  const double factor = static_cast<double>(kCapacityDiv) * c.endurance_div;
  const double tib = static_cast<double>(out.total_host_bytes) * factor / kTiB;
  const double days = out.total_hours * factor / 24.0;
  table.AddRow({CellTypeName(c.type), std::to_string(c.rated_pe),
                Fmt(tib, 1), Fmt(days, 1),
                Fmt(days / 365.0 * 100.0, 2) + "% of 3y warranty"});
}

}  // namespace

int main() {
  std::printf("=== Cell-density trend (§2.1): attack lifetime of an 8 GB device "
              "by cell technology ===\n\n");
  TableReporter table({"Cell", "Rated P/E", "I/O to EOL (TiB)", "Attack days",
                       "Attack time vs warranty"});
  RunCell({CellType::kSlc, 100000, 50000, 1024}, table);
  RunCell({CellType::kMlc, 3000, 1100, 32}, table);
  RunCell({CellType::kTlc, 1000, 400, 16}, table);
  table.Print(std::cout);
  std::printf(
      "\nShape: each density step cuts the write budget by ~3-30x. An SLC-era\n"
      "device resisted the attack for months; MLC falls in days; TLC in a day\n"
      "or two — the trend the paper warns 'will exacerbate this problem'.\n");
  return 0;
}
