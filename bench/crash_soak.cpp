// Crash-recovery soak driver.
//
// Two modes:
//
//   Sweep (default): hundreds of randomized (seed, cut) crash scenarios over
//   the full {ftl} x {fs} x {workload} grid. Every failing run prints its
//   one-line replay command; exit status is non-zero if any run violates a
//   durability, integrity, or wear property. Emits BENCH_crash_soak.json
//   with per-configuration aggregates and summed RecoveryReport counters.
//     ./build-release/bench/crash_soak                # 756 runs
//     ./build-release/bench/crash_soak --ci           # short fixed-seed smoke
//     ./build-release/bench/crash_soak --runs-per-config=250
//
//   Single-run replay (--cut-op= or --no-cut present): exactly one scenario,
//   fully determined by the flags — the mode failure repro lines use.
//     ./build-release/bench/crash_soak --ftl=hybrid --fs=logfs
//         --workload=mixed --seed=1042 --ops=300 --cut-op=1187

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/crashlab/crash_harness.h"

using namespace flashsim;

namespace {

struct ConfigAggregate {
  std::string name;
  uint64_t runs = 0;
  uint64_t failures = 0;
  uint64_t cuts_fired = 0;
  RecoveryReport totals;
};

bool FlagValue(const char* arg, const char* name, std::string* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    *out = arg + n + 1;
    return true;
  }
  return false;
}

void WriteJson(const std::vector<ConfigAggregate>& configs, uint64_t total_runs,
               uint64_t total_failures) {
  std::FILE* f = std::fopen("BENCH_crash_soak.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_crash_soak.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n  \"total_runs\": %llu,\n  \"total_failures\": %llu,\n",
               static_cast<unsigned long long>(total_runs),
               static_cast<unsigned long long>(total_failures));
  std::fprintf(f, "  \"configs\": [\n");
  for (size_t i = 0; i < configs.size(); ++i) {
    const ConfigAggregate& c = configs[i];
    std::fprintf(f,
                 "    {\"config\": \"%s\", \"runs\": %llu, \"failures\": %llu, "
                 "\"cuts_fired\": %llu, \"recovery_totals\": %s}%s\n",
                 c.name.c_str(), static_cast<unsigned long long>(c.runs),
                 static_cast<unsigned long long>(c.failures),
                 static_cast<unsigned long long>(c.cuts_fired),
                 RecoveryReportJson(c.totals).c_str(),
                 i + 1 < configs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

int RunSingle(const CrashSpec& spec) {
  const CrashRunResult r = RunCrashScenario(spec);
  std::printf("config: %s/%s/%s seed=%llu ops=%llu\n", FtlKindName(spec.ftl),
              FsKindName(spec.fs), CrashWorkloadName(spec.workload),
              static_cast<unsigned long long>(spec.seed),
              static_cast<unsigned long long>(spec.ops));
  std::printf("cut: %s (resolved op %llu), %llu ops acknowledged\n",
              r.cut_fired ? "fired" : "did not fire",
              static_cast<unsigned long long>(r.resolved_cut_op),
              static_cast<unsigned long long>(r.ops_acknowledged));
  std::printf("recovery: %s\n", RecoveryReportJson(r.report).c_str());
  if (!r.ok) {
    std::printf("FAIL: %s\n  repro: %s\n", r.failure.c_str(), r.repro.c_str());
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CrashSpec base;
  bool single = false;
  bool ci = false;
  uint64_t runs_per_config = 42;  // x18 configs = 756 runs
  std::string v;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--ci") == 0) {
      ci = true;
    } else if (std::strcmp(arg, "--no-cut") == 0) {
      base.no_cut = true;
      single = true;
    } else if (FlagValue(arg, "--ftl", &v)) {
      if (!ParseFtlKind(v, &base.ftl)) {
        std::fprintf(stderr, "unknown --ftl value: %s\n", v.c_str());
        return 2;
      }
    } else if (FlagValue(arg, "--fs", &v)) {
      if (!ParseFsKind(v, &base.fs)) {
        std::fprintf(stderr, "unknown --fs value: %s\n", v.c_str());
        return 2;
      }
    } else if (FlagValue(arg, "--workload", &v)) {
      if (!ParseCrashWorkload(v, &base.workload)) {
        std::fprintf(stderr, "unknown --workload value: %s\n", v.c_str());
        return 2;
      }
    } else if (FlagValue(arg, "--seed", &v)) {
      base.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (FlagValue(arg, "--ops", &v)) {
      base.ops = std::strtoull(v.c_str(), nullptr, 10);
    } else if (FlagValue(arg, "--cut-window", &v)) {
      base.cut_window = std::strtoull(v.c_str(), nullptr, 10);
    } else if (FlagValue(arg, "--cut-op", &v)) {
      base.cut_op = std::strtoull(v.c_str(), nullptr, 10);
      single = true;
    } else if (FlagValue(arg, "--channels", &v)) {
      base.channels = static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (FlagValue(arg, "--queue-depth", &v)) {
      base.queue_depth = static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (FlagValue(arg, "--runs-per-config", &v)) {
      runs_per_config = std::strtoull(v.c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      return 2;
    }
  }

  if (single) {
    return RunSingle(base);
  }
  if (ci) {
    runs_per_config = 10;  // x18 configs = 180 fixed-seed smoke runs
  }

  const FtlKind ftls[] = {FtlKind::kPageMap, FtlKind::kHybrid};
  const FsKind fss[] = {FsKind::kLogFs, FsKind::kExtFs, FsKind::kCowFs};
  const CrashWorkload workloads[] = {CrashWorkload::kMixed,
                                     CrashWorkload::kOverwrite,
                                     CrashWorkload::kSyncHeavy};
  std::vector<ConfigAggregate> configs;
  uint64_t total_runs = 0;
  uint64_t total_failures = 0;
  for (const FtlKind ftl : ftls) {
    for (const FsKind fs : fss) {
      for (const CrashWorkload workload : workloads) {
        ConfigAggregate agg;
        agg.name = std::string(FtlKindName(ftl)) + "/" + FsKindName(fs) + "/" +
                   CrashWorkloadName(workload);
        for (uint64_t i = 0; i < runs_per_config; ++i) {
          CrashSpec spec = base;
          spec.ftl = ftl;
          spec.fs = fs;
          spec.workload = workload;
          spec.seed = 2000 + i;  // fixed seeds: CI runs are reproducible
          spec.ops = 300;
          spec.cut_window = 3000;
          const CrashRunResult r = RunCrashScenario(spec);
          ++agg.runs;
          ++total_runs;
          agg.cuts_fired += r.cut_fired ? 1 : 0;
          agg.totals.Merge(r.report);
          if (!r.ok) {
            ++agg.failures;
            ++total_failures;
            std::printf("FAIL %s seed=%llu: %s\n  repro: %s\n", agg.name.c_str(),
                        static_cast<unsigned long long>(spec.seed),
                        r.failure.c_str(), r.repro.c_str());
          }
        }
        std::printf("%-28s %3llu runs, %3llu cuts fired, %llu failures\n",
                    agg.name.c_str(), static_cast<unsigned long long>(agg.runs),
                    static_cast<unsigned long long>(agg.cuts_fired),
                    static_cast<unsigned long long>(agg.failures));
        configs.push_back(std::move(agg));
      }
    }
  }
  WriteJson(configs, total_runs, total_failures);
  std::printf("total: %llu runs, %llu failures; wrote BENCH_crash_soak.json\n",
              static_cast<unsigned long long>(total_runs),
              static_cast<unsigned long long>(total_failures));
  return total_failures == 0 ? 0 : 1;
}
