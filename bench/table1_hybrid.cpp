// Table 1 reproduction: eMMC 16GB (hybrid) wear-out indicators over a staged
// schedule of I/O patterns and space utilizations.
//
// Paper shape to match:
//  * Type B advances steadily (~2.2-2.3 TiB per level) under every pattern
//    (4 KiB rand and 128 KiB seq alike) and utilization.
//  * Type A needs ~6x more I/O per level at low utilization (11.9 TiB for
//    level 1-2) — the small, high-endurance cache barely wears.
//  * Under 90%+ utilization with rewrites aimed at the utilized space, the
//    firmware merges the pools: Type A collapses to ~439 GiB/level while
//    Type B keeps its volume but takes ~3.7x longer per level (GC overhead
//    crushes throughput).

#include <cstdio>
#include <iostream>

#include "src/device/catalog.h"
#include "src/simcore/units.h"
#include "src/wearlab/report.h"
#include "src/wearlab/wearout_experiment.h"

using namespace flashsim;

namespace {

constexpr SimScale kScale{32, 32};

struct Stage {
  AccessPattern pattern;
  uint64_t request_bytes;
  double utilization;
  bool rewrite_utilized;
  uint32_t b_transitions;  // run until this many Type B transitions
};

}  // namespace

int main() {
  std::printf("=== Table 1: eMMC 16GB hybrid wear-out indicators over time "
              "(sim scale %ux cap, %ux endurance; volumes re-scaled) ===\n",
              kScale.capacity_div, kScale.endurance_div);

  auto device = MakeEmmc16(kScale, /*seed=*/5);
  WearWorkloadConfig workload;
  workload.footprint_bytes = (400 * kMiB) / kScale.capacity_div;
  WearOutExperiment experiment(*device, workload);

  const std::vector<Stage> schedule = {
      {AccessPattern::kRandom, 4096, 0.0, false, 2},        // B 1-2, 2-3
      {AccessPattern::kSequential, 128 * 1024, 0.0, false, 2},  // B 3-4, 4-5
      {AccessPattern::kRandom, 4096, 0.0, false, 1},        // B 5-6
      {AccessPattern::kRandom, 4096, 0.90, false, 1},       // B 6-7 @ 90%
      {AccessPattern::kRandom, 4096, 0.50, false, 1},       // B 7-8 @ 50%
      {AccessPattern::kRandom, 4096, 0.90, true, 2},        // B 8-10 rewrite @ 90%+
  };

  TableReporter table_a({"Indic.", "I/O Vol. (GiB)", "Incr. Time (h)", "I/O Pattern",
                         "Space Util.", "WA"});
  TableReporter table_b({"Indic.", "I/O Vol. (GiB)", "Incr. Time (h)", "I/O Pattern",
                         "Space Util.", "WA"});

  for (const Stage& stage : schedule) {
    WearWorkloadConfig cfg = experiment.workload();
    cfg.pattern = stage.pattern;
    cfg.request_bytes = stage.request_bytes;
    cfg.rewrite_utilized = stage.rewrite_utilized;
    experiment.SetWorkload(cfg);
    Status util_ok = experiment.SetUtilization(stage.utilization);
    if (!util_ok.ok()) {
      std::printf("utilization setup failed: %s\n", util_ok.ToString().c_str());
      return 1;
    }
    uint32_t b_seen = 0;
    while (b_seen < stage.b_transitions) {
      const WearRunOutcome out = experiment.Run(1, 2 * kTiB);
      if (out.transitions.empty()) {
        std::printf("stage ended early (bricked=%d cap=%d %s)\n", out.bricked,
                    out.volume_cap_hit, out.status.ToString().c_str());
        break;
      }
      for (const WearTransition& t : out.transitions) {
        TableReporter& table = t.type == WearType::kTypeB ? table_b : table_a;
        std::string util_label = FmtPercent(t.utilization);
        if (t.rewrite_utilized) {
          util_label += "+";
        }
        table.AddRow({std::to_string(t.from_level) + "-" + std::to_string(t.to_level),
                      Fmt(static_cast<double>(t.host_bytes) * kScale.VolumeFactor() /
                              kGiB, 1),
                      Fmt(t.hours * kScale.VolumeFactor(), 2), t.pattern_label,
                      util_label, Fmt(t.write_amplification)});
        if (t.type == WearType::kTypeB) {
          ++b_seen;
        }
      }
      if (out.bricked || !out.status.ok()) {
        break;
      }
    }
  }

  std::printf("\nType A flash cell (SLC-mode cache region)\n");
  table_a.Print(std::cout);
  std::printf("\nType B flash cell (MLC main pool)\n");
  table_b.Print(std::cout);
  std::printf(
      "\nPaper shape: B ~2.2 TiB/level under all patterns; A 1-2 needs ~11.9 TiB\n"
      "(~6x more than a B level); under 90%%+ utilization rewrites A collapses to\n"
      "~439 GiB/level (pool merge, MLC-mode cycling) while B keeps its volume but\n"
      "slows ~3.7x in wall-clock.\n");
  return 0;
}
