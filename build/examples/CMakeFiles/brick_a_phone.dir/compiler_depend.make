# Empty compiler generated dependencies file for brick_a_phone.
# This may be replaced when dependencies are built.
