file(REMOVE_RECURSE
  "CMakeFiles/brick_a_phone.dir/brick_a_phone.cpp.o"
  "CMakeFiles/brick_a_phone.dir/brick_a_phone.cpp.o.d"
  "brick_a_phone"
  "brick_a_phone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/brick_a_phone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
