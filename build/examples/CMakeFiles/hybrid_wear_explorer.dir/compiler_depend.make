# Empty compiler generated dependencies file for hybrid_wear_explorer.
# This may be replaced when dependencies are built.
