file(REMOVE_RECURSE
  "CMakeFiles/hybrid_wear_explorer.dir/hybrid_wear_explorer.cpp.o"
  "CMakeFiles/hybrid_wear_explorer.dir/hybrid_wear_explorer.cpp.o.d"
  "hybrid_wear_explorer"
  "hybrid_wear_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_wear_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
