# Empty dependencies file for defense_playground.
# This may be replaced when dependencies are built.
