file(REMOVE_RECURSE
  "CMakeFiles/defense_playground.dir/defense_playground.cpp.o"
  "CMakeFiles/defense_playground.dir/defense_playground.cpp.o.d"
  "defense_playground"
  "defense_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defense_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
