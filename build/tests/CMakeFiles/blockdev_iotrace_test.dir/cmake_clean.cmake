file(REMOVE_RECURSE
  "CMakeFiles/blockdev_iotrace_test.dir/blockdev_iotrace_test.cc.o"
  "CMakeFiles/blockdev_iotrace_test.dir/blockdev_iotrace_test.cc.o.d"
  "blockdev_iotrace_test"
  "blockdev_iotrace_test.pdb"
  "blockdev_iotrace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blockdev_iotrace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
