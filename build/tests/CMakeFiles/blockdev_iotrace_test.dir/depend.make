# Empty dependencies file for blockdev_iotrace_test.
# This may be replaced when dependencies are built.
