file(REMOVE_RECURSE
  "CMakeFiles/simcore_status_test.dir/simcore_status_test.cc.o"
  "CMakeFiles/simcore_status_test.dir/simcore_status_test.cc.o.d"
  "simcore_status_test"
  "simcore_status_test.pdb"
  "simcore_status_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simcore_status_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
