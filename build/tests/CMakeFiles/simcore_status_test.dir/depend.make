# Empty dependencies file for simcore_status_test.
# This may be replaced when dependencies are built.
