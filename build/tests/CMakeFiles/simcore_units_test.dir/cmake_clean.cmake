file(REMOVE_RECURSE
  "CMakeFiles/simcore_units_test.dir/simcore_units_test.cc.o"
  "CMakeFiles/simcore_units_test.dir/simcore_units_test.cc.o.d"
  "simcore_units_test"
  "simcore_units_test.pdb"
  "simcore_units_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simcore_units_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
