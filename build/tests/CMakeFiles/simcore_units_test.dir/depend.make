# Empty dependencies file for simcore_units_test.
# This may be replaced when dependencies are built.
