# Empty dependencies file for nand_error_model_test.
# This may be replaced when dependencies are built.
