file(REMOVE_RECURSE
  "CMakeFiles/nand_error_model_test.dir/nand_error_model_test.cc.o"
  "CMakeFiles/nand_error_model_test.dir/nand_error_model_test.cc.o.d"
  "nand_error_model_test"
  "nand_error_model_test.pdb"
  "nand_error_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nand_error_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
