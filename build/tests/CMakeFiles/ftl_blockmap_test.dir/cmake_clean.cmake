file(REMOVE_RECURSE
  "CMakeFiles/ftl_blockmap_test.dir/ftl_blockmap_test.cc.o"
  "CMakeFiles/ftl_blockmap_test.dir/ftl_blockmap_test.cc.o.d"
  "ftl_blockmap_test"
  "ftl_blockmap_test.pdb"
  "ftl_blockmap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_blockmap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
