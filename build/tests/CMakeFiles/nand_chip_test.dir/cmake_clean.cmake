file(REMOVE_RECURSE
  "CMakeFiles/nand_chip_test.dir/nand_chip_test.cc.o"
  "CMakeFiles/nand_chip_test.dir/nand_chip_test.cc.o.d"
  "nand_chip_test"
  "nand_chip_test.pdb"
  "nand_chip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nand_chip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
