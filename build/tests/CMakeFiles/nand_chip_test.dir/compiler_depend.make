# Empty compiler generated dependencies file for nand_chip_test.
# This may be replaced when dependencies are built.
