file(REMOVE_RECURSE
  "CMakeFiles/ftl_health_test.dir/ftl_health_test.cc.o"
  "CMakeFiles/ftl_health_test.dir/ftl_health_test.cc.o.d"
  "ftl_health_test"
  "ftl_health_test.pdb"
  "ftl_health_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_health_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
