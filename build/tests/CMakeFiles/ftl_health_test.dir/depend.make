# Empty dependencies file for ftl_health_test.
# This may be replaced when dependencies are built.
