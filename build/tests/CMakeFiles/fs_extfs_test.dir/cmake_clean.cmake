file(REMOVE_RECURSE
  "CMakeFiles/fs_extfs_test.dir/fs_extfs_test.cc.o"
  "CMakeFiles/fs_extfs_test.dir/fs_extfs_test.cc.o.d"
  "fs_extfs_test"
  "fs_extfs_test.pdb"
  "fs_extfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_extfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
