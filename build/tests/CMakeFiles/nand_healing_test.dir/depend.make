# Empty dependencies file for nand_healing_test.
# This may be replaced when dependencies are built.
