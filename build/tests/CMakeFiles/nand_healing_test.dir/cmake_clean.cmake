file(REMOVE_RECURSE
  "CMakeFiles/nand_healing_test.dir/nand_healing_test.cc.o"
  "CMakeFiles/nand_healing_test.dir/nand_healing_test.cc.o.d"
  "nand_healing_test"
  "nand_healing_test.pdb"
  "nand_healing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nand_healing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
