# Empty dependencies file for ftl_pagemap_test.
# This may be replaced when dependencies are built.
