file(REMOVE_RECURSE
  "CMakeFiles/ftl_pagemap_test.dir/ftl_pagemap_test.cc.o"
  "CMakeFiles/ftl_pagemap_test.dir/ftl_pagemap_test.cc.o.d"
  "ftl_pagemap_test"
  "ftl_pagemap_test.pdb"
  "ftl_pagemap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_pagemap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
