# Empty dependencies file for ftl_hybrid_test.
# This may be replaced when dependencies are built.
