file(REMOVE_RECURSE
  "CMakeFiles/ftl_hybrid_test.dir/ftl_hybrid_test.cc.o"
  "CMakeFiles/ftl_hybrid_test.dir/ftl_hybrid_test.cc.o.d"
  "ftl_hybrid_test"
  "ftl_hybrid_test.pdb"
  "ftl_hybrid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_hybrid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
