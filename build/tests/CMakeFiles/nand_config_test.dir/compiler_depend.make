# Empty compiler generated dependencies file for nand_config_test.
# This may be replaced when dependencies are built.
