file(REMOVE_RECURSE
  "CMakeFiles/nand_config_test.dir/nand_config_test.cc.o"
  "CMakeFiles/nand_config_test.dir/nand_config_test.cc.o.d"
  "nand_config_test"
  "nand_config_test.pdb"
  "nand_config_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nand_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
