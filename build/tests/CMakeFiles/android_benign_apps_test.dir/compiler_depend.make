# Empty compiler generated dependencies file for android_benign_apps_test.
# This may be replaced when dependencies are built.
