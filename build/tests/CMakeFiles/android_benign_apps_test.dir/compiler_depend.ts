# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for android_benign_apps_test.
