file(REMOVE_RECURSE
  "CMakeFiles/android_benign_apps_test.dir/android_benign_apps_test.cc.o"
  "CMakeFiles/android_benign_apps_test.dir/android_benign_apps_test.cc.o.d"
  "android_benign_apps_test"
  "android_benign_apps_test.pdb"
  "android_benign_apps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/android_benign_apps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
