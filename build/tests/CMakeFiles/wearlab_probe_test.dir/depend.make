# Empty dependencies file for wearlab_probe_test.
# This may be replaced when dependencies are built.
