file(REMOVE_RECURSE
  "CMakeFiles/wearlab_probe_test.dir/wearlab_probe_test.cc.o"
  "CMakeFiles/wearlab_probe_test.dir/wearlab_probe_test.cc.o.d"
  "wearlab_probe_test"
  "wearlab_probe_test.pdb"
  "wearlab_probe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wearlab_probe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
