file(REMOVE_RECURSE
  "CMakeFiles/paper_targets_test.dir/paper_targets_test.cc.o"
  "CMakeFiles/paper_targets_test.dir/paper_targets_test.cc.o.d"
  "paper_targets_test"
  "paper_targets_test.pdb"
  "paper_targets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_targets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
