# Empty compiler generated dependencies file for paper_targets_test.
# This may be replaced when dependencies are built.
