# Empty dependencies file for scale_invariance_test.
# This may be replaced when dependencies are built.
