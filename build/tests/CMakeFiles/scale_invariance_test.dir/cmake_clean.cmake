file(REMOVE_RECURSE
  "CMakeFiles/scale_invariance_test.dir/scale_invariance_test.cc.o"
  "CMakeFiles/scale_invariance_test.dir/scale_invariance_test.cc.o.d"
  "scale_invariance_test"
  "scale_invariance_test.pdb"
  "scale_invariance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scale_invariance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
