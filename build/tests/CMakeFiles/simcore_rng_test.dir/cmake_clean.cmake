file(REMOVE_RECURSE
  "CMakeFiles/simcore_rng_test.dir/simcore_rng_test.cc.o"
  "CMakeFiles/simcore_rng_test.dir/simcore_rng_test.cc.o.d"
  "simcore_rng_test"
  "simcore_rng_test.pdb"
  "simcore_rng_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simcore_rng_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
