file(REMOVE_RECURSE
  "CMakeFiles/wearlab_estimator_test.dir/wearlab_estimator_test.cc.o"
  "CMakeFiles/wearlab_estimator_test.dir/wearlab_estimator_test.cc.o.d"
  "wearlab_estimator_test"
  "wearlab_estimator_test.pdb"
  "wearlab_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wearlab_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
