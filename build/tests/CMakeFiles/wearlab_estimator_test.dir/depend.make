# Empty dependencies file for wearlab_estimator_test.
# This may be replaced when dependencies are built.
