# Empty dependencies file for android_defense_test.
# This may be replaced when dependencies are built.
