file(REMOVE_RECURSE
  "CMakeFiles/android_defense_test.dir/android_defense_test.cc.o"
  "CMakeFiles/android_defense_test.dir/android_defense_test.cc.o.d"
  "android_defense_test"
  "android_defense_test.pdb"
  "android_defense_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/android_defense_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
