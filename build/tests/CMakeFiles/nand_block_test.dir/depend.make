# Empty dependencies file for nand_block_test.
# This may be replaced when dependencies are built.
