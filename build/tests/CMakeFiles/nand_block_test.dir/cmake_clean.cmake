file(REMOVE_RECURSE
  "CMakeFiles/nand_block_test.dir/nand_block_test.cc.o"
  "CMakeFiles/nand_block_test.dir/nand_block_test.cc.o.d"
  "nand_block_test"
  "nand_block_test.pdb"
  "nand_block_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nand_block_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
