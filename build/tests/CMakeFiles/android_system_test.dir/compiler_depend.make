# Empty compiler generated dependencies file for android_system_test.
# This may be replaced when dependencies are built.
