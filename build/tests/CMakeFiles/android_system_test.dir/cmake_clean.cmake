file(REMOVE_RECURSE
  "CMakeFiles/android_system_test.dir/android_system_test.cc.o"
  "CMakeFiles/android_system_test.dir/android_system_test.cc.o.d"
  "android_system_test"
  "android_system_test.pdb"
  "android_system_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/android_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
