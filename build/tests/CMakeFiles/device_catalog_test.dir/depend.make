# Empty dependencies file for device_catalog_test.
# This may be replaced when dependencies are built.
