file(REMOVE_RECURSE
  "CMakeFiles/device_catalog_test.dir/device_catalog_test.cc.o"
  "CMakeFiles/device_catalog_test.dir/device_catalog_test.cc.o.d"
  "device_catalog_test"
  "device_catalog_test.pdb"
  "device_catalog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_catalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
