# Empty dependencies file for wearlab_report_test.
# This may be replaced when dependencies are built.
