file(REMOVE_RECURSE
  "CMakeFiles/wearlab_report_test.dir/wearlab_report_test.cc.o"
  "CMakeFiles/wearlab_report_test.dir/wearlab_report_test.cc.o.d"
  "wearlab_report_test"
  "wearlab_report_test.pdb"
  "wearlab_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wearlab_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
