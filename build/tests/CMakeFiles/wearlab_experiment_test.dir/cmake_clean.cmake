file(REMOVE_RECURSE
  "CMakeFiles/wearlab_experiment_test.dir/wearlab_experiment_test.cc.o"
  "CMakeFiles/wearlab_experiment_test.dir/wearlab_experiment_test.cc.o.d"
  "wearlab_experiment_test"
  "wearlab_experiment_test.pdb"
  "wearlab_experiment_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wearlab_experiment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
