# Empty dependencies file for wearlab_experiment_test.
# This may be replaced when dependencies are built.
