file(REMOVE_RECURSE
  "CMakeFiles/fs_common_test.dir/fs_common_test.cc.o"
  "CMakeFiles/fs_common_test.dir/fs_common_test.cc.o.d"
  "fs_common_test"
  "fs_common_test.pdb"
  "fs_common_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
