file(REMOVE_RECURSE
  "CMakeFiles/fs_logfs_test.dir/fs_logfs_test.cc.o"
  "CMakeFiles/fs_logfs_test.dir/fs_logfs_test.cc.o.d"
  "fs_logfs_test"
  "fs_logfs_test.pdb"
  "fs_logfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_logfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
