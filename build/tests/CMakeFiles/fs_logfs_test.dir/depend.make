# Empty dependencies file for fs_logfs_test.
# This may be replaced when dependencies are built.
