file(REMOVE_RECURSE
  "CMakeFiles/blockdev_perf_test.dir/blockdev_perf_test.cc.o"
  "CMakeFiles/blockdev_perf_test.dir/blockdev_perf_test.cc.o.d"
  "blockdev_perf_test"
  "blockdev_perf_test.pdb"
  "blockdev_perf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blockdev_perf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
