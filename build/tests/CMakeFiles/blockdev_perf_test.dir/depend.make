# Empty dependencies file for blockdev_perf_test.
# This may be replaced when dependencies are built.
