# Empty compiler generated dependencies file for ftl_invariants_test.
# This may be replaced when dependencies are built.
