file(REMOVE_RECURSE
  "CMakeFiles/ftl_invariants_test.dir/ftl_invariants_test.cc.o"
  "CMakeFiles/ftl_invariants_test.dir/ftl_invariants_test.cc.o.d"
  "ftl_invariants_test"
  "ftl_invariants_test.pdb"
  "ftl_invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
