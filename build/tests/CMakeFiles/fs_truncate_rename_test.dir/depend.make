# Empty dependencies file for fs_truncate_rename_test.
# This may be replaced when dependencies are built.
