# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fs_truncate_rename_test.
