file(REMOVE_RECURSE
  "CMakeFiles/fs_truncate_rename_test.dir/fs_truncate_rename_test.cc.o"
  "CMakeFiles/fs_truncate_rename_test.dir/fs_truncate_rename_test.cc.o.d"
  "fs_truncate_rename_test"
  "fs_truncate_rename_test.pdb"
  "fs_truncate_rename_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_truncate_rename_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
