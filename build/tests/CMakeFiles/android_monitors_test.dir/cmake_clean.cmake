file(REMOVE_RECURSE
  "CMakeFiles/android_monitors_test.dir/android_monitors_test.cc.o"
  "CMakeFiles/android_monitors_test.dir/android_monitors_test.cc.o.d"
  "android_monitors_test"
  "android_monitors_test.pdb"
  "android_monitors_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/android_monitors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
