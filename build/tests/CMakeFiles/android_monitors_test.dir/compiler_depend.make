# Empty compiler generated dependencies file for android_monitors_test.
# This may be replaced when dependencies are built.
