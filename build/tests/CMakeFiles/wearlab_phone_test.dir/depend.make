# Empty dependencies file for wearlab_phone_test.
# This may be replaced when dependencies are built.
