file(REMOVE_RECURSE
  "CMakeFiles/wearlab_phone_test.dir/wearlab_phone_test.cc.o"
  "CMakeFiles/wearlab_phone_test.dir/wearlab_phone_test.cc.o.d"
  "wearlab_phone_test"
  "wearlab_phone_test.pdb"
  "wearlab_phone_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wearlab_phone_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
