file(REMOVE_RECURSE
  "CMakeFiles/simcore_event_log_test.dir/simcore_event_log_test.cc.o"
  "CMakeFiles/simcore_event_log_test.dir/simcore_event_log_test.cc.o.d"
  "simcore_event_log_test"
  "simcore_event_log_test.pdb"
  "simcore_event_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simcore_event_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
