# Empty compiler generated dependencies file for simcore_event_log_test.
# This may be replaced when dependencies are built.
