file(REMOVE_RECURSE
  "CMakeFiles/android_phone_state_test.dir/android_phone_state_test.cc.o"
  "CMakeFiles/android_phone_state_test.dir/android_phone_state_test.cc.o.d"
  "android_phone_state_test"
  "android_phone_state_test.pdb"
  "android_phone_state_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/android_phone_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
