# Empty compiler generated dependencies file for android_phone_state_test.
# This may be replaced when dependencies are built.
