# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for android_phone_state_test.
