# Empty compiler generated dependencies file for simcore_stats_test.
# This may be replaced when dependencies are built.
