file(REMOVE_RECURSE
  "CMakeFiles/simcore_stats_test.dir/simcore_stats_test.cc.o"
  "CMakeFiles/simcore_stats_test.dir/simcore_stats_test.cc.o.d"
  "simcore_stats_test"
  "simcore_stats_test.pdb"
  "simcore_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simcore_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
