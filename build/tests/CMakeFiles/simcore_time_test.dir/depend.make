# Empty dependencies file for simcore_time_test.
# This may be replaced when dependencies are built.
