file(REMOVE_RECURSE
  "CMakeFiles/simcore_time_test.dir/simcore_time_test.cc.o"
  "CMakeFiles/simcore_time_test.dir/simcore_time_test.cc.o.d"
  "simcore_time_test"
  "simcore_time_test.pdb"
  "simcore_time_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simcore_time_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
