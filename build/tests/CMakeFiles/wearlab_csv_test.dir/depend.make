# Empty dependencies file for wearlab_csv_test.
# This may be replaced when dependencies are built.
