
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/wearlab_csv_test.cc" "tests/CMakeFiles/wearlab_csv_test.dir/wearlab_csv_test.cc.o" "gcc" "tests/CMakeFiles/wearlab_csv_test.dir/wearlab_csv_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wearlab/CMakeFiles/flashsim_wearlab.dir/DependInfo.cmake"
  "/root/repo/build/src/android/CMakeFiles/flashsim_android.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/flashsim_device.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/flashsim_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/blockdev/CMakeFiles/flashsim_blockdev.dir/DependInfo.cmake"
  "/root/repo/build/src/ftl/CMakeFiles/flashsim_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/nand/CMakeFiles/flashsim_nand.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/flashsim_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
