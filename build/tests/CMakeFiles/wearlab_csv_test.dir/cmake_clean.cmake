file(REMOVE_RECURSE
  "CMakeFiles/wearlab_csv_test.dir/wearlab_csv_test.cc.o"
  "CMakeFiles/wearlab_csv_test.dir/wearlab_csv_test.cc.o.d"
  "wearlab_csv_test"
  "wearlab_csv_test.pdb"
  "wearlab_csv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wearlab_csv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
