file(REMOVE_RECURSE
  "libflashsim_ftl.a"
)
