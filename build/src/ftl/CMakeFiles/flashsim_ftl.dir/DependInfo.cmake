
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ftl/block_map_ftl.cc" "src/ftl/CMakeFiles/flashsim_ftl.dir/block_map_ftl.cc.o" "gcc" "src/ftl/CMakeFiles/flashsim_ftl.dir/block_map_ftl.cc.o.d"
  "/root/repo/src/ftl/config.cc" "src/ftl/CMakeFiles/flashsim_ftl.dir/config.cc.o" "gcc" "src/ftl/CMakeFiles/flashsim_ftl.dir/config.cc.o.d"
  "/root/repo/src/ftl/health.cc" "src/ftl/CMakeFiles/flashsim_ftl.dir/health.cc.o" "gcc" "src/ftl/CMakeFiles/flashsim_ftl.dir/health.cc.o.d"
  "/root/repo/src/ftl/hybrid_ftl.cc" "src/ftl/CMakeFiles/flashsim_ftl.dir/hybrid_ftl.cc.o" "gcc" "src/ftl/CMakeFiles/flashsim_ftl.dir/hybrid_ftl.cc.o.d"
  "/root/repo/src/ftl/page_map_ftl.cc" "src/ftl/CMakeFiles/flashsim_ftl.dir/page_map_ftl.cc.o" "gcc" "src/ftl/CMakeFiles/flashsim_ftl.dir/page_map_ftl.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nand/CMakeFiles/flashsim_nand.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/flashsim_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
