file(REMOVE_RECURSE
  "CMakeFiles/flashsim_ftl.dir/block_map_ftl.cc.o"
  "CMakeFiles/flashsim_ftl.dir/block_map_ftl.cc.o.d"
  "CMakeFiles/flashsim_ftl.dir/config.cc.o"
  "CMakeFiles/flashsim_ftl.dir/config.cc.o.d"
  "CMakeFiles/flashsim_ftl.dir/health.cc.o"
  "CMakeFiles/flashsim_ftl.dir/health.cc.o.d"
  "CMakeFiles/flashsim_ftl.dir/hybrid_ftl.cc.o"
  "CMakeFiles/flashsim_ftl.dir/hybrid_ftl.cc.o.d"
  "CMakeFiles/flashsim_ftl.dir/page_map_ftl.cc.o"
  "CMakeFiles/flashsim_ftl.dir/page_map_ftl.cc.o.d"
  "libflashsim_ftl.a"
  "libflashsim_ftl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flashsim_ftl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
