# Empty dependencies file for flashsim_ftl.
# This may be replaced when dependencies are built.
