
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nand/block.cc" "src/nand/CMakeFiles/flashsim_nand.dir/block.cc.o" "gcc" "src/nand/CMakeFiles/flashsim_nand.dir/block.cc.o.d"
  "/root/repo/src/nand/chip.cc" "src/nand/CMakeFiles/flashsim_nand.dir/chip.cc.o" "gcc" "src/nand/CMakeFiles/flashsim_nand.dir/chip.cc.o.d"
  "/root/repo/src/nand/config.cc" "src/nand/CMakeFiles/flashsim_nand.dir/config.cc.o" "gcc" "src/nand/CMakeFiles/flashsim_nand.dir/config.cc.o.d"
  "/root/repo/src/nand/error_model.cc" "src/nand/CMakeFiles/flashsim_nand.dir/error_model.cc.o" "gcc" "src/nand/CMakeFiles/flashsim_nand.dir/error_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simcore/CMakeFiles/flashsim_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
