file(REMOVE_RECURSE
  "libflashsim_nand.a"
)
