file(REMOVE_RECURSE
  "CMakeFiles/flashsim_nand.dir/block.cc.o"
  "CMakeFiles/flashsim_nand.dir/block.cc.o.d"
  "CMakeFiles/flashsim_nand.dir/chip.cc.o"
  "CMakeFiles/flashsim_nand.dir/chip.cc.o.d"
  "CMakeFiles/flashsim_nand.dir/config.cc.o"
  "CMakeFiles/flashsim_nand.dir/config.cc.o.d"
  "CMakeFiles/flashsim_nand.dir/error_model.cc.o"
  "CMakeFiles/flashsim_nand.dir/error_model.cc.o.d"
  "libflashsim_nand.a"
  "libflashsim_nand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flashsim_nand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
