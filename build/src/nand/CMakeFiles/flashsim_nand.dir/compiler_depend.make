# Empty compiler generated dependencies file for flashsim_nand.
# This may be replaced when dependencies are built.
