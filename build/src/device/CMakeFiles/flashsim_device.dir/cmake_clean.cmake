file(REMOVE_RECURSE
  "CMakeFiles/flashsim_device.dir/catalog.cc.o"
  "CMakeFiles/flashsim_device.dir/catalog.cc.o.d"
  "CMakeFiles/flashsim_device.dir/flash_device.cc.o"
  "CMakeFiles/flashsim_device.dir/flash_device.cc.o.d"
  "libflashsim_device.a"
  "libflashsim_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flashsim_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
