file(REMOVE_RECURSE
  "libflashsim_device.a"
)
