# Empty dependencies file for flashsim_device.
# This may be replaced when dependencies are built.
