
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/android/android_system.cc" "src/android/CMakeFiles/flashsim_android.dir/android_system.cc.o" "gcc" "src/android/CMakeFiles/flashsim_android.dir/android_system.cc.o.d"
  "/root/repo/src/android/attack_app.cc" "src/android/CMakeFiles/flashsim_android.dir/attack_app.cc.o" "gcc" "src/android/CMakeFiles/flashsim_android.dir/attack_app.cc.o.d"
  "/root/repo/src/android/benign_apps.cc" "src/android/CMakeFiles/flashsim_android.dir/benign_apps.cc.o" "gcc" "src/android/CMakeFiles/flashsim_android.dir/benign_apps.cc.o.d"
  "/root/repo/src/android/defense.cc" "src/android/CMakeFiles/flashsim_android.dir/defense.cc.o" "gcc" "src/android/CMakeFiles/flashsim_android.dir/defense.cc.o.d"
  "/root/repo/src/android/monitors.cc" "src/android/CMakeFiles/flashsim_android.dir/monitors.cc.o" "gcc" "src/android/CMakeFiles/flashsim_android.dir/monitors.cc.o.d"
  "/root/repo/src/android/phone_state.cc" "src/android/CMakeFiles/flashsim_android.dir/phone_state.cc.o" "gcc" "src/android/CMakeFiles/flashsim_android.dir/phone_state.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fs/CMakeFiles/flashsim_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/flashsim_device.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/flashsim_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/blockdev/CMakeFiles/flashsim_blockdev.dir/DependInfo.cmake"
  "/root/repo/build/src/ftl/CMakeFiles/flashsim_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/nand/CMakeFiles/flashsim_nand.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
