file(REMOVE_RECURSE
  "libflashsim_android.a"
)
