file(REMOVE_RECURSE
  "CMakeFiles/flashsim_android.dir/android_system.cc.o"
  "CMakeFiles/flashsim_android.dir/android_system.cc.o.d"
  "CMakeFiles/flashsim_android.dir/attack_app.cc.o"
  "CMakeFiles/flashsim_android.dir/attack_app.cc.o.d"
  "CMakeFiles/flashsim_android.dir/benign_apps.cc.o"
  "CMakeFiles/flashsim_android.dir/benign_apps.cc.o.d"
  "CMakeFiles/flashsim_android.dir/defense.cc.o"
  "CMakeFiles/flashsim_android.dir/defense.cc.o.d"
  "CMakeFiles/flashsim_android.dir/monitors.cc.o"
  "CMakeFiles/flashsim_android.dir/monitors.cc.o.d"
  "CMakeFiles/flashsim_android.dir/phone_state.cc.o"
  "CMakeFiles/flashsim_android.dir/phone_state.cc.o.d"
  "libflashsim_android.a"
  "libflashsim_android.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flashsim_android.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
