# Empty dependencies file for flashsim_android.
# This may be replaced when dependencies are built.
