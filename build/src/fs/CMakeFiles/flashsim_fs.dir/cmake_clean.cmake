file(REMOVE_RECURSE
  "CMakeFiles/flashsim_fs.dir/extfs.cc.o"
  "CMakeFiles/flashsim_fs.dir/extfs.cc.o.d"
  "CMakeFiles/flashsim_fs.dir/logfs.cc.o"
  "CMakeFiles/flashsim_fs.dir/logfs.cc.o.d"
  "libflashsim_fs.a"
  "libflashsim_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flashsim_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
