# Empty compiler generated dependencies file for flashsim_fs.
# This may be replaced when dependencies are built.
