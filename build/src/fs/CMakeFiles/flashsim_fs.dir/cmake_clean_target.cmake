file(REMOVE_RECURSE
  "libflashsim_fs.a"
)
