file(REMOVE_RECURSE
  "CMakeFiles/flashsim_blockdev.dir/block_device.cc.o"
  "CMakeFiles/flashsim_blockdev.dir/block_device.cc.o.d"
  "CMakeFiles/flashsim_blockdev.dir/iotrace.cc.o"
  "CMakeFiles/flashsim_blockdev.dir/iotrace.cc.o.d"
  "CMakeFiles/flashsim_blockdev.dir/perf_model.cc.o"
  "CMakeFiles/flashsim_blockdev.dir/perf_model.cc.o.d"
  "libflashsim_blockdev.a"
  "libflashsim_blockdev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flashsim_blockdev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
