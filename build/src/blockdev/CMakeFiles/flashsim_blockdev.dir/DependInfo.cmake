
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blockdev/block_device.cc" "src/blockdev/CMakeFiles/flashsim_blockdev.dir/block_device.cc.o" "gcc" "src/blockdev/CMakeFiles/flashsim_blockdev.dir/block_device.cc.o.d"
  "/root/repo/src/blockdev/iotrace.cc" "src/blockdev/CMakeFiles/flashsim_blockdev.dir/iotrace.cc.o" "gcc" "src/blockdev/CMakeFiles/flashsim_blockdev.dir/iotrace.cc.o.d"
  "/root/repo/src/blockdev/perf_model.cc" "src/blockdev/CMakeFiles/flashsim_blockdev.dir/perf_model.cc.o" "gcc" "src/blockdev/CMakeFiles/flashsim_blockdev.dir/perf_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ftl/CMakeFiles/flashsim_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/flashsim_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/nand/CMakeFiles/flashsim_nand.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
