# Empty dependencies file for flashsim_blockdev.
# This may be replaced when dependencies are built.
