file(REMOVE_RECURSE
  "libflashsim_blockdev.a"
)
