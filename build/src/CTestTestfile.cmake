# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("simcore")
subdirs("nand")
subdirs("ftl")
subdirs("blockdev")
subdirs("device")
subdirs("fs")
subdirs("android")
subdirs("wearlab")
