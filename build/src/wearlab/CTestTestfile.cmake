# CMake generated Testfile for 
# Source directory: /root/repo/src/wearlab
# Build directory: /root/repo/build/src/wearlab
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
