# Empty compiler generated dependencies file for flashsim_wearlab.
# This may be replaced when dependencies are built.
