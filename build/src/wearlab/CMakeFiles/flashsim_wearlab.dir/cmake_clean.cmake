file(REMOVE_RECURSE
  "CMakeFiles/flashsim_wearlab.dir/bandwidth_probe.cc.o"
  "CMakeFiles/flashsim_wearlab.dir/bandwidth_probe.cc.o.d"
  "CMakeFiles/flashsim_wearlab.dir/csv.cc.o"
  "CMakeFiles/flashsim_wearlab.dir/csv.cc.o.d"
  "CMakeFiles/flashsim_wearlab.dir/lifetime_estimator.cc.o"
  "CMakeFiles/flashsim_wearlab.dir/lifetime_estimator.cc.o.d"
  "CMakeFiles/flashsim_wearlab.dir/phone.cc.o"
  "CMakeFiles/flashsim_wearlab.dir/phone.cc.o.d"
  "CMakeFiles/flashsim_wearlab.dir/report.cc.o"
  "CMakeFiles/flashsim_wearlab.dir/report.cc.o.d"
  "CMakeFiles/flashsim_wearlab.dir/wearout_experiment.cc.o"
  "CMakeFiles/flashsim_wearlab.dir/wearout_experiment.cc.o.d"
  "libflashsim_wearlab.a"
  "libflashsim_wearlab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flashsim_wearlab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
