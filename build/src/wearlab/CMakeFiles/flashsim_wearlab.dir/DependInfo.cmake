
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wearlab/bandwidth_probe.cc" "src/wearlab/CMakeFiles/flashsim_wearlab.dir/bandwidth_probe.cc.o" "gcc" "src/wearlab/CMakeFiles/flashsim_wearlab.dir/bandwidth_probe.cc.o.d"
  "/root/repo/src/wearlab/csv.cc" "src/wearlab/CMakeFiles/flashsim_wearlab.dir/csv.cc.o" "gcc" "src/wearlab/CMakeFiles/flashsim_wearlab.dir/csv.cc.o.d"
  "/root/repo/src/wearlab/lifetime_estimator.cc" "src/wearlab/CMakeFiles/flashsim_wearlab.dir/lifetime_estimator.cc.o" "gcc" "src/wearlab/CMakeFiles/flashsim_wearlab.dir/lifetime_estimator.cc.o.d"
  "/root/repo/src/wearlab/phone.cc" "src/wearlab/CMakeFiles/flashsim_wearlab.dir/phone.cc.o" "gcc" "src/wearlab/CMakeFiles/flashsim_wearlab.dir/phone.cc.o.d"
  "/root/repo/src/wearlab/report.cc" "src/wearlab/CMakeFiles/flashsim_wearlab.dir/report.cc.o" "gcc" "src/wearlab/CMakeFiles/flashsim_wearlab.dir/report.cc.o.d"
  "/root/repo/src/wearlab/wearout_experiment.cc" "src/wearlab/CMakeFiles/flashsim_wearlab.dir/wearout_experiment.cc.o" "gcc" "src/wearlab/CMakeFiles/flashsim_wearlab.dir/wearout_experiment.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/android/CMakeFiles/flashsim_android.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/flashsim_device.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/flashsim_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/flashsim_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/blockdev/CMakeFiles/flashsim_blockdev.dir/DependInfo.cmake"
  "/root/repo/build/src/ftl/CMakeFiles/flashsim_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/nand/CMakeFiles/flashsim_nand.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
