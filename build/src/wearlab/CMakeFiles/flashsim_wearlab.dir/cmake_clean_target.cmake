file(REMOVE_RECURSE
  "libflashsim_wearlab.a"
)
