
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simcore/clock.cc" "src/simcore/CMakeFiles/flashsim_simcore.dir/clock.cc.o" "gcc" "src/simcore/CMakeFiles/flashsim_simcore.dir/clock.cc.o.d"
  "/root/repo/src/simcore/event_log.cc" "src/simcore/CMakeFiles/flashsim_simcore.dir/event_log.cc.o" "gcc" "src/simcore/CMakeFiles/flashsim_simcore.dir/event_log.cc.o.d"
  "/root/repo/src/simcore/rng.cc" "src/simcore/CMakeFiles/flashsim_simcore.dir/rng.cc.o" "gcc" "src/simcore/CMakeFiles/flashsim_simcore.dir/rng.cc.o.d"
  "/root/repo/src/simcore/stats.cc" "src/simcore/CMakeFiles/flashsim_simcore.dir/stats.cc.o" "gcc" "src/simcore/CMakeFiles/flashsim_simcore.dir/stats.cc.o.d"
  "/root/repo/src/simcore/status.cc" "src/simcore/CMakeFiles/flashsim_simcore.dir/status.cc.o" "gcc" "src/simcore/CMakeFiles/flashsim_simcore.dir/status.cc.o.d"
  "/root/repo/src/simcore/units.cc" "src/simcore/CMakeFiles/flashsim_simcore.dir/units.cc.o" "gcc" "src/simcore/CMakeFiles/flashsim_simcore.dir/units.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
