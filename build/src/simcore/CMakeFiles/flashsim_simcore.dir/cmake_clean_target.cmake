file(REMOVE_RECURSE
  "libflashsim_simcore.a"
)
