file(REMOVE_RECURSE
  "CMakeFiles/flashsim_simcore.dir/clock.cc.o"
  "CMakeFiles/flashsim_simcore.dir/clock.cc.o.d"
  "CMakeFiles/flashsim_simcore.dir/event_log.cc.o"
  "CMakeFiles/flashsim_simcore.dir/event_log.cc.o.d"
  "CMakeFiles/flashsim_simcore.dir/rng.cc.o"
  "CMakeFiles/flashsim_simcore.dir/rng.cc.o.d"
  "CMakeFiles/flashsim_simcore.dir/stats.cc.o"
  "CMakeFiles/flashsim_simcore.dir/stats.cc.o.d"
  "CMakeFiles/flashsim_simcore.dir/status.cc.o"
  "CMakeFiles/flashsim_simcore.dir/status.cc.o.d"
  "CMakeFiles/flashsim_simcore.dir/units.cc.o"
  "CMakeFiles/flashsim_simcore.dir/units.cc.o.d"
  "libflashsim_simcore.a"
  "libflashsim_simcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flashsim_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
