# Empty compiler generated dependencies file for flashsim_simcore.
# This may be replaced when dependencies are built.
