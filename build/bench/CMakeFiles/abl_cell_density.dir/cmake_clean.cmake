file(REMOVE_RECURSE
  "CMakeFiles/abl_cell_density.dir/abl_cell_density.cpp.o"
  "CMakeFiles/abl_cell_density.dir/abl_cell_density.cpp.o.d"
  "abl_cell_density"
  "abl_cell_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_cell_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
