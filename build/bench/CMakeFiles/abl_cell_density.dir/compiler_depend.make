# Empty compiler generated dependencies file for abl_cell_density.
# This may be replaced when dependencies are built.
