# Empty compiler generated dependencies file for abl_healing.
# This may be replaced when dependencies are built.
