file(REMOVE_RECURSE
  "CMakeFiles/abl_healing.dir/abl_healing.cpp.o"
  "CMakeFiles/abl_healing.dir/abl_healing.cpp.o.d"
  "abl_healing"
  "abl_healing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_healing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
