# Empty dependencies file for table1_hybrid.
# This may be replaced when dependencies are built.
