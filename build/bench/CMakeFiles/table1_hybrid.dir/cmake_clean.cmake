file(REMOVE_RECURSE
  "CMakeFiles/table1_hybrid.dir/table1_hybrid.cpp.o"
  "CMakeFiles/table1_hybrid.dir/table1_hybrid.cpp.o.d"
  "table1_hybrid"
  "table1_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
