# Empty compiler generated dependencies file for abl_estimator_gap.
# This may be replaced when dependencies are built.
