file(REMOVE_RECURSE
  "CMakeFiles/abl_estimator_gap.dir/abl_estimator_gap.cpp.o"
  "CMakeFiles/abl_estimator_gap.dir/abl_estimator_gap.cpp.o.d"
  "abl_estimator_gap"
  "abl_estimator_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_estimator_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
