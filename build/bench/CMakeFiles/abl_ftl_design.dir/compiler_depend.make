# Empty compiler generated dependencies file for abl_ftl_design.
# This may be replaced when dependencies are built.
