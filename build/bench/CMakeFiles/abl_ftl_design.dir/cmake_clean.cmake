file(REMOVE_RECURSE
  "CMakeFiles/abl_ftl_design.dir/abl_ftl_design.cpp.o"
  "CMakeFiles/abl_ftl_design.dir/abl_ftl_design.cpp.o.d"
  "abl_ftl_design"
  "abl_ftl_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_ftl_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
