# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig3_time_to_wear.
