file(REMOVE_RECURSE
  "CMakeFiles/fig3_time_to_wear.dir/fig3_time_to_wear.cpp.o"
  "CMakeFiles/fig3_time_to_wear.dir/fig3_time_to_wear.cpp.o.d"
  "fig3_time_to_wear"
  "fig3_time_to_wear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_time_to_wear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
