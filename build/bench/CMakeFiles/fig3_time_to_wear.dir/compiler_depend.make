# Empty compiler generated dependencies file for fig3_time_to_wear.
# This may be replaced when dependencies are built.
