# Empty compiler generated dependencies file for abl_stealth_detection.
# This may be replaced when dependencies are built.
