file(REMOVE_RECURSE
  "CMakeFiles/abl_stealth_detection.dir/abl_stealth_detection.cpp.o"
  "CMakeFiles/abl_stealth_detection.dir/abl_stealth_detection.cpp.o.d"
  "abl_stealth_detection"
  "abl_stealth_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_stealth_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
