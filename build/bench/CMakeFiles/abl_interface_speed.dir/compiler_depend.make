# Empty compiler generated dependencies file for abl_interface_speed.
# This may be replaced when dependencies are built.
