file(REMOVE_RECURSE
  "CMakeFiles/abl_interface_speed.dir/abl_interface_speed.cpp.o"
  "CMakeFiles/abl_interface_speed.dir/abl_interface_speed.cpp.o.d"
  "abl_interface_speed"
  "abl_interface_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_interface_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
