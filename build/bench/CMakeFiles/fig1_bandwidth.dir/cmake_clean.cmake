file(REMOVE_RECURSE
  "CMakeFiles/fig1_bandwidth.dir/fig1_bandwidth.cpp.o"
  "CMakeFiles/fig1_bandwidth.dir/fig1_bandwidth.cpp.o.d"
  "fig1_bandwidth"
  "fig1_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
