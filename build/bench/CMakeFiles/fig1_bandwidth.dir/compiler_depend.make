# Empty compiler generated dependencies file for fig1_bandwidth.
# This may be replaced when dependencies are built.
