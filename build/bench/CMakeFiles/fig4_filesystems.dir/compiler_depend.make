# Empty compiler generated dependencies file for fig4_filesystems.
# This may be replaced when dependencies are built.
