file(REMOVE_RECURSE
  "CMakeFiles/fig4_filesystems.dir/fig4_filesystems.cpp.o"
  "CMakeFiles/fig4_filesystems.dir/fig4_filesystems.cpp.o.d"
  "fig4_filesystems"
  "fig4_filesystems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_filesystems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
