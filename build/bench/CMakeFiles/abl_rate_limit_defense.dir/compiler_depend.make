# Empty compiler generated dependencies file for abl_rate_limit_defense.
# This may be replaced when dependencies are built.
