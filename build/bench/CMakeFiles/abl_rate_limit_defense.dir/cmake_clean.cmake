file(REMOVE_RECURSE
  "CMakeFiles/abl_rate_limit_defense.dir/abl_rate_limit_defense.cpp.o"
  "CMakeFiles/abl_rate_limit_defense.dir/abl_rate_limit_defense.cpp.o.d"
  "abl_rate_limit_defense"
  "abl_rate_limit_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_rate_limit_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
