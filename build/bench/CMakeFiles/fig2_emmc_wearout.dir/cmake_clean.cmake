file(REMOVE_RECURSE
  "CMakeFiles/fig2_emmc_wearout.dir/fig2_emmc_wearout.cpp.o"
  "CMakeFiles/fig2_emmc_wearout.dir/fig2_emmc_wearout.cpp.o.d"
  "fig2_emmc_wearout"
  "fig2_emmc_wearout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_emmc_wearout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
