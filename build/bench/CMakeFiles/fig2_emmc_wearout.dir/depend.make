# Empty dependencies file for fig2_emmc_wearout.
# This may be replaced when dependencies are built.
