// Truncate/rename contract, run against both file systems.

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "src/fs/extfs.h"
#include "src/fs/logfs.h"
#include "tests/test_util.h"

namespace flashsim {
namespace {

struct FsFixture {
  std::unique_ptr<FlashDevice> device;
  std::unique_ptr<Filesystem> fs;
};

struct FsCase {
  const char* name;
  std::function<FsFixture()> factory;
};

class FsTruncRename : public ::testing::TestWithParam<FsCase> {
 protected:
  void SetUp() override { fixture_ = GetParam().factory(); }
  Filesystem& fs() { return *fixture_.fs; }
  FsFixture fixture_;
};

TEST_P(FsTruncRename, ShrinkFreesSpace) {
  ASSERT_TRUE(fs().Create("f").ok());
  ASSERT_TRUE(fs().Write("f", 0, 2 * 1024 * 1024, true).ok());
  ASSERT_TRUE(fs().Truncate("f", 64 * 1024).ok());
  EXPECT_EQ(fs().FileSize("f").value(), 64u * 1024);
  // The dropped space is reusable: a fresh 2 MiB file must fit. (In the
  // log-structured FS the free count lags until the cleaner runs, so we
  // check usability, not the instantaneous counter.)
  ASSERT_TRUE(fs().Create("g").ok());
  EXPECT_TRUE(fs().Write("g", 0, 2 * 1024 * 1024, true).ok());
  // Data inside the kept prefix is still readable.
  EXPECT_TRUE(fs().Read("f", 0, 64 * 1024).ok());
  // Reads past the new size fail.
  EXPECT_EQ(fs().Read("f", 64 * 1024, 4096).status().code(),
            StatusCode::kOutOfRange);
}

TEST_P(FsTruncRename, SparseExtendIsCheap) {
  ASSERT_TRUE(fs().Create("f").ok());
  ASSERT_TRUE(fs().Write("f", 0, 4096, true).ok());
  const uint64_t free_before = fs().FreeBytes();
  ASSERT_TRUE(fs().Truncate("f", 8 * 1024 * 1024).ok());
  EXPECT_EQ(fs().FileSize("f").value(), 8u * 1024 * 1024);
  EXPECT_EQ(fs().FreeBytes(), free_before) << "extension allocates nothing";
}

TEST_P(FsTruncRename, TruncateToZero) {
  ASSERT_TRUE(fs().Create("f").ok());
  ASSERT_TRUE(fs().Write("f", 0, 256 * 1024, true).ok());
  ASSERT_TRUE(fs().Truncate("f", 0).ok());
  EXPECT_EQ(fs().FileSize("f").value(), 0u);
  // The file can be refilled afterwards.
  ASSERT_TRUE(fs().Write("f", 0, 4096, true).ok());
  EXPECT_TRUE(fs().Read("f", 0, 4096).ok());
}

TEST_P(FsTruncRename, TruncateMissingFileFails) {
  EXPECT_EQ(fs().Truncate("nope", 0).code(), StatusCode::kNotFound);
}

TEST_P(FsTruncRename, RenameMovesFile) {
  ASSERT_TRUE(fs().Create("old").ok());
  ASSERT_TRUE(fs().Write("old", 0, 64 * 1024, true).ok());
  ASSERT_TRUE(fs().Rename("old", "new").ok());
  EXPECT_FALSE(fs().Exists("old"));
  EXPECT_TRUE(fs().Exists("new"));
  EXPECT_EQ(fs().FileSize("new").value(), 64u * 1024);
  EXPECT_TRUE(fs().Read("new", 0, 64 * 1024).ok());
}

TEST_P(FsTruncRename, RenameRefusesToClobber) {
  ASSERT_TRUE(fs().Create("a").ok());
  ASSERT_TRUE(fs().Create("b").ok());
  EXPECT_EQ(fs().Rename("a", "b").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(fs().Rename("missing", "c").code(), StatusCode::kNotFound);
}

TEST_P(FsTruncRename, RenamedFileSurvivesChurn) {
  ASSERT_TRUE(fs().Create("keep").ok());
  ASSERT_TRUE(fs().Write("keep", 0, 128 * 1024, true).ok());
  ASSERT_TRUE(fs().Rename("keep", "kept").ok());
  // Churn another file hard (drives the log-structured cleaner).
  ASSERT_TRUE(fs().Create("churn").ok());
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(fs().Write("churn", (i % 64) * 4096ull, 4096, i % 8 == 0).ok());
  }
  EXPECT_TRUE(fs().Read("kept", 0, 128 * 1024).ok());
}

FsFixture MakeExt() {
  FsFixture f;
  f.device = MakeDurableDevice();
  f.fs = std::make_unique<ExtFs>(*f.device);
  return f;
}

FsFixture MakeLog() {
  FsFixture f;
  f.device = MakeDurableDevice();
  f.fs = std::make_unique<LogFs>(*f.device);
  return f;
}

INSTANTIATE_TEST_SUITE_P(BothFilesystems, FsTruncRename,
                         ::testing::Values(FsCase{"ExtFs", MakeExt},
                                           FsCase{"LogFs", MakeLog}),
                         [](const ::testing::TestParamInfo<FsCase>& param_info) {
                           return param_info.param.name;
                         });

}  // namespace
}  // namespace flashsim
