// Truncate/rename contract, run against every registered file system.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/simcore/fault_plan.h"
#include "tests/fs_param.h"

namespace flashsim {
namespace {

class FsTruncRename : public ::testing::TestWithParam<FsCase> {
 protected:
  void SetUp() override { fixture_ = GetParam().factory(); }
  Filesystem& fs() { return *fixture_.fs; }
  FsFixture fixture_;
};

TEST_P(FsTruncRename, ShrinkFreesSpace) {
  ASSERT_TRUE(fs().Create("f").ok());
  ASSERT_TRUE(fs().Write("f", 0, 2 * 1024 * 1024, true).ok());
  ASSERT_TRUE(fs().Truncate("f", 64 * 1024).ok());
  EXPECT_EQ(fs().FileSize("f").value(), 64u * 1024);
  // The dropped space is reusable: a fresh 2 MiB file must fit. (In the
  // log-structured FS the free count lags until the cleaner runs, so we
  // check usability, not the instantaneous counter.)
  ASSERT_TRUE(fs().Create("g").ok());
  EXPECT_TRUE(fs().Write("g", 0, 2 * 1024 * 1024, true).ok());
  // Data inside the kept prefix is still readable.
  EXPECT_TRUE(fs().Read("f", 0, 64 * 1024).ok());
  // Reads past the new size fail.
  EXPECT_EQ(fs().Read("f", 64 * 1024, 4096).status().code(),
            StatusCode::kOutOfRange);
}

TEST_P(FsTruncRename, SparseExtendIsCheap) {
  ASSERT_TRUE(fs().Create("f").ok());
  ASSERT_TRUE(fs().Write("f", 0, 4096, true).ok());
  const uint64_t free_before = fs().FreeBytes();
  ASSERT_TRUE(fs().Truncate("f", 8 * 1024 * 1024).ok());
  EXPECT_EQ(fs().FileSize("f").value(), 8u * 1024 * 1024);
  EXPECT_EQ(fs().FreeBytes(), free_before) << "extension allocates nothing";
}

TEST_P(FsTruncRename, TruncateToZero) {
  ASSERT_TRUE(fs().Create("f").ok());
  ASSERT_TRUE(fs().Write("f", 0, 256 * 1024, true).ok());
  ASSERT_TRUE(fs().Truncate("f", 0).ok());
  EXPECT_EQ(fs().FileSize("f").value(), 0u);
  // The file can be refilled afterwards.
  ASSERT_TRUE(fs().Write("f", 0, 4096, true).ok());
  EXPECT_TRUE(fs().Read("f", 0, 4096).ok());
}

TEST_P(FsTruncRename, TruncateMissingFileFails) {
  EXPECT_EQ(fs().Truncate("nope", 0).code(), StatusCode::kNotFound);
}

TEST_P(FsTruncRename, RenameMovesFile) {
  ASSERT_TRUE(fs().Create("old").ok());
  ASSERT_TRUE(fs().Write("old", 0, 64 * 1024, true).ok());
  ASSERT_TRUE(fs().Rename("old", "new").ok());
  EXPECT_FALSE(fs().Exists("old"));
  EXPECT_TRUE(fs().Exists("new"));
  EXPECT_EQ(fs().FileSize("new").value(), 64u * 1024);
  EXPECT_TRUE(fs().Read("new", 0, 64 * 1024).ok());
}

TEST_P(FsTruncRename, RenameRefusesToClobber) {
  ASSERT_TRUE(fs().Create("a").ok());
  ASSERT_TRUE(fs().Create("b").ok());
  EXPECT_EQ(fs().Rename("a", "b").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(fs().Rename("missing", "c").code(), StatusCode::kNotFound);
}

TEST_P(FsTruncRename, RenamedFileSurvivesChurn) {
  ASSERT_TRUE(fs().Create("keep").ok());
  ASSERT_TRUE(fs().Write("keep", 0, 128 * 1024, true).ok());
  ASSERT_TRUE(fs().Rename("keep", "kept").ok());
  // Churn another file hard (drives the log-structured cleaner).
  ASSERT_TRUE(fs().Create("churn").ok());
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(fs().Write("churn", (i % 64) * 4096ull, 4096, i % 8 == 0).ok());
  }
  EXPECT_TRUE(fs().Read("kept", 0, 128 * 1024).ok());
}

// --- Crash atomicity -------------------------------------------------------
//
// Power is cut at the Nth destructive NAND op inside the durability barrier
// that covers a rename or shrinking truncate. Where that barrier sits is the
// per-case contract: for ExtFs/LogFs it is the Fsync after the (RAM-only)
// namespace op; under the CowFs contract (namespace_ops_commit) the op
// itself carries the commit, so the cut is armed around the op and surfaces
// as kPowerLoss from it. Whatever the cut position, recovery must land on
// one of the two pre-declared states — old or new — fully intact, never a
// mix and never neither. Cut positions past the barrier's op count simply
// never fire, which doubles as the post-barrier (fully durable) case.

TEST_P(FsTruncRename, RenameCrashLandsOnOldOrNewNeverNeither) {
  constexpr uint64_t kBytes = 256 * 1024;
  const FsCase& fs_case = GetParam();
  for (const uint64_t cut : {1ull, 2ull, 3ull, 5ull, 9ull, 1ull << 30}) {
    fixture_ = fs_case.factory();
    ASSERT_TRUE(fs().Create("old").ok());
    ASSERT_TRUE(fs().Write("old", 0, kBytes, true).ok());
    ASSERT_TRUE(fs().Fsync("old").ok());  // durable under the old name

    PowerRail rail;
    rail.AttachClock(&fixture_.device->clock());
    fixture_.device->AttachPowerRail(&rail);
    bool cut_fired = false;
    if (fs_case.namespace_ops_commit) {
      rail.Arm(FaultPlan::AtOpCount(cut));
      const Status st = fs().Rename("old", "new");
      cut_fired = rail.cuts_delivered() > 0;
      EXPECT_EQ(st.ok(), !cut_fired) << "cut=" << cut;
      if (!st.ok()) {
        EXPECT_EQ(st.code(), StatusCode::kPowerLoss) << "cut=" << cut;
      }
    } else {
      ASSERT_TRUE(fs().Rename("old", "new").ok());
      rail.Arm(FaultPlan::AtOpCount(cut));
      const Result<SimDuration> barrier = fs().Fsync("new");
      cut_fired = rail.cuts_delivered() > 0;
      EXPECT_EQ(barrier.ok(), !cut_fired) << "cut=" << cut;
    }
    rail.Restore();

    ASSERT_TRUE(fixture_.device->Remount().ok()) << "cut=" << cut;
    ASSERT_TRUE(fs().Mount().ok()) << "cut=" << cut;

    const bool has_old = fs().Exists("old");
    const bool has_new = fs().Exists("new");
    EXPECT_NE(has_old, has_new)
        << "cut=" << cut << ": exactly one name must survive (old=" << has_old
        << " new=" << has_new << ")";
    if (!cut_fired) {
      EXPECT_TRUE(has_new) << "cut=" << cut << ": barrier completed";
    } else if (fs_case.namespace_ops_commit) {
      // The torn pair commit loses the revision race at mount: the rename
      // never happened.
      EXPECT_TRUE(has_old) << "cut=" << cut;
    } else if (fs_case.dentry_durable_immediately) {
      // LogFs models dentry updates as durable immediately.
      EXPECT_TRUE(has_new) << "cut=" << cut;
    } else if (cut == 1) {
      // ExtFs: op 1 is the first journal block, so the commit never landed.
      EXPECT_TRUE(has_old) << "cut=" << cut;
    }
    const std::string survivor = has_new ? "new" : "old";
    const Result<uint64_t> size = fs().FileSize(survivor);
    ASSERT_TRUE(size.ok()) << "cut=" << cut;
    EXPECT_EQ(size.value(), kBytes) << "cut=" << cut << " name=" << survivor;
    EXPECT_TRUE(fs().Read(survivor, 0, kBytes).ok())
        << "cut=" << cut << " name=" << survivor;
  }
}

TEST_P(FsTruncRename, TruncateCrashRecoversAtOldOrNewSizeNeverBetween) {
  constexpr uint64_t kOldSize = 512 * 1024;
  constexpr uint64_t kNewSize = 64 * 1024;
  const FsCase& fs_case = GetParam();
  for (const uint64_t cut : {1ull, 2ull, 3ull, 5ull, 9ull, 1ull << 30}) {
    fixture_ = fs_case.factory();
    ASSERT_TRUE(fs().Create("f").ok());
    ASSERT_TRUE(fs().Write("f", 0, kOldSize, true).ok());
    ASSERT_TRUE(fs().Fsync("f").ok());  // durable at the old size

    PowerRail rail;
    rail.AttachClock(&fixture_.device->clock());
    fixture_.device->AttachPowerRail(&rail);
    bool cut_fired = false;
    if (fs_case.namespace_ops_commit) {
      rail.Arm(FaultPlan::AtOpCount(cut));
      const Status st = fs().Truncate("f", kNewSize);
      cut_fired = rail.cuts_delivered() > 0;
      EXPECT_EQ(st.ok(), !cut_fired) << "cut=" << cut;
      if (!st.ok()) {
        EXPECT_EQ(st.code(), StatusCode::kPowerLoss) << "cut=" << cut;
      }
    } else {
      ASSERT_TRUE(fs().Truncate("f", kNewSize).ok());
      rail.Arm(FaultPlan::AtOpCount(cut));
      const Result<SimDuration> barrier = fs().Fsync("f");
      cut_fired = rail.cuts_delivered() > 0;
      EXPECT_EQ(barrier.ok(), !cut_fired) << "cut=" << cut;
    }
    rail.Restore();

    ASSERT_TRUE(fixture_.device->Remount().ok()) << "cut=" << cut;
    ASSERT_TRUE(fs().Mount().ok()) << "cut=" << cut;

    ASSERT_TRUE(fs().Exists("f")) << "cut=" << cut;
    const Result<uint64_t> size = fs().FileSize("f");
    ASSERT_TRUE(size.ok()) << "cut=" << cut;
    EXPECT_TRUE(size.value() == kOldSize || size.value() == kNewSize)
        << "cut=" << cut << ": recovered size " << size.value()
        << " is neither the pre-truncate nor the post-truncate size";
    if (!cut_fired) {
      EXPECT_EQ(size.value(), kNewSize) << "cut=" << cut;
    } else if (fs_case.namespace_ops_commit) {
      // Torn commit: the truncate rolls forward to nothing — old size wins.
      EXPECT_EQ(size.value(), kOldSize) << "cut=" << cut;
    } else if (cut == 1) {
      // Both barriers start with a device write (node block / journal
      // descriptor), so op 1 always kills the truncate's durability.
      EXPECT_EQ(size.value(), kOldSize) << "cut=" << cut;
    }
    // Whichever size won, every byte of it must still be readable: a
    // recovered mapping may not mix old and new extents.
    EXPECT_TRUE(fs().Read("f", 0, size.value()).ok()) << "cut=" << cut;
    if (size.value() == kNewSize) {
      EXPECT_EQ(fs().Read("f", kNewSize, 4096).status().code(),
                StatusCode::kOutOfRange)
          << "cut=" << cut;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFilesystems, FsTruncRename,
                         ::testing::ValuesIn(AllFsCases()), FsCaseName);

}  // namespace
}  // namespace flashsim
